package fademl

// The benchmark harness regenerates every figure of the paper's evaluation
// (Fig. 5/6/7/9) plus ablations over the design choices called out in
// DESIGN.md. Figure benchmarks are end-to-end experiment runs — execute
// them with a single iteration:
//
//	go test -bench . -benchtime 1x
//
// The first run trains the tiny-profile model (~30 s on one core) and
// caches the weights under testdata/cache; later runs start in seconds.
// cmd/fademl-bench regenerates the same tables on the larger default
// profile for EXPERIMENTS.md.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/attacks"
	"repro/internal/experiments"
	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
)

var (
	benchOnce sync.Once
	benchEnv  *Env
	benchErr  error
)

func benchEnvironment(b *testing.B) *Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = NewEnv(ProfileTiny(), "testdata/cache", nil)
	})
	if benchErr != nil {
		b.Fatalf("bench environment: %v", benchErr)
	}
	return benchEnv
}

// BenchmarkFig5 regenerates Fig. 5: the paper trio forcing all five
// targeted payloads under Threat Model I. Reports the payload success rate.
func BenchmarkFig5(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := RunFig5(context.Background(), env, nil)
		if err != nil {
			b.Fatal(err)
		}
		rate = res.SuccessRate()
	}
	b.ReportMetric(100*rate, "%success")
}

// BenchmarkFig6 regenerates Fig. 6: top-5 accuracy of the network over the
// attacked test stream (TM-I, no filter). Reports the worst accuracy drop.
func BenchmarkFig6(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var drop float64
	for i := 0; i < b.N; i++ {
		res, err := RunFig6(context.Background(), env, nil)
		if err != nil {
			b.Fatal(err)
		}
		drop = res.MaxDrop()
	}
	b.ReportMetric(100*drop, "top5_drop_pts")
}

// BenchmarkFig7 regenerates Fig. 7: filter-blind attacks through the
// LAP/LAR sweep under TM-III, panels plus scenario-1 accuracy curves.
// Reports the neutralization rate.
func BenchmarkFig7(b *testing.B) {
	env := benchEnvironment(b)
	opt := SweepOptions{
		IncludeCurves:  true,
		CurveScenarios: []Scenario{PaperScenarios[0]},
	}
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := RunFig7(context.Background(), env, opt)
		if err != nil {
			b.Fatal(err)
		}
		rate = res.NeutralizationRate()
	}
	b.ReportMetric(100*rate, "%neutralized")
}

// BenchmarkFig9 regenerates Fig. 9: FAdeML filter-aware attacks through
// the same sweep. Reports the survival rate (the paper's headline metric).
func BenchmarkFig9(b *testing.B) {
	env := benchEnvironment(b)
	opt := SweepOptions{
		IncludeCurves:  true,
		CurveScenarios: []Scenario{PaperScenarios[0]},
	}
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := RunFig9(context.Background(), env, opt)
		if err != nil {
			b.Fatal(err)
		}
		rate = res.SurvivalRate()
	}
	b.ReportMetric(100*rate, "%survived")
}

// BenchmarkAblationFilterStrength sweeps LAP strength on the clean test
// stream — the inverted-U trade-off behind the paper's Key Insight 2.
// Reports the clean top-5 accuracy through the strongest filter.
func BenchmarkAblationFilterStrength(b *testing.B) {
	env := benchEnvironment(b)
	ds := env.TestSet.Subset(40)
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		for _, np := range filters.PaperLAPSizes {
			f := filters.NewLAP(np)
			m := train.Evaluate(env.Net, ds, func(img *tensor.Tensor, _ int) *tensor.Tensor {
				return f.Apply(img)
			})
			last = m.Top5
		}
	}
	b.ReportMetric(100*last, "top5_LAP64")
}

// BenchmarkAblationEta sweeps the FAdeML η noise-scaling factor (Eq. 3):
// smaller η trades attack survival for imperceptibility. Reports how many
// of the swept η values keep the payload through LAP(8).
func BenchmarkAblationEta(b *testing.B) {
	env := benchEnvironment(b)
	cls := attacks.NetClassifier{Net: env.Net}
	sc := PaperScenarios[0]
	clean := sc.CleanImage(env.Profile.Size)
	goal := attacks.Goal{Source: sc.Source, Target: sc.Target}
	filter := filters.NewLAP(8)
	etas := []float64{0.25, 0.5, 0.75, 1.0}
	b.ResetTimer()
	survived := 0
	for i := 0; i < b.N; i++ {
		survived = 0
		for _, eta := range etas {
			fa := &attacks.FAdeML{
				Base:   &attacks.BIM{Epsilon: 0.25, Alpha: 0.02, Steps: 60, EarlyStop: true},
				Filter: filter,
				Eta:    eta,
			}
			res, err := fa.Generate(context.Background(), cls, clean, goal)
			if err != nil {
				b.Fatal(err)
			}
			if res.Success {
				survived++
			}
		}
	}
	b.ReportMetric(float64(survived), "etas_surviving")
}

// BenchmarkAblationAttackBudget sweeps the BIM ε budget against the bare
// network — the attack-strength knob behind Fig. 5/6. Reports the smallest
// swept ε (in 1/255 units) that achieves the scenario-1 payload.
func BenchmarkAblationAttackBudget(b *testing.B) {
	env := benchEnvironment(b)
	cls := attacks.NetClassifier{Net: env.Net}
	sc := PaperScenarios[0]
	clean := sc.CleanImage(env.Profile.Size)
	goal := attacks.Goal{Source: sc.Source, Target: sc.Target}
	budgets := []float64{0.02, 0.04, 0.08, 0.16}
	b.ResetTimer()
	minEps := 0.0
	for i := 0; i < b.N; i++ {
		minEps = 0
		for _, eps := range budgets {
			atk := &attacks.BIM{Epsilon: eps, Alpha: eps / 10, Steps: 40, EarlyStop: true}
			res, err := atk.Generate(context.Background(), cls, clean, goal)
			if err != nil {
				b.Fatal(err)
			}
			if res.Success {
				minEps = eps
				break
			}
		}
	}
	b.ReportMetric(255*minEps, "min_eps_255")
}

// BenchmarkAblationFootprint contrasts the paper's circular LAR footprint
// with an equal-radius square box filter on clean top-5 accuracy.
func BenchmarkAblationFootprint(b *testing.B) {
	env := benchEnvironment(b)
	b.ResetTimer()
	var diskMinusBox float64
	for i := 0; i < b.N; i++ {
		points := experiments.RunFootprintAblation(env, []int{2, 3})
		diskMinusBox = 0
		for _, p := range points {
			diskMinusBox += p.DiskTop5 - p.BoxTop5
		}
	}
	b.ReportMetric(100*diskMinusBox, "disk_minus_box_pts")
}

// --- substrate micro-benchmarks ---

// BenchmarkVGGForward measures one eval-mode forward pass of the tiny
// VGGNet on a 32×32 RGB image.
func BenchmarkVGGForward(b *testing.B) {
	env := benchEnvironment(b)
	img := gtsrb.Canonical(gtsrb.ClassStop, env.Profile.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Net.Probs(img)
	}
}

// BenchmarkVGGForward32 measures the same forward on the float32
// snapshot: fused conv+ReLU / dense+ReLU ops over the SSE GEMM core.
func BenchmarkVGGForward32(b *testing.B) {
	env := benchEnvironment(b)
	n32, err := env.Net.ToFloat32()
	if err != nil {
		b.Fatal(err)
	}
	img := gtsrb.Canonical(gtsrb.ClassStop, env.Profile.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n32.Probs(img)
	}
}

// BenchmarkVGGInputGrad measures one loss + input-gradient evaluation, the
// unit of work of every gradient-based attack.
func BenchmarkVGGInputGrad(b *testing.B) {
	env := benchEnvironment(b)
	img := gtsrb.Canonical(gtsrb.ClassStop, env.Profile.Size)
	loss := nn.CrossEntropy{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Net.LossAndInputGrad(img, gtsrb.ClassSpeed60, loss)
	}
}

// BenchmarkLAP32Apply measures the paper's LAP(32) filter on a 32×32 RGB
// image.
func BenchmarkLAP32Apply(b *testing.B) {
	img := gtsrb.Canonical(gtsrb.ClassStop, 32)
	f := filters.NewLAP(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Apply(img)
	}
}

// BenchmarkLAR3VJP measures the LAR(3) adjoint, the extra per-step cost a
// FAdeML attacker pays to differentiate through the filter.
func BenchmarkLAR3VJP(b *testing.B) {
	rng := mathx.NewRNG(1)
	x := tensor.RandU(rng, 0, 1, 3, 32, 32)
	u := tensor.RandN(rng, 3, 32, 32)
	f := filters.NewLAR(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.VJP(x, u)
	}
}

// BenchmarkFilterApplyBatch measures the batched filter path the serving
// micro-batches and panel sweeps run: a 16-image ApplyBatch (fanned over
// the parallel pool) vs the serial per-image loop it replaces.
func BenchmarkFilterApplyBatch(b *testing.B) {
	rng := mathx.NewRNG(3)
	batch := make([]*tensor.Tensor, 16)
	for i := range batch {
		batch[i] = tensor.RandU(rng, 0, 1, 3, 32, 32)
	}
	for _, spec := range []string{"median(r=1)", "lap(np=32)", "nlm(h=0.1,patch=1,window=3)"} {
		f, err := filters.Parse(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec+"/serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				filters.SerialBatch(f, batch)
			}
		})
		b.Run(spec+"/batched", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.ApplyBatch(batch)
			}
		})
	}
}

// BenchmarkMatMul measures the 128×128 matmul underlying conv via im2col.
func BenchmarkMatMul(b *testing.B) {
	rng := mathx.NewRNG(2)
	x := tensor.RandN(rng, 128, 128)
	y := tensor.RandN(rng, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

// BenchmarkMatMul32 measures the float32 fast-lane GEMM at the same
// shape as BenchmarkMatMul — the pair quantifies the PR-7 speedup.
func BenchmarkMatMul32(b *testing.B) {
	rng := mathx.NewRNG(2)
	x := tensor.RandN(rng, 128, 128).Float32()
	y := tensor.RandN(rng, 128, 128).Float32()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul32(x, y)
	}
}

// BenchmarkRenderSign measures synthetic GTSRB sample generation.
func BenchmarkRenderSign(b *testing.B) {
	rng := mathx.NewRNG(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gtsrb.Render(gtsrb.ClassStop, 32, gtsrb.RandomJitter(rng), rng)
	}
}

// BenchmarkAttackFGSM measures one FGSM adversarial example end to end.
func BenchmarkAttackFGSM(b *testing.B) {
	env := benchEnvironment(b)
	cls := attacks.NetClassifier{Net: env.Net}
	sc := PaperScenarios[0]
	clean := sc.CleanImage(env.Profile.Size)
	goal := attacks.Goal{Source: sc.Source, Target: sc.Target}
	atk := &attacks.FGSM{Epsilon: 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atk.Generate(context.Background(), cls, clean, goal); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttackOnePixel measures one black-box one-pixel DE attack —
// the query-based workload whose per-generation population scoring runs
// through the batched inference surface.
func BenchmarkAttackOnePixel(b *testing.B) {
	env := benchEnvironment(b)
	cls := attacks.NetClassifier{Net: env.Net}
	sc := PaperScenarios[0]
	clean := sc.CleanImage(env.Profile.Size)
	goal := attacks.Goal{Source: sc.Source, Target: sc.Target}
	atk := &attacks.OnePixel{Pixels: 1, Population: 10, Generations: 5, Seed: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atk.Generate(context.Background(), cls, clean, goal); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttackFAdeMLBIM measures one filter-aware BIM adversarial
// example through LAP(8) — the paper's core operation.
func BenchmarkAttackFAdeMLBIM(b *testing.B) {
	env := benchEnvironment(b)
	cls := attacks.NetClassifier{Net: env.Net}
	sc := PaperScenarios[0]
	clean := sc.CleanImage(env.Profile.Size)
	goal := attacks.Goal{Source: sc.Source, Target: sc.Target}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fa := attacks.NewFAdeML(&attacks.BIM{Epsilon: 0.25, Alpha: 0.02, Steps: 60, EarlyStop: true}, filters.NewLAP(8))
		if _, err := fa.Generate(context.Background(), cls, clean, goal); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeThroughput measures the online serving layer on the tiny
// VGG profile: concurrent clients hammering one Server through the full
// TM-II path (acquisition + LAP(32) + network). The batched16 variant
// coalesces requests into micro-batches of up to 16; unbatched serves
// request-at-a-time (MaxBatch 1). Both return bit-identical responses —
// the delta is pure throughput, reported alongside the observed mean
// batch occupancy. batched16_f32 runs the same batched workload on the
// float32 fast lane.
func BenchmarkServeThroughput(b *testing.B) {
	env := benchEnvironment(b)
	acq := NewAcquisition(1.0, 1.0/255, true, 97)
	pipe := NewPipeline(env.Net, NewLAP(32), acq)
	img := gtsrb.Canonical(gtsrb.ClassStop, env.Profile.Size)
	for _, cfg := range []struct {
		name     string
		maxBatch int
		prec     Precision
	}{
		{"batched16", 16, PrecisionFloat64},
		{"unbatched", 1, PrecisionFloat64},
		{"batched16_f32", 16, PrecisionFloat32},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			// Cache off (the workload repeats one image) and admission
			// unbounded (32 clients per CPU is deliberate overload): the
			// benchmark measures the batching path, not the survivability
			// layer.
			s := NewServer(pipe, ServeOptions{
				MaxBatch: cfg.maxBatch, MaxWait: 2 * time.Millisecond,
				CacheSize: -1, InteractiveLimit: -1,
			})
			defer s.Close()
			if cfg.prec == PrecisionFloat32 && !s.Float32Available() {
				b.Fatal("float32 lane unavailable")
			}
			ctx := context.Background()
			b.SetParallelism(32)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := s.PredictPrec(ctx, img, TM2, cfg.prec); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			st := s.Stats()
			b.ReportMetric(st.MeanBatchOccupancy, "occupancy")
		})
	}
}
