// Command fademl-attack crafts one adversarial example for a paper
// scenario, optionally filter-aware (FAdeML), measures it against the
// deployed pipeline under Threat Models I and II/III, and writes PNGs of
// the clean image, adversarial image, amplified noise and the DNN's
// filtered view.
//
// Usage:
//
//	fademl-attack [-profile default] [-scenario 1..5] [-attack bim]
//	              [-filter LAP:32|LAR:3|none] [-aware] [-tm 2|3] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	fademl "repro"
	"repro/internal/imageio"
)

func parseFilter(spec string) (fademl.Filter, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("filter spec %q: want KIND:PARAM, e.g. LAP:32", spec)
	}
	v, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("filter spec %q: %v", spec, err)
	}
	switch strings.ToUpper(parts[0]) {
	case "LAP":
		return fademl.NewLAP(v), nil
	case "LAR":
		return fademl.NewLAR(v), nil
	case "MEDIAN":
		return fademl.NewMedian(v), nil
	case "GAUSS":
		return fademl.NewGaussian(float64(v)), nil
	default:
		return nil, fmt.Errorf("unknown filter kind %q (LAP|LAR|MEDIAN|GAUSS)", parts[0])
	}
}

func main() {
	profileName := flag.String("profile", "default", "experiment profile: tiny, default or paper")
	cacheDir := flag.String("cache", "testdata/cache", "weight cache directory")
	scenarioID := flag.Int("scenario", 1, "paper scenario 1..5")
	attackName := flag.String("attack", "bim", "attack name (see -list)")
	filterSpec := flag.String("filter", "LAP:32", "deployed pre-processing filter, e.g. LAP:32, LAR:3, none")
	aware := flag.Bool("aware", true, "run the attack filter-aware (FAdeML)")
	tmFlag := flag.Int("tm", 3, "threat model for filtered delivery: 2 or 3")
	outDir := flag.String("out", "attack-out", "output directory for PNGs (empty to skip)")
	list := flag.Bool("list", false, "list available attacks and exit")
	flag.Parse()

	if *list {
		fmt.Println("attacks:", strings.Join(fademl.AttackNames(), ", "))
		return
	}
	if *scenarioID < 1 || *scenarioID > len(fademl.PaperScenarios) {
		log.Fatalf("scenario %d outside 1..%d", *scenarioID, len(fademl.PaperScenarios))
	}
	sc := fademl.PaperScenarios[*scenarioID-1]

	var tm fademl.ThreatModel
	switch *tmFlag {
	case 2:
		tm = fademl.TM2
	case 3:
		tm = fademl.TM3
	default:
		log.Fatalf("threat model %d: want 2 or 3", *tmFlag)
	}

	p, err := profileByName(*profileName)
	if err != nil {
		log.Fatal(err)
	}
	env, err := fademl.NewEnv(p, *cacheDir, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	filter, err := parseFilter(*filterSpec)
	if err != nil {
		log.Fatal(err)
	}
	var acq *fademl.Acquisition
	if tm == fademl.TM2 {
		acq = fademl.NewAcquisition(1.0, 1.0/255, true, 97)
	}
	pipe := fademl.NewPipeline(env.Net, filter, acq)

	atk, err := fademl.NewAttack(*attackName)
	if err != nil {
		log.Fatal(err)
	}
	if *aware && *attackName == "bim" {
		// The filter-aware attacker compensates for smoothing attenuation.
		atk = fademl.NewBIM(0.25, 0.02, 60)
	}

	clean := sc.CleanImage(env.Profile.Size)
	out, err := fademl.Execute(fademl.Run{
		Pipeline: pipe, Attack: atk, FilterAware: *aware, TM: tm,
	}, clean, sc.Source, sc.Target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", sc)
	fmt.Println(out.Comparison.String())

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		noiseViz := out.AttackerResult.Noise.Clone()
		noiseViz.ScaleInPlace(8)
		noiseViz.AddScalar(0.5)
		noiseViz.Clamp01()
		for name, img := range map[string]*fademl.Tensor{
			"clean.png":    clean,
			"adv.png":      out.AttackerResult.Adversarial,
			"noise8x.png":  noiseViz,
			"filtered.png": pipe.Deliver(out.AttackerResult.Adversarial, tm),
		} {
			path := filepath.Join(*outDir, name)
			if err := imageio.SavePNG(img, path); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", path)
		}
	}
}

func profileByName(name string) (fademl.Profile, error) {
	switch name {
	case "tiny":
		return fademl.ProfileTiny(), nil
	case "default":
		return fademl.ProfileDefault(), nil
	case "paper":
		return fademl.ProfilePaper(), nil
	default:
		return fademl.Profile{}, fmt.Errorf("unknown profile %q (tiny|default|paper)", name)
	}
}
