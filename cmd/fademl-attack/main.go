// Command fademl-attack crafts one adversarial example for a paper
// scenario, optionally filter-aware (FAdeML), measures it against the
// deployed pipeline under Threat Models I and II/III, and writes PNGs of
// the clean image, adversarial image, amplified noise and the DNN's
// filtered view.
//
// Usage:
//
//	fademl-attack [-profile default] [-scenario 1..5] [-attack bim]
//	              [-filter LAP:32|LAR:3|none] [-aware] [-tm 2|3] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	fademl "repro"
	"repro/internal/imageio"
)

func main() {
	profileName := flag.String("profile", "default", "experiment profile: tiny, default or paper")
	cacheDir := flag.String("cache", "testdata/cache", "weight cache directory")
	scenarioID := flag.Int("scenario", 1, "paper scenario 1..5")
	attackName := flag.String("attack", "bim", "attack name (see -list)")
	filterSpec := flag.String("filter", "LAP:32", "deployed pre-processing filter, e.g. LAP:32, LAR:3, none")
	aware := flag.Bool("aware", true, "run the attack filter-aware (FAdeML)")
	tmFlag := flag.String("tm", "3", "threat model for filtered delivery: 2 or 3 (also accepts tm2, TM-III, ...)")
	outDir := flag.String("out", "attack-out", "output directory for PNGs (empty to skip)")
	list := flag.Bool("list", false, "list available attacks and exit")
	flag.Parse()

	if *list {
		fmt.Println("attacks:", strings.Join(fademl.AttackNames(), ", "))
		return
	}
	if *scenarioID < 1 || *scenarioID > len(fademl.PaperScenarios) {
		log.Fatalf("scenario %d outside 1..%d", *scenarioID, len(fademl.PaperScenarios))
	}
	sc := fademl.PaperScenarios[*scenarioID-1]

	// Flag validation happens before any model loads: a bad -tm or -filter
	// spec is a usage error, not a panic from inside the pipeline.
	tm, err := fademl.ParseThreatModel(*tmFlag)
	if err != nil {
		usageError(err)
	}
	if tm == fademl.TM1 {
		usageError(fmt.Errorf("threat model %v has no filtered delivery; use 2 or 3", tm))
	}
	filter, err := fademl.ParseFilter(*filterSpec)
	if err != nil {
		usageError(err)
	}
	p, err := fademl.ParseProfile(*profileName)
	if err != nil {
		usageError(err)
	}
	env, err := fademl.NewEnv(p, *cacheDir, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	var acq *fademl.Acquisition
	if tm == fademl.TM2 {
		acq = fademl.NewAcquisition(1.0, 1.0/255, true, 97)
	}
	pipe := fademl.NewPipeline(env.Net, filter, acq)

	atk, err := fademl.NewAttack(*attackName)
	if err != nil {
		log.Fatal(err)
	}
	if *aware && *attackName == "bim" {
		// The filter-aware attacker compensates for smoothing attenuation.
		atk = fademl.NewBIM(0.25, 0.02, 60)
	}

	clean := sc.CleanImage(env.Profile.Size)
	out, err := fademl.Execute(fademl.Run{
		Pipeline: pipe, Attack: atk, FilterAware: *aware, TM: tm,
	}, clean, sc.Source, sc.Target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", sc)
	fmt.Println(out.Comparison.String())

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		noiseViz := out.AttackerResult.Noise.Clone()
		noiseViz.ScaleInPlace(8)
		noiseViz.AddScalar(0.5)
		noiseViz.Clamp01()
		for name, img := range map[string]*fademl.Tensor{
			"clean.png":    clean,
			"adv.png":      out.AttackerResult.Adversarial,
			"noise8x.png":  noiseViz,
			"filtered.png": pipe.Deliver(out.AttackerResult.Adversarial, tm),
		} {
			path := filepath.Join(*outDir, name)
			if err := imageio.SavePNG(img, path); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", path)
		}
	}
}

func usageError(err error) {
	fmt.Fprintf(os.Stderr, "fademl-attack: %v\n", err)
	flag.Usage()
	os.Exit(2)
}
