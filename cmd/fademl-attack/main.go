// Command fademl-attack crafts one adversarial example for a paper
// scenario, optionally filter-aware (FAdeML), measures it against the
// deployed pipeline under Threat Models I and II/III, and writes PNGs of
// the clean image, adversarial image, amplified noise and the DNN's
// filtered view.
//
// The -attack flag takes an attack spec string — a bare library name or a
// parameterized form like 'pgd(eps=0.03,steps=40)' (quote it for the
// shell). -max-queries/-max-iters/-timeout cap the attack's work; a
// budget-cut (or Ctrl-C-interrupted) run still reports its best-so-far
// adversarial example, marked TRUNCATED.
//
// Usage:
//
//	fademl-attack [-profile default] [-scenario 1..5]
//	              [-attack 'bim(eps=0.1,steps=40)'] [-aware] [-tm 2|3]
//	              [-adaptive blind|bpda|'eot(draws=8)']
//	              [-filter 'lap(np=32)'|'chain(...)'|none] [-max-queries N] [-max-iters N]
//	              [-timeout 30s] [-progress] [-out DIR]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	fademl "repro"
	"repro/internal/imageio"
)

func main() {
	profileName := flag.String("profile", "default", "experiment profile: tiny, default or paper")
	cacheDir := flag.String("cache", "testdata/cache", "weight cache directory")
	scenarioID := flag.Int("scenario", 1, "paper scenario 1..5")
	attackSpec := flag.String("attack", "bim", "attack spec, e.g. bim or 'pgd(eps=0.03,steps=40)' (see -list)")
	filterSpec := flag.String("filter", "lap(np=32)", "deployed pre-processing filter spec, e.g. 'lap(np=32)', 'chain(median(r=1),lar(r=2))', none")
	aware := flag.Bool("aware", true, "run the attack filter-aware (FAdeML)")
	adaptive := flag.String("adaptive", "", "crafting mode overriding -aware: blind, bpda, or 'eot(draws=N)' (for randomized filters)")
	tmFlag := flag.String("tm", "3", "threat model for filtered delivery: 2 or 3 (also accepts tm2, TM-III, ...)")
	maxQueries := flag.Int("max-queries", 0, "attack budget: classifier evaluations (0 = unlimited)")
	maxIters := flag.Int("max-iters", 0, "attack budget: optimizer iterations (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "attack budget: wall-clock cap (0 = unlimited)")
	progress := flag.Bool("progress", false, "log per-iteration attack progress")
	outDir := flag.String("out", "attack-out", "output directory for PNGs (empty to skip)")
	list := flag.Bool("list", false, "list available attacks and filters with their spec parameters and exit")
	flag.Parse()

	if *list {
		listAttacks()
		return
	}
	if *scenarioID < 1 || *scenarioID > len(fademl.PaperScenarios) {
		log.Fatalf("scenario %d outside 1..%d", *scenarioID, len(fademl.PaperScenarios))
	}
	sc := fademl.PaperScenarios[*scenarioID-1]

	// Flag validation happens before any model loads: a bad -tm, -filter
	// or -attack spec is a usage error, not a panic from inside the
	// pipeline.
	tm, err := fademl.ParseThreatModel(*tmFlag)
	if err != nil {
		usageError(err)
	}
	if tm == fademl.TM1 {
		usageError(fmt.Errorf("threat model %v has no filtered delivery; use 2 or 3", tm))
	}
	filter, err := fademl.ParseFilter(*filterSpec)
	if err != nil {
		usageError(err)
	}
	if *aware && *attackSpec == "bim" {
		// The default filter-aware attacker compensates for smoothing
		// attenuation with a larger budget than the library default.
		*attackSpec = "bim(eps=0.25,alpha=0.02,steps=60)"
	}
	atk, err := fademl.ParseAttack(*attackSpec)
	if err != nil {
		usageError(err)
	}
	var mode fademl.AdaptiveMode
	if *adaptive != "" {
		if mode, err = fademl.ParseAdaptive(*adaptive); err != nil {
			usageError(err)
		}
	}
	p, err := fademl.ParseProfile(*profileName)
	if err != nil {
		usageError(err)
	}
	env, err := fademl.NewEnv(p, *cacheDir, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	var acq *fademl.Acquisition
	if tm == fademl.TM2 {
		acq = fademl.NewAcquisition(1.0, 1.0/255, true, 97)
	}
	pipe := fademl.NewPipeline(env.Net, filter, acq)

	// Ctrl-C truncates the attack at the next iteration boundary; the
	// best-so-far example is still measured and written out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	budget := fademl.Budget{MaxQueries: *maxQueries, MaxIters: *maxIters}
	if *timeout > 0 {
		budget.Deadline = time.Now().Add(*timeout)
	}
	run := fademl.Run{
		Pipeline: pipe, Attack: atk, FilterAware: *aware, Adaptive: mode, Seed: 1,
		TM: tm, Budget: budget,
	}
	if *progress {
		run.Observer = func(pr fademl.Progress) {
			log.Printf("%s: iteration %d, %d queries", pr.Attack, pr.Iterations, pr.Queries)
		}
	}

	clean := sc.CleanImage(env.Profile.Size)
	start := time.Now()
	out, err := fademl.Execute(ctx, run, clean, sc.Source, sc.Target)
	if err != nil {
		log.Fatal(err)
	}
	res := out.AttackerResult
	fmt.Printf("\n%s\n", sc)
	fmt.Printf("attack %s: %d iterations, %d queries in %.1fs\n",
		atk.Name(), res.Iterations, res.Queries, time.Since(start).Seconds())
	if res.Truncated {
		fmt.Println("run TRUNCATED (budget exhausted or interrupted) — reporting best-so-far example")
	}
	fmt.Println(out.Comparison.String())

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		noiseViz := res.Noise.Clone()
		noiseViz.ScaleInPlace(8)
		noiseViz.AddScalar(0.5)
		noiseViz.Clamp01()
		for name, img := range map[string]*fademl.Tensor{
			"clean.png":    clean,
			"adv.png":      res.Adversarial,
			"noise8x.png":  noiseViz,
			"filtered.png": pipe.Deliver(res.Adversarial, tm),
		} {
			path := filepath.Join(*outDir, name)
			if err := imageio.SavePNG(img, path); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", path)
		}
	}
}

// listAttacks prints every registry attack and filter with its spec
// parameters.
func listAttacks() {
	fmt.Println("attacks (configure via 'name(key=value,...)'):")
	for _, name := range fademl.AttackNames() {
		atk, err := fademl.NewAttack(name)
		if err != nil {
			continue
		}
		fmt.Printf("  %s\n", atk.Name())
		if cfg, ok := atk.(fademl.ConfigurableAttack); ok {
			for _, p := range cfg.Params() {
				fmt.Printf("      %-10s %s (default %s)\n", p.Name, p.Doc, p.Get())
			}
		}
	}
	fmt.Println("\nfilters (configure via 'name(key=value,...)'; compose via 'chain(a,b)'):")
	for _, name := range fademl.FilterNames() {
		f, err := fademl.NewNamedFilter(name)
		if err != nil {
			continue
		}
		fmt.Printf("  %s\n", f.Name())
		if cfg, ok := f.(fademl.ConfigurableFilter); ok {
			for _, p := range cfg.Params() {
				fmt.Printf("      %-10s %s (default %s)\n", p.Name, p.Doc, p.Get())
			}
		}
	}
	fmt.Println("\ndetector specs (fademl-serve -detect, /v1/detect, /v1/evaluate \"detector\"):")
	fmt.Printf("  %s   (bare 'detect' = this default)\n", fademl.DefaultDetector().Name())
	fmt.Println("      squeezers  parenthesized filter-spec list; discrepancy = max over squeezers")
	fmt.Println("      metric     l1 (probability-vector distance, default) or top1 (class disagreement)")
	fmt.Println("      thr        flag cutoff: score > thr marks the input adversarial (default 1)")
	fmt.Println("\nexamples: -attack 'pgd(eps=0.03,steps=40)' -filter 'chain(median(r=1),lap(np=32))'")
	fmt.Println("          fademl-serve -detect 'detect(squeezers=(bitdepth(bits=4),median(r=1)),thr=0.6)'")
}

func usageError(err error) {
	fmt.Fprintf(os.Stderr, "fademl-attack: %v\n", err)
	flag.Usage()
	os.Exit(2)
}
