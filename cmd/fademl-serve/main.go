// Command fademl-serve runs the deployed inference pipeline of the
// paper's Fig. 2 — acquisition, pre-processing noise filter, DNN — as a
// concurrent HTTP service with dynamic micro-batching: single-image
// requests from concurrent clients coalesce into batched forwards on a
// pool of weight-sharing network clones, and every response is
// bit-identical to a direct single-image inference.
//
// Usage:
//
//	fademl-serve [-addr :8080] [-profile tiny] [-filter 'lap(np=32)'] [-tm 2]
//	             [-workers N] [-max-batch 16] [-max-wait 2ms]
//	             [-attack-workers 1] [-attack-max-queries 5000] [-attack-timeout 30s]
//
// Endpoints:
//
//	POST /v1/predict        {"pixels": […], "shape": [3,S,S], "tm": "2", "probs": true}
//	POST /v1/predict_batch  {"images": [{"pixels": …, "shape": …}, …]}
//	POST /v1/defend         {"pixels": […], "shape": [3,S,S], "filter": "chain(median(r=1),histeq(bins=64))", "predict": true}
//	POST /v1/attack         {"attack": "pgd(eps=0.03,steps=40)", "source": 14, "target": 1, "tm": "3", "aware": true}
//	POST /v1/evaluate       {"attacks": ["fgsm", "bim(eps=0.1)"], "tms": ["3"], "filters": ["none", "lap(np=32)"], "cases": [...]}
//	GET  /v1/healthz        liveness + configuration
//	GET  /v1/stats          requests, batches, mean batch occupancy, p50/p99 latency
//
// The -filter flag takes a filter spec — a registry name, a
// parameterized form like 'median(r=2)', a chain
// 'chain(median(r=1),histeq(bins=64))', or "none" (the legacy LAP:32
// forms still work). /v1/defend filters request images through any such
// spec, and /v1/evaluate sweeps fooling rates over attack spec × filter
// spec × threat model.
//
// The robustness endpoints craft adversarial examples against the served
// pipeline under a hard server-side budget (-attack-max-queries /
// -attack-timeout) on a bounded pool of crafting slots
// (-attack-workers; -1 disables the endpoints). A request that exhausts
// the budget still answers with its best-so-far example, marked
// "truncated". Omitted pixels render the canonical source-class sign;
// omitted cases default to the paper's five scenario payloads.
//
// The process drains gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight requests complete, then the batching service shuts
// down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	fademl "repro"
	"repro/internal/gtsrb"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	profileName := flag.String("profile", "tiny", "experiment profile: tiny, default or paper")
	cacheDir := flag.String("cache", "testdata/cache", "weight cache directory")
	filterSpec := flag.String("filter", "lap(np=32)", "deployed pre-processing filter spec, e.g. 'lap(np=32)', 'chain(median(r=1),lar(r=2))', none")
	tmSpec := flag.String("tm", "2", "default threat model for requests that name none: 1, 2 or 3")
	acqSeed := flag.Uint64("acq-seed", 97, "acquisition sensor-noise seed (TM-II capture stage)")
	workers := flag.Int("workers", runtime.NumCPU(), "inference worker pool size (one network clone each)")
	maxBatch := flag.Int("max-batch", 16, "micro-batch flush-on-full threshold (1 = no batching)")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "micro-batch flush-on-linger bound")
	attackWorkers := flag.Int("attack-workers", 1, "concurrent server-side attack crafting slots (-1 disables /v1/attack and /v1/evaluate)")
	attackMaxQueries := flag.Int("attack-max-queries", 5000, "hard per-request attack budget in classifier evaluations")
	attackTimeout := flag.Duration("attack-timeout", 30*time.Second, "hard per-request attack wall-clock cap")
	flag.Parse()

	// Validate user input at the flag boundary: a bad spec is a usage
	// error with a message, never a panic from deep inside the pipeline.
	filter, err := fademl.ParseFilter(*filterSpec)
	if err != nil {
		usageError(err)
	}
	tm, err := fademl.ParseThreatModel(*tmSpec)
	if err != nil {
		usageError(err)
	}
	if *maxBatch < 1 || *workers < 1 {
		usageError(fmt.Errorf("-max-batch and -workers must be at least 1 (got %d, %d)", *maxBatch, *workers))
	}
	profile, err := fademl.ParseProfile(*profileName)
	if err != nil {
		usageError(err)
	}

	env, err := fademl.NewEnv(profile, *cacheDir, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	// The acquisition stage models the camera every benign input passes
	// under TM-II; requests for TM-1/TM-3 views simply bypass it.
	acq := fademl.NewAcquisition(1.0, 1.0/255, true, *acqSeed)
	pipe := fademl.NewPipeline(env.Net, filter, acq)

	evalCases := make([]fademl.EvalCase, len(fademl.PaperScenarios))
	for i, sc := range fademl.PaperScenarios {
		evalCases[i] = fademl.EvalCase{Source: sc.Source, Target: sc.Target}
	}
	srv := fademl.NewServer(pipe, fademl.ServeOptions{
		Workers:       *workers,
		MaxBatch:      *maxBatch,
		MaxWait:       *maxWait,
		DefaultTM:     tm,
		ClassName:     gtsrb.ClassName,
		AttackWorkers: *attackWorkers,
		AttackBudget:  fademl.Budget{MaxQueries: *attackMaxQueries},
		AttackTimeout: *attackTimeout,
		Render:        gtsrb.Canonical,
		EvalCases:     evalCases,
	})

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// A long-running service must not let slow clients pin connection
		// goroutines forever (slowloris); prediction bodies are small, so
		// tight read bounds are safe.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	filterName := "none"
	if filter != nil {
		filterName = filter.Name()
	}
	log.Printf("fademl-serve: profile %s, filter %s, default %v, %d workers, batch ≤%d, linger ≤%v on %s",
		env.Profile.Name, filterName, tm, *workers, *maxBatch, *maxWait, *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Print("fademl-serve: signal received, draining...")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("fademl-serve: shutdown: %v", err)
		}
	}
	srv.Close()
	st := srv.Stats()
	log.Printf("fademl-serve: done — %d requests in %d batches (mean occupancy %.2f, p50 %.2fms, p99 %.2fms)",
		st.Requests, st.Batches, st.MeanBatchOccupancy, st.P50LatencyMs, st.P99LatencyMs)
}

func usageError(err error) {
	fmt.Fprintf(os.Stderr, "fademl-serve: %v\n", err)
	flag.Usage()
	os.Exit(2)
}
