// Command fademl-serve runs the deployed inference pipeline of the
// paper's Fig. 2 — acquisition, pre-processing noise filter, DNN — as a
// concurrent HTTP service with dynamic micro-batching: single-image
// requests from concurrent clients coalesce into batched forwards on a
// pool of weight-sharing network clones, and every response is
// bit-identical to a direct single-image inference.
//
// Usage:
//
//	fademl-serve [-addr :8080] [-profile tiny] [-filter 'lap(np=32)'] [-tm 2]
//	             [-registry DIR] [-model name@version]
//	             [-detect 'detect(squeezers=(bitdepth(bits=4),median(r=1)),thr=0.6)']
//	             [-detect-fpr 0.05] [-correct 'chain(median(r=2),bitdepth(bits=4))']
//	             [-precision float64] [-workers N] [-max-batch 16] [-max-wait 2ms]
//	             [-attack-workers 1] [-attack-max-queries 5000] [-attack-timeout 30s]
//	             [-predict-deadline 500ms] [-defend-deadline 2s] [-evaluate-timeout 2m]
//	             [-interactive-limit 0] [-bulk-limit 0] [-result-cache 4096]
//	             [-write-timeout 5m] [-drain-timeout 0] [-drain-grace 2s]
//
//	fademl-serve -front http://h1:8080,http://h2:8080,http://h3:8080
//	             [-addr :8080] [-probe-interval 1s] [-eject-after 3]
//	             [-front-retries 2] [-hedge 0]
//
// Endpoints:
//
//	POST /v1/predict        {"pixels": […], "shape": [3,S,S], "tm": "2", "precision": "float32", "probs": true}
//	POST /v1/predict_batch  {"images": [{"pixels": …, "shape": …}, …]}
//	POST /v1/defend         {"pixels": […], "shape": [3,S,S], "filter": "chain(median(r=1),histeq(bins=64))", "predict": true}
//	POST /v1/detect         {"pixels": […], "shape": [3,S,S], "detector": "detect(squeezers=(bitdepth(bits=4),median(r=1)),thr=0.6)"}
//	POST /v1/attack         {"attack": "pgd(eps=0.03,steps=40)", "source": 14, "target": 1, "tm": "3", "aware": true}
//	POST /v1/evaluate       {"attacks": ["fgsm", "bim(eps=0.1)"], "tms": ["3"], "filters": ["none", "lap(np=32)"], "detector": "detect", "cases": [...]}
//	GET  /v1/models         model table (active version, loaded versions, registry catalog)
//	POST /v1/models         {"action": "activate", "model": "name@version"} — hot-swap under live traffic
//	GET  /v1/healthz        liveness (503 draining, "degraded" while shedding) + model identity
//	GET  /v1/stats          requests, batches, lanes, cache, latency
//	GET  /metrics           Prometheus text exposition
//
// Survivability: requests pass bounded admission lanes — interactive
// (predict/defend) and bulk (attack/evaluate) — and load beyond a lane's
// limit is shed immediately with 429 + Retry-After instead of queuing.
// Per-route deadlines (-predict-deadline, -defend-deadline,
// -evaluate-timeout) bound how long any request holds resources; hits in
// the content-addressed result cache (-result-cache entries; -1
// disables) are answered bit-identically with no worker time. The
// process drains gracefully on SIGINT/SIGTERM: healthz flips to 503 so
// front doors stop routing here, new requests are refused, in-flight
// requests complete, then the batching service shuts down.
//
// Detection: -detect enables the detect-then-correct serving mode with a
// feature-squeezing discrepancy detector spec (bare "detect" selects the
// default bitdepth(bits=4)+median(r=1) ensemble; see FILTERS.md for the
// squeezer cookbook). Every external prediction is scored against the
// ensemble: clean-pass traffic is answered bit-identically to a
// non-detecting server, flagged inputs are re-routed through the heavier
// correction chain (-correct, default: the chain of the detector's own
// squeezers) and marked in the response's "detection" object. At startup
// the threshold is calibrated so the clean false-positive rate over the
// canonical class set hits -detect-fpr (negative keeps the spec's raw
// threshold). /v1/detect scores on demand — with or without -detect —
// and /v1/evaluate grows a detection axis (rate at the calibrated
// threshold, clean FPR, ROC AUC per attack series).
//
// Model registry: with -registry the server serves versioned models from
// the registry store instead of an anonymous profile-trained network.
// -model selects the version ("name@version", or a bare name for its
// latest); when the name has no versions yet, the legacy -profile path
// becomes a bootstrap — the profile's model is trained (or loaded from
// the weight cache) and registered as v1 before serving. Sibling
// versions can then be loaded and hot-swapped under live traffic via
// POST /v1/models without shedding or failing a single request.
//
// -front mode turns the binary into the multi-replica front door
// instead: a consistent-hash router over the listed backends with
// health-probe-driven ejection/readmission, bounded jittered retries on
// transport failures only (never on a received response), and optional
// hedging (-hedge > 0).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	fademl "repro"
	"repro/internal/gtsrb"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	profileName := flag.String("profile", "tiny", "experiment profile: tiny, default or paper")
	cacheDir := flag.String("cache", "testdata/cache", "weight cache directory")
	registryDir := flag.String("registry", "", "model registry root; serve versioned models from this store (empty = legacy profile mode)")
	modelSpec := flag.String("model", "", "registry model to serve: 'name@version' or a bare name for its latest (default: vgg-<profile>)")
	filterSpec := flag.String("filter", "lap(np=32)", "deployed pre-processing filter spec, e.g. 'lap(np=32)', 'chain(median(r=1),lar(r=2))', none")
	tmSpec := flag.String("tm", "2", "default threat model for requests that name none: 1, 2 or 3")
	detectSpec := flag.String("detect", "", "detect-then-correct mode: discrepancy detector spec, e.g. 'detect(squeezers=(bitdepth(bits=4),median(r=1)),thr=0.6)' or bare 'detect' (empty disables)")
	detectFPR := flag.Float64("detect-fpr", 0.05, "calibrate the detector threshold to this clean false-positive rate over the canonical class set at startup (negative keeps the spec's threshold)")
	correctSpec := flag.String("correct", "", "correction filter spec for flagged inputs (default: the chain of the detector's squeezers)")
	precSpec := flag.String("precision", "float64", "default inference precision lane for requests that name none: float64 (reference) or float32 (fast)")
	acqSeed := flag.Uint64("acq-seed", 97, "acquisition sensor-noise seed (TM-II capture stage)")
	workers := flag.Int("workers", runtime.NumCPU(), "inference worker pool size (one network clone each)")
	maxBatch := flag.Int("max-batch", 16, "micro-batch flush-on-full threshold (1 = no batching)")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "micro-batch flush-on-linger bound")
	attackWorkers := flag.Int("attack-workers", 1, "concurrent server-side attack crafting slots (-1 disables /v1/attack and /v1/evaluate)")
	attackMaxQueries := flag.Int("attack-max-queries", 5000, "hard per-request attack budget in classifier evaluations")
	attackTimeout := flag.Duration("attack-timeout", 30*time.Second, "hard per-request attack wall-clock cap")
	predictDeadline := flag.Duration("predict-deadline", 500*time.Millisecond, "server-side /v1/predict deadline (0 disables)")
	defendDeadline := flag.Duration("defend-deadline", 2*time.Second, "server-side /v1/defend deadline (0 disables)")
	evaluateTimeout := flag.Duration("evaluate-timeout", 2*time.Minute, "server-side /v1/evaluate wall-clock cap (0 disables)")
	interactiveLimit := flag.Int("interactive-limit", 0, "interactive lane admission bound (0 auto: 4×workers×max-batch; -1 unbounded)")
	bulkLimit := flag.Int("bulk-limit", 0, "bulk lane admission bound (0 auto: 4×attack-workers; -1 unbounded)")
	resultCache := flag.Int("result-cache", 0, "content-addressed result cache entries (0 auto: 4096; -1 disables)")
	writeTimeout := flag.Duration("write-timeout", 5*time.Minute, "HTTP response write bound (must exceed the slowest route)")
	drainTimeout := flag.Duration("drain-timeout", 0, "max wait for in-flight requests on shutdown (0 auto: evaluate-timeout + 5s, at least 30s)")
	drainGrace := flag.Duration("drain-grace", 2*time.Second, "window between failing healthz and closing the listener, so front doors observe the 503 and stop routing")
	frontOf := flag.String("front", "", "run as multi-replica front door over these comma-separated backend URLs instead of serving a model")
	probeInterval := flag.Duration("probe-interval", time.Second, "front: health-check cadence")
	ejectAfter := flag.Int("eject-after", 3, "front: consecutive probe failures that eject a replica")
	frontRetries := flag.Int("front-retries", 2, "front: max retries on other replicas after a transport failure")
	hedge := flag.Duration("hedge", 0, "front: duplicate a slow safe request to the next replica after this delay (0 disables)")
	flag.Parse()

	httpTimeouts := fademl.HTTPTimeouts{Write: *writeTimeout}

	if *frontOf != "" {
		runFront(*addr, strings.Split(*frontOf, ","), httpTimeouts, fademl.FrontOptions{
			ProbeInterval: *probeInterval,
			EjectAfter:    *ejectAfter,
			MaxRetries:    *frontRetries,
			Hedge:         *hedge,
		})
		return
	}

	// Validate user input at the flag boundary: a bad spec is a usage
	// error with a message, never a panic from deep inside the pipeline.
	filter, err := fademl.ParseFilter(*filterSpec)
	if err != nil {
		usageError(err)
	}
	tm, err := fademl.ParseThreatModel(*tmSpec)
	if err != nil {
		usageError(err)
	}
	prec, err := fademl.ParsePrecision(*precSpec)
	if err != nil {
		usageError(err)
	}
	if *maxBatch < 1 || *workers < 1 {
		usageError(fmt.Errorf("-max-batch and -workers must be at least 1 (got %d, %d)", *maxBatch, *workers))
	}
	detector, err := fademl.ParseDetector(*detectSpec)
	if err != nil {
		usageError(err)
	}
	correction, err := fademl.ParseFilter(*correctSpec)
	if err != nil {
		usageError(err)
	}
	if correction != nil && detector == nil {
		usageError(fmt.Errorf("-correct %q needs -detect (the correction chain only runs on flagged inputs)", *correctSpec))
	}
	if *detectFPR >= 1 {
		usageError(fmt.Errorf("-detect-fpr %v out of range [0, 1) (negative keeps the spec's threshold)", *detectFPR))
	}
	profile, err := fademl.ParseProfile(*profileName)
	if err != nil {
		usageError(err)
	}

	// The acquisition stage models the camera every benign input passes
	// under TM-II; requests for TM-1/TM-3 views simply bypass it.
	acq := fademl.NewAcquisition(1.0, 1.0/255, true, *acqSeed)

	evalCases := make([]fademl.EvalCase, len(fademl.PaperScenarios))
	for i, sc := range fademl.PaperScenarios {
		evalCases[i] = fademl.EvalCase{Source: sc.Source, Target: sc.Target}
	}
	opts := fademl.ServeOptions{
		Workers:          *workers,
		MaxBatch:         *maxBatch,
		MaxWait:          *maxWait,
		DefaultTM:        tm,
		Precision:        prec,
		ClassName:        gtsrb.ClassName,
		AttackWorkers:    *attackWorkers,
		AttackBudget:     fademl.Budget{MaxQueries: *attackMaxQueries},
		AttackTimeout:    *attackTimeout,
		Render:           gtsrb.Canonical,
		EvalCases:        evalCases,
		PredictDeadline:  *predictDeadline,
		DefendDeadline:   *defendDeadline,
		EvaluateTimeout:  *evaluateTimeout,
		InteractiveLimit: *interactiveLimit,
		BulkLimit:        *bulkLimit,
		CacheSize:        *resultCache,
		Detector:         detector,
		Correction:       correction,
	}

	var srv *fademl.Server
	var modelLabel string
	if *registryDir != "" {
		reg, err := fademl.OpenRegistry(*registryDir)
		if err != nil {
			log.Fatal(err)
		}
		opts.Registry = reg
		spec := *modelSpec
		if spec == "" {
			spec = "vgg-" + profile.Name
		}
		ref, rerr := reg.Resolve(spec)
		if rerr != nil {
			// Bootstrap: a bare name with no versions yet is seeded from
			// the legacy profile path — train (or load the weight cache)
			// and register the result as the name's first version. A
			// pinned version that is absent stays a hard error.
			pref, perr := fademl.ParseModelRef(spec)
			if perr != nil {
				usageError(perr)
			}
			if pref.Version != "" {
				log.Fatal(rerr)
			}
			log.Printf("fademl-serve: model %q has no versions in %s; bootstrapping from profile %s",
				pref.Name, *registryDir, profile.Name)
			env, err := fademl.NewEnv(profile, *cacheDir, os.Stdout)
			if err != nil {
				log.Fatal(err)
			}
			note := fmt.Sprintf("fademl-serve bootstrap, profile %s, clean top-1 %.2f%%", profile.Name, 100*env.CleanTop1)
			m, err := reg.Save(pref.Name, env.Net, profile.VGGArch(), fademl.RegistrySaveOptions{Note: note})
			if err != nil {
				log.Fatal(err)
			}
			ref = m.Ref()
		}
		model, err := reg.Load(ref)
		if err != nil {
			log.Fatal(err)
		}
		srv = fademl.NewServerFromModel(model, filter, acq, opts)
		modelLabel = "model " + ref.String()
	} else {
		env, err := fademl.NewEnv(profile, *cacheDir, os.Stdout)
		if err != nil {
			log.Fatal(err)
		}
		srv = fademl.NewServer(fademl.NewPipeline(env.Net, filter, acq), opts)
		modelLabel = "profile " + env.Profile.Name
	}
	// A float32 default lane that cannot be built (a topology ToFloat32
	// does not support) is a startup error, not a per-request 400.
	if prec == fademl.PrecisionFloat32 && !srv.Float32Available() {
		srv.Close()
		usageError(fmt.Errorf("-precision float32: %s", "float32 lane unavailable for this model"))
	}
	// Calibrate the detector before the listener opens: the threshold and
	// the cache-key spec must be settled before any external traffic.
	if detector != nil && *detectFPR >= 0 {
		size := srv.InputShape()[1]
		clean := make([]*fademl.Tensor, fademl.NumClasses)
		for c := range clean {
			clean[c] = gtsrb.Canonical(c, size)
		}
		thr, err := srv.CalibrateDetector(context.Background(), clean, *detectFPR)
		if err != nil {
			srv.Close()
			log.Fatal(err)
		}
		log.Printf("fademl-serve: detector %s calibrated to clean FPR %.3f over %d canonical signs (threshold %.4f)",
			srv.DetectorSpec(), *detectFPR, len(clean), thr)
	}

	httpSrv := fademl.NewHTTPServer(*addr, srv.Handler(), httpTimeouts)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	filterName := "none"
	if filter != nil {
		filterName = filter.Name()
	}
	detectorName := "off"
	if detector != nil {
		detectorName = srv.DetectorSpec()
	}
	log.Printf("fademl-serve: %s, filter %s, detector %s, default %v/%v, %d workers, batch ≤%d, linger ≤%v on %s",
		modelLabel, filterName, detectorName, tm, prec, *workers, *maxBatch, *maxWait, *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Print("fademl-serve: signal received, draining...")
		// Drain order matters: flip healthz to 503 and refuse new work
		// first (front doors and load balancers stop routing here), then
		// drain the listener (in-flight HTTP requests complete), then
		// stop the batching service. The drain window must cover the
		// slowest admitted route — an in-flight evaluate sweep — or
		// shutdown cuts its connection mid-response.
		srv.BeginDrain()
		// Keep the listener open for a grace window: Shutdown kills idle
		// keep-alive connections and refuses new ones immediately, so
		// without it no probe would ever observe the 503.
		time.Sleep(*drainGrace)
		wait := *drainTimeout
		if wait <= 0 {
			wait = *evaluateTimeout + 5*time.Second
			if min := 30 * time.Second; wait < min {
				wait = min
			}
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), wait)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("fademl-serve: shutdown: %v", err)
		}
	}
	srv.Close()
	st := srv.Stats()
	log.Printf("fademl-serve: done — %d requests in %d batches (mean occupancy %.2f, p50 %.2fms, p99 %.2fms); "+
		"lanes interactive %d/%d shed, bulk %d/%d shed; cache %.0f%% hit",
		st.Requests, st.Batches, st.MeanBatchOccupancy, st.P50LatencyMs, st.P99LatencyMs,
		st.Interactive.Shed, st.Interactive.Admitted, st.Bulk.Shed, st.Bulk.Admitted,
		100*st.Cache.HitRate)
}

// runFront runs the binary as the multi-replica front door.
func runFront(addr string, backends []string, t fademl.HTTPTimeouts, opts fademl.FrontOptions) {
	for i := range backends {
		backends[i] = strings.TrimRight(strings.TrimSpace(backends[i]), "/")
	}
	opts.Backends = backends
	f, err := fademl.NewFront(opts)
	if err != nil {
		usageError(err)
	}
	httpSrv := fademl.NewHTTPServer(addr, f.Handler(), t)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("fademl-front: routing %d backends on %s (probe %v, eject after %d, retries %d, hedge %v)",
		len(backends), addr, opts.ProbeInterval, opts.EjectAfter, opts.MaxRetries, opts.Hedge)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Print("fademl-front: signal received, draining...")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("fademl-front: shutdown: %v", err)
		}
	}
	f.Close()
	for _, r := range f.Snapshot() {
		log.Printf("fademl-front: %s healthy=%v proxied=%d errs=%d ejections=%d",
			r.URL, r.Healthy, r.Proxied, r.Errs, r.Ejections)
	}
}

func usageError(err error) {
	fmt.Fprintf(os.Stderr, "fademl-serve: %v\n", err)
	flag.Usage()
	os.Exit(2)
}
