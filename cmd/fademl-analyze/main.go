// Command fademl-analyze runs the paper's Section III analysis
// methodology (Fig. 3): for each attack × scenario it generates a
// filter-blind adversarial example, infers under Threat Model I and under
// Threat Model II/III through the deployed filter, and reports the
// predictions, the Eq. 2 cost, and whether the filter neutralized the
// attack.
//
// Usage:
//
//	fademl-analyze [-profile default] [-filter 'lap(np=32)'] [-tm 3]
//	               [-attacks 'lbfgs,fgsm,bim(eps=0.1,steps=40)']
//
// The -attacks flag takes a comma-separated list of attack specs; commas
// inside a spec's parameter list are handled. The -filter flag takes a
// filter spec ('median(r=2)', 'chain(median(r=1),histeq(bins=64))', a
// legacy LAP:32, or none). Ctrl-C cancels the sweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	fademl "repro"
	"repro/internal/analysis"
	"repro/internal/parallel"
)

func main() {
	profileName := flag.String("profile", "default", "experiment profile: tiny, default or paper")
	cacheDir := flag.String("cache", "testdata/cache", "weight cache directory")
	filterSpec := flag.String("filter", "lap(np=32)", "deployed pre-processing filter spec, e.g. 'lap(np=32)' or 'chain(median(r=1),lar(r=2))'")
	attackList := flag.String("attacks", "lbfgs,fgsm,bim", "comma-separated attack specs, e.g. 'fgsm,pgd(eps=0.03,steps=40)'")
	tmFlag := flag.String("tm", "3", "threat model for filtered delivery: 2 or 3 (also accepts tm2, TM-III, ...)")
	workers := flag.Int("workers", runtime.NumCPU(), "experiment worker pool size (1 = serial; results are identical either way)")
	flag.Parse()
	parallel.SetWorkers(*workers)

	// Flag validation happens before any model loads: a bad -tm or -filter
	// spec is a usage error, not a panic from inside the pipeline.
	tm, err := fademl.ParseThreatModel(*tmFlag)
	if err != nil {
		usageError(err)
	}
	if tm == fademl.TM1 {
		usageError(fmt.Errorf("threat model %v has no filtered delivery; use 2 or 3", tm))
	}
	filter, err := fademl.ParseFilter(*filterSpec)
	if err != nil {
		usageError(err)
	}
	p, err := fademl.ParseProfile(*profileName)
	if err != nil {
		usageError(err)
	}
	env, err := fademl.NewEnv(p, *cacheDir, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	var acq *fademl.Acquisition
	if tm == fademl.TM2 {
		acq = fademl.NewAcquisition(1.0, 1.0/255, true, 97)
	}
	pipe := fademl.NewPipeline(env.Net, filter, acq)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	filterName := "none"
	if filter != nil {
		filterName = filter.Name()
	}

	fmt.Printf("\nSection III analysis — filter %s, %v, profile %s\n\n",
		filterName, tm, p.Name)
	var comparisons []analysis.Comparison
sweep:
	for _, spec := range fademl.SplitAttackSpecs(*attackList) {
		atk, err := fademl.ParseAttack(spec)
		if err != nil {
			usageError(err)
		}
		for _, sc := range fademl.PaperScenarios {
			if ctx.Err() != nil {
				// Ctrl-C: under the v2 contract a cancelled Execute returns
				// a truncated best-so-far outcome, not an error — stop the
				// sweep here instead of aggregating post-cancel cells.
				fmt.Println("\nsweep interrupted — summarizing completed cells only")
				break sweep
			}
			out, err := fademl.Execute(ctx, fademl.Run{
				Pipeline: pipe, Attack: atk, FilterAware: false, TM: tm,
			}, sc.CleanImage(env.Profile.Size), sc.Source, sc.Target)
			if err != nil {
				log.Fatal(err)
			}
			if out.AttackerResult.Truncated {
				fmt.Printf("%s [TRUNCATED]\n", out.Comparison.String())
				continue
			}
			comparisons = append(comparisons, out.Comparison)
			fmt.Println(out.Comparison.String())
		}
	}
	neutralized, applicable := 0, 0
	for _, c := range comparisons {
		if c.TM1Pred == c.Target {
			applicable++
			if c.Neutralized {
				neutralized++
			}
		}
	}
	fmt.Printf("\nTM-I-successful attacks neutralized by %s: %d/%d\n",
		filterName, neutralized, applicable)
}

func usageError(err error) {
	fmt.Fprintf(os.Stderr, "fademl-analyze: %v\n", err)
	flag.Usage()
	os.Exit(2)
}
