// Command fademl-analyze runs the paper's Section III analysis
// methodology (Fig. 3): for each attack × scenario it generates a
// filter-blind adversarial example, infers under Threat Model I and under
// Threat Model II/III through the deployed filter, and reports the
// predictions, the Eq. 2 cost, and whether the filter neutralized the
// attack.
//
// Usage:
//
//	fademl-analyze [-profile default] [-filter LAP:32] [-attacks lbfgs,fgsm,bim] [-tm 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	fademl "repro"
	"repro/internal/analysis"
	"repro/internal/parallel"
)

func main() {
	profileName := flag.String("profile", "default", "experiment profile: tiny, default or paper")
	cacheDir := flag.String("cache", "testdata/cache", "weight cache directory")
	filterSpec := flag.String("filter", "LAP:32", "deployed pre-processing filter, e.g. LAP:32 or LAR:3")
	attackList := flag.String("attacks", "lbfgs,fgsm,bim", "comma-separated attack names")
	tmFlag := flag.Int("tm", 3, "threat model for filtered delivery: 2 or 3")
	workers := flag.Int("workers", runtime.NumCPU(), "experiment worker pool size (1 = serial; results are identical either way)")
	flag.Parse()
	parallel.SetWorkers(*workers)

	p, err := profileByName(*profileName)
	if err != nil {
		log.Fatal(err)
	}
	env, err := fademl.NewEnv(p, *cacheDir, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	filter, err := parseFilter(*filterSpec)
	if err != nil {
		log.Fatal(err)
	}
	var tm fademl.ThreatModel
	var acq *fademl.Acquisition
	switch *tmFlag {
	case 2:
		tm = fademl.TM2
		acq = fademl.NewAcquisition(1.0, 1.0/255, true, 97)
	case 3:
		tm = fademl.TM3
	default:
		log.Fatalf("threat model %d: want 2 or 3", *tmFlag)
	}
	pipe := fademl.NewPipeline(env.Net, filter, acq)

	fmt.Printf("\nSection III analysis — filter %s, %v, profile %s\n\n",
		filter.Name(), tm, p.Name)
	var comparisons []analysis.Comparison
	for _, name := range strings.Split(*attackList, ",") {
		name = strings.TrimSpace(name)
		atk, err := fademl.NewAttack(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, sc := range fademl.PaperScenarios {
			out, err := fademl.Execute(fademl.Run{
				Pipeline: pipe, Attack: atk, FilterAware: false, TM: tm,
			}, sc.CleanImage(env.Profile.Size), sc.Source, sc.Target)
			if err != nil {
				log.Fatal(err)
			}
			comparisons = append(comparisons, out.Comparison)
			fmt.Println(out.Comparison.String())
		}
	}
	neutralized, applicable := 0, 0
	for _, c := range comparisons {
		if c.TM1Pred == c.Target {
			applicable++
			if c.Neutralized {
				neutralized++
			}
		}
	}
	fmt.Printf("\nTM-I-successful attacks neutralized by %s: %d/%d\n",
		filter.Name(), neutralized, applicable)
}

func profileByName(name string) (fademl.Profile, error) {
	switch name {
	case "tiny":
		return fademl.ProfileTiny(), nil
	case "default":
		return fademl.ProfileDefault(), nil
	case "paper":
		return fademl.ProfilePaper(), nil
	default:
		return fademl.Profile{}, fmt.Errorf("unknown profile %q (tiny|default|paper)", name)
	}
}

func parseFilter(spec string) (fademl.Filter, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("filter spec %q: want KIND:PARAM, e.g. LAP:32", spec)
	}
	v, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("filter spec %q: %v", spec, err)
	}
	switch strings.ToUpper(parts[0]) {
	case "LAP":
		return fademl.NewLAP(v), nil
	case "LAR":
		return fademl.NewLAR(v), nil
	case "MEDIAN":
		return fademl.NewMedian(v), nil
	case "GAUSS":
		return fademl.NewGaussian(float64(v)), nil
	default:
		return nil, fmt.Errorf("unknown filter kind %q (LAP|LAR|MEDIAN|GAUSS)", parts[0])
	}
}
