// Command fademl-train generates the synthetic GTSRB dataset, trains the
// profile's VGGNet, reports clean accuracy and writes the weights to the
// cache (and optionally to an explicit path).
//
// Usage:
//
//	fademl-train [-profile tiny|default|paper] [-cache DIR] [-out FILE]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	fademl "repro"
)

func main() {
	profileName := flag.String("profile", "default", "experiment profile: tiny, default or paper")
	cacheDir := flag.String("cache", "testdata/cache", "weight cache directory (empty to disable)")
	out := flag.String("out", "", "optional explicit weights output path")
	flag.Parse()

	p, err := fademl.ParseProfile(*profileName)
	if err != nil {
		log.Fatal(err)
	}
	env, err := fademl.NewEnv(p, *cacheDir, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile %s: %d train / %d test images, clean top-1 %.2f%%, top-5 %.2f%%\n",
		p.Name, env.TrainSet.Len(), env.TestSet.Len(), 100*env.CleanTop1, 100*env.CleanTop5)
	if *out != "" {
		if err := env.Net.SaveWeightsFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("weights written to %s\n", *out)
	}
}
