// Command fademl-train generates the synthetic GTSRB dataset, trains the
// profile's VGGNet, reports clean accuracy and writes the weights to the
// cache (and optionally to an explicit path).
//
// The optional -filter flag takes a filter spec ('lap(np=32)',
// 'chain(median(r=1),lar(r=2))', a legacy LAP:32 form, or none) and
// additionally reports clean test accuracy through that pre-processing —
// the quick way to check a candidate defense's accuracy cost (the
// paper's inverted-U) before deploying it.
//
// The trained model can be published into a versioned model registry
// with -register: the registry mints the next version (v1, v2, …),
// records the architecture spec and weight SHA-256 in a manifest, and
// dedupes identical weights. fademl-serve -registry then serves (and
// hot-swaps between) registered versions.
//
// Usage:
//
//	fademl-train [-profile tiny|default|paper] [-cache DIR] [-out FILE]
//	             [-filter 'lap(np=32)'] [-register NAME] [-registry DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	fademl "repro"
	"repro/internal/registry"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	profileName := flag.String("profile", "default", "experiment profile: tiny, default or paper")
	cacheDir := flag.String("cache", "testdata/cache", "weight cache directory (empty to disable)")
	out := flag.String("out", "", "optional explicit weights output path (a sidecar .manifest.json records the architecture and weight hash)")
	filterSpec := flag.String("filter", "", "also report clean accuracy through this filter spec, e.g. 'lap(np=32)' or 'chain(median(r=1),lar(r=2))'")
	registerName := flag.String("register", "", "publish the trained model into the registry under this name (mints the next version)")
	registryDir := flag.String("registry", "testdata/registry", "model registry root for -register")
	flag.Parse()

	// Flag validation happens before any model trains: a bad -filter spec
	// is a usage error, not a wasted training run.
	filter, err := fademl.ParseFilter(*filterSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fademl-train: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	p, err := fademl.ParseProfile(*profileName)
	if err != nil {
		log.Fatal(err)
	}
	env, err := fademl.NewEnv(p, *cacheDir, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile %s: %d train / %d test images, clean top-1 %.2f%%, top-5 %.2f%%\n",
		p.Name, env.TrainSet.Len(), env.TestSet.Len(), 100*env.CleanTop1, 100*env.CleanTop5)
	if filter != nil {
		m := train.EvaluateBatchWorkers(env.Net, env.TestSet,
			func(imgs []*tensor.Tensor, _ []int) []*tensor.Tensor {
				return filter.ApplyBatch(imgs)
			}, 0)
		fmt.Printf("through %s: top-1 %.2f%%, top-5 %.2f%% (accuracy cost %.2f points top-1)\n",
			filter.Name(), 100*m.Top1, 100*m.Top5, 100*(env.CleanTop1-m.Top1))
	}
	if *out != "" {
		hash, err := registry.SaveFileWithManifest(*out, env.Net, p.VGGArch(), "fademl-train, profile "+p.Name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("weights written to %s (sha256 %.12s…, sidecar %s)\n", *out, hash, *out+registry.ManifestSuffix)
	}
	if *registerName != "" {
		reg, err := fademl.OpenRegistry(*registryDir)
		if err != nil {
			log.Fatal(err)
		}
		note := fmt.Sprintf("fademl-train, profile %s, clean top-1 %.2f%%", p.Name, 100*env.CleanTop1)
		m, err := reg.Save(*registerName, env.Net, p.VGGArch(), fademl.RegistrySaveOptions{Note: note})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered %s@%s in %s (sha256 %.12s…)\n",
			m.Manifest.Name, m.Manifest.Version, *registryDir, m.Manifest.WeightsSHA256)
	}
}
