package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	fademl "repro"
	"repro/internal/attacks"
	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// benchResult is one benchmark's measurement in the BENCH_*.json
// trajectory files (schema documented in PERFORMANCE.md).
type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// benchReport is the top-level JSON document.
type benchReport struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	CPUs       int           `json:"cpus"`
	Workers    int           `json:"workers"`
	Profile    string        `json:"profile"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// writeBenchJSON runs the selected benchmarks (the figure regenerations
// and substrate micro-benchmarks PERFORMANCE.md tracks) via
// testing.Benchmark and writes the results to path.
func writeBenchJSON(path, selected string, p fademl.Profile, cacheDir string, workers int) error {
	env, err := fademl.NewEnv(p, cacheDir, os.Stderr)
	if err != nil {
		return err
	}
	sc := fademl.PaperScenarios[0]
	clean := sc.CleanImage(env.Profile.Size)
	goal := attacks.Goal{Source: sc.Source, Target: sc.Target}
	sweep := fademl.SweepOptions{
		IncludeCurves:  true,
		CurveScenarios: []fademl.Scenario{fademl.PaperScenarios[0]},
	}

	// Each runner mirrors its bench_test.go counterpart; the optional
	// metric lands in the JSON "metrics" map via b.ReportMetric.
	runners := map[string]func(b *testing.B){
		"matmul": func(b *testing.B) {
			b.ReportAllocs()
			rng := mathx.NewRNG(2)
			x := tensor.RandN(rng, 128, 128)
			y := tensor.RandN(rng, 128, 128)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMul(x, y)
			}
		},
		"vggforward": func(b *testing.B) {
			b.ReportAllocs()
			img := gtsrb.Canonical(gtsrb.ClassStop, env.Profile.Size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Net.Probs(img)
			}
		},
		"vgginputgrad": func(b *testing.B) {
			b.ReportAllocs()
			img := gtsrb.Canonical(gtsrb.ClassStop, env.Profile.Size)
			loss := nn.CrossEntropy{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Net.LossAndInputGrad(img, gtsrb.ClassSpeed60, loss)
			}
		},
		"onepixel": func(b *testing.B) {
			b.ReportAllocs()
			cls := attacks.NetClassifier{Net: env.Net}
			atk := &attacks.OnePixel{Pixels: 1, Population: 10, Generations: 5, Seed: 7}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := atk.Generate(context.Background(), cls, clean, goal); err != nil {
					b.Fatal(err)
				}
			}
		},
		// serve / serve_unbatched measure the micro-batching service under
		// concurrent clients on the full TM-II path; the occupancy metric
		// shows how much coalescing happened (1.0 = none possible).
		"serve": func(b *testing.B) {
			benchServe(b, env, clean, 16)
		},
		"serve_unbatched": func(b *testing.B) {
			benchServe(b, env, clean, 1)
		},
		"fig7": func(b *testing.B) {
			b.ReportAllocs()
			var rate float64
			for i := 0; i < b.N; i++ {
				res, err := fademl.RunFig7(context.Background(), env, sweep)
				if err != nil {
					b.Fatal(err)
				}
				rate = res.NeutralizationRate()
			}
			b.ReportMetric(100*rate, "pct_neutralized")
		},
		"fig9": func(b *testing.B) {
			b.ReportAllocs()
			var rate float64
			for i := 0; i < b.N; i++ {
				res, err := fademl.RunFig9(context.Background(), env, sweep)
				if err != nil {
					b.Fatal(err)
				}
				rate = res.SurvivalRate()
			}
			b.ReportMetric(100*rate, "pct_survived")
		},
	}

	report := benchReport{
		Schema:    "fademl-bench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Workers:   workers,
		Profile:   env.Profile.Name,
	}
	for _, name := range strings.Split(selected, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "filters" {
			// The filter micro-benchmarks emit one entry per registered
			// filter (per-image ns/op + batched speedup) instead of a
			// single testing.Benchmark run.
			fmt.Fprintln(os.Stderr, "benchmarking filters...")
			results := filterBenchResults()
			report.Benchmarks = append(report.Benchmarks, results...)
			for _, r := range results {
				fmt.Fprintf(os.Stderr, "  %s: %.0f ns/op serial, %.2fx batched\n",
					r.Name, r.NsPerOp, r.Metrics["batched_speedup"])
			}
			continue
		}
		fn, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown benchmark %q (have: matmul, vggforward, vgginputgrad, onepixel, serve, serve_unbatched, fig7, fig9, filters)", name)
		}
		fmt.Fprintf(os.Stderr, "benchmarking %s...\n", name)
		r := testing.Benchmark(fn)
		res := benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		report.Benchmarks = append(report.Benchmarks, res)
		fmt.Fprintf(os.Stderr, "  %s: %d iter, %.0f ns/op, %d B/op, %d allocs/op\n",
			name, res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// filterBatchSize is the batch the filter micro-benchmarks time — the
// serving layer's default micro-batch.
const filterBatchSize = 16

// timeOp measures fn's wall time per call: one warmup, then enough
// repetitions to accumulate ~30ms of work.
func timeOp(fn func()) float64 {
	fn() // warmup (builds stencil tap tables etc.)
	start := time.Now()
	fn()
	once := time.Since(start)
	reps := 1
	if once > 0 {
		if r := int(30 * time.Millisecond / once); r > reps {
			reps = r
		}
	}
	if reps > 1000 {
		reps = 1000
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}

// filterBenchResults measures every registered filter (plus a
// representative chain) on 32×32 RGB images: serial per-image Apply
// ns/op, the 16-image ApplyBatch ns/op, and the batched speedup — the
// per-filter trajectory PERFORMANCE.md tracks for the Defense API v2.
func filterBenchResults() []benchResult {
	rng := mathx.NewRNG(7)
	batch := make([]*tensor.Tensor, filterBatchSize)
	for i := range batch {
		batch[i] = tensor.RandU(rng, 0, 1, 3, 32, 32)
	}
	specs := append(filters.Names(), "chain(median(r=1),histeq(bins=64))")
	var out []benchResult
	for _, spec := range specs {
		f, err := filters.Parse(spec)
		if err != nil {
			continue
		}
		serialNs := timeOp(func() { filters.SerialBatch(f, batch) })
		batchNs := timeOp(func() { f.ApplyBatch(batch) })
		res := benchResult{
			Name:       "filter_" + strings.ToLower(strings.SplitN(spec, "(", 2)[0]),
			Iterations: filterBatchSize,
			NsPerOp:    serialNs / filterBatchSize,
			Metrics: map[string]float64{
				"batch16_ns_per_op": batchNs,
				"batched_speedup":   serialNs / batchNs,
			},
		}
		out = append(out, res)
	}
	return out
}

// benchServe is the shared body of the serve / serve_unbatched runners:
// 32 concurrent clients per CPU against one Server on the TM-II path —
// enough standing load to keep flush-on-full the dominant trigger.
func benchServe(b *testing.B, env *fademl.Env, img *fademl.Tensor, maxBatch int) {
	b.ReportAllocs()
	acq := fademl.NewAcquisition(1.0, 1.0/255, true, 97)
	pipe := fademl.NewPipeline(env.Net, fademl.NewLAP(32), acq)
	s := fademl.NewServer(pipe, fademl.ServeOptions{MaxBatch: maxBatch, MaxWait: 2 * time.Millisecond})
	defer s.Close()
	ctx := context.Background()
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := s.Predict(ctx, img, fademl.TM2); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(st.MeanBatchOccupancy, "mean_batch_occupancy")
	b.ReportMetric(st.P99LatencyMs, "p99_latency_ms")
}
