package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	fademl "repro"
	"repro/internal/attacks"
	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// benchResult is one benchmark's measurement in the BENCH_*.json
// trajectory files (schema documented in PERFORMANCE.md).
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Precision labels the numeric lane a benchmark exercised
	// ("float64"/"float32"); empty for precision-agnostic benchmarks.
	Precision string             `json:"precision,omitempty"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
}

// benchPrecision maps precision-lane benchmarks to their label.
var benchPrecision = map[string]string{
	"matmul":       "float64",
	"matmul32":     "float32",
	"vggforward":   "float64",
	"vggforward32": "float32",
	"serve":        "float64",
	"serve_f32":    "float32",
}

// f32Variant maps a precision-aware float64 benchmark to its float32
// counterpart; expandPrecisions uses it to sweep lanes.
var f32Variant = map[string]string{
	"matmul":     "matmul32",
	"vggforward": "vggforward32",
	"serve":      "serve_f32",
}

// expandPrecisions rewrites a -bench-select list per the -precisions
// sweep: each precision-aware entry is emitted once per requested lane
// (its own name for float64, the f32Variant name for float32), keeping
// order and deduplicating. An empty sweep is the identity.
func expandPrecisions(names []string, precs []fademl.Precision) []string {
	if len(precs) == 0 {
		return names
	}
	var out []string
	seen := make(map[string]bool)
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, n := range names {
		v, aware := f32Variant[n]
		if !aware {
			add(n)
			continue
		}
		for _, p := range precs {
			if p == fademl.PrecisionFloat32 {
				add(v)
			} else {
				add(n)
			}
		}
	}
	return out
}

// benchReport is the top-level JSON document.
type benchReport struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	CPUs       int           `json:"cpus"`
	Workers    int           `json:"workers"`
	Profile    string        `json:"profile"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// writeBenchJSON runs the selected benchmarks (the figure regenerations
// and substrate micro-benchmarks PERFORMANCE.md tracks) via
// testing.Benchmark and writes the results to path. precisions is the
// -precisions sweep: a comma-separated lane list that expands every
// precision-aware benchmark in selected across those lanes.
func writeBenchJSON(path, selected, precisions string, p fademl.Profile, cacheDir string, workers int) error {
	var precs []fademl.Precision
	for _, s := range strings.Split(precisions, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		prec, err := fademl.ParsePrecision(s)
		if err != nil {
			return err
		}
		precs = append(precs, prec)
	}
	env, err := fademl.NewEnv(p, cacheDir, os.Stderr)
	if err != nil {
		return err
	}
	sc := fademl.PaperScenarios[0]
	clean := sc.CleanImage(env.Profile.Size)
	goal := attacks.Goal{Source: sc.Source, Target: sc.Target}
	sweep := fademl.SweepOptions{
		IncludeCurves:  true,
		CurveScenarios: []fademl.Scenario{fademl.PaperScenarios[0]},
	}

	// Each runner mirrors its bench_test.go counterpart; the optional
	// metric lands in the JSON "metrics" map via b.ReportMetric.
	runners := map[string]func(b *testing.B){
		"matmul": func(b *testing.B) {
			b.ReportAllocs()
			rng := mathx.NewRNG(2)
			x := tensor.RandN(rng, 128, 128)
			y := tensor.RandN(rng, 128, 128)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMul(x, y)
			}
		},
		// matmul32 is the float32 fast-lane GEMM at the same shape as
		// matmul — the pair is the PR-7 ≥2× speedup gate.
		"matmul32": func(b *testing.B) {
			b.ReportAllocs()
			rng := mathx.NewRNG(2)
			x := tensor.RandN(rng, 128, 128).Float32()
			y := tensor.RandN(rng, 128, 128).Float32()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMul32(x, y)
			}
		},
		"vggforward": func(b *testing.B) {
			b.ReportAllocs()
			img := gtsrb.Canonical(gtsrb.ClassStop, env.Profile.Size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Net.Probs(img)
			}
		},
		// vggforward32 is the same single-image forward on the float32
		// snapshot (fused conv+ReLU / dense+ReLU, SSE GEMM core).
		"vggforward32": func(b *testing.B) {
			b.ReportAllocs()
			n32, err := env.Net.ToFloat32()
			if err != nil {
				b.Fatal(err)
			}
			img := gtsrb.Canonical(gtsrb.ClassStop, env.Profile.Size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n32.Probs(img)
			}
		},
		"vgginputgrad": func(b *testing.B) {
			b.ReportAllocs()
			img := gtsrb.Canonical(gtsrb.ClassStop, env.Profile.Size)
			loss := nn.CrossEntropy{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Net.LossAndInputGrad(img, gtsrb.ClassSpeed60, loss)
			}
		},
		"onepixel": func(b *testing.B) {
			b.ReportAllocs()
			cls := attacks.NetClassifier{Net: env.Net}
			atk := &attacks.OnePixel{Pixels: 1, Population: 10, Generations: 5, Seed: 7}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := atk.Generate(context.Background(), cls, clean, goal); err != nil {
					b.Fatal(err)
				}
			}
		},
		// serve / serve_unbatched measure the micro-batching service under
		// concurrent clients on the full TM-II path; the occupancy metric
		// shows how much coalescing happened (1.0 = none possible). Both
		// disable the result cache — the workload repeats one image, and a
		// cache hit would bypass the batching path entirely.
		"serve": func(b *testing.B) {
			benchServe(b, env, clean, 16, -1, fademl.PrecisionFloat64)
		},
		"serve_unbatched": func(b *testing.B) {
			benchServe(b, env, clean, 1, -1, fademl.PrecisionFloat64)
		},
		// serve_cached measures the same workload with the content-addressed
		// cache on: after the first miss every request is a hit, so this is
		// the hit path's ns/op.
		"serve_cached": func(b *testing.B) {
			benchServe(b, env, clean, 16, 0, fademl.PrecisionFloat64)
		},
		// serve_f32 is the batched serving workload on the float32 lane.
		"serve_f32": func(b *testing.B) {
			benchServe(b, env, clean, 16, -1, fademl.PrecisionFloat32)
		},
		"fig7": func(b *testing.B) {
			b.ReportAllocs()
			var rate float64
			for i := 0; i < b.N; i++ {
				res, err := fademl.RunFig7(context.Background(), env, sweep)
				if err != nil {
					b.Fatal(err)
				}
				rate = res.NeutralizationRate()
			}
			b.ReportMetric(100*rate, "pct_neutralized")
		},
		"fig9": func(b *testing.B) {
			b.ReportAllocs()
			var rate float64
			for i := 0; i < b.N; i++ {
				res, err := fademl.RunFig9(context.Background(), env, sweep)
				if err != nil {
					b.Fatal(err)
				}
				rate = res.SurvivalRate()
			}
			b.ReportMetric(100*rate, "pct_survived")
		},
	}

	report := benchReport{
		Schema:    "fademl-bench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Workers:   workers,
		Profile:   env.Profile.Name,
	}
	var names []string
	for _, name := range strings.Split(selected, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	for _, name := range expandPrecisions(names, precs) {
		if name == "precision_drift" {
			// The drift runner is a scenario, not a b.N loop: it compares
			// the two lanes on the clean class fixtures and enforces the
			// ≥99% top-1 agreement gate.
			fmt.Fprintln(os.Stderr, "benchmarking precision_drift...")
			r, err := precisionDriftResult(env)
			if err != nil {
				return err
			}
			report.Benchmarks = append(report.Benchmarks, r)
			fmt.Fprintf(os.Stderr, "  precision_drift: top-1 agreement %.2f%%, max |Δprob| %.2e\n",
				r.Metrics["top1_agreement_pct"], r.Metrics["max_abs_dprob"])
			continue
		}
		if name == "overload" {
			// The tail-latency runner is a scenario, not a b.N loop: it
			// reports predict p99 unloaded vs. overloaded (bulk lane at 2×
			// capacity, one of two inference workers killed).
			fmt.Fprintln(os.Stderr, "benchmarking overload...")
			r := overloadBenchResult(env, clean)
			report.Benchmarks = append(report.Benchmarks, r)
			fmt.Fprintf(os.Stderr, "  overload: p99 %.2fms unloaded → %.2fms overloaded (%.1fx), %d bulk sheds\n",
				r.Metrics["p99_unloaded_ms"], r.Metrics["p99_overloaded_ms"],
				r.Metrics["overload_ratio"], int(r.Metrics["bulk_shed"]))
			continue
		}
		if name == "serve_swap" {
			// The hot-swap runner is a scenario, not a b.N loop: standing
			// clients measure predict p99 while the default model version
			// is flipped under them; any client-visible failure is an
			// error, not a data point.
			fmt.Fprintln(os.Stderr, "benchmarking serve_swap...")
			r, err := serveSwapBenchResult(env, clean)
			if err != nil {
				return err
			}
			report.Benchmarks = append(report.Benchmarks, r)
			fmt.Fprintf(os.Stderr, "  serve_swap: p99 %.2fms steady → %.2fms during %d swaps (%.2fx), 0 failures\n",
				r.Metrics["p99_steady_ms"], r.Metrics["p99_swap_ms"],
				int(r.Metrics["swaps"]), r.Metrics["swap_ratio"])
			continue
		}
		if name == "adaptive_gap" {
			// The blind-vs-adaptive runner is a scenario, not a b.N loop: it
			// sweeps one attack over a randomized deployed defense under the
			// blind / eot / bpda crafting modes and gates honest (adaptive)
			// fooling ≥ blind fooling.
			fmt.Fprintln(os.Stderr, "benchmarking adaptive_gap...")
			r, err := adaptiveGapBenchResult(env)
			if err != nil {
				return err
			}
			report.Benchmarks = append(report.Benchmarks, r)
			fmt.Fprintf(os.Stderr, "  adaptive_gap: blind %.0f%% → eot %.0f%% / bpda %.0f%% fooling (gap %+.0f pts) on %s\n",
				100*r.Metrics["blind_rate"], 100*r.Metrics["eot_rate"], 100*r.Metrics["bpda_rate"],
				100*r.Metrics["best_gap"], benchAdaptiveFilter)
			continue
		}
		if name == "detect" {
			// The detection runner is a scenario, not a b.N loop: it gates
			// the detector's FGSM ROC AUC and the detect-then-correct route's
			// latency overhead against a plain server.
			fmt.Fprintln(os.Stderr, "benchmarking detect...")
			r, err := detectBenchResult(env, clean)
			if err != nil {
				return err
			}
			report.Benchmarks = append(report.Benchmarks, r)
			fmt.Fprintf(os.Stderr, "  detect: p50 %.2fms plain → %.2fms detecting (%.2fx), BIM AUC %.3f, rate %.0f%% @ thr %.3f\n",
				r.Metrics["plain_p50_ms"], r.Metrics["detect_p50_ms"], r.Metrics["detect_ratio"],
				r.Metrics["auc"], 100*r.Metrics["detection_rate"], r.Metrics["threshold"])
			continue
		}
		if name == "filters" {
			// The filter micro-benchmarks emit one entry per registered
			// filter (per-image ns/op + batched speedup) instead of a
			// single testing.Benchmark run.
			fmt.Fprintln(os.Stderr, "benchmarking filters...")
			results := filterBenchResults()
			report.Benchmarks = append(report.Benchmarks, results...)
			for _, r := range results {
				fmt.Fprintf(os.Stderr, "  %s: %.0f ns/op serial, %.2fx batched\n",
					r.Name, r.NsPerOp, r.Metrics["batched_speedup"])
			}
			continue
		}
		fn, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown benchmark %q (have: matmul, matmul32, vggforward, vggforward32, vgginputgrad, onepixel, serve, serve_unbatched, serve_cached, serve_f32, serve_swap, overload, precision_drift, detect, adaptive_gap, fig7, fig9, filters)", name)
		}
		fmt.Fprintf(os.Stderr, "benchmarking %s...\n", name)
		r := testing.Benchmark(fn)
		res := benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Precision:   benchPrecision[name],
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		report.Benchmarks = append(report.Benchmarks, res)
		fmt.Fprintf(os.Stderr, "  %s: %d iter, %.0f ns/op, %d B/op, %d allocs/op\n",
			name, res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// filterBatchSize is the batch the filter micro-benchmarks time — the
// serving layer's default micro-batch.
const filterBatchSize = 16

// timeOp measures fn's wall time per call: one warmup, then enough
// repetitions to accumulate ~30ms of work.
func timeOp(fn func()) float64 {
	fn() // warmup (builds stencil tap tables etc.)
	start := time.Now()
	fn()
	once := time.Since(start)
	reps := 1
	if once > 0 {
		if r := int(30 * time.Millisecond / once); r > reps {
			reps = r
		}
	}
	if reps > 1000 {
		reps = 1000
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}

// filterBenchResults measures every registered filter (plus a
// representative chain) on 32×32 RGB images: serial per-image Apply
// ns/op, the 16-image ApplyBatch ns/op, and the batched speedup — the
// per-filter trajectory PERFORMANCE.md tracks for the Defense API v2.
func filterBenchResults() []benchResult {
	rng := mathx.NewRNG(7)
	batch := make([]*tensor.Tensor, filterBatchSize)
	for i := range batch {
		batch[i] = tensor.RandU(rng, 0, 1, 3, 32, 32)
	}
	specs := append(filters.Names(), "chain(median(r=1),histeq(bins=64))")
	var out []benchResult
	for _, spec := range specs {
		f, err := filters.Parse(spec)
		if err != nil {
			continue
		}
		serialNs := timeOp(func() { filters.SerialBatch(f, batch) })
		batchNs := timeOp(func() { f.ApplyBatch(batch) })
		res := benchResult{
			Name:       "filter_" + strings.ToLower(strings.SplitN(spec, "(", 2)[0]),
			Iterations: filterBatchSize,
			NsPerOp:    serialNs / filterBatchSize,
			Metrics: map[string]float64{
				"batch16_ns_per_op": batchNs,
				"batched_speedup":   serialNs / batchNs,
			},
		}
		out = append(out, res)
	}
	return out
}

// benchServe is the shared body of the serve* runners: 32 concurrent
// clients per CPU against one Server on the TM-II path — enough standing
// load to keep flush-on-full the dominant trigger. cacheSize follows the
// ServeOptions convention (0 default, -1 disabled); prec selects the
// numeric lane every client requests.
func benchServe(b *testing.B, env *fademl.Env, img *fademl.Tensor, maxBatch, cacheSize int, prec fademl.Precision) {
	b.ReportAllocs()
	acq := fademl.NewAcquisition(1.0, 1.0/255, true, 97)
	pipe := fademl.NewPipeline(env.Net, fademl.NewLAP(32), acq)
	// InteractiveLimit -1: the runner measures batching throughput with
	// 32 standing clients per CPU — under the default admission bound
	// (4×workers×MaxBatch) the unbatched variant would shed, not queue.
	s := fademl.NewServer(pipe, fademl.ServeOptions{
		MaxBatch: maxBatch, MaxWait: 2 * time.Millisecond,
		CacheSize: cacheSize, InteractiveLimit: -1,
	})
	defer s.Close()
	if prec == fademl.PrecisionFloat32 && !s.Float32Available() {
		b.Fatal("float32 lane unavailable")
	}
	ctx := context.Background()
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := s.PredictPrec(ctx, img, fademl.TM2, prec); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(st.MeanBatchOccupancy, "mean_batch_occupancy")
	b.ReportMetric(st.P99LatencyMs, "p99_latency_ms")
	if cacheSize >= 0 {
		b.ReportMetric(st.Cache.HitRate, "cache_hit_rate")
	}
}

// precisionDriftResult quantifies the float32 lane's numeric drift on
// the clean class fixtures: every canonical GTSRB sign scored on both
// lanes, reporting top-1 agreement and the worst per-class probability
// delta. The 99% top-1 agreement gate is PR 7's acceptance bar for the
// fast lane; falling below it is an error, not a data point.
func precisionDriftResult(env *fademl.Env) (benchResult, error) {
	n32, err := env.Net.ToFloat32()
	if err != nil {
		return benchResult{}, err
	}
	agree := 0
	var maxD float64
	start := time.Now()
	for class := 0; class < gtsrb.NumClasses; class++ {
		img := gtsrb.Canonical(class, env.Profile.Size)
		p64 := env.Net.Probs(img)
		p32 := n32.Probs(img)
		if mathx.ArgMax(p64) == mathx.ArgMax(p32) {
			agree++
		}
		for j := range p64 {
			if d := p64[j] - p32[j]; d > maxD {
				maxD = d
			} else if -d > maxD {
				maxD = -d
			}
		}
	}
	elapsed := time.Since(start)
	pct := 100 * float64(agree) / float64(gtsrb.NumClasses)
	if pct < 99 {
		return benchResult{}, fmt.Errorf("precision_drift: top-1 agreement %.2f%% is below the 99%% gate (%d/%d classes)",
			pct, agree, gtsrb.NumClasses)
	}
	return benchResult{
		Name:       "precision_drift",
		Iterations: gtsrb.NumClasses,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(gtsrb.NumClasses),
		Precision:  "float32",
		Metrics: map[string]float64{
			"top1_agreement_pct": pct,
			"max_abs_dprob":      maxD,
		},
	}, nil
}

// serveSwapBenchResult measures hot-swap survivability as a trajectory
// point: standing clients hammer the default model while the registry's
// two versions are activated back and forth (keep=false, so every flip
// retires and drains the loser). It reports interactive predict p99 in
// the steady phase vs. the swap phase; the PR-8 acceptance gate is zero
// client-visible failures and swap p99 ≤ 2× steady-state.
func serveSwapBenchResult(env *fademl.Env, img *fademl.Tensor) (benchResult, error) {
	dir, err := os.MkdirTemp("", "fademl-swapbench")
	if err != nil {
		return benchResult{}, err
	}
	defer os.RemoveAll(dir)
	reg, err := fademl.OpenRegistry(dir)
	if err != nil {
		return benchResult{}, err
	}
	arch := env.Profile.VGGArch()
	if _, err := reg.Save("bench", env.Net, arch, fademl.RegistrySaveOptions{Note: "steady version"}); err != nil {
		return benchResult{}, err
	}
	// v2 stands in for a retrained model: same topology, different
	// weights (a fresh init is enough — the runner measures latency, not
	// accuracy).
	alt, err := arch.Build()
	if err != nil {
		return benchResult{}, err
	}
	if _, err := reg.Save("bench", alt, arch, fademl.RegistrySaveOptions{Note: "swap-target version"}); err != nil {
		return benchResult{}, err
	}
	v1, err := reg.Load(fademl.ModelRef{Name: "bench", Version: "v1"})
	if err != nil {
		return benchResult{}, err
	}
	acq := fademl.NewAcquisition(1.0, 1.0/255, true, 97)
	s := fademl.NewServerFromModel(v1, fademl.NewLAP(32), acq, fademl.ServeOptions{
		Workers: 2, MaxBatch: 8, MaxWait: 500 * time.Microsecond,
		CacheSize: -1, InteractiveLimit: -1, Registry: reg,
	})
	defer s.Close()

	// Phases: 0 warm-up (discarded), 1 steady, 2 swapping, 3 done.
	var phase atomic.Int32
	var failed atomic.Uint64
	const clients = 4
	type sample struct {
		phase int32
		d     time.Duration
	}
	perClient := make([][]sample, clients)
	ctx := context.Background()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ph := phase.Load()
				if ph >= 3 {
					return
				}
				start := time.Now()
				if _, err := s.Predict(ctx, img, fademl.TM2); err != nil {
					failed.Add(1)
					continue
				}
				perClient[c] = append(perClient[c], sample{ph, time.Since(start)})
			}
		}()
	}

	time.Sleep(200 * time.Millisecond) // warm-up
	phase.Store(1)
	time.Sleep(time.Second) // steady window
	phase.Store(2)
	const swaps = 6
	for i := 0; i < swaps; i++ {
		target := "bench@v2"
		if i%2 == 1 {
			target = "bench@v1"
		}
		if _, err := s.Activate(target, false); err != nil {
			phase.Store(3)
			wg.Wait()
			return benchResult{}, fmt.Errorf("serve_swap: activate %s: %w", target, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	phase.Store(3)
	wg.Wait()

	var steady, swapping []time.Duration
	for _, samples := range perClient {
		for _, smp := range samples {
			switch smp.phase {
			case 1:
				steady = append(steady, smp.d)
			case 2:
				swapping = append(swapping, smp.d)
			}
		}
	}
	p99 := func(ds []time.Duration) time.Duration {
		if len(ds) == 0 {
			return 0
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[(len(ds)-1)*99/100]
	}
	steadyP99, swapP99 := p99(steady), p99(swapping)
	if failed.Load() > 0 {
		return benchResult{}, fmt.Errorf("serve_swap: %d client-visible failures during the run (the swap contract is zero)", failed.Load())
	}
	ratio := 0.0
	if steadyP99 > 0 {
		ratio = float64(swapP99) / float64(steadyP99)
	}
	return benchResult{
		Name:       "serve_swap",
		Iterations: len(steady) + len(swapping),
		NsPerOp:    float64(swapP99.Nanoseconds()),
		Metrics: map[string]float64{
			"p99_steady_ms":    float64(steadyP99.Nanoseconds()) / 1e6,
			"p99_swap_ms":      float64(swapP99.Nanoseconds()) / 1e6,
			"swap_ratio":       ratio,
			"swaps":            swaps,
			"requests_steady":  float64(len(steady)),
			"requests_swap":    float64(len(swapping)),
			"failed_requests":  float64(failed.Load()),
			"final_swap_count": float64(s.Stats().Swaps),
		},
	}, nil
}

// detectBenchResult measures detection-as-a-service as a trajectory
// point. Quality follows the feature-squeezing evaluation convention —
// clean negatives are the correctly-classified canonical signs,
// positives the successful (prediction-changing) BIM examples against
// them — and the detection-tuned jpeg+tv ensemble, calibrated to a 5%
// clean FPR, must separate them at ROC AUC ≥ 0.90. Latency: end-to-end
// predict p50 of one client against a plain server vs. the same
// deployment with the detect-then-correct route on — the PR-9 gate is
// detect-path p50 ≤ 2× plain. Falling below either gate is an error,
// not a data point.
func detectBenchResult(env *fademl.Env, img *fademl.Tensor) (benchResult, error) {
	var clean []*fademl.Tensor
	var classes []int
	for c := 0; c < gtsrb.NumClasses; c++ {
		sign := gtsrb.Canonical(c, env.Profile.Size)
		if mathx.ArgMax(env.Net.Probs(sign)) == c {
			clean = append(clean, sign)
			classes = append(classes, c)
		}
	}
	det, err := fademl.ParseDetector("detect(squeezers=(jpeg(q=30),tv(lambda=0.1,iters=10)))")
	if err != nil {
		return benchResult{}, err
	}
	thr, err := det.Calibrate(env.Net, clean, 0.05)
	if err != nil {
		return benchResult{}, err
	}

	// Discriminative power: untargeted BIM (a paper attack) against every
	// correctly-classified class; only examples that actually move the
	// prediction count as positives, scored on the unfiltered TM-I view
	// the detector guards.
	atk, err := fademl.ParseAttack("bim(eps=0.1,steps=10)")
	if err != nil {
		return benchResult{}, err
	}
	cls := fademl.WrapNetwork(env.Net)
	ctx := context.Background()
	var adv []*fademl.Tensor
	for i, c := range clean {
		out, err := atk.Generate(ctx, cls, c, fademl.Goal{Source: classes[i], Target: fademl.Untargeted})
		if err != nil {
			return benchResult{}, err
		}
		if mathx.ArgMax(env.Net.Probs(out.Adversarial)) != classes[i] {
			adv = append(adv, out.Adversarial)
		}
	}
	if len(adv) == 0 {
		return benchResult{}, errors.New("detect: BIM produced no successful examples to score")
	}
	scoreAll := func(imgs []*fademl.Tensor) []float64 {
		scores := det.ScoreBatch(env.Net, imgs)
		out := make([]float64, len(scores))
		for i, s := range scores {
			out[i] = s.Score
		}
		return out
	}
	cleanScores, advScores := scoreAll(clean), scoreAll(adv)
	auc := fademl.DetectionAUC(cleanScores, advScores)
	if auc < 0.9 {
		return benchResult{}, fmt.Errorf("detect: BIM ROC AUC %.3f is below the 0.90 gate", auc)
	}
	detected, cleanFlagged := 0, 0
	for _, s := range advScores {
		if s > thr {
			detected++
		}
	}
	for _, s := range cleanScores {
		if s > thr {
			cleanFlagged++
		}
	}

	// Latency: the same deployment twice — detector off, then on — one
	// serial client on the full TM-II path, cache disabled so every
	// request pays its route.
	acq := fademl.NewAcquisition(1.0, 1.0/255, true, 97)
	server := func(d *fademl.Detector) *fademl.Server {
		return fademl.NewServer(fademl.NewPipeline(env.Net, fademl.NewLAP(32), acq), fademl.ServeOptions{
			Workers: 2, MaxBatch: 8, MaxWait: 2 * time.Millisecond,
			CacheSize: -1, Detector: d,
		})
	}
	p50 := func(s *fademl.Server) (time.Duration, error) {
		defer s.Close()
		const samples = 60
		for i := 0; i < 5; i++ { // warm-up
			if _, err := s.Predict(ctx, img, fademl.TM2); err != nil {
				return 0, err
			}
		}
		ds := make([]time.Duration, samples)
		for i := range ds {
			start := time.Now()
			if _, err := s.Predict(ctx, img, fademl.TM2); err != nil {
				return 0, err
			}
			ds[i] = time.Since(start)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2], nil
	}
	plainP50, err := p50(server(nil))
	if err != nil {
		return benchResult{}, err
	}
	detectP50, err := p50(server(det))
	if err != nil {
		return benchResult{}, err
	}
	ratio := float64(detectP50) / float64(plainP50)
	if ratio > 2 {
		return benchResult{}, fmt.Errorf("detect: detect-path p50 %.2fms is %.2fx plain %.2fms (gate: ≤2x)",
			float64(detectP50.Nanoseconds())/1e6, ratio, float64(plainP50.Nanoseconds())/1e6)
	}
	return benchResult{
		Name:       "detect",
		Iterations: len(clean),
		NsPerOp:    float64(detectP50.Nanoseconds()),
		Metrics: map[string]float64{
			"plain_p50_ms":   float64(plainP50.Nanoseconds()) / 1e6,
			"detect_p50_ms":  float64(detectP50.Nanoseconds()) / 1e6,
			"detect_ratio":   ratio,
			"auc":            auc,
			"detection_rate": float64(detected) / float64(len(adv)),
			"clean_fpr":      float64(cleanFlagged) / float64(len(clean)),
			"threshold":      thr,
		},
	}, nil
}

// benchAdaptiveFilter is the randomized deployed defense the
// adaptive_gap scenario sweeps: random resize-and-pad, the spatially
// destructive member of the family (per-pixel perturbations lose their
// alignment), with an exact VJP so both eot and bpda crafting have an
// honest gradient path through it.
const benchAdaptiveFilter = "randresize(lo=0.7,hi=0.9,seed=7)"

// adaptiveGapBenchResult measures honest blind-vs-adaptive robustness as
// a trajectory point: one untargeted BIM swept through /v1/evaluate's
// adaptive axis (blind, eot, bpda) against a randomized deployed
// defense. The PR-10 acceptance gate is that the best adaptive mode
// fools at least as often as the blind attacker — if modelling the
// deployed chain ever *hurt* the attacker, the sweep's fooling-rate gaps
// (and any robustness claim derived from them) would be dishonest.
// Everything in the sweep is deterministic (pure-function filter
// randomness, fixed seeds), so the gate cannot flake.
func adaptiveGapBenchResult(env *fademl.Env) (benchResult, error) {
	deployed, err := fademl.ParseFilter(benchAdaptiveFilter)
	if err != nil {
		return benchResult{}, err
	}
	s := fademl.NewServer(fademl.NewPipeline(env.Net, deployed, nil), fademl.ServeOptions{
		Workers: 2, MaxBatch: 8, AttackWorkers: 2, CacheSize: -1,
	})
	defer s.Close()
	var cases []fademl.EvalCase
	for _, sc := range fademl.PaperScenarios[:3] {
		cases = append(cases, fademl.EvalCase{
			Source: sc.Source, Target: fademl.Untargeted,
			Image: sc.CleanImage(env.Profile.Size),
		})
	}
	start := time.Now()
	res, err := s.Evaluate(context.Background(), fademl.ServeEvaluateRequest{
		Specs:    []string{"bim(eps=0.12,alpha=0.02,steps=20)"},
		TMs:      []fademl.ThreatModel{fademl.TM3},
		Adaptive: []string{"blind", "eot(draws=8)", "bpda"},
		Cases:    cases,
		Detector: "none",
	})
	if err != nil {
		return benchResult{}, err
	}
	elapsed := time.Since(start)
	rates := map[string]float64{}
	for _, sm := range res.Summaries {
		rates[strings.SplitN(sm.Adaptive, "(", 2)[0]] = sm.FoolingRate
	}
	blind, eot, bpda := rates["blind"], rates["eot"], rates["bpda"]
	best := eot
	if bpda > best {
		best = bpda
	}
	if best < blind {
		return benchResult{}, fmt.Errorf(
			"adaptive_gap: best adaptive fooling %.0f%% fell below blind %.0f%% on %s (adaptive crafting must not lose to blind)",
			100*best, 100*blind, benchAdaptiveFilter)
	}
	if len(res.Gaps) == 0 {
		return benchResult{}, errors.New("adaptive_gap: sweep returned no blind-vs-adaptive gaps")
	}
	return benchResult{
		Name:       "adaptive_gap",
		Iterations: len(res.Cells),
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(len(res.Cells)),
		Metrics: map[string]float64{
			"blind_rate": blind,
			"eot_rate":   eot,
			"bpda_rate":  bpda,
			"best_gap":   best - blind,
			"eot_draws":  8,
			"cells":      float64(len(res.Cells)),
		},
	}, nil
}

// overloadBenchResult measures serving survivability as a trajectory
// point: interactive predict p99 alone, then with the bulk lane held at
// 2× its admission capacity by live crafting jobs and one of the two
// inference workers killed mid-run. The excess bulk load must shed.
func overloadBenchResult(env *fademl.Env, img *fademl.Tensor) benchResult {
	const bulkLimit = 2
	chaos := &fademl.ServeChaos{}
	acq := fademl.NewAcquisition(1.0, 1.0/255, true, 97)
	pipe := fademl.NewPipeline(env.Net, fademl.NewLAP(32), acq)
	s := fademl.NewServer(pipe, fademl.ServeOptions{
		Workers: 2, MaxBatch: 8, MaxWait: 500 * time.Microsecond,
		AttackWorkers: 2, BulkLimit: bulkLimit,
		CacheSize: -1, Chaos: chaos,
	})
	defer s.Close()
	ctx := context.Background()

	const samples = 40
	measure := func() time.Duration {
		ds := make([]time.Duration, samples)
		for i := range ds {
			start := time.Now()
			if _, err := s.Predict(ctx, img, fademl.TM2); err != nil {
				return -1
			}
			ds[i] = time.Since(start)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[(samples-1)*99/100]
	}

	measure() // warm-up
	unloaded := measure()

	var stop atomic.Bool
	var shed, completed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < 2*bulkLimit; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				_, err := s.Attack(ctx, fademl.ServeAttackRequest{
					Spec: "pgd(eps=0.05,steps=400)", Image: img, Source: 0,
				})
				if errors.Is(err, fademl.ErrServeOverloaded) {
					shed.Add(1)
					time.Sleep(time.Millisecond)
				} else {
					completed.Add(1)
				}
			}
		}()
	}
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(time.Millisecond) {
		if st := s.Stats().Bulk; st.Depth >= bulkLimit && shed.Load() > 0 {
			break
		}
	}
	chaos.KillWorkers(1)
	loaded := measure()
	stop.Store(true)
	wg.Wait()

	return benchResult{
		Name:       "overload",
		Iterations: samples,
		NsPerOp:    float64(loaded.Nanoseconds()),
		Metrics: map[string]float64{
			"p99_unloaded_ms":   float64(unloaded.Nanoseconds()) / 1e6,
			"p99_overloaded_ms": float64(loaded.Nanoseconds()) / 1e6,
			"overload_ratio":    float64(loaded) / float64(unloaded),
			"bulk_shed":         float64(shed.Load()),
			"bulk_completed":    float64(completed.Load()),
		},
	}
}
