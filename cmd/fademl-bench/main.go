// Command fademl-bench regenerates the paper's evaluation figures as text
// tables: Fig. 5 (attacks under TM-I), Fig. 6 (top-5 accuracy under
// attack), Fig. 7 (classical attacks neutralized by LAP/LAR) and Fig. 9
// (FAdeML attacks surviving the same filters). EXPERIMENTS.md is produced
// from this tool's output.
//
// Usage:
//
//	fademl-bench [-profile default] [-fig all|5|6|7|9|abl] [-curves]
//	             [-filters 'chain(median(r=1),lap(np=8)),lar(r=2)']
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	fademl "repro"
	"repro/internal/experiments"
	"repro/internal/filters"
	"repro/internal/parallel"
)

func main() {
	profileName := flag.String("profile", "default", "experiment profile: tiny, default or paper")
	cacheDir := flag.String("cache", "testdata/cache", "weight cache directory")
	fig := flag.String("fig", "all", "which figure to regenerate: all, 5, 6, 7 or 9")
	curves := flag.Bool("curves", true, "include the accuracy-vs-filter curves in Figs. 7/9")
	filterList := flag.String("filters", "", "comma-separated filter specs replacing the LAP/LAR grid in Figs. 7/9, e.g. 'median(r=2),chain(lap(np=8),bitdepth(bits=5))'")
	workers := flag.Int("workers", runtime.NumCPU(), "experiment worker pool size (1 = serial; results are identical either way)")
	benchJSON := flag.String("bench-json", "", "write the benchmark trajectory (wall/bytes/allocs for the figure and substrate benchmarks) as JSON to this file and exit; see PERFORMANCE.md for the schema")
	benchSelect := flag.String("bench-select", "matmul,vggforward,vgginputgrad,onepixel,serve,serve_unbatched,serve_cached,serve_swap,overload,precision_drift,detect,adaptive_gap,fig7,fig9,filters", "comma-separated benchmark subset for -bench-json")
	benchPrecisions := flag.String("precisions", "", "comma-separated precision lanes sweeping the precision-aware -bench-json benchmarks, e.g. 'float64,float32' records matmul+matmul32, vggforward+vggforward32, serve+serve_f32")
	flag.Parse()
	parallel.SetWorkers(*workers)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *benchJSON != "" {
		// The benchmark trajectory defaults to the tiny profile (the one
		// PERFORMANCE.md tracks across PRs) unless -profile was given
		// explicitly.
		name := "tiny"
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "profile" {
				name = *profileName
			}
		})
		p, err := fademl.ParseProfile(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeBenchJSON(*benchJSON, *benchSelect, *benchPrecisions, p, *cacheDir, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}

	p, err := fademl.ParseProfile(*profileName)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	env, err := fademl.NewEnv(p, *cacheDir, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("environment ready in %.0fs — clean top-1 %.1f%%, top-5 %.1f%%\n\n",
		time.Since(start).Seconds(), 100*env.CleanTop1, 100*env.CleanTop5)

	want := func(f string) bool { return *fig == "all" || *fig == f }

	if want("5") {
		run := time.Now()
		res, err := fademl.RunFig5(ctx, env, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Table())
		fmt.Printf("payload success rate: %.0f%%  (%.0fs)\n\n", 100*res.SuccessRate(), time.Since(run).Seconds())
	}
	if want("6") {
		run := time.Now()
		res, err := fademl.RunFig6(ctx, env, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Table())
		fmt.Printf("max top-5 drop under attack: %.1f points  (%.0fs)\n\n", 100*res.MaxDrop(), time.Since(run).Seconds())
	}
	if want("7") {
		run := time.Now()
		res, err := fademl.RunFig7(ctx, env, fademl.SweepOptions{
			FilterSpecs:    fademl.SplitFilterSpecs(*filterList),
			IncludeCurves:  *curves,
			CurveScenarios: []fademl.Scenario{fademl.PaperScenarios[0]},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Table())
		fmt.Printf("neutralization rate: %.0f%%, survival rate: %.0f%%  (%.0fs)\n\n",
			100*res.NeutralizationRate(), 100*res.SurvivalRate(), time.Since(run).Seconds())
	}
	if want("9") {
		run := time.Now()
		res, err := fademl.RunFig9(ctx, env, fademl.SweepOptions{
			FilterSpecs:    fademl.SplitFilterSpecs(*filterList),
			IncludeCurves:  *curves,
			CurveScenarios: []fademl.Scenario{fademl.PaperScenarios[0]},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Table())
		fmt.Printf("survival rate: %.0f%%  (%.0fs)\n\n", 100*res.SurvivalRate(), time.Since(run).Seconds())
	}
	if want("abl") {
		run := time.Now()
		if err := runAblations(ctx, env); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ablations done  (%.0fs)\n\n", time.Since(run).Seconds())
	}
	fmt.Printf("total wall time: %.0fs\n", time.Since(start).Seconds())
}

// runAblations prints the design-choice sweeps of DESIGN.md.
func runAblations(ctx context.Context, env *fademl.Env) error {
	fmt.Println("Ablation — clean accuracy vs filter strength (inverted-U):")
	for _, p := range experiments.RunFilterStrengthAblation(env) {
		fmt.Printf("  %-12s taps=%-3d top1=%5.1f%% top5=%5.1f%%\n",
			p.FilterName, p.Taps, 100*p.Top1, 100*p.Top5)
	}
	fmt.Println("\nAblation — FAdeML η noise scaling through LAP(8):")
	etaPts, err := experiments.RunEtaAblation(ctx, env, filters.NewLAP(8), nil)
	if err != nil {
		return err
	}
	for _, p := range etaPts {
		fmt.Printf("  η=%.2f survived=%-5v conf=%.2f |noise|inf=%.3f\n",
			p.Eta, p.Survived, p.Confidence, p.NoiseLInf)
	}
	fmt.Println("\nAblation — BIM ε budget vs scenario-1 payload:")
	budPts, err := experiments.RunBudgetAblation(ctx, env, nil)
	if err != nil {
		return err
	}
	for _, p := range budPts {
		fmt.Printf("  ε=%.2f success=%-5v conf=%.2f\n", p.Epsilon, p.Success, p.Confidence)
	}
	fmt.Println("\nAblation — LAR disk vs square box footprint (clean top-5):")
	for _, p := range experiments.RunFootprintAblation(env, nil) {
		fmt.Printf("  r=%d disk=%5.1f%% box=%5.1f%%\n", p.Radius, 100*p.DiskTop5, 100*p.BoxTop5)
	}
	return nil
}
