package fademl_test

import (
	"context"
	"fmt"
	"os"

	fademl "repro"
)

// Example (registry) walks the versioned-model flow end to end: publish
// two versions of a model into a registry, serve the first, then
// hot-swap the default to the second under the same running server —
// no restart, and every response labels the version that answered.
func Example_registry() {
	dir, err := os.MkdirTemp("", "fademl-registry")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)

	reg, err := fademl.OpenRegistry(dir)
	if err != nil {
		fmt.Println(err)
		return
	}

	// Publish two versions of "signnet". The architecture spec in each
	// manifest is enough to reconstruct the network; the weight blob is
	// content-addressed by its SHA-256, so loads are hash-verified.
	arch := fademl.ArchSpec{Family: "tinycnn", InChannels: 3, InSize: 16, Classes: fademl.NumClasses}
	for i := 0; i < 2; i++ {
		net, err := arch.Build()
		if err != nil {
			fmt.Println(err)
			return
		}
		// Real deployments train here; the example just perturbs v2 so the
		// two versions hold different weights.
		if i == 1 {
			net.Params()[0].Value.Data()[0] += 0.25
		}
		m, err := reg.Save("signnet", net, arch, fademl.RegistrySaveOptions{Note: "example"})
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("registered %s@%s\n", m.Manifest.Name, m.Manifest.Version)
	}

	// Serve v1; Options.Registry lets the server hot-swap to siblings.
	v1, err := reg.Load(fademl.ModelRef{Name: "signnet", Version: "v1"})
	if err != nil {
		fmt.Println(err)
		return
	}
	srv := fademl.NewServerFromModel(v1, fademl.NewLAP(8), nil, fademl.ServeOptions{Registry: reg})
	defer srv.Close()

	img := fademl.CanonicalSign(14, 16)
	pred, err := srv.Predict(context.Background(), img, fademl.TM1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("served by %s\n", pred.Model)

	// Atomic hot-swap: the new version is loaded and warmed first, the
	// switch is one pointer store, and v1 drains without failing anything.
	if _, err := srv.Activate("signnet@v2", false); err != nil {
		fmt.Println(err)
		return
	}
	pred, err = srv.Predict(context.Background(), img, fademl.TM1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("served by %s\n", pred.Model)

	// Output:
	// registered signnet@v1
	// registered signnet@v2
	// served by signnet@v1
	// served by signnet@v2
}
