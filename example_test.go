package fademl_test

import (
	"fmt"

	fademl "repro"
)

// Applying the paper's LAP filter to a rendered sign.
func ExampleNewLAP() {
	img := fademl.CanonicalSign(14, 32) // Stop sign
	filtered := fademl.NewLAP(32).Apply(img)
	fmt.Println(filtered.SameShape(img))
	// Output: true
}

// The paper's five targeted misclassification payloads.
func ExamplePaperScenarios() {
	for _, sc := range fademl.PaperScenarios {
		fmt.Printf("%d: %s -> %s\n", sc.ID, fademl.ClassName(sc.Source), fademl.ClassName(sc.Target))
	}
	// Output:
	// 1: Stop -> Speed limit (60km/h)
	// 2: Speed limit (30km/h) -> Speed limit (80km/h)
	// 3: Turn left ahead -> Turn right ahead
	// 4: Turn right ahead -> Turn left ahead
	// 5: No entry -> Speed limit (60km/h)
}

// Composing the pre-processing stack of the paper's Section I-C.
func ExampleFilterChain() {
	chain := fademl.FilterChain(
		fademl.NewGrayscale(),
		fademl.NewNormalize(0.5, 0.25),
		fademl.NewLAR(3),
	)
	fmt.Println(chain.Name())
	// Output: chain(grayscale,normalize(mean=0.5,std=0.25),lar(r=3))
}

// Building attacks from the library registry. Name() is the canonical
// spec string: ParseAttack(atk.Name()) rebuilds the same configuration.
func ExampleNewAttack() {
	atk, err := fademl.NewAttack("bim")
	if err != nil {
		panic(err)
	}
	fmt.Println(atk.Name())
	// Output: bim(eps=0.03137254901960784,alpha=0.00392156862745098,steps=16,early=true)
}

// Building a parameterized attack from a spec string — the same syntax
// the -attack CLI flags and the serving API accept. Knobs not named keep
// their defaults.
func ExampleParseAttack() {
	atk, err := fademl.ParseAttack("pgd(eps=0.05,steps=10,restarts=1)")
	if err != nil {
		panic(err)
	}
	fmt.Println(atk.Name())
	// Output: pgd(eps=0.05,alpha=0.00392156862745098,steps=10,restarts=1,seed=1)
}
