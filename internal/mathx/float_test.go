package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEqualWithin(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1.0000001, 1e-6, true},
		{1, 1.1, 1e-6, false},
		{1e12, 1e12 + 1, 1e-6, true}, // relative criterion
		{0, 1e-9, 1e-6, true},        // absolute criterion near zero
		{math.NaN(), 1, 1, false},
		{1, math.NaN(), 1, false},
	}
	for _, c := range cases {
		if got := EqualWithin(c.a, c.b, c.tol); got != c.want {
			t.Errorf("EqualWithin(%v,%v,%v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(-1, 0, 1); got != 0 {
		t.Errorf("Clamp(-1,0,1) = %v", got)
	}
	if got := Clamp(2, 0, 1); got != 1 {
		t.Errorf("Clamp(2,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}

func TestClampPropertyInRange(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		c := Clamp01(v)
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSign(t *testing.T) {
	if Sign(3.2) != 1 || Sign(-0.001) != -1 || Sign(0) != 0 {
		t.Fatalf("Sign gave %v %v %v", Sign(3.2), Sign(-0.001), Sign(0))
	}
}

func TestSignPropertyIdempotentMagnitude(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		s := Sign(v)
		return s == -1 || s == 0 || s == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(0, 10, 0.5); got != 5 {
		t.Errorf("Lerp midpoint = %v", got)
	}
	if got := Lerp(2, 2, 0.7); got != 2 {
		t.Errorf("Lerp of equal endpoints = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(1.5) || IsFinite(math.NaN()) || IsFinite(math.Inf(1)) || IsFinite(math.Inf(-1)) {
		t.Fatal("IsFinite misclassified a value")
	}
}
