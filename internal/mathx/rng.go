// Package mathx provides deterministic random number generation and small
// numeric utilities shared by every other package in the repository.
//
// All stochastic components in the reproduction (weight initialization,
// dataset jitter, sensor noise, attack restarts) draw from mathx.RNG so that
// every experiment is reproducible bit-for-bit from a single integer seed.
package mathx

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic pseudo-random source backed by PCG. Unlike the
// global math/rand functions its stream is stable across Go releases for a
// fixed seed, which the experiment harness relies on.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a generator seeded with seed. Two RNGs built from the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{src: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Split derives an independent child generator from the current state. It is
// used to hand a private stream to a sub-component (e.g. one dataset sample)
// without coupling it to the order of other draws.
func (r *RNG) Split() *RNG {
	return NewRNG(r.src.Uint64())
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Range returns a uniform sample in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Norm returns a standard normal sample (mean 0, stddev 1).
func (r *RNG) Norm() float64 { return r.src.NormFloat64() }

// NormScaled returns a normal sample with the given mean and stddev.
func (r *RNG) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle permutes the first n indices using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.src.Float64() < p }

// TruncNorm returns a normal sample truncated to [lo, hi] by rejection;
// after 64 rejections it falls back to clamping, so it always terminates.
func (r *RNG) TruncNorm(mean, stddev, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		v := r.NormScaled(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}
