package mathx

import "math"

// EqualWithin reports whether a and b are equal to within tol, using a
// combined absolute/relative criterion: |a-b| <= tol * max(1, |a|, |b|).
func EqualWithin(a, b, tol float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Clamp01 limits v to the unit interval, the canonical pixel range used
// throughout the pipeline.
func Clamp01(v float64) float64 { return Clamp(v, 0, 1) }

// Sign returns -1, 0 or +1 matching the sign of v. Unlike math.Copysign it
// maps zero to zero, which is the convention FGSM-style attacks require.
func Sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Lerp linearly interpolates between a and b by t in [0, 1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// IsFinite reports whether v is neither NaN nor infinite.
func IsFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
