package mathx

import (
	"math"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance single = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax(empty) did not panic")
		}
	}()
	MinMax(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 3, 5}); got != 1 {
		t.Errorf("ArgMax tie handling = %v, want 1", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %v", got)
	}
}

func TestArgMaxDegenerate(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		xs   []float64
		want int
	}{
		{"all NaN", []float64{nan, nan, nan}, 0},
		{"leading NaN", []float64{nan, 2, 1}, 1},
		{"trailing NaN", []float64{1, 3, nan}, 1},
		{"NaN between", []float64{1, nan, 5}, 2},
		{"single NaN", []float64{nan}, 0},
		{"neg inf beats NaN", []float64{nan, math.Inf(-1)}, 1},
	}
	for _, c := range cases {
		if got := ArgMax(c.xs); got != c.want {
			t.Errorf("%s: ArgMax(%v) = %v, want %v", c.name, c.xs, got, c.want)
		}
	}
	// Any non-empty input must yield an index callers can use to subscript
	// the slice — the Predict hot paths rely on it.
	for _, xs := range [][]float64{{nan}, {nan, nan}, {0}, {-1, nan}} {
		if got := ArgMax(xs); got < 0 || got >= len(xs) {
			t.Fatalf("ArgMax(%v) = %v out of range", xs, got)
		}
	}
}

func TestTopKIndices(t *testing.T) {
	xs := []float64{0.1, 0.7, 0.2, 0.7, 0.05}
	got := TopKIndices(xs, 3)
	want := []int{1, 3, 2} // ties keep lower index first
	if len(got) != len(want) {
		t.Fatalf("TopKIndices len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopKIndices = %v, want %v", got, want)
		}
	}
	if got := TopKIndices(xs, 100); len(got) != len(xs) {
		t.Errorf("TopKIndices with k>len = %v", got)
	}
	if got := TopKIndices(xs, 0); got != nil {
		t.Errorf("TopKIndices with k=0 = %v", got)
	}
}

func TestTopKIndicesDescending(t *testing.T) {
	r := NewRNG(5)
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = r.Float64()
	}
	idx := TopKIndices(xs, len(xs))
	for i := 1; i < len(idx); i++ {
		if xs[idx[i-1]] < xs[idx[i]] {
			t.Fatalf("TopKIndices not descending at %d", i)
		}
	}
}
