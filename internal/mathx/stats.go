package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest values in xs. It panics on an
// empty slice: callers always have at least one sample.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("mathx: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("mathx: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return Lerp(sorted[lo], sorted[hi], frac)
}

// ArgMax returns the index of the largest element of xs (first occurrence on
// ties), or -1 for an empty slice. NaN elements are skipped, so for any
// non-empty slice the result is a valid index: an all-NaN slice yields 0.
// Callers that index into xs with the result (Predict hot paths) therefore
// never panic on degenerate scores from a diverged network.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] || (math.IsNaN(xs[best]) && !math.IsNaN(xs[i])) {
			best = i
		}
	}
	return best
}

// TopKIndices returns the indices of the k largest elements of xs in
// descending value order. Ties resolve to the lower index first. If
// k >= len(xs) all indices are returned.
func TopKIndices(xs []float64, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx[:k]
}
