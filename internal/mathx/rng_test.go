package mathx

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("draw %d: %v != %v for equal seeds", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 identical draws", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child must not replay the parent stream.
	p := make([]float64, 8)
	c := make([]float64, 8)
	for i := range p {
		p[i] = parent.Float64()
		c[i] = child.Float64()
	}
	equal := true
	for i := range p {
		if p[i] != c[i] {
			equal = false
		}
	}
	if equal {
		t.Fatal("Split child replays the parent stream")
	}
}

func TestRNGRangeBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range(-2,5) returned %v", v)
		}
	}
}

func TestRNGFloat64Bounds(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 returned %v outside [0,1)", v)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm()
	}
	if m := Mean(xs); math.Abs(m) > 0.05 {
		t.Errorf("normal mean = %v, want ~0", m)
	}
	if s := StdDev(xs); math.Abs(s-1) > 0.05 {
		t.Errorf("normal stddev = %v, want ~1", s)
	}
}

func TestRNGTruncNorm(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 2000; i++ {
		v := r.TruncNorm(0, 1, -0.5, 0.5)
		if v < -0.5 || v > 0.5 {
			t.Fatalf("TruncNorm escaped bounds: %v", v)
		}
	}
	// Degenerate interval far from the mean must still terminate (clamp path).
	v := r.TruncNorm(0, 1e-9, 5, 6)
	if v < 5 || v > 6 {
		t.Fatalf("TruncNorm clamp fallback returned %v", v)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(10)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("permutation missing elements: %v", p)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(19)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.03 {
		t.Fatalf("Bool(0.25) hit rate %v", frac)
	}
}

func TestRNGIntN(t *testing.T) {
	r := NewRNG(23)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		counts[r.IntN(5)]++
	}
	for b, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("IntN bucket %d count %d far from uniform", b, c)
		}
	}
}
