package gtsrb

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestExportImportRoundTrip(t *testing.T) {
	ds, err := Generate(Config{Size: 16, PerClass: 2, Seed: 8, Classes: []int{ClassStop, ClassSpeed60}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ds.Export(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Import(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() || back.Size() != ds.Size() {
		t.Fatalf("round trip: len %d->%d size %d->%d", ds.Len(), back.Len(), ds.Size(), back.Size())
	}
	for i := 0; i < ds.Len(); i++ {
		orig, ol := ds.Sample(i)
		got, gl := back.Sample(i)
		if ol != gl {
			t.Fatalf("sample %d label %d != %d", i, ol, gl)
		}
		if diff := tensor.Sub(orig, got).LInfNorm(); diff > 1.0/255+1e-9 {
			t.Fatalf("sample %d differs by %v after PNG round trip", i, diff)
		}
	}
}

func TestExportManifestContents(t *testing.T) {
	ds, _ := Generate(Config{Size: 16, PerClass: 1, Seed: 9, Classes: []int{ClassStop}})
	dir := t.TempDir()
	if err := ds.Export(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "labels.csv"))
	if err != nil {
		t.Fatal(err)
	}
	content := string(data)
	if !strings.Contains(content, "class_name") || !strings.Contains(content, "Stop") {
		t.Fatalf("manifest missing fields:\n%s", content)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 2 { // one PNG + manifest
		t.Fatalf("export wrote %d files", len(entries))
	}
}

func TestImportErrors(t *testing.T) {
	if _, err := Import(t.TempDir()); err == nil {
		t.Error("import of empty dir accepted")
	}
	// Manifest referencing a missing image.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "labels.csv"),
		[]byte("filename,class_id,class_name\nmissing.png,14,Stop\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Import(dir); err == nil {
		t.Error("import with missing image accepted")
	}
	// Bad class id.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "labels.csv"),
		[]byte("filename,class_id,class_name\nx.png,99,Bogus\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Import(dir2); err == nil {
		t.Error("import with bad class id accepted")
	}
}
