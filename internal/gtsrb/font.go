package gtsrb

// A minimal 5×7 bitmap font covering the numerals and the letters needed
// for the STOP legend. Each glyph is seven rows of five cells; '1' marks an
// inked cell.
var font5x7 = map[rune][7]string{
	'0': {"01110", "10001", "10011", "10101", "11001", "10001", "01110"},
	'1': {"00100", "01100", "00100", "00100", "00100", "00100", "01110"},
	'2': {"01110", "10001", "00001", "00110", "01000", "10000", "11111"},
	'3': {"01110", "10001", "00001", "00110", "00001", "10001", "01110"},
	'4': {"00010", "00110", "01010", "10010", "11111", "00010", "00010"},
	'5': {"11111", "10000", "11110", "00001", "00001", "10001", "01110"},
	'6': {"00110", "01000", "10000", "11110", "10001", "10001", "01110"},
	'7': {"11111", "00001", "00010", "00100", "01000", "01000", "01000"},
	'8': {"01110", "10001", "10001", "01110", "10001", "10001", "01110"},
	'9': {"01110", "10001", "10001", "01111", "00001", "00010", "01100"},
	'S': {"01111", "10000", "10000", "01110", "00001", "00001", "11110"},
	'T': {"11111", "00100", "00100", "00100", "00100", "00100", "00100"},
	'O': {"01110", "10001", "10001", "10001", "10001", "10001", "01110"},
	'P': {"11110", "10001", "10001", "11110", "10000", "10000", "10000"},
	'!': {"00100", "00100", "00100", "00100", "00100", "00000", "00100"},
}

// glyphCoverage reports whether the point (gx, gy) in glyph-local unit
// coordinates ([0,1]²; y grows downward) lies on an inked cell of r's
// bitmap. Unknown runes are blank.
func glyphCoverage(r rune, gx, gy float64) bool {
	g, ok := font5x7[r]
	if !ok {
		return false
	}
	if gx < 0 || gx >= 1 || gy < 0 || gy >= 1 {
		return false
	}
	col := int(gx * 5)
	row := int(gy * 7)
	return g[row][col] == '1'
}

// textCoverage reports whether (tx, ty) in text-local unit coordinates lies
// on an inked cell of the string s laid out horizontally with a one-cell
// gap between glyphs.
func textCoverage(s string, tx, ty float64) bool {
	if len(s) == 0 || tx < 0 || tx >= 1 || ty < 0 || ty >= 1 {
		return false
	}
	runes := []rune(s)
	n := len(runes)
	// Each glyph spans 5 cells plus a 1-cell gap (except after the last).
	totalCells := float64(n*5 + (n - 1))
	cell := tx * totalCells
	idx := int(cell / 6)
	if idx >= n {
		idx = n - 1
	}
	within := cell - float64(idx*6)
	if within >= 5 {
		return false // inter-glyph gap
	}
	return glyphCoverage(runes[idx], within/5, ty)
}
