package gtsrb

import (
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

func TestClassTable(t *testing.T) {
	if got := len(AllClasses()); got != NumClasses {
		t.Fatalf("AllClasses len = %d", got)
	}
	for i, c := range AllClasses() {
		if c.ID != i {
			t.Fatalf("class %d has ID %d", i, c.ID)
		}
		if c.Name == "" {
			t.Fatalf("class %d has empty name", i)
		}
	}
	// Scenario-relevant ids point at the expected signs.
	if ClassName(ClassStop) != "Stop" {
		t.Errorf("ClassStop name = %q", ClassName(ClassStop))
	}
	if Class(ClassSpeed60).SpeedDigits != "60" {
		t.Errorf("ClassSpeed60 digits = %q", Class(ClassSpeed60).SpeedDigits)
	}
	if Class(ClassTurnLeft).Shape != ShapeMandatory {
		t.Errorf("turn-left shape = %v", Class(ClassTurnLeft).Shape)
	}
	if Class(ClassNoEntry).Shape != ShapeNoEntry {
		t.Errorf("no-entry shape = %v", Class(ClassNoEntry).Shape)
	}
	if Class(ClassYield).Shape != ShapeYield {
		t.Errorf("yield shape = %v", Class(ClassYield).Shape)
	}
}

func TestClassPanicsOutOfRange(t *testing.T) {
	for _, id := range []int{-1, 43, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Class(%d) did not panic", id)
				}
			}()
			Class(id)
		}()
	}
}

func TestFontGlyphs(t *testing.T) {
	// Every declared glyph must have 7 rows of 5 cells using only 0/1.
	for r, g := range font5x7 {
		for row, line := range g {
			if len(line) != 5 {
				t.Fatalf("glyph %q row %d has %d cells", r, row, len(line))
			}
			for _, ch := range line {
				if ch != '0' && ch != '1' {
					t.Fatalf("glyph %q contains %q", r, ch)
				}
			}
		}
	}
	// The digit 8 is inked at its center; 0 is hollow just left of its
	// diagonal stroke (row 1, col 1).
	if !glyphCoverage('8', 0.5, 0.5) {
		t.Error("digit 8 center not inked")
	}
	if glyphCoverage('0', 0.3, 0.21) {
		t.Error("digit 0 interior inked where it should be hollow")
	}
	// Out-of-range and unknown runes are blank.
	if glyphCoverage('8', -0.1, 0.5) || glyphCoverage('8', 0.5, 1.2) || glyphCoverage('Z', 0.5, 0.5) {
		t.Error("out-of-range or unknown glyph reported ink")
	}
}

func TestTextCoverageLayout(t *testing.T) {
	// "11" has two glyphs with a gap; the gap column must be blank.
	// Total cells = 11; gap occupies cells [5,6).
	gapX := 5.4 / 11
	if textCoverage("11", gapX, 0.5) {
		t.Error("inter-glyph gap is inked")
	}
	if textCoverage("", 0.5, 0.5) {
		t.Error("empty text inked")
	}
}

func TestRenderShapeAndRange(t *testing.T) {
	rng := mathx.NewRNG(1)
	for _, id := range []int{ClassStop, ClassSpeed60, ClassTurnLeft, ClassNoEntry, 12, 13, 18, 32} {
		img := Render(id, 32, RandomJitter(rng), rng)
		if img.Dims() != 3 || img.Dim(0) != 3 || img.Dim(1) != 32 || img.Dim(2) != 32 {
			t.Fatalf("class %d image shape = %v", id, img.Shape())
		}
		if img.Min() < 0 || img.Max() > 1 {
			t.Fatalf("class %d pixels outside [0,1]: [%v, %v]", id, img.Min(), img.Max())
		}
		if !img.AllFinite() {
			t.Fatalf("class %d has non-finite pixels", id)
		}
	}
}

func TestCanonicalDeterministic(t *testing.T) {
	a := Canonical(ClassStop, 32)
	b := Canonical(ClassStop, 32)
	if !tensor.EqualWithin(a, b, 0) {
		t.Fatal("Canonical render not deterministic")
	}
}

func TestRenderDistinguishesScenarioClasses(t *testing.T) {
	// The five payload scenarios rely on these pairs being visually distinct.
	pairs := [][2]int{
		{ClassStop, ClassSpeed60},
		{ClassSpeed30, ClassSpeed80},
		{ClassTurnLeft, ClassTurnRight},
		{ClassNoEntry, ClassSpeed60},
	}
	for _, p := range pairs {
		a := Canonical(p[0], 32)
		b := Canonical(p[1], 32)
		diff := tensor.Sub(a, b).L2Norm() / a.L2Norm()
		if diff < 0.05 {
			t.Errorf("classes %d and %d nearly identical (rel diff %v)", p[0], p[1], diff)
		}
	}
}

func TestAllClassesPairwiseDistinct(t *testing.T) {
	imgs := make([]*tensor.Tensor, NumClasses)
	for id := 0; id < NumClasses; id++ {
		imgs[id] = Canonical(id, 32)
	}
	for a := 0; a < NumClasses; a++ {
		for b := a + 1; b < NumClasses; b++ {
			diff := tensor.Sub(imgs[a], imgs[b]).L2Norm()
			if diff < 0.5 {
				t.Errorf("classes %d (%s) and %d (%s) too similar: L2 diff %v",
					a, ClassName(a), b, ClassName(b), diff)
			}
		}
	}
}

func TestStopSignIsRedDominant(t *testing.T) {
	// Sample the band above the white STOP legend: inside the octagon and
	// clear of both the text and the sky background.
	img := Canonical(ClassStop, 32)
	var r, g float64
	for y := 7; y < 10; y++ {
		for x := 11; x < 21; x++ {
			r += img.At(0, y, x)
			g += img.At(1, y, x)
		}
	}
	if r <= g*1.5 {
		t.Fatalf("stop sign interior not red-dominant: r=%v g=%v", r, g)
	}
}

func TestMandatorySignIsBlueDominant(t *testing.T) {
	img := Canonical(ClassAheadOnly, 32)
	plane := 32 * 32
	d := img.Data()
	var r, b float64
	for i := 0; i < plane; i++ {
		r += d[i]
		b += d[2*plane+i]
	}
	if b <= r {
		t.Fatalf("mandatory sign not blue-dominant: r=%v b=%v", r, b)
	}
}

func TestTurnArrowsMirrored(t *testing.T) {
	left := Canonical(ClassTurnLeft, 32)
	right := Canonical(ClassTurnRight, 32)
	// Mirroring the left-turn sign horizontally should approximate the
	// right-turn sign far better than the unmirrored image does.
	mirrored := tensor.New(3, 32, 32)
	for c := 0; c < 3; c++ {
		for y := 0; y < 32; y++ {
			for x := 0; x < 32; x++ {
				mirrored.Set(left.At(c, y, 31-x), c, y, x)
			}
		}
	}
	direct := tensor.Sub(left, right).L2Norm()
	viaMirror := tensor.Sub(mirrored, right).L2Norm()
	if viaMirror >= direct {
		t.Fatalf("mirror symmetry violated: direct=%v mirrored=%v", direct, viaMirror)
	}
}

func TestGenerateDataset(t *testing.T) {
	ds, err := Generate(Config{Size: 16, PerClass: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 43*3 {
		t.Fatalf("dataset len = %d", ds.Len())
	}
	counts := ds.ClassCounts()
	for id := 0; id < NumClasses; id++ {
		if counts[id] != 3 {
			t.Fatalf("class %d count = %d", id, counts[id])
		}
	}
	img, label := ds.Sample(0)
	if label < 0 || label >= NumClasses {
		t.Fatalf("label out of range: %d", label)
	}
	if img.Dim(1) != 16 {
		t.Fatalf("sample size = %v", img.Shape())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Size: 16, PerClass: 2, Seed: 9}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		ai, al := a.Sample(i)
		bi, bl := b.Sample(i)
		if al != bl || !tensor.EqualWithin(ai, bi, 0) {
			t.Fatalf("generation not deterministic at sample %d", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Size: 4, PerClass: 1}); err == nil {
		t.Error("tiny size accepted")
	}
	if _, err := Generate(Config{Size: 16, PerClass: 0}); err == nil {
		t.Error("zero PerClass accepted")
	}
	if _, err := Generate(Config{Size: 16, PerClass: 1, Classes: []int{50}}); err == nil {
		t.Error("bad class id accepted")
	}
}

func TestGenerateSubsetOfClasses(t *testing.T) {
	ds, err := Generate(Config{Size: 16, PerClass: 4, Seed: 2, Classes: []int{ClassStop, ClassSpeed60}})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 8 {
		t.Fatalf("subset dataset len = %d", ds.Len())
	}
	for i := 0; i < ds.Len(); i++ {
		_, l := ds.Sample(i)
		if l != ClassStop && l != ClassSpeed60 {
			t.Fatalf("unexpected label %d", l)
		}
	}
}

func TestSplit(t *testing.T) {
	ds, _ := Generate(Config{Size: 16, PerClass: 4, Seed: 3})
	trainSet, testSet := ds.Split(0.75, 7)
	if trainSet.Len()+testSet.Len() != ds.Len() {
		t.Fatalf("split loses samples: %d + %d != %d", trainSet.Len(), testSet.Len(), ds.Len())
	}
	if trainSet.Len() != int(0.75*float64(ds.Len())) {
		t.Fatalf("train len = %d", trainSet.Len())
	}
	// Deterministic for a fixed seed.
	tr2, _ := ds.Split(0.75, 7)
	for i := 0; i < trainSet.Len(); i++ {
		a, al := trainSet.Sample(i)
		b, bl := tr2.Sample(i)
		if al != bl || a != b {
			t.Fatal("split not deterministic")
		}
	}
}

func TestSplitBadFractionPanics(t *testing.T) {
	ds, _ := Generate(Config{Size: 16, PerClass: 1, Seed: 1, Classes: []int{0}})
	for _, f := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Split(%v) did not panic", f)
				}
			}()
			ds.Split(f, 1)
		}()
	}
}

func TestSubsetAndFirstOfClass(t *testing.T) {
	ds, _ := Generate(Config{Size: 16, PerClass: 2, Seed: 4, Classes: []int{5, 7}})
	sub := ds.Subset(3)
	if sub.Len() != 3 {
		t.Fatalf("Subset len = %d", sub.Len())
	}
	if ds.Subset(100).Len() != 4 {
		t.Fatal("Subset with n>len wrong")
	}
	if idx := ds.FirstOfClass(5); idx < 0 {
		t.Fatal("FirstOfClass missed an existing class")
	} else if _, l := ds.Sample(idx); l != 5 {
		t.Fatal("FirstOfClass returned wrong sample")
	}
	if ds.FirstOfClass(9) != -1 {
		t.Fatal("FirstOfClass found absent class")
	}
}

// Property: rendering any class at any reasonable size stays in [0,1] and
// is finite.
func TestRenderPropertyBounded(t *testing.T) {
	f := func(classRaw uint8, seed uint64) bool {
		class := int(classRaw) % NumClasses
		rng := mathx.NewRNG(seed)
		img := Render(class, 24, RandomJitter(rng), rng)
		return img.Min() >= 0 && img.Max() <= 1 && img.AllFinite()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRenderJitterChangesImage(t *testing.T) {
	rng := mathx.NewRNG(11)
	a := Render(ClassStop, 32, RandomJitter(rng), rng)
	b := Render(ClassStop, 32, RandomJitter(rng), rng)
	if tensor.EqualWithin(a, b, 1e-9) {
		t.Fatal("two jittered renders identical")
	}
}
