package gtsrb

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// Config controls synthetic dataset generation.
type Config struct {
	// Size is the square image side in pixels.
	Size int
	// PerClass is the number of samples rendered per class.
	PerClass int
	// Seed makes generation reproducible.
	Seed uint64
	// Classes optionally restricts generation to a subset of class ids;
	// empty means all 43. Labels remain the original GTSRB ids.
	Classes []int
}

// Dataset is an in-memory set of rendered sign images implementing the
// train.Dataset contract.
type Dataset struct {
	imgs   []*tensor.Tensor
	labels []int
	size   int
}

// Generate renders cfg.PerClass jittered samples for every selected class.
// Generation is deterministic: equal configs produce identical datasets.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Size < 8 {
		return nil, fmt.Errorf("gtsrb: image size %d too small", cfg.Size)
	}
	if cfg.PerClass <= 0 {
		return nil, fmt.Errorf("gtsrb: PerClass must be positive, got %d", cfg.PerClass)
	}
	ids := cfg.Classes
	if len(ids) == 0 {
		ids = make([]int, NumClasses)
		for i := range ids {
			ids[i] = i
		}
	}
	for _, id := range ids {
		if id < 0 || id >= NumClasses {
			return nil, fmt.Errorf("gtsrb: class id %d out of range", id)
		}
	}
	rng := mathx.NewRNG(cfg.Seed)
	ds := &Dataset{size: cfg.Size}
	for _, id := range ids {
		// One private stream per class keeps per-class content independent
		// of which other classes are generated.
		classRNG := mathx.NewRNG(cfg.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
		for s := 0; s < cfg.PerClass; s++ {
			jit := RandomJitter(classRNG)
			img := Render(id, cfg.Size, jit, classRNG)
			ds.imgs = append(ds.imgs, img)
			ds.labels = append(ds.labels, id)
		}
	}
	// Shuffle so mini-batches mix classes.
	rng.Shuffle(len(ds.imgs), func(i, j int) {
		ds.imgs[i], ds.imgs[j] = ds.imgs[j], ds.imgs[i]
		ds.labels[i], ds.labels[j] = ds.labels[j], ds.labels[i]
	})
	return ds, nil
}

// Len implements train.Dataset.
func (d *Dataset) Len() int { return len(d.imgs) }

// Sample implements train.Dataset. The returned tensor is owned by the
// dataset; callers must clone before mutating.
func (d *Dataset) Sample(i int) (*tensor.Tensor, int) {
	return d.imgs[i], d.labels[i]
}

// Size returns the image side length in pixels.
func (d *Dataset) Size() int { return d.size }

// Split partitions the dataset into train/test subsets with the given
// train fraction, deterministically for a fixed seed. Images are shared,
// not copied.
func (d *Dataset) Split(trainFrac float64, seed uint64) (trainSet, testSet *Dataset) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("gtsrb: Split fraction %v outside (0,1)", trainFrac))
	}
	n := len(d.imgs)
	perm := mathx.NewRNG(seed).Perm(n)
	cut := int(float64(n) * trainFrac)
	trainSet = &Dataset{size: d.size}
	testSet = &Dataset{size: d.size}
	for i, idx := range perm {
		if i < cut {
			trainSet.imgs = append(trainSet.imgs, d.imgs[idx])
			trainSet.labels = append(trainSet.labels, d.labels[idx])
		} else {
			testSet.imgs = append(testSet.imgs, d.imgs[idx])
			testSet.labels = append(testSet.labels, d.labels[idx])
		}
	}
	return trainSet, testSet
}

// Subset returns a new dataset containing at most n samples taken in order.
func (d *Dataset) Subset(n int) *Dataset {
	if n > len(d.imgs) {
		n = len(d.imgs)
	}
	return &Dataset{imgs: d.imgs[:n], labels: d.labels[:n], size: d.size}
}

// FirstOfClass returns the index of the first sample with the given label,
// or -1 when the class is absent.
func (d *Dataset) FirstOfClass(label int) int {
	for i, l := range d.labels {
		if l == label {
			return i
		}
	}
	return -1
}

// ClassCounts tallies samples per class id.
func (d *Dataset) ClassCounts() map[int]int {
	counts := make(map[int]int)
	for _, l := range d.labels {
		counts[l]++
	}
	return counts
}
