package gtsrb

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

func TestBlurJitterSmooths(t *testing.T) {
	jit := CanonicalJitter()
	sharp := Render(ClassStop, 32, jit, nil)
	jit.Blur = 1.0
	blurred := Render(ClassStop, 32, jit, nil)
	if tensor.EqualWithin(sharp, blurred, 1e-9) {
		t.Fatal("blur jitter had no effect")
	}
	// Blur must reduce high-frequency energy: compare the variance of the
	// horizontal first difference.
	hfEnergy := func(img *tensor.Tensor) float64 {
		e := 0.0
		for c := 0; c < 3; c++ {
			for y := 0; y < 32; y++ {
				for x := 1; x < 32; x++ {
					d := img.At(c, y, x) - img.At(c, y, x-1)
					e += d * d
				}
			}
		}
		return e
	}
	if hfEnergy(blurred) >= hfEnergy(sharp) {
		t.Fatalf("blurred image has more HF energy: %v vs %v", hfEnergy(blurred), hfEnergy(sharp))
	}
}

func TestBlurPreservesRangeAndMass(t *testing.T) {
	jit := CanonicalJitter()
	jit.Blur = 2.0
	img := Render(ClassSpeed60, 32, jit, nil)
	if img.Min() < 0 || img.Max() > 1 {
		t.Fatalf("blurred render escaped [0,1]: [%v, %v]", img.Min(), img.Max())
	}
	// A normalized blur approximately preserves total intensity.
	sharp := Canonical(ClassSpeed60, 32)
	if rel := (img.Sum() - sharp.Sum()) / sharp.Sum(); rel > 0.02 || rel < -0.02 {
		t.Fatalf("blur changed total intensity by %.3f", rel)
	}
}

func TestRandomJitterBlurDistribution(t *testing.T) {
	rng := mathx.NewRNG(9)
	zero, nonzero := 0, 0
	for i := 0; i < 400; i++ {
		j := RandomJitter(rng)
		if j.Blur == 0 {
			zero++
		} else {
			nonzero++
			if j.Blur < 0.3 || j.Blur > 1.1 {
				t.Fatalf("blur %v outside [0.3, 1.1]", j.Blur)
			}
		}
	}
	// ~75% of samples carry blur.
	if nonzero < 250 || zero < 50 {
		t.Fatalf("blur mixture off: %d blurred, %d sharp", nonzero, zero)
	}
}
