// Package gtsrb is a procedural substitute for the German Traffic Sign
// Recognition Benchmark used by the FAdeML paper. It renders all 43 GTSRB
// class ids as synthetic sign images (correct shape taxonomy, digit and
// arrow glyphs, per-sample jitter) so the experiments have a 43-class
// recognition task with the paper's five payload scenarios, without the
// real camera dataset. The substitution is documented in DESIGN.md.
package gtsrb

// NumClasses is the GTSRB class count.
const NumClasses = 43

// Canonical GTSRB class ids referenced by the paper's attack scenarios.
const (
	ClassSpeed20    = 0
	ClassSpeed30    = 1
	ClassSpeed50    = 2
	ClassSpeed60    = 3
	ClassSpeed70    = 4
	ClassSpeed80    = 5
	ClassEndSpeed80 = 6
	ClassSpeed100   = 7
	ClassSpeed120   = 8
	ClassNoPassing  = 9
	ClassYield      = 13
	ClassStop       = 14
	ClassNoEntry    = 17
	ClassTurnRight  = 33
	ClassTurnLeft   = 34
	ClassAheadOnly  = 35
)

// Shape is the sign silhouette family a class belongs to.
type Shape int

// Sign silhouette families of the GTSRB taxonomy.
const (
	ShapeProhibitory   Shape = iota // red-ring circle, white interior
	ShapeDerestriction              // white circle with gray diagonal band
	ShapeMandatory                  // blue disk with white glyph
	ShapeWarning                    // red-bordered triangle, point up
	ShapeYield                      // red-bordered triangle, point down
	ShapePriority                   // yellow diamond
	ShapeStop                       // red octagon
	ShapeNoEntry                    // red disk with white horizontal bar
)

// ClassInfo describes one GTSRB class.
type ClassInfo struct {
	ID    int
	Name  string
	Shape Shape
	// SpeedDigits holds the numeral drawn for speed-limit classes ("60"),
	// empty otherwise.
	SpeedDigits string
}

var classes = [NumClasses]ClassInfo{
	{0, "Speed limit (20km/h)", ShapeProhibitory, "20"},
	{1, "Speed limit (30km/h)", ShapeProhibitory, "30"},
	{2, "Speed limit (50km/h)", ShapeProhibitory, "50"},
	{3, "Speed limit (60km/h)", ShapeProhibitory, "60"},
	{4, "Speed limit (70km/h)", ShapeProhibitory, "70"},
	{5, "Speed limit (80km/h)", ShapeProhibitory, "80"},
	{6, "End of speed limit (80km/h)", ShapeDerestriction, "80"},
	{7, "Speed limit (100km/h)", ShapeProhibitory, "100"},
	{8, "Speed limit (120km/h)", ShapeProhibitory, "120"},
	{9, "No passing", ShapeProhibitory, ""},
	{10, "No passing for vehicles over 3.5 tons", ShapeProhibitory, ""},
	{11, "Right-of-way at the next intersection", ShapeWarning, ""},
	{12, "Priority road", ShapePriority, ""},
	{13, "Yield", ShapeYield, ""},
	{14, "Stop", ShapeStop, ""},
	{15, "No vehicles", ShapeProhibitory, ""},
	{16, "Vehicles over 3.5 tons prohibited", ShapeProhibitory, ""},
	{17, "No entry", ShapeNoEntry, ""},
	{18, "General caution", ShapeWarning, ""},
	{19, "Dangerous curve to the left", ShapeWarning, ""},
	{20, "Dangerous curve to the right", ShapeWarning, ""},
	{21, "Double curve", ShapeWarning, ""},
	{22, "Bumpy road", ShapeWarning, ""},
	{23, "Slippery road", ShapeWarning, ""},
	{24, "Road narrows on the right", ShapeWarning, ""},
	{25, "Road work", ShapeWarning, ""},
	{26, "Traffic signals", ShapeWarning, ""},
	{27, "Pedestrians", ShapeWarning, ""},
	{28, "Children crossing", ShapeWarning, ""},
	{29, "Bicycles crossing", ShapeWarning, ""},
	{30, "Beware of ice/snow", ShapeWarning, ""},
	{31, "Wild animals crossing", ShapeWarning, ""},
	{32, "End of all speed and passing limits", ShapeDerestriction, ""},
	{33, "Turn right ahead", ShapeMandatory, ""},
	{34, "Turn left ahead", ShapeMandatory, ""},
	{35, "Ahead only", ShapeMandatory, ""},
	{36, "Go straight or right", ShapeMandatory, ""},
	{37, "Go straight or left", ShapeMandatory, ""},
	{38, "Keep right", ShapeMandatory, ""},
	{39, "Keep left", ShapeMandatory, ""},
	{40, "Roundabout mandatory", ShapeMandatory, ""},
	{41, "End of no passing", ShapeDerestriction, ""},
	{42, "End of no passing for vehicles over 3.5 tons", ShapeDerestriction, ""},
}

// Class returns the descriptor for a class id; it panics outside [0, 43).
func Class(id int) ClassInfo {
	if id < 0 || id >= NumClasses {
		panic("gtsrb: class id out of range")
	}
	return classes[id]
}

// ClassName returns the human-readable name of a class id.
func ClassName(id int) string { return Class(id).Name }

// AllClasses returns descriptors for all 43 classes in id order.
func AllClasses() []ClassInfo {
	out := make([]ClassInfo, NumClasses)
	copy(out, classes[:])
	return out
}
