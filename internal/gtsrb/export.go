package gtsrb

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/imageio"
)

// Export writes every sample of the dataset into dir as PNG files plus a
// labels.csv manifest (columns: filename, class id, class name), the
// layout downstream tooling expects from a GTSRB-style dump.
func (d *Dataset) Export(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("gtsrb: export: %w", err)
	}
	manifest, err := os.Create(filepath.Join(dir, "labels.csv"))
	if err != nil {
		return fmt.Errorf("gtsrb: export manifest: %w", err)
	}
	w := csv.NewWriter(manifest)
	if err := w.Write([]string{"filename", "class_id", "class_name"}); err != nil {
		manifest.Close()
		return err
	}
	for i := 0; i < d.Len(); i++ {
		img, label := d.Sample(i)
		name := fmt.Sprintf("%05d_c%02d.png", i, label)
		if err := imageio.SavePNG(img, filepath.Join(dir, name)); err != nil {
			manifest.Close()
			return fmt.Errorf("gtsrb: export sample %d: %w", i, err)
		}
		if err := w.Write([]string{name, strconv.Itoa(label), ClassName(label)}); err != nil {
			manifest.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		manifest.Close()
		return err
	}
	return manifest.Close()
}

// Import reads a directory produced by Export back into a Dataset.
// Pixel values round-trip through 8-bit PNG, so images match the originals
// to within 1/255 per channel.
func Import(dir string) (*Dataset, error) {
	f, err := os.Open(filepath.Join(dir, "labels.csv"))
	if err != nil {
		return nil, fmt.Errorf("gtsrb: import manifest: %w", err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("gtsrb: import manifest: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("gtsrb: import: manifest has no samples")
	}
	ds := &Dataset{}
	for _, row := range rows[1:] {
		if len(row) < 2 {
			return nil, fmt.Errorf("gtsrb: import: malformed manifest row %v", row)
		}
		label, err := strconv.Atoi(row[1])
		if err != nil || label < 0 || label >= NumClasses {
			return nil, fmt.Errorf("gtsrb: import: bad class id %q", row[1])
		}
		img, err := imageio.LoadPNG(filepath.Join(dir, row[0]))
		if err != nil {
			return nil, fmt.Errorf("gtsrb: import %s: %w", row[0], err)
		}
		if ds.size == 0 {
			ds.size = img.Dim(1)
		} else if img.Dim(1) != ds.size || img.Dim(2) != ds.size {
			return nil, fmt.Errorf("gtsrb: import: %s has size %dx%d, want %dx%d",
				row[0], img.Dim(1), img.Dim(2), ds.size, ds.size)
		}
		ds.imgs = append(ds.imgs, img)
		ds.labels = append(ds.labels, label)
	}
	return ds, nil
}
