package gtsrb

import (
	"math"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// rgb is a linear color triple in [0, 1].
type rgb struct{ r, g, b float64 }

// palette holds the sign colors for one rendering, pre-jittered per sample
// so lighting varies across the dataset.
type palette struct {
	red, blue, white, black, yellow, gray rgb
}

func basePalette() palette {
	return palette{
		red:    rgb{0.78, 0.10, 0.12},
		blue:   rgb{0.10, 0.25, 0.72},
		white:  rgb{0.94, 0.94, 0.94},
		black:  rgb{0.06, 0.06, 0.06},
		yellow: rgb{0.88, 0.76, 0.18},
		gray:   rgb{0.45, 0.45, 0.45},
	}
}

func (p palette) jittered(rng *mathx.RNG, amount float64) palette {
	j := func(c rgb) rgb {
		f := 1 + rng.Range(-amount, amount)
		return rgb{mathx.Clamp01(c.r * f), mathx.Clamp01(c.g * f), mathx.Clamp01(c.b * f)}
	}
	return palette{red: j(p.red), blue: j(p.blue), white: j(p.white),
		black: j(p.black), yellow: j(p.yellow), gray: j(p.gray)}
}

// mix blends a into b by t.
func mix(a, b rgb, t float64) rgb {
	return rgb{mathx.Lerp(a.r, b.r, t), mathx.Lerp(a.g, b.g, t), mathx.Lerp(a.b, b.b, t)}
}

// Jitter holds the per-sample geometric and photometric variation of one
// rendered sign. Zero value means a perfectly centered canonical sign.
type Jitter struct {
	// DX, DY translate the sign center in local units (1 = half image).
	DX, DY float64
	// Rot rotates the sign, radians.
	Rot float64
	// Scale multiplies the sign radius (1 = nominal, covering ~80% of the image).
	Scale float64
	// Brightness multiplies the final image, Contrast remaps around 0.5.
	Brightness, Contrast float64
	// NoiseStd is the per-pixel Gaussian noise sigma.
	NoiseStd float64
	// Blur is the optical blur sigma in pixels (0 = perfectly sharp).
	// Real GTSRB photographs carry motion and focus blur; including it in
	// the jitter keeps mild smoothing inside the training distribution,
	// which is what lets the paper's model tolerate its pre-processing
	// filters at little clean-accuracy cost.
	Blur float64
	// ColorJitter scales the palette jitter amount.
	ColorJitter float64
	// BgSeed selects the procedural background.
	BgSeed uint64
}

// CanonicalJitter returns the identity jitter used for reference samples
// (the paper's attack inputs): centered sign, neutral lighting, no noise.
func CanonicalJitter() Jitter {
	return Jitter{Scale: 1, Brightness: 1, Contrast: 1}
}

// RandomJitter draws a dataset-quality jitter from rng.
func RandomJitter(rng *mathx.RNG) Jitter {
	blur := 0.0
	if rng.Bool(0.75) {
		blur = rng.Range(0.3, 1.1)
	}
	return Jitter{
		DX:          rng.Range(-0.12, 0.12),
		DY:          rng.Range(-0.12, 0.12),
		Rot:         rng.Range(-0.15, 0.15),
		Scale:       rng.Range(0.82, 1.05),
		Brightness:  rng.Range(0.8, 1.15),
		Contrast:    rng.Range(0.85, 1.1),
		NoiseStd:    rng.Range(0.005, 0.025),
		Blur:        blur,
		ColorJitter: 0.12,
		BgSeed:      rng.Uint64(),
	}
}

// Render draws the given GTSRB class id as an RGB CHW tensor of side size.
// The same (class, size, jitter) triple always produces the same image.
func Render(class, size int, jit Jitter, rng *mathx.RNG) *tensor.Tensor {
	info := Class(class)
	if size < 8 {
		panic("gtsrb: Render size too small")
	}
	if jit.Scale == 0 {
		jit.Scale = 1
	}
	if jit.Brightness == 0 {
		jit.Brightness = 1
	}
	if jit.Contrast == 0 {
		jit.Contrast = 1
	}
	pal := basePalette()
	if jit.ColorJitter > 0 && rng != nil {
		pal = pal.jittered(rng, jit.ColorJitter)
	}
	bg := newBackground(jit.BgSeed)
	img := tensor.New(3, size, size)
	d := img.Data()
	plane := size * size

	cos, sin := math.Cos(-jit.Rot), math.Sin(-jit.Rot)
	inv := 1 / (0.8 * jit.Scale) // nominal sign radius is 80% of half-image

	const ss = 2 // 2x2 supersampling for anti-aliased edges
	for py := 0; py < size; py++ {
		for px := 0; px < size; px++ {
			var acc rgb
			for sy := 0; sy < ss; sy++ {
				for sx := 0; sx < ss; sx++ {
					// Pixel center in [-1, 1] coordinates.
					fx := (float64(px)+(float64(sx)+0.5)/ss)/float64(size)*2 - 1
					fy := (float64(py)+(float64(sy)+0.5)/ss)/float64(size)*2 - 1
					// Undo translation, rotation and scale to sign-local coords.
					tx, ty := fx-jit.DX, fy-jit.DY
					lx := (tx*cos - ty*sin) * inv
					ly := (tx*sin + ty*cos) * inv
					col, alpha := paintSign(info, lx, ly, pal)
					bgc := bg.at(fx, fy)
					c := mix(bgc, col, alpha)
					acc.r += c.r
					acc.g += c.g
					acc.b += c.b
				}
			}
			n := float64(ss * ss)
			c := rgb{acc.r / n, acc.g / n, acc.b / n}
			// Photometric jitter.
			c.r = mathx.Clamp01((c.r-0.5)*jit.Contrast*jit.Brightness + 0.5*jit.Brightness)
			c.g = mathx.Clamp01((c.g-0.5)*jit.Contrast*jit.Brightness + 0.5*jit.Brightness)
			c.b = mathx.Clamp01((c.b-0.5)*jit.Contrast*jit.Brightness + 0.5*jit.Brightness)
			idx := py*size + px
			d[idx] = c.r
			d[plane+idx] = c.g
			d[2*plane+idx] = c.b
		}
	}
	if jit.Blur > 0 {
		img = blurImage(img, jit.Blur)
		d = img.Data()
	}
	if jit.NoiseStd > 0 && rng != nil {
		for i := range d {
			d[i] = mathx.Clamp01(d[i] + rng.NormScaled(0, jit.NoiseStd))
		}
	}
	return img
}

// blurImage applies a separable Gaussian blur (taps at ±3σ, replicate
// border) — the optical-blur component of the jitter model.
func blurImage(img *tensor.Tensor, sigma float64) *tensor.Tensor {
	radius := int(math.Ceil(3 * sigma))
	if radius < 1 {
		radius = 1
	}
	kernel := make([]float64, 2*radius+1)
	sum := 0.0
	for i := range kernel {
		d := float64(i - radius)
		kernel[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= sum
	}
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	clampi := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	tmp := tensor.New(c, h, w)
	out := tensor.New(c, h, w)
	id, td, od := img.Data(), tmp.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				acc := 0.0
				for k, kv := range kernel {
					acc += kv * id[base+y*w+clampi(x+k-radius, w-1)]
				}
				td[base+y*w+x] = acc
			}
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				acc := 0.0
				for k, kv := range kernel {
					acc += kv * td[base+clampi(y+k-radius, h-1)*w+x]
				}
				od[base+y*w+x] = acc
			}
		}
	}
	return out
}

// Canonical renders the reference image of a class: centered, unjittered,
// noise-free. This is the "reference sample x" of the paper's Section IV.
func Canonical(class, size int) *tensor.Tensor {
	return Render(class, size, CanonicalJitter(), nil)
}

// background is a smooth procedural backdrop (sky-to-ground gradient with a
// deterministic hue tint) standing in for the street scenes behind real
// GTSRB crops.
type background struct {
	top, bottom rgb
	phase       float64
}

func newBackground(seed uint64) *background {
	r := mathx.NewRNG(seed ^ 0xbadc0ffee)
	sky := rgb{0.45 + r.Range(-0.15, 0.25), 0.55 + r.Range(-0.15, 0.2), 0.65 + r.Range(-0.2, 0.25)}
	ground := rgb{0.35 + r.Range(-0.15, 0.15), 0.33 + r.Range(-0.12, 0.15), 0.3 + r.Range(-0.1, 0.12)}
	return &background{top: sky, bottom: ground, phase: r.Range(0, math.Pi)}
}

func (b *background) at(x, y float64) rgb {
	t := mathx.Clamp01((y + 1) / 2)
	c := mix(b.top, b.bottom, t)
	// A faint horizontal ripple so the background is not linearly separable
	// from sign colors by mean intensity alone.
	w := 0.03 * math.Sin(3*x+b.phase)
	return rgb{mathx.Clamp01(c.r + w), mathx.Clamp01(c.g + w), mathx.Clamp01(c.b + w)}
}

// smoothstep is the standard cubic step with edges e0 < e1.
func smoothstep(e0, e1, x float64) float64 {
	t := mathx.Clamp01((x - e0) / (e1 - e0))
	return t * t * (3 - 2*t)
}

// edge antialiasing width in sign-local units.
const aa = 0.04

// paintSign evaluates the sign color at local coordinates (x, y) in
// [-1, 1]² (y grows downward) and returns the color with a coverage alpha
// (0 outside the sign).
func paintSign(info ClassInfo, x, y float64, pal palette) (rgb, float64) {
	switch info.Shape {
	case ShapeProhibitory:
		return paintProhibitory(info, x, y, pal)
	case ShapeDerestriction:
		return paintDerestriction(info, x, y, pal)
	case ShapeMandatory:
		return paintMandatory(info, x, y, pal)
	case ShapeWarning:
		return paintWarning(info, x, y, pal)
	case ShapeYield:
		return paintYield(x, y, pal)
	case ShapePriority:
		return paintPriority(x, y, pal)
	case ShapeStop:
		return paintStop(x, y, pal)
	case ShapeNoEntry:
		return paintNoEntry(x, y, pal)
	default:
		return rgb{}, 0
	}
}

func paintProhibitory(info ClassInfo, x, y float64, pal palette) (rgb, float64) {
	r := math.Hypot(x, y)
	alpha := 1 - smoothstep(1-aa, 1+aa, r)
	if alpha <= 0 {
		return rgb{}, 0
	}
	ring := smoothstep(0.74-aa, 0.74+aa, r)
	col := mix(pal.white, pal.red, ring)
	if r < 0.74 {
		if info.SpeedDigits != "" {
			col = mix(col, pal.black, speedGlyph(info.SpeedDigits, x, y))
		} else {
			col = mix(col, pal.black, classGlyph(info.ID, x, y, pal))
		}
	}
	return col, alpha
}

func paintDerestriction(info ClassInfo, x, y float64, pal palette) (rgb, float64) {
	r := math.Hypot(x, y)
	alpha := 1 - smoothstep(1-aa, 1+aa, r)
	if alpha <= 0 {
		return rgb{}, 0
	}
	col := pal.white
	if info.SpeedDigits != "" {
		col = mix(col, pal.gray, 0.8*speedGlyph(info.SpeedDigits, x, y))
	} else {
		col = mix(col, pal.gray, 0.6*classGlyph(info.ID, x, y, pal))
	}
	// Diagonal derestriction band from lower-left to upper-right.
	d := math.Abs(x+y) / math.Sqrt2
	band := 1 - smoothstep(0.1-aa, 0.1+aa, d)
	col = mix(col, pal.gray, 0.9*band)
	return col, alpha
}

func paintMandatory(info ClassInfo, x, y float64, pal palette) (rgb, float64) {
	r := math.Hypot(x, y)
	alpha := 1 - smoothstep(1-aa, 1+aa, r)
	if alpha <= 0 {
		return rgb{}, 0
	}
	col := pal.blue
	var glyph float64
	switch info.ID {
	case ClassTurnRight:
		glyph = arrowGlyph(x, y, +1, false)
	case ClassTurnLeft:
		glyph = arrowGlyph(x, y, -1, false)
	case ClassAheadOnly:
		glyph = arrowGlyph(x, y, 0, false)
	case 36: // straight or right
		glyph = math.Max(arrowGlyph(x*1.4+0.45, y, 0, true), arrowGlyph(x*1.4-0.45, y, +1, true))
	case 37: // straight or left
		glyph = math.Max(arrowGlyph(x*1.4-0.45, y, 0, true), arrowGlyph(x*1.4+0.45, y, -1, true))
	case 38: // keep right
		glyph = arrowGlyph(x-0.18, y, +1, false)
	case 39: // keep left
		glyph = arrowGlyph(x+0.18, y, -1, false)
	case 40: // roundabout: ring of three arcs approximated by a ring
		d := math.Abs(math.Hypot(x, y) - 0.45)
		glyph = 1 - smoothstep(0.12-aa, 0.12+aa, d)
	default:
		glyph = classGlyph(info.ID, x, y, pal)
	}
	col = mix(col, pal.white, glyph)
	return col, alpha
}

func paintWarning(info ClassInfo, x, y float64, pal palette) (rgb, float64) {
	d := triangleSDF(x, y, false)
	alpha := 1 - smoothstep(-aa, aa, d)
	if alpha <= 0 {
		return rgb{}, 0
	}
	border := 1 - smoothstep(-0.22-aa, -0.22+aa, d)
	col := mix(pal.red, pal.white, border)
	if d < -0.22 {
		// Interior glyph: '!' for general caution, class-coded mark otherwise.
		if info.ID == 18 {
			g := 0.0
			if textCoverage("!", (x+0.3)/0.6, (y+0.05)/0.62) {
				g = 1
			}
			col = mix(col, pal.black, g)
		} else {
			col = mix(col, pal.black, classGlyph(info.ID, x, y*1.2+0.18, pal))
		}
	}
	return col, alpha
}

func paintYield(x, y float64, pal palette) (rgb, float64) {
	d := triangleSDF(x, y, true)
	alpha := 1 - smoothstep(-aa, aa, d)
	if alpha <= 0 {
		return rgb{}, 0
	}
	border := 1 - smoothstep(-0.28-aa, -0.28+aa, d)
	col := mix(pal.red, pal.white, border)
	return col, alpha
}

func paintPriority(x, y float64, pal palette) (rgb, float64) {
	d := (math.Abs(x) + math.Abs(y)) - 1
	alpha := 1 - smoothstep(-aa, aa, d)
	if alpha <= 0 {
		return rgb{}, 0
	}
	// Yellow center on white diamond border.
	inner := (math.Abs(x) + math.Abs(y)) - 0.62
	col := mix(pal.white, pal.yellow, 1-smoothstep(-aa, aa, inner))
	return col, alpha
}

func paintStop(x, y float64, pal palette) (rgb, float64) {
	d := octagonSDF(x, y)
	alpha := 1 - smoothstep(-aa, aa, d)
	if alpha <= 0 {
		return rgb{}, 0
	}
	col := pal.red
	// Thin white rim near the octagon edge (d close to 0), red interior.
	rim := smoothstep(-0.1-aa, -0.1+aa, d)
	col = mix(col, pal.white, 0.9*rim)
	if textCoverage("STOP", (x+0.78)/1.56, (y+0.3)/0.6) {
		col = pal.white
	}
	return col, alpha
}

func paintNoEntry(x, y float64, pal palette) (rgb, float64) {
	r := math.Hypot(x, y)
	alpha := 1 - smoothstep(1-aa, 1+aa, r)
	if alpha <= 0 {
		return rgb{}, 0
	}
	col := pal.red
	// White horizontal bar.
	bar := 1 - smoothstep(0.22-aa, 0.22+aa, math.Abs(y))
	inBar := smoothstep(0.8-aa, 0.8+aa, math.Abs(x))
	col = mix(col, pal.white, bar*(1-inBar))
	return col, alpha
}

// speedGlyph returns the ink coverage of a speed numeral centered in the
// sign interior. The numerals are drawn as large as the ring interior
// allows: at 32-pixel rendering the first digit must span enough pixels
// that 20/30/80 remain separable after five pooling stages.
func speedGlyph(digits string, x, y float64) float64 {
	w := 1.12
	if len(digits) >= 3 {
		w = 1.3
	}
	tx := (x + w/2) / w
	ty := (y + 0.44) / 0.88
	if textCoverage(digits, tx, ty) {
		return 1
	}
	return 0
}

// arrowGlyph returns the coverage of an arrow glyph. dir is -1 (left),
// 0 (straight up) or +1 (right); small shrinks the glyph for two-arrow signs.
func arrowGlyph(x, y float64, dir int, small bool) float64 {
	s := 1.0
	if small {
		s = 0.8
	}
	x, y = x/s, y/s
	switch dir {
	case 0:
		// Vertical shaft with an upward head.
		shaft := boolTo(math.Abs(x) < 0.13 && y > -0.2 && y < 0.55)
		head := boolTo(y >= -0.55 && y < -0.1 && math.Abs(x) < 0.45*((y+0.55)/0.45+0.12) && math.Abs(x) < 0.42 && y < -0.2+0.01)
		// Simpler triangular head: width shrinks toward the tip at y=-0.55.
		head = boolTo(y >= -0.55 && y <= -0.15 && math.Abs(x) <= 0.42*(y+0.55)/0.4)
		return math.Max(shaft, head)
	case 1:
		// Horizontal shaft pointing right with a rightward head.
		shaft := boolTo(math.Abs(y) < 0.13 && x > -0.55 && x < 0.2)
		head := boolTo(x >= 0.15 && x <= 0.55 && math.Abs(y) <= 0.42*(0.55-x)/0.4)
		return math.Max(shaft, head)
	default:
		// Mirror of the rightward arrow.
		return arrowGlyph(-x, y, 1, false)
	}
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// classGlyph renders a deterministic 3×4 dot-matrix code of the class id —
// a visually plausible stand-in glyph that guarantees the 30+ warning and
// prohibitory classes without modeled pictograms remain distinguishable.
func classGlyph(id int, x, y float64, _ palette) float64 {
	// Map the interior to a 3×4 cell grid.
	gx := (x + 0.45) / 0.9
	gy := (y + 0.45) / 0.9
	if gx < 0 || gx >= 1 || gy < 0 || gy >= 1 {
		return 0
	}
	col := int(gx * 3)
	row := int(gy * 4)
	bit := uint(row*3 + col)
	// Spread id bits across 12 cells with a multiplicative hash so nearby
	// ids differ in several cells.
	h := uint64(id)*2654435761 + 0x9e37
	if (h>>bit)&1 == 1 {
		// Leave small gaps between dots.
		cx := (gx*3 - float64(col)) - 0.5
		cy := (gy*4 - float64(row)) - 0.5
		if math.Abs(cx) < 0.38 && math.Abs(cy) < 0.38 {
			return 1
		}
	}
	return 0
}

// triangleSDF is the signed distance to an equilateral-ish triangle
// occupying the unit box; negative inside. down=true flips it point-down.
func triangleSDF(x, y float64, down bool) float64 {
	if down {
		y = -y
	}
	// Vertices: (0,-1), (-1, 0.8), (1, 0.8).
	// Edges as half-planes with outward normals.
	top := y - 0.8                     // below bottom edge when positive
	leftN := (-1.8*x - 1*y - 1) / 2.06 // left edge: from (0,-1) to (-1,0.8)
	rightN := (1.8*x - 1*y - 1) / 2.06 // right edge
	return math.Max(top, math.Max(leftN, rightN))
}

// octagonSDF is the signed distance to a regular octagon of circumradius 1;
// negative inside.
func octagonSDF(x, y float64) float64 {
	ax, ay := math.Abs(x), math.Abs(y)
	k := 0.924 // cos(pi/8)
	d1 := ax - k
	d2 := ay - k
	d3 := (ax+ay)/math.Sqrt2 - k
	return math.Max(d1, math.Max(d2, d3))
}
