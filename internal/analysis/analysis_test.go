package analysis

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/attacks"
	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/tensor"
	"repro/internal/train"
)

func TestTopK(t *testing.T) {
	probs := []float64{0.1, 0.5, 0.05, 0.3, 0.05}
	top := TopK(probs, 3)
	if len(top) != 3 {
		t.Fatalf("TopK len = %d", len(top))
	}
	if top[0].Class != 1 || top[1].Class != 3 || top[2].Class != 0 {
		t.Fatalf("TopK order wrong: %+v", top)
	}
	if top[0].Prob != 0.5 {
		t.Fatalf("TopK prob wrong: %+v", top[0])
	}
	if got := TopK(probs, 99); len(got) != len(probs) {
		t.Fatalf("TopK with k>len = %d entries", len(got))
	}
}

func TestEq2CostDelegation(t *testing.T) {
	a := []float64{0.8, 0.1, 0.05, 0.03, 0.01, 0.01}
	b := []float64{0.3, 0.3, 0.2, 0.1, 0.05, 0.05}
	if got, want := Eq2Cost(a, b, 5), attacks.Eq2Cost(a, b, 5); got != want {
		t.Fatalf("Eq2Cost delegation broken: %v vs %v", got, want)
	}
}

// Shared small fixture: 2-class pipeline for comparison tests.
var (
	fxOnce sync.Once
	fxNet  *nn.Network
	fxErr  error
)

type remapDS struct {
	inner *gtsrb.Dataset
	remap map[int]int
}

func (d remapDS) Len() int { return d.inner.Len() }
func (d remapDS) Sample(i int) (*tensor.Tensor, int) {
	img, l := d.inner.Sample(i)
	return img, d.remap[l]
}

func fixtureNet(t *testing.T) *nn.Network {
	t.Helper()
	fxOnce.Do(func() {
		ds, err := gtsrb.Generate(gtsrb.Config{
			Size: 16, PerClass: 25, Seed: 21,
			Classes: []int{gtsrb.ClassStop, gtsrb.ClassSpeed60},
		})
		if err != nil {
			fxErr = err
			return
		}
		net, err := nn.TinyCNN(3, 16, 2, mathx.NewRNG(4))
		if err != nil {
			fxErr = err
			return
		}
		remap := map[int]int{gtsrb.ClassStop: 0, gtsrb.ClassSpeed60: 1}
		_, fxErr = train.Fit(net, remapDS{ds, remap}, train.Config{
			Epochs: 12, BatchSize: 10, Schedule: train.ConstantLR(3e-3), Seed: 6,
		})
		fxNet = net
	})
	if fxErr != nil {
		t.Fatalf("analysis fixture: %v", fxErr)
	}
	return fxNet
}

func TestCompareNeutralizationFlow(t *testing.T) {
	net := fixtureNet(t)
	filter := filters.NewLAP(8)
	p := pipeline.New(net, filter, nil)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)

	// Filter-blind attack.
	c := attacks.NetClassifier{Net: net}
	res, err := (&attacks.BIM{Epsilon: 0.08, Alpha: 0.01, Steps: 40, EarlyStop: true}).
		Generate(context.Background(), c, clean, attacks.Goal{Source: 0, Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Skip("base attack failed at this budget; comparison not applicable")
	}
	cmp := Compare(p, clean, res.Adversarial, 0, 1, pipeline.TM3, "BIM")
	if cmp.CleanPred != 0 {
		t.Fatalf("clean image misclassified: %+v", cmp)
	}
	if cmp.TM1Pred != 1 {
		t.Fatalf("TM-I did not show the attack: %+v", cmp)
	}
	if !cmp.Neutralized {
		t.Fatalf("filter did not neutralize filter-blind attack: %+v", cmp)
	}
	if cmp.SurvivedFilter {
		t.Fatalf("blind attack should not survive: %+v", cmp)
	}
	line := cmp.String()
	if !strings.Contains(line, "NEUTRALIZED") || !strings.Contains(line, "lap(np=8)") {
		t.Fatalf("report line missing fields: %q", line)
	}
}

func TestCompareSurvivalFlow(t *testing.T) {
	net := fixtureNet(t)
	filter := filters.NewLAP(8)
	p := pipeline.New(net, filter, nil)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)

	c := attacks.NetClassifier{Net: net}
	fademl := attacks.NewFAdeML(&attacks.BIM{Epsilon: 0.12, Alpha: 0.012, Steps: 60, EarlyStop: true}, filter)
	res, err := fademl.Generate(context.Background(), c, clean, attacks.Goal{Source: 0, Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("FAdeML failed in fixture: %+v", res)
	}
	cmp := Compare(p, clean, res.Adversarial, 0, 1, pipeline.TM3, fademl.Name())
	if !cmp.SurvivedFilter {
		t.Fatalf("FAdeML did not survive in comparison: %+v", cmp)
	}
	if !strings.Contains(cmp.String(), "SURVIVED") {
		t.Fatalf("report line missing SURVIVED: %q", cmp.String())
	}
}

func TestCompareRejectsTM1(t *testing.T) {
	net := fixtureNet(t)
	p := pipeline.New(net, nil, nil)
	img := gtsrb.Canonical(gtsrb.ClassStop, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("Compare accepted TM1 as the filtered model")
		}
	}()
	Compare(p, img, img, 0, 1, pipeline.TM1, "x")
}

func TestPipelineAccuracy(t *testing.T) {
	net := fixtureNet(t)
	p := pipeline.New(net, filters.NewLAP(4), nil)
	ds, err := gtsrb.Generate(gtsrb.Config{
		Size: 16, PerClass: 10, Seed: 77,
		Classes: []int{gtsrb.ClassStop, gtsrb.ClassSpeed60},
	})
	if err != nil {
		t.Fatal(err)
	}
	remap := map[int]int{gtsrb.ClassStop: 0, gtsrb.ClassSpeed60: 1}
	rds := remapDS{ds, remap}

	clean := PipelineAccuracy(p, rds, pipeline.TM3, nil)
	if clean.Top1 < 0.8 {
		t.Fatalf("clean filtered accuracy %.2f too low", clean.Top1)
	}
	// Destroying inputs craters accuracy through the same path.
	destroyed := PipelineAccuracy(p, rds, pipeline.TM3, func(img *tensor.Tensor, _ int) *tensor.Tensor {
		out := img.Clone()
		out.Fill(0.5)
		return out
	})
	if destroyed.Top1 >= clean.Top1 {
		t.Fatalf("destroyed accuracy %.2f not below clean %.2f", destroyed.Top1, clean.Top1)
	}
}

func TestCostFieldMatchesManualEq2(t *testing.T) {
	net := fixtureNet(t)
	filter := filters.NewLAR(2)
	p := pipeline.New(net, filter, nil)
	clean := gtsrb.Canonical(gtsrb.ClassSpeed60, 16)
	adv := clean.Clone()
	adv.AddScalar(0.02)
	adv.Clamp01()
	cmp := Compare(p, clean, adv, 1, 0, pipeline.TM3, "manual")
	probsI := p.Probs(adv, pipeline.TM1)
	probsX := p.Probs(adv, pipeline.TM3)
	want := Eq2Cost(probsI, probsX, 5)
	if math.Abs(cmp.Cost-want) > 1e-12 {
		t.Fatalf("comparison cost %v != manual %v", cmp.Cost, want)
	}
}
