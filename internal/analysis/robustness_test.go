package analysis

import (
	"context"
	"testing"

	"repro/internal/attacks"
	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/tensor"
)

func TestRobustnessCurveMonotone(t *testing.T) {
	net := fixtureNet(t)
	c := attacks.NetClassifier{Net: net}
	imgs := []*tensor.Tensor{
		gtsrb.Canonical(gtsrb.ClassStop, 16),
		gtsrb.Canonical(gtsrb.ClassSpeed60, 16),
	}
	goals := []attacks.Goal{
		{Source: 0, Target: attacks.Untargeted},
		{Source: 1, Target: attacks.Untargeted},
	}
	eps := []float64{0.01, 0.05, 0.15}
	points, err := RobustnessCurve(context.Background(), c, imgs, goals, eps, func(e float64) attacks.Attack {
		return &attacks.BIM{Epsilon: e, Alpha: e / 8, Steps: 20, EarlyStop: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Success rate cannot decrease with budget for a monotone attack family
	// (allowing equal values).
	for i := 1; i < len(points); i++ {
		if points[i].SuccessRate < points[i-1].SuccessRate-1e-9 {
			t.Fatalf("success not monotone: %+v", points)
		}
	}
	// The largest budget should break both of these 2-class inputs.
	if points[2].SuccessRate < 1 {
		t.Fatalf("eps=0.15 success = %v, want 1", points[2].SuccessRate)
	}
}

func TestRobustnessCurveThroughFilter(t *testing.T) {
	net := fixtureNet(t)
	bare := attacks.NetClassifier{Net: net}
	filtered := attacks.FilteredClassifier{Inner: bare, Pre: filters.NewLAP(8)}
	imgs := []*tensor.Tensor{gtsrb.Canonical(gtsrb.ClassStop, 16)}
	goals := []attacks.Goal{{Source: 0, Target: attacks.Untargeted}}
	eps := []float64{0.05}
	mk := func(e float64) attacks.Attack {
		return &attacks.BIM{Epsilon: e, Alpha: e / 8, Steps: 20, EarlyStop: true}
	}
	pBare, err := RobustnessCurve(context.Background(), bare, imgs, goals, eps, mk)
	if err != nil {
		t.Fatal(err)
	}
	pFilt, err := RobustnessCurve(context.Background(), filtered, imgs, goals, eps, mk)
	if err != nil {
		t.Fatal(err)
	}
	// Attacking through the filter is never *easier* at equal budget.
	if pFilt[0].SuccessRate > pBare[0].SuccessRate {
		t.Fatalf("filtered attack easier than bare: %v > %v",
			pFilt[0].SuccessRate, pBare[0].SuccessRate)
	}
}

func TestRobustnessCurveValidation(t *testing.T) {
	net := fixtureNet(t)
	c := attacks.NetClassifier{Net: net}
	img := gtsrb.Canonical(gtsrb.ClassStop, 16)
	mk := func(e float64) attacks.Attack { return &attacks.FGSM{Epsilon: e} }
	if _, err := RobustnessCurve(context.Background(), c, nil, nil, []float64{0.1}, mk); err == nil {
		t.Error("empty image set accepted")
	}
	if _, err := RobustnessCurve(context.Background(), c, []*tensor.Tensor{img}, nil, []float64{0.1}, mk); err == nil {
		t.Error("mismatched goals accepted")
	}
	if _, err := RobustnessCurve(context.Background(), c, []*tensor.Tensor{img},
		[]attacks.Goal{{Source: 0, Target: attacks.Untargeted}}, nil, mk); err == nil {
		t.Error("empty epsilon list accepted")
	}
}
