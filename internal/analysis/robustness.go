package analysis

import (
	"context"
	"fmt"

	"repro/internal/attacks"
	"repro/internal/tensor"
)

// RobustnessPoint is one sample of an attack-strength sweep.
type RobustnessPoint struct {
	// Epsilon is the L∞ budget of this point.
	Epsilon float64
	// SuccessRate is the fraction of evaluated images whose goal the
	// attack achieved at this budget.
	SuccessRate float64
	// MeanConfidence is the average prediction confidence on the
	// adversarial images.
	MeanConfidence float64
}

// RobustnessCurve sweeps an epsilon-parameterized attack family over a set
// of (image, goal) pairs and records the success rate per budget — the
// standard robustness-evaluation curve, usable against a bare classifier
// or a FilteredClassifier (giving filtered-pipeline robustness). ctx
// cancellation aborts the sweep with the context error; per-point attack
// budgets can be attached via attacks.WithBudget.
//
// mkAttack builds the attack for a given epsilon (e.g. a BIM with
// proportional step size).
func RobustnessCurve(ctx context.Context, c attacks.Classifier, imgs []*tensor.Tensor, goals []attacks.Goal,
	epsilons []float64, mkAttack func(eps float64) attacks.Attack) ([]RobustnessPoint, error) {
	if len(imgs) == 0 || len(imgs) != len(goals) {
		return nil, fmt.Errorf("analysis: robustness needs matching images and goals (%d vs %d)",
			len(imgs), len(goals))
	}
	if len(epsilons) == 0 || mkAttack == nil {
		return nil, fmt.Errorf("analysis: robustness needs epsilons and an attack factory")
	}
	var out []RobustnessPoint
	for _, eps := range epsilons {
		atk := mkAttack(eps)
		successes := 0
		confSum := 0.0
		for i, img := range imgs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, err := atk.Generate(ctx, c, img, goals[i])
			if err != nil {
				return nil, fmt.Errorf("analysis: robustness at eps=%v image %d: %w", eps, i, err)
			}
			if res.Success {
				successes++
			}
			confSum += res.Confidence
		}
		out = append(out, RobustnessPoint{
			Epsilon:        eps,
			SuccessRate:    float64(successes) / float64(len(imgs)),
			MeanConfidence: confSum / float64(len(imgs)),
		})
	}
	return out, nil
}
