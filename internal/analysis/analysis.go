// Package analysis implements the paper's Section III analysis
// methodology: top-k prediction extraction, the Eq. 2 cost function
// comparing classification probabilities across threat models, and
// accuracy evaluation of a full inference pipeline under attack.
package analysis

import (
	"fmt"
	"strings"

	"repro/internal/attacks"
	"repro/internal/mathx"
	"repro/internal/pipeline"
	"repro/internal/tensor"
	"repro/internal/train"
)

// ClassProb pairs a class id with its predicted probability.
type ClassProb struct {
	Class int
	Prob  float64
}

// TopK returns the k highest-probability classes in descending order.
func TopK(probs []float64, k int) []ClassProb {
	idx := mathx.TopKIndices(probs, k)
	out := make([]ClassProb, len(idx))
	for i, c := range idx {
		out[i] = ClassProb{Class: c, Prob: probs[c]}
	}
	return out
}

// Eq2Cost is the paper's Eq. 2: the summed top-k probability mass under
// Threat Model I minus that under Threat Model II/III. It delegates to the
// attacks package's canonical implementation (which the FAdeML trace also
// uses).
func Eq2Cost(probsI, probsII []float64, k int) float64 {
	return attacks.Eq2Cost(probsI, probsII, k)
}

// Comparison is the outcome of running one adversarial example through
// the pipeline under TM I and one of TM II/III — step 4 of the paper's
// Fig. 3 methodology.
type Comparison struct {
	// AttackName and FilterName identify the configuration.
	AttackName, FilterName string
	// Source and Target are the scenario classes.
	Source, Target int
	// CleanPred/CleanConf describe the clean image through the deployed
	// (filtered) pipeline.
	CleanPred int
	CleanConf float64
	// TM1Pred/TM1Conf describe the adversarial image under TM I.
	TM1Pred int
	TM1Conf float64
	// TMXPred/TMXConf describe the adversarial image under TM II or III.
	TMX     pipeline.ThreatModel
	TMXPred int
	TMXConf float64
	// Cost is Eq. 2 between the TM I and TM II/III probability vectors.
	Cost float64
	// Neutralized reports whether filtering reverted the prediction to
	// the source class while TM I had achieved the target.
	Neutralized bool
	// SurvivedFilter reports whether the targeted misclassification held
	// under TM II/III.
	SurvivedFilter bool
}

// Compare runs the Fig. 3 methodology for one adversarial example: clean
// baseline, TM I inference, TM II/III inference, Eq. 2 cost.
func Compare(p *pipeline.Pipeline, clean, adv *tensor.Tensor, source, target int, tmx pipeline.ThreatModel, attackName string) Comparison {
	if tmx != pipeline.TM2 && tmx != pipeline.TM3 {
		panic(fmt.Sprintf("analysis: Compare wants TM2 or TM3, got %v", tmx))
	}
	// All three pipeline views (clean under TM-II delivery, adversarial
	// under TM-I and TM-II/III) score through one batched forward pass;
	// rows are bit-identical to separate Probs calls.
	views := p.Net.ProbsBatch([]*tensor.Tensor{
		p.Deliver(clean, pipeline.TM2),
		p.Deliver(adv, pipeline.TM1),
		p.Deliver(adv, tmx),
	})
	cleanProbs, probsI, probsX := views[0], views[1], views[2]

	cleanPred := mathx.ArgMax(cleanProbs)
	tm1Pred := mathx.ArgMax(probsI)
	tmxPred := mathx.ArgMax(probsX)

	return Comparison{
		AttackName:     attackName,
		FilterName:     p.Filter.Name(),
		Source:         source,
		Target:         target,
		CleanPred:      cleanPred,
		CleanConf:      cleanProbs[cleanPred],
		TM1Pred:        tm1Pred,
		TM1Conf:        probsI[tm1Pred],
		TMX:            tmx,
		TMXPred:        tmxPred,
		TMXConf:        probsX[tmxPred],
		Cost:           Eq2Cost(probsI, probsX, 5),
		Neutralized:    tm1Pred == target && tmxPred == source,
		SurvivedFilter: tmxPred == target,
	}
}

// String renders the comparison as a single report line.
func (c Comparison) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s | %s | %d→%d | clean %d@%.2f | TM-I %d@%.2f | %v %d@%.2f | cost %+.3f",
		c.AttackName, c.FilterName, c.Source, c.Target,
		c.CleanPred, c.CleanConf, c.TM1Pred, c.TM1Conf, c.TMX, c.TMXPred, c.TMXConf, c.Cost)
	switch {
	case c.SurvivedFilter:
		sb.WriteString(" | SURVIVED")
	case c.Neutralized:
		sb.WriteString(" | NEUTRALIZED")
	}
	return sb.String()
}

// PipelineAccuracy evaluates top-1/top-5 accuracy of the pipeline over a
// dataset with every sample passing the given threat-model path;
// perturb may be nil (clean evaluation) or return the attacked version of
// sample i. Every delivery path — including TM-II sensor noise, which is
// a pure function of (seed, image) — is pure per sample, so evaluation
// fans out over the worker pool with results identical to a serial run.
func PipelineAccuracy(p *pipeline.Pipeline, ds train.Dataset, tm pipeline.ThreatModel, perturb func(img *tensor.Tensor, i int) *tensor.Tensor) train.Metrics {
	return train.EvaluateBatchWorkers(p.Net, ds, func(imgs []*tensor.Tensor, idx []int) []*tensor.Tensor {
		if perturb != nil {
			perturbed := make([]*tensor.Tensor, len(imgs))
			for j, img := range imgs {
				perturbed[j] = perturb(img, idx[j])
			}
			imgs = perturbed
		}
		// Delivery runs batched so the filter stage uses ApplyBatch.
		return p.DeliverBatch(imgs, tm)
	}, 0)
}
