package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Net32 is a frozen float32 inference snapshot of a Network — the compute
// side of the serving fast lane. It is built once from trained float64
// weights via Network.ToFloat32 (one round-to-nearest per weight) and
// supports forward passes only: training, attacks and the paper metrics
// stay on the float64 Network.
//
// The lowering is not layer-by-layer: adjacent Conv2D+ReLU and Dense+ReLU
// pairs are fused into single ops whose bias epilogue clamps in the same
// pass (skipping a full write+read of the activation tensor), Dropout
// disappears (eval-mode identity), and BatchNorm2D folds its running
// statistics and affine into one per-channel scale/shift. Inputs arrive
// as float64 tensors and are rounded once at the batch boundary; logits
// are widened back to float64 (exactly) so softmax and argmax run in
// float64 — any precision drift comes from the forward pass alone.
type Net32 struct {
	name    string
	inShape []int
	classes int
	ops     []op32
	inBuf   []float32
}

// op32 is one fused stage of the float32 forward pipeline. forward may
// return a tensor backed by the op's own scratch (valid until its next
// forward call) or a view of its input.
type op32 interface {
	forward(x *tensor.Tensor32) *tensor.Tensor32
	clone() op32
}

// scratch32 resizes *buf to hold shape and wraps it, mirroring the
// float64 scratch helper.
func scratch32(buf *[]float32, shape ...int) *tensor.Tensor32 {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if cap(*buf) < n {
		*buf = make([]float32, n)
	}
	*buf = (*buf)[:n]
	return tensor.FromSlice32(*buf, shape...)
}

// ToFloat32 lowers the network to a float32 inference snapshot. Weights
// are converted once (round-to-nearest-even); the snapshot shares nothing
// mutable with the Network, so the float64 net can keep training while
// clones of the snapshot serve. Layers without a float32 lowering yield
// an error rather than a silent fallback.
func (n *Network) ToFloat32() (*Net32, error) {
	net := &Net32{
		name:    n.name,
		inShape: append([]int(nil), n.inShape...),
		classes: n.OutputClasses(),
	}
	for i := 0; i < len(n.layers); i++ {
		switch l := n.layers[i].(type) {
		case *Conv2D:
			relu := false
			if i+1 < len(n.layers) {
				if _, ok := n.layers[i+1].(*ReLU); ok {
					relu = true
					i++ // fused: consume the activation layer
				}
			}
			net.ops = append(net.ops, newConv32(l, relu))
		case *Dense:
			relu := false
			if i+1 < len(n.layers) {
				if _, ok := n.layers[i+1].(*ReLU); ok {
					relu = true
					i++
				}
			}
			net.ops = append(net.ops, newDense32(l, relu))
		case *MaxPool2D:
			net.ops = append(net.ops, &pool32{k: l.K, stride: l.Stride})
		case *Flatten:
			net.ops = append(net.ops, flatten32{})
		case *Dropout:
			// Eval-mode identity: drop from the pipeline entirely.
		case *BatchNorm2D:
			net.ops = append(net.ops, newBN32(l))
		case *ReLU:
			net.ops = append(net.ops, elt32{kind: eltReLU})
		case *LeakyReLU:
			net.ops = append(net.ops, elt32{kind: eltLeaky, alpha: float32(l.Alpha)})
		case *Tanh:
			net.ops = append(net.ops, elt32{kind: eltTanh})
		case *Sigmoid:
			net.ops = append(net.ops, elt32{kind: eltSigmoid})
		default:
			return nil, fmt.Errorf("nn: ToFloat32: layer %q (%T) has no float32 lowering", l.Name(), l)
		}
	}
	return net, nil
}

// Name returns the source network's name.
func (n *Net32) Name() string { return n.name }

// InputShape returns the per-sample input shape.
func (n *Net32) InputShape() []int { return append([]int(nil), n.inShape...) }

// OutputClasses returns the classifier width.
func (n *Net32) OutputClasses() int { return n.classes }

// Clone returns a snapshot sharing the (immutable) float32 weights but
// owning all scratch, so original and clones may serve concurrently —
// the same contract as Network.Clone, minus gradient state.
func (n *Net32) Clone() *Net32 {
	ops := make([]op32, len(n.ops))
	for i, o := range n.ops {
		ops[i] = o.clone()
	}
	return &Net32{
		name:    n.name,
		inShape: append([]int(nil), n.inShape...),
		classes: n.classes,
		ops:     ops,
	}
}

// stack32 rounds a slice of float64 CHW images into one float32
// [N, C, H, W] batch backed by the snapshot's input buffer, validating
// every image's shape.
func (n *Net32) stack32(imgs []*tensor.Tensor) *tensor.Tensor32 {
	per := 1
	for _, d := range n.inShape {
		per *= d
	}
	batch := scratch32(&n.inBuf, append([]int{len(imgs)}, n.inShape...)...)
	bd := batch.Data()
	for s, img := range imgs {
		got := img.Shape()
		ok := len(got) == len(n.inShape)
		for i := 0; ok && i < len(got); i++ {
			ok = got[i] == n.inShape[i]
		}
		if !ok {
			panic(fmt.Sprintf("nn: net32 %q expects input shape %v, got %v (batch slot %d)", n.name, n.inShape, got, s))
		}
		id := img.Data()
		dst := bd[s*per : (s+1)*per]
		for i, v := range id {
			dst[i] = float32(v)
		}
	}
	return batch
}

func (n *Net32) forward(x *tensor.Tensor32) *tensor.Tensor32 {
	for _, o := range n.ops {
		x = o.forward(x)
	}
	return x
}

// Logits runs float32 inference for a single float64 CHW image and
// returns the class scores widened (exactly) to float64.
func (n *Net32) Logits(img *tensor.Tensor) []float64 {
	out := n.forward(n.stack32([]*tensor.Tensor{img}))
	row := out.Data()[:n.classes]
	logits := make([]float64, len(row))
	for i, v := range row {
		logits[i] = float64(v)
	}
	return logits
}

// Probs runs float32 inference for a single image and returns float64
// softmax probabilities. The softmax runs in float64 over exactly-widened
// logits, so the only float32 effect is forward-pass drift.
func (n *Net32) Probs(img *tensor.Tensor) []float64 {
	logits := n.Logits(img)
	return SoftmaxInto(make([]float64, len(logits)), logits)
}

// ProbsBatch runs one batched float32 forward pass and returns per-image
// float64 probability rows (full slice expressions: rows go to
// independent owners, same contract as Network.ProbsBatch).
func (n *Net32) ProbsBatch(imgs []*tensor.Tensor) [][]float64 {
	if len(imgs) == 0 {
		return nil
	}
	out := n.forward(n.stack32(imgs))
	c := out.Dim(1)
	od := out.Data()
	flat := make([]float64, len(imgs)*c)
	rows := make([][]float64, len(imgs))
	lrow := make([]float64, c)
	for i := range rows {
		for j, v := range od[i*c : (i+1)*c] {
			lrow[j] = float64(v)
		}
		rows[i] = SoftmaxInto(flat[i*c:(i+1)*c:(i+1)*c], lrow)
	}
	return rows
}

// Predict returns the argmax class and its probability for a single image.
func (n *Net32) Predict(img *tensor.Tensor) (class int, prob float64) {
	probs := n.Probs(img)
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	return best, probs[best]
}

// conv32 is a fused Conv2D(+ReLU) in float32: im2col lowering, one
// MatMul32Into per sample, and a bias(+clamp) epilogue that writes the
// output tensor in the same pass.
type conv32 struct {
	inC, outC, k, stride, pad int
	w                         *tensor.Tensor32 // [OutC, InC·K·K], shared across clones
	bias                      []float32        // shared across clones
	relu                      bool

	colsBuf, yBuf, outBuf []float32
}

func newConv32(c *Conv2D, relu bool) *conv32 {
	return &conv32{
		inC: c.InC, outC: c.OutC, k: c.K, stride: c.Stride, pad: c.Pad,
		w:    c.W.Value.Float32(),
		bias: float32Slice(c.B.Value.Data()),
		relu: relu,
	}
}

func (c *conv32) clone() op32 {
	return &conv32{
		inC: c.inC, outC: c.outC, k: c.k, stride: c.stride, pad: c.pad,
		w: c.w, bias: c.bias, relu: c.relu,
	}
}

func (c *conv32) forward(x *tensor.Tensor32) *tensor.Tensor32 {
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH := (h+2*c.pad-c.k)/c.stride + 1
	outW := (w+2*c.pad-c.k)/c.stride + 1
	patch := c.inC * c.k * c.k
	spatial := outH * outW
	chw := c.inC * h * w

	cols := scratch32(&c.colsBuf, patch, spatial)
	y := scratch32(&c.yBuf, c.outC, spatial)
	out := scratch32(&c.outBuf, n, c.outC, outH, outW)
	xd, od, yd := x.Data(), out.Data(), y.Data()
	for s := 0; s < n; s++ {
		im2col32(xd[s*chw:(s+1)*chw], c.inC, h, w, cols.Data(), c.k, c.stride, c.pad)
		tensor.MatMul32Into(y, c.w, cols) // [OutC, spatial]
		dst := od[s*c.outC*spatial : (s+1)*c.outC*spatial]
		for f := 0; f < c.outC; f++ {
			b := c.bias[f]
			row := yd[f*spatial : (f+1)*spatial]
			drow := dst[f*spatial : (f+1)*spatial]
			if c.relu {
				for i, v := range row {
					if v = v + b; v > 0 {
						drow[i] = v
					} else {
						drow[i] = 0
					}
				}
			} else {
				for i, v := range row {
					drow[i] = v + b
				}
			}
		}
	}
	return out
}

// dense32 is a fused Dense(+ReLU). The weight matrix is pre-transposed to
// [In, Out] at conversion time so the forward pass is a plain row-major
// GEMM with unit-stride B panels, followed by an in-place bias(+clamp)
// epilogue.
type dense32 struct {
	in, out int
	wt      *tensor.Tensor32 // [In, Out], shared across clones
	bias    []float32
	relu    bool

	outBuf []float32
}

func newDense32(d *Dense, relu bool) *dense32 {
	wt := tensor.New32(d.In, d.Out)
	wd, td := d.W.Value.Data(), wt.Data()
	for o := 0; o < d.Out; o++ {
		for i := 0; i < d.In; i++ {
			td[i*d.Out+o] = float32(wd[o*d.In+i])
		}
	}
	return &dense32{in: d.In, out: d.Out, wt: wt, bias: float32Slice(d.B.Value.Data()), relu: relu}
}

func (d *dense32) clone() op32 {
	return &dense32{in: d.in, out: d.out, wt: d.wt, bias: d.bias, relu: d.relu}
}

func (d *dense32) forward(x *tensor.Tensor32) *tensor.Tensor32 {
	n := x.Dim(0)
	y := scratch32(&d.outBuf, n, d.out)
	tensor.MatMul32Into(y, x, d.wt)
	yd := y.Data()
	for r := 0; r < n; r++ {
		row := yd[r*d.out : (r+1)*d.out]
		if d.relu {
			for o := range row {
				if v := row[o] + d.bias[o]; v > 0 {
					row[o] = v
				} else {
					row[o] = 0
				}
			}
		} else {
			for o := range row {
				row[o] += d.bias[o]
			}
		}
	}
	return y
}

// pool32 is MaxPool2D without the argmax table (no backward pass).
type pool32 struct {
	k, stride int
	outBuf    []float32
}

func (p *pool32) clone() op32 { return &pool32{k: p.k, stride: p.stride} }

func (p *pool32) forward(x *tensor.Tensor32) *tensor.Tensor32 {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-p.k)/p.stride + 1
	ow := (w-p.k)/p.stride + 1
	out := scratch32(&p.outBuf, n, c, oh, ow)
	xd, od := x.Data(), out.Data()
	neg := float32(math.Inf(-1))
	oi := 0
	for s := 0; s < n; s++ {
		for cc := 0; cc < c; cc++ {
			base := (s*c + cc) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := neg
					for ky := 0; ky < p.k; ky++ {
						rowBase := base + (oy*p.stride+ky)*w + ox*p.stride
						for kx := 0; kx < p.k; kx++ {
							if v := xd[rowBase+kx]; v > best {
								best = v
							}
						}
					}
					od[oi] = best
					oi++
				}
			}
		}
	}
	return out
}

// flatten32 reshapes [N, ...] to [N, rest] as a view.
type flatten32 struct{}

func (flatten32) clone() op32 { return flatten32{} }

func (flatten32) forward(x *tensor.Tensor32) *tensor.Tensor32 {
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// bn32 is inference-mode BatchNorm2D folded to one per-channel affine:
// scale = gamma/√(var+ε), shift = beta − mean·scale, both computed in
// float64 and rounded once.
type bn32 struct {
	c            int
	scale, shift []float32
	outBuf       []float32
}

func newBN32(b *BatchNorm2D) *bn32 {
	scale := make([]float32, b.C)
	shift := make([]float32, b.C)
	gd, bd := b.Gamma.Value.Data(), b.Beta.Value.Data()
	rm, rv := b.RunMean.Data(), b.RunVar.Data()
	for c := 0; c < b.C; c++ {
		s := gd[c] / math.Sqrt(rv[c]+b.Eps)
		scale[c] = float32(s)
		shift[c] = float32(bd[c] - rm[c]*s)
	}
	return &bn32{c: b.C, scale: scale, shift: shift}
}

func (b *bn32) clone() op32 { return &bn32{c: b.c, scale: b.scale, shift: b.shift} }

func (b *bn32) forward(x *tensor.Tensor32) *tensor.Tensor32 {
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	plane := h * w
	out := scratch32(&b.outBuf, x.Shape()...)
	xd, od := x.Data(), out.Data()
	for s := 0; s < n; s++ {
		for c := 0; c < b.c; c++ {
			base := (s*b.c + c) * plane
			sc, sh := b.scale[c], b.shift[c]
			for i := 0; i < plane; i++ {
				od[base+i] = sc*xd[base+i] + sh
			}
		}
	}
	return out
}

// elt32 covers the stand-alone elementwise activations (a ReLU not
// adjacent to a conv/dense stays unfused). It writes in place: the input
// is always the previous op's scratch, which the pipeline never re-reads.
type elt32 struct {
	kind  int
	alpha float32
}

const (
	eltReLU = iota
	eltLeaky
	eltTanh
	eltSigmoid
)

func (e elt32) clone() op32 { return e }

func (e elt32) forward(x *tensor.Tensor32) *tensor.Tensor32 {
	d := x.Data()
	switch e.kind {
	case eltReLU:
		for i, v := range d {
			if v < 0 {
				d[i] = 0
			}
		}
	case eltLeaky:
		for i, v := range d {
			if v < 0 {
				d[i] = e.alpha * v
			}
		}
	case eltTanh:
		for i, v := range d {
			d[i] = float32(math.Tanh(float64(v)))
		}
	case eltSigmoid:
		for i, v := range d {
			d[i] = float32(1 / (1 + math.Exp(-float64(v))))
		}
	}
	return x
}

// im2col32 is im2col over raw float32 storage: lowers a CHW image into a
// [C·K·K, outH·outW] matrix, zero-filling padding positions.
func im2col32(id []float32, ch, h, w int, cd []float32, k, stride, pad int) {
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	spatial := outH * outW
	row := 0
	for cc := 0; cc < ch; cc++ {
		base := cc * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				dst := cd[row*spatial : (row+1)*spatial]
				row++
				i := 0
				for oy := 0; oy < outH; oy++ {
					sy := oy*stride + ky - pad
					if sy < 0 || sy >= h {
						for ox := 0; ox < outW; ox++ {
							dst[i] = 0
							i++
						}
						continue
					}
					rowBase := base + sy*w
					for ox := 0; ox < outW; ox++ {
						sx := ox*stride + kx - pad
						if sx < 0 || sx >= w {
							dst[i] = 0
						} else {
							dst[i] = id[rowBase+sx]
						}
						i++
					}
				}
			}
		}
	}
}

func float32Slice(src []float64) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}
