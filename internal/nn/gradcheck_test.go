package nn

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// scalarOf reduces a tensor to a scalar with fixed random weights so that
// gradient checks exercise every output element with distinct sensitivities.
type scalarOf struct {
	weights *tensor.Tensor
}

func newScalarOf(rng *mathx.RNG, shape []int) *scalarOf {
	return &scalarOf{weights: tensor.RandN(rng, shape...)}
}

func (s *scalarOf) value(y *tensor.Tensor) float64 { return tensor.Dot(y, s.weights) }

func (s *scalarOf) grad() *tensor.Tensor { return s.weights.Clone() }

// checkLayerInputGrad verifies Backward's input gradient against central
// finite differences of the scalarized Forward output.
func checkLayerInputGrad(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := mathx.NewRNG(12345)
	y := layer.Forward(x, true)
	s := newScalarOf(rng, y.Shape())
	analytic := layer.Backward(s.grad())

	const h = 1e-5
	xd := x.Data()
	maxRel := 0.0
	for i := range xd {
		orig := xd[i]
		xd[i] = orig + h
		yp := s.value(layer.Forward(x, true))
		xd[i] = orig - h
		ym := s.value(layer.Forward(x, true))
		xd[i] = orig
		numeric := (yp - ym) / (2 * h)
		a := analytic.Data()[i]
		denom := math.Max(1, math.Max(math.Abs(a), math.Abs(numeric)))
		rel := math.Abs(a-numeric) / denom
		if rel > maxRel {
			maxRel = rel
		}
		if rel > tol {
			t.Fatalf("%s: input grad[%d] analytic=%g numeric=%g rel=%g", layer.Name(), i, a, numeric, rel)
		}
	}
	t.Logf("%s: max input-grad rel err %.2e", layer.Name(), maxRel)
}

// checkLayerParamGrads verifies accumulated parameter gradients against
// central finite differences.
func checkLayerParamGrads(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := mathx.NewRNG(54321)
	y := layer.Forward(x, true)
	s := newScalarOf(rng, y.Shape())
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	layer.Backward(s.grad())

	const h = 1e-5
	for _, p := range layer.Params() {
		vd := p.Value.Data()
		gd := p.Grad.Data()
		for i := range vd {
			orig := vd[i]
			vd[i] = orig + h
			yp := s.value(layer.Forward(x, true))
			vd[i] = orig - h
			ym := s.value(layer.Forward(x, true))
			vd[i] = orig
			numeric := (yp - ym) / (2 * h)
			a := gd[i]
			denom := math.Max(1, math.Max(math.Abs(a), math.Abs(numeric)))
			if rel := math.Abs(a-numeric) / denom; rel > tol {
				t.Fatalf("%s: param %s grad[%d] analytic=%g numeric=%g rel=%g",
					layer.Name(), p.Name, i, a, numeric, rel)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := mathx.NewRNG(1)
	d := NewDense("fc", 7, 5, rng)
	x := tensor.RandN(rng, 3, 7)
	checkLayerInputGrad(t, d, x, 1e-6)
	checkLayerParamGrads(t, d, x, 1e-6)
}

func TestConv2DGradients(t *testing.T) {
	rng := mathx.NewRNG(2)
	c := NewConv2D("conv", 2, 3, 3, 1, 1, rng)
	x := tensor.RandN(rng, 2, 2, 5, 5)
	checkLayerInputGrad(t, c, x, 1e-6)
	checkLayerParamGrads(t, c, x, 1e-6)
}

func TestConv2DGradientsStride2NoPad(t *testing.T) {
	rng := mathx.NewRNG(3)
	c := NewConv2D("conv_s2", 1, 2, 3, 2, 0, rng)
	x := tensor.RandN(rng, 1, 1, 7, 7)
	checkLayerInputGrad(t, c, x, 1e-6)
	checkLayerParamGrads(t, c, x, 1e-6)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := mathx.NewRNG(4)
	p := NewMaxPool2D("pool", 2, 2)
	// Use well-separated values so finite differences never flip the argmax.
	x := tensor.RandN(rng, 2, 2, 4, 4)
	x.ScaleInPlace(10)
	checkLayerInputGrad(t, p, x, 1e-6)
}

func TestReLUGradients(t *testing.T) {
	rng := mathx.NewRNG(5)
	r := NewReLU("relu")
	x := tensor.RandN(rng, 4, 6)
	// Keep values away from the kink at zero.
	x.ApplyInPlace(func(v float64) float64 {
		if math.Abs(v) < 0.05 {
			return v + 0.2
		}
		return v
	})
	checkLayerInputGrad(t, r, x, 1e-6)
}

func TestLeakyReLUGradients(t *testing.T) {
	rng := mathx.NewRNG(6)
	l := NewLeakyReLU("lrelu", 0.1)
	x := tensor.RandN(rng, 4, 6)
	x.ApplyInPlace(func(v float64) float64 {
		if math.Abs(v) < 0.05 {
			return v + 0.2
		}
		return v
	})
	checkLayerInputGrad(t, l, x, 1e-6)
}

func TestTanhGradients(t *testing.T) {
	rng := mathx.NewRNG(7)
	x := tensor.RandN(rng, 3, 5)
	checkLayerInputGrad(t, NewTanh("tanh"), x, 1e-6)
}

func TestSigmoidGradients(t *testing.T) {
	rng := mathx.NewRNG(8)
	x := tensor.RandN(rng, 3, 5)
	checkLayerInputGrad(t, NewSigmoid("sigmoid"), x, 1e-6)
}

func TestBatchNormGradients(t *testing.T) {
	rng := mathx.NewRNG(9)
	bn := NewBatchNorm2D("bn", 3)
	x := tensor.RandN(rng, 4, 3, 3, 3)
	checkLayerInputGrad(t, bn, x, 1e-5)
	checkLayerParamGrads(t, bn, x, 1e-5)
}

func TestFlattenGradients(t *testing.T) {
	rng := mathx.NewRNG(10)
	x := tensor.RandN(rng, 2, 3, 4, 4)
	checkLayerInputGrad(t, NewFlatten("flat"), x, 1e-7)
}

// Full-network input gradient check: the exact primitive the adversarial
// attacks rely on.
func TestNetworkLossAndInputGradMatchesFiniteDifference(t *testing.T) {
	rng := mathx.NewRNG(11)
	net, err := TinyCNN(1, 8, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.RandU(rng, 0, 1, 1, 8, 8)
	loss := CrossEntropy{}
	_, grad := net.LossAndInputGrad(img, 2, loss)

	const h = 1e-5
	d := img.Data()
	for _, i := range []int{0, 7, 31, 63} {
		orig := d[i]
		d[i] = orig + h
		lp, _ := net.LossAndInputGrad(img, 2, loss)
		d[i] = orig - h
		lm, _ := net.LossAndInputGrad(img, 2, loss)
		d[i] = orig
		numeric := (lp - lm) / (2 * h)
		a := grad.Data()[i]
		denom := math.Max(1e-8, math.Max(math.Abs(a), math.Abs(numeric)))
		if rel := math.Abs(a-numeric) / denom; rel > 1e-4 {
			t.Fatalf("network input grad[%d]: analytic=%g numeric=%g rel=%g", i, a, numeric, rel)
		}
	}
}
