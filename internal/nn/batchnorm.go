package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW batch to zero mean and
// unit variance using batch statistics during training and exponential
// running statistics during inference, followed by a learned affine
// transform (gamma, beta).
type BatchNorm2D struct {
	name     string
	C        int
	Eps      float64
	Momentum float64

	Gamma, Beta *Param
	// Running statistics are state, not trainable parameters; they are
	// serialized alongside weights through StateTensors.
	RunMean, RunVar *tensor.Tensor

	// caches for backward
	xHat    *tensor.Tensor
	invStd  []float64
	n, h, w int
}

// NewBatchNorm2D constructs a batch-normalization layer over c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	if c <= 0 {
		panic(fmt.Sprintf("nn: NewBatchNorm2D(%s) channels %d", name, c))
	}
	runVar := tensor.New(c)
	runVar.Fill(1)
	return &BatchNorm2D{
		name:     name,
		C:        c,
		Eps:      1e-5,
		Momentum: 0.9,
		Gamma:    newParam(name+"/gamma", tensor.Full(1, c)),
		Beta:     newParam(name+"/beta", tensor.New(c)),
		RunMean:  tensor.New(c),
		RunVar:   runVar,
	}
}

// Name implements Layer.
func (b *BatchNorm2D) Name() string { return b.name }

// CloneLayer implements Cloner. The clone shares gamma/beta values and the
// running-statistics tensors (inference only reads them); concurrent
// *training* of original and clone is not supported — training-mode
// Forward writes the shared running statistics.
func (b *BatchNorm2D) CloneLayer() Layer {
	return &BatchNorm2D{
		name:     b.name,
		C:        b.C,
		Eps:      b.Eps,
		Momentum: b.Momentum,
		Gamma:    b.Gamma.ShareValue(),
		Beta:     b.Beta.ShareValue(),
		RunMean:  b.RunMean,
		RunVar:   b.RunVar,
	}
}

// Params implements Layer.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// StateTensors returns the non-trainable running statistics for
// serialization: names paired with tensors.
func (b *BatchNorm2D) StateTensors() map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{
		b.name + "/run_mean": b.RunMean,
		b.name + "/run_var":  b.RunVar,
	}
}

// OutShape implements OutputShaper.
func (b *BatchNorm2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != b.C {
		return nil, shapeErr(b.name, in, fmt.Sprintf("want [%d H W]", b.C))
	}
	return in, nil
}

// Forward implements Layer.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != b.C {
		panic(fmt.Sprintf("nn: %s: Forward input shape %v, want [N %d H W]", b.name, x.Shape(), b.C))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	b.n, b.h, b.w = n, h, w
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	gd, bd := b.Gamma.Value.Data(), b.Beta.Value.Data()
	plane := h * w
	count := float64(n * plane)

	if cap(b.invStd) < b.C {
		b.invStd = make([]float64, b.C)
	}
	b.invStd = b.invStd[:b.C]
	b.xHat = tensor.New(x.Shape()...)
	xh := b.xHat.Data()

	for c := 0; c < b.C; c++ {
		var mean, varv float64
		if train {
			sum := 0.0
			for s := 0; s < n; s++ {
				base := (s*b.C + c) * plane
				for i := 0; i < plane; i++ {
					sum += xd[base+i]
				}
			}
			mean = sum / count
			sq := 0.0
			for s := 0; s < n; s++ {
				base := (s*b.C + c) * plane
				for i := 0; i < plane; i++ {
					d := xd[base+i] - mean
					sq += d * d
				}
			}
			varv = sq / count
			rm, rv := b.RunMean.Data(), b.RunVar.Data()
			rm[c] = b.Momentum*rm[c] + (1-b.Momentum)*mean
			rv[c] = b.Momentum*rv[c] + (1-b.Momentum)*varv
		} else {
			mean = b.RunMean.Data()[c]
			varv = b.RunVar.Data()[c]
		}
		inv := 1 / math.Sqrt(varv+b.Eps)
		b.invStd[c] = inv
		g, be := gd[c], bd[c]
		for s := 0; s < n; s++ {
			base := (s*b.C + c) * plane
			for i := 0; i < plane; i++ {
				xn := (xd[base+i] - mean) * inv
				xh[base+i] = xn
				od[base+i] = g*xn + be
			}
		}
	}
	return out
}

// Backward implements Layer. It uses the standard batch-norm gradient with
// batch statistics (training-mode backward; inference mode is affine so its
// gradient is a simple scale).
func (b *BatchNorm2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if b.xHat == nil {
		panic("nn: BatchNorm2D.Backward before Forward")
	}
	n, h, w := b.n, b.h, b.w
	plane := h * w
	count := float64(n * plane)
	dx := tensor.New(dout.Shape()...)
	dd, dxd, xh := dout.Data(), dx.Data(), b.xHat.Data()
	gd := b.Gamma.Value.Data()
	dgd, dbd := b.Gamma.Grad.Data(), b.Beta.Grad.Data()

	for c := 0; c < b.C; c++ {
		var sumDy, sumDyXh float64
		for s := 0; s < n; s++ {
			base := (s*b.C + c) * plane
			for i := 0; i < plane; i++ {
				dy := dd[base+i]
				sumDy += dy
				sumDyXh += dy * xh[base+i]
			}
		}
		dgd[c] += sumDyXh
		dbd[c] += sumDy
		g := gd[c]
		inv := b.invStd[c]
		for s := 0; s < n; s++ {
			base := (s*b.C + c) * plane
			for i := 0; i < plane; i++ {
				dy := dd[base+i]
				dxd[base+i] = g * inv * (dy - sumDy/count - xh[base+i]*sumDyXh/count)
			}
		}
	}
	return dx
}
