package nn

import (
	"math"

	"repro/internal/tensor"
)

// ReLU is the rectified linear activation max(0, x).
type ReLU struct {
	name string
	mask []bool // true where input > 0 for the latest Forward
}

// NewReLU constructs a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// CloneLayer implements Cloner: the clone owns its own activation mask.
func (r *ReLU) CloneLayer() Layer { return &ReLU{name: r.name} }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements OutputShaper.
func (r *ReLU) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	if cap(r.mask) < x.Len() {
		r.mask = make([]bool, x.Len())
	}
	r.mask = r.mask[:x.Len()]
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		if v > 0 {
			od[i] = v
			r.mask[i] = true
		} else {
			od[i] = 0
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dout.Shape()...)
	dd, dxd := dout.Data(), dx.Data()
	for i := range dd {
		if r.mask[i] {
			dxd[i] = dd[i]
		}
	}
	return dx
}

// LeakyReLU is max(x, alpha·x) for a small positive alpha; it keeps a
// nonzero gradient on the negative side, which stabilizes attacks that need
// gradient signal through saturated units.
type LeakyReLU struct {
	name  string
	Alpha float64
	x     *tensor.Tensor
}

// NewLeakyReLU constructs a LeakyReLU layer with the given negative slope.
func NewLeakyReLU(name string, alpha float64) *LeakyReLU {
	return &LeakyReLU{name: name, Alpha: alpha}
}

// Name implements Layer.
func (l *LeakyReLU) Name() string { return l.name }

// CloneLayer implements Cloner.
func (l *LeakyReLU) CloneLayer() Layer { return &LeakyReLU{name: l.name, Alpha: l.Alpha} }

// Params implements Layer.
func (l *LeakyReLU) Params() []*Param { return nil }

// OutShape implements OutputShaper.
func (l *LeakyReLU) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
func (l *LeakyReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.x = x
	return tensor.Apply(x, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return l.Alpha * v
	})
}

// Backward implements Layer.
func (l *LeakyReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dout.Shape()...)
	xd, dd, dxd := l.x.Data(), dout.Data(), dx.Data()
	for i := range dd {
		if xd[i] > 0 {
			dxd[i] = dd[i]
		} else {
			dxd[i] = l.Alpha * dd[i]
		}
	}
	return dx
}

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	name string
	y    *tensor.Tensor
}

// NewTanh constructs a Tanh layer.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Name implements Layer.
func (t *Tanh) Name() string { return t.name }

// CloneLayer implements Cloner.
func (t *Tanh) CloneLayer() Layer { return &Tanh{name: t.name} }

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// OutShape implements OutputShaper.
func (t *Tanh) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	t.y = tensor.Apply(x, math.Tanh)
	return t.y
}

// Backward implements Layer.
func (t *Tanh) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dout.Shape()...)
	yd, dd, dxd := t.y.Data(), dout.Data(), dx.Data()
	for i := range dd {
		dxd[i] = dd[i] * (1 - yd[i]*yd[i])
	}
	return dx
}

// Sigmoid is the logistic activation 1/(1+e^-x).
type Sigmoid struct {
	name string
	y    *tensor.Tensor
}

// NewSigmoid constructs a Sigmoid layer.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return s.name }

// CloneLayer implements Cloner.
func (s *Sigmoid) CloneLayer() Layer { return &Sigmoid{name: s.name} }

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// OutShape implements OutputShaper.
func (s *Sigmoid) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s.y = tensor.Apply(x, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	return s.y
}

// Backward implements Layer.
func (s *Sigmoid) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dout.Shape()...)
	yd, dd, dxd := s.y.Data(), dout.Data(), dx.Data()
	for i := range dd {
		dxd[i] = dd[i] * yd[i] * (1 - yd[i])
	}
	return dx
}
