package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Network is a sequential stack of layers with helpers for inference,
// training and — crucially for this repository — differentiating the loss
// with respect to the *input image*, which is what every gradient-based
// adversarial attack consumes.
type Network struct {
	name    string
	layers  []Layer
	inShape []int // expected input shape without the batch dimension

	// inBuf backs the stacked input batch of the *Batch inference surface.
	// Like the per-layer scratch buffers it is owned by this instance
	// (clones grow their own), which keeps batched inference on clones
	// safe for concurrent use.
	inBuf []float64
}

// NewNetwork builds a sequential network. inShape is the per-sample input
// shape (e.g. [3, 32, 32]); it is threaded through every layer that
// implements OutputShaper to validate the topology eagerly, so a malformed
// stack fails at construction rather than mid-training.
func NewNetwork(name string, inShape []int, layers ...Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("nn: network %q has no layers", name)
	}
	seen := make(map[string]bool)
	shape := append([]int(nil), inShape...)
	for _, l := range layers {
		if seen[l.Name()] {
			return nil, fmt.Errorf("nn: network %q has duplicate layer name %q", name, l.Name())
		}
		seen[l.Name()] = true
		if os, ok := l.(OutputShaper); ok {
			next, err := os.OutShape(shape)
			if err != nil {
				return nil, err
			}
			shape = next
		}
	}
	return &Network{name: name, layers: layers, inShape: append([]int(nil), inShape...)}, nil
}

// MustNetwork is NewNetwork that panics on error, for statically known
// topologies such as the built-in VGGNet constructors.
func MustNetwork(name string, inShape []int, layers ...Layer) *Network {
	n, err := NewNetwork(name, inShape, layers...)
	if err != nil {
		panic(err)
	}
	return n
}

// Name returns the network's name.
func (n *Network) Name() string { return n.name }

// Clone returns a copy of the network that shares trained weight values
// with the original but owns every piece of per-call state (layer scratch
// buffers, activation caches, gradient accumulators). Original and clones
// may run Forward, Backward, Probs and LossAndInputGrad concurrently —
// this is the primitive the parallel experiment engine builds worker
// pools from. Weight updates applied to the original (optimizer steps,
// LoadWeights) are visible to clones because the Param values alias the
// same storage; do not train concurrently with cloned inference.
//
// Clone panics if any layer does not implement Cloner (all built-in
// layers do). Clone never copies weights, but it does allocate a zeroed
// gradient accumulator per parameter (one full parameter-memory's worth),
// so reuse clones across evaluations (train.EvaluateOn, the experiment
// engine's worker-net cache) rather than cloning per call.
func (n *Network) Clone() *Network {
	layers := make([]Layer, len(n.layers))
	for i, l := range n.layers {
		c, ok := l.(Cloner)
		if !ok {
			panic(fmt.Sprintf("nn: network %q layer %q (%T) does not implement Cloner", n.name, l.Name(), l))
		}
		layers[i] = c.CloneLayer()
	}
	return &Network{name: n.name, layers: layers, inShape: append([]int(nil), n.inShape...)}
}

// InputShape returns the per-sample input shape the network was built for.
func (n *Network) InputShape() []int { return append([]int(nil), n.inShape...) }

// Layers returns the layer stack (callers must not mutate it).
func (n *Network) Layers() []Layer { return n.layers }

// OutputClasses returns the width of the final layer's output, i.e. the
// number of classes for a classifier topology.
func (n *Network) OutputClasses() int {
	shape := n.inShape
	for _, l := range n.layers {
		if os, ok := l.(OutputShaper); ok {
			next, err := os.OutShape(shape)
			if err != nil {
				panic(err)
			}
			shape = next
		}
	}
	if len(shape) != 1 {
		panic(fmt.Sprintf("nn: network %q output shape %v is not a class vector", n.name, shape))
	}
	return shape[0]
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears every parameter gradient.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of trainable scalars.
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Value.Len()
	}
	return total
}

// Forward runs the full stack on a batch. train selects training-time layer
// behaviour. The returned tensor is the logits batch [N, C].
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x
	for _, l := range n.layers {
		out = l.Forward(out, train)
	}
	return out
}

// Backward propagates dLoss/dLogits back through the stack, accumulating
// parameter gradients, and returns dLoss/dInput.
func (n *Network) Backward(dout *tensor.Tensor) *tensor.Tensor {
	g := dout
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].Backward(g)
	}
	return g
}

// Logits runs inference (eval mode) for a single CHW image and returns the
// class-score vector as a caller-owned slice.
func (n *Network) Logits(img *tensor.Tensor) []float64 {
	batch := n.asBatch(img)
	out := n.Forward(batch, false)
	return append([]float64(nil), out.Row(0).Data()...)
}

// Probs runs inference for a single CHW image and returns softmax
// probabilities. The softmax is computed straight from the forward
// output's row into one fresh slice — no intermediate logits copy.
func (n *Network) Probs(img *tensor.Tensor) []float64 {
	batch := n.asBatch(img)
	out := n.Forward(batch, false)
	row := out.Row(0).Data()
	return SoftmaxInto(make([]float64, len(row)), row)
}

// stackBatch copies a slice of CHW images into one [N, C, H, W] batch
// tensor backed by the network's reusable input buffer, validating every
// image's shape. The returned tensor is valid until the next *Batch call
// on this network.
func (n *Network) stackBatch(imgs []*tensor.Tensor) *tensor.Tensor {
	per := 1
	for _, d := range n.inShape {
		per *= d
	}
	batch := scratch(&n.inBuf, append([]int{len(imgs)}, n.inShape...)...)
	bd := batch.Data()
	for s, img := range imgs {
		got := img.Shape()
		ok := len(got) == len(n.inShape)
		for i := 0; ok && i < len(got); i++ {
			ok = got[i] == n.inShape[i]
		}
		if !ok {
			panic(fmt.Sprintf("nn: network %q expects input shape %v, got %v (batch slot %d)", n.name, n.inShape, got, s))
		}
		copy(bd[s*per:(s+1)*per], img.Data())
	}
	return batch
}

// LogitsBatch runs eval-mode inference for a slice of CHW images through
// one batched Forward pass and returns one caller-owned logits slice per
// image. Every layer processes batch rows independently in eval mode, so
// each returned row is bit-identical to a batch-of-1 Logits call — the
// batching only amortizes per-call dispatch and allocation overhead. This
// is the scoring primitive behind batched evaluation and the query-based
// (one-pixel DE) attack.
func (n *Network) LogitsBatch(imgs []*tensor.Tensor) [][]float64 {
	if len(imgs) == 0 {
		return nil
	}
	out := n.Forward(n.stackBatch(imgs), false)
	c := out.Dim(1)
	flat := make([]float64, len(imgs)*c)
	copy(flat, out.Data())
	rows := make([][]float64, len(imgs))
	for i := range rows {
		// Full slice expression: rows are handed to independent owners
		// (serving clients), so cap each one at its own region — an
		// append must reallocate, never bleed into the next row.
		rows[i] = flat[i*c : (i+1)*c : (i+1)*c]
	}
	return rows
}

// ProbsBatch is LogitsBatch followed by a per-row softmax, applied
// directly from the forward output into one flat result block (a single
// allocation for the whole batch's probabilities).
func (n *Network) ProbsBatch(imgs []*tensor.Tensor) [][]float64 {
	if len(imgs) == 0 {
		return nil
	}
	out := n.Forward(n.stackBatch(imgs), false)
	c := out.Dim(1)
	od := out.Data()
	flat := make([]float64, len(imgs)*c)
	rows := make([][]float64, len(imgs))
	for i := range rows {
		rows[i] = SoftmaxInto(flat[i*c:(i+1)*c:(i+1)*c], od[i*c:(i+1)*c])
	}
	return rows
}

// PredictBatch returns the argmax class and its probability for every
// image, evaluated through one batched forward pass.
func (n *Network) PredictBatch(imgs []*tensor.Tensor) (classes []int, probs []float64) {
	rows := n.ProbsBatch(imgs)
	classes = make([]int, len(rows))
	probs = make([]float64, len(rows))
	for i, p := range rows {
		best := 0
		for j, v := range p {
			if v > p[best] {
				best = j
			}
		}
		classes[i], probs[i] = best, p[best]
	}
	return classes, probs
}

// Predict returns the argmax class and its probability for a single image.
func (n *Network) Predict(img *tensor.Tensor) (class int, prob float64) {
	probs := n.Probs(img)
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	return best, probs[best]
}

// LossAndInputGrad computes loss(network(img), label) and its gradient with
// respect to the image, the primitive consumed by every gradient-based
// attack. The image is promoted to a batch of one; parameter gradients are
// accumulated as a side effect, so training code must call ZeroGrads before
// reusing them (attack code ignores them entirely).
func (n *Network) LossAndInputGrad(img *tensor.Tensor, label int, loss Loss) (float64, *tensor.Tensor) {
	batch := n.asBatch(img)
	logits := n.Forward(batch, false)
	lv, dlogits := loss.Eval(logits, []int{label})
	dx := n.Backward(dlogits)
	return lv, dx.Reshape(img.Shape()...)
}

// LogitsAndInputGradFrom runs a forward pass for a single image and then
// backpropagates an arbitrary dLoss/dLogits vector, returning the input
// gradient. Attacks with non-cross-entropy objectives (C&W margin loss,
// DeepFool linearization, the FAdeML Eq. 2 cost) use this primitive.
//
// dlogitsFn must treat its argument as read-only and return a distinct
// slice: the logits passed in (and returned to the caller) alias the live
// forward output, and the returned dLoss/dLogits feeds Backward without a
// defensive copy. Every in-repo objective allocates its gradient fresh.
func (n *Network) LogitsAndInputGradFrom(img *tensor.Tensor, dlogitsFn func(logits []float64) []float64) ([]float64, *tensor.Tensor) {
	batch := n.asBatch(img)
	out := n.Forward(batch, false)
	// The returned logits view aliases this pass's forward output, which
	// every layer allocates fresh, so it stays valid for the caller (until
	// garbage collected) without a defensive copy; likewise dl is consumed
	// by Backward before dlogitsFn's owner can observe it again.
	logits := out.Row(0).Data()
	dl := dlogitsFn(logits)
	if len(dl) != len(logits) {
		panic(fmt.Sprintf("nn: dlogits length %d, want %d", len(dl), len(logits)))
	}
	dout := tensor.FromSlice(dl, 1, len(dl))
	dx := n.Backward(dout)
	return logits, dx.Reshape(img.Shape()...)
}

// asBatch promotes a CHW image to a [1, C, H, W] batch, validating shape.
func (n *Network) asBatch(img *tensor.Tensor) *tensor.Tensor {
	want := n.inShape
	got := img.Shape()
	if len(got) != len(want) {
		panic(fmt.Sprintf("nn: network %q expects input shape %v, got %v", n.name, want, got))
	}
	for i := range want {
		if got[i] != want[i] {
			panic(fmt.Sprintf("nn: network %q expects input shape %v, got %v", n.name, want, got))
		}
	}
	return img.Reshape(append([]int{1}, got...)...)
}
