// Package nn is a from-scratch neural-network substrate: convolution,
// pooling, dense, activation, normalization and dropout layers with full
// backpropagation, loss functions, a sequential network container, weight
// serialization, and the VGGNet topology used by the FAdeML paper (five
// convolutional blocks followed by one fully connected classifier).
//
// Everything operates on batched NCHW tensors ([N, C, H, W] for images,
// [N, D] for features) in float64. Layers follow a strict Forward/Backward
// contract: Backward consumes the gradient of the loss with respect to the
// layer's most recent Forward output and returns the gradient with respect
// to that Forward's input. The input gradient is always propagated — even
// past the first layer — because the adversarial attacks in this repository
// differentiate the loss with respect to the image itself.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is a trainable tensor together with its gradient accumulator.
type Param struct {
	// Name identifies the parameter for serialization, e.g. "conv1/W".
	Name string
	// Value holds the current weights.
	Value *tensor.Tensor
	// Grad accumulates dLoss/dValue between optimizer steps.
	Grad *tensor.Tensor
}

// newParam allocates a parameter and a zeroed gradient of the same shape.
func newParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// ShareValue returns a Param that aliases the same weight tensor but owns
// a private, zeroed gradient accumulator. Network.Clone uses it so a
// clone sees every weight update made to the original (the Value storage
// is shared) while concurrent Backward passes never race on Grad.
func (p *Param) ShareValue() *Param {
	return &Param{Name: p.Name, Value: p.Value, Grad: tensor.New(p.Value.Shape()...)}
}

// Layer is one differentiable stage of a network.
type Layer interface {
	// Name returns the layer's unique name within its network.
	Name() string
	// Forward computes the layer output for a batch. train selects
	// training-time behaviour (dropout masks, batch statistics).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dLoss/dOutput for the most recent Forward call and
	// returns dLoss/dInput, accumulating parameter gradients on the way.
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable parameters, or nil for stateless layers.
	Params() []*Param
}

// Cloner is implemented by layers that can produce a weight-sharing copy
// of themselves. The clone aliases the original's parameter values (so it
// tracks optimizer updates for free) but owns every piece of per-call
// state — im2col buffers, activation masks, argmax tables, gradient
// accumulators — so the original and any number of clones can run
// Forward/Backward concurrently. All built-in layers implement Cloner.
type Cloner interface {
	CloneLayer() Layer
}

// scratch returns a tensor of the given shape backed by *buf, growing the
// buffer only when capacity is insufficient. It is the allocation-reuse
// primitive behind the per-layer scratch state: each layer instance owns
// its buffers, so reuse is safe as long as a single instance is not used
// from two goroutines (which is what Network.Clone exists for).
func scratch(buf *[]float64, shape ...int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return tensor.FromSlice(*buf, shape...)
}

// OutputShaper is implemented by layers that can statically report their
// output shape for a given input shape (both without the batch dimension).
// The network uses it to validate topologies at construction time.
type OutputShaper interface {
	OutShape(in []int) ([]int, error)
}

func shapeErr(layer string, in []int, msg string) error {
	return fmt.Errorf("nn: %s with input shape %v: %s", layer, in, msg)
}
