package nn

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(61)
	net, _ := TinyCNN(1, 8, 4, rng)
	img := tensor.RandU(rng, 0, 1, 1, 8, 8)
	before := net.Probs(img)

	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	// Load into a freshly initialized network with different weights.
	net2, _ := TinyCNN(1, 8, 4, mathx.NewRNG(999))
	different := false
	after0 := net2.Probs(img)
	for i := range before {
		if before[i] != after0[i] {
			different = true
		}
	}
	if !different {
		t.Fatal("fresh network coincidentally identical — test is vacuous")
	}
	if err := net2.LoadWeights(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	after := net2.Probs(img)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("probs differ after round trip: %v vs %v", before, after)
		}
	}
}

func TestSaveLoadFileRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(62)
	net, _ := TinyCNN(1, 8, 3, rng)
	path := filepath.Join(t.TempDir(), "weights.bin")
	if err := net.SaveWeightsFile(path); err != nil {
		t.Fatal(err)
	}
	net2, _ := TinyCNN(1, 8, 3, mathx.NewRNG(777))
	if err := net2.LoadWeightsFile(path); err != nil {
		t.Fatal(err)
	}
	img := tensor.RandU(rng, 0, 1, 1, 8, 8)
	a, b := net.Probs(img), net2.Probs(img)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("file round trip changed weights")
		}
	}
}

func TestLoadRejectsWrongTopology(t *testing.T) {
	rng := mathx.NewRNG(63)
	net, _ := TinyCNN(1, 8, 4, rng)
	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	other, _ := TinyCNN(1, 8, 7, mathx.NewRNG(1)) // different class count
	if err := other.LoadWeights(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("loading mismatched topology succeeded")
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	rng := mathx.NewRNG(64)
	net, _ := TinyCNN(1, 8, 4, rng)

	// Bad magic.
	if err := net.LoadWeights(bytes.NewReader([]byte("NOTAFILE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated file.
	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if err := net.LoadWeights(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated file accepted")
	}
	// Empty file.
	if err := net.LoadWeights(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty file accepted")
	}
}

func TestSaveWeightsFileAtomic(t *testing.T) {
	rng := mathx.NewRNG(65)
	net, _ := TinyCNN(1, 8, 4, rng)
	dir := t.TempDir()
	path := filepath.Join(dir, "w.bin")
	if err := net.SaveWeightsFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp file left behind: %v", entries)
	}
}

func TestBatchNormStateSerialized(t *testing.T) {
	rng := mathx.NewRNG(66)
	net := MustNetwork("bnnet", []int{2, 4, 4},
		NewBatchNorm2D("bn", 2),
		NewFlatten("flat"),
		NewDenseXavier("fc", 32, 3, rng),
	)
	// Drive running stats away from defaults.
	x := tensor.RandN(rng, 8, 2, 4, 4)
	x.AddScalar(4)
	for i := 0; i < 20; i++ {
		net.Forward(x, true)
	}
	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	net2 := MustNetwork("bnnet", []int{2, 4, 4},
		NewBatchNorm2D("bn", 2),
		NewFlatten("flat"),
		NewDenseXavier("fc", 32, 3, mathx.NewRNG(5)),
	)
	if err := net2.LoadWeights(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	img := tensor.RandN(mathx.NewRNG(6), 2, 4, 4)
	img.AddScalar(4)
	a, b := net.Probs(img), net2.Probs(img)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("BN running stats not preserved through serialization")
		}
	}
}
