package nn

import (
	"repro/internal/tensor"
)

// Flatten reshapes an [N, ...] batch into [N, D], the bridge between the
// convolutional stack and the dense classifier head.
type Flatten struct {
	name    string
	inShape []int
}

// NewFlatten constructs a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// CloneLayer implements Cloner.
func (f *Flatten) CloneLayer() Layer { return &Flatten{name: f.name} }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements OutputShaper.
func (f *Flatten) OutShape(in []int) ([]int, error) {
	d := 1
	for _, v := range in {
		d *= v
	}
	return []int{d}, nil
}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = x.Shape()
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic("nn: Flatten.Backward before Forward")
	}
	return dout.Reshape(f.inShape...)
}
