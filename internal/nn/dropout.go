package nn

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Dropout implements inverted dropout: during training each element is
// zeroed with probability Rate and survivors are scaled by 1/(1-Rate), so
// inference needs no rescaling. In evaluation mode it is the identity.
type Dropout struct {
	name string
	Rate float64
	rng  *mathx.RNG
	mask []float64
}

// NewDropout constructs a dropout layer with drop probability rate in
// [0, 1). The layer owns a private RNG stream split from rng.
func NewDropout(name string, rate float64, rng *mathx.RNG) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: NewDropout(%s) rate %v outside [0,1)", name, rate))
	}
	return &Dropout{name: name, Rate: rate, rng: rng.Split()}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// CloneLayer implements Cloner. The clone gets an independent RNG stream
// seeded by parallel.TaskSeed over a process-wide clone counter, so
// cloning never advances the original's stream: clones are meant for
// concurrent inference, where dropout is the identity; a clone used for
// training samples masks that are deterministic in clone-creation order
// but uncorrelated with the original's.
func (d *Dropout) CloneLayer() Layer {
	seed := parallel.TaskSeed(0xd809, int(cloneSeq.Add(1)))
	return &Dropout{name: d.name, Rate: d.Rate, rng: mathx.NewRNG(seed)}
}

// cloneSeq derives distinct seeds for cloned dropout layers.
var cloneSeq atomic.Uint64

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutShape implements OutputShaper.
func (d *Dropout) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.Rate == 0 {
		d.mask = nil
		return x
	}
	if cap(d.mask) < x.Len() {
		d.mask = make([]float64, x.Len())
	}
	d.mask = d.mask[:x.Len()]
	keep := 1 - d.Rate
	scale := 1 / keep
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	for i := range xd {
		if d.rng.Bool(keep) {
			d.mask[i] = scale
			od[i] = xd[i] * scale
		} else {
			d.mask[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		// Eval-mode forward was an identity.
		return dout
	}
	dx := tensor.New(dout.Shape()...)
	dd, dxd := dout.Data(), dx.Data()
	for i := range dd {
		dxd[i] = dd[i] * d.mask[i]
	}
	return dx
}
