package nn

import (
	"math"
	"sync"
	"testing"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

func testNets32(t *testing.T) (*Network, *Net32) {
	t.Helper()
	rng := mathx.NewRNG(42)
	net, err := TinyCNN(3, 16, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	n32, err := net.ToFloat32()
	if err != nil {
		t.Fatal(err)
	}
	return net, n32
}

// TestNet32AgreesWithFloat64 checks that the fused float32 snapshot tracks
// the float64 network closely on random inputs: identical top-1 on
// non-marginal cases and small probability drift everywhere.
func TestNet32AgreesWithFloat64(t *testing.T) {
	net, n32 := testNets32(t)
	rng := mathx.NewRNG(7)
	agree, total := 0, 0
	for trial := 0; trial < 20; trial++ {
		img := tensor.RandN(rng, 3, 16, 16)
		p64 := net.Probs(img)
		p32 := n32.Probs(img)
		if len(p64) != len(p32) {
			t.Fatalf("class count mismatch %d vs %d", len(p64), len(p32))
		}
		maxD := 0.0
		for i := range p64 {
			if d := math.Abs(p64[i] - p32[i]); d > maxD {
				maxD = d
			}
		}
		if maxD > 1e-3 {
			t.Fatalf("trial %d: max |Δprob| = %g", trial, maxD)
		}
		c64, _ := net.Predict(img)
		c32, _ := n32.Predict(img)
		total++
		if c64 == c32 {
			agree++
		}
	}
	if agree < total-1 { // allow at most one marginal flip on random noise
		t.Fatalf("top-1 agreement %d/%d", agree, total)
	}
}

// TestNet32BatchMatchesSingle pins the batch-independence contract: each
// ProbsBatch row must be bit-identical to a batch-of-1 Probs call (all ops
// process rows independently).
func TestNet32BatchMatchesSingle(t *testing.T) {
	_, n32 := testNets32(t)
	rng := mathx.NewRNG(8)
	imgs := make([]*tensor.Tensor, 5)
	for i := range imgs {
		imgs[i] = tensor.RandN(rng, 3, 16, 16)
	}
	rows := n32.ProbsBatch(imgs)
	for i, img := range imgs {
		single := n32.Probs(img)
		for j := range single {
			if rows[i][j] != single[j] {
				t.Fatalf("batch row %d differs from single inference at class %d", i, j)
			}
		}
	}
}

// TestNet32CloneConcurrent runs clones concurrently (meaningful under
// -race): clones share immutable weights but own scratch.
func TestNet32CloneConcurrent(t *testing.T) {
	_, n32 := testNets32(t)
	rng := mathx.NewRNG(9)
	img := tensor.RandN(rng, 3, 16, 16)
	want := n32.Clone().Probs(img)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := n32.Clone()
			for i := 0; i < 10; i++ {
				got := c.Probs(img)
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("concurrent clone diverged at class %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestNet32FusionCoverage asserts the lowering actually fused: TinyCNN has
// 3 conv+relu pairs, 3 pools, flatten, dense — so the op pipeline must be
// shorter than the layer stack and contain no stand-alone elt32 ReLU.
func TestNet32FusionCoverage(t *testing.T) {
	net, n32 := testNets32(t)
	if len(n32.ops) >= len(net.Layers()) {
		t.Fatalf("no fusion: %d ops from %d layers", len(n32.ops), len(net.Layers()))
	}
	for _, o := range n32.ops {
		if e, ok := o.(elt32); ok && e.kind == eltReLU {
			t.Fatal("stand-alone ReLU survived lowering next to conv/dense")
		}
	}
}

// TestNet32VGGTopology exercises the scaled VGG topology (conv stacks with
// padding, dropout, xavier head) through the lowering.
func TestNet32VGGTopology(t *testing.T) {
	rng := mathx.NewRNG(11)
	net, err := VGGNet(ScaledVGGConfig(3, 32, 10, 16), rng)
	if err != nil {
		t.Fatal(err)
	}
	n32, err := net.ToFloat32()
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.RandN(rng, 3, 32, 32)
	p64 := net.Probs(img)
	p32 := n32.Probs(img)
	for i := range p64 {
		if math.Abs(p64[i]-p32[i]) > 1e-3 {
			t.Fatalf("VGG drift at class %d: %g vs %g", i, p64[i], p32[i])
		}
	}
}

// TestNet32BatchNormFolding checks the scale/shift fold against the
// float64 layer on a BN-bearing stack.
func TestNet32BatchNormFolding(t *testing.T) {
	rng := mathx.NewRNG(13)
	conv := NewConv2D("c1", 1, 4, 3, 1, 1, rng)
	bn := NewBatchNorm2D("bn1", 4)
	// Perturb running stats away from the (0,1) init so the fold is
	// actually exercised.
	for i := 0; i < 4; i++ {
		bn.RunMean.Data()[i] = 0.3 * float64(i+1)
		bn.RunVar.Data()[i] = 0.5 + 0.25*float64(i)
	}
	net := MustNetwork("bnnet", []int{1, 8, 8},
		conv, bn, NewReLU("r1"), NewFlatten("fl"), NewDenseXavier("fc", 4*8*8, 3, rng))
	n32, err := net.ToFloat32()
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.RandN(rng, 1, 8, 8)
	p64 := net.Probs(img)
	p32 := n32.Probs(img)
	for i := range p64 {
		if math.Abs(p64[i]-p32[i]) > 1e-3 {
			t.Fatalf("BN fold drift at class %d: %g vs %g", i, p64[i], p32[i])
		}
	}
}
