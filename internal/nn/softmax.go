package nn

import (
	"math"

	"repro/internal/tensor"
)

// Softmax converts a vector of logits into a probability distribution using
// the numerically stable max-shift formulation.
func Softmax(logits []float64) []float64 {
	return SoftmaxInto(make([]float64, len(logits)), logits)
}

// SoftmaxInto writes softmax(logits) into dst and returns it, avoiding the
// extra allocation of Softmax on hot paths that own a destination. dst must
// have the same length as logits; dst may be the logits slice itself (the
// in-place form used when a caller-owned logits copy becomes the
// probability vector).
func SoftmaxInto(dst, logits []float64) []float64 {
	if len(dst) != len(logits) {
		panic("nn: SoftmaxInto length mismatch")
	}
	if len(logits) == 0 {
		return dst
	}
	maxV := logits[0]
	for _, v := range logits[1:] {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - maxV)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// SoftmaxBatch applies Softmax to every row of an [N, C] tensor, returning
// a new tensor of the same shape.
func SoftmaxBatch(logits *tensor.Tensor) *tensor.Tensor {
	if logits.Dims() != 2 {
		panic("nn: SoftmaxBatch needs [N, C] logits")
	}
	n, c := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, c)
	ld, od := logits.Data(), out.Data()
	for r := 0; r < n; r++ {
		SoftmaxInto(od[r*c:(r+1)*c], ld[r*c:(r+1)*c])
	}
	return out
}

// LogSoftmax returns log(softmax(logits)) computed stably.
func LogSoftmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	if len(logits) == 0 {
		return out
	}
	maxV := logits[0]
	for _, v := range logits[1:] {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for _, v := range logits {
		sum += math.Exp(v - maxV)
	}
	logSum := maxV + math.Log(sum)
	for i, v := range logits {
		out[i] = v - logSum
	}
	return out
}
