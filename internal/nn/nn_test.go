package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		logits := make([]float64, 10)
		for i := range logits {
			logits[i] = r.Range(-20, 20)
		}
		p := Softmax(logits)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return mathx.EqualWithin(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	logits := []float64{1, 2, 3}
	shifted := []float64{101, 102, 103}
	a, b := Softmax(logits), Softmax(shifted)
	for i := range a {
		if !mathx.EqualWithin(a[i], b[i], 1e-12) {
			t.Fatalf("softmax not shift invariant: %v vs %v", a, b)
		}
	}
}

func TestSoftmaxExtremeLogitsStable(t *testing.T) {
	p := Softmax([]float64{1000, 0, -1000})
	if math.IsNaN(p[0]) || p[0] < 0.999 {
		t.Fatalf("softmax unstable on extreme logits: %v", p)
	}
}

func TestLogSoftmaxMatchesLogOfSoftmax(t *testing.T) {
	logits := []float64{0.5, -1.2, 3.3, 0}
	ls := LogSoftmax(logits)
	p := Softmax(logits)
	for i := range ls {
		if !mathx.EqualWithin(ls[i], math.Log(p[i]), 1e-9) {
			t.Fatalf("LogSoftmax[%d]=%v, log(softmax)=%v", i, ls[i], math.Log(p[i]))
		}
	}
}

func TestSoftmaxBatch(t *testing.T) {
	logits := tensor.FromSlice([]float64{1, 2, 3, 3, 2, 1}, 2, 3)
	p := SoftmaxBatch(logits)
	r0 := Softmax([]float64{1, 2, 3})
	if !mathx.EqualWithin(p.At(0, 2), r0[2], 1e-12) {
		t.Fatal("SoftmaxBatch row 0 wrong")
	}
	if !mathx.EqualWithin(p.At(1, 0), r0[2], 1e-12) {
		t.Fatal("SoftmaxBatch row 1 wrong (mirrored logits)")
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := tensor.New(1, 4)
	loss, grad := CrossEntropy{}.Eval(logits, []int{1})
	if !mathx.EqualWithin(loss, math.Log(4), 1e-12) {
		t.Fatalf("uniform CE loss = %v, want ln4=%v", loss, math.Log(4))
	}
	// Gradient: p - onehot = 0.25 everywhere except 0.25-1 at the label.
	if !mathx.EqualWithin(grad.At(0, 1), -0.75, 1e-12) || !mathx.EqualWithin(grad.At(0, 0), 0.25, 1e-12) {
		t.Fatalf("uniform CE grad = %v", grad.Data())
	}
}

func TestCrossEntropyGradSumsToZero(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		logits := tensor.RandN(r, 3, 7)
		_, grad := CrossEntropy{}.Eval(logits, []int{0, 3, 6})
		// Each row of the CE gradient sums to zero (softmax sums to one).
		for row := 0; row < 3; row++ {
			if !mathx.EqualWithin(grad.Row(row).Sum(), 0, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCrossEntropyGradMatchesFiniteDifference(t *testing.T) {
	r := mathx.NewRNG(31)
	logits := tensor.RandN(r, 2, 5)
	labels := []int{4, 0}
	_, grad := CrossEntropy{}.Eval(logits, labels)
	const h = 1e-6
	for i := 0; i < logits.Len(); i++ {
		d := logits.Data()
		orig := d[i]
		d[i] = orig + h
		lp, _ := CrossEntropy{}.Eval(logits, labels)
		d[i] = orig - h
		lm, _ := CrossEntropy{}.Eval(logits, labels)
		d[i] = orig
		numeric := (lp - lm) / (2 * h)
		if !mathx.EqualWithin(grad.Data()[i], numeric, 1e-5) {
			t.Fatalf("CE grad[%d] analytic=%v numeric=%v", i, grad.Data()[i], numeric)
		}
	}
}

func TestCrossEntropyBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CE with out-of-range label did not panic")
		}
	}()
	CrossEntropy{}.Eval(tensor.New(1, 3), []int{3})
}

func TestMSEGradMatchesFiniteDifference(t *testing.T) {
	r := mathx.NewRNG(33)
	logits := tensor.RandN(r, 2, 4)
	labels := []int{1, 2}
	_, grad := MSE{}.Eval(logits, labels)
	const h = 1e-6
	for i := 0; i < logits.Len(); i++ {
		d := logits.Data()
		orig := d[i]
		d[i] = orig + h
		lp, _ := MSE{}.Eval(logits, labels)
		d[i] = orig - h
		lm, _ := MSE{}.Eval(logits, labels)
		d[i] = orig
		numeric := (lp - lm) / (2 * h)
		if !mathx.EqualWithin(grad.Data()[i], numeric, 1e-5) {
			t.Fatalf("MSE grad[%d] analytic=%v numeric=%v", i, grad.Data()[i], numeric)
		}
	}
}

func TestNetworkValidation(t *testing.T) {
	rng := mathx.NewRNG(40)
	// Duplicate layer names are rejected.
	_, err := NewNetwork("dup", []int{4},
		NewDense("fc", 4, 4, rng), NewDense("fc", 4, 2, rng))
	if err == nil {
		t.Fatal("duplicate layer names accepted")
	}
	// Shape mismatches are rejected at construction.
	_, err = NewNetwork("bad", []int{4},
		NewDense("fc1", 5, 4, rng))
	if err == nil {
		t.Fatal("shape-mismatched stack accepted")
	}
	// Empty stack rejected.
	if _, err = NewNetwork("empty", []int{4}); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestNetworkForwardShapes(t *testing.T) {
	rng := mathx.NewRNG(41)
	net, err := TinyCNN(3, 16, 43, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.OutputClasses(); got != 43 {
		t.Fatalf("OutputClasses = %d", got)
	}
	x := tensor.RandU(rng, 0, 1, 2, 3, 16, 16)
	out := net.Forward(x, false)
	if out.Dim(0) != 2 || out.Dim(1) != 43 {
		t.Fatalf("Forward output shape = %v", out.Shape())
	}
	if !out.AllFinite() {
		t.Fatal("Forward produced non-finite logits")
	}
}

func TestNetworkPredictConsistent(t *testing.T) {
	rng := mathx.NewRNG(42)
	net, _ := TinyCNN(1, 8, 5, rng)
	img := tensor.RandU(rng, 0, 1, 1, 8, 8)
	class, prob := net.Predict(img)
	probs := net.Probs(img)
	if class != mathx.ArgMax(probs) {
		t.Fatal("Predict class disagrees with Probs argmax")
	}
	if !mathx.EqualWithin(prob, probs[class], 1e-12) {
		t.Fatal("Predict prob disagrees with Probs")
	}
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if !mathx.EqualWithin(sum, 1, 1e-9) {
		t.Fatalf("Probs sum = %v", sum)
	}
}

func TestNetworkInputShapeEnforced(t *testing.T) {
	rng := mathx.NewRNG(43)
	net, _ := TinyCNN(3, 16, 4, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-shape input did not panic")
		}
	}()
	net.Probs(tensor.New(3, 8, 8))
}

func TestNetworkDeterministicForward(t *testing.T) {
	rng := mathx.NewRNG(44)
	net, _ := TinyCNN(1, 8, 3, rng)
	img := tensor.RandU(mathx.NewRNG(9), 0, 1, 1, 8, 8)
	a := net.Probs(img)
	b := net.Probs(img)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("eval-mode forward not deterministic")
		}
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := mathx.NewRNG(45)
	d := NewDropout("drop", 0.5, rng)
	x := tensor.Full(1, 1, 1000)
	evalOut := d.Forward(x, false)
	if !tensor.EqualWithin(evalOut, x, 0) {
		t.Fatal("eval-mode dropout is not identity")
	}
	trainOut := d.Forward(x, true)
	zeros := 0
	for _, v := range trainOut.Data() {
		switch v {
		case 0:
			zeros++
		case 2:
		default:
			t.Fatalf("inverted dropout produced %v, want 0 or 2", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout zeroed %d/1000 at rate 0.5", zeros)
	}
	// Backward routes gradients only through survivors with the same scale.
	dout := tensor.Full(1, 1, 1000)
	dx := d.Backward(dout)
	for i, v := range dx.Data() {
		want := trainOut.Data()[i] // since input was all-ones, mask*1
		if v != want {
			t.Fatalf("dropout backward[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestBatchNormNormalizesTraining(t *testing.T) {
	rng := mathx.NewRNG(46)
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.RandN(rng, 8, 2, 4, 4)
	x.ScaleInPlace(3)
	x.AddScalar(5)
	y := bn.Forward(x, true)
	// Per channel, output should be ~zero-mean unit-variance (gamma=1, beta=0).
	for c := 0; c < 2; c++ {
		var vals []float64
		for s := 0; s < 8; s++ {
			for i := 0; i < 16; i++ {
				vals = append(vals, y.Data()[(s*2+c)*16+i])
			}
		}
		if m := mathx.Mean(vals); math.Abs(m) > 1e-9 {
			t.Fatalf("BN channel %d mean = %v", c, m)
		}
		if s := mathx.StdDev(vals); math.Abs(s-1) > 1e-6 {
			t.Fatalf("BN channel %d std = %v", c, s)
		}
	}
}

func TestBatchNormRunningStatsUsedInEval(t *testing.T) {
	rng := mathx.NewRNG(47)
	bn := NewBatchNorm2D("bn", 1)
	x := tensor.RandN(rng, 16, 1, 2, 2)
	for i := 0; i < 50; i++ {
		bn.Forward(x, true)
	}
	y := bn.Forward(x, false)
	// With converged running stats, eval output should be close to train output.
	yt := bn.Forward(x, true)
	if !tensor.EqualWithin(y, yt, 0.1) {
		t.Fatal("eval-mode BN far from train-mode after running stats converged")
	}
}

func TestVGGNetTopology(t *testing.T) {
	rng := mathx.NewRNG(48)
	cfg := ScaledVGGConfig(3, 32, 43, 8)
	net, err := VGGNet(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.OutputClasses(); got != 43 {
		t.Fatalf("VGGNet classes = %d", got)
	}
	// 5 conv + 5 relu + 5 pool + flatten + fc = 17 layers (no dropout).
	if got := len(net.Layers()); got != 17 {
		t.Fatalf("VGGNet layer count = %d", got)
	}
	x := tensor.RandU(rng, 0, 1, 1, 3, 32, 32)
	out := net.Forward(x, false)
	if out.Dim(1) != 43 {
		t.Fatalf("VGGNet output shape = %v", out.Shape())
	}
}

func TestVGGNetPaperConfigWidths(t *testing.T) {
	cfg := PaperVGGConfig(3, 32, 43)
	want := [5]int{64, 128, 256, 512, 512}
	if cfg.Channels != want {
		t.Fatalf("paper config channels = %v", cfg.Channels)
	}
	if cfg.Dropout != 0.5 {
		t.Fatalf("paper config dropout = %v", cfg.Dropout)
	}
}

func TestVGGNetRejectsBadGeometry(t *testing.T) {
	rng := mathx.NewRNG(49)
	if _, err := VGGNet(ScaledVGGConfig(3, 33, 43, 8), rng); err == nil {
		t.Fatal("VGGNet accepted size not divisible by 32")
	}
	if _, err := VGGNet(ScaledVGGConfig(3, 32, 1, 8), rng); err == nil {
		t.Fatal("VGGNet accepted single class")
	}
	if _, err := VGGNet(ScaledVGGConfig(0, 32, 43, 8), rng); err == nil {
		t.Fatal("VGGNet accepted zero channels")
	}
	if _, err := TinyCNN(1, 9, 4, rng); err == nil {
		t.Fatal("TinyCNN accepted size not divisible by 8")
	}
}

func TestParamCountPositiveAndZeroGrads(t *testing.T) {
	rng := mathx.NewRNG(50)
	net, _ := TinyCNN(1, 8, 4, rng)
	if net.ParamCount() <= 0 {
		t.Fatal("ParamCount not positive")
	}
	img := tensor.RandU(rng, 0, 1, 1, 8, 8)
	net.LossAndInputGrad(img, 0, CrossEntropy{})
	dirty := false
	for _, p := range net.Params() {
		if p.Grad.L1Norm() > 0 {
			dirty = true
		}
	}
	if !dirty {
		t.Fatal("backward accumulated no parameter gradients")
	}
	net.ZeroGrads()
	for _, p := range net.Params() {
		if p.Grad.L1Norm() != 0 {
			t.Fatal("ZeroGrads left gradients")
		}
	}
}
