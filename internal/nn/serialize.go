package nn

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/tensor"
)

// Weight-file format (little-endian):
//
//	magic   [8]byte  "FADEMLW1"
//	count   uint32   number of tensors
//	per tensor:
//	  nameLen uint16, name []byte
//	  ndims   uint8,  dims []uint32
//	  data    []float64 (raw IEEE-754 bits)
//
// Both trainable parameters and layer state (batch-norm running statistics)
// are stored, keyed by name. Loading matches names and shapes strictly: a
// weight file from a different topology is rejected rather than silently
// truncated.

var weightMagic = [8]byte{'F', 'A', 'D', 'E', 'M', 'L', 'W', '1'}

// SaveWeights writes every parameter (and layer state) of the network to w.
func (n *Network) SaveWeights(w io.Writer) error {
	bw := bufio.NewWriter(w)
	entries := n.weightEntries()
	if _, err := bw.Write(weightMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		if len(e.name) > math.MaxUint16 {
			return fmt.Errorf("nn: weight name %q too long", e.name)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(e.name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(e.name); err != nil {
			return err
		}
		dims := e.t.Shape()
		if err := bw.WriteByte(byte(len(dims))); err != nil {
			return err
		}
		for _, d := range dims {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		buf := make([]byte, 8*len(e.t.Data()))
		for i, v := range e.t.Data() {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadWeights reads a weight file produced by SaveWeights into the network.
// Every tensor in the file must match a parameter or state tensor by name
// and shape, and every network tensor must be present in the file.
func (n *Network) LoadWeights(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("nn: reading weight magic: %w", err)
	}
	if magic != weightMagic {
		return fmt.Errorf("nn: bad weight file magic %q", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: reading weight count: %w", err)
	}
	targets := make(map[string]*tensor.Tensor)
	for _, e := range n.weightEntries() {
		targets[e.name] = e.t
	}
	if int(count) != len(targets) {
		return fmt.Errorf("nn: weight file has %d tensors, network %q has %d", count, n.name, len(targets))
	}
	loaded := make(map[string]bool)
	for i := uint32(0); i < count; i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return fmt.Errorf("nn: reading name length: %w", err)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return fmt.Errorf("nn: reading name: %w", err)
		}
		name := string(nameBuf)
		ndims, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("nn: reading ndims for %q: %w", name, err)
		}
		dims := make([]int, ndims)
		elems := 1
		for d := range dims {
			var v uint32
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return fmt.Errorf("nn: reading dims for %q: %w", name, err)
			}
			dims[d] = int(v)
			elems *= int(v)
		}
		dst, ok := targets[name]
		if !ok {
			return fmt.Errorf("nn: weight file tensor %q not in network %q", name, n.name)
		}
		if loaded[name] {
			return fmt.Errorf("nn: weight file has duplicate tensor %q", name)
		}
		want := dst.Shape()
		if len(want) != len(dims) {
			return fmt.Errorf("nn: tensor %q shape %v, network wants %v", name, dims, want)
		}
		for d := range want {
			if want[d] != dims[d] {
				return fmt.Errorf("nn: tensor %q shape %v, network wants %v", name, dims, want)
			}
		}
		buf := make([]byte, 8*elems)
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("nn: reading data for %q: %w", name, err)
		}
		data := dst.Data()
		for e := 0; e < elems; e++ {
			data[e] = math.Float64frombits(binary.LittleEndian.Uint64(buf[e*8:]))
		}
		loaded[name] = true
	}
	return nil
}

// WeightHash returns the lowercase-hex SHA-256 of the serialized weight
// stream — exactly the bytes SaveWeights would emit — so a live network,
// a weight file on disk, and a registry manifest can all be compared by
// one content address. Two networks with bit-identical parameters (and
// batch-norm running statistics) hash equal regardless of how they were
// built.
func (n *Network) WeightHash() (string, error) {
	h := sha256.New()
	if err := n.SaveWeights(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// SaveWeightsFile writes the network weights to path atomically (temp file
// plus rename) so an interrupted write never leaves a corrupt cache.
func (n *Network) SaveWeightsFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := n.SaveWeights(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadWeightsFile reads network weights from path.
func (n *Network) LoadWeightsFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.LoadWeights(f)
}

type weightEntry struct {
	name string
	t    *tensor.Tensor
}

// weightEntries lists every tensor to serialize in deterministic order.
func (n *Network) weightEntries() []weightEntry {
	var entries []weightEntry
	for _, p := range n.Params() {
		entries = append(entries, weightEntry{p.Name, p.Value})
	}
	for _, l := range n.layers {
		if bn, ok := l.(*BatchNorm2D); ok {
			entries = append(entries,
				weightEntry{bn.Name() + "/run_mean", bn.RunMean},
				weightEntry{bn.Name() + "/run_var", bn.RunVar})
		}
	}
	return entries
}
