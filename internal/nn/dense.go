package nn

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// Dense is a fully connected layer computing y = x·Wᵀ + b for inputs of
// shape [N, In] and weights of shape [Out, In].
type Dense struct {
	name    string
	In, Out int
	W, B    *Param

	x *tensor.Tensor // cached input for backward
}

// NewDense constructs a fully connected layer with He-normal weight
// initialization (appropriate for the ReLU networks built here) and zero
// biases.
func NewDense(name string, in, out int, rng *mathx.RNG) *Dense {
	w := tensor.New(out, in)
	w.FillHeNormal(rng, in)
	return &Dense{
		name: name,
		In:   in,
		Out:  out,
		W:    newParam(name+"/W", w),
		B:    newParam(name+"/b", tensor.New(out)),
	}
}

// NewDenseXavier constructs a fully connected layer with Xavier-uniform
// initialization, the conventional choice for a softmax classifier head.
func NewDenseXavier(name string, in, out int, rng *mathx.RNG) *Dense {
	d := NewDense(name, in, out, rng)
	d.W.Value.FillXavierUniform(rng, in, out)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// CloneLayer implements Cloner: the clone shares W and B values but owns
// its own input cache and gradient accumulators.
func (d *Dense) CloneLayer() Layer {
	return &Dense{
		name: d.name,
		In:   d.In,
		Out:  d.Out,
		W:    d.W.ShareValue(),
		B:    d.B.ShareValue(),
	}
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// OutShape implements OutputShaper.
func (d *Dense) OutShape(in []int) ([]int, error) {
	if len(in) != 1 || in[0] != d.In {
		return nil, shapeErr(d.name, in, fmt.Sprintf("want [%d]", d.In))
	}
	return []int{d.Out}, nil
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: %s: Forward input shape %v, want [N %d]", d.name, x.Shape(), d.In))
	}
	d.x = x
	// y[n,o] = Σ_i x[n,i]·W[o,i] + b[o]
	y := tensor.MatMulTransB(x, d.W.Value)
	n := x.Dim(0)
	b := d.B.Value.Data()
	yd := y.Data()
	for r := 0; r < n; r++ {
		row := yd[r*d.Out : (r+1)*d.Out]
		for o := range row {
			row[o] += b[o]
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.x == nil {
		panic("nn: Dense.Backward before Forward")
	}
	// dW[o,i] += Σ_n dout[n,o]·x[n,i], accumulated straight into the
	// gradient — no intermediate product tensor.
	tensor.MatMulAccumTransA(d.W.Grad, dout, d.x)
	// db[o] += Σ_n dout[n,o]
	n, out := dout.Dim(0), dout.Dim(1)
	db := d.B.Grad.Data()
	dd := dout.Data()
	for r := 0; r < n; r++ {
		row := dd[r*out : (r+1)*out]
		for o := range row {
			db[o] += row[o]
		}
	}
	// dx[n,i] = Σ_o dout[n,o]·W[o,i]
	return tensor.MatMul(dout, d.W.Value)
}
