package nn

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// Conv2D is a 2-d convolution over NCHW batches, implemented with the
// classic im2col lowering so both forward and backward passes reduce to
// matrix multiplication.
//
// Weights have shape [OutC, InC·K·K]; each output channel is one row.
type Conv2D struct {
	name                        string
	InC, OutC                   int
	K, Stride, Pad              int
	W, B                        *Param
	inH, inW, outH, outW, batch int

	// Per-call scratch owned by this instance and reused across calls so
	// the attack loops don't re-allocate the im2col matrix thousands of
	// times. Clones (Network.Clone) get their own scratch, which is what
	// makes a cloned network safe for concurrent inference.
	cols     *tensor.Tensor // cached im2col matrix [N, patch, outH·outW]
	colsBuf  []float64
	yBuf     []float64 // forward matmul output [OutC, outH·outW]
	dcolsBuf []float64 // backward dcols [patch, outH·outW]
}

// NewConv2D constructs a convolution layer with He-normal initialization.
// kernel must be positive, stride positive, pad non-negative.
func NewConv2D(name string, inC, outC, kernel, stride, pad int, rng *mathx.RNG) *Conv2D {
	if kernel <= 0 || stride <= 0 || pad < 0 || inC <= 0 || outC <= 0 {
		panic(fmt.Sprintf("nn: NewConv2D(%s) invalid geometry k=%d s=%d p=%d inC=%d outC=%d",
			name, kernel, stride, pad, inC, outC))
	}
	fanIn := inC * kernel * kernel
	w := tensor.New(outC, fanIn)
	w.FillHeNormal(rng, fanIn)
	return &Conv2D{
		name:   name,
		InC:    inC,
		OutC:   outC,
		K:      kernel,
		Stride: stride,
		Pad:    pad,
		W:      newParam(name+"/W", w),
		B:      newParam(name+"/b", tensor.New(outC)),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// CloneLayer implements Cloner: the clone shares W and B values but owns
// its own scratch buffers and gradient accumulators.
func (c *Conv2D) CloneLayer() Layer {
	return &Conv2D{
		name: c.name,
		InC:  c.InC, OutC: c.OutC,
		K: c.K, Stride: c.Stride, Pad: c.Pad,
		W: c.W.ShareValue(), B: c.B.ShareValue(),
	}
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// OutShape implements OutputShaper.
func (c *Conv2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != c.InC {
		return nil, shapeErr(c.name, in, fmt.Sprintf("want [%d H W]", c.InC))
	}
	oh := (in[1]+2*c.Pad-c.K)/c.Stride + 1
	ow := (in[2]+2*c.Pad-c.K)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, shapeErr(c.name, in, "kernel larger than padded input")
	}
	return []int{c.OutC, oh, ow}, nil
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s: Forward input shape %v, want [N %d H W]", c.name, x.Shape(), c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	c.batch, c.inH, c.inW = n, h, w
	c.outH = (h+2*c.Pad-c.K)/c.Stride + 1
	c.outW = (w+2*c.Pad-c.K)/c.Stride + 1
	if c.outH <= 0 || c.outW <= 0 {
		panic(fmt.Sprintf("nn: %s: kernel %d exceeds padded input %dx%d", c.name, c.K, h, w))
	}
	patch := c.InC * c.K * c.K
	spatial := c.outH * c.outW
	cols := scratch(&c.colsBuf, n, patch, spatial)
	for s := 0; s < n; s++ {
		im2col(x.Image(s), cols.SubBatch(s, s+1).Reshape(patch, spatial), c.K, c.Stride, c.Pad)
	}
	c.cols = cols

	out := tensor.New(n, c.OutC, c.outH, c.outW)
	bd := c.B.Value.Data()
	y := scratch(&c.yBuf, c.OutC, spatial)
	for s := 0; s < n; s++ {
		colMat := cols.SubBatch(s, s+1).Reshape(patch, spatial)
		tensor.MatMulInto(y, c.W.Value, colMat) // [OutC, spatial]
		dst := out.Data()[s*c.OutC*spatial : (s+1)*c.OutC*spatial]
		yd := y.Data()
		for f := 0; f < c.OutC; f++ {
			b := bd[f]
			row := yd[f*spatial : (f+1)*spatial]
			drow := dst[f*spatial : (f+1)*spatial]
			for i, v := range row {
				drow[i] = v + b
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if c.cols == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	n := c.batch
	patch := c.InC * c.K * c.K
	spatial := c.outH * c.outW
	dx := tensor.New(n, c.InC, c.inH, c.inW)
	dbd := c.B.Grad.Data()
	dcols := scratch(&c.dcolsBuf, patch, spatial)
	for s := 0; s < n; s++ {
		doutMat := tensor.FromSlice(
			dout.Data()[s*c.OutC*spatial:(s+1)*c.OutC*spatial], c.OutC, spatial)
		colMat := c.cols.SubBatch(s, s+1).Reshape(patch, spatial)
		// dW[f,p] += Σ_i dout[f,i]·cols[p,i], fused — no materialized
		// transpose of the im2col matrix.
		tensor.MatMulAccumTransB(c.W.Grad, doutMat, colMat)
		// db[f] += Σ_i dout[f,i]
		dd := doutMat.Data()
		for f := 0; f < c.OutC; f++ {
			s := 0.0
			for _, v := range dd[f*spatial : (f+1)*spatial] {
				s += v
			}
			dbd[f] += s
		}
		// dcols = Wᵀ·dout, then scatter back to image layout.
		tensor.MatMulTransAInto(dcols, c.W.Value, doutMat) // [patch, spatial]
		col2im(dcols, dx.Image(s), c.K, c.Stride, c.Pad)
	}
	return dx
}

// im2col lowers a CHW image into a [C·K·K, outH·outW] matrix where column i
// holds the receptive field of output position i. Out-of-bounds (padding)
// positions contribute zeros.
func im2col(img, cols *tensor.Tensor, k, stride, pad int) {
	ch, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	id := img.Data()
	cd := cols.Data()
	spatial := outH * outW
	row := 0
	for cc := 0; cc < ch; cc++ {
		base := cc * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				dst := cd[row*spatial : (row+1)*spatial]
				row++
				i := 0
				for oy := 0; oy < outH; oy++ {
					sy := oy*stride + ky - pad
					if sy < 0 || sy >= h {
						for ox := 0; ox < outW; ox++ {
							dst[i] = 0
							i++
						}
						continue
					}
					rowBase := base + sy*w
					for ox := 0; ox < outW; ox++ {
						sx := ox*stride + kx - pad
						if sx < 0 || sx >= w {
							dst[i] = 0
						} else {
							dst[i] = id[rowBase+sx]
						}
						i++
					}
				}
			}
		}
	}
}

// col2im scatters a [C·K·K, outH·outW] gradient matrix back into CHW image
// layout, accumulating where receptive fields overlap. It is the exact
// adjoint of im2col.
func col2im(cols, img *tensor.Tensor, k, stride, pad int) {
	ch, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	id := img.Data()
	cd := cols.Data()
	spatial := outH * outW
	row := 0
	for cc := 0; cc < ch; cc++ {
		base := cc * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				src := cd[row*spatial : (row+1)*spatial]
				row++
				i := 0
				for oy := 0; oy < outH; oy++ {
					sy := oy*stride + ky - pad
					if sy < 0 || sy >= h {
						i += outW
						continue
					}
					rowBase := base + sy*w
					for ox := 0; ox < outW; ox++ {
						sx := ox*stride + kx - pad
						if sx >= 0 && sx < w {
							id[rowBase+sx] += src[i]
						}
						i++
					}
				}
			}
		}
	}
}
