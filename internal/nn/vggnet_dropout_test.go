package nn

import (
	"bytes"
	"testing"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// The paper-width config enables dropout before the classifier; these
// tests cover that code path without training the full-width network.

func TestVGGNetWithDropoutForward(t *testing.T) {
	cfg := ScaledVGGConfig(3, 32, 10, 16)
	cfg.Dropout = 0.5
	rng := mathx.NewRNG(71)
	net, err := VGGNet(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 5×(conv+relu+pool) + flatten + dropout + fc = 18 layers.
	if got := len(net.Layers()); got != 18 {
		t.Fatalf("dropout VGG layer count = %d", got)
	}
	x := tensor.RandU(rng, 0, 1, 2, 3, 32, 32)
	// Eval mode is deterministic despite dropout.
	a := net.Forward(x, false)
	b := net.Forward(x, false)
	if !tensor.EqualWithin(a, b, 0) {
		t.Fatal("eval-mode dropout VGG not deterministic")
	}
	// Train mode applies masks; two passes should differ.
	c := net.Forward(x, true)
	d := net.Forward(x, true)
	if tensor.EqualWithin(c, d, 1e-12) {
		t.Fatal("train-mode dropout produced identical passes")
	}
}

func TestVGGNetDropoutBackwardShapes(t *testing.T) {
	cfg := ScaledVGGConfig(1, 32, 5, 16)
	cfg.Dropout = 0.3
	rng := mathx.NewRNG(72)
	net, err := VGGNet(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandU(rng, 0, 1, 2, 1, 32, 32)
	logits := net.Forward(x, true)
	loss, dlogits := CrossEntropy{}.Eval(logits, []int{0, 3})
	if loss <= 0 {
		t.Fatalf("initial loss %v not positive", loss)
	}
	dx := net.Backward(dlogits)
	if !dx.SameShape(x) {
		t.Fatalf("input grad shape %v, want %v", dx.Shape(), x.Shape())
	}
	if !dx.AllFinite() {
		t.Fatal("input grad has non-finite values")
	}
}

func TestVGGNetDropoutSerializationRoundTrip(t *testing.T) {
	cfg := ScaledVGGConfig(1, 32, 4, 16)
	cfg.Dropout = 0.5
	net, err := VGGNet(cfg, mathx.NewRNG(73))
	if err != nil {
		t.Fatal(err)
	}
	net2, err := VGGNet(cfg, mathx.NewRNG(999))
	if err != nil {
		t.Fatal(err)
	}
	// Dropout is stateless, so weights round-trip normally.
	var buf bytes.Buffer
	if err := net.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if err := net2.LoadWeights(&buf); err != nil {
		t.Fatal(err)
	}
	img := tensor.RandU(mathx.NewRNG(5), 0, 1, 1, 32, 32)
	a, b := net.Probs(img), net2.Probs(img)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("dropout VGG weights not preserved")
		}
	}
}
