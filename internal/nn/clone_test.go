package nn

import (
	"sync"
	"testing"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

func testImages(n, ch, size int, seed uint64) []*tensor.Tensor {
	rng := mathx.NewRNG(seed)
	imgs := make([]*tensor.Tensor, n)
	for i := range imgs {
		imgs[i] = tensor.RandU(rng, 0, 1, ch, size, size)
	}
	return imgs
}

func TestCloneSharesWeightsOwnsGrads(t *testing.T) {
	net, err := TinyCNN(3, 16, 10, mathx.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	clone := net.Clone()

	op, cp := net.Params(), clone.Params()
	if len(op) != len(cp) {
		t.Fatalf("clone has %d params, original %d", len(cp), len(op))
	}
	for i := range op {
		if op[i].Value != cp[i].Value {
			t.Errorf("param %s: clone does not alias the weight tensor", op[i].Name)
		}
		if op[i].Grad == cp[i].Grad {
			t.Errorf("param %s: clone shares the gradient accumulator", op[i].Name)
		}
	}

	// A weight update through the original must be visible to the clone.
	img := testImages(1, 3, 16, 1)[0]
	before := clone.Probs(img)
	op[0].Value.AddScalar(0.05)
	after := clone.Probs(img)
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
		}
	}
	if same {
		t.Fatal("weight update on the original did not reach the clone")
	}
}

// TestConcurrentInferenceMatchesSerial is the -race witness for the
// thread-safe inference core: many goroutines run Probs and
// LossAndInputGrad simultaneously against weight-sharing clones of one
// network, and every result must be bit-identical to the serial answer.
func TestConcurrentInferenceMatchesSerial(t *testing.T) {
	net, err := TinyCNN(3, 16, 10, mathx.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	const nImages = 24
	imgs := testImages(nImages, 3, 16, 2)
	loss := CrossEntropy{}

	// Serial reference on the original network.
	wantProbs := make([][]float64, nImages)
	wantLoss := make([]float64, nImages)
	wantGrad := make([]*tensor.Tensor, nImages)
	for i, img := range imgs {
		wantProbs[i] = net.Probs(img)
		wantLoss[i], wantGrad[i] = net.LossAndInputGrad(img, i%10, loss)
	}

	const workers = 8
	gotProbs := make([][]float64, nImages)
	gotLoss := make([]float64, nImages)
	gotGrad := make([]*tensor.Tensor, nImages)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := net.Clone()
			for i := w; i < nImages; i += workers {
				gotProbs[i] = worker.Probs(imgs[i])
				gotLoss[i], gotGrad[i] = worker.LossAndInputGrad(imgs[i], i%10, loss)
			}
		}(w)
	}
	wg.Wait()

	for i := 0; i < nImages; i++ {
		for c := range wantProbs[i] {
			if gotProbs[i][c] != wantProbs[i][c] {
				t.Fatalf("image %d class %d: concurrent prob %v != serial %v",
					i, c, gotProbs[i][c], wantProbs[i][c])
			}
		}
		if gotLoss[i] != wantLoss[i] {
			t.Fatalf("image %d: concurrent loss %v != serial %v", i, gotLoss[i], wantLoss[i])
		}
		wd, gd := wantGrad[i].Data(), gotGrad[i].Data()
		for j := range wd {
			if wd[j] != gd[j] {
				t.Fatalf("image %d grad[%d]: concurrent %v != serial %v", i, j, gd[j], wd[j])
			}
		}
	}
}

// TestScratchReuseKeepsRepeatedCallsIdentical guards the buffer-reuse
// refactor: repeated forward/backward passes through one instance must
// not leak state between calls, including across a batch-size change.
func TestScratchReuseKeepsRepeatedCallsIdentical(t *testing.T) {
	net, err := TinyCNN(3, 16, 10, mathx.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	img := testImages(1, 3, 16, 3)[0]
	loss := CrossEntropy{}

	l1, g1 := net.LossAndInputGrad(img, 4, loss)
	// Interleave a different input (different activation pattern) before
	// repeating the first, so stale scratch would be caught.
	other := testImages(1, 3, 16, 4)[0]
	net.LossAndInputGrad(other, 1, loss)
	l2, g2 := net.LossAndInputGrad(img, 4, loss)
	if l1 != l2 {
		t.Fatalf("repeated loss differs: %v vs %v", l1, l2)
	}
	d1, d2 := g1.Data(), g2.Data()
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("repeated grad[%d] differs: %v vs %v", i, d1[i], d2[i])
		}
	}
}

func TestCloneRejectsUnknownLayer(t *testing.T) {
	net := MustNetwork("custom", []int{4}, opaqueLayer{})
	defer func() {
		if recover() == nil {
			t.Fatal("Clone of a non-Cloner layer did not panic")
		}
	}()
	net.Clone()
}

// opaqueLayer is a minimal Layer that deliberately does not implement
// Cloner.
type opaqueLayer struct{}

func (opaqueLayer) Name() string                                        { return "opaque" }
func (opaqueLayer) Params() []*Param                                    { return nil }
func (opaqueLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }
func (opaqueLayer) Backward(dout *tensor.Tensor) *tensor.Tensor         { return dout }
