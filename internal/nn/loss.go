package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Loss couples a scalar objective with its gradient with respect to the
// network logits. Implementations must be deterministic.
type Loss interface {
	// Name identifies the loss in logs and reports.
	Name() string
	// Eval returns the scalar loss and dLoss/dLogits for an [N, C] logits
	// batch and per-sample integer labels.
	Eval(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor)
}

// CrossEntropy is softmax cross-entropy, the paper's training and attack
// objective. Softmax and log are fused for numerical stability, giving the
// familiar gradient (softmax(logits) - onehot) / N.
type CrossEntropy struct{}

// Name implements Loss.
func (CrossEntropy) Name() string { return "cross-entropy" }

// Eval implements Loss.
func (CrossEntropy) Eval(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, c := checkLossArgs(logits, labels)
	grad := tensor.New(n, c)
	ld, gd := logits.Data(), grad.Data()
	total := 0.0
	invN := 1 / float64(n)
	for r := 0; r < n; r++ {
		row := ld[r*c : (r+1)*c]
		logp := LogSoftmax(row)
		label := labels[r]
		if label < 0 || label >= c {
			panic(fmt.Sprintf("nn: CrossEntropy label %d outside [0,%d)", label, c))
		}
		total += -logp[label]
		grow := gd[r*c : (r+1)*c]
		for j := range grow {
			p := math.Exp(logp[j])
			if j == label {
				grow[j] = (p - 1) * invN
			} else {
				grow[j] = p * invN
			}
		}
	}
	return total * invN, grad
}

// MSE is mean squared error against one-hot targets. It is included for the
// substrate's completeness (and used by unit tests as an alternative convex
// objective); the experiments use CrossEntropy.
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Eval implements Loss.
func (MSE) Eval(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, c := checkLossArgs(logits, labels)
	grad := tensor.New(n, c)
	ld, gd := logits.Data(), grad.Data()
	total := 0.0
	scale := 2 / float64(n*c)
	for r := 0; r < n; r++ {
		label := labels[r]
		if label < 0 || label >= c {
			panic(fmt.Sprintf("nn: MSE label %d outside [0,%d)", label, c))
		}
		for j := 0; j < c; j++ {
			t := 0.0
			if j == label {
				t = 1
			}
			d := ld[r*c+j] - t
			total += d * d
			gd[r*c+j] = scale * d
		}
	}
	return total / float64(n*c), grad
}

func checkLossArgs(logits *tensor.Tensor, labels []int) (n, c int) {
	if logits.Dims() != 2 {
		panic(fmt.Sprintf("nn: loss needs [N, C] logits, got %v", logits.Shape()))
	}
	n, c = logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: loss got %d labels for batch of %d", len(labels), n))
	}
	return n, c
}
