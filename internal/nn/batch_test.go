package nn

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// TestBatchedInferenceBitIdentical pins the contract the batched call
// sites (train.EvaluateOn, the one-pixel DE attack, the figure panel
// loops) rely on: every row of LogitsBatch/ProbsBatch and every entry of
// PredictBatch is bit-identical to the corresponding batch-of-1 call.
func TestBatchedInferenceBitIdentical(t *testing.T) {
	rng := mathx.NewRNG(77)
	net, err := TinyCNN(3, 16, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Awkward batch sizes: 1, a non-power-of-two, and one crossing the
	// scratch-reuse boundary (descending size reuses a larger buffer).
	for _, n := range []int{1, 3, 7, 2} {
		imgs := make([]*tensor.Tensor, n)
		for i := range imgs {
			imgs[i] = tensor.RandU(rng, 0, 1, 3, 16, 16)
		}
		logitRows := net.LogitsBatch(imgs)
		probRows := net.ProbsBatch(imgs)
		classes, confs := net.PredictBatch(imgs)
		for i, img := range imgs {
			wantL := net.Logits(img)
			for j := range wantL {
				if logitRows[i][j] != wantL[j] {
					t.Fatalf("batch=%d row %d: LogitsBatch[%d]=%v, Logits=%v", n, i, j, logitRows[i][j], wantL[j])
				}
			}
			wantP := net.Probs(img)
			for j := range wantP {
				if probRows[i][j] != wantP[j] {
					t.Fatalf("batch=%d row %d: ProbsBatch[%d]=%v, Probs=%v", n, i, j, probRows[i][j], wantP[j])
				}
			}
			wantC, wantConf := net.Predict(img)
			if classes[i] != wantC || confs[i] != wantConf {
				t.Fatalf("batch=%d row %d: PredictBatch=(%d,%v), Predict=(%d,%v)", n, i, classes[i], confs[i], wantC, wantConf)
			}
		}
	}
}

// TestBatchShapeValidation ensures a wrong-shaped image anywhere in the
// batch is rejected, and empty batches are legal no-ops.
func TestBatchShapeValidation(t *testing.T) {
	rng := mathx.NewRNG(78)
	net, err := TinyCNN(1, 8, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.ProbsBatch(nil); got != nil {
		t.Fatalf("ProbsBatch(nil) = %v, want nil", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ProbsBatch with mismatched image shape did not panic")
		}
	}()
	net.ProbsBatch([]*tensor.Tensor{
		tensor.RandU(rng, 0, 1, 1, 8, 8),
		tensor.RandU(rng, 0, 1, 1, 4, 4),
	})
}

// TestSoftmaxIntoAliasing checks the documented in-place form.
func TestSoftmaxIntoAliasing(t *testing.T) {
	logits := []float64{0.3, -1.2, 2.4, 0}
	want := Softmax(logits)
	got := SoftmaxInto(logits, logits)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("in-place SoftmaxInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
