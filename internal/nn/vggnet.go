package nn

import (
	"fmt"

	"repro/internal/mathx"
)

// VGGConfig describes the VGGNet topology of the paper's Fig. 4: five
// convolutional blocks (each 3×3 conv + ReLU + 2×2 max-pool) followed by a
// single fully connected classifier.
type VGGConfig struct {
	// InChannels is the image channel count (3 for RGB signs).
	InChannels int
	// InSize is the square input resolution; it must be divisible by 32 so
	// five 2×2 pools land on an integer grid.
	InSize int
	// Channels holds the output-filter count of each of the five blocks.
	// The paper's VGGNet uses {64, 128, 256, 512, 512}.
	Channels [5]int
	// Classes is the classifier width (43 for GTSRB).
	Classes int
	// Dropout, if positive, inserts inverted dropout before the classifier.
	Dropout float64
}

// PaperVGGConfig returns the exact filter widths of the paper's Fig. 4
// (Conv1 64, Conv2 128, Conv3 256, Conv4 512, Conv5 512) for the given
// input geometry. Training this on a single CPU core is slow; the
// experiment profiles default to ScaledVGGConfig and keep this available
// for full-fidelity runs.
func PaperVGGConfig(inChannels, inSize, classes int) VGGConfig {
	return VGGConfig{
		InChannels: inChannels,
		InSize:     inSize,
		Channels:   [5]int{64, 128, 256, 512, 512},
		Classes:    classes,
		Dropout:    0.5,
	}
}

// ScaledVGGConfig returns the same 5-conv + 1-FC topology with filter
// widths divided by the given factor (minimum 4 filters per block), the
// single-CPU substitution documented in DESIGN.md.
func ScaledVGGConfig(inChannels, inSize, classes, factor int) VGGConfig {
	paper := [5]int{64, 128, 256, 512, 512}
	var ch [5]int
	for i, c := range paper {
		ch[i] = c / factor
		if ch[i] < 4 {
			ch[i] = 4
		}
	}
	return VGGConfig{
		InChannels: inChannels,
		InSize:     inSize,
		Channels:   ch,
		Classes:    classes,
	}
}

// VGGNet builds the paper's network: five blocks of (3×3 conv, ReLU,
// 2×2 max-pool stride 2) and one fully connected output layer. For an
// input of size S the spatial resolution after the five pools is S/32, so
// S must be a positive multiple of 32.
func VGGNet(cfg VGGConfig, rng *mathx.RNG) (*Network, error) {
	if cfg.InSize <= 0 || cfg.InSize%32 != 0 {
		return nil, fmt.Errorf("nn: VGGNet input size %d must be a positive multiple of 32", cfg.InSize)
	}
	if cfg.Classes <= 1 {
		return nil, fmt.Errorf("nn: VGGNet needs at least 2 classes, got %d", cfg.Classes)
	}
	if cfg.InChannels <= 0 {
		return nil, fmt.Errorf("nn: VGGNet needs positive input channels, got %d", cfg.InChannels)
	}
	var layers []Layer
	inC := cfg.InChannels
	for i, outC := range cfg.Channels {
		if outC <= 0 {
			return nil, fmt.Errorf("nn: VGGNet block %d has %d filters", i+1, outC)
		}
		tag := fmt.Sprintf("conv%d", i+1)
		layers = append(layers,
			NewConv2D(tag, inC, outC, 3, 1, 1, rng),
			NewReLU(tag+"_relu"),
			NewMaxPool2D(fmt.Sprintf("pool%d", i+1), 2, 2),
		)
		inC = outC
	}
	final := cfg.InSize / 32
	flatDim := inC * final * final
	layers = append(layers, NewFlatten("flatten"))
	if cfg.Dropout > 0 {
		layers = append(layers, NewDropout("dropout", cfg.Dropout, rng))
	}
	layers = append(layers, NewDenseXavier("fc", flatDim, cfg.Classes, rng))
	return NewNetwork("vggnet", []int{cfg.InChannels, cfg.InSize, cfg.InSize}, layers...)
}

// TinyCNN builds a reduced 3-block convnet for fast unit and integration
// tests: same layer types and contracts as VGGNet, an order of magnitude
// fewer parameters. Input size must be a positive multiple of 8.
func TinyCNN(inChannels, inSize, classes int, rng *mathx.RNG) (*Network, error) {
	if inSize <= 0 || inSize%8 != 0 {
		return nil, fmt.Errorf("nn: TinyCNN input size %d must be a positive multiple of 8", inSize)
	}
	final := inSize / 8
	return NewNetwork("tinycnn", []int{inChannels, inSize, inSize},
		NewConv2D("conv1", inChannels, 8, 3, 1, 1, rng),
		NewReLU("relu1"),
		NewMaxPool2D("pool1", 2, 2),
		NewConv2D("conv2", 8, 16, 3, 1, 1, rng),
		NewReLU("relu2"),
		NewMaxPool2D("pool2", 2, 2),
		NewConv2D("conv3", 16, 24, 3, 1, 1, rng),
		NewReLU("relu3"),
		NewMaxPool2D("pool3", 2, 2),
		NewFlatten("flatten"),
		NewDenseXavier("fc", 24*final*final, classes, rng),
	)
}
