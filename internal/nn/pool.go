package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MaxPool2D is a max-pooling layer over NCHW batches. It records the argmax
// position of every pooling window so Backward can route gradients to the
// winning input element only.
type MaxPool2D struct {
	name      string
	K, Stride int
	argmax    []int // flat input index of the max for each output element
	inShape   []int
}

// NewMaxPool2D constructs a max-pooling layer with the given window and
// stride (both must be positive).
func NewMaxPool2D(name string, kernel, stride int) *MaxPool2D {
	if kernel <= 0 || stride <= 0 {
		panic(fmt.Sprintf("nn: NewMaxPool2D(%s) invalid k=%d s=%d", name, kernel, stride))
	}
	return &MaxPool2D{name: name, K: kernel, Stride: stride}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.name }

// CloneLayer implements Cloner: the clone owns its own argmax table.
func (p *MaxPool2D) CloneLayer() Layer {
	return &MaxPool2D{name: p.name, K: p.K, Stride: p.Stride}
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// OutShape implements OutputShaper.
func (p *MaxPool2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, shapeErr(p.name, in, "want [C H W]")
	}
	oh := (in[1]-p.K)/p.Stride + 1
	ow := (in[2]-p.K)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, shapeErr(p.name, in, "window larger than input")
	}
	return []int{in[0], oh, ow}, nil
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s: Forward input shape %v, want NCHW", p.name, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-p.K)/p.Stride + 1
	ow := (w-p.K)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s: window %d exceeds input %dx%d", p.name, p.K, h, w))
	}
	p.inShape = x.Shape()
	out := tensor.New(n, c, oh, ow)
	if cap(p.argmax) < out.Len() {
		p.argmax = make([]int, out.Len())
	}
	p.argmax = p.argmax[:out.Len()]
	xd, od := x.Data(), out.Data()
	oi := 0
	for s := 0; s < n; s++ {
		for cc := 0; cc < c; cc++ {
			plane := (s*c + cc) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := math.Inf(-1)
					bestIdx := -1
					for ky := 0; ky < p.K; ky++ {
						sy := oy*p.Stride + ky
						rowBase := plane + sy*w
						for kx := 0; kx < p.K; kx++ {
							sx := ox*p.Stride + kx
							if v := xd[rowBase+sx]; v > best {
								best = v
								bestIdx = rowBase + sx
							}
						}
					}
					od[oi] = best
					p.argmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if p.inShape == nil {
		panic("nn: MaxPool2D.Backward before Forward")
	}
	dx := tensor.New(p.inShape...)
	dxd, dd := dx.Data(), dout.Data()
	for i, v := range dd {
		dxd[p.argmax[i]] += v
	}
	return dx
}
