package front

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stub is one fake backend: counts requests, answers with its id, and
// can be "killed" — a killed stub hijacks and closes every connection,
// which the client sees as a transport error (exactly what a crashed
// process produces), while the listener itself stays up so the same
// stub can recover later.
type stub struct {
	id    string
	hits  atomic.Uint64
	down  atomic.Bool
	state atomic.Int32 // healthz status override; 0 = 200
}

func (s *stub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.down.Load() {
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("stub: response writer cannot hijack")
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
		return
	}
	if r.URL.Path == "/v1/healthz" {
		if st := s.state.Load(); st != 0 {
			w.WriteHeader(int(st))
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
		return
	}
	s.hits.Add(1)
	io.Copy(io.Discard, r.Body)
	fmt.Fprint(w, s.id)
}

// cluster spins up n stub replicas and a front over them.
func cluster(t *testing.T, n int, opts Options) (*Front, []*stub, []*httptest.Server) {
	t.Helper()
	stubs := make([]*stub, n)
	servers := make([]*httptest.Server, n)
	for i := range stubs {
		stubs[i] = &stub{id: fmt.Sprintf("replica-%d", i)}
		servers[i] = httptest.NewServer(stubs[i])
		t.Cleanup(servers[i].Close)
		opts.Backends = append(opts.Backends, servers[i].URL)
	}
	f, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(f.Close)
	return f, stubs, servers
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w, w.Body.String()
}

func post(t *testing.T, h http.Handler, path, body string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w, w.Body.String()
}

// TestAffinity: the rendezvous hash must route the same body to the same
// replica every time, and spread distinct bodies across the set.
func TestAffinity(t *testing.T) {
	f, _, _ := cluster(t, 3, Options{ProbeInterval: time.Hour})
	seen := map[string]bool{}
	for key := 0; key < 24; key++ {
		body := fmt.Sprintf(`{"pixels":[%d]}`, key)
		w, first := post(t, f, "/v1/predict", body)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d", w.Code)
		}
		seen[first] = true
		for rep := 0; rep < 3; rep++ {
			if _, got := post(t, f, "/v1/predict", body); got != first {
				t.Fatalf("key %d moved from %s to %s with a stable replica set", key, first, got)
			}
		}
	}
	if len(seen) < 2 {
		t.Fatalf("24 distinct keys all routed to one replica: %v", seen)
	}
}

// TestRetryOnTransportFailure: a killed replica (connection closed, no
// response) must be retried on another replica invisibly to the client.
func TestRetryOnTransportFailure(t *testing.T) {
	f, stubs, _ := cluster(t, 3, Options{ProbeInterval: time.Hour, RetryBase: time.Millisecond})
	stubs[1].down.Store(true)
	for key := 0; key < 24; key++ {
		w, got := post(t, f, "/v1/predict", fmt.Sprintf(`{"pixels":[%d]}`, key))
		if w.Code != http.StatusOK {
			t.Fatalf("key %d: status %d body %s", key, w.Code, w.Body.String())
		}
		if got == "replica-1" {
			t.Fatalf("key %d answered by the killed replica", key)
		}
	}
	if f.retries.Load() == 0 {
		t.Fatal("no retries recorded although a replica was killed")
	}
	if f.failed.Load() != 0 {
		t.Fatalf("%d requests failed outright", f.failed.Load())
	}
}

// TestNoRetryOnHTTPError: a received response — even a 5xx — must end
// the attempt walk: the backend made a decision (e.g. a 429 shed) that
// the front door must not overrule by re-dispatching.
func TestNoRetryOnHTTPError(t *testing.T) {
	var hits atomic.Uint64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			fmt.Fprint(w, "ok")
			return
		}
		hits.Add(1)
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"shed","code":"overloaded"}`)
	}))
	defer backend.Close()
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer ok.Close()
	// Only the shedding backend is configured first; with one healthy
	// alternative present a retry would be observable as hits on it.
	f, err := New(Options{Backends: []string{backend.URL}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, _ := post(t, f, "/v1/predict", `{"pixels":[1]}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 passed through", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q not passed through", got)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("backend hit %d times for one request", n)
	}
	if f.retries.Load() != 0 {
		t.Fatalf("front retried a received 429")
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestEjectionAndReadmission: consecutive probe failures must eject a
// replica from routing; one probe success must readmit it — the
// "crashed and restarted backend rejoins automatically" guarantee.
func TestEjectionAndReadmission(t *testing.T) {
	f, stubs, _ := cluster(t, 3, Options{
		ProbeInterval: 10 * time.Millisecond,
		EjectAfter:    2,
		RetryBase:     time.Millisecond,
	})
	stubs[2].down.Store(true)
	waitFor(t, 5*time.Second, "ejection of replica-2", func() bool {
		return !f.Snapshot()[2].Healthy
	})
	if f.Snapshot()[2].Ejections == 0 {
		t.Fatal("ejection not counted")
	}
	// While ejected, traffic flows to the survivors without retries:
	// an ejected replica sorts behind every healthy one.
	before := f.retries.Load()
	for key := 0; key < 16; key++ {
		if w, _ := post(t, f, "/v1/predict", fmt.Sprintf(`{"pixels":[%d]}`, key)); w.Code != http.StatusOK {
			t.Fatalf("key %d: status %d during ejection", key, w.Code)
		}
	}
	if got := f.retries.Load(); got != before {
		t.Fatalf("%d retries while the dead replica was ejected — it was still ranked first", got-before)
	}
	// Recovery: the same listener comes back; one good probe readmits.
	stubs[2].down.Store(false)
	waitFor(t, 5*time.Second, "readmission of replica-2", func() bool {
		return f.Snapshot()[2].Healthy
	})
	hitsBefore := stubs[2].hits.Load()
	for key := 0; key < 48; key++ {
		post(t, f, "/v1/predict", fmt.Sprintf(`{"pixels":[%d]}`, key))
	}
	if stubs[2].hits.Load() == hitsBefore {
		t.Fatal("readmitted replica received no traffic")
	}
}

// TestUnhealthyProbeStatusEjects: a 503 (draining) healthz must count as
// a probe failure — a draining replica leaves the rotation without a
// crash.
func TestUnhealthyProbeStatusEjects(t *testing.T) {
	f, stubs, _ := cluster(t, 2, Options{ProbeInterval: 10 * time.Millisecond, EjectAfter: 2})
	stubs[0].state.Store(http.StatusServiceUnavailable)
	waitFor(t, 5*time.Second, "ejection of draining replica", func() bool {
		return !f.Snapshot()[0].Healthy
	})
}

// TestHedging: with hedging armed, a slow replica's request is
// duplicated to the next-best after the hedge delay and the fast
// response wins.
func TestHedging(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			fmt.Fprint(w, "ok")
			return
		}
		time.Sleep(300 * time.Millisecond)
		fmt.Fprint(w, "slow")
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "fast")
	}))
	defer fast.Close()
	f, err := New(Options{
		Backends:      []string{slow.URL, fast.URL},
		ProbeInterval: time.Hour,
		Hedge:         10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Find a key the rendezvous hash routes to the slow replica, so the
	// hedge is what saves the request.
	for key := 0; key < 64; key++ {
		body := fmt.Sprintf(`{"pixels":[%d]}`, key)
		if f.rendezvousOrder([]byte(body))[0].url != slow.URL {
			continue
		}
		start := time.Now()
		w, got := post(t, f, "/v1/predict", body)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d", w.Code)
		}
		if got != "fast" {
			t.Fatalf("slow-routed request answered by %q, not the hedge", got)
		}
		if d := time.Since(start); d >= 250*time.Millisecond {
			t.Fatalf("hedged request took %v — the hedge did not rescue it", d)
		}
		if f.hedges.Load() == 0 {
			t.Fatal("no hedge recorded")
		}
		return
	}
	t.Fatal("no key routed to the slow replica in 64 tries")
}

// TestFrontMetrics: the front door's /metrics surface must expose
// replica health and router totals.
func TestFrontMetrics(t *testing.T) {
	f, stubs, _ := cluster(t, 2, Options{ProbeInterval: time.Hour, RetryBase: time.Millisecond})
	stubs[0].down.Store(true)
	for key := 0; key < 8; key++ {
		post(t, f, "/v1/predict", fmt.Sprintf(`{"pixels":[%d]}`, key))
	}
	w, body := get(t, f.Handler(), "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	for _, want := range []string{
		"fademl_front_requests_total 8",
		"fademl_front_replica_healthy{replica=",
		"fademl_front_retries_total",
		"fademl_front_replica_proxied_total",
		"fademl_front_replica_ejections_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}
