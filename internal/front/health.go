package front

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Health-driven membership.
//
// A replica is routed while healthy and skipped while ejected. The
// prober GETs every replica's ProbePath each ProbeInterval: a 2xx
// resets the failure streak and readmits an ejected replica; anything
// else — transport error, 503 draining, 5xx — extends the streak, and
// EjectAfter consecutive failures ejects. Proxy-path transport errors
// feed the same streak, so a crashed replica usually leaves the rotation
// before the prober's next tick. Readmission needs exactly one good
// probe: a restarted backend rejoins within one probe interval with no
// operator action.

// probeLoop drives the health checks until Close.
func (f *Front) probeLoop() {
	defer f.probeWG.Done()
	ticker := time.NewTicker(f.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		f.probeAll()
		select {
		case <-f.done:
			return
		case <-ticker.C:
		}
	}
}

func (f *Front) probeAll() {
	for _, rep := range f.replicas {
		f.probe(rep)
	}
}

// probe checks one replica and applies the ejection/readmission rules.
func (f *Front) probe(rep *replica) {
	timeout := f.opts.ProbeInterval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+f.opts.ProbePath, nil)
	if err == nil {
		resp, err := f.opts.Client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ok = resp.StatusCode >= 200 && resp.StatusCode < 300
		}
	}
	if ok {
		rep.fails.Store(0)
		rep.healthy.Store(true) // readmission: one good probe suffices
		return
	}
	if fails := rep.fails.Add(1); int(fails) >= f.opts.EjectAfter {
		if rep.healthy.CompareAndSwap(true, false) {
			rep.ejections.Add(1)
		}
	}
}

// ReplicaHealth is one replica's routing state snapshot.
type ReplicaHealth struct {
	URL string `json:"url"`
	// Healthy reports whether the replica is in the routing rotation.
	Healthy bool `json:"healthy"`
	// Fails is the current consecutive-failure streak.
	Fails int `json:"fails"`
	// Ejections counts healthy→ejected transitions.
	Ejections uint64 `json:"ejections"`
	// Proxied counts responses served through this replica; Errs counts
	// transport failures against it.
	Proxied uint64 `json:"proxied"`
	Errs    uint64 `json:"errs"`
}

// Snapshot returns the per-replica routing state.
func (f *Front) Snapshot() []ReplicaHealth {
	out := make([]ReplicaHealth, len(f.replicas))
	for i, r := range f.replicas {
		out[i] = ReplicaHealth{
			URL:       r.url,
			Healthy:   r.healthy.Load(),
			Fails:     int(r.fails.Load()),
			Ejections: r.ejections.Load(),
			Proxied:   r.proxied.Load(),
			Errs:      r.errs.Load(),
		}
	}
	return out
}

// WritePrometheus renders the front door's state in the Prometheus text
// exposition format: per-replica health/traffic and router totals.
func (f *Front) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP fademl_front_requests_total Requests accepted by the front door.\n# TYPE fademl_front_requests_total counter\n")
	fmt.Fprintf(w, "fademl_front_requests_total %d\n", f.requests.Load())
	fmt.Fprintf(w, "# HELP fademl_front_retries_total Retry attempts after transport failures.\n# TYPE fademl_front_retries_total counter\n")
	fmt.Fprintf(w, "fademl_front_retries_total %d\n", f.retries.Load())
	fmt.Fprintf(w, "# HELP fademl_front_hedges_total Hedge attempts issued.\n# TYPE fademl_front_hedges_total counter\n")
	fmt.Fprintf(w, "fademl_front_hedges_total %d\n", f.hedges.Load())
	fmt.Fprintf(w, "# HELP fademl_front_failed_total Requests that exhausted every replica.\n# TYPE fademl_front_failed_total counter\n")
	fmt.Fprintf(w, "fademl_front_failed_total %d\n", f.failed.Load())

	fmt.Fprintf(w, "# HELP fademl_front_replica_healthy 1 while the replica is in the routing rotation.\n# TYPE fademl_front_replica_healthy gauge\n")
	for _, r := range f.Snapshot() {
		healthy := 0
		if r.Healthy {
			healthy = 1
		}
		fmt.Fprintf(w, "fademl_front_replica_healthy{replica=%q} %d\n", r.URL, healthy)
	}
	fmt.Fprintf(w, "# HELP fademl_front_replica_proxied_total Responses served through the replica.\n# TYPE fademl_front_replica_proxied_total counter\n")
	for _, r := range f.Snapshot() {
		fmt.Fprintf(w, "fademl_front_replica_proxied_total{replica=%q} %d\n", r.URL, r.Proxied)
	}
	fmt.Fprintf(w, "# HELP fademl_front_replica_errs_total Transport failures against the replica.\n# TYPE fademl_front_replica_errs_total counter\n")
	for _, r := range f.Snapshot() {
		fmt.Fprintf(w, "fademl_front_replica_errs_total{replica=%q} %d\n", r.URL, r.Errs)
	}
	fmt.Fprintf(w, "# HELP fademl_front_replica_ejections_total Healthy-to-ejected transitions.\n# TYPE fademl_front_replica_ejections_total counter\n")
	for _, r := range f.Snapshot() {
		fmt.Fprintf(w, "fademl_front_replica_ejections_total{replica=%q} %d\n", r.URL, r.Ejections)
	}
}
