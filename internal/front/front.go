// Package front is the multi-replica front door of the serving layer: a
// consistent-hash router over N fademl-serve backends with health-driven
// ejection, bounded retries, and optional hedging.
//
// Routing is rendezvous (highest-random-weight) hashing of the request
// content over the healthy replica set: the same image keys to the same
// replica while the set is stable, so each replica's content-addressed
// cache sees a coherent shard of the keyspace, and when a replica is
// ejected only its share of the keyspace moves — the rest of the cache
// stays warm. A background prober ejects a replica after consecutive
// health-check failures and readmits it on the first success, so a
// killed-and-restarted backend rejoins automatically.
//
// Retries are deliberately narrow: a request is retried on the next
// replica only when the transport failed outright — connection refused,
// reset, or timeout with no HTTP response received — never on a 4xx/5xx,
// because a response means the backend made a decision (a 429 shed, a
// 400 input error) that retrying elsewhere would silently overrule.
// Retries back off exponentially with deterministic jitter. Hedging
// (issuing a duplicate request to the next-best replica when the first
// is slow) exists behind Options.Hedge and is off by default: it trades
// duplicate backend load for tail latency, a trade only the operator can
// make.
package front

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mathx"
)

// maxBodyBytes bounds a buffered request body (needed for retries).
const maxBodyBytes = 64 << 20

// Options configures a Front. Backends is required; everything else has
// serving defaults.
type Options struct {
	// Backends are the replica base URLs, e.g. "http://10.0.0.1:8080".
	Backends []string
	// Client issues proxied requests and probes. nil selects a client
	// with sane connect timeouts and no overall request timeout (the
	// backends enforce their own route deadlines).
	Client *http.Client
	// ProbeInterval is the health-check cadence. <= 0 selects 1s.
	ProbeInterval time.Duration
	// ProbePath is the health endpoint probed on each backend.
	// Empty selects "/v1/healthz".
	ProbePath string
	// EjectAfter is the number of consecutive probe failures that ejects
	// a replica from routing. <= 0 selects 3.
	EjectAfter int
	// MaxRetries bounds additional attempts on other replicas after a
	// transport failure (0 keeps the default of 2; negative disables
	// retries).
	MaxRetries int
	// RetryBase is the first retry's backoff; attempt n waits
	// RetryBase << n, jittered ±50%. <= 0 selects 25ms.
	RetryBase time.Duration
	// Hedge, when positive, issues a duplicate of a safe (GET or
	// /v1/predict) request to the next-best replica if the first has not
	// answered within this long, taking whichever response arrives
	// first. 0 disables hedging (the default).
	Hedge time.Duration
	// Seed seeds the deterministic jitter RNG. 0 selects 1.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = defaultClient()
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbePath == "" {
		o.ProbePath = "/v1/healthz"
	}
	if o.EjectAfter <= 0 {
		o.EjectAfter = 3
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func defaultClient() *http.Client {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConnsPerHost = 64
	return &http.Client{Transport: t}
}

// replica is one routed backend with health accounting.
type replica struct {
	url string

	healthy   atomic.Bool
	fails     atomic.Int32  // consecutive probe/transport failures
	ejections atomic.Uint64 // healthy→ejected transitions
	proxied   atomic.Uint64 // responses served through this replica
	errs      atomic.Uint64 // transport failures against this replica
}

// Front is the router. It implements http.Handler.
type Front struct {
	opts     Options
	replicas []*replica

	mu  sync.Mutex
	rng *mathx.RNG

	requests atomic.Uint64 // proxied requests
	retries  atomic.Uint64 // retry attempts issued
	hedges   atomic.Uint64 // hedge attempts issued
	failed   atomic.Uint64 // requests that exhausted every attempt

	done      chan struct{}
	closeOnce sync.Once
	probeWG   sync.WaitGroup
}

// New builds the front door and starts the health prober.
func New(opts Options) (*Front, error) {
	if len(opts.Backends) == 0 {
		return nil, errors.New("front: no backends configured")
	}
	opts = opts.withDefaults()
	f := &Front{
		opts: opts,
		rng:  mathx.NewRNG(opts.Seed),
		done: make(chan struct{}),
	}
	for _, u := range opts.Backends {
		r := &replica{url: u}
		r.healthy.Store(true) // optimistic until the prober says otherwise
		f.replicas = append(f.replicas, r)
	}
	f.probeWG.Add(1)
	go f.probeLoop()
	return f, nil
}

// Close stops the health prober. In-flight proxied requests complete.
func (f *Front) Close() {
	f.closeOnce.Do(func() { close(f.done) })
	f.probeWG.Wait()
}

// jitter scales d by a deterministic factor in [0.5, 1.5).
func (f *Front) jitter(d time.Duration) time.Duration {
	f.mu.Lock()
	scale := 0.5 + f.rng.Float64()
	f.mu.Unlock()
	return time.Duration(float64(d) * scale)
}

// rendezvousOrder ranks replicas for a request key: healthy replicas
// first, then by highest-random-weight score, so the same key prefers
// the same replica while the healthy set is stable.
func (f *Front) rendezvousOrder(key []byte) []*replica {
	type scored struct {
		r     *replica
		score uint64
	}
	order := make([]scored, 0, len(f.replicas))
	for _, r := range f.replicas {
		h := fnv.New64a()
		h.Write([]byte(r.url))
		h.Write([]byte{0})
		h.Write(key)
		order = append(order, scored{r, h.Sum64()})
	}
	sort.Slice(order, func(i, j int) bool {
		hi, hj := order[i].r.healthy.Load(), order[j].r.healthy.Load()
		if hi != hj {
			return hi
		}
		return order[i].score > order[j].score
	})
	out := make([]*replica, len(order))
	for i, s := range order {
		out[i] = s.r
	}
	return out
}

// hedgeable reports whether a request may be duplicated: reads, and the
// deterministic /v1/predict family whose responses are bit-identical
// across replicas.
func hedgeable(r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	switch r.URL.Path {
	case "/v1/predict", "/v1/predict_batch", "/v1/defend":
		return true
	}
	return false
}

// errAllReplicasFailed is returned (as a 502) when every routed attempt
// failed at the transport.
var errAllReplicasFailed = errors.New("front: no replica reachable")

// ServeHTTP proxies one request: buffer the body, rank replicas by
// rendezvous hash, then walk the ranking with bounded jittered retries
// on transport failure. A received response — any status — ends the
// walk and streams back verbatim.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.requests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeFrontError(w, http.StatusRequestEntityTooLarge, "body_too_large", err)
		return
	}
	key := routeKey(r, body)
	order := f.rendezvousOrder(key)

	if f.opts.Hedge > 0 && hedgeable(r) && len(order) > 1 {
		f.serveHedged(w, r, body, order)
		return
	}

	attempts := f.opts.MaxRetries + 1
	if attempts > len(order) {
		attempts = len(order)
	}
	for i := 0; i < attempts; i++ {
		rep := order[i]
		if i > 0 {
			f.retries.Add(1)
			select {
			case <-time.After(f.jitter(f.opts.RetryBase << (i - 1))):
			case <-r.Context().Done():
				writeFrontError(w, http.StatusServiceUnavailable, "canceled", r.Context().Err())
				return
			}
		}
		resp, err := f.forward(r.Context(), rep, r, body)
		if err != nil {
			// Transport failure: no response was received, so retrying
			// elsewhere cannot double-apply anything.
			rep.errs.Add(1)
			rep.fails.Add(1)
			continue
		}
		rep.proxied.Add(1)
		copyResponse(w, resp)
		return
	}
	f.failed.Add(1)
	writeFrontError(w, http.StatusBadGateway, "no_replica", errAllReplicasFailed)
}

// serveHedged races the best replica against the next-best after the
// hedge delay; the first response wins and the loser is cancelled.
func (f *Front) serveHedged(w http.ResponseWriter, r *http.Request, body []byte, order []*replica) {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	type result struct {
		rep  *replica
		resp *http.Response
		err  error
	}
	results := make(chan result, 2)
	launch := func(rep *replica) {
		resp, err := f.forward(ctx, rep, r, body)
		results <- result{rep, resp, err}
	}
	go launch(order[0])
	launched, answered := 1, 0
	timer := time.NewTimer(f.opts.Hedge)
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			if launched < 2 {
				f.hedges.Add(1)
				go launch(order[1])
				launched++
			}
		case res := <-results:
			answered++
			if res.err == nil {
				res.rep.proxied.Add(1)
				copyResponse(w, res.resp)
				cancel()
				// Drain the loser so its connection is reusable.
				if launched > answered {
					go func() {
						if late := <-results; late.err == nil {
							late.resp.Body.Close()
						}
					}()
				}
				return
			}
			res.rep.errs.Add(1)
			res.rep.fails.Add(1)
			if launched < 2 {
				// First attempt failed before the hedge fired: promote
				// the hedge immediately — it is now just a retry.
				f.retries.Add(1)
				go launch(order[1])
				launched++
			} else if answered == launched {
				f.failed.Add(1)
				writeFrontError(w, http.StatusBadGateway, "no_replica", errAllReplicasFailed)
				return
			}
		case <-r.Context().Done():
			writeFrontError(w, http.StatusServiceUnavailable, "canceled", r.Context().Err())
			return
		}
	}
}

// forward issues one attempt against one replica.
func (f *Front) forward(ctx context.Context, rep *replica, r *http.Request, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, r.Method, rep.url+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	return f.opts.Client.Do(req)
}

// routeKey is the rendezvous key: the request content for POSTs (cache
// affinity — the same image keys to the same replica) and the path for
// reads.
func routeKey(r *http.Request, body []byte) []byte {
	if len(body) > 0 {
		return body
	}
	return []byte(r.Method + " " + r.URL.Path)
}

// copyResponse streams a backend response to the client verbatim.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vv := range resp.Header {
		for _, v := range vv {
			h.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func writeFrontError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\n  \"error\": %q,\n  \"code\": %q\n}\n", err.Error(), code)
}

// Handler returns the front door's HTTP surface: /metrics served
// locally, everything else proxied.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		f.WritePrometheus(w)
	})
	mux.Handle("/", f)
	return mux
}
