package serve

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// TestPredictFloat32Lane checks the fast lane end to end through the
// micro-batching path: a float32 prediction must be bit-identical to a
// direct Pipeline.Probs32 call (delivery in float64, forward in float32)
// and close to the float64 lane's answer.
func TestPredictFloat32Lane(t *testing.T) {
	pipe := servePipeline(t)
	if err := pipe.EnableFloat32(); err != nil {
		t.Fatal(err)
	}
	s := New(pipe, Options{Workers: 2, MaxBatch: 4, MaxWait: time.Millisecond, CacheSize: -1})
	defer s.Close()
	for i, img := range testImages(6) {
		p32, err := s.PredictPrec(context.Background(), img, pipeline.TM2, pipeline.Float32)
		if err != nil {
			t.Fatal(err)
		}
		if p32.Precision != pipeline.Float32 {
			t.Fatalf("image %d: reply precision %v", i, p32.Precision)
		}
		want := pipe.Probs32(img, pipeline.TM2)
		for j := range want {
			if p32.Probs[j] != want[j] {
				t.Fatalf("image %d: served f32 row differs from direct Probs32 at class %d", i, j)
			}
		}
		p64, err := s.PredictPrec(context.Background(), img, pipeline.TM2, pipeline.Float64)
		if err != nil {
			t.Fatal(err)
		}
		if p64.Class != p32.Class {
			t.Fatalf("image %d: top-1 disagrees across lanes (%d vs %d)", i, p64.Class, p32.Class)
		}
		for j := range want {
			if d := math.Abs(p64.Probs[j] - p32.Probs[j]); d > 1e-3 {
				t.Fatalf("image %d class %d: |Δprob| = %g across lanes", i, j, d)
			}
		}
	}
}

// TestPredictDefault64Unchanged pins that a request on the default lane
// is still bit-identical to the float64 pipeline — the precision split in
// process() must not perturb pure-float64 batches.
func TestPredictDefault64Unchanged(t *testing.T) {
	pipe := servePipeline(t)
	s := New(pipe, Options{Workers: 1, MaxBatch: 4, MaxWait: time.Millisecond, CacheSize: -1})
	defer s.Close()
	img := testImages(1)[0]
	pred, err := s.Predict(context.Background(), img, pipeline.TM2)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Precision != pipeline.Float64 {
		t.Fatalf("default precision = %v", pred.Precision)
	}
	want := pipe.Probs(img, pipeline.TM2)
	for j := range want {
		if pred.Probs[j] != want[j] {
			t.Fatalf("default-lane row differs from Pipeline.Probs at class %d", j)
		}
	}
}

// TestPrecisionCacheIsolation is the cache-key guarantee: the same image
// under the same threat model on different lanes must occupy two cache
// entries, and a float32 hit must return the float32 result (which is
// generally not bit-identical to the float64 one).
func TestPrecisionCacheIsolation(t *testing.T) {
	pipe := servePipeline(t)
	s := New(pipe, Options{Workers: 1, MaxBatch: 2, MaxWait: time.Millisecond, CacheSize: 64})
	defer s.Close()
	img := testImages(1)[0]
	ctx := context.Background()

	p64, err := s.PredictPrec(ctx, img, pipeline.TM3, pipeline.Float64)
	if err != nil {
		t.Fatal(err)
	}
	p32, err := s.PredictPrec(ctx, img, pipeline.TM3, pipeline.Float32)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.cache.len(); got != 2 {
		t.Fatalf("cache entries = %d, want 2 (one per lane)", got)
	}
	// Both repeats must now be hits, each bit-identical to its own lane.
	hitsBefore := s.cache.stats().Hits
	r64, err := s.PredictPrec(ctx, img, pipeline.TM3, pipeline.Float64)
	if err != nil {
		t.Fatal(err)
	}
	r32, err := s.PredictPrec(ctx, img, pipeline.TM3, pipeline.Float32)
	if err != nil {
		t.Fatal(err)
	}
	if s.cache.stats().Hits != hitsBefore+2 {
		t.Fatalf("repeat lookups were not both cache hits")
	}
	for j := range p64.Probs {
		if r64.Probs[j] != p64.Probs[j] {
			t.Fatalf("f64 cache hit differs from original at class %d", j)
		}
		if r32.Probs[j] != p32.Probs[j] {
			t.Fatalf("f32 cache hit differs from original at class %d", j)
		}
	}
	if r64.Precision != pipeline.Float64 || r32.Precision != pipeline.Float32 {
		t.Fatalf("cache hits lost their precision labels: %v / %v", r64.Precision, r32.Precision)
	}
}

// TestPrecisionMixedBatch coalesces float32 and float64 requests into the
// same micro-batches and checks each reply against its own lane.
func TestPrecisionMixedBatch(t *testing.T) {
	pipe := servePipeline(t)
	if err := pipe.EnableFloat32(); err != nil {
		t.Fatal(err)
	}
	s := New(pipe, Options{Workers: 1, MaxBatch: 8, MaxWait: 5 * time.Millisecond, CacheSize: -1})
	defer s.Close()
	imgs := testImages(8)
	type res struct {
		i    int
		pred Prediction
		err  error
	}
	ch := make(chan res, len(imgs))
	for i, img := range imgs {
		prec := pipeline.Float64
		if i%2 == 1 {
			prec = pipeline.Float32
		}
		go func(i int, prec pipeline.Precision) {
			p, err := s.PredictPrec(context.Background(), imgs[i], pipeline.TM1, prec)
			ch <- res{i, p, err}
		}(i, prec)
		_ = img
	}
	for range imgs {
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		var want []float64
		if r.i%2 == 1 {
			want = pipe.Probs32(imgs[r.i], pipeline.TM1)
		} else {
			want = pipe.Probs(imgs[r.i], pipeline.TM1)
		}
		for j := range want {
			if r.pred.Probs[j] != want[j] {
				t.Fatalf("slot %d (prec %v) differs from its lane at class %d", r.i, r.pred.Precision, j)
			}
		}
	}
}

// TestPrecisionDefaultLaneFloat32 runs a server whose default lane is
// float32: Predict without an explicit lane must serve float32 results.
func TestPrecisionDefaultLaneFloat32(t *testing.T) {
	pipe := servePipeline(t)
	if err := pipe.EnableFloat32(); err != nil {
		t.Fatal(err)
	}
	s := New(pipe, Options{
		Workers: 1, MaxBatch: 2, MaxWait: time.Millisecond,
		Precision: pipeline.Float32, CacheSize: -1,
	})
	defer s.Close()
	if s.DefaultPrecision() != pipeline.Float32 {
		t.Fatalf("DefaultPrecision = %v", s.DefaultPrecision())
	}
	img := testImages(1)[0]
	pred, err := s.Predict(context.Background(), img, pipeline.TM2)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Precision != pipeline.Float32 {
		t.Fatalf("default-lane reply precision = %v", pred.Precision)
	}
	want := pipe.Probs32(img, pipeline.TM2)
	for j := range want {
		if pred.Probs[j] != want[j] {
			t.Fatalf("f32-default reply differs from Probs32 at class %d", j)
		}
	}
}
