package serve

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/filters"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/registry"
	"repro/internal/tensor"
)

// Model table and versioned hot-swap.
//
// The server no longer assumes one global network: it serves a table of
// models, each a servedModel — a versioned identity, a prototype
// pipeline, and a private micro-batching pool (queue → batcher → warmed
// worker clones). Requests select a model by "name@version" (or bare
// name → highest loaded version); the default is an atomic pointer into
// the table, so swapping versions under live traffic is one pointer
// store:
//
//	Activate(new):  load → build pool → warm every clone → store pointer
//	                → retire old (remove from table, wait for in-flight
//	                requests, shut its pool down)
//
// In-flight requests pin their model with an acquire/release refcount,
// so the retired version keeps answering everything it admitted — the
// swap sheds nothing and fails nothing. Admission lanes, the content
// cache (whose keys carry the model identity), and the HTTP surface
// stay server-global.

// servedModel is one loaded model version: identity, prototype pipeline,
// float32 snapshot, and the private worker pool serving it.
type servedModel struct {
	id pipeline.ModelID
	// key is id.String(), the table key and the wire echo.
	key string
	// proto carries the network plus the deployment's filter and
	// acquisition; workers and attacker slots clone proto.Net.
	proto *pipeline.Pipeline
	// net32/f32err are the model's float32 lane (see Server.net32 docs in
	// earlier revisions; the lane is now per model).
	net32  *nn.Net32
	f32err error
	// inShape is the model's CHW input shape (models in one table may
	// differ in geometry; validation is per model).
	inShape []int
	pool    *pool

	loadedAt time.Time
	requests atomic.Uint64

	// inflight counts requests currently pinned to this model; retired
	// flips when the model leaves the table. A retiring model drains:
	// once retired is set and inflight reaches zero, idle closes and the
	// pool can be shut down with nothing left to answer.
	inflight atomic.Int64
	retired  atomic.Bool
	idle     chan struct{}
	idleOnce sync.Once
}

// acquire pins the model for one request. It fails only when the model
// lost a race with retirement — the caller re-resolves.
func (m *servedModel) acquire() bool {
	m.inflight.Add(1)
	if m.retired.Load() {
		m.release()
		return false
	}
	return true
}

// release unpins the model and completes a drain when it was the last
// in-flight request of a retired version.
func (m *servedModel) release() {
	if m.inflight.Add(-1) == 0 && m.retired.Load() {
		m.idleOnce.Do(func() { close(m.idle) })
	}
}

// pool is one model's micro-batching engine: the coalescing queue, the
// batcher, and the worker clones. Its goroutines register on the
// server's WaitGroup (Close waits for every pool) and on their own
// (retire waits for just this pool).
type pool struct {
	srv *Server
	m   *servedModel

	queue   chan *pending
	batches chan []*pending
	// stop aborts the batcher when the model retires. It is closed only
	// after the model's in-flight count drained to zero, so no request
	// can be waiting on this pool when it shuts down.
	stop chan struct{}
	wg   sync.WaitGroup
}

// batcher coalesces queued requests into micro-batches: flush when
// MaxBatch requests have gathered (flush-on-full) or MaxWait after the
// first request of the batch arrived (flush-on-linger), whichever is
// first. It is the sole sender on pl.batches and closes it on shutdown.
func (pl *pool) batcher() {
	s := pl.srv
	defer close(pl.batches)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var first *pending
		select {
		case first = <-pl.queue:
		case <-pl.stop:
			return
		case <-s.done:
			return
		}
		batch := append(make([]*pending, 0, s.opts.MaxBatch), first)
		timer.Reset(s.opts.MaxWait)
	fill:
		for len(batch) < s.opts.MaxBatch {
			select {
			case p := <-pl.queue:
				batch = append(batch, p)
			case <-timer.C:
				break fill
			case <-s.done:
				// Shutdown: the gathered requests are answered by the
				// waiters' own s.done select; nothing to dispatch.
				return
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		select {
		case pl.batches <- batch:
		case <-s.done:
			return
		}
	}
}

// requeue hands a dying worker's batch back to this pool's queue so its
// requests migrate to a surviving worker instead of being lost. Only the
// batcher may send on pl.batches (it closes the channel on shutdown), so
// the slots re-enter through pl.queue, which is never closed. Every
// request in the batch holds an acquire on the model, so pl.stop cannot
// close underneath the handoff; on server shutdown the waiters' own
// s.done selects answer them.
func (pl *pool) requeue(batch []*pending) {
	go func() {
		for _, p := range batch {
			select {
			case pl.queue <- p:
			case <-pl.srv.done:
				return
			}
		}
	}()
}

// newServedModel builds one table entry: prototype pipeline, per-worker
// clones — each warmed with one forward pass so the first post-swap
// batch pays no allocation — and the running pool goroutines.
func (s *Server) newServedModel(id pipeline.ModelID, net *nn.Network, net32 *nn.Net32, f32err error) *servedModel {
	m := &servedModel{
		id:       id,
		key:      id.String(),
		proto:    pipeline.NewModel(id, net, s.filter, s.acq),
		net32:    net32,
		f32err:   f32err,
		inShape:  net.InputShape(),
		loadedAt: time.Now(),
		idle:     make(chan struct{}),
	}
	pl := &pool{
		srv:     s,
		m:       m,
		queue:   make(chan *pending, 4*s.opts.MaxBatch),
		batches: make(chan []*pending, s.opts.Workers),
		stop:    make(chan struct{}),
	}
	m.pool = pl
	type workerState struct {
		wp  *pipeline.Pipeline
		w32 *nn.Net32
	}
	warm := tensor.New(m.inShape...)
	workers := make([]workerState, s.opts.Workers)
	for w := range workers {
		wp := pipeline.NewModel(id, net.Clone(), s.filter, s.acq)
		var w32 *nn.Net32
		if net32 != nil {
			w32 = net32.Clone()
		}
		// One throwaway forward per clone (both lanes) allocates every
		// scratch buffer before the pool takes live traffic.
		wp.Net.ProbsBatch([]*tensor.Tensor{warm})
		if w32 != nil {
			w32.ProbsBatch([]*tensor.Tensor{warm})
		}
		workers[w] = workerState{wp: wp, w32: w32}
	}
	for _, ws := range workers {
		ws := ws
		s.wg.Add(1)
		pl.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer pl.wg.Done()
			for batch := range pl.batches {
				if s.opts.Chaos.takeKill() {
					// Injected worker death: the batch migrates back to
					// the queue, the goroutine is gone for good.
					pl.requeue(batch)
					return
				}
				s.process(m, ws.wp, ws.w32, batch)
			}
		}()
	}
	s.wg.Add(1)
	pl.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer pl.wg.Done()
		pl.batcher()
	}()
	return m
}

// retire drains and shuts down a model that has already left the table:
// wait for every request that acquired it, then stop its pool. New
// requests cannot reach it (resolveModel no longer finds it; acquire
// bounces), so the wait is bounded by the in-flight work.
func (s *Server) retire(m *servedModel) {
	m.retired.Store(true)
	if m.inflight.Load() == 0 {
		m.idleOnce.Do(func() { close(m.idle) })
	}
	<-m.idle
	close(m.pool.stop)
	m.pool.wg.Wait()
}

// removeModel deletes m from the table (the precondition of retire).
func (s *Server) removeModel(m *servedModel) {
	s.modelMu.Lock()
	if s.models[m.key] == m {
		delete(s.models, m.key)
	}
	s.modelMu.Unlock()
}

// resolveModel pins the model a request runs on: "" is the active
// default, "name@version" an exact loaded entry, a bare name the highest
// loaded version of that name. Per-request selection never loads from
// the registry — load via /v1/models (or LoadModel) first. The returned
// model is acquired; the caller must release it.
func (s *Server) resolveModel(spec string) (*servedModel, error) {
	for {
		m, err := s.pickModel(spec)
		if err != nil {
			return nil, err
		}
		if m.acquire() {
			return m, nil
		}
		// Lost a race with a retirement between pick and pin; the table
		// (or the active pointer) has already moved on — re-resolve.
	}
}

func (s *Server) pickModel(spec string) (*servedModel, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		if m := s.active.Load(); m != nil {
			return m, nil
		}
		return nil, errors.New("serve: no active model")
	}
	if m := s.lookupLoaded(spec); m != nil {
		return m, nil
	}
	return nil, fmt.Errorf("serve: model %q is not loaded (load it via /v1/models first)", spec)
}

// lookupLoaded finds a table entry by exact "name@version" key or, for a
// bare name, the highest loaded version. nil when absent.
func (s *Server) lookupLoaded(spec string) *servedModel {
	s.modelMu.Lock()
	defer s.modelMu.Unlock()
	if m, ok := s.models[spec]; ok {
		return m
	}
	if strings.Contains(spec, "@") {
		return nil
	}
	var best *servedModel
	for _, m := range s.models {
		if m.id.Name != spec {
			continue
		}
		if best == nil || versionOrdinal(m.id.Version) > versionOrdinal(best.id.Version) {
			best = m
		}
	}
	return best
}

// versionOrdinal orders "v<n>" version labels; unparseable labels sort
// first.
func versionOrdinal(v string) int {
	if !strings.HasPrefix(v, "v") {
		return -1
	}
	n, err := strconv.Atoi(v[1:])
	if err != nil {
		return -1
	}
	return n
}

// modelIDOf converts a registry manifest into the pipeline identity.
func modelIDOf(man registry.Manifest) pipeline.ModelID {
	return pipeline.ModelID{Name: man.Name, Version: man.Version, WeightHash: man.WeightsSHA256}
}

// ensureLoaded returns the served model for spec, loading and warming it
// from Options.Registry when it is not already in the table. A bare name
// resolves to the registry's latest version when a registry is
// configured (falling back to the highest loaded version for names the
// registry does not know). Callers must hold s.swapMu — loads are
// serialized with swaps so the table never races a concurrent build.
func (s *Server) ensureLoaded(spec string) (*servedModel, error) {
	ref, err := registry.ParseRef(spec)
	if err != nil {
		return nil, err
	}
	if ref.Version == "" && s.opts.Registry != nil {
		if resolved, rerr := s.opts.Registry.Resolve(spec); rerr == nil {
			ref = resolved
		}
	}
	if m := s.lookupLoaded(ref.String()); m != nil {
		return m, nil
	}
	if s.opts.Registry == nil {
		return nil, fmt.Errorf("serve: model %q is not loaded and no registry is configured (Options.Registry)", spec)
	}
	if ref.Version == "" {
		return nil, fmt.Errorf("serve: model %q is neither loaded nor in the registry", spec)
	}
	rm, err := s.opts.Registry.Load(ref)
	if err != nil {
		return nil, err
	}
	m := s.newServedModel(modelIDOf(rm.Manifest), rm.Net, rm.Net32, rm.F32Err)
	s.modelMu.Lock()
	s.models[m.key] = m
	s.modelMu.Unlock()
	return m, nil
}

// LoadModel loads (and warms) a registry model into the table without
// activating it, returning the resolved identity. Already-loaded specs
// are idempotent.
func (s *Server) LoadModel(spec string) (pipeline.ModelID, error) {
	if err := s.refuseNew(); err != nil {
		return pipeline.ModelID{}, err
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	m, err := s.ensureLoaded(spec)
	if err != nil {
		return pipeline.ModelID{}, err
	}
	return m.id, nil
}

// Activate makes spec the default model — the one answering requests
// that name no model — loading and warming it first if needed. The
// switch itself is one atomic pointer store: requests admitted before it
// finish on the old version, requests after it run on the new one, and
// nothing is shed or failed in between. The previous default is then
// retired (removed from the table, drained, its pool shut down) unless
// keep is true, which leaves it loaded for per-request selection.
func (s *Server) Activate(spec string, keep bool) (pipeline.ModelID, error) {
	if err := s.refuseNew(); err != nil {
		return pipeline.ModelID{}, err
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	m, err := s.ensureLoaded(spec)
	if err != nil {
		return pipeline.ModelID{}, err
	}
	old := s.active.Swap(m)
	if old == m {
		return m.id, nil
	}
	s.swaps.Add(1)
	if old != nil && !keep {
		s.removeModel(old)
		s.retire(old)
	}
	return m.id, nil
}

// UnloadModel retires a non-active model from the table, freeing its
// worker clones. The active model cannot be unloaded — activate another
// version first.
func (s *Server) UnloadModel(spec string) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	m := s.lookupLoaded(strings.TrimSpace(spec))
	if m == nil {
		return fmt.Errorf("serve: model %q is not loaded", spec)
	}
	if s.active.Load() == m {
		return fmt.Errorf("serve: model %s is active; activate another version before unloading", m.key)
	}
	s.removeModel(m)
	s.retire(m)
	return nil
}

// ActiveModel returns the identity of the current default model.
func (s *Server) ActiveModel() pipeline.ModelID { return s.active.Load().id }

// ModelStatus is one table entry's snapshot (the /v1/models listing).
type ModelStatus struct {
	Model      string `json:"model"`
	Name       string `json:"name"`
	Version    string `json:"version"`
	WeightHash string `json:"weight_hash"`
	Active     bool   `json:"active"`
	Requests   uint64 `json:"requests"`
	LoadedAt   string `json:"loaded_at"`
}

// Models snapshots the loaded table, active entry first, then by key.
func (s *Server) Models() []ModelStatus {
	activeKey := ""
	if m := s.active.Load(); m != nil {
		activeKey = m.key
	}
	s.modelMu.Lock()
	loaded := make([]*servedModel, 0, len(s.models))
	for _, m := range s.models {
		loaded = append(loaded, m)
	}
	s.modelMu.Unlock()
	sort.Slice(loaded, func(i, j int) bool {
		if (loaded[i].key == activeKey) != (loaded[j].key == activeKey) {
			return loaded[i].key == activeKey
		}
		return loaded[i].key < loaded[j].key
	})
	out := make([]ModelStatus, len(loaded))
	for i, m := range loaded {
		out[i] = ModelStatus{
			Model:      m.key,
			Name:       m.id.Name,
			Version:    m.id.Version,
			WeightHash: m.id.WeightHash,
			Active:     m.key == activeKey,
			Requests:   m.requests.Load(),
			LoadedAt:   m.loadedAt.UTC().Format(time.RFC3339),
		}
	}
	return out
}

// NewFromModel builds and starts a server over a registry-loaded model:
// the served pipeline carries the model's name@version identity, the
// float32 snapshot is reused from the registry's per-version cache, and
// hot-swapping to sibling versions works out of the box when
// opts.Registry points at the same store.
func NewFromModel(m *registry.Model, filter filters.Filter, acq *pipeline.Acquisition, opts Options) *Server {
	if m == nil {
		panic("serve: nil registry model")
	}
	return newServer(modelIDOf(m.Manifest), m.Net, m.Net32, m.F32Err, filter, acq, opts)
}
