package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// serveNet returns a small deterministic (untrained) CNN: serving-layer
// tests check bit-exact equivalence and concurrency behaviour, not
// accuracy, so skipping training keeps the fixture fast.
var (
	netOnce sync.Once
	netInst *nn.Network
	netErr  error
)

func serveNet(t testing.TB) *nn.Network {
	t.Helper()
	netOnce.Do(func() { netInst, netErr = nn.TinyCNN(3, 16, 5, mathx.NewRNG(3)) })
	if netErr != nil {
		t.Fatalf("serve fixture: %v", netErr)
	}
	return netInst
}

func servePipeline(t testing.TB) *pipeline.Pipeline {
	return pipeline.New(serveNet(t), filters.NewLAP(8), pipeline.DefaultAcquisition(11))
}

func testImages(n int) []*tensor.Tensor {
	imgs := make([]*tensor.Tensor, n)
	for i := range imgs {
		img := gtsrb.Canonical(i%gtsrb.NumClasses, 16)
		if i >= gtsrb.NumClasses {
			img = img.Clone()
			img.ScaleInPlace(0.8)
		}
		imgs[i] = img
	}
	return imgs
}

// TestServeEquivalence is the core serving guarantee: a response that went
// through the coalescing queue and a batched worker forward is
// bit-identical to a direct Pipeline.Probs call for the same image and
// threat model.
func TestServeEquivalence(t *testing.T) {
	pipe := servePipeline(t)
	s := New(pipe, Options{Workers: 2, MaxBatch: 8, MaxWait: time.Millisecond})
	defer s.Close()

	imgs := testImages(12)
	tms := []pipeline.ThreatModel{pipeline.TM1, pipeline.TM2, pipeline.TM3}

	type job struct {
		img *tensor.Tensor
		tm  pipeline.ThreatModel
	}
	var jobs []job
	for i, img := range imgs {
		jobs = append(jobs, job{img, tms[i%len(tms)]})
	}
	want := make([][]float64, len(jobs))
	for i, j := range jobs {
		want[i] = pipe.Probs(j.img, j.tm)
	}

	got := make([]Prediction, len(jobs))
	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			pred, err := s.Predict(context.Background(), j.img, j.tm)
			if err != nil {
				errs <- err
				return
			}
			got[i] = pred
		}(i, j)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := range jobs {
		if len(got[i].Probs) != len(want[i]) {
			t.Fatalf("job %d: %d probs, want %d", i, len(got[i].Probs), len(want[i]))
		}
		for c, v := range want[i] {
			if got[i].Probs[c] != v {
				t.Fatalf("job %d class %d: served %v, direct %v — served response not bit-identical",
					i, c, got[i].Probs[c], v)
			}
		}
		if best := mathx.ArgMax(want[i]); got[i].Class != best || got[i].Prob != want[i][best] {
			t.Fatalf("job %d: class/prob mismatch", i)
		}
		if got[i].TM != jobs[i].tm {
			t.Fatalf("job %d: echoed TM %v, want %v", i, got[i].TM, jobs[i].tm)
		}
	}
}

// TestServeFlushOnFull pins the flush-on-full path: with an effectively
// infinite linger, exactly MaxBatch concurrent requests must still be
// dispatched (as a single full batch) — if the full trigger were broken
// this test would time out.
func TestServeFlushOnFull(t *testing.T) {
	pipe := servePipeline(t)
	const maxBatch = 4
	s := New(pipe, Options{Workers: 1, MaxBatch: maxBatch, MaxWait: time.Hour})
	defer s.Close()

	imgs := testImages(maxBatch)
	var wg sync.WaitGroup
	errs := make(chan error, maxBatch)
	for _, img := range imgs {
		wg.Add(1)
		go func(img *tensor.Tensor) {
			defer wg.Done()
			if _, err := s.Predict(context.Background(), img, pipeline.TM3); err != nil {
				errs <- err
			}
		}(img)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Batches != 1 || st.MeanBatchOccupancy != maxBatch {
		t.Fatalf("flush-on-full: %d batches with occupancy %.1f, want 1 batch of %d",
			st.Batches, st.MeanBatchOccupancy, maxBatch)
	}
}

// TestServeFlushOnLinger pins the flush-on-linger path: a lone request in
// a huge-capacity batch must be answered once MaxWait elapses.
func TestServeFlushOnLinger(t *testing.T) {
	pipe := servePipeline(t)
	s := New(pipe, Options{Workers: 1, MaxBatch: 64, MaxWait: 2 * time.Millisecond})
	defer s.Close()

	start := time.Now()
	if _, err := s.Predict(context.Background(), testImages(1)[0], pipeline.TM2); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("lone request took %v — linger flush not firing", waited)
	}
	st := s.Stats()
	if st.Batches != 1 || st.Requests != 1 || st.MeanBatchOccupancy != 1 {
		t.Fatalf("linger stats = %+v, want one batch of one", st)
	}
}

// TestServeSoak is the short -race soak: concurrent clients mixing threat
// models and PredictBatch against one server, every response checked
// against the direct path.
func TestServeSoak(t *testing.T) {
	pipe := servePipeline(t)
	s := New(pipe, Options{Workers: 2, MaxBatch: 8, MaxWait: 500 * time.Microsecond})
	defer s.Close()

	imgs := testImages(6)
	tms := []pipeline.ThreatModel{pipeline.TM1, pipeline.TM2, pipeline.TM3}
	want := make(map[int]map[pipeline.ThreatModel][]float64)
	for i, img := range imgs {
		want[i] = make(map[pipeline.ThreatModel][]float64)
		for _, tm := range tms {
			want[i][tm] = pipe.Probs(img, tm)
		}
	}

	const clients, reqs = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < reqs; r++ {
				i := (c + r) % len(imgs)
				tm := tms[(c+r)%len(tms)]
				if c%3 == 0 && r%5 == 0 {
					preds, err := s.PredictBatch(context.Background(), imgs, tm)
					if err != nil {
						errs <- err
						return
					}
					for k, p := range preds {
						if p.Prob != want[k][tm][p.Class] {
							errs <- errMismatch
							return
						}
					}
					continue
				}
				pred, err := s.Predict(context.Background(), imgs[i], tm)
				if err != nil {
					errs <- err
					return
				}
				for cls, v := range want[i][tm] {
					if pred.Probs[cls] != v {
						errs <- errMismatch
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Requests == 0 || st.Batches == 0 {
		t.Fatalf("soak recorded no traffic: %+v", st)
	}
	if st.MeanBatchOccupancy < 1 {
		t.Fatalf("mean occupancy %.2f < 1", st.MeanBatchOccupancy)
	}
	t.Logf("soak: %d requests in %d batches (occupancy %.2f, p50 %.2fms, p99 %.2fms)",
		st.Requests, st.Batches, st.MeanBatchOccupancy, st.P50LatencyMs, st.P99LatencyMs)
}

var errMismatch = errorString("served response differs from direct pipeline call")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestServeValidation(t *testing.T) {
	pipe := servePipeline(t)
	s := New(pipe, Options{Workers: 1, MaxBatch: 2, MaxWait: time.Millisecond})
	defer s.Close()
	ctx := context.Background()

	if _, err := s.Predict(ctx, nil, pipeline.TM2); err == nil {
		t.Error("nil image accepted")
	}
	if _, err := s.Predict(ctx, tensor.New(3, 8, 8), pipeline.TM2); err == nil {
		t.Error("wrong-shape image accepted")
	}
	if _, err := s.Predict(ctx, testImages(1)[0], pipeline.ThreatModel(9)); err == nil {
		t.Error("bad threat model accepted")
	}
	// Default TM fills in for the zero value.
	pred, err := s.Predict(ctx, testImages(1)[0], 0)
	if err != nil {
		t.Fatalf("default TM predict: %v", err)
	}
	if pred.TM != pipeline.TM2 {
		t.Errorf("default TM = %v, want TM2", pred.TM)
	}
}

func TestServeClose(t *testing.T) {
	pipe := servePipeline(t)
	s := New(pipe, Options{Workers: 1, MaxBatch: 2, MaxWait: time.Millisecond})
	s.Close()
	s.Close() // idempotent
	if _, err := s.Predict(context.Background(), testImages(1)[0], pipeline.TM2); err != ErrServerClosed {
		t.Fatalf("Predict after Close = %v, want ErrServerClosed", err)
	}
	if _, err := s.PredictBatch(context.Background(), testImages(2), pipeline.TM2); err != ErrServerClosed {
		t.Fatalf("PredictBatch after Close = %v, want ErrServerClosed", err)
	}
}

func TestServeContextCancel(t *testing.T) {
	pipe := servePipeline(t)
	// A server whose batcher lingers forever with a huge batch target never
	// answers a lone request — the client's context must get it out.
	s := New(pipe, Options{Workers: 1, MaxBatch: 64, MaxWait: time.Hour})
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Predict(ctx, testImages(1)[0], pipeline.TM2); err != context.DeadlineExceeded {
		t.Fatalf("Predict under cancelled context = %v, want deadline exceeded", err)
	}
}

// TestServeShedsCanceled pins the overload-shedding path: a request whose
// client gave up (canceled context) while waiting in the batch must not
// cost the worker a delivery + forward, and must not distort the
// occupancy counters.
func TestServeShedsCanceled(t *testing.T) {
	pipe := servePipeline(t)
	s := New(pipe, Options{Workers: 1, MaxBatch: 2, MaxWait: time.Hour})
	defer s.Close()
	imgs := testImages(2)

	ctxA, cancelA := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	go func() {
		_, err := s.Predict(ctxA, imgs[0], pipeline.TM3)
		errA <- err
	}()
	// Wait until A is definitely enqueued (Requests counts enqueues) so
	// the second request below is guaranteed to fill the 2-slot batch.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Requests < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request A never enqueued")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancelA()

	pred, err := s.Predict(context.Background(), imgs[1], pipeline.TM3)
	if err != nil {
		t.Fatal(err)
	}
	want := pipe.Probs(imgs[1], pipeline.TM3)
	if pred.Prob != want[pred.Class] {
		t.Fatal("live request's response wrong after shedding a neighbour")
	}
	if e := <-errA; e != context.Canceled {
		t.Fatalf("canceled client got %v, want context.Canceled", e)
	}
	st := s.Stats()
	if st.Batches != 1 || st.MeanBatchOccupancy != 1 {
		t.Fatalf("shed slot still counted as processed: %+v", st)
	}
}
