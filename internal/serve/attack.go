package serve

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/attacks"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/filters"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// Robustness-as-a-service: the serving layer exposes the attack API v2
// next to plain inference. /v1/attack crafts one adversarial example
// against the deployed pipeline and /v1/evaluate sweeps fooling rates
// over attack spec × filter spec × threat model — both under a hard server-side budget
// (Options.AttackBudget / AttackTimeout), cancellable through the request
// context, and capped at Options.AttackWorkers concurrent crafting jobs
// so attack traffic cannot starve the prediction pool.

// maxEvalCells bounds one /v1/evaluate request's attack × tm × filter ×
// case grid.
const maxEvalCells = 256

// ErrAttacksDisabled is returned when Options.AttackWorkers < 0 disabled
// the robustness endpoints.
var ErrAttacksDisabled = errors.New("serve: attack endpoints disabled")

// attacker is one crafting slot: a private weight-sharing pipeline clone
// an attack optimizes against without touching the prediction pools. The
// clone is rebuilt lazily when the slot is acquired for a different
// model version than it last served (slots are held exclusively, so the
// rebuild races nothing).
type attacker struct {
	key  string
	pipe *pipeline.Pipeline
}

// AttackRequest describes one server-side crafting job.
type AttackRequest struct {
	// Spec is the attack spec string, e.g. "pgd(eps=0.03,steps=40)".
	Spec string
	// Image is the clean image; nil renders the canonical Source sign via
	// Options.Render.
	Image *tensor.Tensor
	// Source and Target are the scenario classes (Target may be
	// attacks.Untargeted).
	Source, Target int
	// TM is the threat model for the deployed-side measurement; 0 selects
	// the server default (TM3 when the default is the unfiltered TM1).
	TM pipeline.ThreatModel
	// FilterAware wraps the attack in FAdeML so it models the deployed
	// pre-processing (and acquisition under TM2).
	FilterAware bool
	// Adaptive, when non-empty, overrides FilterAware with an explicit
	// crafting mode spec: "blind", "bpda", or "eot(draws=N)" (see
	// attacks.ParseAdaptive).
	Adaptive string
	// Model selects the attacked model version ("" = active default; see
	// Server.PredictModel for the reference syntax).
	Model string
}

// Attack crafts one adversarial example against the deployed pipeline
// under the server-side budget and measures it under TM-I and the
// request's threat model. The request context cancels crafting at
// iteration granularity; a budget-cut run still returns its best-so-far
// example with Outcome.AttackerResult.Truncated set.
func (s *Server) Attack(ctx context.Context, req AttackRequest) (*core.Outcome, error) {
	if s.attackers == nil {
		return nil, ErrAttacksDisabled
	}
	if err := s.refuseNew(); err != nil {
		return nil, err
	}
	releaseLane, err := s.bulk.admit(1)
	if err != nil {
		return nil, err
	}
	defer releaseLane()
	m, err := s.resolveModel(req.Model)
	if err != nil {
		return nil, err
	}
	defer m.release()
	tm, err := s.attackTM(req.TM)
	if err != nil {
		return nil, err
	}
	atk, err := attacks.Parse(req.Spec)
	if err != nil {
		return nil, err
	}
	var mode attacks.AdaptiveMode
	if req.Adaptive != "" {
		if mode, err = attacks.ParseAdaptive(req.Adaptive); err != nil {
			return nil, err
		}
	}
	img, err := s.caseImage(m, req.Image, req.Source)
	if err != nil {
		return nil, err
	}
	a, release, err := s.acquireAttacker(ctx, m)
	if err != nil {
		return nil, err
	}
	defer release()
	ctx, cancel := s.attackContext(ctx)
	defer cancel()
	return core.Execute(ctx, core.Run{
		Pipeline:    a.pipe,
		Attack:      atk,
		FilterAware: req.FilterAware,
		Adaptive:    mode,
		Seed:        evalEOTSeed,
		TM:          tm,
		Budget:      s.opts.AttackBudget,
	}, img, req.Source, req.Target)
}

// EvalCase is one source→target scenario of an evaluation sweep.
type EvalCase struct {
	Source int
	Target int
	// Image optionally overrides the rendered canonical source sign.
	Image *tensor.Tensor
}

// EvaluateRequest describes a fooling-rate sweep: every attack spec ×
// threat model × filter spec × case cell crafts one adversarial example
// and measures it through the deployed pipeline.
type EvaluateRequest struct {
	// Specs are attack spec strings.
	Specs []string
	// TMs are the threat models to deliver under (default: the server's
	// attack threat model).
	TMs []pipeline.ThreatModel
	// Filters are filter spec strings overriding the deployed
	// pre-processing per series ("none" measures the unfiltered
	// deployment; "chain(...)" composes). Empty sweeps the deployed
	// filter only. Filter-blind crafting (FilterAware false) runs once
	// per attack × case and is shared across this axis — cells of the
	// same example echo the same Queries/Truncated accounting.
	Filters []string
	// Cases are the scenarios (default: Options.EvalCases).
	Cases []EvalCase
	// FilterAware crafts filter-aware (FAdeML) instead of filter-blind.
	FilterAware bool
	// Adaptive, when non-empty, replaces the single FilterAware crafting
	// mode with an explicit axis of crafting modes — "blind", "bpda",
	// "eot(draws=N)" — so one sweep measures the same attack × tm ×
	// filter × case grid under several attacker strengths. Sweeps whose
	// axis includes "blind" plus at least one adaptive mode also report
	// per-series fooling-rate gaps (EvaluateResult.Gaps), the honest
	// robustness number for a randomized defense. Blind crafting is
	// shared across the tm × filter axes as before; bpda and eot craft
	// per cell (their optimization folds the cell's chain in).
	Adaptive []string
	// Model selects the evaluated model version ("" = active default); it
	// is pinned for the whole sweep, so a hot-swap mid-sweep cannot mix
	// versions inside one result grid.
	Model string
	// Detector adds the detection axis: every crafted example's TM-I
	// view is scored against this detector spec (bare "detect" for the
	// default ensemble) and each series reports detection rate at the
	// calibrated threshold plus threshold-free ROC AUC over
	// clean-vs-adversarial scores. Empty inherits the server's configured
	// detector; "none" disables detection for this sweep.
	Detector string
}

// EvalCell is one measured grid cell.
type EvalCell struct {
	// Attack is the crafting attack's canonical Name().
	Attack string `json:"attack"`
	// TM is the delivery threat model of the deployed measurement.
	TM pipeline.ThreatModel `json:"-"`
	// Filter is the canonical Name() of the pre-processing the cell was
	// measured through (the deployed filter unless overridden).
	Filter string `json:"filter"`
	// Adaptive is the crafting mode the cell's example was produced under
	// ("blind", "bpda", "eot(draws=N)").
	Adaptive string `json:"adaptive"`
	// Source and Target are the case classes.
	Source int `json:"source"`
	Target int `json:"target"`
	// TM1Pred/Conf is the unfiltered view of the adversarial example;
	// DeployedPred/Conf the view through the pipeline under TM.
	TM1Pred      int     `json:"tm1_pred"`
	TM1Conf      float64 `json:"tm1_conf"`
	DeployedPred int     `json:"deployed_pred"`
	DeployedConf float64 `json:"deployed_conf"`
	// Fooled reports goal achievement on the deployed view: the targeted
	// class was forced (or, untargeted, the source class was left).
	Fooled bool `json:"fooled"`
	// Truncated and Queries echo the crafting run's budget accounting.
	Truncated bool `json:"truncated"`
	Queries   int  `json:"queries"`
	// Detection carries the detector verdict on the example's TM-I view
	// when the sweep ran with a detection axis; nil otherwise.
	Detection *CellDetection `json:"detection,omitempty"`
}

// CellDetection is the detection-axis verdict of one grid cell: the
// crafted example's TM-I view scored against the sweep's detector.
type CellDetection struct {
	// Score is the detector's aggregated discrepancy for the adversarial
	// example.
	Score float64 `json:"score"`
	// Detected reports Score > the detector's calibrated threshold.
	Detected bool `json:"detected"`
}

// EvalSummary aggregates one attack × adaptive mode × threat model ×
// filter series.
type EvalSummary struct {
	Attack string               `json:"attack"`
	TM     pipeline.ThreatModel `json:"-"`
	Filter string               `json:"filter"`
	// Adaptive is the series' crafting mode.
	Adaptive string `json:"adaptive"`
	// FoolingRate is fooled cells / cells.
	FoolingRate float64 `json:"fooling_rate"`
	// Truncated counts budget-cut crafting runs in the series.
	Truncated int `json:"truncated"`
	Cells     int `json:"cells"`
	// Detection aggregates the series' detection axis when the sweep ran
	// with a detector; nil otherwise.
	Detection *SummaryDetection `json:"detection,omitempty"`
}

// SummaryDetection aggregates the detection axis of one evaluation
// series: how often the detector catches this attack's examples at its
// calibrated threshold, and how separable adversarial scores are from
// clean scores independent of any threshold.
type SummaryDetection struct {
	// Detector is the canonical Name() of the detector that scored the
	// series.
	Detector string `json:"detector"`
	// Threshold is the flag cutoff in force during the sweep.
	Threshold float64 `json:"threshold"`
	// Rate is detected cells / cells — the detection rate at Threshold.
	Rate float64 `json:"rate"`
	// CleanFPR is the fraction of the sweep's clean case images the
	// detector flags at Threshold (shared across every series of the
	// sweep — the case set does not vary per series).
	CleanFPR float64 `json:"clean_fpr"`
	// AUC is the threshold-free area under the ROC over the series'
	// adversarial scores versus the sweep's clean scores.
	AUC float64 `json:"auc"`
}

// EvalGap compares one adaptive series against its blind baseline: the
// fooling-rate increase an attacker gains by modelling the deployed
// chain honestly instead of ignoring it. A randomized defense whose
// blind fooling rate looks low but whose EOT gap is large is not robust
// — it was only obfuscating its gradients.
type EvalGap struct {
	Attack string               `json:"attack"`
	TM     pipeline.ThreatModel `json:"-"`
	Filter string               `json:"filter"`
	// Adaptive is the stronger mode being compared against blind.
	Adaptive string `json:"adaptive"`
	// BlindRate and AdaptiveRate are the two series' fooling rates.
	BlindRate    float64 `json:"blind_rate"`
	AdaptiveRate float64 `json:"adaptive_rate"`
	// Gap is AdaptiveRate − BlindRate.
	Gap float64 `json:"gap"`
}

// EvaluateResult is the sweep outcome.
type EvaluateResult struct {
	Cells     []EvalCell
	Summaries []EvalSummary
	// Gaps holds the blind-vs-adaptive fooling-rate comparisons when the
	// request's Adaptive axis contained "blind" plus at least one other
	// mode; nil otherwise.
	Gaps []EvalGap
}

// Evaluate runs the fooling-rate sweep. Crafting happens on the attack
// worker slots under the per-cell server budget; the deployed-side
// measurements stream through the micro-batching prediction pool, so an
// evaluation coalesces with live prediction traffic. Cancelling ctx
// aborts the sweep between cells with the context error.
func (s *Server) Evaluate(ctx context.Context, req EvaluateRequest) (*EvaluateResult, error) {
	if s.attackers == nil {
		return nil, ErrAttacksDisabled
	}
	if err := s.refuseNew(); err != nil {
		return nil, err
	}
	releaseLane, err := s.bulk.admit(1)
	if err != nil {
		return nil, err
	}
	defer releaseLane()
	m, err := s.resolveModel(req.Model)
	if err != nil {
		return nil, err
	}
	defer m.release()
	ctx, cancelRoute := routeContext(ctx, s.opts.EvaluateTimeout)
	defer cancelRoute()
	if len(req.Specs) == 0 {
		return nil, errors.New("serve: evaluate needs at least one attack spec")
	}
	tms := req.TMs
	if len(tms) == 0 {
		tm, err := s.attackTM(0)
		if err != nil {
			return nil, err
		}
		tms = []pipeline.ThreatModel{tm}
	}
	for _, tm := range tms {
		if _, err := s.attackTM(tm); err != nil {
			return nil, err
		}
	}
	cases := req.Cases
	if len(cases) == 0 {
		cases = s.opts.EvalCases
	}
	if len(cases) == 0 {
		return nil, errors.New("serve: evaluate needs cases (none in the request, none configured)")
	}
	// The filters axis: each entry overrides the deployed pre-processing
	// for one series; a nil entry keeps the deployment as-is.
	flts := []filters.Filter{nil}
	if len(req.Filters) > 0 {
		flts = make([]filters.Filter, len(req.Filters))
		for i, spec := range req.Filters {
			f, err := filters.Parse(spec)
			if err != nil {
				return nil, err
			}
			if f == nil {
				f = filters.Identity{}
			}
			flts[i] = f
		}
	}
	// The adaptive axis: explicit crafting modes, or the single legacy
	// mode FilterAware selects (blind, or bpda — FAdeML through the
	// deployed chain — which is what FilterAware always meant).
	modes := []attacks.AdaptiveMode{{Kind: attacks.AdaptiveBlind}}
	if req.FilterAware {
		modes[0].Kind = attacks.AdaptiveBPDA
	}
	if len(req.Adaptive) > 0 {
		modes = make([]attacks.AdaptiveMode, len(req.Adaptive))
		for i, spec := range req.Adaptive {
			mode, err := attacks.ParseAdaptive(spec)
			if err != nil {
				return nil, err
			}
			modes[i] = mode
		}
	}
	if cells := len(req.Specs) * len(modes) * len(tms) * len(flts) * len(cases); cells > maxEvalCells {
		return nil, fmt.Errorf("serve: evaluate grid of %d cells exceeds the %d-cell cap", cells, maxEvalCells)
	}
	// The detection axis: an explicit spec overrides the deployed
	// detector; "none" parses to nil and turns the axis off.
	det := s.opts.Detector
	if req.Detector != "" {
		d, err := detect.Parse(req.Detector)
		if err != nil {
			return nil, err
		}
		det = d
	}
	// Clean scores anchor the axis: scored once per case (the case set is
	// series-invariant) they give the sweep's operating clean-FPR and the
	// negative class of every per-series ROC.
	var cleanScores []float64
	cleanFPR := 0.0
	if det != nil {
		cleanScores = make([]float64, len(cases))
		flagged := 0
		for i, ec := range cases {
			img, err := s.caseImage(m, ec.Image, ec.Source)
			if err != nil {
				return nil, err
			}
			sc, _, err := s.detectOn(ctx, m, det, img)
			if err != nil {
				return nil, fmt.Errorf("serve: evaluate clean detection on case %d→%d: %w", ec.Source, ec.Target, err)
			}
			cleanScores[i] = sc.Score
			if sc.Score > det.Threshold {
				flagged++
			}
		}
		cleanFPR = float64(flagged) / float64(len(cases))
	}

	res := &EvaluateResult{}
	// A filter-blind crafted example depends only on (spec, case) — the
	// measured filter and delivery model never enter the optimization —
	// so one crafting run is shared across the tm × filter axes instead
	// of re-spending the attack budget per series. Adaptive crafting
	// (bpda, eot) folds the cell's chain into the attack and is per-cell.
	type craftKey struct {
		spec    string
		caseIdx int
	}
	crafted := map[craftKey]*craftedCell{}
	for _, spec := range req.Specs {
		for _, mode := range modes {
			for _, tm := range tms {
				for _, flt := range flts {
					summary := EvalSummary{TM: tm, Adaptive: mode.Name()}
					var advScores []float64
					detected := 0
					for ci, ec := range cases {
						if err := ctx.Err(); err != nil {
							return nil, err
						}
						blind := mode.Kind == attacks.AdaptiveBlind
						var pre *craftedCell
						if blind {
							pre = crafted[craftKey{spec, ci}]
						}
						cell, cc, err := s.evaluateCell(ctx, m, spec, tm, flt, ec, mode, det, pre)
						if err != nil {
							return nil, fmt.Errorf("serve: evaluate %s (%s) under %v on %d→%d: %w",
								spec, mode.Name(), tm, ec.Source, ec.Target, err)
						}
						if blind {
							crafted[craftKey{spec, ci}] = cc
						}
						summary.Attack = cell.Attack
						summary.Filter = cell.Filter
						summary.Cells++
						if cell.Fooled {
							summary.FoolingRate++
						}
						if cell.Truncated {
							summary.Truncated++
						}
						if cell.Detection != nil {
							advScores = append(advScores, cell.Detection.Score)
							if cell.Detection.Detected {
								detected++
							}
						}
						res.Cells = append(res.Cells, *cell)
					}
					summary.FoolingRate /= float64(summary.Cells)
					if det != nil {
						summary.Detection = &SummaryDetection{
							Detector:  det.Name(),
							Threshold: det.Threshold,
							Rate:      float64(detected) / float64(summary.Cells),
							CleanFPR:  cleanFPR,
							AUC:       detect.AUC(cleanScores, advScores),
						}
					}
					res.Summaries = append(res.Summaries, summary)
				}
			}
		}
	}
	// The honest-robustness report: when the request swept an explicit
	// adaptive axis containing blind plus stronger modes, compare each
	// stronger series against its blind baseline.
	if len(req.Adaptive) > 0 {
		type gapKey struct {
			attack string
			tm     pipeline.ThreatModel
			filter string
		}
		blindRate := map[gapKey]float64{}
		for _, sm := range res.Summaries {
			if sm.Adaptive == attacks.AdaptiveBlind {
				blindRate[gapKey{sm.Attack, sm.TM, sm.Filter}] = sm.FoolingRate
			}
		}
		for _, sm := range res.Summaries {
			if sm.Adaptive == attacks.AdaptiveBlind {
				continue
			}
			b, ok := blindRate[gapKey{sm.Attack, sm.TM, sm.Filter}]
			if !ok {
				continue
			}
			res.Gaps = append(res.Gaps, EvalGap{
				Attack:       sm.Attack,
				TM:           sm.TM,
				Filter:       sm.Filter,
				Adaptive:     sm.Adaptive,
				BlindRate:    b,
				AdaptiveRate: sm.FoolingRate,
				Gap:          sm.FoolingRate - b,
			})
		}
	}
	return res, nil
}

// craftedCell carries the cell-invariant parts of one filter-blind
// crafting run — the attack result, its canonical name and its TM-I
// (unfiltered) measurement — so Evaluate shares them across the
// tm × filter axes instead of re-crafting and re-measuring.
type craftedCell struct {
	name string
	out  *attacks.Result
	tm1  Prediction
	// det is the detector's verdict on the example's TM-I view; nil when
	// the sweep ran without a detection axis. Like tm1, the score depends
	// only on the crafted example, so it is shared across tm × filter.
	det *detect.Score
}

// evaluateCell crafts (unless pre carries a reusable filter-blind
// result) and measures one grid cell. flt overrides the deployed
// pre-processing for this cell; nil keeps the deployment. The crafting
// bundle is returned alongside the cell so Evaluate can share it across
// the tm × filter axes.
func (s *Server) evaluateCell(ctx context.Context, m *servedModel, spec string, tm pipeline.ThreatModel, flt filters.Filter, ec EvalCase, mode attacks.AdaptiveMode, det *detect.Detector, pre *craftedCell) (*EvalCell, *craftedCell, error) {
	if pre == nil {
		cc, err := s.craftCell(ctx, m, spec, tm, flt, ec, mode, det)
		if err != nil {
			return nil, nil, err
		}
		pre = cc
	}
	out := pre.out
	filterName := s.filter.Name()
	var dep Prediction
	var err error
	// Measurement traffic uses predictInternal: the sweep already holds a
	// bulk-lane slot, so its predictions must not consume interactive
	// admission (or be refused mid-sweep by a drain).
	if flt == nil {
		dep, err = s.predictInternal(ctx, m, out.Adversarial, tm)
	} else {
		filterName = flt.Name()
		dep, err = s.predictInternal(ctx, m, pipeline.DeliverThrough(out.Adversarial, flt, s.acq, tm), pipeline.TM1)
		dep.TM = tm
	}
	if err != nil {
		return nil, nil, err
	}
	fooled := dep.Class != ec.Source
	if ec.Target != attacks.Untargeted {
		fooled = dep.Class == ec.Target
	}
	cell := &EvalCell{
		Attack:       pre.name,
		TM:           tm,
		Filter:       filterName,
		Adaptive:     mode.Name(),
		Source:       ec.Source,
		Target:       ec.Target,
		TM1Pred:      pre.tm1.Class,
		TM1Conf:      pre.tm1.Prob,
		DeployedPred: dep.Class,
		DeployedConf: dep.Prob,
		Fooled:       fooled,
		Truncated:    out.Truncated,
		Queries:      out.Queries,
	}
	if det != nil && pre.det != nil {
		cell.Detection = &CellDetection{
			Score:    pre.det.Score,
			Detected: pre.det.Score > det.Threshold,
		}
	}
	return cell, pre, nil
}

// evalEOTSeed is the base seed of server-side adaptive EOT draw streams:
// fixed, so repeated sweeps are reproducible (the per-draw seeds come
// from filters.DrawSeed and the per-image streams from
// filters.ImageSeed, so a fixed base loses no diversity).
const evalEOTSeed uint64 = 1

// craftCell runs one crafting job on an attacker slot and measures the
// result's TM-I view through the prediction pool. With a detector, the
// same TM-I view is also scored for the sweep's detection axis.
func (s *Server) craftCell(ctx context.Context, m *servedModel, spec string, tm pipeline.ThreatModel, flt filters.Filter, ec EvalCase, mode attacks.AdaptiveMode, det *detect.Detector) (*craftedCell, error) {
	atk, err := attacks.Parse(spec)
	if err != nil {
		return nil, err
	}
	img, err := s.caseImage(m, ec.Image, ec.Source)
	if err != nil {
		return nil, err
	}
	a, release, err := s.acquireAttacker(ctx, m)
	if err != nil {
		return nil, err
	}
	pipe := a.pipe
	if flt != nil {
		// Filter override: same attacker-slot network (the slot is held
		// exclusively), different pre-processing in front of it.
		pipe = pipeline.New(a.pipe.Net, flt, a.pipe.Acq)
	}
	craftCtx, cancel := s.attackContext(ctx)
	craftCtx = attacks.WithBudget(craftCtx, s.opts.AttackBudget)
	gen := atk
	var cls attacks.Classifier = attacks.NetClassifier{Net: pipe.Net}
	switch mode.Kind {
	case attacks.AdaptiveBPDA:
		gen = attacks.NewFAdeML(atk, pipe.AttackerModel(tm))
	case attacks.AdaptiveEOT:
		cls = mode.Classifier(cls, pipe.AttackerModel(tm), evalEOTSeed)
	}
	goal := attacks.Goal{Source: ec.Source, Target: ec.Target}
	out, err := gen.Generate(craftCtx, cls, img, goal)
	cancel()
	release()
	if err != nil {
		return nil, err
	}
	// The TM-I (unfiltered) measurement streams through the
	// micro-batching pool and is cell-invariant, so it is cached with
	// the crafting result. The per-cell deployed-side measurement also
	// uses the pool: with a filter override, delivery runs on this
	// goroutine and Net(DeliverThrough(x, ...)) is exactly the TM-I
	// view of the delivered tensor.
	tm1, err := s.predictInternal(ctx, m, out.Adversarial, pipeline.TM1)
	if err != nil {
		return nil, err
	}
	cc := &craftedCell{name: atk.Name(), out: out, tm1: tm1}
	if det != nil {
		sc, _, err := s.detectOn(ctx, m, det, out.Adversarial)
		if err != nil {
			return nil, err
		}
		cc.det = &sc
	}
	return cc, nil
}

// attackTM resolves a requested threat model for attack execution: only
// the filtered delivery models TM2/TM3 are measurable by core.Execute,
// so 0 falls back to the server default when that is one of them and to
// TM3 otherwise.
func (s *Server) attackTM(tm pipeline.ThreatModel) (pipeline.ThreatModel, error) {
	if tm == 0 {
		if s.opts.DefaultTM == pipeline.TM2 || s.opts.DefaultTM == pipeline.TM3 {
			return s.opts.DefaultTM, nil
		}
		return pipeline.TM3, nil
	}
	if tm != pipeline.TM2 && tm != pipeline.TM3 {
		return 0, fmt.Errorf("serve: attack threat model must be TM2 or TM3, got %v", tm)
	}
	return tm, nil
}

// caseImage resolves a case's clean image: an explicit image (validated
// against the selected model's input shape) or the rendered canonical
// source sign.
func (s *Server) caseImage(m *servedModel, img *tensor.Tensor, source int) (*tensor.Tensor, error) {
	if img == nil {
		if s.opts.Render == nil {
			return nil, errors.New("serve: no image supplied and no canonical renderer configured")
		}
		img = s.opts.Render(source, m.inShape[1])
		if img == nil {
			return nil, fmt.Errorf("serve: no canonical image for class %d", source)
		}
	}
	if err := s.validate(m, img, pipeline.TM1, pipeline.Float64); err != nil {
		return nil, err
	}
	return img, nil
}

// acquireAttacker checks one crafting slot out of the pool, blocking
// until a slot frees, the caller gives up, or the server closes. The
// slot's pipeline clone is rebuilt for m when the slot last served a
// different model version.
func (s *Server) acquireAttacker(ctx context.Context, m *servedModel) (*attacker, func(), error) {
	if s.attackers == nil {
		return nil, nil, ErrAttacksDisabled
	}
	select {
	case a := <-s.attackers:
		if a.key != m.key {
			a.pipe = pipeline.NewModel(m.id, m.proto.Net.Clone(), s.filter, s.acq)
			a.key = m.key
		}
		return a, func() { s.attackers <- a }, nil
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	case <-s.done:
		return nil, nil, ErrServerClosed
	}
}

// attackContext derives the crafting context: the caller's cancellation,
// the server-side wall-clock cap, and shutdown abort. The returned cancel
// releases the watcher goroutine.
func (s *Server) attackContext(ctx context.Context) (context.Context, context.CancelFunc) {
	cancelTimeout := context.CancelFunc(func() {})
	if s.opts.AttackTimeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, s.opts.AttackTimeout)
	}
	ctx, cancel := context.WithCancel(ctx)
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-s.done:
			cancel()
		case <-stopWatch:
		case <-ctx.Done():
		}
	}()
	return ctx, func() {
		close(stopWatch)
		cancel()
		cancelTimeout()
	}
}
