package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/filters"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/registry"
	"repro/internal/tensor"
)

// testStore builds a registry holding two versions of "m" with different
// weights (different init seeds), returning the registry and the loaded
// v1 entry.
func testStore(t testing.TB) (*registry.Registry, *registry.Model) {
	t.Helper()
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	arch := registry.TinyCNNSpec(3, 16, 5)
	for _, seed := range []uint64{3, 7} {
		net, err := nn.TinyCNN(3, 16, 5, mathx.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Save("m", net, arch, registry.SaveOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	v1, err := reg.Load(registry.Ref{Name: "m", Version: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	return reg, v1
}

// versionTruth computes the direct (unserved) reference probabilities of
// every registry version of "m" for each image, keyed by "m@vN". The
// reference pipeline uses the same filter and acquisition the test
// servers deploy.
func versionTruth(t testing.TB, reg *registry.Registry, imgs []*tensor.Tensor, tm pipeline.ThreatModel) map[string][][]float64 {
	t.Helper()
	truth := make(map[string][][]float64)
	versions, err := reg.Versions("m")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range versions {
		rm, err := reg.Load(registry.Ref{Name: "m", Version: v})
		if err != nil {
			t.Fatal(err)
		}
		p := pipeline.New(rm.Net, filters.NewLAP(8), pipeline.DefaultAcquisition(11))
		probs := make([][]float64, len(imgs))
		for i, img := range imgs {
			probs[i] = p.Probs(img, tm)
		}
		truth["m@"+v] = probs
	}
	return truth
}

func equalProbs(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCacheAcrossVersions pins the no-stale-version cache guarantee: the
// same image served on two model versions occupies two cache entries,
// and a re-hit on either version returns that version's bits, not the
// other's.
func TestCacheAcrossVersions(t *testing.T) {
	reg, v1 := testStore(t)
	s := NewFromModel(v1, filters.NewLAP(8), pipeline.DefaultAcquisition(11),
		Options{Workers: 2, MaxBatch: 4, MaxWait: time.Millisecond, CacheSize: 64, Registry: reg})
	defer s.Close()
	if _, err := s.LoadModel("m@v2"); err != nil {
		t.Fatal(err)
	}

	imgs := testImages(3)
	truth := versionTruth(t, reg, imgs, pipeline.TM1)
	ctx := context.Background()

	// First pass: every (image, version) pair is a miss and must match
	// the direct per-version reference bits.
	for _, spec := range []string{"m@v1", "m@v2"} {
		for i, img := range imgs {
			pred, err := s.PredictModel(ctx, spec, img, pipeline.TM1, pipeline.Float64)
			if err != nil {
				t.Fatal(err)
			}
			if pred.Model != spec {
				t.Fatalf("pred.Model = %q, want %q", pred.Model, spec)
			}
			if !equalProbs(pred.Probs, truth[spec][i]) {
				t.Fatalf("first pass: %s image %d diverged from direct pipeline", spec, i)
			}
		}
	}
	st := s.cache.stats()
	if want := uint64(2 * len(imgs)); st.Misses != want || st.Hits != 0 {
		t.Fatalf("after first pass: hits=%d misses=%d, want 0/%d", st.Hits, st.Misses, want)
	}
	if st.Entries != 2*len(imgs) {
		t.Fatalf("cache entries = %d, want %d (one per image per version)", st.Entries, 2*len(imgs))
	}

	// Second pass: all hits, each bit-identical to its own version.
	for _, spec := range []string{"m@v1", "m@v2"} {
		for i, img := range imgs {
			pred, err := s.PredictModel(ctx, spec, img, pipeline.TM1, pipeline.Float64)
			if err != nil {
				t.Fatal(err)
			}
			if !equalProbs(pred.Probs, truth[spec][i]) {
				t.Fatalf("cache re-hit: %s image %d served another version's bits", spec, i)
			}
		}
	}
	st = s.cache.stats()
	if want := uint64(2 * len(imgs)); st.Hits != want {
		t.Fatalf("after second pass: hits=%d, want %d", st.Hits, want)
	}
}

// TestHotSwapUnderLoad soaks the swap state machine: client goroutines
// hammer the default model while the test flips the active version back
// and forth with keep=false (so every swap retires and drains the loser).
// The contract: zero failed requests, and every response bit-identical to
// the direct reference of the version it claims to be — which also
// proves no stale-version cache hit, since a wrong-version answer could
// not match its labeled version's bits.
func TestHotSwapUnderLoad(t *testing.T) {
	reg, v1 := testStore(t)
	s := NewFromModel(v1, filters.NewLAP(8), pipeline.DefaultAcquisition(11),
		Options{Workers: 2, MaxBatch: 4, MaxWait: time.Millisecond, CacheSize: 256, Registry: reg})
	defer s.Close()

	imgs := testImages(6)
	truth := versionTruth(t, reg, imgs, pipeline.TM1)

	const clients = 4
	stop := make(chan struct{})
	var served [2]atomic.Uint64 // index 0: v1, 1: v2
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				img := imgs[i%len(imgs)]
				pred, err := s.Predict(ctx, img, pipeline.TM1)
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				want, ok := truth[pred.Model]
				if !ok {
					errs <- fmt.Errorf("client %d: unknown serving model %q", c, pred.Model)
					return
				}
				if !equalProbs(pred.Probs, want[i%len(imgs)]) {
					errs <- fmt.Errorf("client %d: response labeled %s does not match that version's reference bits (stale-version hit?)", c, pred.Model)
					return
				}
				switch pred.Model {
				case "m@v1":
					served[0].Add(1)
				case "m@v2":
					served[1].Add(1)
				}
			}
		}()
	}

	// Flip the default several times under load; keep=false retires and
	// fully drains the outgoing version each time.
	for swap := 0; swap < 6; swap++ {
		target := "m@v2"
		if swap%2 == 1 {
			target = "m@v1"
		}
		if _, err := s.Activate(target, false); err != nil {
			t.Fatalf("swap %d to %s: %v", swap, target, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if served[0].Load() == 0 || served[1].Load() == 0 {
		t.Fatalf("soak never exercised both versions: v1=%d v2=%d", served[0].Load(), served[1].Load())
	}
	if got := s.Stats().Swaps; got != 6 {
		t.Fatalf("Stats().Swaps = %d, want 6", got)
	}
}

// TestModelAdminLifecycle covers the admin surface invariants: load is
// idempotent, the active model refuses to unload, a kept model stays
// selectable after losing the default slot, and the table listing puts
// the active entry first.
func TestModelAdminLifecycle(t *testing.T) {
	reg, v1 := testStore(t)
	s := NewFromModel(v1, filters.NewLAP(8), pipeline.DefaultAcquisition(11),
		Options{Workers: 1, MaxBatch: 2, MaxWait: time.Millisecond, Registry: reg})
	defer s.Close()

	if got := s.ActiveModel().String(); got != "m@v1" {
		t.Fatalf("active = %q, want m@v1", got)
	}
	id, err := s.LoadModel("m@v2")
	if err != nil {
		t.Fatal(err)
	}
	if again, err := s.LoadModel("m@v2"); err != nil || again != id {
		t.Fatalf("second LoadModel = %v, %v; want idempotent %v", again, err, id)
	}
	// A bare name resolves to the registry's latest version.
	if id, err := s.LoadModel("m"); err != nil || id.String() != "m@v2" {
		t.Fatalf("LoadModel(m) = %v, %v; want m@v2", id, err)
	}
	if err := s.UnloadModel("m@v1"); err == nil {
		t.Fatal("unloading the active model must fail")
	}

	// keep=true: v1 loses the default slot but stays loaded and pinnable.
	if _, err := s.Activate("m@v2", true); err != nil {
		t.Fatal(err)
	}
	if got := s.ActiveModel().String(); got != "m@v2" {
		t.Fatalf("active after swap = %q, want m@v2", got)
	}
	pred, err := s.PredictModel(context.Background(), "m@v1", testImages(1)[0], pipeline.TM1, pipeline.Float64)
	if err != nil || pred.Model != "m@v1" {
		t.Fatalf("pinned predict on kept model = %q, %v", pred.Model, err)
	}
	models := s.Models()
	if len(models) != 2 || !models[0].Active || models[0].Model != "m@v2" {
		t.Fatalf("Models() = %+v, want active m@v2 first of 2", models)
	}

	// Now v1 is inactive and unloads cleanly; predicting on it afterwards
	// is a clear client error.
	if err := s.UnloadModel("m@v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PredictModel(context.Background(), "m@v1", testImages(1)[0], pipeline.TM1, pipeline.Float64); err == nil {
		t.Fatal("predicting on an unloaded model must fail")
	}
}
