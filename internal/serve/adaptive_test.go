package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/attacks"
	"repro/internal/pipeline"
)

// TestEvaluateAdaptiveAxis pins the adaptive crafting axis: one sweep
// over blind, bpda and eot produces one series per mode on the same
// attack × tm × filter grid, labels every cell with its crafting mode,
// and reports a blind-baseline gap for each stronger mode.
func TestEvaluateAdaptiveAxis(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 120})
	defer s.Close()
	res, err := s.Evaluate(t.Context(), EvaluateRequest{
		Specs:    []string{"bim(eps=0.1,alpha=0.02,steps=10)"},
		TMs:      []pipeline.ThreatModel{pipeline.TM3},
		Filters:  []string{"randnoise(sigma=0.1,seed=1)"},
		Adaptive: []string{"blind", "bpda", "eot(draws=2)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantModes := []string{"blind", "bpda", "eot(draws=2)"}
	if len(res.Summaries) != len(wantModes) {
		t.Fatalf("got %d summaries, want %d (one per mode)", len(res.Summaries), len(wantModes))
	}
	rates := map[string]float64{}
	for i, sm := range res.Summaries {
		if sm.Adaptive != wantModes[i] {
			t.Errorf("summary %d adaptive = %q, want %q", i, sm.Adaptive, wantModes[i])
		}
		if sm.Filter != "randnoise(sigma=0.1,seed=1)" || sm.Cells != 1 {
			t.Errorf("summary %d: filter=%q cells=%d", i, sm.Filter, sm.Cells)
		}
		rates[sm.Adaptive] = sm.FoolingRate
	}
	if len(res.Cells) != len(wantModes) {
		t.Fatalf("got %d cells, want %d", len(res.Cells), len(wantModes))
	}
	for i, cell := range res.Cells {
		if cell.Adaptive != wantModes[i] {
			t.Errorf("cell %d adaptive = %q, want %q", i, cell.Adaptive, wantModes[i])
		}
	}
	// Gaps: one entry per stronger-than-blind mode, with the arithmetic
	// pinned to the series rates.
	if len(res.Gaps) != 2 {
		t.Fatalf("got %d gaps, want 2 (bpda, eot)", len(res.Gaps))
	}
	for _, g := range res.Gaps {
		if g.BlindRate != rates["blind"] {
			t.Errorf("gap %s blind rate %v, want %v", g.Adaptive, g.BlindRate, rates["blind"])
		}
		if g.AdaptiveRate != rates[g.Adaptive] {
			t.Errorf("gap %s adaptive rate %v, want %v", g.Adaptive, g.AdaptiveRate, rates[g.Adaptive])
		}
		if g.Gap != g.AdaptiveRate-g.BlindRate {
			t.Errorf("gap %s arithmetic: %v != %v - %v", g.Adaptive, g.Gap, g.AdaptiveRate, g.BlindRate)
		}
	}
}

// TestEvaluateAdaptiveLegacyLabels pins backward compatibility: a sweep
// without an Adaptive axis keeps the single legacy series, labelled
// blind (or bpda when FilterAware), and reports no gaps.
func TestEvaluateAdaptiveLegacyLabels(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 60})
	defer s.Close()
	for _, c := range []struct {
		aware bool
		want  string
	}{{false, "blind"}, {true, "bpda"}} {
		res, err := s.Evaluate(t.Context(), EvaluateRequest{
			Specs:       []string{"fgsm(eps=0.1)"},
			TMs:         []pipeline.ThreatModel{pipeline.TM3},
			FilterAware: c.aware,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Summaries) != 1 || res.Summaries[0].Adaptive != c.want {
			t.Errorf("FilterAware=%v: summaries %+v, want one %q series", c.aware, res.Summaries, c.want)
		}
		if res.Gaps != nil {
			t.Errorf("FilterAware=%v: legacy sweep reported gaps", c.aware)
		}
	}
}

// TestEvaluateAdaptiveBlindSharing pins the crafting-reuse contract:
// blind examples depend only on (attack, case), so the blind series of
// every filter reuses one crafted example — identical query accounting
// and an identical unfiltered view across filters.
func TestEvaluateAdaptiveBlindSharing(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 60})
	defer s.Close()
	res, err := s.Evaluate(t.Context(), EvaluateRequest{
		Specs:    []string{"fgsm(eps=0.1)"},
		TMs:      []pipeline.ThreatModel{pipeline.TM3},
		Filters:  []string{"none", "median(r=1)", "lap(np=8)"},
		Adaptive: []string{"blind"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(res.Cells))
	}
	first := res.Cells[0]
	for _, cell := range res.Cells[1:] {
		if cell.Queries != first.Queries {
			t.Errorf("blind cell re-spent the attack budget: %d vs %d queries", cell.Queries, first.Queries)
		}
		if cell.TM1Pred != first.TM1Pred || cell.TM1Conf != first.TM1Conf {
			t.Error("blind cells disagree on the unfiltered view — crafted example not shared")
		}
	}
}

// TestEvaluateAdaptiveErrors pins up-front validation of the adaptive
// axis: malformed modes fail the whole sweep before any crafting, and
// the mode axis participates in the grid cap.
func TestEvaluateAdaptiveErrors(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 10})
	defer s.Close()
	for _, bad := range []string{"warp", "eot(draws=0)", "eot(draws=x)", "blind(x=1)"} {
		_, err := s.Evaluate(t.Context(), EvaluateRequest{
			Specs:    []string{"fgsm"},
			Adaptive: []string{bad},
		})
		if err == nil {
			t.Errorf("adaptive mode %q accepted", bad)
		}
	}
	oversize := make([]string, maxEvalCells+1)
	for i := range oversize {
		oversize[i] = "blind"
	}
	if _, err := s.Evaluate(t.Context(), EvaluateRequest{
		Specs:    []string{"fgsm"},
		Adaptive: oversize,
	}); err == nil {
		t.Error("oversize adaptive grid accepted")
	}
}

// TestEvaluateHTTPAdaptive exercises the adaptive axis of
// POST /v1/evaluate end to end: gaps appear in the JSON response, and an
// unknown adaptive mode is a 400, not a 500.
func TestEvaluateHTTPAdaptive(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 120})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	resp, data := postJSON(t, ts.URL+"/v1/evaluate", map[string]any{
		"attacks":  []string{"bim(eps=0.1,alpha=0.02,steps=10)"},
		"tms":      []string{"3"},
		"filters":  []string{"randnoise(sigma=0.1,seed=1)"},
		"adaptive": []string{"blind", "eot(draws=2)"},
		"cases":    []map[string]any{{"source": 3, "target": 1}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Cells []struct {
			Adaptive string `json:"adaptive"`
		} `json:"cells"`
		Summaries []struct {
			Adaptive    string  `json:"adaptive"`
			FoolingRate float64 `json:"fooling_rate"`
		} `json:"summaries"`
		Gaps []struct {
			TM           string  `json:"tm"`
			Adaptive     string  `json:"adaptive"`
			BlindRate    float64 `json:"blind_rate"`
			AdaptiveRate float64 `json:"adaptive_rate"`
			Gap          float64 `json:"gap"`
		} `json:"gaps"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Cells) != 2 || len(out.Summaries) != 2 {
		t.Fatalf("got %d cells / %d summaries, want 2 / 2", len(out.Cells), len(out.Summaries))
	}
	if out.Cells[0].Adaptive != "blind" || out.Cells[1].Adaptive != "eot(draws=2)" {
		t.Errorf("cell adaptive labels = %q, %q", out.Cells[0].Adaptive, out.Cells[1].Adaptive)
	}
	if len(out.Gaps) != 1 || out.Gaps[0].Adaptive != "eot(draws=2)" {
		t.Fatalf("gaps = %+v, want one eot(draws=2) entry", out.Gaps)
	}
	if out.Gaps[0].TM != "TM-III" {
		t.Errorf("gap tm = %q, want TM-III", out.Gaps[0].TM)
	}
	if got := out.Gaps[0].AdaptiveRate - out.Gaps[0].BlindRate; out.Gaps[0].Gap != got {
		t.Errorf("gap arithmetic over HTTP: %v != %v", out.Gaps[0].Gap, got)
	}

	// Unknown and malformed adaptive modes are usage errors.
	for _, bad := range []string{"warp", "eot(draws=0)"} {
		resp, data := postJSON(t, ts.URL+"/v1/evaluate", map[string]any{
			"attacks":  []string{"fgsm"},
			"adaptive": []string{bad},
			"cases":    []map[string]any{{"source": 3, "target": 1}},
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("adaptive %q status %d, want 400: %s", bad, resp.StatusCode, data)
		}
		if !strings.Contains(string(data), "adaptive") {
			t.Errorf("adaptive %q error does not mention the field: %s", bad, data)
		}
	}
}
