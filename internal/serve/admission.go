package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Admission control and load shedding.
//
// Every request passes one of two priority lanes before it can touch a
// worker:
//
//   - the interactive lane (Predict, PredictBatch, Defend) carries the
//     traffic a deployed system answers in human time;
//   - the bulk lane (Attack, Evaluate) carries adversarial crafting and
//     sweep jobs that hold resources for seconds to minutes.
//
// Each lane bounds how many requests may be admitted-but-unfinished at
// once (queued and in flight both count). Load beyond the bound is shed
// immediately with an OverloadError carrying a Retry-After hint — a 429
// on the wire — instead of queuing unboundedly: under overload a bounded
// queue keeps latency for admitted requests flat while excess clients
// get an honest, retryable refusal. Because the lanes are independent
// and bulk crafting runs on its own dedicated pipeline clones
// (Options.AttackWorkers), a flood of /v1/attack traffic can fill only
// the bulk lane; /v1/predict admission is untouched.

// ErrOverloaded is the errors.Is target for admission-control sheds.
var ErrOverloaded = errors.New("serve: overloaded")

// ErrDraining is returned for new requests once BeginDrain was called:
// the server is about to stop, in-flight work is completing, and load
// balancers should route elsewhere (HTTP 503).
var ErrDraining = errors.New("serve: draining")

// OverloadError reports a shed request: the named lane was at capacity.
// It matches errors.Is(err, ErrOverloaded).
type OverloadError struct {
	// Lane is the admission lane that shed the request ("interactive" or
	// "bulk").
	Lane string
	// RetryAfter is the suggested client backoff (the HTTP layer sends it
	// as a Retry-After header).
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: %s lane at capacity, retry after %v", e.Lane, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match any OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// degradedWindow is how long after the most recent shed /v1/healthz
// keeps reporting "degraded".
const degradedWindow = 5 * time.Second

// lane is one bounded admission queue with shed accounting.
type lane struct {
	name       string
	limit      int // <= 0: unbounded (counters still maintained)
	retryAfter time.Duration

	depth    atomic.Int64  // admitted-but-unfinished requests
	admitted atomic.Uint64 // total admissions
	shed     atomic.Uint64 // total refusals
	lastShed atomic.Int64  // UnixNano of the most recent shed
}

// admit reserves n slots in the lane, returning a release closure the
// caller must invoke exactly once when the request finishes (the closure
// is idempotent). When the reservation would push the lane past its
// limit, nothing is reserved and an OverloadError is returned.
func (l *lane) admit(n int) (release func(), err error) {
	if n <= 0 {
		return func() {}, nil
	}
	if l.limit > 0 {
		for {
			cur := l.depth.Load()
			if cur+int64(n) > int64(l.limit) {
				l.shed.Add(uint64(n))
				l.lastShed.Store(time.Now().UnixNano())
				return nil, &OverloadError{Lane: l.name, RetryAfter: l.retryAfter}
			}
			if l.depth.CompareAndSwap(cur, cur+int64(n)) {
				break
			}
		}
	} else {
		l.depth.Add(int64(n))
	}
	l.admitted.Add(uint64(n))
	var once sync.Once
	return func() { once.Do(func() { l.depth.Add(-int64(n)) }) }, nil
}

// shedding reports whether the lane shed within the degraded window —
// the signal /v1/healthz uses to flip from "ok" to "degraded".
func (l *lane) shedding() bool {
	last := l.lastShed.Load()
	return last != 0 && time.Since(time.Unix(0, last)) <= degradedWindow
}

// LaneStats is one lane's admission snapshot (embedded in Stats and
// exported on /metrics).
type LaneStats struct {
	// Depth is the number of admitted-but-unfinished requests.
	Depth int64 `json:"depth"`
	// Limit is the admission bound (0 = unbounded).
	Limit int `json:"limit"`
	// Admitted and Shed are lifetime counters.
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
}

func (l *lane) stats() LaneStats {
	limit := l.limit
	if limit < 0 {
		limit = 0
	}
	return LaneStats{
		Depth:    l.depth.Load(),
		Limit:    limit,
		Admitted: l.admitted.Load(),
		Shed:     l.shed.Load(),
	}
}

// BeginDrain switches the server into draining mode: new requests are
// refused with ErrDraining (HTTP 503), /v1/healthz flips to 503 so
// front doors and load balancers stop routing here, and in-flight work —
// queued predictions and running crafting jobs alike — keeps executing
// to completion. Call it when a shutdown signal arrives, then drain the
// HTTP listener (http.Server.Shutdown), then Close the server. BeginDrain
// is idempotent and safe from any goroutine.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called (or the server closed).
func (s *Server) Draining() bool {
	if s.draining.Load() {
		return true
	}
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// refuseNew returns the error new work must be refused with, or nil when
// the server is accepting requests.
func (s *Server) refuseNew() error {
	select {
	case <-s.done:
		return ErrServerClosed
	default:
	}
	if s.draining.Load() {
		return ErrDraining
	}
	return nil
}

// routeContext applies a server-side per-route deadline (the lane SLO) on
// top of the client's context. d <= 0 leaves the client context alone.
func routeContext(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}
