package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// Prometheus-style observability.
//
// GET /metrics renders the server's operational counters in the
// Prometheus text exposition format (version 0.0.4), on the standard
// library alone: lane depths and shed totals, cache hit rates,
// micro-batching counters, and a per-route latency histogram with
// status-class counters. The metric set is fixed at construction; every
// update is a lock-free atomic, so instrumentation costs nanoseconds on
// the hot path.

// latencyBuckets are the histogram bucket upper bounds in seconds.
var latencyBuckets = [...]float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram with atomic counters.
// Buckets store per-interval counts; rendering cumulates them into the
// Prometheus le-form.
type histogram struct {
	count  atomic.Uint64
	sumNs  atomic.Int64
	bucket [len(latencyBuckets) + 1]atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && s > latencyBuckets[i] {
		i++
	}
	h.bucket[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// routeMetrics instruments one HTTP route: a latency histogram and
// response counts by status class.
type routeMetrics struct {
	name string
	lat  histogram
	// code[i] counts responses with status i00..i99 (index 1..5).
	code [6]atomic.Uint64
	// shed counts 429 responses specifically.
	shed atomic.Uint64
}

func (m *routeMetrics) observe(d time.Duration, status int) {
	m.lat.observe(d)
	if c := status / 100; c >= 1 && c <= 5 {
		m.code[c].Add(1)
	}
	if status == http.StatusTooManyRequests {
		m.shed.Add(1)
	}
}

// metricRoutes is the fixed set of instrumented routes.
var metricRoutes = []string{
	"predict", "predict_batch", "defend", "detect", "attack", "evaluate", "models", "healthz", "stats",
}

// scoreBuckets are the detector-score histogram bucket upper bounds
// (the L1 discrepancy metric lives in [0, 2]; top1 in [0, 1]).
var scoreBuckets = [...]float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 1, 1.25, 1.5, 2,
}

// scoreHistogram is a fixed-bucket histogram over detector scores. The
// sum is accumulated in millionths so the hot path stays a lock-free
// integer atomic.
type scoreHistogram struct {
	count     atomic.Uint64
	sumMicros atomic.Int64
	bucket    [len(scoreBuckets) + 1]atomic.Uint64
}

func (h *scoreHistogram) observe(v float64) {
	i := 0
	for i < len(scoreBuckets) && v > scoreBuckets[i] {
		i++
	}
	h.bucket[i].Add(1)
	h.count.Add(1)
	h.sumMicros.Add(int64(v * 1e6))
}

// serverMetrics holds the per-route instruments plus the detector
// verdict counters and score histogram.
type serverMetrics struct {
	routes []*routeMetrics

	detectClean     atomic.Uint64
	detectFlagged   atomic.Uint64
	detectCorrected atomic.Uint64
	detectScore     scoreHistogram
}

func newServerMetrics() *serverMetrics {
	m := &serverMetrics{routes: make([]*routeMetrics, len(metricRoutes))}
	for i, name := range metricRoutes {
		m.routes[i] = &routeMetrics{name: name}
	}
	return m
}

// recordDetection counts one detector verdict (from the
// detect-then-correct route or a /v1/detect call).
func (m *serverMetrics) recordDetection(score float64, flagged, corrected bool) {
	if flagged {
		m.detectFlagged.Add(1)
	} else {
		m.detectClean.Add(1)
	}
	if corrected {
		m.detectCorrected.Add(1)
	}
	m.detectScore.observe(score)
}

// route returns the instrument for a route name (the set is tiny and
// fixed, so a linear scan beats a map + hashing).
func (m *serverMetrics) route(name string) *routeMetrics {
	for _, r := range m.routes {
		if r.name == name {
			return r
		}
	}
	return nil
}

// statusRecorder captures the status code a handler writes so the
// instrumentation middleware can count it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with latency + status accounting under the
// given route name.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	m := s.metrics.route(route)
	if m == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		m.observe(time.Since(start), rec.status)
	}
}

// WritePrometheus renders the server's operational state in the
// Prometheus text exposition format: admission-lane depths/limits/sheds,
// cache hits/misses/occupancy, micro-batching counters, the
// draining flag, and per-route request totals + latency histograms.
func (s *Server) WritePrometheus(w io.Writer) {
	writeGaugeHeader(w, "fademl_up", "1 while the serving process is alive.")
	fmt.Fprintf(w, "fademl_up 1\n")
	writeGaugeHeader(w, "fademl_draining", "1 once BeginDrain was called (or the server closed).")
	draining := 0
	if s.Draining() {
		draining = 1
	}
	fmt.Fprintf(w, "fademl_draining %d\n", draining)
	writeGaugeHeader(w, "fademl_workers", "Inference worker pool size.")
	fmt.Fprintf(w, "fademl_workers %d\n", s.opts.Workers)

	writeCounterHeader(w, "fademl_requests_total", "Accepted prediction requests (enqueued to the micro-batcher).")
	fmt.Fprintf(w, "fademl_requests_total %d\n", s.requests.Load())
	writeCounterHeader(w, "fademl_batches_total", "Micro-batches dispatched to workers.")
	fmt.Fprintf(w, "fademl_batches_total %d\n", s.batchCount.Load())
	writeCounterHeader(w, "fademl_batched_images_total", "Images processed across all micro-batches.")
	fmt.Fprintf(w, "fademl_batched_images_total %d\n", s.batchedImages.Load())

	writeGaugeHeader(w, "fademl_lane_depth", "Admitted-but-unfinished requests per priority lane.")
	writeGaugeHeader(w, "fademl_lane_limit", "Admission bound per lane (0 = unbounded).")
	writeCounterHeader(w, "fademl_lane_admitted_total", "Admitted requests per lane.")
	writeCounterHeader(w, "fademl_lane_shed_total", "Requests shed (429) per lane.")
	for _, l := range []*lane{s.interactive, s.bulk} {
		st := l.stats()
		fmt.Fprintf(w, "fademl_lane_depth{lane=%q} %d\n", l.name, st.Depth)
		fmt.Fprintf(w, "fademl_lane_limit{lane=%q} %d\n", l.name, st.Limit)
		fmt.Fprintf(w, "fademl_lane_admitted_total{lane=%q} %d\n", l.name, st.Admitted)
		fmt.Fprintf(w, "fademl_lane_shed_total{lane=%q} %d\n", l.name, st.Shed)
	}

	writeGaugeHeader(w, "fademl_model_active", "1 for the model version currently answering default-model requests.")
	if m := s.active.Load(); m != nil {
		fmt.Fprintf(w, "fademl_model_active{model=%q} 1\n", m.key)
	}
	writeGaugeHeader(w, "fademl_models_loaded", "Model versions resident in the serving table.")
	s.modelMu.Lock()
	loadedModels := make([]*servedModel, 0, len(s.models))
	for _, m := range s.models {
		loadedModels = append(loadedModels, m)
	}
	s.modelMu.Unlock()
	sort.Slice(loadedModels, func(i, j int) bool { return loadedModels[i].key < loadedModels[j].key })
	fmt.Fprintf(w, "fademl_models_loaded %d\n", len(loadedModels))
	writeCounterHeader(w, "fademl_model_requests_total", "Prediction requests answered per model version.")
	for _, m := range loadedModels {
		fmt.Fprintf(w, "fademl_model_requests_total{model=%q} %d\n", m.key, m.requests.Load())
	}
	writeCounterHeader(w, "fademl_model_swaps_total", "Hot-swaps of the default model since start.")
	fmt.Fprintf(w, "fademl_model_swaps_total %d\n", s.swaps.Load())

	cs := s.cache.stats()
	writeCounterHeader(w, "fademl_cache_hits_total", "Content-addressed cache hits.")
	fmt.Fprintf(w, "fademl_cache_hits_total %d\n", cs.Hits)
	writeCounterHeader(w, "fademl_cache_misses_total", "Content-addressed cache misses.")
	fmt.Fprintf(w, "fademl_cache_misses_total %d\n", cs.Misses)
	writeGaugeHeader(w, "fademl_cache_entries", "Entries resident in the content-addressed cache.")
	fmt.Fprintf(w, "fademl_cache_entries %d\n", cs.Entries)
	writeGaugeHeader(w, "fademl_cache_capacity", "Entry bound of the content-addressed cache (0 = disabled).")
	fmt.Fprintf(w, "fademl_cache_capacity %d\n", cs.Capacity)

	writeCounterHeader(w, "fademl_detector_verdicts_total", "Detector verdicts by outcome (detect-then-correct route + /v1/detect).")
	fmt.Fprintf(w, "fademl_detector_verdicts_total{verdict=\"clean\"} %d\n", s.metrics.detectClean.Load())
	fmt.Fprintf(w, "fademl_detector_verdicts_total{verdict=\"flagged\"} %d\n", s.metrics.detectFlagged.Load())
	writeCounterHeader(w, "fademl_detector_corrected_total", "Flagged inputs re-scored through the correction chain.")
	fmt.Fprintf(w, "fademl_detector_corrected_total %d\n", s.metrics.detectCorrected.Load())
	fmt.Fprintf(w, "# HELP fademl_detector_score Detector discrepancy scores.\n")
	fmt.Fprintf(w, "# TYPE fademl_detector_score histogram\n")
	if h := &s.metrics.detectScore; h.count.Load() > 0 {
		cum := uint64(0)
		for i, le := range scoreBuckets {
			cum += h.bucket[i].Load()
			fmt.Fprintf(w, "fademl_detector_score_bucket{le=%q} %d\n", formatFloat(le), cum)
		}
		cum += h.bucket[len(scoreBuckets)].Load()
		fmt.Fprintf(w, "fademl_detector_score_bucket{le=\"+Inf\"} %d\n", cum)
		fmt.Fprintf(w, "fademl_detector_score_sum %g\n", float64(h.sumMicros.Load())/1e6)
		fmt.Fprintf(w, "fademl_detector_score_count %d\n", cum)
	}

	writeCounterHeader(w, "fademl_http_requests_total", "HTTP responses by route and status class.")
	for _, m := range s.metrics.routes {
		for c := 1; c <= 5; c++ {
			if n := m.code[c].Load(); n > 0 {
				fmt.Fprintf(w, "fademl_http_requests_total{route=%q,code=\"%dxx\"} %d\n", m.name, c, n)
			}
		}
	}
	writeCounterHeader(w, "fademl_http_shed_total", "HTTP 429 responses by route.")
	for _, m := range s.metrics.routes {
		if n := m.shed.Load(); n > 0 {
			fmt.Fprintf(w, "fademl_http_shed_total{route=%q} %d\n", m.name, n)
		}
	}

	fmt.Fprintf(w, "# HELP fademl_http_request_duration_seconds Request latency by route.\n")
	fmt.Fprintf(w, "# TYPE fademl_http_request_duration_seconds histogram\n")
	for _, m := range s.metrics.routes {
		if m.lat.count.Load() == 0 {
			continue
		}
		cum := uint64(0)
		for i, le := range latencyBuckets {
			cum += m.lat.bucket[i].Load()
			fmt.Fprintf(w, "fademl_http_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				m.name, formatFloat(le), cum)
		}
		cum += m.lat.bucket[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "fademl_http_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", m.name, cum)
		fmt.Fprintf(w, "fademl_http_request_duration_seconds_sum{route=%q} %g\n",
			m.name, float64(m.lat.sumNs.Load())/float64(time.Second))
		fmt.Fprintf(w, "fademl_http_request_duration_seconds_count{route=%q} %d\n", m.name, cum)
	}
}

func formatFloat(f float64) string { return fmt.Sprintf("%g", f) }

func writeCounterHeader(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
}

func writeGaugeHeader(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WritePrometheus(w)
}
