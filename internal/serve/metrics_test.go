package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gtsrb"
)

// metricsFixture builds a served HTTP surface with a tiny interactive
// lane so tests can force sheds deterministically.
func metricsFixture(t *testing.T) (*Server, http.Handler) {
	t.Helper()
	s := New(servePipeline(t), Options{
		Workers: 1, MaxBatch: 4, MaxWait: time.Millisecond,
		InteractiveLimit: 2,
	})
	t.Cleanup(s.Close)
	return s, s.Handler()
}

func predictBody(i int) string {
	img := gtsrb.Canonical(i%gtsrb.NumClasses, 16)
	b, _ := json.Marshal(map[string]any{"pixels": img.Data(), "shape": img.Shape()})
	return string(b)
}

func doJSON(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestMetricsEndpoint: /metrics must expose lane, cache, shed and
// per-route latency series in the Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	s, h := metricsFixture(t)

	// Two distinct predicts, then a repeat for a cache hit.
	for _, i := range []int{0, 1, 0} {
		if w := doJSON(h, http.MethodPost, "/v1/predict", predictBody(i)); w.Code != http.StatusOK {
			t.Fatalf("predict %d: status %d: %s", i, w.Code, w.Body.String())
		}
	}
	// Hold the whole interactive lane to force a shed on a fresh image.
	release, err := s.interactive.admit(2)
	if err != nil {
		t.Fatal(err)
	}
	w429 := doJSON(h, http.MethodPost, "/v1/predict", predictBody(2))
	release()
	if w429.Code != http.StatusTooManyRequests {
		t.Fatalf("shed request: status %d, want 429", w429.Code)
	}
	if ra := w429.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 missing Retry-After header")
	}
	var shed struct{ Error, Code string }
	if err := json.Unmarshal(w429.Body.Bytes(), &shed); err != nil || shed.Code != "overloaded" {
		t.Fatalf("shed body %q lacks code=overloaded", w429.Body.String())
	}

	w := doJSON(h, http.MethodGet, "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		`fademl_lane_depth{lane="interactive"}`,
		`fademl_lane_limit{lane="interactive"} 2`,
		`fademl_lane_shed_total{lane="interactive"} 1`,
		`fademl_lane_depth{lane="bulk"}`,
		"fademl_cache_hits_total 1",
		"fademl_cache_misses_total",
		`fademl_http_requests_total{route="predict",code="2xx"} 3`,
		`fademl_http_requests_total{route="predict",code="4xx"} 1`,
		`fademl_http_shed_total{route="predict"} 1`,
		`fademl_http_request_duration_seconds_bucket{route="predict",le="+Inf"} 4`,
		`fademl_http_request_duration_seconds_count{route="predict"} 4`,
		"fademl_draining 0",
		"fademl_up 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestHealthzDegradedAndDraining: healthz must flip ok → degraded after
// a shed and to 503 draining after BeginDrain.
func TestHealthzDegradedAndDraining(t *testing.T) {
	s, h := metricsFixture(t)

	status := func() (int, string) {
		w := doJSON(h, http.MethodGet, "/v1/healthz", "")
		var body struct {
			Status string `json:"status"`
			Code   string `json:"code"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatalf("healthz body: %v", err)
		}
		if body.Status != "" {
			return w.Code, body.Status
		}
		return w.Code, body.Code
	}

	if code, st := status(); code != http.StatusOK || st != "ok" {
		t.Fatalf("fresh healthz: %d %q", code, st)
	}

	// Force a shed → degraded (still 200: the replica stays routable).
	release, err := s.interactive.admit(2)
	if err != nil {
		t.Fatal(err)
	}
	doJSON(h, http.MethodPost, "/v1/predict", predictBody(0))
	release()
	if code, st := status(); code != http.StatusOK || st != "degraded" {
		t.Fatalf("healthz after shed: %d %q, want 200 degraded", code, st)
	}

	s.BeginDrain()
	if code, st := status(); code != http.StatusServiceUnavailable || st != "draining" {
		t.Fatalf("healthz during drain: %d %q, want 503 draining", code, st)
	}
	// Draining refusals on the work routes are 503 code=draining too.
	w := doJSON(h, http.MethodPost, "/v1/predict", predictBody(1))
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), `"draining"`) {
		t.Fatalf("predict during drain: %d %s", w.Code, w.Body.String())
	}
}

// TestDeadlineIs504: a server-side deadline hit must surface as 504 with
// code "deadline".
func TestDeadlineIs504(t *testing.T) {
	chaos := &Chaos{}
	chaos.SetBatchDelay(300 * time.Millisecond)
	s := New(servePipeline(t), Options{
		Workers: 1, MaxBatch: 1, MaxWait: time.Millisecond,
		PredictDeadline: 10 * time.Millisecond, CacheSize: -1, Chaos: chaos,
	})
	t.Cleanup(s.Close)
	w := doJSON(s.Handler(), http.MethodPost, "/v1/predict", predictBody(0))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), `"deadline"`) {
		t.Fatalf("504 body lacks code=deadline: %s", w.Body.String())
	}
}

// TestErrorBodiesCarryCode: every error body is structured JSON with a
// machine-readable code.
func TestErrorBodiesCarryCode(t *testing.T) {
	_, h := metricsFixture(t)
	w := doJSON(h, http.MethodPost, "/v1/predict", `{"pixels":[1],"shape":[3,2,2]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d", w.Code)
	}
	var body struct{ Error, Code string }
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if body.Code != "bad_request" || body.Error == "" {
		t.Fatalf("error body %+v lacks code/message", body)
	}
	if w := doJSON(h, http.MethodGet, "/v1/predict", ""); w.Code != http.StatusMethodNotAllowed ||
		!strings.Contains(w.Body.String(), "method_not_allowed") {
		t.Fatalf("method error: %d %s", w.Code, w.Body.String())
	}
}
