package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/attacks"
	"repro/internal/gtsrb"
	"repro/internal/pipeline"
)

// attackServer builds a server with the robustness endpoints wired the
// way cmd/fademl-serve does: canonical GTSRB rendering and a tight
// server-side budget so tests stay fast.
func attackServer(t testing.TB, budget attacks.Budget) *Server {
	t.Helper()
	if budget.Unlimited() {
		budget = attacks.Budget{MaxQueries: 200}
	}
	return New(servePipeline(t), Options{
		Workers:       2,
		MaxBatch:      4,
		MaxWait:       time.Millisecond,
		AttackWorkers: 2,
		AttackBudget:  budget,
		AttackTimeout: 30 * time.Second,
		Render:        gtsrb.Canonical,
		EvalCases:     []EvalCase{{Source: 3, Target: 1}},
	})
}

// TestServerAttackWithinBudget crafts one example server-side and checks
// the hard budget holds: the run's queries stay within the configured cap
// plus the documented one-iteration overshoot.
func TestServerAttackWithinBudget(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 25})
	defer s.Close()

	out, err := s.Attack(context.Background(), AttackRequest{
		Spec:   "bim(eps=0.1,alpha=0.01,steps=400,early=false)",
		Source: 2,
		Target: 1,
		TM:     pipeline.TM3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := out.AttackerResult
	if !res.Truncated {
		t.Fatalf("a 400-step attack under MaxQueries=25 must truncate: %+v", res)
	}
	// BIM without early stop costs 1 query per iteration + 1 final
	// prediction; iteration-granularity checks bound the overshoot.
	if res.Queries > 25+1 {
		t.Fatalf("server budget leaked: %d queries under a 25-query cap", res.Queries)
	}
	if out.Comparison.TMX != pipeline.TM3 {
		t.Fatalf("deployed measurement under %v, want TM3", out.Comparison.TMX)
	}
}

// TestServerAttackSpecErrors pins the input-validation surface.
func TestServerAttackSpecErrors(t *testing.T) {
	s := attackServer(t, attacks.Budget{})
	defer s.Close()
	ctx := context.Background()

	if _, err := s.Attack(ctx, AttackRequest{Spec: "nope", Source: 2, Target: 1}); err == nil {
		t.Error("unknown attack spec accepted")
	}
	if _, err := s.Attack(ctx, AttackRequest{Spec: "bim(bogus=1)", Source: 2, Target: 1}); err == nil {
		t.Error("malformed attack spec accepted")
	}
	if _, err := s.Attack(ctx, AttackRequest{Spec: "fgsm", Source: 2, Target: 1, TM: pipeline.TM1}); err == nil {
		t.Error("TM1 attack accepted (no filtered delivery to measure)")
	}
	if _, err := s.Attack(ctx, AttackRequest{Spec: "fgsm", Source: 2, Target: 99}); err == nil {
		t.Error("out-of-range target accepted")
	}
}

// TestServerAttackCancellable checks a client context cancels crafting:
// the call returns promptly with the context error or a truncated result.
func TestServerAttackCancellable(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 1 << 30})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	out, err := s.Attack(ctx, AttackRequest{
		Spec:   "bim(steps=10000,early=false)",
		Source: 2,
		Target: 1,
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled attack took %v", elapsed)
	}
	if err == nil && !out.AttackerResult.Truncated {
		t.Fatal("pre-cancelled attack neither errored nor truncated")
	}
}

// TestServerEvaluateSweep runs a small spec × tm sweep end to end and
// checks cells, summaries and budget accounting line up.
func TestServerEvaluateSweep(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 60})
	defer s.Close()

	res, err := s.Evaluate(context.Background(), EvaluateRequest{
		Specs: []string{"fgsm(eps=0.05)", "bim(steps=5)"},
		TMs:   []pipeline.ThreatModel{pipeline.TM3},
		Cases: []EvalCase{{Source: 2, Target: 1}, {Source: 1, Target: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 { // 2 specs × 1 tm × 2 cases
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}
	if len(res.Summaries) != 2 {
		t.Fatalf("summaries = %d, want 2", len(res.Summaries))
	}
	for _, c := range res.Cells {
		if c.Queries <= 0 || c.Queries > 61 {
			t.Fatalf("cell queries %d outside the server budget", c.Queries)
		}
		if c.Attack == "" {
			t.Fatal("cell lacks attack name")
		}
	}
	for _, sm := range res.Summaries {
		if sm.Cells != 2 || sm.FoolingRate < 0 || sm.FoolingRate > 1 {
			t.Fatalf("bad summary %+v", sm)
		}
	}
}

// TestServerEvaluateEnforcesBudget pins the hard server-side budget on
// the evaluate crafting path (it historically applied only to /v1/attack):
// an oversized attack spec must truncate within the query cap per cell.
func TestServerEvaluateEnforcesBudget(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 30})
	defer s.Close()

	res, err := s.Evaluate(context.Background(), EvaluateRequest{
		Specs: []string{"bim(steps=100000,early=false)"},
		Cases: []EvalCase{{Source: 2, Target: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cell := res.Cells[0]
	if !cell.Truncated {
		t.Fatalf("100000-step attack under MaxQueries=30 did not truncate: %+v", cell)
	}
	if cell.Queries > 31 {
		t.Fatalf("evaluate crafting leaked past the server budget: %d queries", cell.Queries)
	}
}

// TestServerEvaluateDefaultsAndLimits covers the configured default cases
// and the grid cap.
func TestServerEvaluateDefaultsAndLimits(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 40})
	defer s.Close()
	ctx := context.Background()

	res, err := s.Evaluate(ctx, EvaluateRequest{Specs: []string{"fgsm"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 { // Options.EvalCases has one entry
		t.Fatalf("default cases produced %d cells", len(res.Cells))
	}

	if _, err := s.Evaluate(ctx, EvaluateRequest{}); err == nil {
		t.Error("evaluate without specs accepted")
	}
	big := make([]EvalCase, maxEvalCells+1)
	for i := range big {
		big[i] = EvalCase{Source: 2, Target: 1}
	}
	if _, err := s.Evaluate(ctx, EvaluateRequest{Specs: []string{"fgsm"}, Cases: big}); err == nil {
		t.Error("oversized evaluate grid accepted")
	}
}

// TestAttackHTTPEndpoints exercises /v1/attack and /v1/evaluate through
// the HTTP handler, including the rendered-canonical-image path.
func TestAttackHTTPEndpoints(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 80})
	defer s.Close()
	h := s.Handler()

	post := func(path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewBufferString(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	w := post("/v1/attack", `{"attack": "bim(steps=5)", "source": 2, "target": 1, "tm": "3", "adv": true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/attack = %d: %s", w.Code, w.Body.String())
	}
	var atkResp struct {
		Attack     string    `json:"attack"`
		Queries    int       `json:"queries"`
		DeployedTM string    `json:"deployed_tm"`
		AdvPixels  []float64 `json:"adv_pixels"`
		AdvShape   []int     `json:"adv_shape"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &atkResp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(atkResp.Attack, "bim(") || atkResp.Queries <= 0 {
		t.Fatalf("attack response %+v", atkResp)
	}
	if atkResp.DeployedTM != "TM-III" {
		t.Fatalf("deployed_tm = %q", atkResp.DeployedTM)
	}
	if len(atkResp.AdvShape) != 3 || len(atkResp.AdvPixels) == 0 {
		t.Fatalf("adv echo missing: shape %v, %d pixels", atkResp.AdvShape, len(atkResp.AdvPixels))
	}

	w = post("/v1/evaluate", `{"attacks": ["fgsm(eps=0.05)"], "tms": ["3"], "cases": [{"source": 2, "target": 1}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/evaluate = %d: %s", w.Code, w.Body.String())
	}
	var evalResp struct {
		Cells []struct {
			Attack string `json:"attack"`
			TM     string `json:"tm"`
			Fooled bool   `json:"fooled"`
		} `json:"cells"`
		Summaries []struct {
			FoolingRate float64 `json:"fooling_rate"`
			TM          string  `json:"tm"`
		} `json:"summaries"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &evalResp); err != nil {
		t.Fatal(err)
	}
	if len(evalResp.Cells) != 1 || len(evalResp.Summaries) != 1 {
		t.Fatalf("evaluate response %+v", evalResp)
	}
	if evalResp.Cells[0].TM != "TM-III" || evalResp.Summaries[0].TM != "TM-III" {
		t.Fatalf("wire threat models wrong: %+v", evalResp)
	}

	// Error surfaces: bad spec is a 400, GET is a 405.
	if w := post("/v1/attack", `{"attack": "nope", "source": 2, "target": 1}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad spec = %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/evaluate", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/evaluate = %d", rec.Code)
	}
}

// TestAttackEndpointsDisabled covers AttackWorkers < 0.
func TestAttackEndpointsDisabled(t *testing.T) {
	s := New(servePipeline(t), Options{Workers: 1, AttackWorkers: -1})
	defer s.Close()
	if _, err := s.Attack(context.Background(), AttackRequest{Spec: "fgsm", Source: 2, Target: 1}); err != ErrAttacksDisabled {
		t.Fatalf("disabled attack err = %v", err)
	}
}

// TestServerCloseAbortsAttack checks shutdown cancels an in-flight
// crafting job instead of blocking Close behind it.
func TestServerCloseAbortsAttack(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 1 << 30})

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		// A huge attack that only shutdown can stop.
		out, err := s.Attack(context.Background(), AttackRequest{
			Spec:   "bim(steps=1000000,early=false)",
			Source: 2,
			Target: 1,
		})
		if err == nil && !out.AttackerResult.Truncated {
			t.Error("shutdown neither errored nor truncated the attack")
		}
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the job acquire its slot
	s.Close()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("attack job survived server shutdown")
	}
}
