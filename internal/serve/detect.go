package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/detect"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// Detection-as-a-service: the serving layer runs the feature-squeezing
// discrepancy detector (internal/detect) in two roles. Detect
// (/v1/detect) scores one image on demand — verdict plus per-squeezer
// breakdown — and, with Options.Detector set, every external prediction
// takes the detect-then-correct route: the worker scores each slot
// against the detector right after the raw forward, passes clean
// traffic through bit-identically (the raw row it already computed IS
// the response), and re-scores flagged inputs through the heavier
// correction chain before answering.

// Detection is the detector verdict attached to a served Prediction.
type Detection struct {
	// Score is the detector's aggregated discrepancy for this input.
	Score float64 `json:"score"`
	// Threshold is the flag cutoff in force when the verdict was made.
	Threshold float64 `json:"threshold"`
	// Flagged reports Score > Threshold.
	Flagged bool `json:"flagged"`
	// Corrected reports that the prediction was re-scored through the
	// correction chain (set only for flagged inputs on the
	// detect-then-correct route).
	Corrected bool `json:"corrected"`
}

// laneProbs runs one batched forward on the requested precision lane of
// a worker's private clones.
func (s *Server) laneProbs(wp *pipeline.Pipeline, w32 *nn.Net32, prec pipeline.Precision, imgs []*tensor.Tensor) [][]float64 {
	if prec == pipeline.Float32 {
		return w32.ProbsBatch(imgs)
	}
	return wp.Net.ProbsBatch(imgs)
}

// detectBatch is the worker-side detect-then-correct step. For each
// precision lane present it squeezes the detected slots' delivered
// tensors (one ApplyBatch per squeezer), scores all squeezed variants
// in one grouped forward against the raw rows already in rows, and
// re-routes flagged slots through the correction chain — one more
// grouped forward over just the flagged set — replacing their rows.
// Unflagged slots keep their raw rows untouched, which is what makes
// clean-pass responses bit-identical to a non-detecting server.
func (s *Server) detectBatch(det *detect.Detector, wp *pipeline.Pipeline, w32 *nn.Net32, batch []*pending, delivered []*tensor.Tensor, rows [][]float64) {
	for _, prec := range []pipeline.Precision{pipeline.Float64, pipeline.Float32} {
		var idx []int
		for i, p := range batch {
			if p.detect && p.prec == prec {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		base := make([]*tensor.Tensor, len(idx))
		for j, i := range idx {
			base[j] = delivered[i]
		}
		k := len(det.Squeezers)
		squeezed := make([]*tensor.Tensor, 0, k*len(idx))
		for _, sq := range det.Squeezers {
			squeezed = append(squeezed, sq.ApplyBatch(base)...)
		}
		var sqRows [][]float64
		if len(squeezed) > 0 {
			sqRows = s.laneProbs(wp, w32, prec, squeezed)
		}
		scores := make([]detect.Score, len(idx))
		var flagged []int // indices into idx
		per := make([][]float64, k)
		for j, i := range idx {
			for q := 0; q < k; q++ {
				per[q] = sqRows[q*len(idx)+j]
			}
			scores[j] = det.ScoreFromProbs(rows[i], per)
			if scores[j].Flagged {
				flagged = append(flagged, j)
			}
		}
		var corrRows [][]float64
		if len(flagged) > 0 && s.opts.Correction != nil {
			corrBase := make([]*tensor.Tensor, len(flagged))
			for q, j := range flagged {
				corrBase[q] = delivered[idx[j]]
			}
			corrRows = s.laneProbs(wp, w32, prec, s.opts.Correction.ApplyBatch(corrBase))
			for q, j := range flagged {
				rows[idx[j]] = corrRows[q]
			}
		}
		for j, i := range idx {
			sc := scores[j]
			corrected := sc.Flagged && corrRows != nil
			batch[i].verdict = &Detection{
				Score:     sc.Score,
				Threshold: det.Threshold,
				Flagged:   sc.Flagged,
				Corrected: corrected,
			}
			s.metrics.recordDetection(sc.Score, sc.Flagged, corrected)
		}
	}
}

// DetectRequest describes one on-demand detection job.
type DetectRequest struct {
	// Image is the CHW image to score (must match the model input shape).
	Image *tensor.Tensor
	// Spec is the detector spec, e.g.
	// "detect(squeezers=(bitdepth(bits=4),median(r=1)),thr=0.6)" or bare
	// "detect" for the default ensemble. Empty selects the server's
	// configured detector (Options.Detector).
	Spec string
	// TM is the threat model whose delivered view is scored. The zero
	// value selects TM-I — the detector guards the DNN input buffer, the
	// view an adversarial payload arrives in.
	TM pipeline.ThreatModel
	// Model selects the probing model ("" = active default; see
	// Server.PredictModel for the reference syntax).
	Model string
}

// DetectResult is the outcome of one Detect call.
type DetectResult struct {
	// Detector is the canonical Name() of the detector that ran.
	Detector string
	// TM is the threat model the image was delivered under before
	// scoring.
	TM pipeline.ThreatModel
	// Verdict is the score, flag and per-squeezer breakdown.
	Verdict detect.Score
	// Threshold echoes the detector's flag cutoff.
	Threshold float64
	// Prediction is the model's answer on the raw delivered view, with
	// the verdict attached (never corrected — Detect reports, the
	// detect-then-correct route rewrites).
	Prediction *Prediction
}

// Detect scores one image against a discrepancy detector: the raw
// delivered view plus every squeezed variant are enqueued together on
// the micro-batching pool — they coalesce into the same micro-batch, so
// one detect call costs one grouped forward pass — and the resulting
// probability vectors feed the detector's scoring kernel. Detect rides
// the interactive admission lane under Options.DefendDeadline, and
// results are content-addressed: a repeat (image, detector spec, tm)
// query is answered from cache without squeezing or admission.
func (s *Server) Detect(ctx context.Context, req DetectRequest) (*DetectResult, error) {
	if req.Image == nil {
		return nil, errors.New("serve: nil image")
	}
	tm := req.TM
	if tm == 0 {
		tm = pipeline.TM1
	}
	m, err := s.resolveModel(req.Model)
	if err != nil {
		return nil, err
	}
	defer m.release()
	if err := s.validate(m, req.Image, tm, pipeline.Float64); err != nil {
		return nil, err
	}
	det := s.opts.Detector
	if req.Spec != "" {
		parsed, err := detect.Parse(req.Spec)
		if err != nil {
			return nil, err
		}
		if parsed == nil {
			return nil, fmt.Errorf("serve: detector spec %q disables detection; nothing to score", req.Spec)
		}
		det = parsed
	}
	if det == nil {
		return nil, errors.New("serve: no detector configured (set Options.Detector or pass a spec)")
	}
	var key cacheKey
	if s.cache != nil {
		key = detectCacheKey(m, req.Image, det.Name(), tm)
		if v, ok := s.cache.get(key); ok {
			return v.(cachedDetect).result(), nil
		}
	}
	if err := s.refuseNew(); err != nil {
		return nil, err
	}
	releaseLane, err := s.interactive.admit(1)
	if err != nil {
		return nil, err
	}
	defer releaseLane()
	ctx, cancel := routeContext(ctx, s.opts.DefendDeadline)
	defer cancel()
	// Delivery and squeezing are pure CPU work with no model state; they
	// run on the request goroutine like Defend's filtering.
	deliveredView := req.Image
	if tm != pipeline.TM1 {
		deliveredView = pipeline.DeliverThrough(req.Image, s.filter, s.acq, tm)
	}
	verdict, raw, err := s.detectOn(ctx, m, det, deliveredView)
	if err != nil {
		return nil, err
	}
	s.metrics.recordDetection(verdict.Score, verdict.Flagged, false)
	pred := copyPrediction(raw)
	pred.TM = tm
	pred.Detection = &Detection{Score: verdict.Score, Threshold: det.Threshold, Flagged: verdict.Flagged}
	res := &DetectResult{
		Detector:   det.Name(),
		TM:         tm,
		Verdict:    verdict,
		Threshold:  det.Threshold,
		Prediction: &pred,
	}
	if s.cache != nil {
		s.cache.put(key, newCachedDetect(res))
	}
	return res, nil
}

// detectOn scores one already-delivered view: raw image plus squeezed
// variants through the model's pool in one coalescing enqueue, then the
// detector's scoring kernel over the probability rows. Returns the
// verdict and the raw-view prediction.
func (s *Server) detectOn(ctx context.Context, m *servedModel, det *detect.Detector, view *tensor.Tensor) (detect.Score, Prediction, error) {
	variants := make([]*tensor.Tensor, 0, len(det.Squeezers)+1)
	variants = append(variants, view)
	for _, sq := range det.Squeezers {
		variants = append(variants, sq.Apply(view))
	}
	preds, err := s.predictBatchInternal(ctx, m, variants)
	if err != nil {
		return detect.Score{}, Prediction{}, err
	}
	squeezed := make([][]float64, len(preds)-1)
	for i := range squeezed {
		squeezed[i] = preds[i+1].Probs
	}
	return det.ScoreFromProbs(preds[0].Probs, squeezed), preds[0], nil
}

// predictBatchInternal scores already-delivered TM-I views through the
// model's micro-batching pool on the reference lane, for the server's
// own composite jobs (Detect's raw+squeezed variant set, the Evaluate
// sweep's detection axis). All images are enqueued before any reply is
// awaited, so they coalesce into the same micro-batch; like
// predictInternal, it skips lane admission (the caller's slot already
// accounts for the job), per-route deadlines and the draining refusal,
// and never takes the detect-then-correct route.
func (s *Server) predictBatchInternal(ctx context.Context, m *servedModel, imgs []*tensor.Tensor) ([]Prediction, error) {
	out := make([]Prediction, len(imgs))
	ps := make([]*pending, len(imgs))
	now := time.Now()
	for i, img := range imgs {
		if err := s.validate(m, img, pipeline.TM1, pipeline.Float64); err != nil {
			return nil, err
		}
		if pred, _, ok := s.lookupPrediction(m, img, pipeline.TM1, pipeline.Float64, ""); ok {
			out[i] = pred
			continue
		}
		p := &pending{img: img, tm: pipeline.TM1, prec: pipeline.Float64, ctx: ctx, enq: now, done: make(chan reply, 1)}
		select {
		case m.pool.queue <- p:
			s.requests.Add(1)
			m.requests.Add(1)
		case <-s.done:
			s.abandon(ps[:i])
			return nil, ErrServerClosed
		case <-ctx.Done():
			s.abandon(ps[:i])
			return nil, ctx.Err()
		}
		ps[i] = p
	}
	for i, p := range ps {
		if p == nil {
			continue
		}
		select {
		case r := <-p.done:
			if r.err != nil {
				return nil, r.err
			}
			s.cacheReply(m, imgs[i], pipeline.TM1, pipeline.Float64, "", r)
			out[i] = r.pred
		case <-s.done:
			<-s.drained
			select {
			case r := <-p.done:
				if r.err != nil {
					return nil, r.err
				}
				out[i] = r.pred
			default:
				return nil, ErrServerClosed
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// CalibrateDetector re-anchors the configured detector's threshold to a
// target clean false-positive rate over images, scoring through the
// active model's micro-batching pool (so the calibration view is
// exactly the serving view). It must run before the server takes
// external traffic — the threshold and the cache-key spec are updated
// in place. Returns the chosen threshold.
func (s *Server) CalibrateDetector(ctx context.Context, images []*tensor.Tensor, fpr float64) (float64, error) {
	det := s.opts.Detector
	if det == nil {
		return 0, errors.New("serve: no detector configured")
	}
	if len(images) == 0 {
		return 0, errors.New("serve: calibrate needs at least one clean image")
	}
	if fpr < 0 || fpr >= 1 {
		return 0, fmt.Errorf("serve: calibrate fpr %v out of range [0, 1)", fpr)
	}
	m, err := s.resolveModel("")
	if err != nil {
		return 0, err
	}
	defer m.release()
	scores := make([]float64, len(images))
	for i, img := range images {
		sc, _, err := s.detectOn(ctx, m, det, img)
		if err != nil {
			return 0, err
		}
		scores[i] = sc.Score
	}
	thr := detect.QuantileThreshold(scores, fpr)
	det.Threshold = thr
	s.detSpec = det.Name()
	return thr, nil
}

// DetectorSpec returns the canonical spec of the configured detector,
// or "" when detection is off.
func (s *Server) DetectorSpec() string { return s.detSpec }

// InputShape returns the active model's expected image shape (CHW).
func (s *Server) InputShape() []int {
	return append([]int(nil), s.active.Load().inShape...)
}

// cachedDetect is the stored form of a Detect result.
type cachedDetect struct {
	detector  string
	tm        pipeline.ThreatModel
	verdict   detect.Score
	threshold float64
	pred      Prediction
}

func newCachedDetect(res *DetectResult) cachedDetect {
	c := cachedDetect{
		detector:  res.Detector,
		tm:        res.TM,
		verdict:   res.Verdict,
		threshold: res.Threshold,
		pred:      copyPrediction(*res.Prediction),
	}
	c.verdict.PerSqueezer = append([]detect.SqueezerScore(nil), res.Verdict.PerSqueezer...)
	return c
}

// result converts a cache entry into a caller-owned DetectResult.
func (c cachedDetect) result() *DetectResult {
	pred := copyPrediction(c.pred)
	verdict := c.verdict
	verdict.PerSqueezer = append([]detect.SqueezerScore(nil), c.verdict.PerSqueezer...)
	return &DetectResult{
		Detector:   c.detector,
		TM:         c.tm,
		Verdict:    verdict,
		Threshold:  c.threshold,
		Prediction: &pred,
	}
}
