package serve

import (
	"context"
	"errors"

	"repro/internal/filters"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// Defense-as-a-service: the serving layer exposes the filter library next
// to inference and the robustness endpoints. Defend (/v1/defend) runs one
// image through a spec'd filter chain — the deployed filter by default —
// and Evaluate's filters axis sweeps fooling rates over attack spec ×
// filter spec × threat model (see attack.go).

// DefendRequest describes one server-side filtering job.
type DefendRequest struct {
	// Image is the CHW image to filter (must match the model input shape).
	Image *tensor.Tensor
	// Spec is the filter spec, e.g. "median(r=2)" or
	// "chain(median(r=1),histeq(bins=64))". Empty selects the deployed
	// filter; "none" is the explicit no-op.
	Spec string
	// Predict also scores the filtered image through the micro-batching
	// prediction pool (the selected model's view of the defended input).
	Predict bool
	// Model selects the scoring model ("" = active default; see
	// Server.PredictModel for the reference syntax).
	Model string
}

// DefendResult is the outcome of one Defend call.
type DefendResult struct {
	// Filter is the canonical Name() of the filter that ran.
	Filter string
	// Filtered is the filtered image (caller-owned).
	Filtered *tensor.Tensor
	// Prediction is the deployed model's classification of the filtered
	// image; nil unless DefendRequest.Predict was set.
	Prediction *Prediction
}

// Defend filters one image through a spec'd chain. Filtering runs on the
// request goroutine (it is pure CPU work with no model state); the
// optional prediction of the filtered image coalesces with live traffic
// through the micro-batching pool. Defend rides the interactive admission
// lane under Options.DefendDeadline, and results are content-addressed:
// a repeat (image, filter spec, predict) query is answered from cache
// without filtering or admission.
func (s *Server) Defend(ctx context.Context, req DefendRequest) (*DefendResult, error) {
	if req.Image == nil {
		return nil, errors.New("serve: nil image")
	}
	m, err := s.resolveModel(req.Model)
	if err != nil {
		return nil, err
	}
	defer m.release()
	if err := s.validate(m, req.Image, pipeline.TM1, pipeline.Float64); err != nil {
		return nil, err
	}
	f := s.filter
	if req.Spec != "" {
		parsed, err := filters.Parse(req.Spec)
		if err != nil {
			return nil, err
		}
		if parsed == nil {
			parsed = filters.Identity{}
		}
		f = parsed
	}
	var key cacheKey
	if s.cache != nil {
		key = defendCacheKey(m, req.Image, f.Name(), req.Predict)
		if v, ok := s.cache.get(key); ok {
			return v.(cachedDefend).result(), nil
		}
	}
	if err := s.refuseNew(); err != nil {
		return nil, err
	}
	releaseLane, err := s.interactive.admit(1)
	if err != nil {
		return nil, err
	}
	defer releaseLane()
	ctx, cancel := routeContext(ctx, s.opts.DefendDeadline)
	defer cancel()
	res := &DefendResult{Filter: f.Name(), Filtered: f.Apply(req.Image)}
	if req.Predict {
		// The slot held above already accounts for this request;
		// predictInternal skips a second admission pass.
		pred, err := s.predictInternal(ctx, m, res.Filtered, pipeline.TM1)
		if err != nil {
			return nil, err
		}
		res.Prediction = &pred
	}
	if s.cache != nil {
		entry := cachedDefend{filter: res.Filter, filtered: res.Filtered.Clone()}
		if res.Prediction != nil {
			p := copyPrediction(*res.Prediction)
			entry.pred = &p
		}
		s.cache.put(key, entry)
	}
	return res, nil
}
