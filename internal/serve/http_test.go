package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/pipeline"
)

func startHTTP(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	pipe := servePipeline(t)
	s := New(pipe, Options{
		Workers: 2, MaxBatch: 8, MaxWait: time.Millisecond,
		ClassName: gtsrb.ClassName,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func imgPayload(class int) map[string]any {
	img := gtsrb.Canonical(class, 16)
	return map[string]any{"pixels": img.Data(), "shape": img.Shape()}
}

func TestHTTPPredict(t *testing.T) {
	s, ts := startHTTP(t)
	pipe := servePipeline(t)

	body := imgPayload(gtsrb.ClassStop)
	body["tm"] = "tm3"
	body["probs"] = true
	resp, raw := postJSON(t, ts.URL+"/v1/predict", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var got predictResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("bad JSON %q: %v", raw, err)
	}
	want := pipe.Probs(gtsrb.Canonical(gtsrb.ClassStop, 16), pipeline.TM3)
	if len(got.Probs) != len(want) {
		t.Fatalf("probs len %d, want %d", len(got.Probs), len(want))
	}
	for i, v := range want {
		if got.Probs[i] != v {
			t.Fatalf("served prob[%d] = %v, direct %v", i, got.Probs[i], v)
		}
	}
	if got.TM != "TM-III" || got.Prob != want[got.Class] {
		t.Fatalf("response %+v inconsistent", got)
	}
	if got.Label == "" {
		t.Fatal("ClassName labeling not applied")
	}

	// Without "probs" the vector is omitted.
	resp2, raw2 := postJSON(t, ts.URL+"/v1/predict", imgPayload(gtsrb.ClassStop))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp2.StatusCode)
	}
	var lean map[string]any
	if err := json.Unmarshal(raw2, &lean); err != nil {
		t.Fatal(err)
	}
	if _, present := lean["probs"]; present {
		t.Fatal("probs echoed without being requested")
	}
	_ = s
}

func TestHTTPPredictBatch(t *testing.T) {
	_, ts := startHTTP(t)
	body := map[string]any{
		"images": []map[string]any{imgPayload(gtsrb.ClassStop), imgPayload(gtsrb.ClassSpeed60)},
		"tm":     "2",
	}
	resp, raw := postJSON(t, ts.URL+"/v1/predict_batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict_batch status %d: %s", resp.StatusCode, raw)
	}
	var got struct {
		Results []predictResponse `json:"results"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 2 {
		t.Fatalf("%d results, want 2", len(got.Results))
	}
	for i, r := range got.Results {
		if r.TM != "TM-II" || r.Prob <= 0 {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := startHTTP(t)
	cases := []struct {
		name   string
		path   string
		body   any
		status int
	}{
		{"bad tm", "/v1/predict", func() map[string]any { b := imgPayload(0); b["tm"] = "tm9"; return b }(), http.StatusBadRequest},
		{"shape mismatch", "/v1/predict", map[string]any{"pixels": []float64{1, 2, 3}, "shape": []int{3}}, http.StatusBadRequest},
		{"pixel count mismatch", "/v1/predict", map[string]any{"pixels": []float64{1}, "shape": []int{3, 16, 16}}, http.StatusBadRequest},
		{"missing shape", "/v1/predict", map[string]any{"pixels": []float64{1}}, http.StatusBadRequest},
		{"empty batch", "/v1/predict_batch", map[string]any{"images": []any{}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, raw := postJSON(t, ts.URL+c.path, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.status, raw)
			continue
		}
		var e map[string]string
		if err := json.Unmarshal(raw, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body %q not structured", c.name, raw)
		}
	}

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}

	// Wrong methods.
	for path, method := range map[string]string{
		"/v1/predict": http.MethodGet,
		"/v1/healthz": http.MethodPost,
		"/v1/stats":   http.MethodPost,
	} {
		req, _ := http.NewRequest(method, ts.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", method, path, resp.StatusCode)
		}
	}
}

func TestHTTPHealthzAndStats(t *testing.T) {
	_, ts := startHTTP(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, health)
	}

	// Drive a little traffic, then read the counters back.
	for i := 0; i < 3; i++ {
		r, raw := postJSON(t, ts.URL+"/v1/predict", imgPayload(i))
		if r.StatusCode != http.StatusOK {
			t.Fatalf("warmup predict %d: %d %s", i, r.StatusCode, raw)
		}
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests < 3 || st.Batches == 0 || st.MeanBatchOccupancy < 1 {
		t.Fatalf("stats after traffic = %+v", st)
	}
	if st.MaxBatch != 8 || st.Workers != 2 {
		t.Fatalf("stats config echo = %+v", st)
	}
}

// TestHTTPModelsAdmin drives the whole versioned-model admin surface
// over the wire: healthz model identity, the /v1/models catalog, loading
// a sibling version, pinning it per-request, an HTTP hot-swap of the
// default, unload rules, and the model gauges on /metrics.
func TestHTTPModelsAdmin(t *testing.T) {
	reg, v1 := testStore(t)
	s := NewFromModel(v1, filters.NewLAP(8), pipeline.DefaultAcquisition(11),
		Options{Workers: 2, MaxBatch: 4, MaxWait: time.Millisecond, Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	img := testImages(1)[0]
	predict := func(model string) (int, predictResponse) {
		body := map[string]any{"pixels": img.Data(), "shape": img.Shape()}
		if model != "" {
			body["model"] = model
		}
		resp, raw := postJSON(t, ts.URL+"/v1/predict", body)
		var pr predictResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(raw, &pr); err != nil {
				t.Fatalf("predict response %q: %v", raw, err)
			}
		}
		return resp.StatusCode, pr
	}

	// healthz reports the identity of the model answering by default.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Model struct {
			Name       string `json:"name"`
			Version    string `json:"version"`
			Model      string `json:"model"`
			WeightHash string `json:"weight_hash"`
		} `json:"model"`
		ModelsLoaded int `json:"models_loaded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Model.Model != "m@v1" || health.Model.Name != "m" || health.Model.WeightHash == "" {
		t.Fatalf("healthz model identity = %+v", health.Model)
	}
	if health.ModelsLoaded != 1 {
		t.Fatalf("models_loaded = %d, want 1", health.ModelsLoaded)
	}

	// GET /v1/models: the active version plus the registry catalog.
	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Active   string        `json:"active"`
		Models   []ModelStatus `json:"models"`
		Registry []string      `json:"registry"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Active != "m@v1" || len(list.Models) != 1 {
		t.Fatalf("GET /v1/models = %+v", list)
	}
	if len(list.Registry) != 2 {
		t.Fatalf("registry catalog = %v, want both versions", list.Registry)
	}

	// Load the sibling version and pin it per-request: the response must
	// label the version that answered.
	resp2, raw := postJSON(t, ts.URL+"/v1/models", map[string]any{"action": "load", "model": "m@v2"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("load: %d %s", resp2.StatusCode, raw)
	}
	var action struct {
		Action, Model, Active string
	}
	if err := json.Unmarshal(raw, &action); err != nil {
		t.Fatal(err)
	}
	if action.Model != "m@v2" || action.Active != "m@v1" {
		t.Fatalf("load response = %+v (load must not change the default)", action)
	}
	if code, pr := predict("m@v2"); code != http.StatusOK || pr.Model != "m@v2" {
		t.Fatalf("pinned predict = %d, model %q", code, pr.Model)
	}
	if code, pr := predict(""); code != http.StatusOK || pr.Model != "m@v1" {
		t.Fatalf("default predict before swap = %d, model %q", code, pr.Model)
	}

	// Hot-swap the default over HTTP, keeping v1 loaded for pinning.
	resp2, raw = postJSON(t, ts.URL+"/v1/models", map[string]any{"action": "activate", "model": "m@v2", "keep": true})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("activate: %d %s", resp2.StatusCode, raw)
	}
	if code, pr := predict(""); code != http.StatusOK || pr.Model != "m@v2" {
		t.Fatalf("default predict after swap = %d, model %q", code, pr.Model)
	}
	if code, pr := predict("m@v1"); code != http.StatusOK || pr.Model != "m@v1" {
		t.Fatalf("kept version predict = %d, model %q", code, pr.Model)
	}

	// Unload rules: the active version refuses, the kept one retires.
	if resp2, raw = postJSON(t, ts.URL+"/v1/models", map[string]any{"action": "unload", "model": "m@v2"}); resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unloading the active model = %d %s, want 400", resp2.StatusCode, raw)
	}
	if resp2, raw = postJSON(t, ts.URL+"/v1/models", map[string]any{"action": "unload", "model": "m@v1"}); resp2.StatusCode != http.StatusOK {
		t.Fatalf("unload kept: %d %s", resp2.StatusCode, raw)
	}
	if code, _ := predict("m@v1"); code != http.StatusBadRequest {
		t.Fatalf("predict on unloaded version = %d, want 400", code)
	}
	if resp2, raw = postJSON(t, ts.URL+"/v1/models", map[string]any{"action": "reboot", "model": "m"}); resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown action = %d %s, want 400", resp2.StatusCode, raw)
	}

	// The swap and the per-model gauges are visible on /metrics.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(b)
	for _, want := range []string{
		`fademl_model_active{model="m@v2"} 1`,
		"fademl_model_swaps_total 1",
		`fademl_model_requests_total{model="m@v2"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// Example of the one-liner smoke the CI workflow runs against a live
// fademl-serve process.
func TestHTTPSmokeLine(t *testing.T) {
	_, ts := startHTTP(t)
	resp, raw := postJSON(t, ts.URL+"/v1/predict", imgPayload(gtsrb.ClassStop))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("smoke: %d %s", resp.StatusCode, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("smoke: invalid JSON: %v", err)
	}
	if _, ok := out["class"]; !ok {
		t.Fatalf("smoke: no class field in %s", raw)
	}
}
