// Package serve is the online inference layer of the reproduction: a
// concurrent prediction service with dynamic micro-batching in front of
// the paper's Fig. 2 pipeline.
//
// Architecture (model table of queue → micro-batch → clone pools):
//
//	clients ──► model table ──► coalescing queue ──► batcher ──► worker pool
//	             (per-request     (chan *pending,     (flush on    (one weight-
//	              name@version     one per model)      full or      sharing clone
//	              selection;                           linger)      per worker,
//	              atomic default)                                   one batched
//	                                                                forward per
//	                                                                batch)
//
// Single-image requests from concurrent clients are coalesced: each
// model's batcher drains its queue into a batch of up to MaxBatch
// requests, waiting at most MaxWait after the first request before
// flushing, and hands the batch to a worker that delivers every image
// under its threat model (pipeline.Deliver) and scores the whole batch
// through one nn.Network.ProbsBatch forward. Because batched rows are
// bit-identical to single-image calls and TM-II acquisition is a pure
// function of (seed, image), a served prediction is bit-identical to a
// direct pipeline.Probs call for the same image — batching is purely a
// throughput optimization.
//
// Models are versioned (internal/registry): a request may pin
// "name@version", and the default model hot-swaps atomically under live
// traffic — new worker clones are built and warmed before the switch,
// the old version drains its in-flight requests and retires, and
// nothing is shed or failed during the swap (model.go).
//
// Survivability layer (admission → cache → deadlines → chaos):
//
// In front of the queues sit two bounded admission lanes — interactive
// (Predict/PredictBatch/Defend) and bulk (Attack/Evaluate) — so a flood
// of crafting traffic can never starve prediction (admission.go); a
// content-addressed LRU whose keys carry the model identity answers
// repeat queries bit-identically without worker time (cache.go);
// per-route deadlines bound how long any request may hold resources;
// fault-injection hooks exercise the failure paths (chaos.go); and GET
// /metrics exposes the whole state in Prometheus text format
// (metrics.go). BeginDrain flips the server into a refuse-new/finish-
// in-flight drain ahead of Close.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attacks"
	"repro/internal/detect"
	"repro/internal/filters"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/registry"
	"repro/internal/tensor"
)

// ErrServerClosed is returned by Predict/PredictBatch after Close.
var ErrServerClosed = errors.New("serve: server closed")

// Options configures a Server. The zero value selects sensible defaults.
type Options struct {
	// Workers is the per-model clone-pool size (goroutines running batched
	// inference, each on its own weight-sharing Network.Clone).
	// <= 0 selects runtime.NumCPU().
	Workers int
	// MaxBatch is the flush-on-full threshold: a batch is dispatched as
	// soon as this many requests have coalesced. <= 0 selects 16.
	// 1 disables micro-batching (request-at-a-time serving).
	MaxBatch int
	// MaxWait is the flush-on-linger bound: a batch is dispatched at most
	// this long after its first request arrived, full or not.
	// <= 0 selects 2ms.
	MaxWait time.Duration
	// DefaultTM is the threat model used when a request does not name one
	// (Predict with tm == 0). Zero selects TM2, the full capture + filter
	// path every benign input takes through the deployed system.
	DefaultTM pipeline.ThreatModel
	// Precision is the numeric lane used when a request does not name one
	// (Predict, and HTTP requests without a "precision" field). The zero
	// value is pipeline.Float64, the reference lane; pipeline.Float32
	// selects the fused float32 fast path. Per-request overrides go
	// through PredictPrec / the HTTP "precision" field; float32 requests
	// are refused if the selected model has no float32 lowering.
	Precision pipeline.Precision
	// ClassName, when set, labels predictions (e.g. gtsrb.ClassName).
	ClassName func(int) string
	// Registry, when set, backs the model-management surface: LoadModel/
	// Activate (and POST /v1/models) resolve "name@version" references
	// against it and hot-swap the loaded result under live traffic. Nil
	// limits model selection to versions already in the table (the one the
	// server was constructed over).
	Registry *registry.Registry

	// Robustness endpoints (Attack/Evaluate, /v1/attack, /v1/evaluate).

	// AttackWorkers caps concurrent server-side crafting jobs, each on its
	// own pipeline clone. 0 selects 1; negative disables the endpoints.
	AttackWorkers int
	// AttackBudget is the hard per-crafting-run work cap. The zero value
	// selects MaxQueries 5000 — a server must never run an unbounded
	// client-supplied optimization.
	AttackBudget attacks.Budget
	// AttackTimeout is the per-crafting-run wall-clock cap (<= 0 selects
	// 30s).
	AttackTimeout time.Duration
	// Render produces the canonical class image at a given size for
	// requests that name a source class without supplying pixels
	// (e.g. gtsrb.Canonical). Nil requires explicit images.
	Render func(class, size int) *tensor.Tensor
	// EvalCases is the default scenario list for Evaluate requests that
	// carry none (e.g. the paper's five payloads).
	EvalCases []EvalCase

	// Detection (feature-squeezing discrepancy detector; /v1/detect and
	// the detect-then-correct serving mode).

	// Detector, when set, turns on detection-as-a-service: every external
	// prediction is scored against it and carries a verdict, flagged
	// inputs are re-routed through Correction before scoring
	// (detect-then-correct) while clean-pass traffic keeps the existing
	// fast lane bit-identically, and /v1/detect answers without an
	// explicit per-request spec. Server-internal measurement traffic (the
	// Evaluate sweep's views) is never detect-routed, so the paper
	// metrics are unaffected. Nil disables detection.
	Detector *detect.Detector
	// Correction is the heavier correction chain flagged inputs are
	// routed through: the flagged input's delivered tensor is filtered by
	// Correction and re-scored, and that corrected prediction is what the
	// client receives. Nil selects a chain of the detector's own
	// squeezers. Ignored without a Detector.
	Correction filters.Filter

	// Survivability (admission control, load shedding, per-route
	// deadlines, content-addressed caching, fault injection).

	// InteractiveLimit caps admitted-but-unfinished interactive requests
	// (Predict/PredictBatch/Defend — queued and in flight both count).
	// Excess load is shed with an OverloadError (HTTP 429 + Retry-After)
	// instead of queuing unboundedly. 0 selects 4 × Workers × MaxBatch;
	// negative disables the bound.
	InteractiveLimit int
	// BulkLimit caps admitted-but-unfinished bulk requests (Attack/
	// Evaluate), slot waiters included, so crafting backlog is refused
	// honestly instead of piling up behind AttackWorkers. 0 selects
	// 4 × AttackWorkers; negative disables the bound.
	BulkLimit int
	// PredictDeadline is the server-side SLO applied to each Predict
	// (and, scaled by the number of spanned micro-batches, PredictBatch):
	// the request fails with context.DeadlineExceeded (HTTP 504) rather
	// than holding a worker past the lane's SLO. <= 0 disables;
	// cmd/fademl-serve defaults it to 500ms.
	PredictDeadline time.Duration
	// DefendDeadline is the per-route SLO for Defend (<= 0 disables;
	// cmd/fademl-serve defaults it to 2s).
	DefendDeadline time.Duration
	// EvaluateTimeout caps one whole Evaluate sweep (per-cell crafting is
	// separately capped by AttackTimeout). <= 0 disables; cmd/fademl-serve
	// defaults it to 2m.
	EvaluateTimeout time.Duration
	// CacheSize bounds the content-addressed prediction/defend cache in
	// entries. Responses are pure functions of the request content — the
	// model identity (name@version + weight hash) is part of every key,
	// so a hit is bit-identical to recomputation on that exact version and
	// a hot-swap can never serve a stale-version result. 0 selects 4096;
	// negative disables caching.
	CacheSize int
	// Chaos injects faults (delayed batches, killed workers, failed
	// batches) for the survivability harness. nil injects nothing.
	Chaos *Chaos
}

// withDefaults resolves zero fields to the documented defaults.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.DefaultTM == 0 {
		o.DefaultTM = pipeline.TM2
	}
	if !o.Precision.Valid() {
		o.Precision = pipeline.Float64
	}
	if o.AttackWorkers == 0 {
		o.AttackWorkers = 1
	}
	if o.AttackBudget.Unlimited() {
		o.AttackBudget = Budget{MaxQueries: 5000}
	}
	if o.AttackTimeout <= 0 {
		o.AttackTimeout = 30 * time.Second
	}
	if o.InteractiveLimit == 0 {
		o.InteractiveLimit = 4 * o.Workers * o.MaxBatch
	}
	if o.BulkLimit == 0 {
		o.BulkLimit = 4 * o.AttackWorkers
	}
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.Detector != nil && o.Correction == nil {
		o.Correction = filters.Chain(append([]filters.Filter(nil), o.Detector.Squeezers...))
	}
	return o
}

// Budget re-exports the attack work cap for Options literals.
type Budget = attacks.Budget

// Prediction is the per-request result: one model's view of one image
// under one threat model.
type Prediction struct {
	// Class is the argmax class index.
	Class int
	// Label is ClassName(Class) when Options.ClassName is set.
	Label string
	// Prob is the softmax probability of Class.
	Prob float64
	// Probs is the full probability vector (caller-owned).
	Probs []float64
	// TM is the threat model the image was delivered under.
	TM pipeline.ThreatModel
	// Precision is the numeric lane the forward pass ran on.
	Precision pipeline.Precision
	// Model is the "name@version" that answered — under a hot-swap,
	// clients see exactly which version served each response.
	Model string
	// Detection is the detector's verdict when the server runs in
	// detect-then-correct mode (Options.Detector); nil otherwise. When
	// Corrected is set, Class/Prob/Probs describe the corrected
	// (re-filtered) forward, not the raw one.
	Detection *Detection
}

// Stats is a snapshot of the server's serving counters.
type Stats struct {
	// Requests is the number of accepted prediction requests.
	Requests uint64 `json:"requests"`
	// Batches is the number of micro-batches dispatched to workers.
	Batches uint64 `json:"batches"`
	// MeanBatchOccupancy is Requests-completed / Batches — > 1 means
	// coalescing is happening.
	MeanBatchOccupancy float64 `json:"mean_batch_occupancy"`
	// P50LatencyMs / P99LatencyMs are enqueue-to-reply percentiles over a
	// sliding window of recent requests.
	P50LatencyMs float64 `json:"p50_latency_ms"`
	P99LatencyMs float64 `json:"p99_latency_ms"`
	// Workers, MaxBatch and MaxWaitMs echo the effective configuration.
	Workers   int     `json:"workers"`
	MaxBatch  int     `json:"max_batch"`
	MaxWaitMs float64 `json:"max_wait_ms"`
	// Model is the active default "name@version"; Swaps counts completed
	// hot-swaps; ModelsLoaded the table size.
	Model        string `json:"model"`
	Swaps        uint64 `json:"swaps"`
	ModelsLoaded int    `json:"models_loaded"`
	// Interactive and Bulk are the admission-lane snapshots.
	Interactive LaneStats `json:"interactive"`
	Bulk        LaneStats `json:"bulk"`
	// Cache is the content-addressed cache snapshot.
	Cache CacheStats `json:"cache"`
	// Draining reports BeginDrain-to-Close state.
	Draining bool `json:"draining"`
}

// latWindow is the sliding-window size for latency percentiles.
const latWindow = 2048

// pending is one enqueued request awaiting a worker.
type pending struct {
	img  *tensor.Tensor
	tm   pipeline.ThreatModel
	prec pipeline.Precision
	// ctx is the requesting client's context: a worker sheds the slot
	// without spending a forward on it once the client has given up.
	ctx  context.Context
	enq  time.Time
	done chan reply
	// detect marks external traffic subject to the detect-then-correct
	// route; the server's own measurement traffic leaves it false so the
	// Evaluate sweep's numbers never change under detection. verdict is
	// filled by the worker for detected slots.
	detect  bool
	verdict *Detection
}

type reply struct {
	pred Prediction
	err  error
}

// answer delivers the reply exactly once; extra calls (the worker panic
// path re-replying an already-answered slot) are dropped.
func (p *pending) answer(r reply) {
	select {
	case p.done <- r:
	default:
	}
}

// Server is a concurrent micro-batching inference service over a table
// of versioned models. Construct with New (one pipeline) or NewFromModel
// (a registry entry), serve via Predict/PredictBatch (or the HTTP
// Handler), manage versions with LoadModel/Activate/UnloadModel, stop
// with Close.
type Server struct {
	opts Options
	// filter and acq are the deployment's pre-processing stages, shared
	// by every model in the table (models differ in weights and topology;
	// the deployed defense is a property of the deployment).
	filter filters.Filter
	acq    *pipeline.Acquisition

	// models is the table of loaded versions keyed by "name@version";
	// active is the default model (atomic so the predict hot path never
	// takes a lock); swapMu serializes load/activate/unload.
	modelMu sync.Mutex
	models  map[string]*servedModel
	active  atomic.Pointer[servedModel]
	swapMu  sync.Mutex
	swaps   atomic.Uint64

	// attackers holds the idle crafting slots for the robustness
	// endpoints (nil when disabled).
	attackers chan *attacker
	done      chan struct{}
	// drained closes once every pool's batcher and workers have exited —
	// after that, every reply that will ever be sent is already sitting
	// in its (buffered) pending.done channel.
	drained chan struct{}

	// detSpec is the canonical spec of the configured detector ("" when
	// detection is off); it is part of every external prediction's cache
	// key so toggling detect-then-correct can never replay a cached
	// answer from the wrong routing mode. Guarded by detMu only around
	// CalibrateDetector (a pre-traffic operation); the hot path reads it
	// without locking.
	detSpec string

	// interactive and bulk are the admission lanes; cache the
	// content-addressed result cache (nil when disabled); metrics the
	// /metrics instruments; draining the BeginDrain flag.
	interactive *lane
	bulk        *lane
	cache       *contentCache
	metrics     *serverMetrics
	draining    atomic.Bool

	closeOnce   sync.Once
	drainedOnce sync.Once
	wg          sync.WaitGroup

	requests      atomic.Uint64
	batchCount    atomic.Uint64
	batchedImages atomic.Uint64

	latMu    sync.Mutex
	lat      [latWindow]float64 // ring of recent latencies in ms
	latIdx   int
	latCount int
}

// New builds and starts a server over the deployed pipeline p. Each
// worker runs on its own weight-sharing clone of p.Net, so the caller's
// pipeline remains free for direct use. The pipeline's model identity
// (pipeline.NewModel) becomes the table entry; an anonymous pipeline is
// registered as "<network name>@v0" with its weight hash computed on the
// spot. Panics on a nil pipeline (matching pipeline.New); bad option
// values are replaced by defaults.
func New(p *pipeline.Pipeline, opts Options) *Server {
	if p == nil {
		panic("serve: nil pipeline")
	}
	id := p.Model
	if id.IsZero() {
		id = pipeline.ModelID{Name: p.Net.Name(), Version: "v0"}
	}
	if id.WeightHash == "" {
		if h, err := p.Net.WeightHash(); err == nil {
			id.WeightHash = h
		}
	}
	// Build the float32 lane once from the trained weights; workers clone
	// the snapshot (sharing the converted weights, owning scratch). A
	// model with no float32 lowering leaves the lane disabled — float32
	// requests are then refused at validation, float64 serving unaffected.
	net32, f32err := p.Net.ToFloat32()
	return newServer(id, p.Net, net32, f32err, p.Filter, p.Acq, opts)
}

// newServer is the shared constructor behind New and NewFromModel.
func newServer(id pipeline.ModelID, net *nn.Network, net32 *nn.Net32, f32err error, filter filters.Filter, acq *pipeline.Acquisition, opts Options) *Server {
	if filter == nil {
		filter = filters.Identity{}
	}
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		filter:  filter,
		acq:     acq,
		models:  make(map[string]*servedModel),
		done:    make(chan struct{}),
		drained: make(chan struct{}),
		interactive: &lane{
			name: "interactive", limit: opts.InteractiveLimit, retryAfter: time.Second,
		},
		bulk: &lane{
			name: "bulk", limit: opts.BulkLimit, retryAfter: 10 * time.Second,
		},
		cache:   newContentCache(opts.CacheSize),
		metrics: newServerMetrics(),
	}
	if opts.Detector != nil {
		s.detSpec = opts.Detector.Name()
	}
	if opts.AttackWorkers > 0 {
		s.attackers = make(chan *attacker, opts.AttackWorkers)
		for i := 0; i < opts.AttackWorkers; i++ {
			s.attackers <- &attacker{}
		}
	}
	m := s.newServedModel(id, net, net32, f32err)
	s.models[m.key] = m
	s.active.Store(m)
	return s
}

// Close stops the server: queued requests and later Predict calls fail
// with ErrServerClosed; batches already handed to workers complete and
// reply normally (their waiting clients get their predictions, not an
// error). Close blocks until every model's batcher and workers exit and
// is safe to call more than once.
func (s *Server) Close() {
	s.draining.Store(true)
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()
	s.drainedOnce.Do(func() { close(s.drained) })
}

// Predict scores one CHW image under tm (0 selects Options.DefaultTM)
// on the active model through the micro-batching path. The returned
// Prediction is bit-identical to a direct pipeline.Probs call for the
// same image and threat model. Safe for concurrent use from any number
// of goroutines — concurrency is what fills batches.
//
// Predict is the interactive lane: a request beyond InteractiveLimit is
// shed with an OverloadError instead of queued, PredictDeadline bounds
// how long it may hold resources, and a content-cache hit (same image
// bytes, same threat model, same model version) is answered immediately
// — bit-identically — without touching a worker, even while the lane is
// shedding.
func (s *Server) Predict(ctx context.Context, img *tensor.Tensor, tm pipeline.ThreatModel) (Prediction, error) {
	return s.PredictModel(ctx, "", img, tm, s.opts.Precision)
}

// PredictPrec is Predict with an explicit numeric lane: pipeline.Float64
// is the reference path, pipeline.Float32 the fused fast path (refused
// with an error if the model has no float32 lowering). Predictions from
// different lanes are cached under different content addresses, so a
// float32 hit can never answer a float64 request.
func (s *Server) PredictPrec(ctx context.Context, img *tensor.Tensor, tm pipeline.ThreatModel, prec pipeline.Precision) (Prediction, error) {
	return s.PredictModel(ctx, "", img, tm, prec)
}

// PredictModel is PredictPrec with explicit model selection: "" runs the
// active default, "name@version" pins an exact loaded version, a bare
// name the highest loaded version of that name. The selected model is
// pinned for the whole request, so it keeps answering even if a
// hot-swap retires it mid-flight.
func (s *Server) PredictModel(ctx context.Context, model string, img *tensor.Tensor, tm pipeline.ThreatModel, prec pipeline.Precision) (Prediction, error) {
	if tm == 0 {
		tm = s.opts.DefaultTM
	}
	m, err := s.resolveModel(model)
	if err != nil {
		return Prediction{}, err
	}
	defer m.release()
	if err := s.validate(m, img, tm, prec); err != nil {
		return Prediction{}, err
	}
	if pred, _, ok := s.lookupPrediction(m, img, tm, prec, s.detSpec); ok {
		return pred, nil
	}
	if err := s.refuseNew(); err != nil {
		return Prediction{}, err
	}
	release, err := s.interactive.admit(1)
	if err != nil {
		return Prediction{}, err
	}
	defer release()
	ctx, cancel := routeContext(ctx, s.opts.PredictDeadline)
	defer cancel()
	return s.predictAdmitted(ctx, m, img, tm, prec, s.detSpec)
}

// predictInternal is the serving path for the server's own measurement
// traffic (the Evaluate sweep's TM-I and deployed views): it shares the
// selected model's micro-batching pool and the content cache but skips
// lane admission, the per-route deadline and the draining refusal — an
// admitted bulk job is already accounted for in the bulk lane and must
// be able to finish its measurements while a drain completes. The caller
// holds the model acquisition for the whole sweep.
func (s *Server) predictInternal(ctx context.Context, m *servedModel, img *tensor.Tensor, tm pipeline.ThreatModel) (Prediction, error) {
	if tm == 0 {
		tm = s.opts.DefaultTM
	}
	// Measurement traffic always runs on the reference float64 lane: the
	// Evaluate sweep's numbers must match the paper path regardless of the
	// serving default.
	const prec = pipeline.Float64
	if err := s.validate(m, img, tm, prec); err != nil {
		return Prediction{}, err
	}
	// Measurement traffic is cached and enqueued under the empty detector
	// spec (pending.detect stays false): detection never alters what the
	// sweep measures, and a detect-routed answer can never be replayed
	// into it.
	if pred, _, ok := s.lookupPrediction(m, img, tm, prec, ""); ok {
		return pred, nil
	}
	return s.predictAdmitted(ctx, m, img, tm, prec, "")
}

// predictAdmitted enqueues one already-admitted request on the model's
// pool, waits for its reply and fills the content cache on success.
// detSpec is the detector spec the reply is cached under; non-empty
// marks the slot for the detect-then-correct route.
func (s *Server) predictAdmitted(ctx context.Context, m *servedModel, img *tensor.Tensor, tm pipeline.ThreatModel, prec pipeline.Precision, detSpec string) (Prediction, error) {
	p := &pending{img: img, tm: tm, prec: prec, ctx: ctx, enq: time.Now(), done: make(chan reply, 1), detect: detSpec != ""}
	select {
	case m.pool.queue <- p:
		s.requests.Add(1)
		m.requests.Add(1)
	case <-s.done:
		return Prediction{}, ErrServerClosed
	case <-ctx.Done():
		return Prediction{}, ctx.Err()
	}
	select {
	case r := <-p.done:
		s.cacheReply(m, img, tm, prec, detSpec, r)
		return r.pred, r.err
	case <-s.done:
		// The server is shutting down; the batch holding this request may
		// still be in flight on a worker. Wait for the pools to drain (a
		// bounded wait — workers finish their current batch and exit),
		// then take the reply if one was produced.
		<-s.drained
		select {
		case r := <-p.done:
			s.cacheReply(m, img, tm, prec, detSpec, r)
			return r.pred, r.err
		default:
			return Prediction{}, ErrServerClosed
		}
	case <-ctx.Done():
		return Prediction{}, ctx.Err()
	}
}

// cacheReply stores a successful reply under its content address.
func (s *Server) cacheReply(m *servedModel, img *tensor.Tensor, tm pipeline.ThreatModel, prec pipeline.Precision, detSpec string, r reply) {
	if r.err == nil && s.cache != nil {
		s.storePrediction(predCacheKey(m, img, tm, prec, detSpec), r.pred)
	}
}

// PredictBatch scores a client-supplied batch on the active model. The
// images are enqueued individually so they coalesce with other clients'
// traffic (a batch larger than MaxBatch simply spans several
// micro-batches). Results are positional; the first error wins.
//
// Admission accounting covers only the images the content cache cannot
// answer; PredictDeadline, when set, is scaled by the number of
// micro-batches the residual batch spans.
func (s *Server) PredictBatch(ctx context.Context, imgs []*tensor.Tensor, tm pipeline.ThreatModel) ([]Prediction, error) {
	return s.PredictBatchModel(ctx, "", imgs, tm, s.opts.Precision)
}

// PredictBatchPrec is PredictBatch with an explicit numeric lane (see
// PredictPrec).
func (s *Server) PredictBatchPrec(ctx context.Context, imgs []*tensor.Tensor, tm pipeline.ThreatModel, prec pipeline.Precision) ([]Prediction, error) {
	return s.PredictBatchModel(ctx, "", imgs, tm, prec)
}

// PredictBatchModel is PredictBatch with explicit model selection (see
// PredictModel); the whole batch runs on one pinned model version.
func (s *Server) PredictBatchModel(ctx context.Context, model string, imgs []*tensor.Tensor, tm pipeline.ThreatModel, prec pipeline.Precision) ([]Prediction, error) {
	if tm == 0 {
		tm = s.opts.DefaultTM
	}
	m, err := s.resolveModel(model)
	if err != nil {
		return nil, err
	}
	defer m.release()
	for _, img := range imgs {
		if err := s.validate(m, img, tm, prec); err != nil {
			return nil, err
		}
	}
	out := make([]Prediction, len(imgs))
	var missIdx []int
	for i, img := range imgs {
		if pred, _, ok := s.lookupPrediction(m, img, tm, prec, s.detSpec); ok {
			out[i] = pred
			continue
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return out, nil
	}
	if err := s.refuseNew(); err != nil {
		return nil, err
	}
	release, err := s.interactive.admit(len(missIdx))
	if err != nil {
		return nil, err
	}
	defer release()
	deadline := s.opts.PredictDeadline
	if deadline > 0 {
		deadline *= time.Duration(1 + (len(missIdx)-1)/s.opts.MaxBatch)
	}
	ctx, cancel := routeContext(ctx, deadline)
	defer cancel()

	ps := make([]*pending, len(missIdx))
	now := time.Now()
	for i, idx := range missIdx {
		p := &pending{img: imgs[idx], tm: tm, prec: prec, ctx: ctx, enq: now, done: make(chan reply, 1), detect: s.detSpec != ""}
		select {
		case m.pool.queue <- p:
			s.requests.Add(1)
			m.requests.Add(1)
		case <-s.done:
			s.abandon(ps[:i])
			return nil, ErrServerClosed
		case <-ctx.Done():
			s.abandon(ps[:i])
			return nil, ctx.Err()
		}
		ps[i] = p
	}
	for i, p := range ps {
		idx := missIdx[i]
		select {
		case r := <-p.done:
			if r.err != nil {
				return nil, r.err
			}
			s.cacheReply(m, imgs[idx], tm, prec, s.detSpec, r)
			out[idx] = r.pred
		case <-s.done:
			<-s.drained
			select {
			case r := <-p.done:
				if r.err != nil {
					return nil, r.err
				}
				out[idx] = r.pred
			default:
				return nil, ErrServerClosed
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// abandon drains any replies already produced for requests the caller is
// walking away from, so worker sends never block (done is buffered) and
// the GC can collect the slots.
func (s *Server) abandon(ps []*pending) {
	for _, p := range ps {
		if p == nil {
			continue
		}
		select {
		case <-p.done:
		default:
		}
	}
}

// validate rejects malformed input at the API boundary so shape panics
// never reach a worker goroutine. Shape and float32 availability are
// properties of the selected model.
func (s *Server) validate(m *servedModel, img *tensor.Tensor, tm pipeline.ThreatModel, prec pipeline.Precision) error {
	if !tm.Valid() {
		return fmt.Errorf("serve: invalid threat model %d", int(tm))
	}
	if !prec.Valid() {
		return fmt.Errorf("serve: invalid precision %d", int(prec))
	}
	if prec == pipeline.Float32 && m.net32 == nil {
		return fmt.Errorf("serve: float32 lane unavailable on model %s: %v", m.key, m.f32err)
	}
	if img == nil {
		return errors.New("serve: nil image")
	}
	got := img.Shape()
	if len(got) != len(m.inShape) {
		return fmt.Errorf("serve: image shape %v, model %s wants %v", got, m.key, m.inShape)
	}
	for i := range got {
		if got[i] != m.inShape[i] {
			return fmt.Errorf("serve: image shape %v, model %s wants %v", got, m.key, m.inShape)
		}
	}
	return nil
}

// DefaultPrecision returns the lane used when a request names none.
func (s *Server) DefaultPrecision() pipeline.Precision { return s.opts.Precision }

// Float32Available reports whether the float32 fast lane is serving on
// the active model (false when it has no float32 lowering).
func (s *Server) Float32Available() bool { return s.active.Load().net32 != nil }

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	s.modelMu.Lock()
	loaded := len(s.models)
	s.modelMu.Unlock()
	st := Stats{
		Requests:     s.requests.Load(),
		Batches:      s.batchCount.Load(),
		Workers:      s.opts.Workers,
		MaxBatch:     s.opts.MaxBatch,
		MaxWaitMs:    float64(s.opts.MaxWait) / float64(time.Millisecond),
		Model:        s.active.Load().key,
		Swaps:        s.swaps.Load(),
		ModelsLoaded: loaded,
		Interactive:  s.interactive.stats(),
		Bulk:         s.bulk.stats(),
		Cache:        s.cache.stats(),
		Draining:     s.Draining(),
	}
	if st.Batches > 0 {
		st.MeanBatchOccupancy = float64(s.batchedImages.Load()) / float64(st.Batches)
	}
	s.latMu.Lock()
	n := s.latCount
	if n > latWindow {
		n = latWindow
	}
	window := append([]float64(nil), s.lat[:n]...)
	s.latMu.Unlock()
	if len(window) > 0 {
		st.P50LatencyMs = mathx.Percentile(window, 50)
		st.P99LatencyMs = mathx.Percentile(window, 99)
	}
	return st
}

// process scores one micro-batch on a worker's private pipeline: deliver
// every image under its own threat model, one batched network forward,
// one reply per request. A panic (impossible for validated input, but a
// server must not die with a stuck client) is converted into an error
// reply for every slot in the batch.
func (s *Server) process(m *servedModel, wp *pipeline.Pipeline, w32 *nn.Net32, batch []*pending) {
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("serve: inference failed: %v", r)
			for _, p := range batch {
				p.answer(reply{err: err})
			}
		}
	}()
	// Fault injection (nil Chaos is free): a stalled batch models a slow
	// accelerator, an injected panic exercises the recover path above.
	if d := s.opts.Chaos.batchDelay(); d > 0 {
		time.Sleep(d)
	}
	if s.opts.Chaos.takeFail() {
		panic("chaos: injected batch failure")
	}
	// Shed slots whose client already gave up (canceled context, expired
	// deadline): under overload, spending a delivery + forward on a reply
	// nobody reads would starve the requests that are still live.
	live := batch[:0]
	for _, p := range batch {
		if p.ctx != nil && p.ctx.Err() != nil {
			p.answer(reply{err: p.ctx.Err()})
			continue
		}
		live = append(live, p)
	}
	batch = live
	if len(batch) == 0 {
		return
	}
	// Delivery is grouped per threat model so the filter stage runs as one
	// Filter.ApplyBatch per TM present in the micro-batch; results are
	// bit-identical to per-image Deliver calls.
	imgs := make([]*tensor.Tensor, len(batch))
	tms := make([]pipeline.ThreatModel, len(batch))
	for i, p := range batch {
		imgs[i], tms[i] = p.img, p.tm
	}
	delivered := wp.DeliverGrouped(imgs, tms)
	// Scoring splits by the requested lane. The common case — a batch
	// with no float32 requests — takes exactly the pre-precision path
	// (one ProbsBatch over the whole delivered batch, original order), so
	// float64 responses stay bit-identical to a server without the lane.
	var idx32 []int
	for i, p := range batch {
		if p.prec == pipeline.Float32 {
			idx32 = append(idx32, i)
		}
	}
	var rows [][]float64
	if len(idx32) == 0 {
		rows = wp.Net.ProbsBatch(delivered)
	} else {
		rows = make([][]float64, len(batch))
		var idx64 []int
		var g64, g32 []*tensor.Tensor
		for i, p := range batch {
			if p.prec == pipeline.Float32 {
				g32 = append(g32, delivered[i])
			} else {
				idx64 = append(idx64, i)
				g64 = append(g64, delivered[i])
			}
		}
		if len(g64) > 0 {
			for j, r := range wp.Net.ProbsBatch(g64) {
				rows[idx64[j]] = r
			}
		}
		for j, r := range w32.ProbsBatch(g32) {
			rows[idx32[j]] = r
		}
	}
	// Detect-then-correct runs after the raw rows are in hand: the raw
	// row doubles as Probs(x), so the detector costs one grouped squeezed
	// forward per lane, a clean-pass slot keeps its already-computed raw
	// row bit-identically, and only flagged slots pay the correction
	// forward that replaces theirs.
	if det := s.opts.Detector; det != nil {
		s.detectBatch(det, wp, w32, batch, delivered, rows)
	}
	now := time.Now()
	// Counters update before the replies go out so a client that reads
	// Stats right after its response sees its own batch accounted for.
	s.batchCount.Add(1)
	s.batchedImages.Add(uint64(len(batch)))
	for i, p := range batch {
		best := mathx.ArgMax(rows[i])
		pred := Prediction{Class: best, Prob: rows[i][best], Probs: rows[i], TM: p.tm, Precision: p.prec, Model: m.key, Detection: p.verdict}
		if s.opts.ClassName != nil {
			pred.Label = s.opts.ClassName(best)
		}
		s.recordLatency(now.Sub(p.enq))
		p.answer(reply{pred: pred})
	}
}

// recordLatency appends one enqueue-to-reply measurement to the sliding
// percentile window.
func (s *Server) recordLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	s.latMu.Lock()
	s.lat[s.latIdx] = ms
	s.latIdx = (s.latIdx + 1) % latWindow
	s.latCount++
	s.latMu.Unlock()
}
