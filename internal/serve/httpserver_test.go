package serve

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestHTTPTimeoutDefaults: the hardened defaults must bound every
// connection phase — in particular WriteTimeout, the one the original
// server was missing.
func TestHTTPTimeoutDefaults(t *testing.T) {
	srv := NewHTTPServer(":0", http.NotFoundHandler(), HTTPTimeouts{})
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatalf("unbounded connection phase: %+v", HTTPTimeouts{
			ReadHeader: srv.ReadHeaderTimeout, Read: srv.ReadTimeout,
			Write: srv.WriteTimeout, Idle: srv.IdleTimeout,
		})
	}
	if srv.WriteTimeout < time.Minute {
		t.Fatalf("WriteTimeout %v cannot cover an evaluate sweep", srv.WriteTimeout)
	}
	// Explicit disable.
	off := NewHTTPServer(":0", nil, HTTPTimeouts{Write: -1})
	if off.WriteTimeout != 0 {
		t.Fatalf("Write: -1 should disable, got %v", off.WriteTimeout)
	}
}

// TestSlowLorisDisconnected: a client drip-feeding its request headers
// must be cut off by ReadHeaderTimeout instead of holding a connection
// open indefinitely.
func TestSlowLorisDisconnected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer("", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}), HTTPTimeouts{ReadHeader: 100 * time.Millisecond})
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a partial request line and then stall, loris-style.
	if _, err := io.WriteString(conn, "GET /v1/healthz HTTP/1.1\r\nHost: x\r\nX-Slow"); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	// The server must terminate the connection: a hard close (EOF) or an
	// error response (net/http sends 400/408 with Connection: close when
	// the header deadline fires). Reading to EOF covers both; what
	// matters is that the handler never ran and the cutoff is prompt.
	data, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("connection not closed by the server: %v", err)
	}
	if strings.Contains(string(data), "200 OK") {
		t.Fatalf("handler ran for a half-sent request: %q", data)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("slow-loris connection survived %v, want cutoff near 100ms", d)
	}
}
