package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// TestChaosWorkerKillRequeues: a killed worker must hand its batch back
// to the queue — every request still completes, correctly, on the
// survivors.
func TestChaosWorkerKillRequeues(t *testing.T) {
	chaos := &Chaos{}
	s := New(servePipeline(t), Options{
		Workers: 2, MaxBatch: 4, MaxWait: time.Millisecond,
		CacheSize: -1, Chaos: chaos,
	})
	defer s.Close()

	chaos.KillWorkers(1)
	pipe := servePipeline(t)
	imgs := testImages(20)
	// The shared fixture network is not goroutine-safe (workers clone it);
	// compute the expected probs serially before fanning out.
	want := make([][]float64, len(imgs))
	for i, img := range imgs {
		want[i] = pipe.Probs(img, pipeline.TM1)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(imgs))
	for i, img := range imgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pred, err := s.Predict(context.Background(), img, pipeline.TM1)
			if err != nil {
				errs <- err
				return
			}
			for j := range want[i] {
				if pred.Probs[j] != want[i][j] {
					errs <- fmt.Errorf("prediction differs from direct pipeline after worker kill")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestChaosBatchFailure: an injected batch panic must surface as a
// per-request inference error and leave the server healthy.
func TestChaosBatchFailure(t *testing.T) {
	chaos := &Chaos{}
	s := New(servePipeline(t), Options{
		Workers: 1, MaxBatch: 1, MaxWait: time.Millisecond,
		CacheSize: -1, Chaos: chaos,
	})
	defer s.Close()

	imgs := testImages(2)
	chaos.FailBatches(1)
	_, err := s.Predict(context.Background(), imgs[0], pipeline.TM1)
	if err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("injected failure surfaced as %v", err)
	}
	if _, err := s.Predict(context.Background(), imgs[1], pipeline.TM1); err != nil {
		t.Fatalf("server unhealthy after injected batch failure: %v", err)
	}
}

// percentile returns the p-quantile of sorted durations.
func percentile(ds []time.Duration, p float64) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	i := int(p * float64(len(ds)-1))
	return ds[i]
}

// TestOverloadTailLatency is the survivability acceptance check at the
// single-replica level: with one of two inference workers killed and the
// bulk lane saturated at 2× its capacity by live crafting jobs,
// interactive predict p99 must stay within 5× the unloaded p99 (with an
// absolute floor to keep the bound meaningful on sub-millisecond
// baselines), and the excess bulk load must be shed, not queued.
func TestOverloadTailLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("overload soak skipped in -short")
	}
	const bulkLimit = 2
	chaos := &Chaos{}
	s := New(servePipeline(t), Options{
		Workers: 2, MaxBatch: 8, MaxWait: 500 * time.Microsecond,
		AttackWorkers: 2, BulkLimit: bulkLimit,
		CacheSize: -1, Chaos: chaos,
	})
	defer s.Close()

	imgs := testImages(64)
	measure := func(n, offset int) []time.Duration {
		ds := make([]time.Duration, n)
		for i := range ds {
			start := time.Now()
			if _, err := s.Predict(context.Background(), imgs[(offset+i)%len(imgs)], pipeline.TM2); err != nil {
				t.Fatalf("predict %d: %v", i, err)
			}
			ds[i] = time.Since(start)
		}
		return ds
	}

	measure(8, 0) // warm-up
	baseline := percentile(measure(40, 8), 0.99)

	// Saturate bulk at 2× capacity: 2×BulkLimit clients looping attack
	// jobs. At most bulkLimit are ever admitted; the rest shed.
	var stop atomic.Bool
	var shed, completed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < 2*bulkLimit; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for !stop.Load() {
				_, err := s.Attack(context.Background(), AttackRequest{
					Spec:   "pgd(eps=0.05,steps=400)",
					Image:  imgs[c%len(imgs)],
					Source: 0,
				})
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, ErrOverloaded):
					shed.Add(1)
					time.Sleep(time.Millisecond)
				case errors.Is(err, ErrServerClosed):
					return
				default:
					// Attack outcomes (budget truncation etc.) are not
					// what this test is about.
					completed.Add(1)
				}
			}
		}(c)
	}
	waitUntil(t, 10*time.Second, "bulk lane saturation", func() bool {
		return s.bulk.stats().Depth >= bulkLimit && shed.Load() > 0
	})

	chaos.KillWorkers(1) // 1 of 2 inference workers dies mid-overload

	loaded := percentile(measure(40, 48), 0.99)
	stop.Store(true)
	wg.Wait()

	bound := 5 * baseline
	if floor := 500 * time.Millisecond; bound < floor {
		bound = floor
	}
	if loaded > bound {
		t.Fatalf("predict p99 under overload %v exceeds bound %v (unloaded %v)", loaded, bound, baseline)
	}
	if shed.Load() == 0 {
		t.Fatal("2× bulk overload produced no sheds")
	}
	if st := s.Stats().Bulk; st.Shed == 0 {
		t.Fatal("bulk lane stats missing sheds")
	}
	t.Logf("predict p99 unloaded %v, overloaded %v (bound %v); bulk completed %d shed %d",
		baseline, loaded, bound, completed.Load(), shed.Load())
}
