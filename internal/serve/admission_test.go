package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestInteractiveLaneSheds: requests beyond InteractiveLimit must be
// shed immediately with a retryable OverloadError, not queued.
func TestInteractiveLaneSheds(t *testing.T) {
	chaos := &Chaos{}
	chaos.SetBatchDelay(200 * time.Millisecond) // hold admitted work in flight
	s := New(servePipeline(t), Options{
		Workers: 1, MaxBatch: 1, MaxWait: time.Millisecond,
		InteractiveLimit: 2, CacheSize: -1, Chaos: chaos,
	})
	defer s.Close()

	imgs := testImages(3)
	errc := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := s.Predict(context.Background(), imgs[i], pipeline.TM1)
			errc <- err
		}(i)
	}
	waitUntil(t, 5*time.Second, "both requests admitted", func() bool {
		return s.interactive.stats().Depth == 2
	})

	_, err := s.Predict(context.Background(), imgs[2], pipeline.TM1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third request got %v, want ErrOverloaded", err)
	}
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("shed error is %T, want *OverloadError", err)
	}
	if ov.Lane != "interactive" || ov.RetryAfter <= 0 {
		t.Fatalf("shed error %+v lacks lane/backoff", ov)
	}
	st := s.Stats()
	if st.Interactive.Shed == 0 {
		t.Fatal("shed not counted in lane stats")
	}
	if !s.interactive.shedding() {
		t.Fatal("lane not reporting degraded after a shed")
	}

	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
	waitUntil(t, time.Second, "lane to drain", func() bool {
		return s.interactive.stats().Depth == 0
	})
}

// TestBulkLaneIndependent: a saturated bulk lane must shed attack work
// while interactive prediction is still admitted — the starvation
// boundary the two lanes exist for.
func TestBulkLaneIndependent(t *testing.T) {
	s := New(servePipeline(t), Options{
		Workers: 1, MaxBatch: 4, MaxWait: time.Millisecond,
		AttackWorkers: 1, BulkLimit: 1, CacheSize: -1,
	})
	defer s.Close()

	// Saturate bulk by holding its only slot directly.
	release, err := s.bulk.admit(1)
	if err != nil {
		t.Fatalf("bulk admit: %v", err)
	}
	defer release()

	img := testImages(1)[0]
	if _, err := s.Attack(context.Background(), AttackRequest{
		Spec: "fgsm(eps=0.1)", Image: img, Source: 0,
	}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("attack on a full bulk lane got %v, want ErrOverloaded", err)
	}
	if _, err := s.Predict(context.Background(), img, pipeline.TM1); err != nil {
		t.Fatalf("predict during bulk saturation failed: %v", err)
	}
}

// TestPredictDeadline: PredictDeadline must bound a request that a slow
// worker would otherwise hold indefinitely.
func TestPredictDeadline(t *testing.T) {
	chaos := &Chaos{}
	chaos.SetBatchDelay(500 * time.Millisecond)
	s := New(servePipeline(t), Options{
		Workers: 1, MaxBatch: 1, MaxWait: time.Millisecond,
		PredictDeadline: 10 * time.Millisecond, CacheSize: -1, Chaos: chaos,
	})
	defer s.Close()

	start := time.Now()
	_, err := s.Predict(context.Background(), testImages(1)[0], pipeline.TM1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 400*time.Millisecond {
		t.Fatalf("deadline fired after %v, want ~10ms", d)
	}
}

// TestReleaseIdempotent: the admit release closure must tolerate double
// invocation without corrupting the depth gauge.
func TestReleaseIdempotent(t *testing.T) {
	l := &lane{name: "x", limit: 2, retryAfter: time.Second}
	release, err := l.admit(1)
	if err != nil {
		t.Fatal(err)
	}
	release()
	release()
	if d := l.stats().Depth; d != 0 {
		t.Fatalf("depth %d after double release, want 0", d)
	}
}
