package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// TestGracefulDrainUnderLoad is the drain acceptance check: with an
// evaluate sweep and interactive predicts in flight, BeginDrain must
// (1) refuse new work with ErrDraining, (2) let every in-flight request
// run to completion — nothing hung, nothing dropped — and (3) leave
// Close to return cleanly afterwards. Run under -race in CI.
func TestGracefulDrainUnderLoad(t *testing.T) {
	chaos := &Chaos{}
	chaos.SetBatchDelay(30 * time.Millisecond) // keep predicts in flight long enough to drain around
	s := New(servePipeline(t), Options{
		Workers: 2, MaxBatch: 2, MaxWait: time.Millisecond,
		AttackWorkers: 1, CacheSize: -1, Chaos: chaos,
	})

	imgs := testImages(8)

	// One bulk evaluate in flight...
	evalDone := make(chan error, 1)
	go func() {
		_, err := s.Evaluate(context.Background(), EvaluateRequest{
			Specs: []string{"pgd(eps=0.05,steps=60)"},
			Cases: []EvalCase{{Source: 0, Target: 1, Image: imgs[0]}},
		})
		evalDone <- err
	}()
	// ...and several interactive predicts in flight.
	predDone := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			_, err := s.Predict(context.Background(), imgs[1+i], pipeline.TM1)
			predDone <- err
		}(i)
	}
	waitUntil(t, 5*time.Second, "load in flight", func() bool {
		return s.bulk.stats().Depth >= 1 && s.interactive.stats().Depth == 4
	})

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	// New work of either class is refused immediately...
	if _, err := s.Predict(context.Background(), imgs[6], pipeline.TM1); !errors.Is(err, ErrDraining) {
		t.Fatalf("new predict during drain got %v, want ErrDraining", err)
	}
	if _, err := s.Attack(context.Background(), AttackRequest{Spec: "fgsm(eps=0.1)", Image: imgs[7], Source: 0}); !errors.Is(err, ErrDraining) {
		t.Fatalf("new attack during drain got %v, want ErrDraining", err)
	}
	// ...while everything in flight completes successfully.
	deadline := time.After(30 * time.Second)
	for i := 0; i < 4; i++ {
		select {
		case err := <-predDone:
			if err != nil {
				t.Fatalf("in-flight predict dropped during drain: %v", err)
			}
		case <-deadline:
			t.Fatal("in-flight predict hung during drain")
		}
	}
	select {
	case err := <-evalDone:
		if err != nil {
			t.Fatalf("in-flight evaluate dropped during drain: %v", err)
		}
	case <-deadline:
		t.Fatal("in-flight evaluate hung during drain")
	}

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung after drain")
	}
	if _, err := s.Predict(context.Background(), imgs[1], pipeline.TM1); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("predict after Close got %v, want ErrServerClosed", err)
	}
}

// TestDrainIsIdempotentAndObservable: BeginDrain twice is safe, and the
// draining flag shows up in Stats.
func TestDrainIsIdempotentAndObservable(t *testing.T) {
	s := New(servePipeline(t), Options{Workers: 1, MaxBatch: 1, MaxWait: time.Millisecond})
	defer s.Close()
	if s.Stats().Draining {
		t.Fatal("fresh server reports draining")
	}
	s.BeginDrain()
	s.BeginDrain()
	if !s.Stats().Draining {
		t.Fatal("Stats().Draining false after BeginDrain")
	}
}
