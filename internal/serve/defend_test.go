package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/attacks"
	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// TestDefendMatchesDirectApply pins the core Defend guarantee: the
// served filtering of an image is bit-identical to a direct
// filters.Parse + Apply of the same spec.
func TestDefendMatchesDirectApply(t *testing.T) {
	s := New(servePipeline(t), Options{Workers: 1, MaxBatch: 4, MaxWait: time.Millisecond})
	defer s.Close()
	img := gtsrb.Canonical(3, 16)
	for _, spec := range []string{
		"median(r=1)",
		"chain(median(r=1),histeq(bins=64))",
		"bitdepth(bits=4)",
		"none",
	} {
		out, err := s.Defend(context.Background(), DefendRequest{Image: img, Spec: spec})
		if err != nil {
			t.Fatalf("Defend(%q): %v", spec, err)
		}
		f, err := filters.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		if f == nil {
			f = filters.Identity{}
		}
		if out.Filter != f.Name() {
			t.Errorf("Defend(%q) reported filter %q, want %q", spec, out.Filter, f.Name())
		}
		if !tensor.EqualWithin(out.Filtered, f.Apply(img), 0) {
			t.Errorf("Defend(%q) diverged from a direct Apply", spec)
		}
	}
}

// TestDefendDefaultsToDeployedFilter pins that an empty spec selects the
// deployed pipeline's filter.
func TestDefendDefaultsToDeployedFilter(t *testing.T) {
	pipe := servePipeline(t) // deploys lap(np=8)
	s := New(pipe, Options{Workers: 1, MaxBatch: 4, MaxWait: time.Millisecond})
	defer s.Close()
	img := gtsrb.Canonical(2, 16)
	out, err := s.Defend(context.Background(), DefendRequest{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	if out.Filter != pipe.Filter.Name() {
		t.Fatalf("default Defend filter %q, want deployed %q", out.Filter, pipe.Filter.Name())
	}
	if !tensor.EqualWithin(out.Filtered, pipe.Filter.Apply(img), 0) {
		t.Fatal("default Defend diverged from the deployed filter")
	}
}

// TestDefendPredicts pins the predict path: the returned prediction is
// the deployed model's unfiltered view of the already-filtered image.
func TestDefendPredicts(t *testing.T) {
	pipe := servePipeline(t)
	s := New(pipe, Options{Workers: 1, MaxBatch: 4, MaxWait: time.Millisecond})
	defer s.Close()
	img := gtsrb.Canonical(7, 16)
	out, err := s.Defend(context.Background(), DefendRequest{Image: img, Spec: "lar(r=1)", Predict: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Prediction == nil {
		t.Fatal("Predict requested but no prediction returned")
	}
	probs := pipe.Net.Probs(out.Filtered)
	if out.Prediction.Probs[out.Prediction.Class] != probs[out.Prediction.Class] {
		t.Fatal("Defend prediction diverged from a direct forward on the filtered image")
	}
}

func TestDefendErrors(t *testing.T) {
	s := New(servePipeline(t), Options{Workers: 1, MaxBatch: 4, MaxWait: time.Millisecond})
	img := gtsrb.Canonical(1, 16)
	if _, err := s.Defend(context.Background(), DefendRequest{Image: nil, Spec: "lap"}); err == nil {
		t.Error("nil image accepted")
	}
	if _, err := s.Defend(context.Background(), DefendRequest{Image: tensor.Full(0.5, 3, 7, 7), Spec: "lap"}); err == nil {
		t.Error("wrong-shape image accepted")
	}
	if _, err := s.Defend(context.Background(), DefendRequest{Image: img, Spec: "median(r=0)"}); err == nil {
		t.Error("malformed spec accepted")
	}
	s.Close()
	if _, err := s.Defend(context.Background(), DefendRequest{Image: img, Spec: "lap"}); err != ErrServerClosed {
		t.Errorf("closed server returned %v, want ErrServerClosed", err)
	}
}

// TestEvaluateFiltersAxis pins the filters axis: one sweep over
// attack × filter produces one series per filter with the overridden
// filter measured, and the "none" series sees the unfiltered deployment
// (for this fixture, deployed == TM-I view ⇒ the crafted attack fools).
func TestEvaluateFiltersAxis(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 400})
	defer s.Close()
	res, err := s.Evaluate(context.Background(), EvaluateRequest{
		Specs:   []string{"fgsm(eps=0.1)"},
		TMs:     []pipeline.ThreatModel{pipeline.TM3},
		Filters: []string{"none", "median(r=1)", "chain(lap(np=8),bitdepth(bits=5))"},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantFilters := []string{"none", "median(r=1)", "chain(lap(np=8),bitdepth(bits=5))"}
	if len(res.Summaries) != len(wantFilters) {
		t.Fatalf("got %d summaries, want %d", len(res.Summaries), len(wantFilters))
	}
	for i, sm := range res.Summaries {
		if sm.Filter != wantFilters[i] {
			t.Errorf("summary %d filter = %q, want %q", i, sm.Filter, wantFilters[i])
		}
		if sm.Cells != 1 {
			t.Errorf("summary %d cells = %d, want 1", i, sm.Cells)
		}
	}
	for _, cell := range res.Cells {
		if cell.TM != pipeline.TM3 {
			t.Errorf("cell TM = %v", cell.TM)
		}
	}
	// The "none" series measures the raw adversarial image: deployed view
	// equals the TM-I view by construction.
	none := res.Cells[0]
	if none.DeployedPred != none.TM1Pred {
		t.Errorf("unfiltered series deployed pred %d != TM-I pred %d", none.DeployedPred, none.TM1Pred)
	}
}

// TestEvaluateFiltersAxisCellCap pins that the filters axis participates
// in the grid cap.
func TestEvaluateFiltersAxisCellCap(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 10})
	defer s.Close()
	flts := make([]string, maxEvalCells+1)
	for i := range flts {
		flts[i] = "none"
	}
	_, err := s.Evaluate(context.Background(), EvaluateRequest{
		Specs:   []string{"fgsm"},
		Filters: flts,
	})
	if err == nil {
		t.Fatal("oversize filter grid accepted")
	}
}

// TestEvaluateFiltersAxisBadSpec pins up-front spec validation.
func TestEvaluateFiltersAxisBadSpec(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 10})
	defer s.Close()
	_, err := s.Evaluate(context.Background(), EvaluateRequest{
		Specs:   []string{"fgsm"},
		Filters: []string{"median(r=0)"},
	})
	if err == nil {
		t.Fatal("malformed filter spec accepted")
	}
}

// TestDefendHTTP exercises POST /v1/defend end to end, including the
// filter-name echo and the predict path.
func TestDefendHTTP(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 50})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	body := imgPayload(3)
	body["filter"] = "chain(median(r=1),histeq(bins=64))"
	body["predict"] = true
	resp, data := postJSON(t, ts.URL+"/v1/defend", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("defend status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Filter string    `json:"filter"`
		Pixels []float64 `json:"pixels"`
		Shape  []int     `json:"shape"`
		Class  *int      `json:"class"`
		Prob   *float64  `json:"prob"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Filter != "chain(median(r=1),histeq(bins=64))" {
		t.Errorf("filter echo = %q", out.Filter)
	}
	if len(out.Pixels) != 3*16*16 || len(out.Shape) != 3 {
		t.Errorf("filtered image missing: %d pixels, shape %v", len(out.Pixels), out.Shape)
	}
	if out.Class == nil || out.Prob == nil {
		t.Error("predict=true returned no prediction")
	}

	// Malformed spec → 400.
	bad := imgPayload(3)
	bad["filter"] = "median(r=0)"
	resp, _ = postJSON(t, ts.URL+"/v1/defend", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed spec status %d, want 400", resp.StatusCode)
	}
}

// TestEvaluateHTTPFiltersAxis exercises the filters field of
// POST /v1/evaluate end to end.
func TestEvaluateHTTPFiltersAxis(t *testing.T) {
	s := attackServer(t, attacks.Budget{MaxQueries: 300})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	resp, data := postJSON(t, ts.URL+"/v1/evaluate", map[string]any{
		"attacks": []string{"fgsm(eps=0.1)"},
		"tms":     []string{"3"},
		"filters": []string{"none", "lap(np=8)"},
		"cases":   []map[string]any{{"source": 3, "target": 1}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Cells []struct {
			Filter string `json:"filter"`
			TM     string `json:"tm"`
		} `json:"cells"`
		Summaries []struct {
			Filter      string  `json:"filter"`
			FoolingRate float64 `json:"fooling_rate"`
		} `json:"summaries"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Cells) != 2 || len(out.Summaries) != 2 {
		t.Fatalf("got %d cells / %d summaries, want 2 / 2", len(out.Cells), len(out.Summaries))
	}
	if out.Cells[0].Filter != "none" || out.Cells[1].Filter != "lap(np=8)" {
		t.Errorf("cell filters = %q, %q", out.Cells[0].Filter, out.Cells[1].Filter)
	}
	if out.Cells[0].TM != "TM-III" {
		t.Errorf("cell tm = %q", out.Cells[0].TM)
	}
}
