package serve

import (
	"sync/atomic"
	"time"
)

// Fault injection.
//
// The survivability guarantees of this layer — bounded interactive
// latency under overload, no lost in-flight requests on drain, recovery
// after partial failure — are only guarantees if something exercises the
// failure paths. Chaos is that something: a small hook struct the test
// harness (and examples/overload) threads through Options to stall
// batches, kill inference workers mid-stream, and fail batches with
// synthetic panics. All hooks are nil-safe and free when unset; a
// production server simply leaves Options.Chaos nil.

// Chaos injects controlled faults into the serving path. The zero value
// injects nothing; arm faults with the setter methods (safe from any
// goroutine, including while the server is running).
type Chaos struct {
	// batchDelayNs stalls every worker batch by this long before
	// processing — simulates a slow accelerator or a noisy neighbour.
	batchDelayNs atomic.Int64
	// killWorkers is the number of inference workers still to kill; a
	// worker that draws a kill re-enqueues its batch and exits.
	killWorkers atomic.Int32
	// failBatches is the number of batches still to fail with a synthetic
	// panic (the recover path converts it to per-request errors).
	failBatches atomic.Int32
}

// SetBatchDelay stalls every subsequent worker batch by d (0 disarms).
func (c *Chaos) SetBatchDelay(d time.Duration) { c.batchDelayNs.Store(int64(d)) }

// KillWorkers arms the death of the next n inference workers: each
// victim hands its batch back to the queue and exits its goroutine,
// permanently shrinking the pool — the "worker crashed" scenario.
func (c *Chaos) KillWorkers(n int) { c.killWorkers.Add(int32(n)) }

// FailBatches arms synthetic panics for the next n batches; every
// request in an affected batch is answered with an inference error.
func (c *Chaos) FailBatches(n int) { c.failBatches.Add(int32(n)) }

// batchDelay returns the armed per-batch stall (nil-safe).
func (c *Chaos) batchDelay() time.Duration {
	if c == nil {
		return 0
	}
	return time.Duration(c.batchDelayNs.Load())
}

// takeKill consumes one worker kill if armed (nil-safe).
func (c *Chaos) takeKill() bool {
	if c == nil {
		return false
	}
	for {
		n := c.killWorkers.Load()
		if n <= 0 {
			return false
		}
		if c.killWorkers.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// takeFail consumes one batch failure if armed (nil-safe).
func (c *Chaos) takeFail() bool {
	if c == nil {
		return false
	}
	for {
		n := c.failBatches.Load()
		if n <= 0 {
			return false
		}
		if c.failBatches.CompareAndSwap(n, n-1) {
			return true
		}
	}
}
