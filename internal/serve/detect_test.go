package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/attacks"
	"repro/internal/detect"
	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// detectServer builds a server on the shared fixtures with the
// detect-then-correct route enabled at the given threshold.
func detectServer(t testing.TB, thr float64) *Server {
	t.Helper()
	det := detect.Default()
	det.Threshold = thr
	return New(servePipeline(t), Options{
		Workers:  2,
		MaxBatch: 8,
		MaxWait:  time.Millisecond,
		Detector: det,
	})
}

// TestDetectCleanPassBitIdentity is the detect-then-correct fast-lane
// contract: when the detector does not flag an input, the response must
// be bit-identical to a server running without any detector — the raw
// forward the worker already computed IS the answer. Run under -race
// this also exercises the worker-side detection step concurrently.
func TestDetectCleanPassBitIdentity(t *testing.T) {
	plain := New(servePipeline(t), Options{Workers: 2, MaxBatch: 8, MaxWait: time.Millisecond})
	defer plain.Close()
	// A threshold above any possible L1 discrepancy (max is 2) keeps
	// every input on the clean-pass lane.
	detecting := detectServer(t, 1e9)
	defer detecting.Close()

	imgs := testImages(12)
	tms := []pipeline.ThreatModel{pipeline.TM1, pipeline.TM2, pipeline.TM3}
	want := make([]Prediction, len(imgs))
	for i, img := range imgs {
		p, err := plain.Predict(context.Background(), img, tms[i%len(tms)])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(imgs))
	got := make([]Prediction, len(imgs))
	for i, img := range imgs {
		wg.Add(1)
		go func(i int, img *tensor.Tensor) {
			defer wg.Done()
			p, err := detecting.Predict(context.Background(), img, tms[i%len(tms)])
			if err != nil {
				errs <- err
				return
			}
			got[i] = p
		}(i, img)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := range imgs {
		if got[i].Detection == nil {
			t.Fatalf("image %d: detecting server returned no verdict", i)
		}
		if got[i].Detection.Flagged || got[i].Detection.Corrected {
			t.Fatalf("image %d flagged under threshold 1e9: %+v", i, got[i].Detection)
		}
		if want[i].Detection != nil {
			t.Fatalf("image %d: plain server attached a verdict", i)
		}
		if len(got[i].Probs) != len(want[i].Probs) {
			t.Fatalf("image %d: probs length %d vs %d", i, len(got[i].Probs), len(want[i].Probs))
		}
		for j := range got[i].Probs {
			if got[i].Probs[j] != want[i].Probs[j] {
				t.Fatalf("image %d class %d: clean-pass prob %v != plain %v (must be bit-identical)",
					i, j, got[i].Probs[j], want[i].Probs[j])
			}
		}
		if got[i].Class != want[i].Class {
			t.Fatalf("image %d: class %d vs %d", i, got[i].Class, want[i].Class)
		}
	}
}

// TestDetectFlaggedCorrection pins the flagged route: with a threshold
// below every score, each input is flagged, marked Corrected, and its
// probabilities equal a direct forward of the correction chain applied
// to the delivered view — not the raw forward.
func TestDetectFlaggedCorrection(t *testing.T) {
	s := detectServer(t, -1)
	defer s.Close()
	net := serveNet(t)
	correction := filters.Chain(detect.Default().Squeezers)

	img := gtsrb.Canonical(7, 16)
	for _, tm := range []pipeline.ThreatModel{pipeline.TM1, pipeline.TM3} {
		p, err := s.Predict(context.Background(), img, tm)
		if err != nil {
			t.Fatal(err)
		}
		if p.Detection == nil || !p.Detection.Flagged || !p.Detection.Corrected {
			t.Fatalf("tm %v: want flagged+corrected verdict, got %+v", tm, p.Detection)
		}
		view := img
		if tm != pipeline.TM1 {
			view = pipeline.DeliverThrough(img, filters.NewLAP(8), pipeline.DefaultAcquisition(11), tm)
		}
		want := net.ProbsBatch([]*tensor.Tensor{correction.Apply(view)})[0]
		for j := range want {
			if p.Probs[j] != want[j] {
				t.Fatalf("tm %v class %d: corrected prob %v != direct correction forward %v", tm, j, p.Probs[j], want[j])
			}
		}
	}
}

// TestDetectModeCacheIsolation guards the cache-key satellite: the
// detector spec is part of every external prediction key, so a detecting
// server and a non-detecting route can never answer each other's
// queries, while repeats inside one mode still hit the cache (verdict
// included).
func TestDetectModeCacheIsolation(t *testing.T) {
	s := detectServer(t, 1e9)
	defer s.Close()
	m, err := s.resolveModel("")
	if err != nil {
		t.Fatal(err)
	}
	defer m.release()

	img := gtsrb.Canonical(5, 16)
	plainKey := predCacheKey(m, img, pipeline.TM3, pipeline.Float64, "")
	detKey := predCacheKey(m, img, pipeline.TM3, pipeline.Float64, s.detSpec)
	if plainKey == detKey {
		t.Fatal("prediction cache key ignores the detector spec: toggling detect-then-correct could replay the wrong routing mode")
	}

	// Warm the external (detecting) cache, then repeat: the second answer
	// is served from cache — the detector counters do not move — but the
	// cached verdict still rides along.
	if _, err := s.Predict(context.Background(), img, pipeline.TM3); err != nil {
		t.Fatal(err)
	}
	before := s.metrics.detectClean.Load() + s.metrics.detectFlagged.Load()
	p, err := s.Predict(context.Background(), img, pipeline.TM3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Detection == nil {
		t.Fatal("cached detect-mode prediction lost its verdict")
	}
	if after := s.metrics.detectClean.Load() + s.metrics.detectFlagged.Load(); after != before {
		t.Fatalf("cached repeat re-ran the detector: verdicts %d -> %d", before, after)
	}

	// The internal measurement path caches under the empty spec and must
	// not pick up the detect-mode entry (it would carry a verdict and, for
	// flagged inputs, corrected probabilities).
	ip, err := s.predictInternal(context.Background(), m, img, pipeline.TM3)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Detection != nil {
		t.Fatal("internal measurement traffic was answered from the detect-mode cache")
	}
}

// TestDetectEndpoint exercises Server.Detect: verdict structure,
// spec override, the no-detector error, and the content-addressed
// repeat.
func TestDetectEndpoint(t *testing.T) {
	plain := New(servePipeline(t), Options{Workers: 1, MaxBatch: 8, MaxWait: time.Millisecond})
	defer plain.Close()

	img := gtsrb.Canonical(2, 16)
	if _, err := plain.Detect(context.Background(), DetectRequest{Image: img}); err == nil {
		t.Fatal("Detect without a configured detector or a spec must fail")
	}
	if _, err := plain.Detect(context.Background(), DetectRequest{Image: img, Spec: "none"}); err == nil {
		t.Fatal(`spec "none" disables detection and must be rejected by Detect`)
	}
	if _, err := plain.Detect(context.Background(), DetectRequest{Image: img, Spec: "detect(thr=nope)"}); err == nil {
		t.Fatal("malformed spec accepted")
	}

	res, err := plain.Detect(context.Background(), DetectRequest{Image: img, Spec: "detect"})
	if err != nil {
		t.Fatal(err)
	}
	if want := detect.Default().Name(); res.Detector != want {
		t.Errorf("detector echo %q, want %q", res.Detector, want)
	}
	if res.TM != pipeline.TM1 {
		t.Errorf("default detect TM = %v, want TM1 (the detector guards the input buffer)", res.TM)
	}
	if len(res.Verdict.PerSqueezer) != 2 {
		t.Fatalf("default ensemble has 2 squeezers, verdict has %d", len(res.Verdict.PerSqueezer))
	}
	if res.Prediction == nil || res.Prediction.Detection == nil {
		t.Fatal("Detect result carries no prediction/verdict")
	}
	if res.Prediction.Detection.Corrected {
		t.Error("Detect must report, not correct")
	}

	// Repeat query: content-addressed, no second detection recorded.
	before := plain.metrics.detectClean.Load() + plain.metrics.detectFlagged.Load()
	res2, err := plain.Detect(context.Background(), DetectRequest{Image: img, Spec: "detect"})
	if err != nil {
		t.Fatal(err)
	}
	if after := plain.metrics.detectClean.Load() + plain.metrics.detectFlagged.Load(); after != before {
		t.Fatalf("repeat Detect re-scored: verdicts %d -> %d", before, after)
	}
	if res2.Verdict.Score != res.Verdict.Score {
		t.Errorf("cached verdict score %v != original %v", res2.Verdict.Score, res.Verdict.Score)
	}
}

// TestDetectHTTP exercises POST /v1/detect end to end: flattened verdict
// fields, the spec override, and the malformed-spec 400.
func TestDetectHTTP(t *testing.T) {
	s := detectServer(t, 1e9)
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	body := imgPayload(3)
	resp, data := postJSON(t, ts.URL+"/v1/detect", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Detector  string                 `json:"detector"`
		TM        string                 `json:"tm"`
		Score     *float64               `json:"score"`
		Threshold float64                `json:"threshold"`
		Flagged   *bool                  `json:"flagged"`
		Squeezers []detect.SqueezerScore `json:"squeezers"`
		Class     *int                   `json:"class"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Detector != s.DetectorSpec() {
		t.Errorf("detector echo %q, want %q", out.Detector, s.DetectorSpec())
	}
	if out.Score == nil || out.Flagged == nil || out.Class == nil {
		t.Fatalf("detect response incomplete: %s", data)
	}
	if *out.Flagged {
		t.Error("clean canonical image flagged under threshold 1e9")
	}
	if len(out.Squeezers) != 2 {
		t.Errorf("per-squeezer breakdown has %d entries, want 2", len(out.Squeezers))
	}

	bad := imgPayload(3)
	bad["detector"] = "detect(squeezers=())"
	resp, data = postJSON(t, ts.URL+"/v1/detect", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed spec status %d, want 400: %s", resp.StatusCode, data)
	}

	// Spec override on the request beats the server detector.
	over := imgPayload(3)
	over["detector"] = "detect(squeezers=(bitdepth(bits=5)),thr=0.25)"
	resp, data = postJSON(t, ts.URL+"/v1/detect", over)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spec override status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Detector != "detect(squeezers=(bitdepth(bits=5)),thr=0.25)" {
		t.Errorf("override echo %q", out.Detector)
	}
	if len(out.Squeezers) != 1 {
		t.Errorf("override breakdown has %d entries, want 1", len(out.Squeezers))
	}
}

// TestEvaluateDetectionAxis checks /v1/evaluate's detection axis: every
// cell carries a score, the series summary reports rate, clean-FPR and
// AUC in range, and "none" switches the axis off even on a detecting
// server.
func TestEvaluateDetectionAxis(t *testing.T) {
	det := detect.Default()
	det.Threshold = 0.5
	s := New(servePipeline(t), Options{
		Workers:       2,
		MaxBatch:      4,
		MaxWait:       time.Millisecond,
		AttackWorkers: 2,
		AttackBudget:  attacks.Budget{MaxQueries: 60},
		AttackTimeout: 30 * time.Second,
		Render:        gtsrb.Canonical,
		Detector:      det,
	})
	defer s.Close()

	cases := make([]EvalCase, 5)
	for c := range cases {
		cases[c] = EvalCase{Source: c, Target: attacks.Untargeted}
	}
	res, err := s.Evaluate(context.Background(), EvaluateRequest{
		Specs: []string{"fgsm(eps=0.2)"},
		Cases: cases,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Cells {
		if c.Detection == nil {
			t.Fatalf("cell %d has no detection verdict", i)
		}
		if c.Detection.Score < 0 {
			t.Fatalf("cell %d score %v < 0", i, c.Detection.Score)
		}
		if c.Detection.Detected != (c.Detection.Score > det.Threshold) {
			t.Fatalf("cell %d verdict inconsistent with threshold: %+v", i, c.Detection)
		}
	}
	if len(res.Summaries) != 1 {
		t.Fatalf("want 1 summary, got %d", len(res.Summaries))
	}
	sd := res.Summaries[0].Detection
	if sd == nil {
		t.Fatal("summary has no detection axis")
	}
	if sd.Detector != det.Name() || sd.Threshold != det.Threshold {
		t.Errorf("summary detector echo %q thr %v", sd.Detector, sd.Threshold)
	}
	if sd.Rate < 0 || sd.Rate > 1 || sd.CleanFPR < 0 || sd.CleanFPR > 1 {
		t.Errorf("rates out of range: %+v", sd)
	}
	// PR-9 acceptance: the default ensemble separates a paper attack's
	// examples from the clean case set at AUC ≥ 0.9 on the GTSRB
	// fixtures (deterministic: fixed net, canonical images, one-shot
	// FGSM).
	if sd.AUC < 0.9 {
		t.Errorf("FGSM detection AUC %.3f below the 0.9 acceptance gate", sd.AUC)
	}
	if sd.AUC > 1 {
		t.Errorf("AUC %v out of [0,1]", sd.AUC)
	}

	// "none" disables the axis for the sweep.
	res, err = s.Evaluate(context.Background(), EvaluateRequest{
		Specs:    []string{"fgsm(eps=0.2)"},
		Cases:    []EvalCase{{Source: 3, Target: attacks.Untargeted}},
		Detector: "none",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells[0].Detection != nil || res.Summaries[0].Detection != nil {
		t.Fatal(`Detector:"none" still produced a detection axis`)
	}

	// Malformed sweep detector is a request error, not a panic.
	if _, err := s.Evaluate(context.Background(), EvaluateRequest{
		Specs:    []string{"fgsm(eps=0.2)"},
		Cases:    []EvalCase{{Source: 3, Target: attacks.Untargeted}},
		Detector: "detect(bogus=1)",
	}); err == nil || !strings.Contains(err.Error(), "detect") {
		t.Fatalf("malformed sweep detector: err = %v", err)
	}
}
