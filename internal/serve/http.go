package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/attacks"
	"repro/internal/detect"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// maxBodyBytes bounds request bodies; a 3×96×96 float64 batch of 64 images
// serialized as JSON stays far below this.
const maxBodyBytes = 64 << 20

// imagePayload is the wire form of one CHW image.
type imagePayload struct {
	// Pixels is the row-major flattened image in [0, 1].
	Pixels []float64 `json:"pixels"`
	// Shape is the CHW shape, e.g. [3, 32, 32].
	Shape []int `json:"shape"`
}

// tensor validates the payload and converts it to a tensor.
func (p imagePayload) tensor() (*tensor.Tensor, error) {
	if len(p.Shape) == 0 {
		return nil, errors.New("image needs a shape, e.g. [3, 32, 32]")
	}
	n := 1
	for _, d := range p.Shape {
		if d <= 0 {
			return nil, fmt.Errorf("image shape %v has a non-positive dimension", p.Shape)
		}
		n *= d
	}
	if n != len(p.Pixels) {
		return nil, fmt.Errorf("image shape %v wants %d pixels, got %d", p.Shape, n, len(p.Pixels))
	}
	return tensor.FromSlice(p.Pixels, p.Shape...), nil
}

// predictRequest is the /v1/predict body: one image, an optional threat
// model ("1".."3", "tm2", "TM-II", … — empty selects the server default)
// and whether to echo the full probability vector.
type predictRequest struct {
	imagePayload
	TM string `json:"tm,omitempty"`
	// Precision selects the numeric lane ("float32"/"f32"/"32" or
	// "float64"/"f64"/"64"); empty selects the server default.
	Precision string `json:"precision,omitempty"`
	// Model pins a loaded model version ("name@version", or a bare name
	// for its highest loaded version); empty selects the active default.
	Model       string `json:"model,omitempty"`
	ReturnProbs bool   `json:"probs,omitempty"`
}

// predictBatchRequest is the /v1/predict_batch body.
type predictBatchRequest struct {
	Images      []imagePayload `json:"images"`
	TM          string         `json:"tm,omitempty"`
	Precision   string         `json:"precision,omitempty"`
	Model       string         `json:"model,omitempty"`
	ReturnProbs bool           `json:"probs,omitempty"`
}

// predictResponse is the wire form of one Prediction.
type predictResponse struct {
	Class     int       `json:"class"`
	Label     string    `json:"label,omitempty"`
	Prob      float64   `json:"prob"`
	TM        string    `json:"tm"`
	Precision string    `json:"precision"`
	Model     string    `json:"model,omitempty"`
	Probs     []float64 `json:"probs,omitempty"`
	// Detection carries the detect-then-correct verdict when the server
	// runs with a detector configured.
	Detection *Detection `json:"detection,omitempty"`
}

func toResponse(p Prediction, withProbs bool) predictResponse {
	r := predictResponse{Class: p.Class, Label: p.Label, Prob: p.Prob, TM: p.TM.String(), Precision: p.Precision.String(), Model: p.Model, Detection: p.Detection}
	if withProbs {
		r.Probs = p.Probs
	}
	return r
}

// Handler returns the server's HTTP surface:
//
//	POST /v1/predict        {"pixels": […], "shape": [3,S,S], "tm": "2", "probs": true}
//	POST /v1/predict_batch  {"images": [{"pixels": …, "shape": …}, …], "tm": "3"}
//	POST /v1/defend         {"pixels": […], "shape": [3,S,S], "filter": "chain(median(r=1),histeq(bins=64))", "predict": true}
//	POST /v1/detect         {"pixels": […], "shape": [3,S,S], "detector": "detect(squeezers=(bitdepth(bits=4),median(r=1)),thr=0.6)"}
//	POST /v1/attack         {"attack": "pgd(eps=0.03,steps=40)", "source": 14, "target": 1, "tm": "3", "aware": true}
//	POST /v1/evaluate       {"attacks": ["fgsm", "bim(eps=0.1)"], "tms": ["3"], "filters": ["none", "lap(np=32)"], "detector": "detect", "cases": [{"source":14,"target":1}]}
//	GET  /v1/models         model table: active version, loaded versions, registry catalog
//	POST /v1/models         {"action": "load"|"activate"|"unload", "model": "name@version", "keep": true}
//	GET  /v1/healthz        liveness + degraded/draining + model identity + configuration echo
//	GET  /v1/stats          serving counters (Stats)
//	GET  /metrics           Prometheus text exposition (lanes, cache, models, latency)
//
// Inference routes accept an optional "model" field pinning a loaded
// version ("name@version", or a bare name for its highest loaded
// version); the reply echoes the version that answered.
//
// Every /v1 route is instrumented: per-route latency histograms and
// status-class counters feed /metrics. Error responses are structured
// JSON with a machine-readable "code": admission sheds are 429 with a
// Retry-After header, drain/shutdown refusals 503, server-side deadline
// hits 504.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.instrument("predict", s.handlePredict))
	mux.HandleFunc("/v1/predict_batch", s.instrument("predict_batch", s.handlePredictBatch))
	mux.HandleFunc("/v1/defend", s.instrument("defend", s.handleDefend))
	mux.HandleFunc("/v1/detect", s.instrument("detect", s.handleDetect))
	mux.HandleFunc("/v1/attack", s.instrument("attack", s.handleAttack))
	mux.HandleFunc("/v1/evaluate", s.instrument("evaluate", s.handleEvaluate))
	mux.HandleFunc("/v1/models", s.instrument("models", s.handleModels))
	mux.HandleFunc("/v1/healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// defendHTTPRequest is the /v1/defend body: one image and a filter spec
// (empty selects the deployed filter; "none" is the explicit no-op).
type defendHTTPRequest struct {
	imagePayload
	Filter string `json:"filter,omitempty"`
	// Predict also classifies the filtered image.
	Predict bool `json:"predict,omitempty"`
	// Model selects the scoring model ("" = active default).
	Model string `json:"model,omitempty"`
	// ReturnPixels echoes the filtered image in the response (default
	// true; set "return_pixels": false to save bandwidth when only
	// predicting).
	ReturnPixels *bool `json:"return_pixels,omitempty"`
}

// defendHTTPResponse is the /v1/defend reply.
type defendHTTPResponse struct {
	Filter string    `json:"filter"`
	Pixels []float64 `json:"pixels,omitempty"`
	Shape  []int     `json:"shape,omitempty"`
	Class  *int      `json:"class,omitempty"`
	Label  string    `json:"label,omitempty"`
	Prob   *float64  `json:"prob,omitempty"`
}

func (s *Server) handleDefend(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req defendHTTPRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	img, err := req.tensor()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out, err := s.Defend(r.Context(), DefendRequest{Image: img, Spec: req.Filter, Predict: req.Predict, Model: req.Model})
	if err != nil {
		writePredictError(w, err)
		return
	}
	resp := defendHTTPResponse{Filter: out.Filter}
	if req.ReturnPixels == nil || *req.ReturnPixels {
		resp.Pixels = out.Filtered.Data()
		resp.Shape = out.Filtered.Shape()
	}
	if out.Prediction != nil {
		resp.Class = &out.Prediction.Class
		resp.Label = out.Prediction.Label
		resp.Prob = &out.Prediction.Prob
	}
	writeJSON(w, http.StatusOK, resp)
}

// detectHTTPRequest is the /v1/detect body: one image, an optional
// detector spec (empty selects the server's configured detector) and an
// optional threat model (empty selects TM-I, the DNN input-buffer view
// the detector guards).
type detectHTTPRequest struct {
	imagePayload
	Detector string `json:"detector,omitempty"`
	TM       string `json:"tm,omitempty"`
	// Model selects the probing model ("" = active default).
	Model string `json:"model,omitempty"`
}

// detectHTTPResponse is the /v1/detect reply: the verdict, the
// per-squeezer breakdown, and the model's classification of the raw
// view.
type detectHTTPResponse struct {
	Detector     string                 `json:"detector"`
	TM           string                 `json:"tm"`
	Score        float64                `json:"score"`
	Threshold    float64                `json:"threshold"`
	Flagged      bool                   `json:"flagged"`
	MaxL1        float64                `json:"max_l1"`
	Top1Disagree int                    `json:"top1_disagree"`
	Squeezers    []detect.SqueezerScore `json:"squeezers"`
	Class        int                    `json:"class"`
	Label        string                 `json:"label,omitempty"`
	Prob         float64                `json:"prob"`
	Model        string                 `json:"model,omitempty"`
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req detectHTTPRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	tm := pipeline.TM1
	if req.TM != "" {
		var ok bool
		if tm, ok = s.parseTM(w, req.TM); !ok {
			return
		}
	}
	img, err := req.tensor()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out, err := s.Detect(r.Context(), DetectRequest{Image: img, Spec: req.Detector, TM: tm, Model: req.Model})
	if err != nil {
		writePredictError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, detectHTTPResponse{
		Detector:     out.Detector,
		TM:           out.TM.String(),
		Score:        out.Verdict.Score,
		Threshold:    out.Threshold,
		Flagged:      out.Verdict.Flagged,
		MaxL1:        out.Verdict.MaxL1,
		Top1Disagree: out.Verdict.Top1Disagree,
		Squeezers:    out.Verdict.PerSqueezer,
		Class:        out.Prediction.Class,
		Label:        out.Prediction.Label,
		Prob:         out.Prediction.Prob,
		Model:        out.Prediction.Model,
	})
}

// attackHTTPRequest is the /v1/attack body. Pixels/Shape are optional:
// when absent the canonical source-class sign is rendered server-side.
type attackHTTPRequest struct {
	imagePayload
	Attack string `json:"attack"`
	Source int    `json:"source"`
	// Target defaults to untargeted when the field is omitted.
	Target *int   `json:"target"`
	TM     string `json:"tm,omitempty"`
	Aware  bool   `json:"aware,omitempty"`
	// Adaptive overrides Aware with an explicit crafting mode spec
	// ("blind", "bpda", "eot(draws=N)").
	Adaptive string `json:"adaptive,omitempty"`
	// Model selects the attacked model ("" = active default).
	Model string `json:"model,omitempty"`
	// ReturnAdv echoes the crafted adversarial image in the response.
	ReturnAdv bool `json:"adv,omitempty"`
}

// attackHTTPResponse flattens a core.Outcome onto the wire.
type attackHTTPResponse struct {
	Attack       string    `json:"attack"`
	Success      bool      `json:"success"`
	Truncated    bool      `json:"truncated"`
	Queries      int       `json:"queries"`
	Iterations   int       `json:"iterations"`
	AttackerPred int       `json:"attacker_pred"`
	AttackerConf float64   `json:"attacker_conf"`
	CleanPred    int       `json:"clean_pred"`
	TM1Pred      int       `json:"tm1_pred"`
	TM1Conf      float64   `json:"tm1_conf"`
	DeployedTM   string    `json:"deployed_tm"`
	DeployedPred int       `json:"deployed_pred"`
	DeployedConf float64   `json:"deployed_conf"`
	Cost         float64   `json:"cost"`
	Neutralized  bool      `json:"neutralized"`
	Survived     bool      `json:"survived"`
	NoiseLInf    float64   `json:"noise_linf"`
	NoiseL2      float64   `json:"noise_l2"`
	AdvPixels    []float64 `json:"adv_pixels,omitempty"`
	AdvShape     []int     `json:"adv_shape,omitempty"`
}

func (s *Server) handleAttack(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req attackHTTPRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	var tm pipeline.ThreatModel
	if req.TM != "" {
		var ok bool
		if tm, ok = s.parseTM(w, req.TM); !ok {
			return
		}
	}
	var img *tensor.Tensor
	if len(req.Pixels) > 0 || len(req.Shape) > 0 {
		var err error
		if img, err = req.tensor(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	target := attackTargetOrUntargeted(req.Target)
	out, err := s.Attack(r.Context(), AttackRequest{
		Spec:        req.Attack,
		Image:       img,
		Source:      req.Source,
		Target:      target,
		TM:          tm,
		FilterAware: req.Aware,
		Adaptive:    req.Adaptive,
		Model:       req.Model,
	})
	if err != nil {
		writeAttackError(w, err)
		return
	}
	res := out.AttackerResult
	cmp := out.Comparison
	resp := attackHTTPResponse{
		Attack:       cmp.AttackName,
		Success:      res.Success,
		Truncated:    res.Truncated,
		Queries:      res.Queries,
		Iterations:   res.Iterations,
		AttackerPred: res.PredClass,
		AttackerConf: res.Confidence,
		CleanPred:    cmp.CleanPred,
		TM1Pred:      cmp.TM1Pred,
		TM1Conf:      cmp.TM1Conf,
		DeployedTM:   cmp.TMX.String(),
		DeployedPred: cmp.TMXPred,
		DeployedConf: cmp.TMXConf,
		Cost:         cmp.Cost,
		Neutralized:  cmp.Neutralized,
		Survived:     cmp.SurvivedFilter,
		NoiseLInf:    res.Noise.LInfNorm(),
		NoiseL2:      res.Noise.L2Norm(),
	}
	if req.ReturnAdv {
		resp.AdvPixels = res.Adversarial.Data()
		resp.AdvShape = res.Adversarial.Shape()
	}
	writeJSON(w, http.StatusOK, resp)
}

// evalHTTPCase is one wire-form evaluation scenario.
type evalHTTPCase struct {
	Source int  `json:"source"`
	Target *int `json:"target"`
	// Pixels/Shape optionally carry an explicit clean image.
	Pixels []float64 `json:"pixels,omitempty"`
	Shape  []int     `json:"shape,omitempty"`
}

// evalHTTPRequest is the /v1/evaluate body.
type evalHTTPRequest struct {
	Attacks []string `json:"attacks"`
	TMs     []string `json:"tms,omitempty"`
	// Filters are filter specs overriding the deployed pre-processing
	// per series; empty sweeps the deployed filter only.
	Filters []string       `json:"filters,omitempty"`
	Cases   []evalHTTPCase `json:"cases,omitempty"`
	Aware   bool           `json:"aware,omitempty"`
	// Adaptive sweeps explicit crafting modes ("blind", "bpda",
	// "eot(draws=N)") instead of the single mode Aware selects; a sweep
	// containing "blind" plus stronger modes also returns "gaps".
	Adaptive []string `json:"adaptive,omitempty"`
	// Model pins the evaluated model for the whole sweep.
	Model string `json:"model,omitempty"`
	// Detector adds the detection axis: a detector spec (bare "detect"
	// selects the default ensemble), "none" to disable for this sweep,
	// empty to inherit the server's configured detector.
	Detector string `json:"detector,omitempty"`
}

// evalHTTPCell adds the wire threat-model label to an EvalCell.
type evalHTTPCell struct {
	EvalCell
	TM string `json:"tm"`
}

// evalHTTPSummary adds the wire threat-model label to an EvalSummary.
type evalHTTPSummary struct {
	EvalSummary
	TM string `json:"tm"`
}

// evalHTTPGap adds the wire threat-model label to an EvalGap.
type evalHTTPGap struct {
	EvalGap
	TM string `json:"tm"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req evalHTTPRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	var tms []pipeline.ThreatModel
	for _, spec := range req.TMs {
		tm, ok := s.parseTM(w, spec)
		if !ok {
			return
		}
		tms = append(tms, tm)
	}
	var cases []EvalCase
	for i, c := range req.Cases {
		ec := EvalCase{Source: c.Source, Target: attackTargetOrUntargeted(c.Target)}
		if len(c.Pixels) > 0 || len(c.Shape) > 0 {
			img, err := imagePayload{Pixels: c.Pixels, Shape: c.Shape}.tensor()
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("case %d: %w", i, err))
				return
			}
			ec.Image = img
		}
		cases = append(cases, ec)
	}
	out, err := s.Evaluate(r.Context(), EvaluateRequest{
		Specs:       req.Attacks,
		TMs:         tms,
		Filters:     req.Filters,
		Cases:       cases,
		FilterAware: req.Aware,
		Adaptive:    req.Adaptive,
		Model:       req.Model,
		Detector:    req.Detector,
	})
	if err != nil {
		writeAttackError(w, err)
		return
	}
	cells := make([]evalHTTPCell, len(out.Cells))
	for i, c := range out.Cells {
		cells[i] = evalHTTPCell{EvalCell: c, TM: c.TM.String()}
	}
	summaries := make([]evalHTTPSummary, len(out.Summaries))
	for i, sm := range out.Summaries {
		summaries[i] = evalHTTPSummary{EvalSummary: sm, TM: sm.TM.String()}
	}
	resp := map[string]any{"cells": cells, "summaries": summaries}
	if len(out.Gaps) > 0 {
		gaps := make([]evalHTTPGap, len(out.Gaps))
		for i, g := range out.Gaps {
			gaps[i] = evalHTTPGap{EvalGap: g, TM: g.TM.String()}
		}
		resp["gaps"] = gaps
	}
	writeJSON(w, http.StatusOK, resp)
}

// attackTargetOrUntargeted maps an omitted wire target to Untargeted.
func attackTargetOrUntargeted(t *int) int {
	if t == nil {
		return attacks.Untargeted
	}
	return *t
}

// writeAttackError maps attack/evaluate errors onto HTTP statuses.
func writeAttackError(w http.ResponseWriter, err error) { writeServeError(w, err) }

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req predictRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	tm, ok := s.parseTM(w, req.TM)
	if !ok {
		return
	}
	prec, ok := s.parsePrecision(w, req.Precision)
	if !ok {
		return
	}
	img, err := req.tensor()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pred, err := s.PredictModel(r.Context(), req.Model, img, tm, prec)
	if err != nil {
		writePredictError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(pred, req.ReturnProbs))
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req predictBatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Images) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch needs at least one image"))
		return
	}
	tm, ok := s.parseTM(w, req.TM)
	if !ok {
		return
	}
	prec, ok := s.parsePrecision(w, req.Precision)
	if !ok {
		return
	}
	imgs := make([]*tensor.Tensor, len(req.Images))
	for i, p := range req.Images {
		img, err := p.tensor()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("image %d: %w", i, err))
			return
		}
		imgs[i] = img
	}
	preds, err := s.PredictBatchModel(r.Context(), req.Model, imgs, tm, prec)
	if err != nil {
		writePredictError(w, err)
		return
	}
	results := make([]predictResponse, len(preds))
	for i, p := range preds {
		results[i] = toResponse(p, req.ReturnProbs)
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// handleHealthz reports liveness for load balancers and front doors:
// 503 "draining"/"closed" once the server refuses new work, 200
// "degraded" while an admission lane shed within the last few seconds
// (keep routing here, but back off), 200 "ok" otherwise.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	select {
	case <-s.done:
		writeErrorCode(w, http.StatusServiceUnavailable, "closed", ErrServerClosed)
		return
	default:
	}
	if s.draining.Load() {
		writeErrorCode(w, http.StatusServiceUnavailable, "draining", ErrDraining)
		return
	}
	status := "ok"
	if s.interactive.shedding() || s.bulk.shedding() {
		status = "degraded"
	}
	active := s.active.Load()
	s.modelMu.Lock()
	loaded := len(s.models)
	s.modelMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": status,
		"model": map[string]any{
			"name":        active.id.Name,
			"version":     active.id.Version,
			"model":       active.key,
			"weight_hash": active.id.HashPrefix(),
		},
		"models_loaded":      loaded,
		"swaps":              s.swaps.Load(),
		"workers":            s.opts.Workers,
		"max_batch":          s.opts.MaxBatch,
		"default_tm":         s.opts.DefaultTM.String(),
		"precision":          s.opts.Precision.String(),
		"float32_lane":       s.Float32Available(),
		"in_shape":           active.inShape,
		"attack_workers":     s.opts.AttackWorkers,
		"attack_max_queries": s.opts.AttackBudget.MaxQueries,
		"attack_timeout_ms":  float64(s.opts.AttackTimeout) / float64(time.Millisecond),
		"filter":             s.filter.Name(),
		"detector":           s.detSpec,
		"interactive":        s.interactive.stats(),
		"bulk":               s.bulk.stats(),
		"cache":              s.cache.stats(),
	})
}

// modelsActionRequest is the POST /v1/models body: the model-table admin
// surface. "load" warms a registry version into the table, "activate"
// hot-swaps the default (retiring the old version unless "keep" is
// true), "unload" retires a non-active version.
type modelsActionRequest struct {
	Action string `json:"action"`
	Model  string `json:"model"`
	// Keep leaves the previous default loaded after an activate (for
	// per-request A/B selection) instead of retiring it.
	Keep bool `json:"keep,omitempty"`
}

// handleModels is the /v1/models route. GET lists the active version,
// every loaded version, and (when a registry is configured) the
// registry's catalog; POST executes a load/activate/unload action.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		resp := map[string]any{
			"active": s.ActiveModel().String(),
			"swaps":  s.swaps.Load(),
			"models": s.Models(),
		}
		if s.opts.Registry != nil {
			catalog, err := s.opts.Registry.List()
			if err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
			refs := make([]string, len(catalog))
			for i, man := range catalog {
				refs[i] = man.Name + "@" + man.Version
			}
			resp["registry"] = refs
		}
		writeJSON(w, http.StatusOK, resp)
	case http.MethodPost:
		var req modelsActionRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		var id pipeline.ModelID
		var err error
		switch req.Action {
		case "load":
			id, err = s.LoadModel(req.Model)
		case "activate":
			id, err = s.Activate(req.Model, req.Keep)
		case "unload":
			err = s.UnloadModel(req.Model)
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown action %q (use load, activate or unload)", req.Action))
			return
		}
		if err != nil {
			writeServeError(w, err)
			return
		}
		echo := id.String()
		if echo == "" {
			echo = req.Model
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"action": req.Action,
			"model":  echo,
			"active": s.ActiveModel().String(),
		})
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// parsePrecision resolves the optional wire precision; empty selects the
// server default. On failure it writes a 400 and returns ok == false.
func (s *Server) parsePrecision(w http.ResponseWriter, spec string) (pipeline.Precision, bool) {
	if spec == "" {
		return s.opts.Precision, true
	}
	prec, err := pipeline.ParsePrecision(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return 0, false
	}
	return prec, true
}

// parseTM resolves the optional wire threat model; empty selects the
// server default. On failure it writes a 400 and returns ok == false.
func (s *Server) parseTM(w http.ResponseWriter, spec string) (pipeline.ThreatModel, bool) {
	if spec == "" {
		return s.opts.DefaultTM, true
	}
	tm, err := pipeline.ParseThreatModel(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return 0, false
	}
	return tm, true
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use %s", method))
		return false
	}
	return true
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return false
	}
	return true
}

// writePredictError maps Predict errors onto HTTP statuses.
func writePredictError(w http.ResponseWriter, err error) { writeServeError(w, err) }

// writeServeError is the unified error taxonomy of the serving surface.
// Every serving error becomes structured JSON ({"error": …, "code": …})
// with a status a client can act on:
//
//   - 429 Too Many Requests + Retry-After: an admission lane shed the
//     request (OverloadError) — retry after the hinted backoff.
//   - 503 Service Unavailable, code "draining"/"closed"/"disabled": the
//     server refuses new work — route to another replica.
//   - 504 Gateway Timeout, code "deadline": the server-side per-route
//     deadline fired before the work finished.
//   - 503, code "canceled": the client went away mid-request.
//   - 400 Bad Request, code "bad_request": an input problem.
func writeServeError(w http.ResponseWriter, err error) {
	var ov *OverloadError
	switch {
	case errors.As(err, &ov):
		secs := int(ov.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeErrorCode(w, http.StatusTooManyRequests, "overloaded", err)
	case errors.Is(err, ErrDraining):
		writeErrorCode(w, http.StatusServiceUnavailable, "draining", err)
	case errors.Is(err, ErrServerClosed):
		writeErrorCode(w, http.StatusServiceUnavailable, "closed", err)
	case errors.Is(err, ErrAttacksDisabled):
		writeErrorCode(w, http.StatusServiceUnavailable, "disabled", err)
	case errors.Is(err, context.DeadlineExceeded):
		writeErrorCode(w, http.StatusGatewayTimeout, "deadline", err)
	case errors.Is(err, context.Canceled):
		writeErrorCode(w, http.StatusServiceUnavailable, "canceled", err)
	default:
		writeErrorCode(w, http.StatusBadRequest, "bad_request", err)
	}
}

// errorCodeFor maps a bare status to its default machine-readable code.
func errorCodeFor(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "error"
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeErrorCode(w, status, errorCodeFor(status), err)
}

func writeErrorCode(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error(), "code": code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
