package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// maxBodyBytes bounds request bodies; a 3×96×96 float64 batch of 64 images
// serialized as JSON stays far below this.
const maxBodyBytes = 64 << 20

// imagePayload is the wire form of one CHW image.
type imagePayload struct {
	// Pixels is the row-major flattened image in [0, 1].
	Pixels []float64 `json:"pixels"`
	// Shape is the CHW shape, e.g. [3, 32, 32].
	Shape []int `json:"shape"`
}

// tensor validates the payload and converts it to a tensor.
func (p imagePayload) tensor() (*tensor.Tensor, error) {
	if len(p.Shape) == 0 {
		return nil, errors.New("image needs a shape, e.g. [3, 32, 32]")
	}
	n := 1
	for _, d := range p.Shape {
		if d <= 0 {
			return nil, fmt.Errorf("image shape %v has a non-positive dimension", p.Shape)
		}
		n *= d
	}
	if n != len(p.Pixels) {
		return nil, fmt.Errorf("image shape %v wants %d pixels, got %d", p.Shape, n, len(p.Pixels))
	}
	return tensor.FromSlice(p.Pixels, p.Shape...), nil
}

// predictRequest is the /v1/predict body: one image, an optional threat
// model ("1".."3", "tm2", "TM-II", … — empty selects the server default)
// and whether to echo the full probability vector.
type predictRequest struct {
	imagePayload
	TM          string `json:"tm,omitempty"`
	ReturnProbs bool   `json:"probs,omitempty"`
}

// predictBatchRequest is the /v1/predict_batch body.
type predictBatchRequest struct {
	Images      []imagePayload `json:"images"`
	TM          string         `json:"tm,omitempty"`
	ReturnProbs bool           `json:"probs,omitempty"`
}

// predictResponse is the wire form of one Prediction.
type predictResponse struct {
	Class int       `json:"class"`
	Label string    `json:"label,omitempty"`
	Prob  float64   `json:"prob"`
	TM    string    `json:"tm"`
	Probs []float64 `json:"probs,omitempty"`
}

func toResponse(p Prediction, withProbs bool) predictResponse {
	r := predictResponse{Class: p.Class, Label: p.Label, Prob: p.Prob, TM: p.TM.String()}
	if withProbs {
		r.Probs = p.Probs
	}
	return r
}

// Handler returns the server's HTTP surface:
//
//	POST /v1/predict        {"pixels": […], "shape": [3,S,S], "tm": "2", "probs": true}
//	POST /v1/predict_batch  {"images": [{"pixels": …, "shape": …}, …], "tm": "3"}
//	GET  /v1/healthz        liveness + configuration echo
//	GET  /v1/stats          serving counters (Stats)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/predict_batch", s.handlePredictBatch)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req predictRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	tm, ok := s.parseTM(w, req.TM)
	if !ok {
		return
	}
	img, err := req.tensor()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pred, err := s.Predict(r.Context(), img, tm)
	if err != nil {
		writePredictError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(pred, req.ReturnProbs))
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req predictBatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Images) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch needs at least one image"))
		return
	}
	tm, ok := s.parseTM(w, req.TM)
	if !ok {
		return
	}
	imgs := make([]*tensor.Tensor, len(req.Images))
	for i, p := range req.Images {
		img, err := p.tensor()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("image %d: %w", i, err))
			return
		}
		imgs[i] = img
	}
	preds, err := s.PredictBatch(r.Context(), imgs, tm)
	if err != nil {
		writePredictError(w, err)
		return
	}
	results := make([]predictResponse, len(preds))
	for i, p := range preds {
		results[i] = toResponse(p, req.ReturnProbs)
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	select {
	case <-s.done:
		writeError(w, http.StatusServiceUnavailable, ErrServerClosed)
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status":     "ok",
			"workers":    s.opts.Workers,
			"max_batch":  s.opts.MaxBatch,
			"default_tm": s.opts.DefaultTM.String(),
			"in_shape":   s.inShape,
		})
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// parseTM resolves the optional wire threat model; empty selects the
// server default. On failure it writes a 400 and returns ok == false.
func (s *Server) parseTM(w http.ResponseWriter, spec string) (pipeline.ThreatModel, bool) {
	if spec == "" {
		return s.opts.DefaultTM, true
	}
	tm, err := pipeline.ParseThreatModel(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return 0, false
	}
	return tm, true
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use %s", method))
		return false
	}
	return true
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return false
	}
	return true
}

// writePredictError maps Predict errors onto HTTP statuses: shutdown is a
// 503 the load balancer should retry elsewhere, a cancelled request is the
// client's own timeout, everything else is a 400-class input problem.
func writePredictError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrServerClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
