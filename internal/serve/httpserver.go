package serve

import (
	"net/http"
	"time"
)

// Hardened HTTP front: every listener the repo opens — fademl-serve,
// fademl-front, the examples — goes through NewHTTPServer so a slow-loris
// client (drip-feeding headers or body, or never reading the response)
// occupies a connection for a bounded time instead of forever.

// HTTPTimeouts bounds one HTTP connection's lifecycle phases. The zero
// value of any field selects the matching DefaultHTTPTimeouts value; a
// negative field disables that bound explicitly.
type HTTPTimeouts struct {
	// ReadHeader bounds request-header arrival (the classic slow-loris
	// vector).
	ReadHeader time.Duration
	// Read bounds the whole request read, headers + body.
	Read time.Duration
	// Write bounds from the end of the header read to the end of the
	// response write — it therefore must exceed the slowest route the
	// handler serves (an /v1/evaluate sweep, not a /v1/predict).
	Write time.Duration
	// Idle bounds keep-alive idleness between requests.
	Idle time.Duration
}

// DefaultHTTPTimeouts is the serving default: tight header/read bounds
// against slow-loris, a write bound generous enough for a full evaluate
// sweep, and a keep-alive idle cap.
func DefaultHTTPTimeouts() HTTPTimeouts {
	return HTTPTimeouts{
		ReadHeader: 5 * time.Second,
		Read:       30 * time.Second,
		Write:      5 * time.Minute,
		Idle:       2 * time.Minute,
	}
}

// withDefaults resolves zero fields to the defaults and negative fields
// to disabled (0 on the http.Server).
func (t HTTPTimeouts) withDefaults() HTTPTimeouts {
	def := DefaultHTTPTimeouts()
	resolve := func(v, d time.Duration) time.Duration {
		switch {
		case v == 0:
			return d
		case v < 0:
			return 0
		default:
			return v
		}
	}
	t.ReadHeader = resolve(t.ReadHeader, def.ReadHeader)
	t.Read = resolve(t.Read, def.Read)
	t.Write = resolve(t.Write, def.Write)
	t.Idle = resolve(t.Idle, def.Idle)
	return t
}

// NewHTTPServer builds an http.Server with the hardened connection
// timeouts applied.
func NewHTTPServer(addr string, h http.Handler, t HTTPTimeouts) *http.Server {
	t = t.withDefaults()
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
}
