package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// Content-addressed result cache.
//
// Adversarial sweeps re-query near-identical images constantly — the
// same canonical sign under the same threat model, the same crafted
// example measured across a filter grid — so the serving layer keys
// prediction and defend results by the content of the request: a SHA-256
// over the image bytes, the threat model, the precision lane, the model
// identity (name@version plus its weight hash), and (for Defend) the
// resolved filter spec. Because a served prediction is a pure,
// deterministic function of that key (acquisition noise is a pure
// function of (seed, image), filters are deterministic, and each model
// version is immutable), a cache hit is bit-identical to a recomputed
// response on that exact version — and a hot-swap can never serve a
// stale-version hit, because the old and new versions occupy different
// addresses. Hits bypass lane admission entirely: they cost no worker
// time, so they are answered even while the lane is shedding.
//
// The cache is a mutex-guarded LRU bounded in entries
// (Options.CacheSize); hit/miss counters feed Stats and /metrics.

// cacheKey is the SHA-256 content address of one request.
type cacheKey [sha256.Size]byte

// contentCache is a bounded LRU keyed by content address. A nil
// *contentCache is the disabled cache: lookups miss without counting and
// stores are dropped.
type contentCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheItem struct {
	key cacheKey
	val any
}

func newContentCache(max int) *contentCache {
	if max <= 0 {
		return nil
	}
	return &contentCache{max: max, ll: list.New(), items: make(map[cacheKey]*list.Element)}
}

func (c *contentCache) get(k cacheKey) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheItem).val, true
}

func (c *contentCache) put(k cacheKey, v any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheItem).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheItem{key: k, val: v})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheItem).key)
	}
}

func (c *contentCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is the cache snapshot embedded in Stats and /metrics.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
	// Capacity is the entry bound (0 = caching disabled).
	Capacity int `json:"capacity"`
	// HitRate is Hits / (Hits + Misses), 0 when no lookups happened.
	HitRate float64 `json:"hit_rate"`
}

func (c *contentCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Entries:  c.len(),
		Capacity: c.max,
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}

// hashTensor feeds a tensor's shape and raw float64 bits into h in
// bounded chunks (no per-image allocation proportional to the image).
func hashTensor(h hash.Hash, t *tensor.Tensor) {
	var buf [4096]byte
	n := 0
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[n:], v)
		n += 8
		if n == len(buf) {
			h.Write(buf[:])
			n = 0
		}
	}
	for i := 0; i < t.Dims(); i++ {
		put(uint64(t.Dim(i)))
	}
	for _, v := range t.Data() {
		put(math.Float64bits(v))
	}
	if n > 0 {
		h.Write(buf[:n])
	}
}

// hashModelID feeds the model identity — the name@version label and the
// weight hash behind it — into a content address. Both parts matter: the
// label distinguishes versions, the weight hash protects against a
// relabeled store (two stores mounting different weights under the same
// name@version address differently).
func hashModelID(h hash.Hash, id pipeline.ModelID) {
	h.Write([]byte(id.String()))
	h.Write([]byte{0})
	h.Write([]byte(id.WeightHash))
	h.Write([]byte{0})
}

// predCacheKey addresses one (model, image, threat model, precision,
// detector spec) prediction. The precision byte is part of the address:
// the float32 lane's results are not bit-identical to the float64
// lane's, so a float32 hit must never answer a float64 request (or vice
// versa). The model identity is part of the address for the same reason
// across the version axis: a v1 hit must never answer a v2 request. And
// the detector spec ("" when detection is off, or for the server's own
// measurement traffic) keys the routing mode: a detect-then-correct
// answer — possibly rewritten by the correction chain — must never be
// replayed to a plain request, nor a plain answer to a detected one.
func predCacheKey(m *servedModel, img *tensor.Tensor, tm pipeline.ThreatModel, prec pipeline.Precision, detSpec string) cacheKey {
	h := sha256.New()
	h.Write([]byte{'p', byte(tm), byte(prec)})
	hashModelID(h, m.id)
	h.Write([]byte(detSpec))
	h.Write([]byte{0})
	hashTensor(h, img)
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// detectCacheKey addresses one (model, image, detector spec, threat
// model) Detect call ('v' for verdict; 'd' is Defend's kind byte).
func detectCacheKey(m *servedModel, img *tensor.Tensor, detName string, tm pipeline.ThreatModel) cacheKey {
	h := sha256.New()
	h.Write([]byte{'v', byte(tm)})
	hashModelID(h, m.id)
	h.Write([]byte(detName))
	h.Write([]byte{0})
	hashTensor(h, img)
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// defendCacheKey addresses one (model, image, filter spec, predict?)
// Defend call. The filtered image itself is model-independent, but the
// optional prediction is not, so the model identity is always part of
// the address (one uniform key layout beats a conditional one).
func defendCacheKey(m *servedModel, img *tensor.Tensor, filterName string, predict bool) cacheKey {
	h := sha256.New()
	p := byte(0)
	if predict {
		p = 1
	}
	h.Write([]byte{'d', p})
	hashModelID(h, m.id)
	h.Write([]byte(filterName))
	h.Write([]byte{0})
	hashTensor(h, img)
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// copyPrediction returns a caller-owned copy of a Prediction so neither
// side can mutate the other's probability vector (or detector verdict).
func copyPrediction(p Prediction) Prediction {
	p.Probs = append([]float64(nil), p.Probs...)
	if p.Detection != nil {
		d := *p.Detection
		p.Detection = &d
	}
	return p
}

// lookupPrediction checks the prediction cache; ok means pred is a
// caller-owned, bit-identical copy of an earlier response from the same
// model version under the same detect-routing mode.
func (s *Server) lookupPrediction(m *servedModel, img *tensor.Tensor, tm pipeline.ThreatModel, prec pipeline.Precision, detSpec string) (Prediction, cacheKey, bool) {
	if s.cache == nil {
		return Prediction{}, cacheKey{}, false
	}
	k := predCacheKey(m, img, tm, prec, detSpec)
	if v, ok := s.cache.get(k); ok {
		return copyPrediction(v.(Prediction)), k, true
	}
	return Prediction{}, k, false
}

// storePrediction caches a copy of a freshly computed prediction.
func (s *Server) storePrediction(k cacheKey, p Prediction) {
	if s.cache == nil {
		return
	}
	s.cache.put(k, copyPrediction(p))
}

// cachedDefend is the stored form of a Defend result.
type cachedDefend struct {
	filter   string
	filtered *tensor.Tensor
	pred     *Prediction
}

// copyDefend converts a cache entry into a caller-owned DefendResult.
func (d cachedDefend) result() *DefendResult {
	res := &DefendResult{Filter: d.filter, Filtered: d.filtered.Clone()}
	if d.pred != nil {
		p := copyPrediction(*d.pred)
		res.Prediction = &p
	}
	return res
}
