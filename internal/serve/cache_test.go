package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/pipeline"
)

func cacheServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.MaxBatch == 0 {
		opts.MaxBatch = 8
	}
	if opts.MaxWait == 0 {
		opts.MaxWait = time.Millisecond
	}
	s := New(servePipeline(t), opts)
	t.Cleanup(s.Close)
	return s
}

// TestCacheHitBitIdentical: a repeat query must be served from cache —
// no second enqueue — and the cached prediction must be bit-identical
// to the computed one.
func TestCacheHitBitIdentical(t *testing.T) {
	s := cacheServer(t, Options{})
	img := testImages(1)[0]

	first, err := s.Predict(context.Background(), img, pipeline.TM2)
	if err != nil {
		t.Fatal(err)
	}
	enqueued := s.Stats().Requests
	second, err := s.Predict(context.Background(), img, pipeline.TM2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Requests; got != enqueued {
		t.Fatalf("repeat query enqueued work: %d -> %d requests", enqueued, got)
	}
	if st := s.Stats().Cache; st.Hits != 1 {
		t.Fatalf("cache hits %d, want 1", st.Hits)
	}
	if first.Class != second.Class || first.Prob != second.Prob {
		t.Fatalf("cached prediction differs: %+v vs %+v", first, second)
	}
	for i := range first.Probs {
		if first.Probs[i] != second.Probs[i] {
			t.Fatalf("prob %d differs bitwise: %v vs %v", i, first.Probs[i], second.Probs[i])
		}
	}
}

// TestCacheDiscriminates: the content address must separate threat
// models and image contents.
func TestCacheDiscriminates(t *testing.T) {
	s := cacheServer(t, Options{})
	imgs := testImages(2)

	if _, err := s.Predict(context.Background(), imgs[0], pipeline.TM1); err != nil {
		t.Fatal(err)
	}
	// Same image, different TM: must miss (TM2 adds acquisition + filter).
	if _, err := s.Predict(context.Background(), imgs[0], pipeline.TM2); err != nil {
		t.Fatal(err)
	}
	// Different image, same TM: must miss.
	if _, err := s.Predict(context.Background(), imgs[1], pipeline.TM1); err != nil {
		t.Fatal(err)
	}
	st := s.Stats().Cache
	if st.Hits != 0 || st.Misses < 3 {
		t.Fatalf("hits %d misses %d, want 0 hits and >= 3 misses", st.Hits, st.Misses)
	}
}

// TestCacheHitMutationSafe: mutating a returned probability vector must
// not corrupt the cached copy.
func TestCacheHitMutationSafe(t *testing.T) {
	s := cacheServer(t, Options{})
	img := testImages(1)[0]
	first, err := s.Predict(context.Background(), img, pipeline.TM1)
	if err != nil {
		t.Fatal(err)
	}
	want := first.Probs[0]
	first.Probs[0] = -1 // caller scribbles on its copy
	second, err := s.Predict(context.Background(), img, pipeline.TM1)
	if err != nil {
		t.Fatal(err)
	}
	if second.Probs[0] != want {
		t.Fatalf("cache entry corrupted by caller mutation: %v", second.Probs[0])
	}
}

// TestCacheLRUEviction: the size bound must evict least-recently-used
// entries.
func TestCacheLRUEviction(t *testing.T) {
	s := cacheServer(t, Options{CacheSize: 2})
	imgs := testImages(3)
	for _, img := range imgs {
		if _, err := s.Predict(context.Background(), img, pipeline.TM1); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats().Cache
	if st.Entries != 2 {
		t.Fatalf("entries %d, want 2 after inserting 3 with capacity 2", st.Entries)
	}
	// imgs[0] was evicted: a repeat must miss and re-enqueue.
	enqueued := s.Stats().Requests
	if _, err := s.Predict(context.Background(), imgs[0], pipeline.TM1); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Requests; got != enqueued+1 {
		t.Fatalf("evicted entry did not re-enqueue: %d -> %d", enqueued, got)
	}
	// imgs[2] is still resident.
	hits := s.Stats().Cache.Hits
	if _, err := s.Predict(context.Background(), imgs[2], pipeline.TM1); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Cache.Hits; got != hits+1 {
		t.Fatal("most-recent entry was evicted")
	}
}

// TestCacheDisabled: CacheSize < 0 must disable caching entirely.
func TestCacheDisabled(t *testing.T) {
	s := cacheServer(t, Options{CacheSize: -1})
	img := testImages(1)[0]
	for i := 0; i < 2; i++ {
		if _, err := s.Predict(context.Background(), img, pipeline.TM1); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Requests != 2 {
		t.Fatalf("requests %d, want 2 (no caching)", s.Stats().Requests)
	}
	if st := s.Stats().Cache; st.Hits != 0 || st.Misses != 0 || st.Capacity != 0 {
		t.Fatalf("disabled cache has activity: %+v", st)
	}
}

// TestDefendCacheCloneOnHit: a cached Defend result must be cloned per
// caller — mutating one response must not leak into the next.
func TestDefendCacheCloneOnHit(t *testing.T) {
	s := cacheServer(t, Options{})
	img := testImages(1)[0]
	req := DefendRequest{Image: img, Spec: "median(r=1)", Predict: true}

	first, err := s.Defend(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Defend(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().Cache.Hits == 0 {
		t.Fatal("repeat defend did not hit the cache")
	}
	if second.Prediction == nil || second.Prediction.Class != first.Prediction.Class {
		t.Fatalf("cached defend prediction differs: %+v vs %+v", first.Prediction, second.Prediction)
	}
	want := second.Filtered.Data()[0]
	second.Filtered.Data()[0] = -99
	third, err := s.Defend(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if third.Filtered.Data()[0] != want {
		t.Fatal("defend cache entry corrupted by caller mutation")
	}
}

// TestCacheHitServedWhileDraining: a hit costs no worker time, so it is
// answered even after BeginDrain — while an uncached request is refused.
func TestCacheHitServedWhileDraining(t *testing.T) {
	s := cacheServer(t, Options{})
	imgs := testImages(2)
	if _, err := s.Predict(context.Background(), imgs[0], pipeline.TM1); err != nil {
		t.Fatal(err)
	}
	s.BeginDrain()
	if _, err := s.Predict(context.Background(), imgs[0], pipeline.TM1); err != nil {
		t.Fatalf("cached predict refused during drain: %v", err)
	}
	if _, err := s.Predict(context.Background(), imgs[1], pipeline.TM1); !errors.Is(err, ErrDraining) {
		t.Fatalf("uncached predict during drain got %v, want ErrDraining", err)
	}
}

// TestPredictBatchPartialHits: a batch must enqueue only its cache
// misses and still return positionally correct results.
func TestPredictBatchPartialHits(t *testing.T) {
	s := cacheServer(t, Options{})
	imgs := testImages(4)
	// Warm imgs[1] and imgs[3].
	for _, i := range []int{1, 3} {
		if _, err := s.Predict(context.Background(), imgs[i], pipeline.TM1); err != nil {
			t.Fatal(err)
		}
	}
	enqueued := s.Stats().Requests
	preds, err := s.PredictBatch(context.Background(), imgs, pipeline.TM1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Requests - enqueued; got != 2 {
		t.Fatalf("batch enqueued %d images, want 2 (the misses)", got)
	}
	pipe := servePipeline(t)
	for i, p := range preds {
		direct := pipe.Probs(imgs[i], pipeline.TM1)
		for j := range direct {
			if p.Probs[j] != direct[j] {
				t.Fatalf("image %d prob %d differs from direct pipeline", i, j)
			}
		}
	}
}
