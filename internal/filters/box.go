package filters

import (
	"fmt"

	"repro/internal/tensor"
)

// Box is a square box (mean) filter with the given half-width: the
// (2r+1)² uniform average classical image pipelines default to. It is a
// stencil like LAP/LAR, so its VJP is the exact adjoint. Included to let
// experiments compare the paper's circular LAR footprint against the
// square box of equal radius.
type Box struct {
	r  int
	st *stencil
}

// NewBox builds a box filter with window half-width r.
func NewBox(radius int) Filter {
	if radius <= 0 {
		panic(fmt.Sprintf("filters: box radius %d must be positive", radius))
	}
	f := &Box{r: radius}
	f.rebuild()
	return f
}

// rebuild reconstructs the stencil after a parameter change.
func (f *Box) rebuild() {
	var offs []offset
	for dy := -f.r; dy <= f.r; dy++ {
		for dx := -f.r; dx <= f.r; dx++ {
			offs = append(offs, offset{dy, dx})
		}
	}
	f.st = newStencil(f.Name(), offs, uniformWeights(len(offs)))
}

// Name implements Filter: the canonical spec, e.g. "box(r=2)".
func (f *Box) Name() string { return specName("box", f.Params()) }

// Taps returns the stencil tap count ((2r+1)²).
func (f *Box) Taps() int { return f.st.Taps() }

// Apply implements Filter.
func (f *Box) Apply(img *tensor.Tensor) *tensor.Tensor { return f.st.Apply(img) }

// ApplyBatch implements Filter over the parallel pool.
func (f *Box) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor { return f.st.ApplyBatch(imgs) }

// VJP implements Filter (exact adjoint).
func (f *Box) VJP(x, upstream *tensor.Tensor) *tensor.Tensor { return f.st.VJP(x, upstream) }

// Params implements Configurable.
func (f *Box) Params() []Param {
	return []Param{
		intParam("r", "square window half-width in pixels", &f.r, intAtLeast(1), f.rebuild),
	}
}

// Set implements Configurable.
func (f *Box) Set(name, value string) error { return setParam(f.Params(), name, value) }
