package filters

import "fmt"

// NewBox builds a square box (mean) filter with the given half-width: the
// (2r+1)² uniform average classical image pipelines default to. It is a
// stencil like LAP/LAR, so its VJP is the exact adjoint. Included to let
// experiments compare the paper's circular LAR footprint against the
// square box of equal radius.
func NewBox(radius int) Filter {
	if radius <= 0 {
		panic(fmt.Sprintf("filters: box radius %d must be positive", radius))
	}
	var offs []offset
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			offs = append(offs, offset{dy, dx})
		}
	}
	return newStencil(fmt.Sprintf("Box(%d)", radius), offs, uniformWeights(len(offs)))
}
