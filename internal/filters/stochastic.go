package filters

import (
	"math"

	"repro/internal/tensor"
)

// Randomized defenses (randjpeg, randresize, randflip, randnoise) are
// stochastic pipeline stages, but their randomness is declarative, never
// ambient: every draw is a pure function of (seed, image), exactly like
// the Threat-Model-II acquisition noise. Applying the same filter to the
// same image always produces bit-identical output, no matter how many
// goroutines share the instance or in what order they call it — which is
// what keeps batched delivery, the serving layer and the parallel
// experiment engine deterministic. Distinct draws of the randomness (for
// EOT averaging, for an honest defender rotating its seed) come from
// distinct seeds via WithSeed.

// Stochastic is the contract of a randomized filter: its output is a pure
// function of (Seed(), input), and WithSeed derives an independently
// seeded copy so callers — the attacks package's EOT draw factory, a
// defender rotating randomness — can sample fresh draws without mutating
// the deployed instance.
type Stochastic interface {
	Filter
	// Seed returns the base seed of the filter's randomness stream.
	Seed() uint64
	// WithSeed returns a copy of the filter configured identically except
	// for the seed. The receiver is never modified.
	WithSeed(seed uint64) Filter
}

// Reseed returns f with every stochastic stage re-seeded from seed:
// a Stochastic filter becomes WithSeed(seed), a Chain is rebuilt with
// each stochastic stage seeded by DrawSeed(seed, stage-index), and a
// deterministic filter is returned unchanged. The input is never
// modified, so the deployed instance keeps its declared seed.
func Reseed(f Filter, seed uint64) Filter {
	switch t := f.(type) {
	case Stochastic:
		return t.WithSeed(seed)
	case Chain:
		out := make(Chain, len(t))
		for i, stage := range t {
			out[i] = Reseed(stage, DrawSeed(seed, i))
		}
		return out
	default:
		return f
	}
}

// IsStochastic reports whether f (or any stage of a Chain) carries
// randomness — i.e. whether Reseed with a fresh seed can change its
// output.
func IsStochastic(f Filter) bool {
	switch t := f.(type) {
	case Stochastic:
		return true
	case Chain:
		for _, stage := range t {
			if IsStochastic(stage) {
				return true
			}
		}
	}
	return false
}

// DrawSeed derives the seed of one independent draw from a base seed —
// EOT draw k, chain stage i — via a SplitMix64 step, so consecutive
// indices decorrelate completely while staying reproducible.
func DrawSeed(base uint64, draw int) uint64 {
	h := base + 0x9e3779b97f4a7c15*uint64(draw+1)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// ImageSeed hashes a base seed, the image shape and every pixel's bit
// pattern into the seed of one capture's private randomness stream.
// Identical (seed, image) pairs always map to the same stream; images
// that differ in a single bit decorrelate completely. The mix is one
// multiply-xor round per 64-bit word plus a SplitMix64 finalizer — the
// same construction (and constants) as the acquisition noise stream, so
// both stochastic stages share one audited definition of "pure function
// of (seed, image)".
func ImageSeed(seed uint64, img *tensor.Tensor) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	mix := func(v uint64) {
		h ^= v
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	for _, dim := range img.Shape() {
		mix(uint64(dim))
	}
	for _, v := range img.Data() {
		mix(math.Float64bits(v))
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ (h >> 31)
}
