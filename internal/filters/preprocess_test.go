package filters

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

func TestGrayscaleLuminance(t *testing.T) {
	img := tensor.New(3, 1, 1)
	img.Set(1, 0, 0, 0) // pure red
	out := Grayscale{}.Apply(img)
	for c := 0; c < 3; c++ {
		if !mathx.EqualWithin(out.At(c, 0, 0), 0.299, 1e-12) {
			t.Fatalf("red luminance channel %d = %v", c, out.At(c, 0, 0))
		}
	}
}

func TestGrayscaleIdempotent(t *testing.T) {
	rng := mathx.NewRNG(1)
	img := tensor.RandU(rng, 0, 1, 3, 4, 4)
	once := Grayscale{}.Apply(img)
	twice := Grayscale{}.Apply(once)
	if !tensor.EqualWithin(once, twice, 1e-12) {
		t.Fatal("grayscale not idempotent")
	}
}

func TestGrayscaleAdjointIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		x := tensor.RandN(r, 3, 5, 5)
		u := tensor.RandN(r, 3, 5, 5)
		g := Grayscale{}
		return mathx.EqualWithin(tensor.Dot(g.Apply(x), u), tensor.Dot(x, g.VJP(x, u)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGrayscaleRejectsWrongChannels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1-channel grayscale accepted")
		}
	}()
	Grayscale{}.Apply(tensor.New(1, 4, 4))
}

func TestNormalizeStatistics(t *testing.T) {
	rng := mathx.NewRNG(2)
	img := tensor.RandU(rng, 0.2, 0.9, 3, 8, 8)
	n := NewNormalize(0.5, 0.25)
	out := n.Apply(img)
	if m := out.Mean(); math.Abs(m-0.5) > 1e-9 {
		t.Fatalf("normalized mean = %v", m)
	}
	if s := mathx.StdDev(out.Data()); math.Abs(s-0.25) > 1e-3 {
		t.Fatalf("normalized std = %v", s)
	}
}

func TestNormalizeConstantImageSafe(t *testing.T) {
	img := tensor.Full(0.7, 1, 4, 4)
	out := NewNormalize(0.5, 0.25).Apply(img)
	if !out.AllFinite() {
		t.Fatal("normalize produced non-finite values on constant image")
	}
	// A constant image maps to the target mean.
	if !mathx.EqualWithin(out.Mean(), 0.5, 1e-9) {
		t.Fatalf("constant image mean = %v", out.Mean())
	}
}

func TestNormalizeVJPScale(t *testing.T) {
	rng := mathx.NewRNG(3)
	x := tensor.RandU(rng, 0, 1, 1, 6, 6)
	u := tensor.Full(1, 1, 6, 6)
	n := NewNormalize(0.5, 0.25)
	g := n.VJP(x, u)
	_, std := n.stats(x)
	want := 0.25 / std
	for _, v := range g.Data() {
		if !mathx.EqualWithin(v, want, 1e-12) {
			t.Fatalf("VJP value %v, want %v", v, want)
		}
	}
}

func TestNormalizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero std accepted")
		}
	}()
	NewNormalize(0.5, 0)
}

func TestHistEqSpreadsContrast(t *testing.T) {
	// A low-contrast image concentrated in [0.4, 0.6] should be stretched
	// toward the full [0, 1] range.
	rng := mathx.NewRNG(4)
	img := tensor.RandU(rng, 0.4, 0.6, 1, 16, 16)
	out := NewHistEq(64).Apply(img)
	if out.Max()-out.Min() < 0.9 {
		t.Fatalf("histogram equalization kept range [%v, %v]", out.Min(), out.Max())
	}
	if out.Min() < -1e-12 || out.Max() > 1+1e-12 {
		t.Fatalf("equalized image escaped [0,1]: [%v, %v]", out.Min(), out.Max())
	}
}

func TestHistEqMonotone(t *testing.T) {
	// Equalization must preserve value ordering within a channel.
	rng := mathx.NewRNG(5)
	img := tensor.RandU(rng, 0, 1, 1, 8, 8)
	out := NewHistEq(256).Apply(img)
	id, od := img.Data(), out.Data()
	for i := 0; i < len(id); i++ {
		for j := i + 1; j < len(id); j++ {
			if id[i] < id[j] && od[i] > od[j]+1e-12 {
				t.Fatalf("ordering violated: in %v<%v but out %v>%v", id[i], id[j], od[i], od[j])
			}
		}
	}
}

func TestHistEqConstantImageUnchanged(t *testing.T) {
	img := tensor.Full(0.3, 3, 4, 4)
	out := NewHistEq(32).Apply(img)
	if !tensor.EqualWithin(out, img, 1e-12) {
		t.Fatal("constant image changed by equalization")
	}
}

func TestHistEqVJPIsBPDA(t *testing.T) {
	rng := mathx.NewRNG(6)
	x := tensor.RandU(rng, 0, 1, 1, 4, 4)
	u := tensor.RandN(rng, 1, 4, 4)
	if !tensor.EqualWithin(NewHistEq(16).VJP(x, u), u, 0) {
		t.Fatal("HistEq VJP not the BPDA identity")
	}
}

func TestHistEqValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HistEq(1) accepted")
		}
	}()
	NewHistEq(1)
}

func TestPreprocessingStackComposes(t *testing.T) {
	// The paper's full pre-processing stack: grayscale → normalize →
	// smoothing, as one differentiable chain.
	rng := mathx.NewRNG(7)
	img := tensor.RandU(rng, 0, 1, 3, 8, 8)
	chain := Chain{Grayscale{}, NewNormalize(0.5, 0.2), NewLAP(8)}
	out := chain.Apply(img)
	if !out.SameShape(img) {
		t.Fatal("stack changed shape")
	}
	// Adjoint through the linear+lazy chain still transports gradient.
	u := tensor.RandN(rng, 3, 8, 8)
	g := chain.VJP(img, u)
	if g.L2Norm() == 0 || !g.AllFinite() {
		t.Fatal("stack VJP degenerate")
	}
}
