package filters

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse converts a user-supplied filter spec — the -filter CLI flag, a
// serving-config field — into a Filter. The grammar is KIND:PARAM with
// KIND in LAP, LAR, MEDIAN, GAUSS, BOX (case-insensitive); "none" and ""
// select no filtering and return (nil, nil), which pipeline.New treats as
// Identity. Parameters are validated here so a bad spec surfaces as an
// error at the flag boundary instead of a constructor panic mid-run.
func Parse(spec string) (Filter, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || strings.EqualFold(spec, "none") {
		return nil, nil
	}
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("filter spec %q: want KIND:PARAM, e.g. LAP:32 or none", spec)
	}
	kind := strings.ToUpper(strings.TrimSpace(parts[0]))
	v, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return nil, fmt.Errorf("filter spec %q: parameter %q is not an integer", spec, parts[1])
	}
	if v <= 0 {
		return nil, fmt.Errorf("filter spec %q: parameter must be positive", spec)
	}
	switch kind {
	case "LAP":
		return NewLAP(v), nil
	case "LAR":
		return NewLAR(v), nil
	case "MEDIAN":
		return NewMedian(v), nil
	case "GAUSS":
		return NewGaussian(float64(v)), nil
	case "BOX":
		return NewBox(v), nil
	default:
		return nil, fmt.Errorf("filter spec %q: unknown kind %q (LAP|LAR|MEDIAN|GAUSS|BOX|none)", spec, parts[0])
	}
}
