package filters

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse converts a user-supplied filter spec — the -filter CLI flags, a
// serving-request field — into a Filter. The grammar mirrors the attack
// spec syntax:
//
//	""  |  "none"                      → (nil, nil); pipeline.New treats
//	                                     nil as Identity
//	"median"                           → default-configured registry filter
//	"median(r=2)"                      → registry filter with knobs set
//	"chain(median(r=1),histeq(bins=64))" → left-to-right composition;
//	                                     commas split at paren depth zero
//
// Filter.Name() renders the canonical spec, and Parse(f.Name())
// round-trips for every registry filter and for chains of them.
//
// The legacy KIND:PARAM forms of the first releases (LAP:32, LAR:3,
// MEDIAN:1, GAUSS:2, BOX:2) are still accepted and map onto the
// equivalent canonical configuration.
//
// Unknown filters, unknown params and out-of-range values (median(r=0),
// a negative Gaussian sigma) all surface as usage-style errors here, at
// the flag/request boundary — never as a constructor panic mid-run and
// never silently clamped.
func Parse(spec string) (Filter, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || strings.EqualFold(spec, "none") {
		return nil, nil
	}
	if i := strings.IndexByte(spec, ':'); i >= 0 && !strings.ContainsAny(spec, "()=") {
		return parseLegacy(spec, spec[:i], spec[i+1:])
	}
	name, args, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	if name == "chain" {
		return parseChain(spec, args)
	}
	f, err := New(name)
	if err != nil {
		return nil, err
	}
	if args == "" {
		return f, nil
	}
	cfg, ok := f.(Configurable)
	if !ok {
		return nil, fmt.Errorf("filters: %s accepts no parameters", name)
	}
	for _, kv := range splitTopLevel(args) {
		key, value, found := strings.Cut(kv, "=")
		key, value = strings.TrimSpace(key), strings.TrimSpace(value)
		if !found || key == "" || value == "" {
			return nil, fmt.Errorf("filters: spec %q: want key=value, got %q", spec, strings.TrimSpace(kv))
		}
		if err := cfg.Set(key, value); err != nil {
			return nil, fmt.Errorf("filters: spec %q: %w", spec, err)
		}
	}
	// Cross-parameter constraints (randjpeg's qmin ≤ qmax) can only be
	// checked once every knob is assigned — per-param Set validation
	// cannot see them, so configured filters get a final Validate pass
	// at the same usage-error boundary.
	if v, ok := f.(Validator); ok {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("filters: spec %q: %w", spec, err)
		}
	}
	return f, nil
}

// Validator is the optional cross-parameter validation hook: filters
// whose parameters constrain each other (randjpeg's qmin ≤ qmax)
// implement it, and Parse rejects a configured instance whose combined
// knobs are inconsistent — as a usage error at the spec boundary, never
// a panic mid-run.
type Validator interface {
	Validate() error
}

// parseChain builds a Chain from the comma-separated stage list of a
// "chain(...)" spec, parsing each stage recursively.
func parseChain(spec, args string) (Filter, error) {
	if strings.TrimSpace(args) == "" {
		return nil, fmt.Errorf("filters: spec %q: chain needs at least one stage", spec)
	}
	var chain Chain
	for i, stage := range splitTopLevel(args) {
		f, err := Parse(stage)
		if err != nil {
			return nil, fmt.Errorf("filters: spec %q: stage %d: %w", spec, i+1, err)
		}
		if f == nil {
			return nil, fmt.Errorf("filters: spec %q: stage %d is empty (drop it instead of chaining \"none\")", spec, i+1)
		}
		chain = append(chain, f)
	}
	return chain, nil
}

// parseLegacy maps the pre-v2 KIND:PARAM syntax onto the registry.
func parseLegacy(spec, kind, param string) (Filter, error) {
	v, err := strconv.Atoi(strings.TrimSpace(param))
	if err != nil {
		return nil, fmt.Errorf("filter spec %q: parameter %q is not an integer", spec, param)
	}
	var name, key string
	switch strings.ToUpper(strings.TrimSpace(kind)) {
	case "LAP":
		name, key = "lap", "np"
	case "LAR":
		name, key = "lar", "r"
	case "MEDIAN":
		name, key = "median", "r"
	case "GAUSS":
		name, key = "gaussian", "sigma"
	case "BOX":
		name, key = "box", "r"
	default:
		return nil, fmt.Errorf("filter spec %q: unknown kind %q (LAP|LAR|MEDIAN|GAUSS|BOX|none)", spec, kind)
	}
	f, err := New(name)
	if err != nil {
		return nil, err
	}
	if err := f.(Configurable).Set(key, strconv.Itoa(v)); err != nil {
		return nil, fmt.Errorf("filter spec %q: %w", spec, err)
	}
	return f, nil
}

// splitSpec separates "name(args)" into its parts, validating the shape.
func splitSpec(spec string) (name, args string, err error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return "", "", fmt.Errorf("filters: empty filter spec")
	}
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if strings.ContainsAny(s, "),=:") {
			return "", "", fmt.Errorf("filters: malformed filter spec %q", spec)
		}
		return strings.ToLower(s), "", nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", "", fmt.Errorf("filters: filter spec %q: missing closing parenthesis", spec)
	}
	name = strings.ToLower(strings.TrimSpace(s[:open]))
	if name == "" {
		return "", "", fmt.Errorf("filters: filter spec %q has no name", spec)
	}
	return name, strings.TrimSpace(s[open+1 : len(s)-1]), nil
}

// splitTopLevel splits a comma-separated list at paren depth zero, so
// nested specs like chain stages and parameter groups survive intact.
func splitTopLevel(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// SplitSpecs splits a comma-separated list of filter specs at top level,
// so "chain(median(r=1),histeq(bins=64)),lap(np=8)" yields two entries.
// Empty elements are dropped; whitespace is trimmed.
func SplitSpecs(list string) []string {
	var out []string
	for _, s := range splitTopLevel(list) {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}
