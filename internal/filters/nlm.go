package filters

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// NLM is the non-local means denoiser (Buades et al.), the strongest
// classical denoising defense in the library: each output pixel is a
// weighted average over a search window where the weight of a candidate
// pixel decays with the mean squared distance between the PATCHES around
// the two pixels — so self-similar structure is averaged together while
// genuinely different content is not, removing adversarial noise with
// far less edge damage than LAP/LAR.
//
//	out[p] = Σ_q w(p,q)·v[q] / Σ_q w(p,q)
//	w(p,q) = exp(−msd(patch(p), patch(q)) / h²)
//
// with q ranging over the (2·Window+1)² search window and msd the mean
// squared difference over the (2·Patch+1)² patches, all replicate-
// clamped at borders.
//
// The weights are smooth in the input, so the VJP is EXACT: it carries
// both the direct averaging term and the weight-derivative term (the
// chain through msd), pinned by finite-difference tests.
type NLM struct {
	// H is the filter strength: patch distances are scored against h².
	H float64
	// Patch is the patch half-width used for similarity.
	Patch int
	// Window is the search-window half-width.
	Window int
}

// NewNLM constructs a non-local means filter.
func NewNLM(h float64, patch, window int) *NLM {
	if h <= 0 || patch < 0 || window < 1 {
		panic(fmt.Sprintf("filters: NLM parameters out of range (h=%v patch=%d window=%d)", h, patch, window))
	}
	return &NLM{H: h, Patch: patch, Window: window}
}

// Name implements Filter: the canonical spec, e.g. "nlm(h=0.1,patch=1,window=3)".
func (f *NLM) Name() string { return specName("nlm", f.Params()) }

// Params implements Configurable.
func (f *NLM) Params() []Param {
	return []Param{
		floatParam("h", "filter strength; patch distances are scored against h²",
			&f.H, floatPositive(), nil),
		intParam("patch", "patch half-width for similarity (0 = single pixel)",
			&f.Patch, intAtLeast(0), nil),
		intParam("window", "search-window half-width", &f.Window, intAtLeast(1), nil),
	}
}

// Set implements Configurable.
func (f *NLM) Set(name, value string) error { return setParam(f.Params(), name, value) }

// msd returns the mean squared difference between the patches centered
// on (py,px) and (qy,qx) of one h×w plane, replicate-clamped.
func (f *NLM) msd(v []float64, h, w, py, px, qy, qx int) float64 {
	sum := 0.0
	for ty := -f.Patch; ty <= f.Patch; ty++ {
		for tx := -f.Patch; tx <= f.Patch; tx++ {
			a := v[clampInt(py+ty, 0, h-1)*w+clampInt(px+tx, 0, w-1)]
			b := v[clampInt(qy+ty, 0, h-1)*w+clampInt(qx+tx, 0, w-1)]
			d := a - b
			sum += d * d
		}
	}
	side := 2*f.Patch + 1
	return sum / float64(side*side)
}

// Apply implements Filter.
func (f *NLM) Apply(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW(f.Name(), img)
	out := tensor.New(c, h, w)
	id, od := img.Data(), out.Data()
	invH2 := 1 / (f.H * f.H)
	for ch := 0; ch < c; ch++ {
		v := id[ch*h*w : (ch+1)*h*w]
		dst := od[ch*h*w : (ch+1)*h*w]
		for py := 0; py < h; py++ {
			for px := 0; px < w; px++ {
				num, den := 0.0, 0.0
				for dy := -f.Window; dy <= f.Window; dy++ {
					qy := clampInt(py+dy, 0, h-1)
					for dx := -f.Window; dx <= f.Window; dx++ {
						qx := clampInt(px+dx, 0, w-1)
						wgt := math.Exp(-f.msd(v, h, w, py, px, qy, qx) * invH2)
						num += wgt * v[qy*w+qx]
						den += wgt
					}
				}
				dst[py*w+px] = num / den
			}
		}
	}
	return out
}

// ApplyBatch implements Filter with one task per image over the
// internal/parallel pool (NLM is the heaviest forward in the library).
func (f *NLM) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor {
	return parallelBatch(f, imgs)
}

// VJP implements Filter exactly. For out_p = N_p/D_p:
//
//	∂out_p/∂v = (Σ_q ∂w_pq/∂v · (v_q − out_p) + Σ_q w_pq · e_q) / D_p
//
// so each output pixel p scatters its upstream gradient u_p through the
// direct averaging term (u_p·w_pq/D_p onto q) and through every weight's
// patch-difference chain (∂w/∂msd = −w/h², ∂msd/∂v over the clamped
// patch index pairs).
func (f *NLM) VJP(x, upstream *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW(f.Name()+" VJP", upstream)
	out := tensor.New(c, h, w)
	id, ud, od := x.Data(), upstream.Data(), out.Data()
	invH2 := 1 / (f.H * f.H)
	side := 2*f.Patch + 1
	patchN := float64(side * side)
	wside := 2*f.Window + 1
	// Per-pixel weight buffer: the forward weights are needed by both
	// the output recomputation and the scatter pass, and each one costs
	// a full patch msd plus an exp — compute them once.
	wbuf := make([]float64, wside*wside)
	for ch := 0; ch < c; ch++ {
		v := id[ch*h*w : (ch+1)*h*w]
		u := ud[ch*h*w : (ch+1)*h*w]
		g := od[ch*h*w : (ch+1)*h*w]
		for py := 0; py < h; py++ {
			for px := 0; px < w; px++ {
				up := u[py*w+px]
				if up == 0 {
					continue
				}
				// Recompute the forward weights and output at p.
				num, den := 0.0, 0.0
				for dy := -f.Window; dy <= f.Window; dy++ {
					qy := clampInt(py+dy, 0, h-1)
					for dx := -f.Window; dx <= f.Window; dx++ {
						qx := clampInt(px+dx, 0, w-1)
						wgt := math.Exp(-f.msd(v, h, w, py, px, qy, qx) * invH2)
						wbuf[(dy+f.Window)*wside+dx+f.Window] = wgt
						num += wgt * v[qy*w+qx]
						den += wgt
					}
				}
				outP := num / den
				scale := up / den
				for dy := -f.Window; dy <= f.Window; dy++ {
					qy := clampInt(py+dy, 0, h-1)
					for dx := -f.Window; dx <= f.Window; dx++ {
						qx := clampInt(px+dx, 0, w-1)
						wgt := wbuf[(dy+f.Window)*wside+dx+f.Window]
						// Direct averaging term.
						g[qy*w+qx] += scale * wgt
						// Weight-derivative term through the patch msd.
						coef := scale * (v[qy*w+qx] - outP) * wgt * (-invH2) * 2 / patchN
						if coef == 0 {
							continue
						}
						for ty := -f.Patch; ty <= f.Patch; ty++ {
							for tx := -f.Patch; tx <= f.Patch; tx++ {
								cp := clampInt(py+ty, 0, h-1)*w + clampInt(px+tx, 0, w-1)
								cq := clampInt(qy+ty, 0, h-1)*w + clampInt(qx+tx, 0, w-1)
								diff := v[cp] - v[cq]
								if diff == 0 {
									continue
								}
								g[cp] += coef * diff
								g[cq] -= coef * diff
							}
						}
					}
				}
			}
		}
	}
	return out
}
