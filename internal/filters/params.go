package filters

import (
	"fmt"
	"strconv"
	"strings"
)

// Param describes one tunable filter knob: its spec key, documentation,
// and closures reading and writing the underlying field. The closures
// make the contract reflection-free — each filter binds descriptors to
// its own struct fields, exactly like the attack API v2 contract.
type Param struct {
	// Name is the spec key, e.g. "r" in "median(r=2)".
	Name string
	// Doc is a one-line description for listings and FILTERS.md.
	Doc string
	// Get renders the current value in the canonical spec syntax.
	Get func() string
	// Set parses a spec value, validates it and assigns it. Out-of-range
	// values are rejected with an error — never clamped, never a panic.
	Set func(string) error
}

// Configurable is the uniform parameterization contract: a filter
// exposes its knobs as Params descriptors and accepts spec-syntax
// assignments through Set. Every registry filter with parameters
// implements it, which is what lets Parse build configured instances
// from "name(k=v,...)" specs and Name() render round-trippable
// canonical specs.
type Configurable interface {
	Filter
	// Params lists the filter's knobs in canonical spec order.
	Params() []Param
	// Set assigns one knob by spec key.
	Set(name, value string) error
}

// setParam is the shared Set implementation: resolve the descriptor by
// key and delegate to its setter.
func setParam(ps []Param, name, value string) error {
	for _, p := range ps {
		if p.Name == name {
			if err := p.Set(value); err != nil {
				return fmt.Errorf("filters: param %s: %w", name, err)
			}
			return nil
		}
	}
	known := make([]string, len(ps))
	for i, p := range ps {
		known[i] = p.Name
	}
	return fmt.Errorf("filters: unknown param %q (have %s)", name, strings.Join(known, ", "))
}

// specName renders the canonical "name(k=v,...)" spec for a filter.
// Values are formatted with full float64 round-trip precision, so
// Parse(specName(...)) reconstructs exactly the same configuration.
// A filter without parameters renders as its bare name.
func specName(name string, ps []Param) string {
	if len(ps) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('(')
	for i, p := range ps {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.Name)
		sb.WriteByte('=')
		sb.WriteString(p.Get())
	}
	sb.WriteByte(')')
	return sb.String()
}

// formatFloat renders v with the shortest representation that parses
// back to the identical float64.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// intParam binds an int field. check validates the parsed value before
// assignment; rebuild (optional) runs after assignment so filters with
// derived state (stencil tap tables) reconstruct it.
func intParam(name, doc string, field *int, check func(int) error, rebuild func()) Param {
	return Param{
		Name: name, Doc: doc,
		Get: func() string { return strconv.Itoa(*field) },
		Set: func(v string) error {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("want an integer, got %q", v)
			}
			if check != nil {
				if err := check(n); err != nil {
					return err
				}
			}
			*field = n
			if rebuild != nil {
				rebuild()
			}
			return nil
		},
	}
}

// uintParam binds a uint64 field (randomized-defense seeds), with the
// same validation/rebuild contract as intParam.
func uintParam(name, doc string, field *uint64, rebuild func()) Param {
	return Param{
		Name: name, Doc: doc,
		Get: func() string { return strconv.FormatUint(*field, 10) },
		Set: func(v string) error {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return fmt.Errorf("want a non-negative integer, got %q", v)
			}
			*field = n
			if rebuild != nil {
				rebuild()
			}
			return nil
		},
	}
}

// floatParam binds a float64 field, with the same validation/rebuild
// contract as intParam.
func floatParam(name, doc string, field *float64, check func(float64) error, rebuild func()) Param {
	return Param{
		Name: name, Doc: doc,
		Get: func() string { return formatFloat(*field) },
		Set: func(v string) error {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("want a number, got %q", v)
			}
			if check != nil {
				if err := check(f); err != nil {
					return err
				}
			}
			*field = f
			if rebuild != nil {
				rebuild()
			}
			return nil
		},
	}
}

// intAtLeast validates n >= min.
func intAtLeast(min int) func(int) error {
	return func(n int) error {
		if n < min {
			return fmt.Errorf("must be at least %d, got %d", min, n)
		}
		return nil
	}
}

// intInRange validates lo <= n <= hi.
func intInRange(lo, hi int) func(int) error {
	return func(n int) error {
		if n < lo || n > hi {
			return fmt.Errorf("must be in [%d, %d], got %d", lo, hi, n)
		}
		return nil
	}
}

// floatPositive validates v > 0.
func floatPositive() func(float64) error {
	return func(v float64) error {
		if !(v > 0) {
			return fmt.Errorf("must be positive, got %v", formatFloat(v))
		}
		return nil
	}
}

// floatInRange validates lo <= v <= hi (NaN always fails).
func floatInRange(lo, hi float64) func(float64) error {
	return func(v float64) error {
		if !(v >= lo && v <= hi) {
			return fmt.Errorf("must be in [%v, %v], got %v", formatFloat(lo), formatFloat(hi), formatFloat(v))
		}
		return nil
	}
}
