package filters

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// JPEG is a JPEG-like DCT-quantization defense (Dziugaite et al.; Nguyen
// et al.'s "detecting and correcting" catalog): each channel is split
// into 8×8 blocks, transformed with the type-II DCT, quantized with the
// standard JPEG luminance table scaled by the quality factor, and
// reconstructed. Quantization rounds away the high-frequency coefficients
// adversarial perturbations concentrate in, at a visual cost controlled
// by Quality.
//
// The transform is piecewise constant in the input (rounding of DCT
// coefficients), hence non-differentiable almost everywhere; its VJP is
// the BPDA straight-through identity, the standard backward model for
// JPEG defenses.
type JPEG struct {
	// Quality is the JPEG quality factor in [1, 100]; lower quantizes
	// harder (higher robustness, lower fidelity).
	Quality int
}

// NewJPEG constructs a JPEG-like quantization defense.
func NewJPEG(quality int) *JPEG {
	if quality < 1 || quality > 100 {
		panic(fmt.Sprintf("filters: JPEG quality %d outside [1, 100]", quality))
	}
	return &JPEG{Quality: quality}
}

// Name implements Filter: the canonical spec, e.g. "jpeg(q=50)".
func (j *JPEG) Name() string { return specName("jpeg", j.Params()) }

// Params implements Configurable.
func (j *JPEG) Params() []Param {
	return []Param{
		intParam("q", "JPEG quality factor in [1, 100]; lower quantizes harder",
			&j.Quality, intInRange(1, 100), nil),
	}
}

// Set implements Configurable.
func (j *JPEG) Set(name, value string) error { return setParam(j.Params(), name, value) }

// jpegLuminanceTable is the standard IJG luminance quantization table.
var jpegLuminanceTable = [64]float64{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// quantTable scales the luminance table by the quality factor, following
// the IJG convention (q<50 scales up, q>50 scales down, entries floored
// into [1, 255]).
func (j *JPEG) quantTable() [64]float64 { return jpegQuantTableFor(j.Quality) }

// jpegQuantTableFor is the quality→table mapping shared by JPEG and the
// per-block randomized RandJPEG.
func jpegQuantTableFor(quality int) [64]float64 {
	scale := 200 - 2*float64(quality)
	if quality < 50 {
		scale = 5000 / float64(quality)
	}
	var q [64]float64
	for i, t := range jpegLuminanceTable {
		v := math.Floor((t*scale + 50) / 100)
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		q[i] = v
	}
	return q
}

// dctCos[x][u] = cos((2x+1)·u·π/16), the 8-point DCT basis.
var dctCos = func() [8][8]float64 {
	var c [8][8]float64
	for x := 0; x < 8; x++ {
		for u := 0; u < 8; u++ {
			c[x][u] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
	return c
}()

// dctC(u) is the DCT-II normalization factor.
func dctC(u int) float64 {
	if u == 0 {
		return math.Sqrt2 / 2
	}
	return 1
}

// Apply implements Filter. Each channel is processed independently with
// the luminance table (per-channel grayscale JPEG — no chroma
// subsampling, a documented simplification). Blocks extending past the
// image edge read replicate-padded pixels and write back only the valid
// region. Output is clamped to [0, 1].
func (j *JPEG) Apply(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW(j.Name(), img)
	out := tensor.New(c, h, w)
	id, od := img.Data(), out.Data()
	qt := j.quantTable()
	var block, coef [64]float64
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for by := 0; by < h; by += 8 {
			for bx := 0; bx < w; bx += 8 {
				jpegCodeBlock(id, od, base, h, w, by, bx, &qt, &block, &coef)
			}
		}
	}
	return out
}

// jpegCodeBlock runs one 8×8 block through the JPEG round trip: gather
// the (replicate-padded) block shifted to the centered [-128, 127]
// range, forward DCT-II, quantize/dequantize against qt, inverse DCT,
// shift back, clamp to [0, 1] and scatter the valid region into od.
// block and coef are caller-owned scratch.
func jpegCodeBlock(id, od []float64, base, h, w, by, bx int, qt, block, coef *[64]float64) {
	for y := 0; y < 8; y++ {
		sy := clampInt(by+y, 0, h-1)
		for x := 0; x < 8; x++ {
			sx := clampInt(bx+x, 0, w-1)
			block[y*8+x] = id[base+sy*w+sx]*255 - 128
		}
	}
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			acc := 0.0
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					acc += block[y*8+x] * dctCos[y][u] * dctCos[x][v]
				}
			}
			f := 0.25 * dctC(u) * dctC(v) * acc
			coef[u*8+v] = math.Floor(f/qt[u*8+v]+0.5) * qt[u*8+v]
		}
	}
	for y := 0; y < 8 && by+y < h; y++ {
		for x := 0; x < 8 && bx+x < w; x++ {
			acc := 0.0
			for u := 0; u < 8; u++ {
				for v := 0; v < 8; v++ {
					acc += dctC(u) * dctC(v) * coef[u*8+v] * dctCos[y][u] * dctCos[x][v]
				}
			}
			p := (0.25*acc + 128) / 255
			if p < 0 {
				p = 0
			}
			if p > 1 {
				p = 1
			}
			od[base+(by+y)*w+bx+x] = p
		}
	}
}

// ApplyBatch implements Filter with one task per image over the
// internal/parallel pool (the blockwise DCT is the heaviest forward in
// the library after NLM).
func (j *JPEG) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor {
	return parallelBatch(j, imgs)
}

// VJP implements Filter using the BPDA straight-through identity: the
// true Jacobian of coefficient rounding is zero almost everywhere, which
// would blind a filter-aware attacker, so the upstream gradient passes
// through unchanged.
func (j *JPEG) VJP(_, upstream *tensor.Tensor) *tensor.Tensor {
	return upstream.Clone()
}
