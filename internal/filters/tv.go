package filters

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// tvEps is the Charbonnier smoothing constant: the TV magnitude is
// √(|∇u|² + ε²), which keeps the energy twice differentiable (so the
// unrolled VJP is exact) while behaving like true TV for gradients ≫ ε.
const tvEps = 0.1

// TVDenoise is total-variation denoising (Rudin–Osher–Fatemi), the
// classic edge-preserving denoiser Nguyen et al. catalog as an
// adversarial input-correction operation: it minimizes
//
//	E(u) = ½‖u − x‖² + λ·Σ √(|∇u|² + ε²)
//
// by Iters explicit gradient steps from u = x, with the step size chosen
// from the energy's curvature bound (τ = 1/(1 + 8λ/ε)) so the unrolled
// descent is stable for every parameter choice.
//
// Unlike the median/JPEG/bit-depth defenses, the Charbonnier-smoothed
// energy is twice differentiable, so the VJP is EXACT: reverse-mode
// differentiation through the unrolled iterations (one Hessian-vector
// product of the TV term per step), pinned by finite-difference tests.
type TVDenoise struct {
	// Lambda is the smoothing weight: larger flattens harder.
	Lambda float64
	// Iters is the number of unrolled gradient steps.
	Iters int
}

// NewTVDenoise constructs a TV denoiser.
func NewTVDenoise(lambda float64, iters int) *TVDenoise {
	if lambda <= 0 || iters < 1 {
		panic(fmt.Sprintf("filters: TV parameters out of range (lambda=%v iters=%d)", lambda, iters))
	}
	return &TVDenoise{Lambda: lambda, Iters: iters}
}

// Name implements Filter: the canonical spec, e.g. "tv(lambda=0.15,iters=15)".
func (t *TVDenoise) Name() string { return specName("tv", t.Params()) }

// Params implements Configurable.
func (t *TVDenoise) Params() []Param {
	return []Param{
		floatParam("lambda", "TV smoothing weight; larger flattens harder",
			&t.Lambda, floatPositive(), nil),
		intParam("iters", "unrolled gradient-descent steps", &t.Iters, intAtLeast(1), nil),
	}
}

// Set implements Configurable.
func (t *TVDenoise) Set(name, value string) error { return setParam(t.Params(), name, value) }

// step returns the stable gradient step size for the current Lambda:
// the energy Hessian is bounded by 1 + λ‖LᵀL‖/ε with ‖LᵀL‖ ≤ 8 for the
// 2-D forward-difference operator.
func (t *TVDenoise) step() float64 { return 1 / (1 + 8*t.Lambda/tvEps) }

// tvGrad accumulates λ·∇TV(u) plus the data term (u − x) into g, all
// length-n planes (one image channel, h×w).
func tvGrad(u, x, g []float64, h, w int, lambda float64) {
	for i := range g {
		g[i] = u[i] - x[i]
	}
	for y := 0; y < h; y++ {
		for xx := 0; xx < w; xx++ {
			p := y*w + xx
			dx, dy := 0.0, 0.0
			if xx < w-1 {
				dx = u[p+1] - u[p]
			}
			if y < h-1 {
				dy = u[p+w] - u[p]
			}
			n := math.Sqrt(dx*dx + dy*dy + tvEps*tvEps)
			g[p] -= lambda * (dx + dy) / n
			if xx < w-1 {
				g[p+1] += lambda * dx / n
			}
			if y < h-1 {
				g[p+w] += lambda * dy / n
			}
		}
	}
}

// tvHessVec accumulates λ·H_TV(u)·v into out (out must be zeroed by the
// caller), where H_TV is the Hessian of the Charbonnier TV term at u.
func tvHessVec(u, v, out []float64, h, w int, lambda float64) {
	for y := 0; y < h; y++ {
		for xx := 0; xx < w; xx++ {
			p := y*w + xx
			dx, dy, vx, vy := 0.0, 0.0, 0.0, 0.0
			if xx < w-1 {
				dx = u[p+1] - u[p]
				vx = v[p+1] - v[p]
			}
			if y < h-1 {
				dy = u[p+w] - u[p]
				vy = v[p+w] - v[p]
			}
			n := math.Sqrt(dx*dx + dy*dy + tvEps*tvEps)
			n3 := n * n * n
			hx := lambda * ((dy*dy+tvEps*tvEps)*vx - dx*dy*vy) / n3
			hy := lambda * ((dx*dx+tvEps*tvEps)*vy - dx*dy*vx) / n3
			out[p] -= hx + hy
			if xx < w-1 {
				out[p+1] += hx
			}
			if y < h-1 {
				out[p+w] += hy
			}
		}
	}
}

// Apply implements Filter: Iters explicit gradient steps on the ROF
// energy, per channel, starting from the input.
func (t *TVDenoise) Apply(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW(t.Name(), img)
	out := img.Clone()
	od := out.Data()
	plane := h * w
	tau := t.step()
	g := make([]float64, plane)
	for ch := 0; ch < c; ch++ {
		x := img.Data()[ch*plane : (ch+1)*plane]
		u := od[ch*plane : (ch+1)*plane]
		for k := 0; k < t.Iters; k++ {
			tvGrad(u, x, g, h, w, t.Lambda)
			for i := range u {
				u[i] -= tau * g[i]
			}
		}
	}
	return out
}

// ApplyBatch implements Filter with one task per image over the
// internal/parallel pool.
func (t *TVDenoise) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor {
	return parallelBatch(t, imgs)
}

// VJP implements Filter EXACTLY: reverse-mode differentiation through the
// unrolled gradient descent. The forward iterates are replayed from x,
// then each step's adjoint applies (I − τ(I + λ·H_TV(u_k))) to the
// running gradient — the TV Hessian-vector product mirrors tvGrad — and
// the data term's explicit x-dependence accumulates τ·r per step.
func (t *TVDenoise) VJP(x, upstream *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW(t.Name()+" VJP", upstream)
	plane := h * w
	tau := t.step()
	out := tensor.New(c, h, w)
	g := make([]float64, plane)
	hv := make([]float64, plane)
	r := make([]float64, plane)
	// Forward replay storage: the input of every step.
	iters := make([][]float64, t.Iters)
	for k := range iters {
		iters[k] = make([]float64, plane)
	}
	u := make([]float64, plane)
	for ch := 0; ch < c; ch++ {
		xd := x.Data()[ch*plane : (ch+1)*plane]
		copy(u, xd)
		for k := 0; k < t.Iters; k++ {
			copy(iters[k], u)
			tvGrad(u, xd, g, h, w, t.Lambda)
			for i := range u {
				u[i] -= tau * g[i]
			}
		}
		// Reverse pass.
		copy(r, upstream.Data()[ch*plane:(ch+1)*plane])
		gx := out.Data()[ch*plane : (ch+1)*plane]
		for k := t.Iters - 1; k >= 0; k-- {
			// Explicit x-dependence of step k: +τ·x in the data term.
			for i := range gx {
				gx[i] += tau * r[i]
			}
			// r ← (I − τ·I − τ·λ·H_TV(u_k))·r.
			for i := range hv {
				hv[i] = 0
			}
			tvHessVec(iters[k], r, hv, h, w, t.Lambda)
			for i := range r {
				r[i] -= tau * (r[i] + hv[i])
			}
		}
		// u_0 = x.
		for i := range gx {
			gx[i] += r[i]
		}
	}
	return out
}
