package filters

import (
	"sync"
	"testing"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// innerStencil unwraps the stencil backing a configurable filter type.
func innerStencil(t *testing.T, f Filter) *stencil {
	t.Helper()
	switch v := f.(type) {
	case *LAP:
		return v.st
	case *LAR:
		return v.st
	case *Gaussian:
		return v.st
	case *Box:
		return v.st
	}
	t.Fatalf("%s is not stencil-backed", f.Name())
	return nil
}

// naiveStencilApply is the pre-cache reference implementation: clamp
// every tap per pixel. The cached tap-table fast path must match it
// exactly on every image size.
func naiveStencilApply(s *stencil, img *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW(s.name, img)
	out := tensor.New(c, h, w)
	id, od := img.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				acc := 0.0
				for k, o := range s.offsets {
					sy := clampInt(y+o.dy, 0, h-1)
					sx := clampInt(x+o.dx, 0, w-1)
					acc += s.weights[k] * id[base+sy*w+sx]
				}
				od[base+y*w+x] = acc
			}
		}
	}
	return out
}

func TestTapTableMatchesNaiveAcrossSizes(t *testing.T) {
	rng := mathx.NewRNG(11)
	for _, f := range []Filter{NewLAP(4), NewLAP(64), NewLAR(1), NewLAR(5), NewGaussian(1.2)} {
		s := innerStencil(t, f)
		// Mixed sizes through one filter instance exercise the per-size
		// cache, including images smaller than the stencil radius.
		for _, hw := range [][2]int{{8, 8}, {32, 32}, {16, 24}, {3, 3}} {
			img := tensor.RandU(rng, 0, 1, 3, hw[0], hw[1])
			want := naiveStencilApply(s, img)
			got := s.Apply(img)
			wd, gd := want.Data(), got.Data()
			for i := range wd {
				if wd[i] != gd[i] {
					t.Fatalf("%s on %dx%d: Apply[%d] = %v, naive %v",
						f.Name(), hw[0], hw[1], i, gd[i], wd[i])
				}
			}
		}
	}
}

// TestStencilConcurrentApply is the -race witness for sharing one filter
// across sweep workers: concurrent Apply/VJP on a shared instance must
// be safe and bit-identical to a lone call.
func TestStencilConcurrentApply(t *testing.T) {
	rng := mathx.NewRNG(13)
	f := NewLAP(32)
	img := tensor.RandU(rng, 0, 1, 3, 32, 32)
	up := tensor.RandN(rng, 3, 32, 32)
	wantApply := f.Apply(img)
	wantVJP := f.VJP(img, up)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				got := f.Apply(img)
				if !tensor.EqualWithin(got, wantApply, 0) {
					t.Error("concurrent Apply diverged")
					return
				}
				gv := f.VJP(img, up)
				if !tensor.EqualWithin(gv, wantVJP, 0) {
					t.Error("concurrent VJP diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}
