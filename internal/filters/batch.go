package filters

import (
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// SerialBatch applies f to every image one at a time — the default
// ApplyBatch fallback for filters whose per-image cost is too small to
// justify fan-out. out[i] is Apply(imgs[i]) by construction.
func SerialBatch(f Filter, imgs []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(imgs))
	for i, img := range imgs {
		out[i] = f.Apply(img)
	}
	return out
}

// parallelBatch fans Apply out over the process-wide internal/parallel
// pool, one task per image. Every Apply in this package is a pure
// function of its input and results land in index-addressed slots, so
// the output is bit-identical to SerialBatch regardless of worker count.
//
// When the caller is itself a pool worker (an evaluation mini-batch
// inside train.EvaluateOnBatch, a grid cell of a figure sweep), the
// CPU is already saturated — a nested fan-out would spawn up to
// workers² runnable goroutines for no throughput. parallel.Active
// detects that and degrades to the inline serial loop, which produces
// the same bits.
func parallelBatch(f Filter, imgs []*tensor.Tensor) []*tensor.Tensor {
	if len(imgs) < 2 || parallel.Active() > 0 {
		return SerialBatch(f, imgs)
	}
	out := make([]*tensor.Tensor, len(imgs))
	parallel.For(0, len(imgs), func(i int) { out[i] = f.Apply(imgs[i]) })
	return out
}
