package filters

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// RandResize is the random resize-and-pad defense (Xie et al., ICLR
// 2018): the image is bilinearly shrunk by a scale factor drawn
// uniformly from [Lo, Hi] and pasted at a random offset into a
// zero-padded canvas of the original size, so the spatial alignment an
// attacker optimized against never survives deployment exactly. The
// (scale, offset) draw is a pure function of (Seed, image) per the
// Stochastic contract — draw order: scale, then row offset, then column
// offset.
//
// Its VJP is exact: for a fixed draw, resize-and-pad is a linear map,
// and the backward pass recomputes the forward draw from the input and
// applies the transpose (crop the upstream gradient at the offset, then
// scatter it back through the bilinear interpolation weights).
type RandResize struct {
	// Lo and Hi bound the scale draw as fractions of the input size,
	// 0 < Lo ≤ Hi ≤ 1.
	Lo, Hi float64
	// SeedVal is the base of the per-image draw stream.
	SeedVal uint64
}

// NewRandResize constructs a random resize-and-pad defense.
func NewRandResize(lo, hi float64, seed uint64) *RandResize {
	f := &RandResize{Lo: lo, Hi: hi, SeedVal: seed}
	if err := f.Validate(); err != nil {
		panic("filters: " + err.Error())
	}
	return f
}

// Name implements Filter: the canonical spec, e.g.
// "randresize(lo=0.8,hi=1,seed=1)".
func (r *RandResize) Name() string { return specName("randresize", r.Params()) }

// Params implements Configurable.
func (r *RandResize) Params() []Param {
	return []Param{
		floatParam("lo", "lower bound of the scale draw, a fraction of input size in (0, 1]",
			&r.Lo, floatInRange(1e-3, 1), nil),
		floatParam("hi", "upper bound of the scale draw, a fraction of input size in (0, 1]",
			&r.Hi, floatInRange(1e-3, 1), nil),
		uintParam("seed", "base seed of the per-image draw stream", &r.SeedVal, nil),
	}
}

// Set implements Configurable.
func (r *RandResize) Set(name, value string) error { return setParam(r.Params(), name, value) }

// Validate implements Validator: the scale bounds must be ordered.
func (r *RandResize) Validate() error {
	if !(r.Lo > 0 && r.Lo <= r.Hi && r.Hi <= 1) {
		return fmt.Errorf("randresize: want 0 < lo <= hi <= 1, got lo=%v hi=%v", r.Lo, r.Hi)
	}
	return nil
}

// Seed implements Stochastic.
func (r *RandResize) Seed() uint64 { return r.SeedVal }

// WithSeed implements Stochastic.
func (r *RandResize) WithSeed(seed uint64) Filter {
	c := *r
	c.SeedVal = seed
	return &c
}

// resizeDraw is one realized (scale, offset) sample.
type resizeDraw struct {
	sh, sw int // shrunk size
	dy, dx int // paste offset in the padded canvas
}

// draw realizes the deterministic sample for img.
func (r *RandResize) draw(img *tensor.Tensor, h, w int) resizeDraw {
	rng := mathx.NewRNG(ImageSeed(r.SeedVal, img))
	frac := rng.Range(r.Lo, r.Hi)
	sh := int(frac*float64(h) + 0.5)
	if sh < 1 {
		sh = 1
	}
	if sh > h {
		sh = h
	}
	sw := int(frac*float64(w) + 0.5)
	if sw < 1 {
		sw = 1
	}
	if sw > w {
		sw = w
	}
	return resizeDraw{sh: sh, sw: sw, dy: rng.IntN(h - sh + 1), dx: rng.IntN(w - sw + 1)}
}

// Apply implements Filter.
func (r *RandResize) Apply(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW(r.Name(), img)
	d := r.draw(img, h, w)
	out := tensor.New(c, h, w)
	if d.sh == h && d.sw == w {
		// Scale 1 draw: the map degenerates to identity.
		copy(out.Data(), img.Data())
		return out
	}
	rows := lerpTaps(h, d.sh)
	cols := lerpTaps(w, d.sw)
	id, od := img.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < d.sh; y++ {
			ry := rows[y]
			orow := base + (d.dy+y)*w + d.dx
			for x := 0; x < d.sw; x++ {
				cx := cols[x]
				od[orow+x] = ry.w0*(cx.w0*id[base+ry.i0*w+cx.i0]+cx.w1*id[base+ry.i0*w+cx.i1]) +
					ry.w1*(cx.w0*id[base+ry.i1*w+cx.i0]+cx.w1*id[base+ry.i1*w+cx.i1])
			}
		}
	}
	return out
}

// ApplyBatch implements Filter with one task per image over the
// internal/parallel pool; each image's draw is independent.
func (r *RandResize) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor {
	return parallelBatch(r, imgs)
}

// VJP implements Filter: the exact adjoint of the linear map the
// forward draw realized — crop upstream at the paste offset and
// scatter-add through the same bilinear weights (resizeAdjoint).
func (r *RandResize) VJP(x, upstream *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW(r.Name(), x)
	d := r.draw(x, h, w)
	if d.sh == h && d.sw == w {
		return upstream.Clone()
	}
	return resizeAdjoint(upstream, c, h, w, d)
}

// resizeAdjoint computes the transpose of the resize-and-pad map for a
// fixed draw: grad[src] += weight · upstream[dst] over exactly the
// (dst, src, weight) triples the forward pass read.
func resizeAdjoint(upstream *tensor.Tensor, c, h, w int, d resizeDraw) *tensor.Tensor {
	rows := lerpTaps(h, d.sh)
	cols := lerpTaps(w, d.sw)
	out := tensor.New(c, h, w)
	ud, od := upstream.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < d.sh; y++ {
			ry := rows[y]
			urow := base + (d.dy+y)*w + d.dx
			for x := 0; x < d.sw; x++ {
				cx := cols[x]
				g := ud[urow+x]
				od[base+ry.i0*w+cx.i0] += ry.w0 * cx.w0 * g
				od[base+ry.i0*w+cx.i1] += ry.w0 * cx.w1 * g
				od[base+ry.i1*w+cx.i0] += ry.w1 * cx.w0 * g
				od[base+ry.i1*w+cx.i1] += ry.w1 * cx.w1 * g
			}
		}
	}
	return out
}

// lerpTap is one output sample's bilinear source pair along one axis.
type lerpTap struct {
	i0, i1 int
	w0, w1 float64
}

// lerpTaps builds the center-aligned bilinear taps mapping n source
// samples onto m output samples (m ≤ n), with edge coordinates clamped.
func lerpTaps(n, m int) []lerpTap {
	taps := make([]lerpTap, m)
	scale := float64(n) / float64(m)
	for j := 0; j < m; j++ {
		f := (float64(j)+0.5)*scale - 0.5
		i0f := math.Floor(f)
		t := f - i0f
		i0 := clampInt(int(i0f), 0, n-1)
		i1 := clampInt(int(i0f)+1, 0, n-1)
		taps[j] = lerpTap{i0: i0, i1: i1, w0: 1 - t, w1: t}
	}
	return taps
}
