package filters

import (
	"fmt"

	"repro/internal/tensor"
)

// PaperLAPSizes are the neighbour counts evaluated in the paper's Fig. 7/9
// sweeps (np = 4, 8, 16, 32, 64).
var PaperLAPSizes = []int{4, 8, 16, 32, 64}

// LAP is the paper's "local average with neighbourhood pixels" filter:
// each output pixel is the mean of the center pixel and its np nearest
// neighbours (Euclidean distance, deterministic tie-breaking), with
// replicate border handling.
//
// np=4 is the von Neumann cross, np=8 the full 3×3 Moore neighbourhood;
// larger np grow the neighbourhood outward by distance, matching the
// paper's np ∈ {4, 8, 16, 32, 64} sweep. It is a linear stencil, so its
// VJP is the exact adjoint.
type LAP struct {
	np int
	st *stencil
}

// NewLAP builds a LAP filter over the np nearest neighbour pixels.
func NewLAP(np int) Filter {
	if np <= 0 {
		panic(fmt.Sprintf("filters: LAP neighbourhood %d must be positive", np))
	}
	f := &LAP{np: np}
	f.rebuild()
	return f
}

// rebuild reconstructs the stencil after a parameter change.
func (f *LAP) rebuild() {
	// Search radius large enough to contain np neighbours: the disk of
	// radius R holds ~πR² pixels, so growing from 2 terminates quickly.
	radius := 2
	for len(sortedNeighborhood(radius)) < f.np {
		radius++
	}
	neigh := sortedNeighborhood(radius)[:f.np]
	offs := append([]offset{{0, 0}}, neigh...)
	f.st = newStencil(f.Name(), offs, uniformWeights(len(offs)))
}

// Name implements Filter: the canonical spec, e.g. "lap(np=32)".
func (f *LAP) Name() string { return specName("lap", f.Params()) }

// Taps returns the stencil tap count (np + 1 for the center).
func (f *LAP) Taps() int { return f.st.Taps() }

// Apply implements Filter.
func (f *LAP) Apply(img *tensor.Tensor) *tensor.Tensor { return f.st.Apply(img) }

// ApplyBatch implements Filter over the parallel pool.
func (f *LAP) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor { return f.st.ApplyBatch(imgs) }

// VJP implements Filter (exact adjoint).
func (f *LAP) VJP(x, upstream *tensor.Tensor) *tensor.Tensor { return f.st.VJP(x, upstream) }

// Params implements Configurable.
func (f *LAP) Params() []Param {
	return []Param{
		intParam("np", "neighbours averaged with the center (paper sweep: 4, 8, 16, 32, 64)",
			&f.np, intAtLeast(1), f.rebuild),
	}
}

// Set implements Configurable.
func (f *LAP) Set(name, value string) error { return setParam(f.Params(), name, value) }

// NewPaperLAPs returns the five LAP configurations of the paper's sweep.
func NewPaperLAPs() []Filter {
	out := make([]Filter, len(PaperLAPSizes))
	for i, np := range PaperLAPSizes {
		out[i] = NewLAP(np)
	}
	return out
}
