package filters

import "fmt"

// PaperLAPSizes are the neighbour counts evaluated in the paper's Fig. 7/9
// sweeps (np = 4, 8, 16, 32, 64).
var PaperLAPSizes = []int{4, 8, 16, 32, 64}

// NewLAP builds the paper's "local average with neighbourhood pixels"
// filter: each output pixel is the mean of the center pixel and its np
// nearest neighbours (Euclidean distance, deterministic tie-breaking),
// with replicate border handling.
//
// np=4 is the von Neumann cross, np=8 the full 3×3 Moore neighbourhood;
// larger np grow the neighbourhood outward by distance, matching the
// paper's np ∈ {4, 8, 16, 32, 64} sweep.
func NewLAP(np int) Filter {
	if np <= 0 {
		panic(fmt.Sprintf("filters: LAP neighbourhood %d must be positive", np))
	}
	// Search radius large enough to contain np neighbours: the disk of
	// radius R holds ~πR² pixels, so R = ceil(sqrt(np)) + 2 is generous.
	radius := 2
	for {
		if len(sortedNeighborhood(radius)) >= np {
			break
		}
		radius++
	}
	neigh := sortedNeighborhood(radius)[:np]
	offs := append([]offset{{0, 0}}, neigh...)
	return newStencil(fmt.Sprintf("LAP(%d)", np), offs, uniformWeights(len(offs)))
}

// NewPaperLAPs returns the five LAP configurations of the paper's sweep.
func NewPaperLAPs() []Filter {
	out := make([]Filter, len(PaperLAPSizes))
	for i, np := range PaperLAPSizes {
		out[i] = NewLAP(np)
	}
	return out
}
