package filters

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// The paper's Section I-C lists the pre-processing elements adversarial
// pipelines commonly integrate besides noise filtering: "shuffling, gray
// scaling, local histogram utilization and normalization". This file
// implements them as Filter stages so FilteredClassifier can model full
// pre-processing stacks, not just the LAP/LAR smoothing of the
// experiments.

// Grayscale collapses RGB to ITU-R BT.601 luminance, replicated across the
// three channels so tensor shapes (and downstream networks) are unchanged.
// It is linear, so its VJP is the exact adjoint.
type Grayscale struct{}

// Name implements Filter: the canonical spec "grayscale" (no knobs).
func (Grayscale) Name() string { return "grayscale" }

// ApplyBatch implements Filter via the serial fallback (one pass over the
// pixels; fan-out overhead would dominate).
func (g Grayscale) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor { return SerialBatch(g, imgs) }

var lumaWeights = [3]float64{0.299, 0.587, 0.114}

// Apply implements Filter.
func (Grayscale) Apply(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW("Grayscale", img)
	if c != 3 {
		panic(fmt.Sprintf("filters: Grayscale wants 3 channels, got %d", c))
	}
	out := tensor.New(c, h, w)
	id, od := img.Data(), out.Data()
	plane := h * w
	for i := 0; i < plane; i++ {
		lum := lumaWeights[0]*id[i] + lumaWeights[1]*id[plane+i] + lumaWeights[2]*id[2*plane+i]
		od[i] = lum
		od[plane+i] = lum
		od[2*plane+i] = lum
	}
	return out
}

// VJP implements Filter: the adjoint of "weighted sum broadcast to three
// channels" is "sum the three upstream channels, distribute by weight".
func (Grayscale) VJP(_, upstream *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW("Grayscale VJP", upstream)
	if c != 3 {
		panic(fmt.Sprintf("filters: Grayscale VJP wants 3 channels, got %d", c))
	}
	out := tensor.New(c, h, w)
	ud, od := upstream.Data(), out.Data()
	plane := h * w
	for i := 0; i < plane; i++ {
		usum := ud[i] + ud[plane+i] + ud[2*plane+i]
		od[i] = lumaWeights[0] * usum
		od[plane+i] = lumaWeights[1] * usum
		od[2*plane+i] = lumaWeights[2] * usum
	}
	return out
}

// Normalize standardizes the image to a target mean and standard
// deviation (per image, over all channels) — the "normalization"
// pre-processing stage. It is differentiable; the VJP uses the standard
// lazy-Jacobian convention of treating the per-image statistics as
// constants (exact for the dominant scale term, omitting the O(1/N)
// statistic-derivative terms), which is how attack frameworks
// differentiate through input standardization.
type Normalize struct {
	// TargetMean and TargetStd define the output statistics.
	TargetMean, TargetStd float64
	// Eps guards against division by zero on constant images.
	Eps float64
}

// NewNormalize constructs a standardization stage.
func NewNormalize(mean, std float64) *Normalize {
	if std <= 0 {
		panic(fmt.Sprintf("filters: Normalize std %v must be positive", std))
	}
	return &Normalize{TargetMean: mean, TargetStd: std, Eps: 1e-8}
}

// Name implements Filter: the canonical spec, e.g. "normalize(mean=0.5,std=0.25)".
func (n *Normalize) Name() string { return specName("normalize", n.Params()) }

// Params implements Configurable.
func (n *Normalize) Params() []Param {
	return []Param{
		floatParam("mean", "target per-image mean", &n.TargetMean, nil, nil),
		floatParam("std", "target per-image standard deviation", &n.TargetStd, floatPositive(), nil),
	}
}

// Set implements Configurable.
func (n *Normalize) Set(name, value string) error { return setParam(n.Params(), name, value) }

// ApplyBatch implements Filter via the serial fallback.
func (n *Normalize) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor { return SerialBatch(n, imgs) }

func (n *Normalize) stats(img *tensor.Tensor) (mean, std float64) {
	mean = img.Mean()
	varv := 0.0
	for _, v := range img.Data() {
		d := v - mean
		varv += d * d
	}
	varv /= float64(img.Len())
	return mean, math.Sqrt(varv + n.Eps)
}

// Apply implements Filter.
func (n *Normalize) Apply(img *tensor.Tensor) *tensor.Tensor {
	checkCHW(n.Name(), img)
	mean, std := n.stats(img)
	out := tensor.New(img.Shape()...)
	scale := n.TargetStd / std
	id, od := img.Data(), out.Data()
	for i := range id {
		od[i] = (id[i]-mean)*scale + n.TargetMean
	}
	return out
}

// VJP implements Filter with frozen statistics: dx = upstream · targetStd/std.
func (n *Normalize) VJP(x, upstream *tensor.Tensor) *tensor.Tensor {
	checkCHW(n.Name()+" VJP", upstream)
	_, std := n.stats(x)
	out := upstream.Clone()
	out.ScaleInPlace(n.TargetStd / std)
	return out
}

// HistEq performs per-channel global histogram equalization (the
// "histogram utilization" stage): pixel values are remapped through their
// empirical CDF. The mapping is piecewise constant, hence
// non-differentiable; like the median filter its VJP is the BPDA identity.
type HistEq struct {
	// Bins is the histogram resolution (256 matches 8-bit pipelines).
	Bins int
}

// NewHistEq constructs a histogram-equalization stage with the given
// number of bins.
func NewHistEq(bins int) *HistEq {
	if bins < 2 {
		panic(fmt.Sprintf("filters: HistEq bins %d must be at least 2", bins))
	}
	return &HistEq{Bins: bins}
}

// Name implements Filter: the canonical spec, e.g. "histeq(bins=256)".
func (h *HistEq) Name() string { return specName("histeq", h.Params()) }

// Params implements Configurable.
func (h *HistEq) Params() []Param {
	return []Param{
		intParam("bins", "histogram resolution over [0, 1] (256 matches 8-bit pipelines)",
			&h.Bins, intAtLeast(2), nil),
	}
}

// Set implements Configurable.
func (h *HistEq) Set(name, value string) error { return setParam(h.Params(), name, value) }

// ApplyBatch implements Filter via the serial fallback.
func (h *HistEq) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor { return SerialBatch(h, imgs) }

// Apply implements Filter: per channel, build a Bins-bucket histogram over
// [0, 1], form its CDF, and remap each pixel to the CDF value of its bin.
func (h *HistEq) Apply(img *tensor.Tensor) *tensor.Tensor {
	c, hh, w := checkCHW(h.Name(), img)
	out := tensor.New(c, hh, w)
	id, od := img.Data(), out.Data()
	plane := hh * w
	hist := make([]float64, h.Bins)
	for ch := 0; ch < c; ch++ {
		seg := id[ch*plane : (ch+1)*plane]
		dst := od[ch*plane : (ch+1)*plane]
		for i := range hist {
			hist[i] = 0
		}
		binOf := func(v float64) int {
			b := int(v * float64(h.Bins))
			if b >= h.Bins {
				b = h.Bins - 1
			}
			if b < 0 {
				b = 0
			}
			return b
		}
		for _, v := range seg {
			hist[binOf(v)]++
		}
		// CDF normalized so the lowest occupied bin maps to 0 and the
		// highest to 1 (the classic equalization profile).
		cdf := make([]float64, h.Bins)
		acc := 0.0
		for i, cnt := range hist {
			acc += cnt
			cdf[i] = acc
		}
		var cdfMin float64
		for _, v := range cdf {
			if v > 0 {
				cdfMin = v
				break
			}
		}
		total := cdf[h.Bins-1]
		denom := total - cdfMin
		for i, v := range seg {
			if denom <= 0 {
				dst[i] = v // constant channel: leave unchanged
				continue
			}
			dst[i] = (cdf[binOf(v)] - cdfMin) / denom
		}
	}
	return out
}

// VJP implements Filter using the BPDA identity (the true Jacobian is zero
// almost everywhere).
func (h *HistEq) VJP(_, upstream *tensor.Tensor) *tensor.Tensor {
	return upstream.Clone()
}
