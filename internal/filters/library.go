package filters

import (
	"fmt"
	"sort"
)

// The filter library: a registry mapping canonical filter names to
// default-configured constructors, so tools, experiments and the serving
// layer can select defenses by name — the defense-side counterpart of the
// attack registry.

// Constructor builds a fresh filter instance with default parameters.
type Constructor func() Filter

var library = map[string]Constructor{
	// The paper's filters.
	"lap": func() Filter { return NewLAP(32) },
	"lar": func() Filter { return NewLAR(3) },
	// Classical smoothing extensions.
	"median":    func() Filter { return NewMedian(1) },
	"gaussian":  func() Filter { return NewGaussian(1) },
	"box":       func() Filter { return NewBox(2) },
	"bilateral": func() Filter { return NewBilateral(2, 2, 0.1) },
	// Section I-C pre-processing stages.
	"grayscale": func() Filter { return Grayscale{} },
	"normalize": func() Filter { return NewNormalize(0.5, 0.25) },
	"histeq":    func() Filter { return NewHistEq(256) },
	// Classic adversarial-defense transforms (Defense API v2).
	"jpeg":     func() Filter { return NewJPEG(50) },
	"bitdepth": func() Filter { return NewBitDepth(5) },
	"tv":       func() Filter { return NewTVDenoise(0.15, 15) },
	"nlm":      func() Filter { return NewNLM(0.1, 1, 3) },
	// Randomized defenses (Defense API v3) — every draw is a pure
	// function of (seed, image); see stochastic.go.
	"randjpeg":   func() Filter { return NewRandJPEG(20, 80, 1) },
	"randresize": func() Filter { return NewRandResize(0.8, 1, 1) },
	"randflip":   func() Filter { return NewRandFlip(0.5, 1) },
	"randnoise":  func() Filter { return NewRandNoise(0.05, 1) },
}

// New builds a default-configured filter by library name.
func New(name string) (Filter, error) {
	ctor, ok := library[name]
	if !ok {
		return nil, fmt.Errorf("filters: unknown filter %q (have %v)", name, Names())
	}
	return ctor(), nil
}

// Names returns the registered filter names in sorted order. "none" and
// "chain(...)" are grammar, not registry entries.
func Names() []string {
	out := make([]string, 0, len(library))
	for name := range library {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
