package filters

import "fmt"

// PaperLARRadii are the radii evaluated in the paper's Fig. 7/9 sweeps
// (r = 1..5).
var PaperLARRadii = []int{1, 2, 3, 4, 5}

// NewLAR builds the paper's "local average with radius" filter: each
// output pixel is the mean over the Euclidean disk of radius r centered on
// it (center included), with replicate border handling.
//
// Disk sizes: r=1 → 5 taps, r=2 → 13, r=3 → 29, r=4 → 49, r=5 → 81.
func NewLAR(r int) Filter {
	if r <= 0 {
		panic(fmt.Sprintf("filters: LAR radius %d must be positive", r))
	}
	offs := diskOffsets(r)
	return newStencil(fmt.Sprintf("LAR(%d)", r), offs, uniformWeights(len(offs)))
}

// NewPaperLARs returns the five LAR configurations of the paper's sweep.
func NewPaperLARs() []Filter {
	out := make([]Filter, len(PaperLARRadii))
	for i, r := range PaperLARRadii {
		out[i] = NewLAR(r)
	}
	return out
}
