package filters

import (
	"fmt"

	"repro/internal/tensor"
)

// PaperLARRadii are the radii evaluated in the paper's Fig. 7/9 sweeps
// (r = 1..5).
var PaperLARRadii = []int{1, 2, 3, 4, 5}

// LAR is the paper's "local average with radius" filter: each output
// pixel is the mean over the Euclidean disk of radius r centered on it
// (center included), with replicate border handling. Linear stencil,
// exact-adjoint VJP.
//
// Disk sizes: r=1 → 5 taps, r=2 → 13, r=3 → 29, r=4 → 49, r=5 → 81.
type LAR struct {
	r  int
	st *stencil
}

// NewLAR builds a LAR filter over the disk of radius r.
func NewLAR(r int) Filter {
	if r <= 0 {
		panic(fmt.Sprintf("filters: LAR radius %d must be positive", r))
	}
	f := &LAR{r: r}
	f.rebuild()
	return f
}

// rebuild reconstructs the stencil after a parameter change.
func (f *LAR) rebuild() {
	offs := diskOffsets(f.r)
	f.st = newStencil(f.Name(), offs, uniformWeights(len(offs)))
}

// Name implements Filter: the canonical spec, e.g. "lar(r=3)".
func (f *LAR) Name() string { return specName("lar", f.Params()) }

// Taps returns the stencil tap count (the disk size).
func (f *LAR) Taps() int { return f.st.Taps() }

// Apply implements Filter.
func (f *LAR) Apply(img *tensor.Tensor) *tensor.Tensor { return f.st.Apply(img) }

// ApplyBatch implements Filter over the parallel pool.
func (f *LAR) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor { return f.st.ApplyBatch(imgs) }

// VJP implements Filter (exact adjoint).
func (f *LAR) VJP(x, upstream *tensor.Tensor) *tensor.Tensor { return f.st.VJP(x, upstream) }

// Params implements Configurable.
func (f *LAR) Params() []Param {
	return []Param{
		intParam("r", "Euclidean disk radius in pixels (paper sweep: 1..5)",
			&f.r, intAtLeast(1), f.rebuild),
	}
}

// Set implements Configurable.
func (f *LAR) Set(name, value string) error { return setParam(f.Params(), name, value) }

// NewPaperLARs returns the five LAR configurations of the paper's sweep.
func NewPaperLARs() []Filter {
	out := make([]Filter, len(PaperLARRadii))
	for i, r := range PaperLARRadii {
		out[i] = NewLAR(r)
	}
	return out
}
