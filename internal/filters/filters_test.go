package filters

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

func TestLAPTapCounts(t *testing.T) {
	for _, np := range PaperLAPSizes {
		f := NewLAP(np).(*LAP)
		if got := f.Taps(); got != np+1 {
			t.Errorf("LAP(%d) has %d taps, want %d (center + np)", np, got, np+1)
		}
	}
}

func TestLAP4IsVonNeumannCross(t *testing.T) {
	f := NewLAP(4).(*LAP).st
	want := map[offset]bool{{0, 0}: true, {-1, 0}: true, {1, 0}: true, {0, -1}: true, {0, 1}: true}
	for _, o := range f.offsets {
		if !want[o] {
			t.Fatalf("LAP(4) contains unexpected offset %v", o)
		}
		delete(want, o)
	}
	if len(want) != 0 {
		t.Fatalf("LAP(4) missing offsets %v", want)
	}
}

func TestLAP8IsMooreNeighborhood(t *testing.T) {
	f := NewLAP(8).(*LAP)
	if f.Taps() != 9 {
		t.Fatalf("LAP(8) taps = %d", f.Taps())
	}
	for _, o := range f.st.offsets {
		if o.dy < -1 || o.dy > 1 || o.dx < -1 || o.dx > 1 {
			t.Fatalf("LAP(8) reaches outside 3x3: %v", o)
		}
	}
}

func TestLARDiskSizes(t *testing.T) {
	want := map[int]int{1: 5, 2: 13, 3: 29, 4: 49, 5: 81}
	for _, r := range PaperLARRadii {
		f := NewLAR(r).(*LAR)
		if got := f.Taps(); got != want[r] {
			t.Errorf("LAR(%d) has %d taps, want %d", r, got, want[r])
		}
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"LAP(0)":     func() { NewLAP(0) },
		"LAR(0)":     func() { NewLAR(0) },
		"LAR(-1)":    func() { NewLAR(-1) },
		"Gauss(0)":   func() { NewGaussian(0) },
		"Median(0)":  func() { NewMedian(0) },
		"Median(-2)": func() { NewMedian(-2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func allFilters() []Filter {
	fs := []Filter{Identity{}}
	for _, np := range PaperLAPSizes {
		fs = append(fs, NewLAP(np))
	}
	for _, r := range PaperLARRadii {
		fs = append(fs, NewLAR(r))
	}
	fs = append(fs, NewGaussian(1.0), NewMedian(1))
	return fs
}

func TestConstantImageUnchanged(t *testing.T) {
	img := tensor.Full(0.37, 3, 8, 8)
	for _, f := range allFilters() {
		out := f.Apply(img)
		if !tensor.EqualWithin(out, img, 1e-12) {
			t.Errorf("%s changed a constant image", f.Name())
		}
	}
}

func TestApplyPreservesRangeAndShape(t *testing.T) {
	rng := mathx.NewRNG(1)
	img := tensor.RandU(rng, 0, 1, 3, 12, 12)
	for _, f := range allFilters() {
		out := f.Apply(img)
		if !out.SameShape(img) {
			t.Errorf("%s changed shape to %v", f.Name(), out.Shape())
		}
		if out.Min() < -1e-12 || out.Max() > 1+1e-12 {
			t.Errorf("%s escaped [0,1]: [%v, %v]", f.Name(), out.Min(), out.Max())
		}
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	rng := mathx.NewRNG(2)
	img := tensor.RandU(rng, 0, 1, 1, 6, 6)
	orig := img.Clone()
	for _, f := range allFilters() {
		f.Apply(img)
		if !tensor.EqualWithin(img, orig, 0) {
			t.Fatalf("%s mutated its input", f.Name())
		}
	}
}

func TestSmoothingReducesNoiseVariance(t *testing.T) {
	rng := mathx.NewRNG(3)
	img := tensor.RandU(rng, 0, 1, 1, 16, 16)
	inVar := mathx.Variance(img.Data())
	for _, f := range []Filter{NewLAP(8), NewLAP(32), NewLAR(2), NewLAR(4), NewGaussian(1)} {
		out := f.Apply(img)
		if v := mathx.Variance(out.Data()); v >= inVar {
			t.Errorf("%s did not reduce variance: %v -> %v", f.Name(), inVar, v)
		}
	}
}

func TestStrongerSmoothingSmoothsMore(t *testing.T) {
	rng := mathx.NewRNG(4)
	img := tensor.RandU(rng, 0, 1, 1, 16, 16)
	prev := math.Inf(1)
	for _, np := range PaperLAPSizes {
		v := mathx.Variance(NewLAP(np).Apply(img).Data())
		if v >= prev {
			t.Errorf("LAP(%d) variance %v not below previous %v", np, v, prev)
		}
		prev = v
	}
	prev = math.Inf(1)
	for _, r := range PaperLARRadii {
		v := mathx.Variance(NewLAR(r).Apply(img).Data())
		if v >= prev {
			t.Errorf("LAR(%d) variance %v not below previous %v", r, v, prev)
		}
		prev = v
	}
}

// Linearity property: F(a·x + b·y) == a·F(x) + b·F(y) for stencil filters.
func TestLinearityProperty(t *testing.T) {
	linear := []Filter{NewLAP(4), NewLAP(16), NewLAR(1), NewLAR(3), NewGaussian(0.8), Identity{}}
	f := func(seed uint64, aRaw, bRaw int8) bool {
		r := mathx.NewRNG(seed)
		a, b := float64(aRaw)/32, float64(bRaw)/32
		x := tensor.RandN(r, 1, 6, 6)
		y := tensor.RandN(r, 1, 6, 6)
		mixIn := tensor.Add(tensor.Scale(x, a), tensor.Scale(y, b))
		for _, flt := range linear {
			lhs := flt.Apply(mixIn)
			rhs := tensor.Add(tensor.Scale(flt.Apply(x), a), tensor.Scale(flt.Apply(y), b))
			if !tensor.EqualWithin(lhs, rhs, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Adjoint identity property: ⟨F(x), u⟩ == ⟨x, Fᵀ(u)⟩ — the strongest
// correctness test for VJP implementations of linear filters.
func TestVJPAdjointIdentityProperty(t *testing.T) {
	linear := []Filter{NewLAP(4), NewLAP(8), NewLAP(32), NewLAR(1), NewLAR(3), NewLAR(5), NewGaussian(1.2), Identity{}}
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		x := tensor.RandN(r, 2, 7, 7)
		u := tensor.RandN(r, 2, 7, 7)
		for _, flt := range linear {
			lhs := tensor.Dot(flt.Apply(x), u)
			rhs := tensor.Dot(x, flt.VJP(x, u))
			if !mathx.EqualWithin(lhs, rhs, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// VJP must match finite differences of a scalar functional through the
// filter (for linear filters this is exact up to float error).
func TestVJPMatchesFiniteDifference(t *testing.T) {
	rng := mathx.NewRNG(5)
	x := tensor.RandU(rng, 0, 1, 1, 5, 5)
	probe := tensor.RandN(rng, 1, 5, 5)
	for _, f := range []Filter{NewLAP(8), NewLAR(2), NewGaussian(1)} {
		grad := f.VJP(x, probe)
		const h = 1e-6
		for _, i := range []int{0, 6, 12, 24} {
			d := x.Data()
			orig := d[i]
			d[i] = orig + h
			lp := tensor.Dot(f.Apply(x), probe)
			d[i] = orig - h
			lm := tensor.Dot(f.Apply(x), probe)
			d[i] = orig
			numeric := (lp - lm) / (2 * h)
			if !mathx.EqualWithin(grad.Data()[i], numeric, 1e-5) {
				t.Errorf("%s VJP[%d] = %v, finite diff %v", f.Name(), i, grad.Data()[i], numeric)
			}
		}
	}
}

func TestChainComposition(t *testing.T) {
	rng := mathx.NewRNG(6)
	img := tensor.RandU(rng, 0, 1, 1, 8, 8)
	a, b := NewLAP(4), NewLAR(1)
	chain := Chain{a, b}
	want := b.Apply(a.Apply(img))
	if !tensor.EqualWithin(chain.Apply(img), want, 1e-12) {
		t.Fatal("Chain.Apply is not b(a(x))")
	}
	if chain.Name() != "chain(lap(np=4),lar(r=1))" {
		t.Fatalf("Chain name = %q", chain.Name())
	}
}

func TestChainVJPAdjoint(t *testing.T) {
	rng := mathx.NewRNG(7)
	x := tensor.RandN(rng, 1, 6, 6)
	u := tensor.RandN(rng, 1, 6, 6)
	chain := Chain{NewLAP(8), NewGaussian(0.8), NewLAR(1)}
	lhs := tensor.Dot(chain.Apply(x), u)
	rhs := tensor.Dot(x, chain.VJP(x, u))
	if !mathx.EqualWithin(lhs, rhs, 1e-9) {
		t.Fatalf("chain adjoint identity broken: %v vs %v", lhs, rhs)
	}
}

func TestEmptyChainIsIdentity(t *testing.T) {
	rng := mathx.NewRNG(8)
	img := tensor.RandU(rng, 0, 1, 1, 4, 4)
	var c Chain
	if !tensor.EqualWithin(c.Apply(img), img, 0) {
		t.Fatal("empty chain not identity")
	}
	u := tensor.RandN(rng, 1, 4, 4)
	if !tensor.EqualWithin(c.VJP(img, u), u, 0) {
		t.Fatal("empty chain VJP not identity")
	}
	if c.Name() != "none" {
		t.Fatalf("empty chain name = %q", c.Name())
	}
}

func TestMedianKnownValues(t *testing.T) {
	// 3×3 image with an impulse at the center: the median wipes it out.
	img := tensor.New(1, 3, 3)
	img.Set(1, 0, 1, 1)
	out := NewMedian(1).Apply(img)
	if out.At(0, 1, 1) != 0 {
		t.Fatalf("median did not remove impulse: %v", out.At(0, 1, 1))
	}
}

func TestMedianRemovesSaltPepper(t *testing.T) {
	rng := mathx.NewRNG(9)
	img := tensor.Full(0.5, 1, 16, 16)
	noisy := img.Clone()
	// 8% salt-and-pepper corruption.
	for i := range noisy.Data() {
		if rng.Bool(0.04) {
			noisy.Data()[i] = 1
		} else if rng.Bool(0.04) {
			noisy.Data()[i] = 0
		}
	}
	denoised := NewMedian(1).Apply(noisy)
	before := tensor.Sub(noisy, img).L2Norm()
	after := tensor.Sub(denoised, img).L2Norm()
	if after >= before/4 {
		t.Fatalf("median barely denoised: %v -> %v", before, after)
	}
}

func TestMedianVJPIsBPDAIdentity(t *testing.T) {
	rng := mathx.NewRNG(10)
	x := tensor.RandU(rng, 0, 1, 1, 5, 5)
	u := tensor.RandN(rng, 1, 5, 5)
	g := NewMedian(1).VJP(x, u)
	if !tensor.EqualWithin(g, u, 0) {
		t.Fatal("median VJP is not the BPDA identity")
	}
}

func TestGaussianWeightsSumToOne(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 2} {
		f := NewGaussian(sigma).(*Gaussian)
		sum := 0.0
		for _, w := range f.st.weights {
			sum += w
		}
		if !mathx.EqualWithin(sum, 1, 1e-12) {
			t.Errorf("Gauss(%v) weights sum to %v", sigma, sum)
		}
	}
}

func TestIdentityFilter(t *testing.T) {
	rng := mathx.NewRNG(11)
	img := tensor.RandU(rng, 0, 1, 2, 4, 4)
	out := Identity{}.Apply(img)
	if !tensor.EqualWithin(out, img, 0) {
		t.Fatal("Identity.Apply changed the image")
	}
	out.Set(9, 0, 0, 0)
	if img.At(0, 0, 0) == 9 {
		t.Fatal("Identity.Apply shares storage with input")
	}
}

func TestNonCHWPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("2-d input did not panic")
		}
	}()
	NewLAP(4).Apply(tensor.New(4, 4))
}

// High-frequency attenuation: the core physical property the paper relies
// on. A checkerboard (Nyquist frequency) must be attenuated far more than a
// smooth gradient.
func TestLowPassBehaviour(t *testing.T) {
	size := 16
	checker := tensor.New(1, size, size)
	gradient := tensor.New(1, size, size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			checker.Set(float64((x+y)%2), 0, y, x)
			gradient.Set(float64(x)/float64(size-1), 0, y, x)
		}
	}
	for _, f := range []Filter{NewLAP(8), NewLAR(2)} {
		cOut := f.Apply(checker)
		gOut := f.Apply(gradient)
		// AC energy relative to the mean.
		ac := func(t *tensor.Tensor) float64 {
			m := t.Mean()
			c := t.Clone()
			c.AddScalar(-m)
			return c.L2Norm()
		}
		checkerKept := ac(cOut) / ac(checker)
		gradKept := ac(gOut) / ac(gradient)
		// LAR(2)'s 13-tap disk has a 9:4 parity imbalance, so it retains
		// 5/13 ≈ 0.38 of a checkerboard's amplitude; anything well below
		// the gradient's retention demonstrates low-pass behaviour.
		if checkerKept > 0.45 {
			t.Errorf("%s kept %.2f of checkerboard energy", f.Name(), checkerKept)
		}
		if gradKept < 0.8 {
			t.Errorf("%s kept only %.2f of smooth gradient energy", f.Name(), gradKept)
		}
	}
}
