package filters

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BitDepth is the bit-depth squeezing defense (Xu et al.'s "feature
// squeezing"): every pixel is rounded to the nearest of 2^Bits levels,
// collapsing the low-amplitude perturbations adversarial noise lives in.
//
// Rounding is piecewise constant (zero derivative almost everywhere), so
// the VJP is the BPDA straight-through identity.
type BitDepth struct {
	// Bits is the retained bit depth in [1, 16]; 8 reproduces standard
	// image quantization, smaller values squeeze harder.
	Bits int
}

// NewBitDepth constructs a bit-depth squeeze to the given depth.
func NewBitDepth(bits int) *BitDepth {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("filters: bit depth %d outside [1, 16]", bits))
	}
	return &BitDepth{Bits: bits}
}

// Name implements Filter: the canonical spec, e.g. "bitdepth(bits=5)".
func (b *BitDepth) Name() string { return specName("bitdepth", b.Params()) }

// Params implements Configurable.
func (b *BitDepth) Params() []Param {
	return []Param{
		intParam("bits", "retained bit depth in [1, 16]; smaller squeezes harder",
			&b.Bits, intInRange(1, 16), nil),
	}
}

// Set implements Configurable.
func (b *BitDepth) Set(name, value string) error { return setParam(b.Params(), name, value) }

// Apply implements Filter: round to the nearest of 2^Bits levels.
func (b *BitDepth) Apply(img *tensor.Tensor) *tensor.Tensor {
	checkCHW(b.Name(), img)
	out := img.Clone()
	levels := float64(int(1)<<b.Bits - 1)
	d := out.Data()
	for i, v := range d {
		d[i] = math.Floor(v*levels+0.5) / levels
	}
	return out
}

// ApplyBatch implements Filter via the serial fallback (a single
// multiply-round pass; fan-out overhead would dominate).
func (b *BitDepth) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor {
	return SerialBatch(b, imgs)
}

// VJP implements Filter using the BPDA straight-through identity (the
// true derivative of rounding is zero almost everywhere).
func (b *BitDepth) VJP(_, upstream *tensor.Tensor) *tensor.Tensor {
	return upstream.Clone()
}
