package filters

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// RandJPEG is the SHIELD-style randomized JPEG defense (Das et al., KDD
// 2018): every 8×8 block is compressed at a quality factor drawn
// uniformly from [QMin, QMax], so an attacker cannot precompute the
// exact quantization the deployed stage will apply to any region. The
// block qualities are a pure function of (Seed, image) — the per-image
// randomness stream is ImageSeed-derived, making repeated applications
// bit-identical and distinct seeds independent (the Stochastic
// contract).
//
// Like JPEG, the transform is piecewise constant in the input, so its
// VJP is the BPDA straight-through identity.
type RandJPEG struct {
	// QMin and QMax bound the per-block quality draw, 1 ≤ QMin ≤ QMax ≤ 100.
	QMin, QMax int
	// SeedVal is the base of the per-image quality stream.
	SeedVal uint64
}

// NewRandJPEG constructs a randomized JPEG defense.
func NewRandJPEG(qmin, qmax int, seed uint64) *RandJPEG {
	f := &RandJPEG{QMin: qmin, QMax: qmax, SeedVal: seed}
	if err := f.Validate(); err != nil {
		panic("filters: " + err.Error())
	}
	return f
}

// Name implements Filter: the canonical spec, e.g.
// "randjpeg(qmin=20,qmax=80,seed=1)".
func (j *RandJPEG) Name() string { return specName("randjpeg", j.Params()) }

// Params implements Configurable.
func (j *RandJPEG) Params() []Param {
	return []Param{
		intParam("qmin", "lower bound of the per-block JPEG quality draw, in [1, 100]",
			&j.QMin, intInRange(1, 100), nil),
		intParam("qmax", "upper bound of the per-block JPEG quality draw, in [1, 100]",
			&j.QMax, intInRange(1, 100), nil),
		uintParam("seed", "base seed of the per-image quality stream", &j.SeedVal, nil),
	}
}

// Set implements Configurable.
func (j *RandJPEG) Set(name, value string) error { return setParam(j.Params(), name, value) }

// Validate implements Validator: the quality bounds must be ordered.
func (j *RandJPEG) Validate() error {
	if j.QMin < 1 || j.QMax > 100 || j.QMin > j.QMax {
		return fmt.Errorf("randjpeg: want 1 <= qmin <= qmax <= 100, got qmin=%d qmax=%d", j.QMin, j.QMax)
	}
	return nil
}

// Seed implements Stochastic.
func (j *RandJPEG) Seed() uint64 { return j.SeedVal }

// WithSeed implements Stochastic.
func (j *RandJPEG) WithSeed(seed uint64) Filter {
	c := *j
	c.SeedVal = seed
	return &c
}

// Apply implements Filter. Blocks are visited channel-major, row-major —
// the draw order is part of the determinism contract — each drawing its
// quality from one per-image RNG before running the shared JPEG block
// round trip.
func (j *RandJPEG) Apply(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW(j.Name(), img)
	out := tensor.New(c, h, w)
	id, od := img.Data(), out.Data()
	rng := mathx.NewRNG(ImageSeed(j.SeedVal, img))
	span := j.QMax - j.QMin + 1
	var block, coef [64]float64
	// The quality span is at most 100 wide; memoize the tables the draw
	// actually hits instead of rebuilding one per block.
	tables := make(map[int]*[64]float64, span)
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for by := 0; by < h; by += 8 {
			for bx := 0; bx < w; bx += 8 {
				q := j.QMin + rng.IntN(span)
				qt := tables[q]
				if qt == nil {
					t := jpegQuantTableFor(q)
					qt = &t
					tables[q] = qt
				}
				jpegCodeBlock(id, od, base, h, w, by, bx, qt, &block, &coef)
			}
		}
	}
	return out
}

// ApplyBatch implements Filter with one task per image over the
// internal/parallel pool; each image's quality stream is independent, so
// results are bit-identical to serial application.
func (j *RandJPEG) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor {
	return parallelBatch(j, imgs)
}

// VJP implements Filter using the BPDA straight-through identity, like
// the deterministic JPEG: coefficient rounding has zero derivative
// almost everywhere, and the block-quality draw is piecewise constant in
// the input.
func (j *RandJPEG) VJP(_, upstream *tensor.Tensor) *tensor.Tensor {
	return upstream.Clone()
}
