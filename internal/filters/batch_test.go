package filters

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// registryAndChain returns one default instance of every registered
// filter plus a representative chain — the set the batched-equivalence
// and concurrency tests sweep.
func registryAndChain(t *testing.T) []Filter {
	t.Helper()
	var fs []Filter
	for _, name := range Names() {
		f, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		fs = append(fs, f)
	}
	return append(fs, Chain{NewMedian(1), NewHistEq(64), NewLAP(4)}, Identity{})
}

// TestApplyBatchBitIdentity pins the ApplyBatch contract for every
// registered filter: out[i] must be bit-identical to Apply(imgs[i]),
// whatever worker count the process-wide pool is at.
func TestApplyBatchBitIdentity(t *testing.T) {
	rng := mathx.NewRNG(31)
	imgs := make([]*tensor.Tensor, 7)
	for i := range imgs {
		imgs[i] = tensor.RandU(rng, 0, 1, 3, 10, 10)
	}
	for _, workers := range []int{1, 4} {
		old := parallel.Workers()
		parallel.SetWorkers(workers)
		for _, f := range registryAndChain(t) {
			got := f.ApplyBatch(imgs)
			if len(got) != len(imgs) {
				t.Fatalf("%s: ApplyBatch returned %d outputs for %d inputs", f.Name(), len(got), len(imgs))
			}
			for i, img := range imgs {
				if !tensor.EqualWithin(got[i], f.Apply(img), 0) {
					t.Errorf("%s (workers=%d): ApplyBatch[%d] != Apply", f.Name(), workers, i)
				}
			}
		}
		parallel.SetWorkers(old)
	}
}

// TestApplyBatchEdgeSizes covers the degenerate batch shapes every
// implementation must handle: empty and single-image batches.
func TestApplyBatchEdgeSizes(t *testing.T) {
	rng := mathx.NewRNG(32)
	img := tensor.RandU(rng, 0, 1, 3, 6, 6)
	for _, f := range registryAndChain(t) {
		if got := f.ApplyBatch(nil); len(got) != 0 {
			t.Errorf("%s: ApplyBatch(nil) returned %d outputs", f.Name(), len(got))
		}
		got := f.ApplyBatch([]*tensor.Tensor{img})
		if len(got) != 1 || !tensor.EqualWithin(got[0], f.Apply(img), 0) {
			t.Errorf("%s: single-image ApplyBatch != Apply", f.Name())
		}
	}
}

// TestApplyBatchConcurrent is the -race witness for the serving layer's
// usage: many goroutines calling ApplyBatch on a SHARED filter instance
// concurrently, each result bit-identical to a serial Apply.
func TestApplyBatchConcurrent(t *testing.T) {
	rng := mathx.NewRNG(33)
	imgs := make([]*tensor.Tensor, 5)
	for i := range imgs {
		imgs[i] = tensor.RandU(rng, 0, 1, 3, 8, 8)
	}
	for _, f := range registryAndChain(t) {
		want := SerialBatch(f, imgs)
		var wg sync.WaitGroup
		errs := make([]error, 6)
		for g := 0; g < len(errs); g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for iter := 0; iter < 3; iter++ {
					got := f.ApplyBatch(imgs)
					for i := range imgs {
						if !tensor.EqualWithin(got[i], want[i], 0) {
							errs[g] = fmt.Errorf("%s: concurrent ApplyBatch[%d] diverged", f.Name(), i)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Error(err)
			}
		}
	}
}

// TestChainApplyBatchStagewise pins that a chain's batched path (stage
// by stage over the whole batch) equals its per-image path.
func TestChainApplyBatchStagewise(t *testing.T) {
	rng := mathx.NewRNG(34)
	imgs := []*tensor.Tensor{
		tensor.RandU(rng, 0, 1, 3, 9, 9),
		tensor.RandU(rng, 0, 1, 3, 9, 9),
		tensor.RandU(rng, 0, 1, 3, 9, 9),
	}
	chain := Chain{NewLAP(8), NewBitDepth(4), NewGaussian(0.8)}
	got := chain.ApplyBatch(imgs)
	for i, img := range imgs {
		if !tensor.EqualWithin(got[i], chain.Apply(img), 0) {
			t.Fatalf("chain ApplyBatch[%d] != Apply", i)
		}
	}
}
