package filters

import (
	"fmt"

	"repro/internal/tensor"
)

// Gaussian is a Gaussian blur with the given standard deviation (taps
// truncated at ±3σ, weights normalized). It is a linear stencil, so like
// LAP/LAR its VJP is the exact adjoint. Included as a library extension
// beyond the paper's LAP/LAR pair.
type Gaussian struct {
	sigma float64
	st    *stencil
}

// NewGaussian builds a Gaussian blur with standard deviation sigma.
func NewGaussian(sigma float64) Filter {
	if sigma <= 0 {
		panic(fmt.Sprintf("filters: Gaussian sigma %v must be positive", sigma))
	}
	f := &Gaussian{sigma: sigma}
	f.rebuild()
	return f
}

// rebuild reconstructs the stencil after a parameter change.
func (f *Gaussian) rebuild() {
	offs, ws := gaussianOffsets(f.sigma)
	f.st = newStencil(f.Name(), offs, ws)
}

// Name implements Filter: the canonical spec, e.g. "gaussian(sigma=1.5)".
func (f *Gaussian) Name() string { return specName("gaussian", f.Params()) }

// Taps returns the stencil tap count.
func (f *Gaussian) Taps() int { return f.st.Taps() }

// Apply implements Filter.
func (f *Gaussian) Apply(img *tensor.Tensor) *tensor.Tensor { return f.st.Apply(img) }

// ApplyBatch implements Filter over the parallel pool.
func (f *Gaussian) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor { return f.st.ApplyBatch(imgs) }

// VJP implements Filter (exact adjoint).
func (f *Gaussian) VJP(x, upstream *tensor.Tensor) *tensor.Tensor { return f.st.VJP(x, upstream) }

// Params implements Configurable.
func (f *Gaussian) Params() []Param {
	return []Param{
		floatParam("sigma", "Gaussian standard deviation in pixels (taps truncated at ±3σ)",
			&f.sigma, floatPositive(), f.rebuild),
	}
}

// Set implements Configurable.
func (f *Gaussian) Set(name, value string) error { return setParam(f.Params(), name, value) }
