package filters

import "fmt"

// NewGaussian builds a Gaussian blur with the given standard deviation
// (taps truncated at ±3σ, weights normalized). It is a linear stencil, so
// like LAP/LAR its VJP is the exact adjoint. Included as a library
// extension beyond the paper's LAP/LAR pair.
func NewGaussian(sigma float64) Filter {
	if sigma <= 0 {
		panic(fmt.Sprintf("filters: Gaussian sigma %v must be positive", sigma))
	}
	offs, ws := gaussianOffsets(sigma)
	return newStencil(fmt.Sprintf("Gauss(%.2g)", sigma), offs, ws)
}
