package filters

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

func TestBoxTapCount(t *testing.T) {
	for r, want := range map[int]int{1: 9, 2: 25, 3: 49} {
		f := NewBox(r).(*Box)
		if f.Taps() != want {
			t.Errorf("Box(%d) taps = %d, want %d", r, f.Taps(), want)
		}
	}
}

func TestBoxIsUniformAverage(t *testing.T) {
	// On a plateau interior, a box average equals the plain mean.
	img := tensor.New(1, 5, 5)
	v := 0.0
	for i := range img.Data() {
		img.Data()[i] = v
		v += 0.01
	}
	out := NewBox(1).Apply(img)
	// Interior pixel (2,2): mean of the 3x3 window around it.
	sum := 0.0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			sum += img.At(0, 2+dy, 2+dx)
		}
	}
	if !mathx.EqualWithin(out.At(0, 2, 2), sum/9, 1e-12) {
		t.Fatalf("Box(1) interior = %v, want %v", out.At(0, 2, 2), sum/9)
	}
}

func TestBoxAdjointIdentity(t *testing.T) {
	rng := mathx.NewRNG(3)
	x := tensor.RandN(rng, 2, 6, 6)
	u := tensor.RandN(rng, 2, 6, 6)
	f := NewBox(2)
	lhs := tensor.Dot(f.Apply(x), u)
	rhs := tensor.Dot(x, f.VJP(x, u))
	if !mathx.EqualWithin(lhs, rhs, 1e-9) {
		t.Fatalf("box adjoint identity broken: %v vs %v", lhs, rhs)
	}
}

func TestBoxVsLARFootprint(t *testing.T) {
	// Box(2) has 25 taps; LAR(2) has 13 — the box smooths strictly more.
	rng := mathx.NewRNG(4)
	img := tensor.RandU(rng, 0, 1, 1, 16, 16)
	vBox := mathx.Variance(NewBox(2).Apply(img).Data())
	vLAR := mathx.Variance(NewLAR(2).Apply(img).Data())
	if vBox >= vLAR {
		t.Fatalf("Box(2) variance %v not below LAR(2) %v", vBox, vLAR)
	}
}

func TestBoxValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Box(0) accepted")
		}
	}()
	NewBox(0)
}
