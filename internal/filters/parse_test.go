package filters

import (
	"strings"
	"testing"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

func TestParseValidSpecs(t *testing.T) {
	cases := map[string]string{
		// Canonical v2 syntax.
		"lap(np=32)":          "lap(np=32)",
		"lap":                 "lap(np=32)", // registry default
		"LAP(np=8)":           "lap(np=8)",  // names are case-insensitive
		"lar(r=3)":            "lar(r=3)",
		"median(r=2)":         "median(r=2)",
		"gaussian(sigma=1.5)": "gaussian(sigma=1.5)",
		"box(r=2)":            "box(r=2)",
		"bilateral(sc=0.2)":   "bilateral(r=2,ss=2,sc=0.2)", // partial override keeps defaults
		"grayscale":           "grayscale",
		"normalize(mean=0)":   "normalize(mean=0,std=0.25)",
		"histeq(bins=64)":     "histeq(bins=64)",
		"jpeg(q=20)":          "jpeg(q=20)",
		"bitdepth(bits=3)":    "bitdepth(bits=3)",
		"tv(lambda=0.2)":      "tv(lambda=0.2,iters=15)",
		"nlm(h=0.2,window=2)": "nlm(h=0.2,patch=1,window=2)",
		" median ( r = 2 ) ":  "median(r=2)", // whitespace-tolerant
		// Chains, including nesting.
		"chain(median(r=1),histeq(bins=64))":    "chain(median(r=1),histeq(bins=64))",
		"chain(lap(np=4),chain(lar(r=1),jpeg))": "chain(lap(np=4),chain(lar(r=1),jpeg(q=50)))",
		// Legacy KIND:PARAM compatibility.
		"LAP:32":    "lap(np=32)",
		"lap:4":     "lap(np=4)",
		"LAR:3":     "lar(r=3)",
		"MEDIAN:1":  "median(r=1)",
		"gauss:2":   "gaussian(sigma=2)",
		"BOX:2":     "box(r=2)",
		" LAP : 8 ": "lap(np=8)",
	}
	for spec, want := range cases {
		f, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if f == nil {
			t.Errorf("Parse(%q) returned nil filter", spec)
			continue
		}
		if got := f.Name(); got != want {
			t.Errorf("Parse(%q).Name() = %q, want %q", spec, got, want)
		}
	}
}

func TestParseNone(t *testing.T) {
	for _, spec := range []string{"", "none", "NONE", "  none  "} {
		f, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
		}
		if f != nil {
			t.Errorf("Parse(%q) = %v, want nil", spec, f)
		}
	}
}

// TestParseMalformedSpecs is the table of specs that must fail with a
// usage-style error — never a panic and never a silent clamp.
func TestParseMalformedSpecs(t *testing.T) {
	cases := map[string]string{
		// Unknown names.
		"wavelet":            "unknown filter",
		"wavelet(r=2)":       "unknown filter",
		"WAVELET:2":          "unknown kind",
		"chain(wavelet)":     "unknown filter",
		"chain(lap,wavelet)": "unknown filter",
		// Unknown params.
		"median(radius=2)":       "unknown param",
		"lap(r=3)":               "unknown param",
		"gaussian(s=1)":          "unknown param",
		"chain(median(sigma=1))": "unknown param",
		// Out-of-range values: rejected, not clamped.
		"median(r=0)":        "at least 1",
		"median(r=-2)":       "at least 1",
		"lap(np=0)":          "at least 1",
		"lar(r=-1)":          "at least 1",
		"gaussian(sigma=-2)": "positive",
		"gaussian(sigma=0)":  "positive",
		"bilateral(ss=-1)":   "positive",
		"histeq(bins=1)":     "at least 2",
		"jpeg(q=0)":          "in [1, 100]",
		"jpeg(q=101)":        "in [1, 100]",
		"bitdepth(bits=0)":   "in [1, 16]",
		"tv(lambda=-0.1)":    "positive",
		"tv(iters=0)":        "at least 1",
		"nlm(h=0)":           "positive",
		"nlm(window=0)":      "at least 1",
		// Type errors.
		"median(r=two)":      "want an integer",
		"gaussian(sigma=xx)": "want a number",
		"LAP:x":              "not an integer",
		"LAP:":               "not an integer",
		"LAP:3:4:":           "not an integer",
		// Shape errors.
		"median(r=2":     "missing closing parenthesis",
		"median(r)":      "want key=value",
		"median(=2)":     "want key=value",
		"median(r=)":     "want key=value",
		"(r=2)":          "has no name",
		":3":             "unknown kind",
		"grayscale(x=1)": "accepts no parameters",
		"chain()":        "at least one stage",
		"chain(none)":    "stage 1 is empty",
		"chain(lap,)":    "stage 2",
	}
	for spec, wantSub := range cases {
		f, err := Parse(spec)
		if err == nil {
			t.Errorf("Parse(%q) accepted (got %v)", spec, f)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Parse(%q) error %q does not mention %q", spec, err, wantSub)
		}
	}
}

// TestParseNameRoundTrip pins the canonical-spec contract: for every
// registered filter (and a chain of them), Parse(f.Name()) rebuilds an
// identically configured instance — same Name, bit-identical Apply.
func TestParseNameRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(77)
	img := tensor.RandU(rng, 0, 1, 3, 9, 9)
	check := func(f Filter) {
		t.Helper()
		rebuilt, err := Parse(f.Name())
		if err != nil {
			t.Errorf("Parse(%q): %v", f.Name(), err)
			return
		}
		if rebuilt.Name() != f.Name() {
			t.Errorf("round trip changed the spec: %q -> %q", f.Name(), rebuilt.Name())
		}
		if !tensor.EqualWithin(rebuilt.Apply(img), f.Apply(img), 0) {
			t.Errorf("round trip of %q changed the configuration", f.Name())
		}
	}
	var chain Chain
	for _, name := range Names() {
		f, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		check(f)
		chain = append(chain, f)
	}
	check(chain)
}

// TestParseDoesNotShareState pins that Parse returns fresh instances:
// configuring one parse result must not affect another.
func TestParseDoesNotShareState(t *testing.T) {
	a, err := Parse("median(r=1)")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("median(r=3)")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "median(r=1)" || b.Name() != "median(r=3)" {
		t.Fatalf("parse results share state: %q, %q", a.Name(), b.Name())
	}
}

func TestSetRejectsWithoutMutating(t *testing.T) {
	f, err := Parse("lap(np=8)")
	if err != nil {
		t.Fatal(err)
	}
	cfg := f.(Configurable)
	if err := cfg.Set("np", "0"); err == nil {
		t.Fatal("Set(np, 0) accepted")
	}
	if f.Name() != "lap(np=8)" {
		t.Fatalf("rejected Set still mutated the filter: %q", f.Name())
	}
	rng := mathx.NewRNG(5)
	img := tensor.RandU(rng, 0, 1, 1, 6, 6)
	if !tensor.EqualWithin(f.Apply(img), NewLAP(8).Apply(img), 0) {
		t.Fatal("rejected Set corrupted the stencil")
	}
}

func TestSplitSpecs(t *testing.T) {
	got := SplitSpecs(" chain(median(r=1),histeq(bins=64)) , lap(np=8), ,none ")
	want := []string{"chain(median(r=1),histeq(bins=64))", "lap(np=8)", "none"}
	if len(got) != len(want) {
		t.Fatalf("SplitSpecs = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SplitSpecs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
