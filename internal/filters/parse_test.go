package filters

import (
	"strings"
	"testing"
)

func TestParseValidSpecs(t *testing.T) {
	cases := map[string]string{
		"LAP:32":    "LAP(32)",
		"lap:4":     "LAP(4)",
		"LAR:3":     "LAR(3)",
		"MEDIAN:1":  "Median(1)",
		"gauss:2":   "Gauss",
		"BOX:2":     "Box(2)",
		" LAP : 8 ": "LAP(8)",
	}
	for spec, wantPrefix := range cases {
		f, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if f == nil {
			t.Errorf("Parse(%q) returned nil filter", spec)
			continue
		}
		if name := f.Name(); !strings.HasPrefix(name, strings.Split(wantPrefix, "(")[0]) {
			t.Errorf("Parse(%q).Name() = %q, want prefix of %q", spec, name, wantPrefix)
		}
	}
}

func TestParseNone(t *testing.T) {
	for _, spec := range []string{"", "none", "NONE", "  none  "} {
		f, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
		}
		if f != nil {
			t.Errorf("Parse(%q) = %v, want nil", spec, f)
		}
	}
}

func TestParseBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"LAP", "LAP:", "LAP:x", "LAP:0", "LAP:-3", "WAVELET:2", ":3", "LAP:3:4:",
	} {
		// Must return an error — never panic (these come straight from
		// user-facing flags).
		f, err := Parse(spec)
		if err == nil {
			t.Errorf("Parse(%q) accepted (got %v)", spec, f)
		}
	}
}
