package filters

import (
	"repro/internal/mathx"
	"repro/internal/tensor"
)

// RandNoise is the additive-Gaussian randomization defense: each pixel
// receives an independent N(0, Sigma²) sample before the clamp back into
// [0, 1], washing out the precisely tuned perturbations gradient attacks
// produce. The noise stream is a pure function of (Seed, image) — the
// Stochastic contract — so the deployed stage is deterministic per input
// while fresh seeds give independent draws.
type RandNoise struct {
	// Sigma is the noise standard deviation (in pixel units).
	Sigma float64
	// SeedVal is the base of the per-image noise stream.
	SeedVal uint64
}

// NewRandNoise constructs an additive-noise defense.
func NewRandNoise(sigma float64, seed uint64) *RandNoise {
	if !(sigma > 0) {
		panic("filters: randnoise sigma must be positive")
	}
	return &RandNoise{Sigma: sigma, SeedVal: seed}
}

// Name implements Filter: the canonical spec, e.g.
// "randnoise(sigma=0.05,seed=1)".
func (n *RandNoise) Name() string { return specName("randnoise", n.Params()) }

// Params implements Configurable.
func (n *RandNoise) Params() []Param {
	return []Param{
		floatParam("sigma", "additive Gaussian noise stddev in pixel units",
			&n.Sigma, floatPositive(), nil),
		uintParam("seed", "base seed of the per-image noise stream", &n.SeedVal, nil),
	}
}

// Set implements Configurable.
func (n *RandNoise) Set(name, value string) error { return setParam(n.Params(), name, value) }

// Seed implements Stochastic.
func (n *RandNoise) Seed() uint64 { return n.SeedVal }

// WithSeed implements Stochastic.
func (n *RandNoise) WithSeed(seed uint64) Filter {
	c := *n
	c.SeedVal = seed
	return &c
}

// Apply implements Filter: out = clamp01(x + sigma·N), with the noise
// stream seeded by ImageSeed(Seed, img).
func (n *RandNoise) Apply(img *tensor.Tensor) *tensor.Tensor {
	checkCHW(n.Name(), img)
	out := img.Clone()
	d := out.Data()
	rng := mathx.NewRNG(ImageSeed(n.SeedVal, img))
	for i := range d {
		d[i] = mathx.Clamp01(d[i] + rng.NormScaled(0, n.Sigma))
	}
	return out
}

// ApplyBatch implements Filter via the serial fallback: per-pixel noise
// is too cheap to justify fan-out, and each image's stream is
// independent of the others.
func (n *RandNoise) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor {
	return SerialBatch(n, imgs)
}

// VJP implements Filter: additive noise has an exact identity Jacobian
// wherever the [0, 1] clamp is inactive; at saturated pixels the true
// derivative is zero and the straight-through (BPDA) convention passes
// the upstream gradient unchanged — the same backward model the
// acquisition stage uses for its clamp.
func (n *RandNoise) VJP(_, upstream *tensor.Tensor) *tensor.Tensor {
	return upstream.Clone()
}
