package filters

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

func TestBilateralConstantUnchanged(t *testing.T) {
	img := tensor.Full(0.42, 3, 8, 8)
	out := NewBilateral(2, 1.5, 0.1).Apply(img)
	if !tensor.EqualWithin(out, img, 1e-9) {
		t.Fatal("bilateral changed a constant image")
	}
}

func TestBilateralPreservesEdgesBetterThanLAP(t *testing.T) {
	// A hard vertical edge: bilateral should keep it sharper than LAP(8).
	size := 16
	img := tensor.New(1, size, size)
	for y := 0; y < size; y++ {
		for x := size / 2; x < size; x++ {
			img.Set(1, 0, y, x)
		}
	}
	bi := NewBilateral(2, 1.5, 0.1).Apply(img)
	lap := NewLAP(8).Apply(img)
	// Measure edge contrast across the boundary columns.
	edge := func(t2 *tensor.Tensor) float64 {
		return t2.At(0, 8, size/2) - t2.At(0, 8, size/2-1)
	}
	if edge(bi) <= edge(lap) {
		t.Fatalf("bilateral edge %.3f not sharper than LAP %.3f", edge(bi), edge(lap))
	}
}

func TestBilateralRemovesSmallNoise(t *testing.T) {
	rng := mathx.NewRNG(1)
	base := tensor.Full(0.5, 1, 12, 12)
	noisy := base.Clone()
	for i := range noisy.Data() {
		noisy.Data()[i] = mathx.Clamp01(noisy.Data()[i] + rng.NormScaled(0, 0.03))
	}
	den := NewBilateral(2, 1.5, 0.2).Apply(noisy)
	before := tensor.Sub(noisy, base).L2Norm()
	after := tensor.Sub(den, base).L2Norm()
	if after >= before/2 {
		t.Fatalf("bilateral denoised %.4f -> %.4f, expected 2x reduction", before, after)
	}
}

func TestBilateralVJPGradientFlow(t *testing.T) {
	// The lazy Jacobian must at least distribute gradient mass without
	// inventing it: the VJP of an all-ones upstream sums to the upstream
	// total (weights are normalized).
	rng := mathx.NewRNG(2)
	x := tensor.RandU(rng, 0, 1, 1, 6, 6)
	u := tensor.Full(1, 1, 6, 6)
	g := NewBilateral(1, 1, 0.3).VJP(x, u)
	if !mathx.EqualWithin(g.Sum(), u.Sum(), 1e-9) {
		t.Fatalf("bilateral VJP total %v != upstream total %v", g.Sum(), u.Sum())
	}
	if g.Min() < 0 {
		t.Fatal("bilateral VJP produced negative redistribution for positive upstream")
	}
}

func TestBilateralValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero radius": func() { NewBilateral(0, 1, 1) },
		"zero space":  func() { NewBilateral(1, 0, 1) },
		"zero color":  func() { NewBilateral(1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			fn()
		}()
	}
}
