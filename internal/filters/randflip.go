package filters

import (
	"repro/internal/mathx"
	"repro/internal/tensor"
)

// RandFlip mirrors the image horizontally with probability P — the
// cheapest member of the random-transformation defense family. The
// flip decision is a pure function of (Seed, image), per the Stochastic
// contract.
//
// Its VJP is exact: a flip is a permutation, and a permutation's adjoint
// is the inverse permutation (the flip itself). The decision is
// recomputed from the forward input, so the backward pass mirrors the
// gradient exactly when the forward pass mirrored the image.
type RandFlip struct {
	// P is the flip probability in [0, 1].
	P float64
	// SeedVal is the base of the per-image decision stream.
	SeedVal uint64
}

// NewRandFlip constructs a random horizontal-flip defense.
func NewRandFlip(p float64, seed uint64) *RandFlip {
	if !(p >= 0 && p <= 1) {
		panic("filters: randflip probability outside [0, 1]")
	}
	return &RandFlip{P: p, SeedVal: seed}
}

// Name implements Filter: the canonical spec, e.g. "randflip(p=0.5,seed=1)".
func (f *RandFlip) Name() string { return specName("randflip", f.Params()) }

// Params implements Configurable.
func (f *RandFlip) Params() []Param {
	return []Param{
		floatParam("p", "horizontal flip probability in [0, 1]",
			&f.P, floatInRange(0, 1), nil),
		uintParam("seed", "base seed of the per-image decision stream", &f.SeedVal, nil),
	}
}

// Set implements Configurable.
func (f *RandFlip) Set(name, value string) error { return setParam(f.Params(), name, value) }

// Seed implements Stochastic.
func (f *RandFlip) Seed() uint64 { return f.SeedVal }

// WithSeed implements Stochastic.
func (f *RandFlip) WithSeed(seed uint64) Filter {
	c := *f
	c.SeedVal = seed
	return &c
}

// flips reports the (deterministic) flip decision for img.
func (f *RandFlip) flips(img *tensor.Tensor) bool {
	return mathx.NewRNG(ImageSeed(f.SeedVal, img)).Float64() < f.P
}

// Apply implements Filter.
func (f *RandFlip) Apply(img *tensor.Tensor) *tensor.Tensor {
	checkCHW(f.Name(), img)
	if !f.flips(img) {
		return img.Clone()
	}
	return flipH(img)
}

// ApplyBatch implements Filter via the serial fallback (a flip is a copy).
func (f *RandFlip) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor {
	return SerialBatch(f, imgs)
}

// VJP implements Filter: the exact adjoint — mirror the upstream
// gradient exactly when the forward pass mirrored x.
func (f *RandFlip) VJP(x, upstream *tensor.Tensor) *tensor.Tensor {
	if !f.flips(x) {
		return upstream.Clone()
	}
	return flipH(upstream)
}

// flipH mirrors a CHW tensor about its vertical axis.
func flipH(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	out := tensor.New(c, h, w)
	id, od := img.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			row := base + y*w
			for x := 0; x < w; x++ {
				od[row+x] = id[row+w-1-x]
			}
		}
	}
	return out
}
