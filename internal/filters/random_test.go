package filters

import (
	"encoding/json"
	"flag"
	"os"
	"sync"
	"testing"

	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// The randomized-defense determinism suite pins the Stochastic contract:
// a randomized filter's output is a pure function of (seed, image) —
// bit-identical across repeated calls, goroutines, worker counts and the
// batched path — while distinct seeds give genuinely different draws.

var updateGoldenRandom = flag.Bool("update-golden-random", false,
	"rewrite testdata/golden_random.json from the current implementations")

// randomizedSpecs are the canonical specs of every randomized filter
// plus a chain mixing stochastic and deterministic stages.
var randomizedSpecs = []string{
	"randjpeg(qmin=20,qmax=80,seed=1)",
	"randresize(lo=0.7,hi=0.95,seed=1)",
	"randflip(p=0.5,seed=1)",
	"randnoise(sigma=0.05,seed=1)",
	"chain(randnoise(sigma=0.03,seed=9),median(r=1),randflip(p=0.9,seed=4))",
}

func stochasticImages(t *testing.T) []*tensor.Tensor {
	t.Helper()
	rng := mathx.NewRNG(77)
	imgs := make([]*tensor.Tensor, 6)
	for i := range imgs {
		imgs[i] = tensor.RandU(rng, 0, 1, 3, 12, 12)
	}
	return imgs
}

// TestRandomizedRepeatDeterminism: the same instance applied to the same
// image any number of times yields bit-identical output.
func TestRandomizedRepeatDeterminism(t *testing.T) {
	imgs := stochasticImages(t)
	for _, spec := range randomizedSpecs {
		f, err := Parse(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		for i, img := range imgs {
			want := f.Apply(img)
			for rep := 0; rep < 3; rep++ {
				if !tensor.EqualWithin(f.Apply(img), want, 0) {
					t.Fatalf("%s: repeat %d on image %d diverged from the first application", spec, rep, i)
				}
			}
		}
	}
}

// TestRandomizedConcurrentDeterminism hammers one shared instance from
// many goroutines (run under -race) and requires every result to be
// bit-identical to the serial reference — the purity property that keeps
// batched serving deterministic.
func TestRandomizedConcurrentDeterminism(t *testing.T) {
	imgs := stochasticImages(t)
	for _, spec := range randomizedSpecs {
		f, err := Parse(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		want := make([]*tensor.Tensor, len(imgs))
		for i, img := range imgs {
			want[i] = f.Apply(img)
		}
		var wg sync.WaitGroup
		errs := make(chan string, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i, img := range imgs {
					if !tensor.EqualWithin(f.Apply(img), want[i], 0) {
						errs <- spec
						return
					}
					_ = g
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for bad := range errs {
			t.Fatalf("%s: concurrent application diverged from the serial reference", bad)
		}
	}
}

// TestRandomizedBatchDeterminism: ApplyBatch must equal per-image Apply
// bit-for-bit at several pool widths (the parallel fan-out must not
// perturb any filter's draw streams).
func TestRandomizedBatchDeterminism(t *testing.T) {
	imgs := stochasticImages(t)
	for _, workers := range []int{1, 2, 8} {
		old := parallel.Workers()
		parallel.SetWorkers(workers)
		for _, spec := range randomizedSpecs {
			f, err := Parse(spec)
			if err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
			got := f.ApplyBatch(imgs)
			for i, img := range imgs {
				if !tensor.EqualWithin(got[i], f.Apply(img), 0) {
					t.Errorf("%s (workers=%d): ApplyBatch[%d] != Apply", spec, workers, i)
				}
			}
		}
		parallel.SetWorkers(old)
	}
}

// TestRandomizedSeedsDiffer: distinct seeds must produce genuinely
// different draws (otherwise EOT averaging would be a no-op), and
// WithSeed must never mutate the receiver.
func TestRandomizedSeedsDiffer(t *testing.T) {
	img := stochasticImages(t)[0]
	for _, spec := range randomizedSpecs[:4] {
		f, err := Parse(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		st, ok := f.(Stochastic)
		if !ok {
			t.Fatalf("%s: registry filter does not implement Stochastic", spec)
		}
		if !IsStochastic(f) {
			t.Fatalf("%s: IsStochastic = false", spec)
		}
		baseName := f.Name()
		baseOut := f.Apply(img)
		differs := false
		for seed := uint64(2); seed < 12; seed++ {
			if !tensor.EqualWithin(st.WithSeed(seed).Apply(img), baseOut, 0) {
				differs = true
				break
			}
		}
		if !differs {
			t.Errorf("%s: ten distinct seeds all reproduced the base draw", spec)
		}
		if f.Name() != baseName {
			t.Errorf("%s: WithSeed mutated the receiver (name now %s)", spec, f.Name())
		}
		if !tensor.EqualWithin(f.Apply(img), baseOut, 0) {
			t.Errorf("%s: WithSeed mutated the receiver's draws", spec)
		}
	}
}

// TestReseedChain: Reseed must re-seed every stochastic stage of a chain
// (changing its output), leave deterministic filters untouched, and
// never modify its input.
func TestReseedChain(t *testing.T) {
	img := stochasticImages(t)[0]
	chain, err := Parse("chain(randnoise(sigma=0.05,seed=1),median(r=1))")
	if err != nil {
		t.Fatal(err)
	}
	base := chain.Apply(img)
	reseeded := Reseed(chain, 12345)
	if tensor.EqualWithin(reseeded.Apply(img), base, 0) {
		t.Error("Reseed(chain) reproduced the original draw")
	}
	if !tensor.EqualWithin(chain.Apply(img), base, 0) {
		t.Error("Reseed mutated the original chain")
	}
	// Reseed with the same seed is deterministic.
	if !tensor.EqualWithin(Reseed(chain, 12345).Apply(img), reseeded.Apply(img), 0) {
		t.Error("Reseed is not a pure function of (filter, seed)")
	}
	// A deterministic filter passes through unchanged (same instance).
	med := NewMedian(1)
	if Reseed(med, 99) != Filter(med) {
		t.Error("Reseed rebuilt a deterministic filter")
	}
	if IsStochastic(med) {
		t.Error("IsStochastic(median) = true")
	}
}

// TestDrawSeedDecorrelates: consecutive draw indices and distinct bases
// must map to distinct seeds.
func TestDrawSeedDecorrelates(t *testing.T) {
	seen := map[uint64]bool{}
	for base := uint64(0); base < 4; base++ {
		for draw := 0; draw < 64; draw++ {
			s := DrawSeed(base, draw)
			if seen[s] {
				t.Fatalf("DrawSeed collision at base=%d draw=%d", base, draw)
			}
			seen[s] = true
		}
	}
}

// TestRandResizeAdjoint verifies the exact-VJP claim for randresize with
// the adjoint identity <A d, u> = <d, Aᵀ u>: for the linear map A the
// forward draw realizes, the VJP must be its exact transpose. (Finite
// differences would be invalid here — perturbing the input flips the
// draw — so the identity is checked against the fixed realized draw.)
func TestRandResizeAdjoint(t *testing.T) {
	rng := mathx.NewRNG(5)
	r := NewRandResize(0.6, 0.9, 3)
	for trial := 0; trial < 4; trial++ {
		x := tensor.RandU(rng, 0, 1, 2, 9, 11)
		u := tensor.RandN(rng, 2, 9, 11)
		d := tensor.RandN(rng, 2, 9, 11)
		// <A d, u> with A fixed at x's draw: resize d through x's draw.
		c, h, w := 2, 9, 11
		dr := r.draw(x, h, w)
		ad := applyResizeDraw(d, c, h, w, dr)
		lhs := dot(ad.Data(), u.Data())
		rhs := dot(d.Data(), r.VJP(x, u).Data())
		if diff := lhs - rhs; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: adjoint identity violated: <Ad,u>=%g, <d,Aᵀu>=%g", trial, lhs, rhs)
		}
	}
}

// applyResizeDraw runs the forward resize-and-pad for a fixed draw
// (mirroring RandResize.Apply without re-drawing).
func applyResizeDraw(img *tensor.Tensor, c, h, w int, d resizeDraw) *tensor.Tensor {
	out := tensor.New(c, h, w)
	if d.sh == h && d.sw == w {
		copy(out.Data(), img.Data())
		return out
	}
	rows := lerpTaps(h, d.sh)
	cols := lerpTaps(w, d.sw)
	id, od := img.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < d.sh; y++ {
			ry := rows[y]
			orow := base + (d.dy+y)*w + d.dx
			for x := 0; x < d.sw; x++ {
				cx := cols[x]
				od[orow+x] = ry.w0*(cx.w0*id[base+ry.i0*w+cx.i0]+cx.w1*id[base+ry.i0*w+cx.i1]) +
					ry.w1*(cx.w0*id[base+ry.i1*w+cx.i0]+cx.w1*id[base+ry.i1*w+cx.i1])
			}
		}
	}
	return out
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// TestRandFlipAdjoint: the flip VJP must mirror the upstream gradient
// exactly when (and only when) the forward pass mirrored the input.
func TestRandFlipAdjoint(t *testing.T) {
	rng := mathx.NewRNG(6)
	f := NewRandFlip(0.5, 2)
	flipped, kept := 0, 0
	for trial := 0; trial < 12; trial++ {
		x := tensor.RandU(rng, 0, 1, 3, 7, 8)
		u := tensor.RandN(rng, 3, 7, 8)
		got := f.VJP(x, u)
		if f.flips(x) {
			flipped++
			if !tensor.EqualWithin(got, flipH(u), 0) {
				t.Fatal("flipped forward: VJP did not mirror upstream")
			}
		} else {
			kept++
			if !tensor.EqualWithin(got, u, 0) {
				t.Fatal("unflipped forward: VJP altered upstream")
			}
		}
	}
	if flipped == 0 || kept == 0 {
		t.Fatalf("p=0.5 over 12 trials hit only one branch (flipped=%d kept=%d); choose a different test seed", flipped, kept)
	}
}

// TestRandomizedSpecErrors is the malformed-spec table: cross-parameter
// violations and out-of-range values must surface as Parse errors, never
// as panics or silent clamps.
func TestRandomizedSpecErrors(t *testing.T) {
	bad := []string{
		"randjpeg(qmin=80,qmax=20)",
		"randjpeg(qmin=0,qmax=50)",
		"randjpeg(qmax=101)",
		"randjpeg(seed=-1)",
		"randjpeg(seed=1.5)",
		"randresize(lo=0.9,hi=0.5)",
		"randresize(lo=0)",
		"randresize(hi=1.5)",
		"randflip(p=1.5)",
		"randflip(p=-0.1)",
		"randnoise(sigma=0)",
		"randnoise(sigma=-1)",
		"randnoise(sigma=abc)",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}
	// The corresponding valid boundary specs must still parse and
	// round-trip through the canonical name.
	good := []string{
		"randjpeg(qmin=1,qmax=1,seed=0)",
		"randresize(lo=0.5,hi=0.5,seed=3)",
		"randflip(p=0,seed=2)",
		"randflip(p=1,seed=2)",
	}
	for _, spec := range good {
		f, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if _, err := Parse(f.Name()); err != nil {
			t.Errorf("Parse(%q).Name()=%q does not re-parse: %v", spec, f.Name(), err)
		}
	}
}

// TestGoldenRandom pins the randomized filters' exact bits: the draw
// streams (block qualities, scales, offsets, flip decisions, noise) are
// part of the determinism contract, so any change to the hashing, RNG or
// traversal order is a breaking change this fixture catches. Regenerate
// deliberately with -update-golden-random.
func TestGoldenRandom(t *testing.T) {
	rng := mathx.NewRNG(41)
	img := tensor.RandU(rng, 0, 1, 3, 16, 16)
	up := tensor.RandN(rng, 3, 16, 16)
	const path = "testdata/golden_random.json"
	if *updateGoldenRandom {
		g := goldenFilterFile{Shape: img.Shape(), Input: img.Data(), Upstream: up.Data()}
		for _, spec := range randomizedSpecs {
			f, err := Parse(spec)
			if err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
			g.Cases = append(g.Cases, goldenFilterCase{
				Spec:   spec,
				Output: f.Apply(img).Data(),
				VJP:    f.VJP(img, up).Data(),
			})
		}
		data, err := json.MarshalIndent(g, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cases", path, len(g.Cases))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden fixture missing (generate with -update-golden-random): %v", err)
	}
	var g goldenFilterFile
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatalf("golden fixture corrupt: %v", err)
	}
	in := tensor.FromSlice(g.Input, g.Shape...)
	upstream := tensor.FromSlice(g.Upstream, g.Shape...)
	for _, c := range g.Cases {
		f, err := Parse(c.Spec)
		if err != nil {
			t.Errorf("golden spec %q no longer parses: %v", c.Spec, err)
			continue
		}
		if got := f.Apply(in).Data(); !bitIdentical(got, c.Output) {
			t.Errorf("%s: Apply diverged from the golden draw stream", c.Spec)
		}
		if got := f.VJP(in, upstream).Data(); !bitIdentical(got, c.VJP) {
			t.Errorf("%s: VJP diverged from the golden fixture", c.Spec)
		}
	}
}
