// Package filters implements the pre-processing noise filters at the heart
// of the FAdeML paper: LAP (local average over the np nearest neighbour
// pixels, np ∈ {4, 8, 16, 32, 64}) and LAR (local average over the
// Euclidean disk of radius r ∈ {1..5}), plus Gaussian blur and a median
// filter as library extensions.
//
// Every filter exposes Apply (the forward pass the inference pipeline runs)
// and VJP — the vector-Jacobian product that backpropagates a gradient
// through the filter. VJP is what makes the FAdeML attack possible: the
// attacker folds the filter into the differentiable pipeline and optimizes
// the perturbation through it. For the linear average filters the VJP is
// the exact adjoint; for the non-differentiable median filter it is the
// BPDA identity approximation (Athalye et al.'s "backward pass
// differentiable approximation"), documented on the type.
package filters

import (
	"fmt"

	"repro/internal/tensor"
)

// Filter is one pre-processing stage operating on CHW image tensors.
type Filter interface {
	// Name returns a short identifier such as "LAP(32)" or "LAR(3)".
	Name() string
	// Apply returns the filtered image as a new tensor (input unchanged).
	Apply(img *tensor.Tensor) *tensor.Tensor
	// VJP returns dLoss/dInput given x (the filter input at which the
	// Jacobian is taken) and upstream = dLoss/dOutput. Linear filters
	// ignore x.
	VJP(x, upstream *tensor.Tensor) *tensor.Tensor
}

// Identity is the no-op filter used for "No Filter" baselines.
type Identity struct{}

// Name implements Filter.
func (Identity) Name() string { return "none" }

// Apply implements Filter.
func (Identity) Apply(img *tensor.Tensor) *tensor.Tensor { return img.Clone() }

// VJP implements Filter.
func (Identity) VJP(_, upstream *tensor.Tensor) *tensor.Tensor { return upstream.Clone() }

// Chain composes filters in application order: Chain{a, b} computes
// b(a(x)). Its VJP replays the forward pass to evaluate each stage's
// Jacobian at the correct intermediate input.
type Chain []Filter

// Name implements Filter.
func (c Chain) Name() string {
	if len(c) == 0 {
		return "none"
	}
	s := c[0].Name()
	for _, f := range c[1:] {
		s += "→" + f.Name()
	}
	return s
}

// Apply implements Filter.
func (c Chain) Apply(img *tensor.Tensor) *tensor.Tensor {
	out := img
	for _, f := range c {
		out = f.Apply(out)
	}
	if out == img {
		out = img.Clone()
	}
	return out
}

// VJP implements Filter.
func (c Chain) VJP(x, upstream *tensor.Tensor) *tensor.Tensor {
	if len(c) == 0 {
		return upstream.Clone()
	}
	// Forward replay to collect each stage's input.
	inputs := make([]*tensor.Tensor, len(c))
	cur := x
	for i, f := range c {
		inputs[i] = cur
		cur = f.Apply(cur)
	}
	g := upstream
	for i := len(c) - 1; i >= 0; i-- {
		g = c[i].VJP(inputs[i], g)
	}
	return g
}

func checkCHW(op string, img *tensor.Tensor) (c, h, w int) {
	if img.Dims() != 3 {
		panic(fmt.Sprintf("filters: %s wants a CHW tensor, got shape %v", op, img.Shape()))
	}
	return img.Dim(0), img.Dim(1), img.Dim(2)
}
