// Package filters implements the pre-processing noise-filter defenses at
// the heart of the FAdeML paper — LAP (local average over the np nearest
// neighbour pixels, np ∈ {4, 8, 16, 32, 64}) and LAR (local average over
// the Euclidean disk of radius r ∈ {1..5}) — plus the classical defense
// library grown around them: Gaussian, median, box and bilateral
// smoothing, the Section I-C pre-processing stages (grayscale,
// normalization, histogram equalization), and the classic adversarial-
// defense transforms JPEG-like DCT quantization, bit-depth squeezing,
// total-variation denoising and non-local means.
//
// Every filter exposes Apply (the forward pass the inference pipeline
// runs), ApplyBatch (the batched form the serving layer and the
// experiment engine drive; bit-identical to per-image Apply) and VJP —
// the vector-Jacobian product that backpropagates a gradient through the
// filter. VJP is what makes the FAdeML attack possible: the attacker
// folds the filter into the differentiable pipeline and optimizes the
// perturbation through it. Linear filters use the exact adjoint;
// non-differentiable ones use the BPDA straight-through approximation
// (Athalye et al.), documented per type and in FILTERS.md.
//
// Filters are declarative: Parse("median(r=2)") builds a configured
// instance, Name() renders the canonical round-trippable spec, and
// chains compose as "chain(median(r=1),histeq(bins=64))" — the same
// syntax the -filter CLI flags and the serving API accept. See
// FILTERS.md for the full reference.
package filters

import (
	"fmt"

	"repro/internal/tensor"
)

// Filter is one pre-processing stage operating on CHW image tensors.
type Filter interface {
	// Name returns the canonical spec of the filter, such as
	// "lap(np=32)" or "chain(median(r=1),histeq(bins=64))" — for every
	// registry filter, Parse(Name()) reconstructs an identically
	// configured instance.
	Name() string
	// Apply returns the filtered image as a new tensor (input unchanged).
	Apply(img *tensor.Tensor) *tensor.Tensor
	// ApplyBatch filters every image, returning one new tensor per input
	// with out[i] bit-identical to Apply(imgs[i]). Implementations with a
	// dedicated batched path fan out over the internal/parallel pool;
	// SerialBatch is the loop fallback.
	ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor
	// VJP returns dLoss/dInput given x (the filter input at which the
	// Jacobian is taken) and upstream = dLoss/dOutput. Linear filters
	// ignore x.
	VJP(x, upstream *tensor.Tensor) *tensor.Tensor
}

// Identity is the no-op filter used for "No Filter" baselines.
type Identity struct{}

// Name implements Filter.
func (Identity) Name() string { return "none" }

// Apply implements Filter.
func (Identity) Apply(img *tensor.Tensor) *tensor.Tensor { return img.Clone() }

// ApplyBatch implements Filter.
func (f Identity) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor { return SerialBatch(f, imgs) }

// VJP implements Filter.
func (Identity) VJP(_, upstream *tensor.Tensor) *tensor.Tensor { return upstream.Clone() }

// Chain composes filters in application order: Chain{a, b} computes
// b(a(x)). Its VJP replays the forward pass to evaluate each stage's
// Jacobian at the correct intermediate input.
type Chain []Filter

// Name implements Filter: the canonical "chain(a,b,...)" spec (or "none"
// for an empty chain), round-trippable through Parse when every stage is.
func (c Chain) Name() string {
	if len(c) == 0 {
		return "none"
	}
	s := "chain(" + c[0].Name()
	for _, f := range c[1:] {
		s += "," + f.Name()
	}
	return s + ")"
}

// Apply implements Filter.
func (c Chain) Apply(img *tensor.Tensor) *tensor.Tensor {
	out := img
	for _, f := range c {
		out = f.Apply(out)
	}
	if out == img {
		out = img.Clone()
	}
	return out
}

// ApplyBatch implements Filter stage-wise: each stage filters the whole
// batch before the next begins, so every stage's own batched path is
// used. Results are bit-identical to per-image Apply.
func (c Chain) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor {
	if len(c) == 0 {
		return SerialBatch(Identity{}, imgs)
	}
	out := imgs
	for _, f := range c {
		out = f.ApplyBatch(out)
	}
	return out
}

// VJP implements Filter.
func (c Chain) VJP(x, upstream *tensor.Tensor) *tensor.Tensor {
	if len(c) == 0 {
		return upstream.Clone()
	}
	// Forward replay to collect each stage's input.
	inputs := make([]*tensor.Tensor, len(c))
	cur := x
	for i, f := range c {
		inputs[i] = cur
		cur = f.Apply(cur)
	}
	g := upstream
	for i := len(c) - 1; i >= 0; i-- {
		g = c[i].VJP(inputs[i], g)
	}
	return g
}

func checkCHW(op string, img *tensor.Tensor) (c, h, w int) {
	if img.Dims() != 3 {
		panic(fmt.Sprintf("filters: %s wants a CHW tensor, got shape %v", op, img.Shape()))
	}
	return img.Dim(0), img.Dim(1), img.Dim(2)
}
