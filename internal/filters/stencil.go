package filters

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/tensor"
)

// offset is a relative pixel coordinate of a stencil tap.
type offset struct{ dy, dx int }

// stencil is a linear filter defined by a set of tap offsets and weights,
// applied per channel with replicate ("clamp to edge") border handling.
// LAP, LAR and Gaussian blur are all stencils; only the taps differ.
type stencil struct {
	name    string
	offsets []offset
	weights []float64

	// taps caches the border-clamped tap index table per image size so the
	// hot Apply/VJP loops don't recompute clamps per pixel. Keyed by
	// packed (h<<32 | w); values are []int32 of length h·w·len(offsets)
	// where entry (y·w+x)·taps+k is the clamped flat index sy·w+sx of tap
	// k at pixel (y, x). sync.Map because filters are shared across the
	// parallel sweep workers.
	taps sync.Map
}

func newStencil(name string, offsets []offset, weights []float64) *stencil {
	if len(offsets) == 0 || len(offsets) != len(weights) {
		panic(fmt.Sprintf("filters: stencil %s has %d offsets and %d weights", name, len(offsets), len(weights)))
	}
	return &stencil{name: name, offsets: offsets, weights: weights}
}

// Name implements Filter.
func (s *stencil) Name() string { return s.name }

// Taps returns the number of stencil taps.
func (s *stencil) Taps() int { return len(s.offsets) }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// tapTable returns (building and caching on first use) the clamped tap
// index table for an h×w image. The computation is idempotent, so a rare
// duplicate build under concurrent first use is harmless.
func (s *stencil) tapTable(h, w int) []int32 {
	key := uint64(h)<<32 | uint64(uint32(w))
	if tab, ok := s.taps.Load(key); ok {
		return tab.([]int32)
	}
	taps := len(s.offsets)
	tab := make([]int32, h*w*taps)
	i := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for _, o := range s.offsets {
				sy := clampInt(y+o.dy, 0, h-1)
				sx := clampInt(x+o.dx, 0, w-1)
				tab[i] = int32(sy*w + sx)
				i++
			}
		}
	}
	actual, _ := s.taps.LoadOrStore(key, tab)
	return actual.([]int32)
}

// Apply implements Filter: out[p] = Σ_k w_k · in[clamp(p + o_k)].
func (s *stencil) Apply(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW(s.name, img)
	out := tensor.New(c, h, w)
	id, od := img.Data(), out.Data()
	tab := s.tapTable(h, w)
	taps := len(s.offsets)
	ws := s.weights
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		plane := id[base : base+h*w]
		for p := 0; p < h*w; p++ {
			idx := tab[p*taps : (p+1)*taps]
			acc := 0.0
			for k, j := range idx {
				acc += ws[k] * plane[j]
			}
			od[base+p] = acc
		}
	}
	return out
}

// ApplyBatch implements Filter with one task per image over the
// internal/parallel pool. The tap table is built (and cached) once up
// front so concurrent workers never race to construct it.
func (s *stencil) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor {
	if len(imgs) > 1 {
		_, h, w := checkCHW(s.name, imgs[0])
		s.tapTable(h, w)
	}
	return parallelBatch(s, imgs)
}

// VJP implements Filter. The stencil is linear, so the VJP is the exact
// adjoint: each output pixel scatters its upstream gradient back to the
// (border-clamped) input pixels it read, with the same weights.
func (s *stencil) VJP(_, upstream *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW(s.name+" VJP", upstream)
	out := tensor.New(c, h, w)
	ud, od := upstream.Data(), out.Data()
	tab := s.tapTable(h, w)
	taps := len(s.offsets)
	ws := s.weights
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		plane := od[base : base+h*w]
		for p := 0; p < h*w; p++ {
			u := ud[base+p]
			if u == 0 {
				continue
			}
			idx := tab[p*taps : (p+1)*taps]
			for k, j := range idx {
				plane[j] += ws[k] * u
			}
		}
	}
	return out
}

// sortedNeighborhood returns all offsets within maxRadius (excluding the
// center), ordered by Euclidean distance with deterministic tie-breaking
// (distance, then dy, then dx).
func sortedNeighborhood(maxRadius int) []offset {
	var offs []offset
	for dy := -maxRadius; dy <= maxRadius; dy++ {
		for dx := -maxRadius; dx <= maxRadius; dx++ {
			if dy == 0 && dx == 0 {
				continue
			}
			if dy*dy+dx*dx <= maxRadius*maxRadius {
				offs = append(offs, offset{dy, dx})
			}
		}
	}
	sort.Slice(offs, func(a, b int) bool {
		da := offs[a].dy*offs[a].dy + offs[a].dx*offs[a].dx
		db := offs[b].dy*offs[b].dy + offs[b].dx*offs[b].dx
		if da != db {
			return da < db
		}
		if offs[a].dy != offs[b].dy {
			return offs[a].dy < offs[b].dy
		}
		return offs[a].dx < offs[b].dx
	})
	return offs
}

// uniformWeights returns n weights of 1/n.
func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return w
}

// diskOffsets returns every offset (including the center) with Euclidean
// distance at most r from the origin.
func diskOffsets(r int) []offset {
	var offs []offset
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dy*dy+dx*dx <= r*r {
				offs = append(offs, offset{dy, dx})
			}
		}
	}
	return offs
}

// gaussianOffsets returns taps within ±3σ with normalized Gaussian weights.
func gaussianOffsets(sigma float64) ([]offset, []float64) {
	r := int(math.Ceil(3 * sigma))
	if r < 1 {
		r = 1
	}
	var offs []offset
	var ws []float64
	sum := 0.0
	inv2s2 := 1 / (2 * sigma * sigma)
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			w := math.Exp(-float64(dy*dy+dx*dx) * inv2s2)
			offs = append(offs, offset{dy, dx})
			ws = append(ws, w)
			sum += w
		}
	}
	for i := range ws {
		ws[i] /= sum
	}
	return offs, ws
}
