package filters

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary spec strings at the filter parser. The
// contract under fuzz: Parse never panics, and every accepted spec
// round-trips through the canonical name — Parse(f.Name()) succeeds and
// reproduces the same name. Run longer with:
//
//	go test ./internal/filters -fuzz FuzzParse -fuzztime 30s
func FuzzParse(f *testing.F) {
	// Seed corpus: every registry filter, bare and with its canonical
	// default-parameter name, plus chains, legacy forms and near-misses.
	for _, name := range Names() {
		f.Add(name)
		if flt, err := New(name); err == nil {
			f.Add(flt.Name())
		}
	}
	f.Add("chain(median(r=1),lap(np=8))")
	f.Add("chain(randnoise(sigma=0.03,seed=9),median(r=1),randflip(p=0.9,seed=4))")
	f.Add("randjpeg(qmin=20,qmax=80,seed=1)")
	f.Add("randresize(lo=0.7,hi=0.95,seed=1)")
	f.Add("LAP:32")
	f.Add("MEDIAN:1")
	f.Add("none")
	f.Add("")
	f.Add("median(r=0)")
	f.Add("randjpeg(qmin=80,qmax=20)")
	f.Add("chain()")
	f.Add("median(r=1")
	f.Add("(((((")

	f.Fuzz(func(t *testing.T, spec string) {
		flt, err := Parse(spec)
		if err != nil || flt == nil {
			return // rejected specs and nil (none) are fine; only panics fail
		}
		name := flt.Name()
		again, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q) accepted, but canonical name %q does not re-parse: %v", spec, name, err)
		}
		if again == nil {
			t.Fatalf("Parse(%q): canonical name %q re-parsed to nil", spec, name)
		}
		if again.Name() != name {
			t.Fatalf("Parse(%q): name round-trip unstable: %q -> %q", spec, name, again.Name())
		}
		// Canonical names never rely on the legacy KIND:PARAM grammar.
		if strings.ContainsRune(name, ':') {
			t.Fatalf("Parse(%q): canonical name %q uses legacy syntax", spec, name)
		}
	})
}
