package filters

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// Median is a square-window median filter, the classic non-linear
// smoothing defense. It is not differentiable, so its VJP uses the BPDA
// identity approximation (treat the filter as identity on the backward
// pass), which is how filter-aware attacks handle non-differentiable
// pre-processing in practice.
type Median struct {
	// Radius is the window half-width; the window is (2·Radius+1)².
	Radius int
}

// NewMedian constructs a median filter with the given window radius.
func NewMedian(radius int) *Median {
	if radius <= 0 {
		panic(fmt.Sprintf("filters: median radius %d must be positive", radius))
	}
	return &Median{Radius: radius}
}

// Name implements Filter: the canonical spec, e.g. "median(r=1)".
func (m *Median) Name() string { return specName("median", m.Params()) }

// Apply implements Filter with replicate border handling.
func (m *Median) Apply(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW(m.Name(), img)
	out := tensor.New(c, h, w)
	id, od := img.Data(), out.Data()
	side := 2*m.Radius + 1
	window := make([]float64, 0, side*side)
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				window = window[:0]
				for dy := -m.Radius; dy <= m.Radius; dy++ {
					sy := clampInt(y+dy, 0, h-1)
					for dx := -m.Radius; dx <= m.Radius; dx++ {
						sx := clampInt(x+dx, 0, w-1)
						window = append(window, id[base+sy*w+sx])
					}
				}
				sort.Float64s(window)
				od[base+y*w+x] = window[len(window)/2]
			}
		}
	}
	return out
}

// ApplyBatch implements Filter with one task per image over the
// internal/parallel pool (the sort-per-pixel forward is the most
// expensive classical filter in the library).
func (m *Median) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor {
	return parallelBatch(m, imgs)
}

// VJP implements Filter using the BPDA identity: the upstream gradient is
// passed through unchanged. This is an approximation (the true median
// Jacobian is a sparse selection matrix), adequate for attack optimization
// and standard practice for non-differentiable pre-processing.
func (m *Median) VJP(_, upstream *tensor.Tensor) *tensor.Tensor {
	return upstream.Clone()
}

// Params implements Configurable.
func (m *Median) Params() []Param {
	return []Param{
		intParam("r", "window half-width in pixels; the window is (2r+1)²",
			&m.Radius, intAtLeast(1), nil),
	}
}

// Set implements Configurable.
func (m *Median) Set(name, value string) error { return setParam(m.Params(), name, value) }
