package filters

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// Tests for the four Defense API v2 transforms: JPEG-like DCT
// quantization, bit-depth squeezing, TV denoising and non-local means.

// fdCheck compares f.VJP against central finite differences of the
// scalar functional L(x) = ⟨f(x), probe⟩ at a handful of pixels.
func fdCheck(t *testing.T, f Filter, x, probe *tensor.Tensor, idxs []int, tol float64) {
	t.Helper()
	grad := f.VJP(x, probe)
	const h = 1e-6
	for _, i := range idxs {
		d := x.Data()
		orig := d[i]
		d[i] = orig + h
		lp := tensor.Dot(f.Apply(x), probe)
		d[i] = orig - h
		lm := tensor.Dot(f.Apply(x), probe)
		d[i] = orig
		numeric := (lp - lm) / (2 * h)
		if !mathx.EqualWithin(grad.Data()[i], numeric, tol) {
			t.Errorf("%s VJP[%d] = %v, finite diff %v", f.Name(), i, grad.Data()[i], numeric)
		}
	}
}

// TestTVVJPMatchesFiniteDifference pins the headline property of the TV
// implementation: the unrolled reverse-mode VJP is EXACT, so it must
// match finite differences of the full nonlinear forward pass.
func TestTVVJPMatchesFiniteDifference(t *testing.T) {
	rng := mathx.NewRNG(41)
	x := tensor.RandU(rng, 0.2, 0.8, 1, 6, 6)
	probe := tensor.RandN(rng, 1, 6, 6)
	for _, f := range []Filter{NewTVDenoise(0.15, 5), NewTVDenoise(0.4, 12)} {
		fdCheck(t, f, x, probe, []int{0, 5, 14, 21, 35}, 1e-4)
	}
}

// TestNLMVJPMatchesFiniteDifference pins that the NLM VJP carries the
// weight-derivative term: the exponential weights are smooth in the
// input, so the exact VJP must match finite differences.
func TestNLMVJPMatchesFiniteDifference(t *testing.T) {
	rng := mathx.NewRNG(42)
	x := tensor.RandU(rng, 0.2, 0.8, 1, 6, 6)
	probe := tensor.RandN(rng, 1, 6, 6)
	for _, f := range []Filter{NewNLM(0.2, 1, 2), NewNLM(0.35, 0, 2)} {
		fdCheck(t, f, x, probe, []int{0, 7, 14, 22, 35}, 1e-4)
	}
}

// TestQuantizerVJPSemantics pins the BPDA straight-through contract for
// the two piecewise-constant defenses: the TRUE derivative is zero
// almost everywhere (finite differences at generic points see a locally
// constant function), which is exactly why the VJP passes the upstream
// gradient through unchanged instead.
func TestQuantizerVJPSemantics(t *testing.T) {
	rng := mathx.NewRNG(43)
	x := tensor.RandU(rng, 0.1, 0.9, 1, 8, 8)
	u := tensor.RandN(rng, 1, 8, 8)
	for _, f := range []Filter{NewJPEG(50), NewBitDepth(4)} {
		// Straight-through identity on the backward pass.
		if !tensor.EqualWithin(f.VJP(x, u), u, 0) {
			t.Errorf("%s: VJP is not the straight-through identity", f.Name())
		}
		// Piecewise-constant forward: a sub-quantization-step finite
		// difference does not move the output at a generic point.
		base := f.Apply(x)
		d := x.Data()
		orig := d[17]
		d[17] = orig + 1e-9
		moved := f.Apply(x)
		d[17] = orig
		if !tensor.EqualWithin(base, moved, 0) {
			t.Errorf("%s: output moved under a 1e-9 perturbation; not piecewise constant?", f.Name())
		}
	}
}

func TestBitDepthKnownValues(t *testing.T) {
	img := tensor.FromSlice([]float64{0, 0.1, 0.49, 0.51, 0.9, 1}, 1, 2, 3)
	out := NewBitDepth(1).Apply(img) // two levels: 0 and 1
	want := []float64{0, 0, 0, 1, 1, 1}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Errorf("bitdepth(1)[%d] = %v, want %v", i, v, want[i])
		}
	}
	// 8-bit squeeze on exact 8-bit values is the identity.
	img2 := tensor.FromSlice([]float64{0, 1.0 / 255, 128.0 / 255, 1}, 1, 2, 2)
	if !tensor.EqualWithin(NewBitDepth(8).Apply(img2), img2, 1e-12) {
		t.Error("bitdepth(8) moved exact 8-bit values")
	}
}

func TestJPEGConstantBlockSurvives(t *testing.T) {
	// The DC coefficient of a constant block is preserved up to one
	// quantization step, so a flat image must come back close to itself.
	img := tensor.Full(0.5, 3, 16, 16)
	out := NewJPEG(50).Apply(img)
	if !tensor.EqualWithin(out, img, 0.05) {
		t.Fatalf("jpeg(50) distorted a constant image by more than one quant step")
	}
}

func TestJPEGRemovesHighFrequencyNoise(t *testing.T) {
	rng := mathx.NewRNG(44)
	clean := tensor.Full(0.5, 1, 16, 16)
	noisy := clean.Clone()
	for i := range noisy.Data() {
		noisy.Data()[i] = mathx.Clamp01(noisy.Data()[i] + rng.NormScaled(0, 0.04))
	}
	before := tensor.Sub(noisy, clean).L2Norm()
	after := tensor.Sub(NewJPEG(10).Apply(noisy), clean).L2Norm()
	if after >= before/2 {
		t.Fatalf("jpeg(10) barely denoised: %v -> %v", before, after)
	}
}

func TestJPEGQualityOrdersDistortion(t *testing.T) {
	rng := mathx.NewRNG(45)
	img := tensor.RandU(rng, 0, 1, 1, 16, 16)
	d10 := tensor.Sub(NewJPEG(10).Apply(img), img).L2Norm()
	d90 := tensor.Sub(NewJPEG(90).Apply(img), img).L2Norm()
	if d10 <= d90 {
		t.Fatalf("quality 10 distortion %v not above quality 90 %v", d10, d90)
	}
}

func TestTVReducesNoiseKeepsRange(t *testing.T) {
	rng := mathx.NewRNG(46)
	img := tensor.RandU(rng, 0, 1, 1, 16, 16)
	out := NewTVDenoise(0.3, 20).Apply(img)
	if v := mathx.Variance(out.Data()); v >= mathx.Variance(img.Data()) {
		t.Fatalf("tv did not reduce variance: %v", v)
	}
	if out.Min() < -1e-9 || out.Max() > 1+1e-9 {
		t.Fatalf("tv escaped [0,1]: [%v, %v]", out.Min(), out.Max())
	}
}

func TestTVPreservesEdgesBetterThanBox(t *testing.T) {
	// A hard vertical edge: TV's edge-aware diffusion must keep it
	// sharper than a plain box average of comparable smoothing.
	size := 12
	img := tensor.New(1, size, size)
	for y := 0; y < size; y++ {
		for x := size / 2; x < size; x++ {
			img.Set(1, 0, y, x)
		}
	}
	tv := NewTVDenoise(0.3, 20).Apply(img)
	box := NewBox(1).Apply(img)
	mid := size / 2
	tvJump := tv.At(0, 5, mid) - tv.At(0, 5, mid-1)
	boxJump := box.At(0, 5, mid) - box.At(0, 5, mid-1)
	if tvJump <= boxJump {
		t.Fatalf("tv edge jump %v not above box %v", tvJump, boxJump)
	}
}

func TestNLMStaysInConvexHull(t *testing.T) {
	// NLM output is a convex combination of input pixels, so it can
	// never escape the input range (maximum principle).
	rng := mathx.NewRNG(47)
	img := tensor.RandU(rng, 0.3, 0.7, 3, 8, 8)
	out := NewNLM(0.1, 1, 3).Apply(img)
	if out.Min() < img.Min()-1e-12 || out.Max() > img.Max()+1e-12 {
		t.Fatalf("nlm escaped the input hull: [%v, %v] vs [%v, %v]",
			out.Min(), out.Max(), img.Min(), img.Max())
	}
}

func TestNLMDenoisesSelfSimilarStructure(t *testing.T) {
	// A periodic stripe pattern plus noise: NLM averages self-similar
	// patches across the image, beating the purely local LAP at equal
	// support.
	rng := mathx.NewRNG(48)
	size := 16
	clean := tensor.New(1, size, size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			clean.Set(0.25+0.5*float64((x/2)%2), 0, y, x)
		}
	}
	noisy := clean.Clone()
	for i := range noisy.Data() {
		noisy.Data()[i] = mathx.Clamp01(noisy.Data()[i] + rng.NormScaled(0, 0.05))
	}
	before := tensor.Sub(noisy, clean).L2Norm()
	after := tensor.Sub(NewNLM(0.15, 1, 4).Apply(noisy), clean).L2Norm()
	if after >= before {
		t.Fatalf("nlm did not denoise: %v -> %v", before, after)
	}
}

func TestDefenseConstructorValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"jpeg(0)":      func() { NewJPEG(0) },
		"jpeg(101)":    func() { NewJPEG(101) },
		"bitdepth(0)":  func() { NewBitDepth(0) },
		"bitdepth(17)": func() { NewBitDepth(17) },
		"tv(-1)":       func() { NewTVDenoise(-1, 5) },
		"tv(iters=0)":  func() { NewTVDenoise(0.1, 0) },
		"nlm(h=0)":     func() { NewNLM(0, 1, 3) },
		"nlm(w=0)":     func() { NewNLM(0.1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestTVStepStability pins the adaptive step size: even aggressive
// lambdas keep the unrolled descent monotone (no oscillation blow-up).
func TestTVStepStability(t *testing.T) {
	rng := mathx.NewRNG(49)
	img := tensor.RandU(rng, 0, 1, 1, 10, 10)
	for _, lambda := range []float64{0.05, 0.5, 2} {
		out := NewTVDenoise(lambda, 40).Apply(img)
		for _, v := range out.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < -1 || v > 2 {
				t.Fatalf("tv(lambda=%v) unstable: %v", lambda, v)
			}
		}
	}
}
