package filters

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Bilateral is an edge-preserving smoothing filter: each output pixel is a
// weighted average over a spatial window where the weights combine spatial
// proximity with photometric similarity. It removes small-amplitude
// adversarial noise while keeping the sign edges that LAP/LAR blur away —
// a natural "better defense" extension of the paper's filter family.
//
// Bilateral filtering is input-dependent (non-linear). Its VJP treats the
// weights as locally constant (the standard "lazy Jacobian" used when
// attacking bilateral-filter defenses): gradients are redistributed with
// the same weights computed at the forward point, which is exact for the
// numerator term and ignores the weight-derivative term.
type Bilateral struct {
	// Radius is the spatial window half-width.
	Radius int
	// SigmaSpace and SigmaColor control the two Gaussian kernels.
	SigmaSpace, SigmaColor float64
}

// NewBilateral constructs a bilateral filter.
func NewBilateral(radius int, sigmaSpace, sigmaColor float64) *Bilateral {
	if radius <= 0 || sigmaSpace <= 0 || sigmaColor <= 0 {
		panic(fmt.Sprintf("filters: bilateral parameters must be positive (r=%d σs=%v σc=%v)",
			radius, sigmaSpace, sigmaColor))
	}
	return &Bilateral{Radius: radius, SigmaSpace: sigmaSpace, SigmaColor: sigmaColor}
}

// Name implements Filter: the canonical spec, e.g. "bilateral(r=2,ss=2,sc=0.1)".
func (b *Bilateral) Name() string { return specName("bilateral", b.Params()) }

// Params implements Configurable.
func (b *Bilateral) Params() []Param {
	return []Param{
		intParam("r", "spatial window half-width in pixels", &b.Radius, intAtLeast(1), nil),
		floatParam("ss", "spatial Gaussian sigma in pixels", &b.SigmaSpace, floatPositive(), nil),
		floatParam("sc", "photometric (color) Gaussian sigma in intensity units", &b.SigmaColor, floatPositive(), nil),
	}
}

// Set implements Configurable.
func (b *Bilateral) Set(name, value string) error { return setParam(b.Params(), name, value) }

// ApplyBatch implements Filter with one task per image over the
// internal/parallel pool.
func (b *Bilateral) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor {
	return parallelBatch(b, imgs)
}

// Apply implements Filter with replicate border handling.
func (b *Bilateral) Apply(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW(b.Name(), img)
	out := tensor.New(c, h, w)
	id, od := img.Data(), out.Data()
	inv2ss := 1 / (2 * b.SigmaSpace * b.SigmaSpace)
	inv2sc := 1 / (2 * b.SigmaColor * b.SigmaColor)
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				center := id[base+y*w+x]
				num, den := 0.0, 0.0
				for dy := -b.Radius; dy <= b.Radius; dy++ {
					sy := clampInt(y+dy, 0, h-1)
					for dx := -b.Radius; dx <= b.Radius; dx++ {
						sx := clampInt(x+dx, 0, w-1)
						v := id[base+sy*w+sx]
						dc := v - center
						wgt := math.Exp(-float64(dy*dy+dx*dx)*inv2ss - dc*dc*inv2sc)
						num += wgt * v
						den += wgt
					}
				}
				od[base+y*w+x] = num / den
			}
		}
	}
	return out
}

// VJP implements Filter with the lazy-Jacobian approximation: the forward
// weights (computed at x) redistribute the upstream gradient.
func (b *Bilateral) VJP(x, upstream *tensor.Tensor) *tensor.Tensor {
	c, h, w := checkCHW(b.Name()+" VJP", upstream)
	out := tensor.New(c, h, w)
	id, ud, od := x.Data(), upstream.Data(), out.Data()
	inv2ss := 1 / (2 * b.SigmaSpace * b.SigmaSpace)
	inv2sc := 1 / (2 * b.SigmaColor * b.SigmaColor)
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			for x0 := 0; x0 < w; x0++ {
				u := ud[base+y*w+x0]
				if u == 0 {
					continue
				}
				center := id[base+y*w+x0]
				// Recompute the forward weights and scatter u accordingly.
				den := 0.0
				for dy := -b.Radius; dy <= b.Radius; dy++ {
					sy := clampInt(y+dy, 0, h-1)
					for dx := -b.Radius; dx <= b.Radius; dx++ {
						sx := clampInt(x0+dx, 0, w-1)
						v := id[base+sy*w+sx]
						dc := v - center
						den += math.Exp(-float64(dy*dy+dx*dx)*inv2ss - dc*dc*inv2sc)
					}
				}
				for dy := -b.Radius; dy <= b.Radius; dy++ {
					sy := clampInt(y+dy, 0, h-1)
					for dx := -b.Radius; dx <= b.Radius; dx++ {
						sx := clampInt(x0+dx, 0, w-1)
						v := id[base+sy*w+sx]
						dc := v - center
						wgt := math.Exp(-float64(dy*dy+dx*dx)*inv2ss-dc*dc*inv2sc) / den
						od[base+sy*w+sx] += wgt * u
					}
				}
			}
		}
	}
	return out
}
