package filters_test

import (
	"fmt"

	"repro/internal/filters"
	"repro/internal/tensor"
)

// Building a configured filter from a spec string — the same syntax the
// -filter CLI flags, sweep configurations and the serving API accept.
// Name() is the canonical spec: Parse(f.Name()) rebuilds the same
// configuration.
func ExampleParse() {
	f, err := filters.Parse("median(r=2)")
	if err != nil {
		panic(err)
	}
	fmt.Println(f.Name())

	// Knobs not named keep their registry defaults.
	g, err := filters.Parse("bilateral(sc=0.2)")
	if err != nil {
		panic(err)
	}
	fmt.Println(g.Name())

	// Out-of-range values are usage errors, never silent clamps.
	_, err = filters.Parse("median(r=0)")
	fmt.Println(err != nil)
	// Output:
	// median(r=2)
	// bilateral(r=2,ss=2,sc=0.2)
	// true
}

// Composing a pre-processing chain: stages run left to right, commas
// split at paren depth zero, and the chain's Name() round-trips.
func ExampleParse_chain() {
	f, err := filters.Parse("chain(median(r=1),histeq(bins=64))")
	if err != nil {
		panic(err)
	}
	fmt.Println(f.Name())

	img := tensor.Full(0.5, 3, 8, 8)
	out := f.Apply(img)
	fmt.Println(out.SameShape(img))
	// Output:
	// chain(median(r=1),histeq(bins=64))
	// true
}

// Chains can also be composed programmatically from constructed filters;
// Chain{a, b} computes b(a(x)).
func ExampleChain() {
	chain := filters.Chain{filters.NewLAP(4), filters.NewLAR(1)}
	fmt.Println(chain.Name())
	// Output: chain(lap(np=4),lar(r=1))
}

// Filtering a whole batch: ApplyBatch returns one output per input, each
// bit-identical to a per-image Apply call — heavyweight filters fan the
// batch out over the process-wide worker pool.
func ExampleFilter_applyBatch() {
	f, err := filters.Parse("lap(np=8)")
	if err != nil {
		panic(err)
	}
	batch := []*tensor.Tensor{
		tensor.Full(0.25, 3, 8, 8),
		tensor.Full(0.75, 3, 8, 8),
	}
	outs := f.ApplyBatch(batch)
	same := true
	for i, out := range outs {
		if !tensor.EqualWithin(out, f.Apply(batch[i]), 0) {
			same = false
		}
	}
	fmt.Println(len(outs), same)
	// Output: 2 true
}
