package filters

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/tensor"
)

// The golden equivalence fixture pins the Defense API v2 redesign: every
// pre-existing filter's Apply and VJP output, captured from the
// pre-redesign implementations for the paper configurations (LAP
// {4..64}, LAR {1..5}) and the library extensions, must be reproduced
// bit-for-bit by the parameterized filters Parse builds today.

type goldenFilterCase struct {
	Spec   string    `json:"spec"`
	Output []float64 `json:"output"`
	VJP    []float64 `json:"vjp"`
}

type goldenFilterFile struct {
	Shape    []int              `json:"shape"`
	Input    []float64          `json:"input"`
	Upstream []float64          `json:"upstream"`
	Cases    []goldenFilterCase `json:"cases"`
}

func TestGoldenEquivalence(t *testing.T) {
	data, err := os.ReadFile("testdata/golden_filters.json")
	if err != nil {
		t.Fatalf("golden fixture missing: %v", err)
	}
	var g goldenFilterFile
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatalf("golden fixture corrupt: %v", err)
	}
	img := tensor.FromSlice(g.Input, g.Shape...)
	up := tensor.FromSlice(g.Upstream, g.Shape...)
	for _, c := range g.Cases {
		f, err := Parse(c.Spec)
		if err != nil {
			t.Errorf("golden spec %q no longer parses: %v", c.Spec, err)
			continue
		}
		if got := f.Apply(img).Data(); !bitIdentical(got, c.Output) {
			t.Errorf("%s: Apply diverged from the pre-redesign output", c.Spec)
		}
		if got := f.VJP(img, up).Data(); !bitIdentical(got, c.VJP) {
			t.Errorf("%s: VJP diverged from the pre-redesign output", c.Spec)
		}
		// The batched path must reproduce the same golden bits.
		if got := f.ApplyBatch([]*tensor.Tensor{img, img})[1].Data(); !bitIdentical(got, c.Output) {
			t.Errorf("%s: ApplyBatch diverged from the pre-redesign output", c.Spec)
		}
	}
}

func bitIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
