package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		For(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	ran := false
	For(4, 0, func(int) { ran = true })
	For(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for empty index range")
	}
}

func TestForWorkerIDsAreInRange(t *testing.T) {
	const workers, n = 5, 200
	var bad atomic.Int32
	ForWorker(workers, n, func(worker, i int) {
		if worker < 0 || worker >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d tasks saw an out-of-range worker id", bad.Load())
	}
}

func TestForWorkerClampsPoolToTaskCount(t *testing.T) {
	// With more workers than tasks, ids must stay below the task count so
	// callers can size per-worker resources by min(workers, n).
	ForWorker(16, 3, func(worker, i int) {
		if worker >= 3 {
			t.Errorf("worker id %d for a 3-task grid", worker)
		}
	})
}

func TestForPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic in fn was swallowed")
		}
	}()
	For(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(0)
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d after reset; want >= 1", got)
	}
}

func TestTaskSeedDeterministicAndDistinct(t *testing.T) {
	seen := make(map[uint64]int)
	for i := 0; i < 10000; i++ {
		s := TaskSeed(42, i)
		if s != TaskSeed(42, i) {
			t.Fatalf("TaskSeed(42, %d) not deterministic", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("TaskSeed collision between indices %d and %d", prev, i)
		}
		seen[s] = i
	}
	if TaskSeed(1, 0) == TaskSeed(2, 0) {
		t.Fatal("TaskSeed ignores the base seed")
	}
}
