// Package parallel is the bounded worker pool behind the experiment
// engine. It fans independent grid cells — scenario × attack × filter
// tasks, per-image attack generation, per-sample evaluation — out over a
// fixed number of goroutines while keeping results deterministic: work
// items are identified by index, callers write results into index-
// addressed slots, and any reduction happens serially in index order
// afterwards, so a parallel run is bit-identical to a serial one.
//
// The pool size defaults to runtime.NumCPU and is set process-wide via
// SetWorkers (wired to the -workers flag of cmd/fademl-bench and
// cmd/fademl-analyze). SetWorkers(1) degrades every call site to plain
// serial loops, which the determinism tests exploit.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the process-wide pool size; 0 means "use
// runtime.NumCPU()".
var defaultWorkers atomic.Int64

// Workers returns the current process-wide worker count (at least 1).
func Workers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// SetWorkers sets the process-wide worker count used when a call site
// passes workers <= 0. n <= 0 resets to runtime.NumCPU().
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// For runs fn(i) for every i in [0, n) over a pool of the given number of
// workers (workers <= 0 selects Workers()). Indices are claimed
// dynamically from an atomic counter, so uneven task costs balance
// automatically. fn must be safe for concurrent invocation; For returns
// after every index has completed. A panic in fn is re-raised on the
// calling goroutine after the pool drains.
func For(workers, n int, fn func(i int)) {
	ForWorker(workers, n, func(_, i int) { fn(i) })
}

// activeFanOuts counts ForWorker calls currently running with more than
// one worker. Nested fan-out consumers (filters.ApplyBatch inside an
// evaluation worker) consult Active to degrade to inline serial work
// instead of oversubscribing the CPU with workers² goroutines.
var activeFanOuts atomic.Int64

// Active reports how many multi-worker fan-outs are in flight across
// the process. The snapshot is advisory (racy by nature): callers use
// it only to choose between a parallel and a bit-identical serial code
// path, so staleness affects scheduling, never results.
func Active() int { return int(activeFanOuts.Load()) }

// ForWorker is For with the worker id (in [0, effective-worker-count))
// passed alongside the task index, so callers can address per-worker
// resources such as cloned networks. Worker 0 is the calling goroutine.
func ForWorker(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	activeFanOuts.Add(1)
	defer activeFanOuts.Add(-1)

	var next atomic.Int64
	var panicOnce sync.Once
	var panicked any
	run := func(worker int) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicked = r })
				// Drain remaining indices so sibling workers exit promptly.
				next.Store(int64(n))
			}
		}()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(worker, i)
		}
	}

	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			run(worker)
		}(w)
	}
	run(0)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// TaskSeed maps a task index to a deterministic RNG seed derived from a
// base seed. The mapping depends only on (base, index) — never on worker
// identity or completion order — so stochastic tasks produce identical
// streams no matter how the pool schedules them. SplitMix64 finalizer.
func TaskSeed(base uint64, index int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
