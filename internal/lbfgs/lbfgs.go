// Package lbfgs implements a limited-memory BFGS minimizer with Armijo
// backtracking line search and optional box constraints (projected
// gradient variant). It is the optimizer behind the paper's L-BFGS attack
// (Szegedy et al.'s box-constrained formulation) and is usable as a
// general-purpose smooth minimizer.
package lbfgs

import (
	"fmt"
	"math"
)

// Objective evaluates the function and writes its gradient into grad
// (which has the same length as x), returning the function value.
type Objective func(x []float64, grad []float64) float64

// Config controls the minimization.
type Config struct {
	// Memory is the number of (s, y) correction pairs kept (default 8).
	Memory int
	// MaxIter bounds the outer iterations (default 100).
	MaxIter int
	// GradTol stops when the (projected) gradient inf-norm drops below it
	// (default 1e-6).
	GradTol float64
	// FuncTol stops when the relative function decrease drops below it
	// (default 1e-10).
	FuncTol float64
	// Lower/Upper are optional box constraints applied by projection; nil
	// means unconstrained. When set they must have the same length as x.
	Lower, Upper []float64
	// ArmijoC is the sufficient-decrease constant (default 1e-4).
	ArmijoC float64
	// MaxLineSearch bounds backtracking steps per iteration (default 30).
	MaxLineSearch int
	// Stop, when non-nil, is polled at the start of every outer iteration;
	// returning true halts the minimization with Status Stopped, keeping
	// the best point found so far. It is how callers thread context
	// cancellation and work budgets into the solver.
	Stop func() bool
}

func (c *Config) defaults(n int) error {
	if c.Memory <= 0 {
		c.Memory = 8
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.GradTol <= 0 {
		c.GradTol = 1e-6
	}
	if c.FuncTol <= 0 {
		c.FuncTol = 1e-10
	}
	if c.ArmijoC <= 0 {
		c.ArmijoC = 1e-4
	}
	if c.MaxLineSearch <= 0 {
		c.MaxLineSearch = 30
	}
	if (c.Lower != nil && len(c.Lower) != n) || (c.Upper != nil && len(c.Upper) != n) {
		return fmt.Errorf("lbfgs: bound length does not match x length %d", n)
	}
	return nil
}

// Status describes why the minimizer stopped.
type Status int

// Termination reasons.
const (
	// Converged means the gradient or function tolerance was met.
	Converged Status = iota
	// MaxIterReached means the iteration budget ran out.
	MaxIterReached
	// LineSearchFailed means no acceptable step was found; X holds the
	// best point so far.
	LineSearchFailed
	// Stopped means Config.Stop requested an early halt; X holds the best
	// point so far.
	Stopped
)

func (s Status) String() string {
	switch s {
	case Converged:
		return "converged"
	case MaxIterReached:
		return "max-iterations"
	case LineSearchFailed:
		return "line-search-failed"
	case Stopped:
		return "stopped"
	default:
		return "unknown"
	}
}

// Result holds the outcome of a minimization.
type Result struct {
	// X is the best point found (same slice length as the input).
	X []float64
	// F is the objective value at X.
	F float64
	// Iters is the number of outer iterations performed.
	Iters int
	// Evals is the number of objective evaluations.
	Evals int
	// Status is the termination reason.
	Status Status
}

// Minimize runs L-BFGS from x0. x0 is not modified.
func Minimize(obj Objective, x0 []float64, cfg Config) (Result, error) {
	n := len(x0)
	if n == 0 {
		return Result{}, fmt.Errorf("lbfgs: empty start point")
	}
	if err := cfg.defaults(n); err != nil {
		return Result{}, err
	}

	x := append([]float64(nil), x0...)
	project(x, cfg.Lower, cfg.Upper)
	g := make([]float64, n)
	evals := 0
	f := obj(x, g)
	evals++
	if math.IsNaN(f) {
		return Result{}, fmt.Errorf("lbfgs: objective is NaN at start point")
	}

	// History ring buffers.
	m := cfg.Memory
	sHist := make([][]float64, 0, m)
	yHist := make([][]float64, 0, m)
	rhoHist := make([]float64, 0, m)

	dir := make([]float64, n)
	xNew := make([]float64, n)
	gNew := make([]float64, n)
	alphaBuf := make([]float64, m)

	res := Result{X: x, F: f}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		if cfg.Stop != nil && cfg.Stop() {
			res.Status = Stopped
			break
		}
		res.Iters = iter + 1
		if projGradInf(x, g, cfg.Lower, cfg.Upper) < cfg.GradTol {
			res.Status = Converged
			break
		}

		// Two-loop recursion: dir = -H·g.
		copy(dir, g)
		k := len(sHist)
		for i := k - 1; i >= 0; i-- {
			alphaBuf[i] = rhoHist[i] * dot(sHist[i], dir)
			axpy(dir, yHist[i], -alphaBuf[i])
		}
		if k > 0 {
			// Initial Hessian scaling gamma = s·y / y·y.
			gamma := dot(sHist[k-1], yHist[k-1]) / dot(yHist[k-1], yHist[k-1])
			scale(dir, gamma)
		}
		for i := 0; i < k; i++ {
			beta := rhoHist[i] * dot(yHist[i], dir)
			axpy(dir, sHist[i], alphaBuf[i]-beta)
		}
		neg(dir)

		// Ensure descent; fall back to steepest descent if curvature
		// information is unusable.
		if dot(dir, g) >= 0 {
			copy(dir, g)
			neg(dir)
		}

		// Backtracking Armijo line search with box projection.
		step := 1.0
		gd := dot(g, dir)
		ok := false
		firstTrial := true
		var fNew float64
		for ls := 0; ls < cfg.MaxLineSearch; ls++ {
			for i := range xNew {
				xNew[i] = x[i] + step*dir[i]
			}
			project(xNew, cfg.Lower, cfg.Upper)
			fNew = obj(xNew, gNew)
			evals++
			if fNew <= f+cfg.ArmijoC*step*gd && !math.IsNaN(fNew) {
				ok = true
				break
			}
			firstTrial = false
			step *= 0.5
		}
		if !ok {
			res.Status = LineSearchFailed
			break
		}
		// If the unit step was accepted outright, greedily expand while the
		// Armijo condition keeps holding and the value keeps improving.
		// Armijo-only backtracking otherwise locks quasi-Newton scaling into
		// a tiny-step crawl on ill-conditioned valleys; expansion plays the
		// role of the Wolfe curvature condition.
		if firstTrial {
			xTry := make([]float64, n)
			gTry := make([]float64, n)
			for e := 0; e < 20; e++ {
				trial := step * 2
				for i := range xTry {
					xTry[i] = x[i] + trial*dir[i]
				}
				project(xTry, cfg.Lower, cfg.Upper)
				fTry := obj(xTry, gTry)
				evals++
				if math.IsNaN(fTry) || fTry >= fNew || fTry > f+cfg.ArmijoC*trial*gd {
					break
				}
				step = trial
				fNew = fTry
				copy(xNew, xTry)
				copy(gNew, gTry)
			}
		}

		// Update curvature history.
		s := make([]float64, n)
		yv := make([]float64, n)
		for i := range s {
			s[i] = xNew[i] - x[i]
			yv[i] = gNew[i] - g[i]
		}
		sy := dot(s, yv)
		if sy > 1e-10 {
			if len(sHist) == m {
				sHist = sHist[1:]
				yHist = yHist[1:]
				rhoHist = rhoHist[1:]
			}
			sHist = append(sHist, s)
			yHist = append(yHist, yv)
			rhoHist = append(rhoHist, 1/sy)
		}

		relDecrease := (f - fNew) / math.Max(1, math.Abs(f))
		copy(x, xNew)
		copy(g, gNew)
		f = fNew
		res.F = f
		if relDecrease >= 0 && relDecrease < cfg.FuncTol {
			res.Status = Converged
			break
		}
		if iter == cfg.MaxIter-1 {
			res.Status = MaxIterReached
		}
	}
	res.X = x
	res.F = f
	res.Evals = evals
	return res, nil
}

// project clamps x into [lower, upper] element-wise (nil bounds are a no-op).
func project(x, lower, upper []float64) {
	if lower != nil {
		for i := range x {
			if x[i] < lower[i] {
				x[i] = lower[i]
			}
		}
	}
	if upper != nil {
		for i := range x {
			if x[i] > upper[i] {
				x[i] = upper[i]
			}
		}
	}
}

// projGradInf is the inf-norm of the projected gradient: components
// pointing outside an active bound are ignored.
func projGradInf(x, g, lower, upper []float64) float64 {
	m := 0.0
	for i := range g {
		gi := g[i]
		if lower != nil && x[i] <= lower[i] && gi > 0 {
			continue
		}
		if upper != nil && x[i] >= upper[i] && gi < 0 {
			continue
		}
		if a := math.Abs(gi); a > m {
			m = a
		}
	}
	return m
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(dst, src []float64, alpha float64) {
	for i := range dst {
		dst[i] += alpha * src[i]
	}
}

func scale(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

func neg(x []float64) {
	for i := range x {
		x[i] = -x[i]
	}
}
