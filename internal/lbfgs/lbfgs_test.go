package lbfgs

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

// quadratic objective: f(x) = Σ c_i (x_i - t_i)^2.
func quadratic(c, target []float64) Objective {
	return func(x, grad []float64) float64 {
		f := 0.0
		for i := range x {
			d := x[i] - target[i]
			f += c[i] * d * d
			grad[i] = 2 * c[i] * d
		}
		return f
	}
}

func rosenbrock(x, grad []float64) float64 {
	// Classic 2-d Rosenbrock: f = (1-x0)^2 + 100 (x1 - x0^2)^2.
	a := 1 - x[0]
	b := x[1] - x[0]*x[0]
	grad[0] = -2*a - 400*x[0]*b
	grad[1] = 200 * b
	return a*a + 100*b*b
}

func TestQuadraticConvergence(t *testing.T) {
	target := []float64{1, -2, 3, 0.5}
	c := []float64{1, 10, 0.1, 5}
	res, err := Minimize(quadratic(c, target), []float64{0, 0, 0, 0}, Config{MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Converged {
		t.Fatalf("status = %v", res.Status)
	}
	for i := range target {
		if math.Abs(res.X[i]-target[i]) > 1e-4 {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], target[i])
		}
	}
	if res.F > 1e-8 {
		t.Fatalf("final f = %v", res.F)
	}
}

func TestRosenbrockConvergence(t *testing.T) {
	res, err := Minimize(rosenbrock, []float64{-1.2, 1}, Config{MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Fatalf("Rosenbrock minimum not found: %v (f=%v, status=%v)", res.X, res.F, res.Status)
	}
}

func TestBoxConstraintsRespected(t *testing.T) {
	// Unconstrained minimum at (2, 2); box forces x <= 1.
	target := []float64{2, 2}
	c := []float64{1, 1}
	lower := []float64{-1, -1}
	upper := []float64{1, 1}
	res, err := Minimize(quadratic(c, target), []float64{0, 0}, Config{
		MaxIter: 200, Lower: lower, Upper: upper,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.X {
		if v < lower[i]-1e-12 || v > upper[i]+1e-12 {
			t.Fatalf("x[%d] = %v escaped box", i, v)
		}
	}
	// Constrained optimum is the box corner (1, 1).
	if math.Abs(res.X[0]-1) > 1e-6 || math.Abs(res.X[1]-1) > 1e-6 {
		t.Fatalf("constrained optimum = %v, want (1,1)", res.X)
	}
}

func TestStartPointProjectedIntoBox(t *testing.T) {
	res, err := Minimize(quadratic([]float64{1}, []float64{0.5}), []float64{99}, Config{
		MaxIter: 50,
		Lower:   []float64{0},
		Upper:   []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-0.5) > 1e-6 {
		t.Fatalf("x = %v, want 0.5", res.X[0])
	}
}

func TestMaxIterRespected(t *testing.T) {
	res, err := Minimize(rosenbrock, []float64{-1.2, 1}, Config{MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters > 3 {
		t.Fatalf("ran %d iters with MaxIter=3", res.Iters)
	}
	if res.Status == Converged && res.F > 1e-6 {
		t.Fatalf("claimed convergence at f=%v", res.F)
	}
}

func TestX0NotModified(t *testing.T) {
	x0 := []float64{-1.2, 1}
	if _, err := Minimize(rosenbrock, x0, Config{MaxIter: 50}); err != nil {
		t.Fatal(err)
	}
	if x0[0] != -1.2 || x0[1] != 1 {
		t.Fatalf("x0 modified: %v", x0)
	}
}

func TestEmptyStartRejected(t *testing.T) {
	if _, err := Minimize(rosenbrock, nil, Config{}); err == nil {
		t.Fatal("empty start accepted")
	}
}

func TestBoundLengthValidated(t *testing.T) {
	_, err := Minimize(quadratic([]float64{1}, []float64{0}), []float64{1}, Config{
		Lower: []float64{0, 0},
	})
	if err == nil {
		t.Fatal("mismatched bound length accepted")
	}
}

func TestNaNObjectiveRejected(t *testing.T) {
	bad := func(x, g []float64) float64 {
		for i := range g {
			g[i] = 0
		}
		return math.NaN()
	}
	if _, err := Minimize(bad, []float64{1}, Config{}); err == nil {
		t.Fatal("NaN objective at start accepted")
	}
}

func TestHighDimensionalQuadratic(t *testing.T) {
	rng := mathx.NewRNG(17)
	n := 200
	target := make([]float64, n)
	c := make([]float64, n)
	x0 := make([]float64, n)
	for i := range target {
		target[i] = rng.Range(-2, 2)
		c[i] = rng.Range(0.1, 10)
		x0[i] = rng.Range(-5, 5)
	}
	res, err := Minimize(quadratic(c, target), x0, Config{MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	for i := range target {
		if math.Abs(res.X[i]-target[i]) > 1e-3 {
			t.Fatalf("dim %d: x=%v want %v (status %v after %d iters)",
				i, res.X[i], target[i], res.Status, res.Iters)
		}
	}
}

func TestReportedFIsBestSeen(t *testing.T) {
	// The Armijo condition only ever accepts strictly improving steps, so
	// the reported F must equal the smallest accepted value the objective
	// ever returned from an accepted point; at minimum it can never exceed
	// the starting value.
	g0 := make([]float64, 2)
	f0 := rosenbrock([]float64{-1.2, 1}, g0)
	res, err := Minimize(rosenbrock, []float64{-1.2, 1}, Config{MaxIter: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > f0 {
		t.Fatalf("final f %v exceeds starting f %v", res.F, f0)
	}
	if res.F > 1e-3 {
		t.Fatalf("final Rosenbrock value %v", res.F)
	}
	if res.Evals < res.Iters {
		t.Fatalf("evals %d < iters %d", res.Evals, res.Iters)
	}
}

func TestStatusStrings(t *testing.T) {
	if Converged.String() != "converged" ||
		MaxIterReached.String() != "max-iterations" ||
		LineSearchFailed.String() != "line-search-failed" ||
		Status(99).String() != "unknown" {
		t.Fatal("Status.String labels wrong")
	}
}
