// Package imageio converts between the repository's CHW float64 tensors
// and Go's image types, with PNG save/load, montage grids and an ASCII
// preview for terminal debugging.
package imageio

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"
	"strings"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// ToImage converts a CHW tensor (1 or 3 channels, values in [0, 1]) into an
// NRGBA image. Values outside [0, 1] are clamped.
func ToImage(t *tensor.Tensor) (*image.NRGBA, error) {
	if t.Dims() != 3 {
		return nil, fmt.Errorf("imageio: want CHW tensor, got shape %v", t.Shape())
	}
	c, h, w := t.Dim(0), t.Dim(1), t.Dim(2)
	if c != 1 && c != 3 {
		return nil, fmt.Errorf("imageio: want 1 or 3 channels, got %d", c)
	}
	img := image.NewNRGBA(image.Rect(0, 0, w, h))
	to8 := func(v float64) uint8 { return uint8(mathx.Clamp01(v)*255 + 0.5) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var r, g, b uint8
			if c == 1 {
				v := to8(t.At(0, y, x))
				r, g, b = v, v, v
			} else {
				r = to8(t.At(0, y, x))
				g = to8(t.At(1, y, x))
				b = to8(t.At(2, y, x))
			}
			img.SetNRGBA(x, y, color.NRGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return img, nil
}

// FromImage converts any image into a 3-channel CHW tensor with values in
// [0, 1].
func FromImage(img image.Image) *tensor.Tensor {
	b := img.Bounds()
	h, w := b.Dy(), b.Dx()
	t := tensor.New(3, h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, bb, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			t.Set(float64(r)/65535, 0, y, x)
			t.Set(float64(g)/65535, 1, y, x)
			t.Set(float64(bb)/65535, 2, y, x)
		}
	}
	return t
}

// SavePNG writes a CHW tensor to path as a PNG file.
func SavePNG(t *tensor.Tensor, path string) error {
	img, err := ToImage(t)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// EncodePNG writes a CHW tensor as PNG to w.
func EncodePNG(t *tensor.Tensor, w io.Writer) error {
	img, err := ToImage(t)
	if err != nil {
		return err
	}
	return png.Encode(w, img)
}

// LoadPNG reads a PNG file into a 3-channel CHW tensor.
func LoadPNG(path string) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	img, err := png.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("imageio: decoding %s: %w", path, err)
	}
	return FromImage(img), nil
}

// Montage arranges equal-sized CHW tensors into a grid with cols columns
// (rows grow as needed), separated by a 1-pixel mid-gray gutter.
func Montage(tiles []*tensor.Tensor, cols int) (*tensor.Tensor, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("imageio: empty montage")
	}
	if cols <= 0 {
		cols = len(tiles)
	}
	c, h, w := tiles[0].Dim(0), tiles[0].Dim(1), tiles[0].Dim(2)
	for i, tile := range tiles {
		if tile.Dims() != 3 || tile.Dim(0) != c || tile.Dim(1) != h || tile.Dim(2) != w {
			return nil, fmt.Errorf("imageio: tile %d shape %v differs from %v", i, tile.Shape(), tiles[0].Shape())
		}
	}
	rows := (len(tiles) + cols - 1) / cols
	const gut = 1
	outH := rows*h + (rows-1)*gut
	outW := cols*w + (cols-1)*gut
	out := tensor.Full(0.5, c, outH, outW)
	for i, tile := range tiles {
		r, cl := i/cols, i%cols
		oy, ox := r*(h+gut), cl*(w+gut)
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					out.Set(tile.At(ch, y, x), ch, oy+y, ox+x)
				}
			}
		}
	}
	return out, nil
}

// ASCII renders a CHW tensor as a luminance character grid for quick
// terminal inspection (dark to bright).
func ASCII(t *tensor.Tensor) string {
	if t.Dims() != 3 {
		return "<not CHW>"
	}
	ramp := []byte(" .:-=+*#%@")
	c, h, w := t.Dim(0), t.Dim(1), t.Dim(2)
	var sb strings.Builder
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var lum float64
			if c >= 3 {
				lum = 0.299*t.At(0, y, x) + 0.587*t.At(1, y, x) + 0.114*t.At(2, y, x)
			} else {
				lum = t.At(0, y, x)
			}
			idx := int(mathx.Clamp01(lum) * float64(len(ramp)-1))
			sb.WriteByte(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
