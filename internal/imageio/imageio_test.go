package imageio

import (
	"bytes"
	"image"
	"image/color"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

func TestToImageRGB(t *testing.T) {
	tt := tensor.New(3, 2, 2)
	tt.Set(1, 0, 0, 0)   // red at (0,0)
	tt.Set(1, 1, 1, 1)   // green at (1,1)
	tt.Set(0.5, 2, 0, 1) // half blue at (0,1)
	img, err := ToImage(tt)
	if err != nil {
		t.Fatal(err)
	}
	if c := img.NRGBAAt(0, 0); c.R != 255 || c.G != 0 {
		t.Fatalf("pixel (0,0) = %+v", c)
	}
	if c := img.NRGBAAt(1, 1); c.G != 255 {
		t.Fatalf("pixel (1,1) = %+v", c)
	}
	if c := img.NRGBAAt(1, 0); c.B != 128 {
		t.Fatalf("pixel (1,0) = %+v", c)
	}
}

func TestToImageGrayscale(t *testing.T) {
	tt := tensor.New(1, 2, 2)
	tt.Set(1, 0, 0, 1)
	img, err := ToImage(tt)
	if err != nil {
		t.Fatal(err)
	}
	c := img.NRGBAAt(1, 0)
	if c.R != 255 || c.G != 255 || c.B != 255 {
		t.Fatalf("grayscale pixel not replicated: %+v", c)
	}
}

func TestToImageClampsOutOfRange(t *testing.T) {
	tt := tensor.New(3, 1, 1)
	tt.Set(2.5, 0, 0, 0)
	tt.Set(-1, 1, 0, 0)
	img, err := ToImage(tt)
	if err != nil {
		t.Fatal(err)
	}
	c := img.NRGBAAt(0, 0)
	if c.R != 255 || c.G != 0 {
		t.Fatalf("clamping failed: %+v", c)
	}
}

func TestToImageRejectsBadShapes(t *testing.T) {
	if _, err := ToImage(tensor.New(4, 4)); err == nil {
		t.Error("2-d tensor accepted")
	}
	if _, err := ToImage(tensor.New(2, 4, 4)); err == nil {
		t.Error("2-channel tensor accepted")
	}
}

func TestFromImageRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(1)
	orig := tensor.RandU(rng, 0, 1, 3, 5, 7)
	img, err := ToImage(orig)
	if err != nil {
		t.Fatal(err)
	}
	back := FromImage(img)
	if !back.SameShape(orig) {
		t.Fatalf("round-trip shape = %v", back.Shape())
	}
	// 8-bit quantization bounds the round-trip error by 1/255 per value.
	diff := tensor.Sub(back, orig)
	if diff.LInfNorm() > 1.0/255+1e-9 {
		t.Fatalf("round-trip error %v exceeds quantization bound", diff.LInfNorm())
	}
}

func TestSaveLoadPNG(t *testing.T) {
	rng := mathx.NewRNG(2)
	orig := tensor.RandU(rng, 0, 1, 3, 6, 6)
	path := filepath.Join(t.TempDir(), "img.png")
	if err := SavePNG(orig, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPNG(path)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Sub(back, orig).LInfNorm() > 1.0/255+1e-9 {
		t.Fatal("PNG round trip exceeded quantization error")
	}
}

func TestLoadPNGErrors(t *testing.T) {
	if _, err := LoadPNG(filepath.Join(t.TempDir(), "missing.png")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestEncodePNG(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodePNG(tensor.Full(0.5, 3, 4, 4), &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || !bytes.HasPrefix(buf.Bytes(), []byte("\x89PNG")) {
		t.Fatal("EncodePNG did not produce a PNG stream")
	}
}

func TestMontageLayout(t *testing.T) {
	tiles := []*tensor.Tensor{
		tensor.Full(0.1, 3, 4, 4),
		tensor.Full(0.9, 3, 4, 4),
		tensor.Full(0.4, 3, 4, 4),
	}
	m, err := Montage(tiles, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 2 rows x 2 cols with 1px gutters: 2*4+1 = 9 high, 9 wide.
	if m.Dim(1) != 9 || m.Dim(2) != 9 {
		t.Fatalf("montage shape = %v", m.Shape())
	}
	if m.At(0, 0, 0) != 0.1 {
		t.Fatal("tile 0 misplaced")
	}
	if m.At(0, 0, 5) != 0.9 {
		t.Fatal("tile 1 misplaced")
	}
	if m.At(0, 5, 0) != 0.4 {
		t.Fatal("tile 2 misplaced")
	}
	// Gutter pixel.
	if m.At(0, 0, 4) != 0.5 {
		t.Fatal("gutter missing")
	}
}

func TestMontageValidation(t *testing.T) {
	if _, err := Montage(nil, 2); err == nil {
		t.Error("empty montage accepted")
	}
	tiles := []*tensor.Tensor{tensor.New(3, 4, 4), tensor.New(3, 5, 5)}
	if _, err := Montage(tiles, 2); err == nil {
		t.Error("mismatched tiles accepted")
	}
}

func TestMontageDefaultCols(t *testing.T) {
	tiles := []*tensor.Tensor{tensor.New(1, 2, 2), tensor.New(1, 2, 2)}
	m, err := Montage(tiles, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim(1) != 2 || m.Dim(2) != 5 {
		t.Fatalf("default-cols montage shape = %v", m.Shape())
	}
}

func TestASCII(t *testing.T) {
	tt := tensor.New(1, 2, 3)
	tt.Set(1, 0, 0, 0)
	s := ASCII(tt)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 3 {
		t.Fatalf("ASCII grid wrong: %q", s)
	}
	if lines[0][0] != '@' {
		t.Fatalf("bright pixel = %q", lines[0][0])
	}
	if lines[1][0] != ' ' {
		t.Fatalf("dark pixel = %q", lines[1][0])
	}
	if got := ASCII(tensor.New(2, 2)); got != "<not CHW>" {
		t.Fatalf("bad-shape ASCII = %q", got)
	}
}

func TestFromImageHandlesOffsetBounds(t *testing.T) {
	img := image.NewNRGBA(image.Rect(2, 3, 5, 6))
	img.SetNRGBA(2, 3, color.NRGBA{R: 255, A: 255})
	tt := FromImage(img)
	if tt.Dim(1) != 3 || tt.Dim(2) != 3 {
		t.Fatalf("offset-bounds shape = %v", tt.Shape())
	}
	if tt.At(0, 0, 0) < 0.99 {
		t.Fatal("offset-bounds pixel lost")
	}
}
