package pipeline

import (
	"testing"

	"repro/internal/filters"
	"repro/internal/mathx"
	"repro/internal/tensor"
)

// TestDeliverBatchBitIdentity pins that the batched delivery path —
// acquisition and filter both running ApplyBatch — reproduces per-image
// Deliver bit-for-bit under every threat model.
func TestDeliverBatchBitIdentity(t *testing.T) {
	net := pipelineNet(t)
	p := New(net, filters.NewLAP(8), DefaultAcquisition(21))
	rng := mathx.NewRNG(91)
	xs := make([]*tensor.Tensor, 5)
	for i := range xs {
		xs[i] = tensor.RandU(rng, 0, 1, 3, 16, 16)
	}
	for _, tm := range []ThreatModel{TM1, TM2, TM3} {
		got := p.DeliverBatch(xs, tm)
		for i, x := range xs {
			if !tensor.EqualWithin(got[i], p.Deliver(x, tm), 0) {
				t.Errorf("%v: DeliverBatch[%d] != Deliver", tm, i)
			}
		}
	}
}

// TestDeliverGroupedBitIdentity pins the mixed-threat-model path the
// serving micro-batches take: per-index TMs, grouped filter batching,
// per-slot results identical to individual Deliver calls.
func TestDeliverGroupedBitIdentity(t *testing.T) {
	net := pipelineNet(t)
	p := New(net, filters.NewLAR(2), DefaultAcquisition(5))
	rng := mathx.NewRNG(92)
	tms := []ThreatModel{TM3, TM1, TM2, TM3, TM2, TM1, TM3}
	xs := make([]*tensor.Tensor, len(tms))
	for i := range xs {
		xs[i] = tensor.RandU(rng, 0, 1, 3, 16, 16)
	}
	got := p.DeliverGrouped(xs, tms)
	for i := range xs {
		if !tensor.EqualWithin(got[i], p.Deliver(xs[i], tms[i]), 0) {
			t.Errorf("DeliverGrouped[%d] (%v) != Deliver", i, tms[i])
		}
	}
}

func TestDeliverGroupedValidation(t *testing.T) {
	net := pipelineNet(t)
	p := New(net, nil, nil)
	img := tensor.Full(0.5, 3, 16, 16)
	for name, fn := range map[string]func(){
		"length mismatch": func() { p.DeliverGrouped([]*tensor.Tensor{img}, nil) },
		"bad tm":          func() { p.DeliverGrouped([]*tensor.Tensor{img}, []ThreatModel{99}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestProbsViewsMatchesProbs re-pins the ProbsViews contract on the new
// grouped delivery path.
func TestProbsViewsMatchesProbs(t *testing.T) {
	net := pipelineNet(t)
	p := New(net, filters.NewLAP(4), DefaultAcquisition(3))
	rng := mathx.NewRNG(93)
	x := tensor.RandU(rng, 0, 1, 3, 16, 16)
	tms := []ThreatModel{TM1, TM3, TM2, TM3}
	views := p.ProbsViews(x, tms...)
	for i, tm := range tms {
		want := p.Probs(x, tm)
		for j := range want {
			if views[i][j] != want[j] {
				t.Fatalf("ProbsViews[%d] (%v) diverged from Probs", i, tm)
			}
		}
	}
}
