package pipeline

import (
	"sync"
	"testing"

	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/tensor"
)

// TestTM2DeliveryConcurrentDeterminism pins the acquisition bugfix: TM-II
// delivery used to advance a shared RNG, so concurrent callers raced and
// results depended on interleaving. Delivery must now be a pure function —
// many goroutines hammering Deliver(TM2) on one shared pipeline have to
// produce exactly the serial run's tensors. Run with -race.
func TestTM2DeliveryConcurrentDeterminism(t *testing.T) {
	net := pipelineNet(t)
	p := New(net, filters.NewLAP(8), DefaultAcquisition(42))

	classes := []int{gtsrb.ClassStop, gtsrb.ClassSpeed60, gtsrb.ClassNoEntry}
	var imgs []*tensor.Tensor
	for _, c := range classes {
		img := gtsrb.Canonical(c, 16)
		imgs = append(imgs, img)
		dim := img.Clone()
		dim.ScaleInPlace(0.9)
		imgs = append(imgs, dim)
	}

	serial := make([]*tensor.Tensor, len(imgs))
	for i, img := range imgs {
		serial[i] = p.Deliver(img, TM2)
	}

	const goroutines, reps = 8, 5
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				// Vary the visit order per goroutine so interleavings differ.
				for k := range imgs {
					i := (k + g + r) % len(imgs)
					got := p.Deliver(imgs[i], TM2)
					if !tensor.EqualWithin(got, serial[i], 0) {
						errs <- "concurrent TM2 delivery differs from serial run"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestTM2ProbsBatchConcurrentDeterminism runs full TM-II inference —
// Pipeline.ProbsBatch on per-worker network clones sharing one Acquisition
// — from many goroutines and asserts every probability vector is
// bit-identical to the serial single-image path.
func TestTM2ProbsBatchConcurrentDeterminism(t *testing.T) {
	net := pipelineNet(t)
	filter := filters.NewLAP(8)
	acq := DefaultAcquisition(7)
	p := New(net, filter, acq)

	imgs := []*tensor.Tensor{
		gtsrb.Canonical(gtsrb.ClassStop, 16),
		gtsrb.Canonical(gtsrb.ClassSpeed60, 16),
		gtsrb.Canonical(gtsrb.ClassNoEntry, 16),
	}
	serial := make([][]float64, len(imgs))
	for i, img := range imgs {
		serial[i] = p.Probs(img, TM2)
	}

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		// Each worker owns a clone of the network but shares the filter and
		// the acquisition stage — exactly the serving-layer topology.
		wp := New(net.Clone(), filter, acq)
		wg.Add(1)
		go func(wp *Pipeline) {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				rows := wp.ProbsBatch(imgs, TM2)
				for i, row := range rows {
					for j, v := range row {
						if v != serial[i][j] {
							errs <- "concurrent ProbsBatch(TM2) differs from serial Probs"
							return
						}
					}
				}
			}
		}(wp)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestAcquisitionApplyIsPure pins the semantic of the fix: capturing the
// same image twice through one Acquisition yields bit-identical output
// (the noise stream depends on seed + content, not call history), while
// different images and different seeds still decorrelate the noise.
func TestAcquisitionApplyIsPure(t *testing.T) {
	acq := NewAcquisition(1, 0.02, false, 9)
	img := gtsrb.Canonical(gtsrb.ClassStop, 16)
	a := acq.Apply(img)
	b := acq.Apply(img)
	if !tensor.EqualWithin(a, b, 0) {
		t.Fatal("repeated Apply of the same image differs")
	}
	other := img.Clone()
	other.Data()[0] += 1e-9
	c := acq.Apply(other)
	if tensor.EqualWithin(a, c, 0) {
		t.Fatal("noise stream failed to decorrelate across distinct images")
	}
}

func TestParseThreatModel(t *testing.T) {
	ok := map[string]ThreatModel{
		"1": TM1, "2": TM2, "3": TM3,
		"tm1": TM1, "TM2": TM2, "tm3": TM3,
		"TM-I": TM1, "tm-ii": TM2, "TM-III": TM3,
		" 2 ": TM2, "iii": TM3,
	}
	for s, want := range ok {
		got, err := ParseThreatModel(s)
		if err != nil || got != want {
			t.Errorf("ParseThreatModel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"", "0", "4", "tm4", "TM-IV", "two"} {
		if got, err := ParseThreatModel(s); err == nil {
			t.Errorf("ParseThreatModel(%q) accepted as %v", s, got)
		}
	}
	if !TM2.Valid() || ThreatModel(7).Valid() || ThreatModel(0).Valid() {
		t.Error("ThreatModel.Valid wrong")
	}
}
