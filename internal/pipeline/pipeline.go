package pipeline

import (
	"fmt"
	"strings"

	"repro/internal/filters"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ThreatModel enumerates the paper's Fig. 2 attack scenarios, which differ
// in where the adversarial image enters the inference pipeline.
type ThreatModel int

const (
	// TM1 — the attacker has access to the pre-processing filter's output
	// and writes the perturbed image directly into the DNN input buffer:
	// the DNN consumes the adversarial image unfiltered.
	TM1 ThreatModel = iota + 1
	// TM2 — the attacker manipulates the scene before data acquisition:
	// the adversarial image passes capture (gain, sensor noise,
	// quantization) and then the pre-processing filter.
	TM2
	// TM3 — the attacker perturbs the acquired data before the buffer but
	// has no access to the filter: the adversarial image passes the
	// pre-processing filter only.
	TM3
)

// String implements fmt.Stringer.
func (tm ThreatModel) String() string {
	switch tm {
	case TM1:
		return "TM-I"
	case TM2:
		return "TM-II"
	case TM3:
		return "TM-III"
	default:
		return fmt.Sprintf("ThreatModel(%d)", int(tm))
	}
}

// ParseThreatModel converts a user-supplied string — a CLI flag, an HTTP
// request field — into a ThreatModel. It accepts the numeric forms "1",
// "2", "3", the short names "tm1".."tm3" and the paper's roman labels
// "tm-i".."tm-iii" (case-insensitively), and returns an error instead of
// letting a bad value travel to the panic inside Deliver/AttackerModel.
func ParseThreatModel(s string) (ThreatModel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "1", "tm1", "tm-1", "tm-i", "i":
		return TM1, nil
	case "2", "tm2", "tm-2", "tm-ii", "ii":
		return TM2, nil
	case "3", "tm3", "tm-3", "tm-iii", "iii":
		return TM3, nil
	}
	return 0, fmt.Errorf("pipeline: unknown threat model %q (want 1, 2, 3, tm1..tm3 or TM-I..TM-III)", s)
}

// Valid reports whether tm is one of the three defined threat models, so
// callers can reject bad values before they reach Deliver's panic.
func (tm ThreatModel) Valid() bool {
	return tm == TM1 || tm == TM2 || tm == TM3
}

// ModelID is the versioned identity of the network a pipeline runs:
// which registry entry (name@version) the weights came from and the
// SHA-256 of the serialized weight stream. The zero value is an
// anonymous model — a network built in memory that never passed through
// the registry. Serving layers use the identity to route per-request
// model selection, key result caches per version, and echo which model
// answered.
type ModelID struct {
	// Name and Version identify the registry entry ("name@version").
	Name    string
	Version string
	// WeightHash is the lowercase-hex SHA-256 of the serialized weights
	// (nn.Network.WeightHash), the integrity anchor behind the label.
	WeightHash string
}

// IsZero reports whether the identity is the anonymous model.
func (m ModelID) IsZero() bool { return m.Name == "" && m.Version == "" }

// String renders the canonical "name@version" form ("" for anonymous).
func (m ModelID) String() string {
	if m.IsZero() {
		return ""
	}
	if m.Version == "" {
		return m.Name
	}
	return m.Name + "@" + m.Version
}

// HashPrefix returns the first 12 hex digits of the weight hash — the
// short form health probes and logs echo.
func (m ModelID) HashPrefix() string {
	if len(m.WeightHash) < 12 {
		return m.WeightHash
	}
	return m.WeightHash[:12]
}

// Pipeline is the deployed inference system: acquisition, pre-processing
// noise filter, and the DNN behind the input buffer.
type Pipeline struct {
	// Acq models the capture hardware (nil disables acquisition effects).
	Acq *Acquisition
	// Filter is the integrated pre-processing noise filter
	// (filters.Identity{} for a filterless deployment).
	Filter filters.Filter
	// Net is the trained classifier.
	Net *nn.Network
	// Model is the versioned identity of Net (zero for networks that
	// never passed through the model registry).
	Model ModelID

	// net32 is the optional float32 inference snapshot of Net, built by
	// EnableFloat32. It is unexported so the only way to obtain one is the
	// conversion path that keeps it consistent with Net's weights.
	net32 *nn.Net32
}

// New builds a pipeline; filter may be nil for no filtering.
func New(net *nn.Network, filter filters.Filter, acq *Acquisition) *Pipeline {
	if net == nil {
		panic("pipeline: nil network")
	}
	if filter == nil {
		filter = filters.Identity{}
	}
	return &Pipeline{Acq: acq, Filter: filter, Net: net}
}

// NewModel is New for a registry-loaded network: the pipeline carries the
// versioned identity of the weights it runs, so every layer above it can
// report which name@version answered.
func NewModel(id ModelID, net *nn.Network, filter filters.Filter, acq *Acquisition) *Pipeline {
	p := New(net, filter, acq)
	p.Model = id
	return p
}

// Deliver returns the tensor that reaches the DNN when the attacker-
// controlled image x enters the pipeline under the given threat model.
func (p *Pipeline) Deliver(x *tensor.Tensor, tm ThreatModel) *tensor.Tensor {
	if tm == TM1 {
		// Post-filter buffer access: the DNN sees x as-is.
		return x.Clone()
	}
	return DeliverThrough(x, p.Filter, p.Acq, tm)
}

// DeliverThrough computes the filtered delivery of x for an arbitrary
// (filter, acquisition) pair — the TM2/TM3 semantics of Deliver without
// a Pipeline instance, so callers overriding the deployed pre-processing
// (the serving layer's evaluate filters axis) share this one definition
// of the delivery order. filter must be non-nil; acq may be nil.
func DeliverThrough(x *tensor.Tensor, filter filters.Filter, acq *Acquisition, tm ThreatModel) *tensor.Tensor {
	switch tm {
	case TM2:
		img := x
		if acq != nil {
			img = acq.Apply(img)
		}
		return filter.Apply(img)
	case TM3:
		return filter.Apply(x)
	default:
		panic(fmt.Sprintf("pipeline: unknown threat model %d", int(tm)))
	}
}

// DeliverBatch delivers every image under tm, routing the filter (and
// acquisition) stage through Filter.ApplyBatch so filters with a batched
// implementation fan out over the worker pool. Element i is
// bit-identical to Deliver(xs[i], tm).
func (p *Pipeline) DeliverBatch(xs []*tensor.Tensor, tm ThreatModel) []*tensor.Tensor {
	switch tm {
	case TM1:
		out := make([]*tensor.Tensor, len(xs))
		for i, x := range xs {
			out[i] = x.Clone()
		}
		return out
	case TM2:
		imgs := xs
		if p.Acq != nil {
			imgs = p.Acq.ApplyBatch(imgs)
		}
		return p.Filter.ApplyBatch(imgs)
	case TM3:
		return p.Filter.ApplyBatch(xs)
	default:
		panic(fmt.Sprintf("pipeline: unknown threat model %d", int(tm)))
	}
}

// DeliverGrouped delivers xs[i] under tms[i] (the slices must have equal
// length), grouping same-threat-model entries so each group's filter
// stage runs as one ApplyBatch — the serving layer's micro-batches mix
// threat models, and this keeps their filtering batched. Element i is
// bit-identical to Deliver(xs[i], tms[i]).
func (p *Pipeline) DeliverGrouped(xs []*tensor.Tensor, tms []ThreatModel) []*tensor.Tensor {
	if len(xs) != len(tms) {
		panic(fmt.Sprintf("pipeline: DeliverGrouped got %d images and %d threat models", len(xs), len(tms)))
	}
	delivered := make([]*tensor.Tensor, len(xs))
	for _, tm := range []ThreatModel{TM1, TM2, TM3} {
		var idx []int
		var group []*tensor.Tensor
		for i := range xs {
			if tms[i] == tm {
				idx = append(idx, i)
				group = append(group, xs[i])
			}
		}
		if len(idx) == 0 {
			continue
		}
		outs := p.DeliverBatch(group, tm)
		for j, i := range idx {
			delivered[i] = outs[j]
		}
	}
	for i, d := range delivered {
		if d == nil {
			panic(fmt.Sprintf("pipeline: unknown threat model %d", int(tms[i])))
		}
	}
	return delivered
}

// Probs runs the pipeline under a threat model and returns softmax
// probabilities.
func (p *Pipeline) Probs(x *tensor.Tensor, tm ThreatModel) []float64 {
	return p.Net.Probs(p.Deliver(x, tm))
}

// ProbsBatch delivers every image under tm (batched through DeliverBatch)
// and scores the whole batch through one batched network forward. Row i
// is bit-identical to Probs(xs[i], tm).
func (p *Pipeline) ProbsBatch(xs []*tensor.Tensor, tm ThreatModel) [][]float64 {
	return p.Net.ProbsBatch(p.DeliverBatch(xs, tm))
}

// ProbsViews scores one image delivered under several threat models in a
// single batched forward — the Fig. 7/9 panel cells use it to get the
// TM-I and TM-III views of an adversarial image in one network pass.
// Delivery is grouped per threat model through the batched filter path.
func (p *Pipeline) ProbsViews(x *tensor.Tensor, tms ...ThreatModel) [][]float64 {
	xs := make([]*tensor.Tensor, len(tms))
	for i := range tms {
		xs[i] = x
	}
	return p.Net.ProbsBatch(p.DeliverGrouped(xs, tms))
}

// Predict runs the pipeline under a threat model and returns the top
// class with its probability.
func (p *Pipeline) Predict(x *tensor.Tensor, tm ThreatModel) (int, float64) {
	probs := p.Probs(x, tm)
	best := mathx.ArgMax(probs)
	return best, probs[best]
}

// CleanProbs is the benign-inference path: every legitimate input passes
// the filter (and acquisition when modeled) before the DNN — identical to
// Deliver under TM2 but named for readability at call sites evaluating
// clean accuracy.
func (p *Pipeline) CleanProbs(x *tensor.Tensor) []float64 {
	return p.Probs(x, TM2)
}

// AttackerModel returns the pre-processing stage a filter-aware (FAdeML)
// attacker should fold into its differentiable model for the given threat
// model: nothing under TM1, acquisition+filter under TM2, filter under TM3.
func (p *Pipeline) AttackerModel(tm ThreatModel) filters.Filter {
	switch tm {
	case TM1:
		return filters.Identity{}
	case TM2:
		if p.Acq != nil {
			return filters.Chain{p.Acq, p.Filter}
		}
		return p.Filter
	case TM3:
		return p.Filter
	default:
		panic(fmt.Sprintf("pipeline: unknown threat model %d", int(tm)))
	}
}
