// Package pipeline models the paper's ML inference pipeline — data
// acquisition → pre-processing noise filter → input buffer → DNN — and the
// three threat models of Fig. 2 that differ in where the adversarial
// perturbation enters that pipeline.
package pipeline

import (
	"fmt"

	"repro/internal/filters"
	"repro/internal/mathx"
	"repro/internal/tensor"
)

// Acquisition simulates the data-capture hardware that Threat Model II
// routes a physical-world perturbation through: exposure gain, additive
// sensor noise, and 8-bit quantization. It stands in for the camera the
// paper's TM II assumes (substitution documented in DESIGN.md).
//
// Acquisition implements the filters.Filter interface so a filter-aware
// attacker can fold it into the differentiable pipeline: gain is exact;
// quantization and noise use the BPDA identity on the backward pass.
//
// Apply is a pure function: the sensor-noise stream is derived from the
// seed plus the image content, never from mutable generator state, so
// capturing the same image twice gives bit-identical output no matter how
// many goroutines share the Acquisition or in what order they call it.
// This is what keeps concurrent TM-II delivery (the serving layer, the
// parallel experiment engine) bit-identical to a serial run. Distinct
// draws of the noise — e.g. for EOT averaging — come from distinct seeds.
type Acquisition struct {
	// Gain multiplies pixel values (exposure); 1 is neutral.
	Gain float64
	// NoiseStd is the additive Gaussian sensor-noise sigma (0 disables).
	NoiseStd float64
	// Quantize rounds to 8-bit levels when true.
	Quantize bool
	// seed is the base of the per-image noise stream.
	seed uint64
}

// NewAcquisition builds a capture model. seed drives the sensor noise.
func NewAcquisition(gain, noiseStd float64, quantize bool, seed uint64) *Acquisition {
	if gain <= 0 {
		panic(fmt.Sprintf("pipeline: acquisition gain %v must be positive", gain))
	}
	if noiseStd < 0 {
		panic(fmt.Sprintf("pipeline: acquisition noise %v must be non-negative", noiseStd))
	}
	return &Acquisition{Gain: gain, NoiseStd: noiseStd, Quantize: quantize, seed: seed}
}

// DefaultAcquisition is the experiment default: neutral gain, one LSB of
// sensor noise, 8-bit quantization.
func DefaultAcquisition(seed uint64) *Acquisition {
	return NewAcquisition(1.0, 1.0/255, true, seed)
}

// Name implements filters.Filter.
func (a *Acquisition) Name() string {
	q := ""
	if a.Quantize {
		q = ",8bit"
	}
	return fmt.Sprintf("Acq(g=%.2g,σ=%.2g%s)", a.Gain, a.NoiseStd, q)
}

// Apply implements filters.Filter: capture the image. Safe for concurrent
// use — the noise stream is a pure function of the seed and the image.
func (a *Acquisition) Apply(img *tensor.Tensor) *tensor.Tensor {
	out := img.Clone()
	d := out.Data()
	var rng *mathx.RNG
	if a.NoiseStd > 0 {
		rng = mathx.NewRNG(a.noiseSeed(img))
	}
	for i := range d {
		v := d[i] * a.Gain
		if rng != nil {
			v += rng.NormScaled(0, a.NoiseStd)
		}
		v = mathx.Clamp01(v)
		if a.Quantize {
			v = quantize8(v)
		}
		d[i] = v
	}
	return out
}

// ApplyBatch implements filters.Filter via the serial fallback: capture
// is cheap relative to filtering and inference, and each image's noise
// stream is independent of the others.
func (a *Acquisition) ApplyBatch(imgs []*tensor.Tensor) []*tensor.Tensor {
	return filters.SerialBatch(a, imgs)
}

// noiseSeed hashes the base seed, the image shape and every pixel's bit
// pattern into the seed of this capture's private noise stream — the
// shared filters.ImageSeed construction (identical constants, so the
// stream is bit-for-bit what this package computed before the randomized
// filter family factored the hash out).
func (a *Acquisition) noiseSeed(img *tensor.Tensor) uint64 {
	return filters.ImageSeed(a.seed, img)
}

// Seed implements filters.Stochastic.
func (a *Acquisition) Seed() uint64 { return a.seed }

// WithSeed implements filters.Stochastic: an identically configured
// capture whose sensor-noise stream starts from seed. The receiver is
// never modified, so the deployed instance keeps its declared seed.
func (a *Acquisition) WithSeed(seed uint64) filters.Filter {
	c := *a
	c.seed = seed
	return &c
}

// VJP implements filters.Filter. Gain is differentiated exactly;
// quantization and noise injection use the BPDA identity (their true
// derivative is zero almost everywhere, which would blind the attacker).
func (a *Acquisition) VJP(_, upstream *tensor.Tensor) *tensor.Tensor {
	out := upstream.Clone()
	if a.Gain != 1 {
		out.ScaleInPlace(a.Gain)
	}
	return out
}

// quantize8 rounds v∈[0,1] to the nearest of 256 levels.
func quantize8(v float64) float64 {
	return float64(int(v*255+0.5)) / 255
}
