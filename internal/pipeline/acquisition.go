// Package pipeline models the paper's ML inference pipeline — data
// acquisition → pre-processing noise filter → input buffer → DNN — and the
// three threat models of Fig. 2 that differ in where the adversarial
// perturbation enters that pipeline.
package pipeline

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// Acquisition simulates the data-capture hardware that Threat Model II
// routes a physical-world perturbation through: exposure gain, additive
// sensor noise, and 8-bit quantization. It stands in for the camera the
// paper's TM II assumes (substitution documented in DESIGN.md).
//
// Acquisition implements the filters.Filter interface so a filter-aware
// attacker can fold it into the differentiable pipeline: gain is exact;
// quantization and noise use the BPDA identity on the backward pass.
type Acquisition struct {
	// Gain multiplies pixel values (exposure); 1 is neutral.
	Gain float64
	// NoiseStd is the additive Gaussian sensor-noise sigma (0 disables).
	NoiseStd float64
	// Quantize rounds to 8-bit levels when true.
	Quantize bool
	// Seed drives the sensor noise deterministically per Apply call
	// sequence.
	rng *mathx.RNG
}

// NewAcquisition builds a capture model. seed drives the sensor noise.
func NewAcquisition(gain, noiseStd float64, quantize bool, seed uint64) *Acquisition {
	if gain <= 0 {
		panic(fmt.Sprintf("pipeline: acquisition gain %v must be positive", gain))
	}
	if noiseStd < 0 {
		panic(fmt.Sprintf("pipeline: acquisition noise %v must be non-negative", noiseStd))
	}
	return &Acquisition{Gain: gain, NoiseStd: noiseStd, Quantize: quantize, rng: mathx.NewRNG(seed)}
}

// DefaultAcquisition is the experiment default: neutral gain, one LSB of
// sensor noise, 8-bit quantization.
func DefaultAcquisition(seed uint64) *Acquisition {
	return NewAcquisition(1.0, 1.0/255, true, seed)
}

// Name implements filters.Filter.
func (a *Acquisition) Name() string {
	q := ""
	if a.Quantize {
		q = ",8bit"
	}
	return fmt.Sprintf("Acq(g=%.2g,σ=%.2g%s)", a.Gain, a.NoiseStd, q)
}

// Apply implements filters.Filter: capture the image.
func (a *Acquisition) Apply(img *tensor.Tensor) *tensor.Tensor {
	out := img.Clone()
	d := out.Data()
	for i := range d {
		v := d[i] * a.Gain
		if a.NoiseStd > 0 {
			v += a.rng.NormScaled(0, a.NoiseStd)
		}
		v = mathx.Clamp01(v)
		if a.Quantize {
			v = quantize8(v)
		}
		d[i] = v
	}
	return out
}

// VJP implements filters.Filter. Gain is differentiated exactly;
// quantization and noise injection use the BPDA identity (their true
// derivative is zero almost everywhere, which would blind the attacker).
func (a *Acquisition) VJP(_, upstream *tensor.Tensor) *tensor.Tensor {
	out := upstream.Clone()
	if a.Gain != 1 {
		out.ScaleInPlace(a.Gain)
	}
	return out
}

// quantize8 rounds v∈[0,1] to the nearest of 256 levels.
func quantize8(v float64) float64 {
	return float64(int(v*255+0.5)) / 255
}
