package pipeline

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
)

var (
	netOnce sync.Once
	netInst *nn.Network
	netErr  error
)

type remapDS struct {
	inner *gtsrb.Dataset
	remap map[int]int
}

func (d remapDS) Len() int { return d.inner.Len() }
func (d remapDS) Sample(i int) (*tensor.Tensor, int) {
	img, l := d.inner.Sample(i)
	return img, d.remap[l]
}

func pipelineNet(t *testing.T) *nn.Network {
	t.Helper()
	netOnce.Do(func() {
		ds, err := gtsrb.Generate(gtsrb.Config{
			Size: 16, PerClass: 20, Seed: 11,
			Classes: []int{gtsrb.ClassStop, gtsrb.ClassSpeed60, gtsrb.ClassNoEntry},
		})
		if err != nil {
			netErr = err
			return
		}
		net, err := nn.TinyCNN(3, 16, 3, mathx.NewRNG(1))
		if err != nil {
			netErr = err
			return
		}
		remap := map[int]int{gtsrb.ClassStop: 0, gtsrb.ClassSpeed60: 1, gtsrb.ClassNoEntry: 2}
		_, netErr = train.Fit(net, remapDS{ds, remap}, train.Config{
			Epochs: 15, BatchSize: 12, Schedule: train.ConstantLR(3e-3), Seed: 2,
		})
		netInst = net
	})
	if netErr != nil {
		t.Fatalf("pipeline fixture: %v", netErr)
	}
	return netInst
}

func TestThreatModelStrings(t *testing.T) {
	if TM1.String() != "TM-I" || TM2.String() != "TM-II" || TM3.String() != "TM-III" {
		t.Fatal("threat model labels wrong")
	}
	if !strings.Contains(ThreatModel(9).String(), "9") {
		t.Fatal("unknown threat model label unhelpful")
	}
}

func TestDeliverPaths(t *testing.T) {
	net := pipelineNet(t)
	filter := filters.NewLAP(8)
	acq := DefaultAcquisition(5)
	p := New(net, filter, acq)
	img := gtsrb.Canonical(gtsrb.ClassStop, 16)

	// TM1 is a pass-through.
	tm1 := p.Deliver(img, TM1)
	if !tensor.EqualWithin(tm1, img, 0) {
		t.Fatal("TM1 delivery altered the image")
	}
	// TM3 applies exactly the filter.
	tm3 := p.Deliver(img, TM3)
	if !tensor.EqualWithin(tm3, filter.Apply(img), 1e-12) {
		t.Fatal("TM3 delivery != filter(x)")
	}
	// TM2 applies acquisition then filter: quantization makes it differ
	// from TM3 but only slightly.
	tm2 := p.Deliver(img, TM2)
	if tensor.EqualWithin(tm2, tm3, 0) {
		t.Fatal("TM2 identical to TM3 despite acquisition stage")
	}
	if diff := tensor.Sub(tm2, tm3).LInfNorm(); diff > 0.05 {
		t.Fatalf("TM2 vs TM3 difference %v implausibly large", diff)
	}
}

func TestDeliverDoesNotMutateInput(t *testing.T) {
	net := pipelineNet(t)
	p := New(net, filters.NewLAR(2), DefaultAcquisition(1))
	img := gtsrb.Canonical(gtsrb.ClassStop, 16)
	orig := img.Clone()
	for _, tm := range []ThreatModel{TM1, TM2, TM3} {
		p.Deliver(img, tm)
		if !tensor.EqualWithin(img, orig, 0) {
			t.Fatalf("%v delivery mutated the input", tm)
		}
	}
}

func TestNilFilterDefaultsToIdentity(t *testing.T) {
	net := pipelineNet(t)
	p := New(net, nil, nil)
	img := gtsrb.Canonical(gtsrb.ClassSpeed60, 16)
	if !tensor.EqualWithin(p.Deliver(img, TM3), img, 0) {
		t.Fatal("nil filter is not identity")
	}
}

func TestUnknownThreatModelPanics(t *testing.T) {
	net := pipelineNet(t)
	p := New(net, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown threat model did not panic")
		}
	}()
	p.Deliver(gtsrb.Canonical(0, 16), ThreatModel(7))
}

func TestCleanInferenceSurvivesPipeline(t *testing.T) {
	net := pipelineNet(t)
	p := New(net, filters.NewLAP(8), DefaultAcquisition(3))
	// Clean canonical images should classify correctly through the full
	// capture + filter path.
	for gid, label := range map[int]int{gtsrb.ClassStop: 0, gtsrb.ClassSpeed60: 1, gtsrb.ClassNoEntry: 2} {
		img := gtsrb.Canonical(gid, 16)
		pred, conf := p.Predict(img, TM2)
		if pred != label {
			t.Errorf("clean %s through pipeline: pred %d (%.2f), want %d",
				gtsrb.ClassName(gid), pred, conf, label)
		}
	}
}

func TestProbsSumToOne(t *testing.T) {
	net := pipelineNet(t)
	p := New(net, filters.NewLAR(1), nil)
	img := gtsrb.Canonical(gtsrb.ClassNoEntry, 16)
	for _, tm := range []ThreatModel{TM1, TM2, TM3} {
		probs := p.Probs(img, tm)
		sum := 0.0
		for _, v := range probs {
			sum += v
		}
		if !mathx.EqualWithin(sum, 1, 1e-9) {
			t.Errorf("%v probs sum to %v", tm, sum)
		}
	}
}

func TestAttackerModelComposition(t *testing.T) {
	net := pipelineNet(t)
	filter := filters.NewLAP(4)
	acq := DefaultAcquisition(9)
	p := New(net, filter, acq)

	if name := p.AttackerModel(TM1).Name(); name != "none" {
		t.Errorf("TM1 attacker model = %q", name)
	}
	if name := p.AttackerModel(TM3).Name(); name != "lap(np=4)" {
		t.Errorf("TM3 attacker model = %q", name)
	}
	tm2name := p.AttackerModel(TM2).Name()
	if !strings.Contains(tm2name, "Acq") || !strings.Contains(tm2name, "lap(np=4)") {
		t.Errorf("TM2 attacker model = %q", tm2name)
	}
	// Without acquisition, TM2 model reduces to the filter.
	p2 := New(net, filter, nil)
	if name := p2.AttackerModel(TM2).Name(); name != "lap(np=4)" {
		t.Errorf("TM2 without acq = %q", name)
	}
}

func TestAcquisitionQuantization(t *testing.T) {
	acq := NewAcquisition(1, 0, true, 1)
	img := tensor.Full(0.5001, 3, 4, 4)
	out := acq.Apply(img)
	for _, v := range out.Data() {
		lv := v * 255
		if diff := lv - float64(int(lv+0.5)); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("value %v not on 8-bit grid", v)
		}
	}
}

func TestAcquisitionGainAndVJP(t *testing.T) {
	acq := NewAcquisition(0.8, 0, false, 1)
	img := tensor.Full(0.5, 1, 2, 2)
	out := acq.Apply(img)
	if !mathx.EqualWithin(out.Data()[0], 0.4, 1e-12) {
		t.Fatalf("gain 0.8 gave %v", out.Data()[0])
	}
	u := tensor.Full(1, 1, 2, 2)
	g := acq.VJP(img, u)
	if !mathx.EqualWithin(g.Data()[0], 0.8, 1e-12) {
		t.Fatalf("VJP gain = %v", g.Data()[0])
	}
}

func TestAcquisitionNoiseDeterministicPerSeed(t *testing.T) {
	img := tensor.Full(0.5, 1, 4, 4)
	a := NewAcquisition(1, 0.02, false, 7).Apply(img)
	b := NewAcquisition(1, 0.02, false, 7).Apply(img)
	if !tensor.EqualWithin(a, b, 0) {
		t.Fatal("same-seed acquisition differs")
	}
	c := NewAcquisition(1, 0.02, false, 8).Apply(img)
	if tensor.EqualWithin(a, c, 0) {
		t.Fatal("different-seed acquisition identical")
	}
}

func TestAcquisitionValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero gain":      func() { NewAcquisition(0, 0, false, 1) },
		"negative noise": func() { NewAcquisition(1, -0.1, false, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			fn()
		}()
	}
}

func TestNilNetworkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil network accepted")
		}
	}()
	New(nil, nil, nil)
}
