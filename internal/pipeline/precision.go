package pipeline

import (
	"fmt"
	"strings"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Precision selects the numeric lane a prediction runs on. The float64
// lane is the system's source of truth — it is what the paper metrics,
// attacks and training use — while the float32 lane is the serving fast
// path backed by nn.Net32's fused kernels. The zero value is Float64, so
// every pre-existing call site keeps its exact behaviour.
type Precision int

const (
	// Float64 is the reference lane (default).
	Float64 Precision = iota
	// Float32 is the fast lane: one weight rounding at conversion, a
	// float32 forward pass, float64 softmax over exactly-widened logits.
	Float32
)

// String implements fmt.Stringer with the canonical flag spellings.
func (p Precision) String() string {
	switch p {
	case Float32:
		return "float32"
	default:
		return "float64"
	}
}

// Valid reports whether p is a defined precision.
func (p Precision) Valid() bool { return p == Float64 || p == Float32 }

// ParsePrecision converts a user-supplied string — a CLI flag, an HTTP
// request field — into a Precision. The empty string means "the default
// lane" (Float64 here; the serving layer substitutes its configured
// default before calling this).
func ParsePrecision(s string) (Precision, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "64", "f64", "fp64", "float64", "double":
		return Float64, nil
	case "32", "f32", "fp32", "float32", "single":
		return Float32, nil
	}
	return 0, fmt.Errorf("pipeline: unknown precision %q (want float32 or float64)", s)
}

// EnableFloat32 builds the pipeline's float32 snapshot from the current
// trained weights. It must be called before Probs32/Net32; converting is
// one pass over the weights, so callers do it once at startup (serving)
// rather than per request.
func (p *Pipeline) EnableFloat32() error {
	n32, err := p.Net.ToFloat32()
	if err != nil {
		return err
	}
	p.net32 = n32
	return nil
}

// Net32 returns the float32 snapshot, or nil if EnableFloat32 has not
// been called (or failed).
func (p *Pipeline) Net32() *nn.Net32 { return p.net32 }

// Probs32 runs the pipeline under a threat model on the float32 lane.
// Delivery (acquisition + filter) stays in float64 — the lane boundary is
// the DNN input buffer, mirroring where the paper's threat models place
// the attacker — and only the network forward runs in float32. Panics if
// EnableFloat32 was not called.
func (p *Pipeline) Probs32(x *tensor.Tensor, tm ThreatModel) []float64 {
	if p.net32 == nil {
		panic("pipeline: Probs32 before EnableFloat32")
	}
	return p.net32.Probs(p.Deliver(x, tm))
}
