package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/nn"
)

// Sidecar manifests bring registry-grade integrity to standalone weight
// files — the experiment cache and `fademl-train -out` checkpoints —
// without pulling them into the versioned store: <path> holds the
// SaveWeights blob and <path>.manifest.json a Manifest with empty
// name/version. LoadFileVerified refuses to load bytes that don't hash
// to the manifest's record, so a corrupt or truncated file is a clear
// error instead of silently-trusted garbage weights.

// ManifestSuffix is appended to a weight file's path to name its sidecar.
const ManifestSuffix = ".manifest.json"

// SaveFileWithManifest writes the network's weights to path and a
// sidecar manifest beside it, returning the weight hash. Both writes are
// atomic; the manifest is written last so a crash cannot leave a
// manifest describing absent weights.
func SaveFileWithManifest(path string, net *nn.Network, arch ArchSpec, note string) (string, error) {
	hash, err := net.WeightHash()
	if err != nil {
		return "", fmt.Errorf("registry: hashing weights: %w", err)
	}
	if err := net.SaveWeightsFile(path); err != nil {
		return "", err
	}
	man := Manifest{
		Arch:          arch,
		WeightsSHA256: hash,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		Note:          note,
	}
	if err := writeJSONAtomic(path+ManifestSuffix, man); err != nil {
		return "", fmt.Errorf("registry: writing sidecar manifest: %w", err)
	}
	return hash, nil
}

// LoadFileVerified loads the weight file at path into net after checking
// its bytes against the sidecar manifest's SHA-256, and returns the
// verified hash. A missing weight file surfaces as an os.IsNotExist
// error (a cache miss callers may handle); a present weight file with a
// missing, unreadable, or mismatching manifest is always an error — an
// unverifiable blob must not be trusted.
func LoadFileVerified(path string, net *nn.Network) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	manRaw, err := os.ReadFile(path + ManifestSuffix)
	if err != nil {
		return "", fmt.Errorf("registry: weight file %s has no readable sidecar manifest (refusing unverified load): %w", path, err)
	}
	var man Manifest
	if err := json.Unmarshal(manRaw, &man); err != nil {
		return "", fmt.Errorf("registry: parsing sidecar manifest for %s: %w", path, err)
	}
	sum := sha256.Sum256(raw)
	if got := hex.EncodeToString(sum[:]); got != man.WeightsSHA256 {
		return "", fmt.Errorf("registry: weight file %s is corrupt or truncated: sha256 %s, manifest records %s",
			path, got, man.WeightsSHA256)
	}
	if err := net.LoadWeights(bytes.NewReader(raw)); err != nil {
		return "", fmt.Errorf("registry: loading %s: %w", path, err)
	}
	return man.WeightsSHA256, nil
}

// ReadSidecar returns the sidecar manifest of a weight file, if any.
func ReadSidecar(path string) (Manifest, error) {
	raw, err := os.ReadFile(path + ManifestSuffix)
	if err != nil {
		return Manifest{}, err
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return Manifest{}, fmt.Errorf("registry: parsing sidecar manifest for %s: %w", path, err)
	}
	return man, nil
}
