package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/nn"
)

// Store layout under the registry root:
//
//	<root>/<name>/<version>/manifest.json
//	<root>/<name>/<version>/weights.bin
//
// Versions are v1, v2, … in creation order; both files are written
// atomically (temp + rename) so a crashed save never leaves a
// half-registered version with a valid manifest.

const (
	manifestFile = "manifest.json"
	weightsFile  = "weights.bin"
)

// Model is a materialized version: the manifest plus the loaded network
// and its float32 inference snapshot. Instances are cached per version
// inside the Registry — callers share the weight storage and must clone
// (nn.Network.Clone) before mutating.
type Model struct {
	Manifest Manifest
	// Net holds the hash-verified weights.
	Net *nn.Network
	// Net32 is the float32 snapshot (nil when the architecture has no
	// float32 lowering; F32Err then says why).
	Net32  *nn.Net32
	F32Err error
}

// Ref returns the resolved reference of the model.
func (m *Model) Ref() Ref { return Ref{Name: m.Manifest.Name, Version: m.Manifest.Version} }

// Registry is a directory-backed versioned model store. All methods are
// safe for concurrent use.
type Registry struct {
	root string

	mu    sync.Mutex
	cache map[string]*Model // key: "name@version"
}

// Open binds a registry to a root directory, creating it if needed.
func Open(root string) (*Registry, error) {
	if root == "" {
		return nil, fmt.Errorf("registry: empty root path")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating root: %w", err)
	}
	return &Registry{root: root, cache: make(map[string]*Model)}, nil
}

// Root returns the store's root directory.
func (r *Registry) Root() string { return r.root }

func (r *Registry) versionDir(ref Ref) string {
	return filepath.Join(r.root, ref.Name, ref.Version)
}

// SaveOptions carries the optional metadata of a Save.
type SaveOptions struct {
	// Note is recorded verbatim in the manifest.
	Note string
}

// Save registers the network's current weights as a new version of name
// and returns the materialized model. If some existing version of name
// already holds bit-identical weights under the same architecture, that
// version is returned instead of minting a duplicate — re-registering an
// unchanged checkpoint (a cache-warm serve bootstrap, a re-run training
// job) is idempotent. The new version's Parent is the previous latest.
func (r *Registry) Save(name string, net *nn.Network, arch ArchSpec, opts SaveOptions) (*Model, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	if net == nil {
		return nil, fmt.Errorf("registry: nil network")
	}
	hash, err := net.WeightHash()
	if err != nil {
		return nil, fmt.Errorf("registry: hashing weights: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	versions, err := r.versionsLocked(name)
	if err != nil {
		return nil, err
	}
	parent := ""
	next := 1
	for _, v := range versions {
		man, err := r.readManifest(Ref{Name: name, Version: v})
		if err != nil {
			return nil, err
		}
		if man.WeightsSHA256 == hash && man.Arch.equal(arch) {
			return r.loadLocked(Ref{Name: name, Version: v})
		}
		parent = Ref{Name: name, Version: v}.String()
		if n := versionNumber(v); n >= next {
			next = n + 1
		}
	}
	ref := Ref{Name: name, Version: "v" + strconv.Itoa(next)}
	dir := r.versionDir(ref)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating %s: %w", ref, err)
	}
	if err := net.SaveWeightsFile(filepath.Join(dir, weightsFile)); err != nil {
		return nil, fmt.Errorf("registry: writing weights for %s: %w", ref, err)
	}
	man := Manifest{
		Name:          ref.Name,
		Version:       ref.Version,
		Arch:          arch,
		WeightsSHA256: hash,
		Parent:        parent,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		Note:          opts.Note,
	}
	if err := writeJSONAtomic(filepath.Join(dir, manifestFile), man); err != nil {
		return nil, fmt.Errorf("registry: writing manifest for %s: %w", ref, err)
	}
	// Materialize from disk rather than adopting the caller's network:
	// the round-trip proves the stored bytes load back, and the cached
	// model stays untouched if the caller keeps training net.
	return r.loadLocked(ref)
}

// Load materializes a model version, verifying the weight bytes against
// the manifest hash and the architecture shape-by-shape. The reference
// must be fully resolved (use Resolve for "latest" semantics). Repeated
// loads of the same version return the one cached instance.
func (r *Registry) Load(ref Ref) (*Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.loadLocked(ref)
}

func (r *Registry) loadLocked(ref Ref) (*Model, error) {
	if ref.Version == "" {
		return nil, fmt.Errorf("registry: unresolved reference %q (no version)", ref.Name)
	}
	key := ref.String()
	if m, ok := r.cache[key]; ok {
		return m, nil
	}
	man, err := r.readManifest(ref)
	if err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(filepath.Join(r.versionDir(ref), weightsFile))
	if err != nil {
		return nil, fmt.Errorf("registry: reading weights for %s: %w", ref, err)
	}
	sum := sha256.Sum256(raw)
	if got := hex.EncodeToString(sum[:]); got != man.WeightsSHA256 {
		return nil, fmt.Errorf("registry: weights for %s are corrupt or truncated: sha256 %s, manifest records %s",
			ref, got, man.WeightsSHA256)
	}
	net, err := man.Arch.Build()
	if err != nil {
		return nil, fmt.Errorf("registry: rebuilding %s: %w", ref, err)
	}
	if err := net.LoadWeights(bytes.NewReader(raw)); err != nil {
		return nil, fmt.Errorf("registry: loading weights for %s: %w", ref, err)
	}
	m := &Model{Manifest: man, Net: net}
	m.Net32, m.F32Err = net.ToFloat32()
	r.cache[key] = m
	return m, nil
}

// Resolve turns a "name" or "name@version" spec into a concrete Ref,
// picking the highest version when none is given.
func (r *Registry) Resolve(spec string) (Ref, error) {
	ref, err := ParseRef(spec)
	if err != nil {
		return Ref{}, err
	}
	if ref.Version != "" {
		return ref, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	versions, err := r.versionsLocked(ref.Name)
	if err != nil {
		return Ref{}, err
	}
	if len(versions) == 0 {
		return Ref{}, fmt.Errorf("registry: no versions of model %q", ref.Name)
	}
	ref.Version = versions[len(versions)-1]
	return ref, nil
}

// List returns the manifests of every stored version, sorted by name
// then version order.
func (r *Registry) List() ([]Manifest, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entries, err := os.ReadDir(r.root)
	if err != nil {
		return nil, fmt.Errorf("registry: reading root: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []Manifest
	for _, name := range names {
		versions, err := r.versionsLocked(name)
		if err != nil {
			return nil, err
		}
		for _, v := range versions {
			man, err := r.readManifest(Ref{Name: name, Version: v})
			if err != nil {
				return nil, err
			}
			out = append(out, man)
		}
	}
	return out, nil
}

// Versions lists a model's versions in creation order (empty slice when
// the name is unknown).
func (r *Registry) Versions(name string) ([]string, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.versionsLocked(name)
}

// versionsLocked lists the version directories of name that hold a
// manifest, sorted numerically.
func (r *Registry) versionsLocked(name string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(r.root, name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("registry: reading versions of %q: %w", name, err)
	}
	var versions []string
	for _, e := range entries {
		if !e.IsDir() || versionNumber(e.Name()) == 0 {
			continue
		}
		if _, err := os.Stat(filepath.Join(r.root, name, e.Name(), manifestFile)); err != nil {
			continue // half-written version: no manifest, not listable
		}
		versions = append(versions, e.Name())
	}
	sort.Slice(versions, func(i, j int) bool {
		return versionNumber(versions[i]) < versionNumber(versions[j])
	})
	return versions, nil
}

// versionNumber parses "v<n>" (n ≥ 1); 0 means not a version directory.
func versionNumber(v string) int {
	if !strings.HasPrefix(v, "v") {
		return 0
	}
	n, err := strconv.Atoi(v[1:])
	if err != nil || n < 1 {
		return 0
	}
	return n
}

func (r *Registry) readManifest(ref Ref) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(r.versionDir(ref), manifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: reading manifest for %s: %w", ref, err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return Manifest{}, fmt.Errorf("registry: parsing manifest for %s: %w", ref, err)
	}
	if man.Name != ref.Name || man.Version != ref.Version {
		return Manifest{}, fmt.Errorf("registry: manifest for %s names %s@%s", ref, man.Name, man.Version)
	}
	return man, nil
}

// writeJSONAtomic marshals v and writes it via temp + rename.
func writeJSONAtomic(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
