package registry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mathx"
	"repro/internal/nn"
)

func testNet(t *testing.T, seed uint64) *nn.Network {
	t.Helper()
	net, err := nn.TinyCNN(3, 16, 7, mathx.NewRNG(seed))
	if err != nil {
		t.Fatalf("TinyCNN: %v", err)
	}
	return net
}

func testArch() ArchSpec { return TinyCNNSpec(3, 16, 7) }

func TestSaveLoadRoundTrip(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	net := testNet(t, 3)
	m, err := reg.Save("tiny", net, testArch(), SaveOptions{Note: "unit"})
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if got := m.Ref().String(); got != "tiny@v1" {
		t.Fatalf("first version = %s, want tiny@v1", got)
	}
	wantHash, err := net.WeightHash()
	if err != nil {
		t.Fatalf("WeightHash: %v", err)
	}
	if m.Manifest.WeightsSHA256 != wantHash {
		t.Fatalf("manifest hash %s, live network %s", m.Manifest.WeightsSHA256, wantHash)
	}
	loaded, err := reg.Load(Ref{Name: "tiny", Version: "v1"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded != m {
		t.Fatalf("Load returned a new instance; want the cached materialization")
	}
	gotHash, err := loaded.Net.WeightHash()
	if err != nil {
		t.Fatalf("WeightHash(loaded): %v", err)
	}
	if gotHash != wantHash {
		t.Fatalf("loaded weights hash %s, want %s", gotHash, wantHash)
	}
	if loaded.F32Err != nil {
		t.Fatalf("float32 snapshot unavailable: %v", loaded.F32Err)
	}
}

func TestVersionsIncrementAndResolve(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	m1, err := reg.Save("tiny", testNet(t, 3), testArch(), SaveOptions{})
	if err != nil {
		t.Fatalf("Save v1: %v", err)
	}
	m2, err := reg.Save("tiny", testNet(t, 4), testArch(), SaveOptions{})
	if err != nil {
		t.Fatalf("Save v2: %v", err)
	}
	if m2.Manifest.Version != "v2" {
		t.Fatalf("second save minted %s, want v2", m2.Manifest.Version)
	}
	if m2.Manifest.Parent != "tiny@v1" {
		t.Fatalf("v2 parent = %q, want tiny@v1", m2.Manifest.Parent)
	}
	ref, err := reg.Resolve("tiny")
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if ref.Version != "v2" {
		t.Fatalf("Resolve(tiny) = %s, want tiny@v2", ref)
	}
	ref, err = reg.Resolve("tiny@v1")
	if err != nil {
		t.Fatalf("Resolve pinned: %v", err)
	}
	if ref != m1.Ref() {
		t.Fatalf("Resolve(tiny@v1) = %s", ref)
	}
	if _, err := reg.Resolve("absent"); err == nil {
		t.Fatal("Resolve(absent) succeeded")
	}
	versions, err := reg.Versions("tiny")
	if err != nil {
		t.Fatalf("Versions: %v", err)
	}
	if len(versions) != 2 || versions[0] != "v1" || versions[1] != "v2" {
		t.Fatalf("Versions = %v", versions)
	}
}

func TestSaveDedupesIdenticalWeights(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	net := testNet(t, 3)
	m1, err := reg.Save("tiny", net, testArch(), SaveOptions{})
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	m2, err := reg.Save("tiny", net, testArch(), SaveOptions{})
	if err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	if m2.Manifest.Version != m1.Manifest.Version {
		t.Fatalf("identical weights minted %s after %s", m2.Manifest.Version, m1.Manifest.Version)
	}
}

func TestLoadRejectsCorruptAndTruncated(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := reg.Save("tiny", testNet(t, 3), testArch(), SaveOptions{}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := filepath.Join(reg.Root(), "tiny", "v1", "weights.bin")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read weights: %v", err)
	}

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0xff
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatalf("write corrupt weights: %v", err)
	}
	reg2, _ := Open(reg.Root()) // fresh cache so the load hits disk
	if _, err := reg2.Load(Ref{Name: "tiny", Version: "v1"}); err == nil ||
		!strings.Contains(err.Error(), "corrupt or truncated") {
		t.Fatalf("corrupt load error = %v, want corrupt-or-truncated", err)
	}

	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatalf("write truncated weights: %v", err)
	}
	reg3, _ := Open(reg.Root())
	if _, err := reg3.Load(Ref{Name: "tiny", Version: "v1"}); err == nil ||
		!strings.Contains(err.Error(), "corrupt or truncated") {
		t.Fatalf("truncated load error = %v, want corrupt-or-truncated", err)
	}
}

func TestListAcrossNames(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := reg.Save("beta", testNet(t, 5), testArch(), SaveOptions{}); err != nil {
		t.Fatalf("Save beta: %v", err)
	}
	if _, err := reg.Save("alpha", testNet(t, 6), testArch(), SaveOptions{}); err != nil {
		t.Fatalf("Save alpha: %v", err)
	}
	if _, err := reg.Save("alpha", testNet(t, 7), testArch(), SaveOptions{}); err != nil {
		t.Fatalf("Save alpha v2: %v", err)
	}
	manifests, err := reg.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	var got []string
	for _, m := range manifests {
		got = append(got, m.Name+"@"+m.Version)
	}
	want := []string{"alpha@v1", "alpha@v2", "beta@v1"}
	if len(got) != len(want) {
		t.Fatalf("List = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
}

func TestParseRef(t *testing.T) {
	cases := []struct {
		in      string
		want    Ref
		wantErr bool
	}{
		{"tiny", Ref{Name: "tiny"}, false},
		{" tiny@v3 ", Ref{Name: "tiny", Version: "v3"}, false},
		{"", Ref{}, true},
		{"tiny@", Ref{}, true},
		{"a/b@v1", Ref{}, true},
		{"a@b@c", Ref{Name: "a", Version: "b@c"}, false},
	}
	for _, c := range cases {
		got, err := ParseRef(c.in)
		if c.wantErr != (err != nil) {
			t.Errorf("ParseRef(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseRef(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestSidecarRoundTripAndVerification(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "weights.bin")
	net := testNet(t, 9)
	hash, err := SaveFileWithManifest(path, net, testArch(), "unit")
	if err != nil {
		t.Fatalf("SaveFileWithManifest: %v", err)
	}
	wantHash, _ := net.WeightHash()
	if hash != wantHash {
		t.Fatalf("sidecar hash %s, live network %s", hash, wantHash)
	}

	into := testNet(t, 10)
	got, err := LoadFileVerified(path, into)
	if err != nil {
		t.Fatalf("LoadFileVerified: %v", err)
	}
	if got != wantHash {
		t.Fatalf("verified hash %s, want %s", got, wantHash)
	}
	intoHash, _ := into.WeightHash()
	if intoHash != wantHash {
		t.Fatalf("loaded network hash %s, want %s", intoHash, wantHash)
	}

	// Missing weight file → os.IsNotExist (cache-miss contract).
	if _, err := LoadFileVerified(filepath.Join(dir, "absent.bin"), into); !os.IsNotExist(err) {
		t.Fatalf("missing file error = %v, want IsNotExist", err)
	}

	// Missing sidecar → refuse, not silently trust.
	bare := filepath.Join(dir, "bare.bin")
	if err := net.SaveWeightsFile(bare); err != nil {
		t.Fatalf("SaveWeightsFile: %v", err)
	}
	if _, err := LoadFileVerified(bare, into); err == nil ||
		!strings.Contains(err.Error(), "no readable sidecar manifest") {
		t.Fatalf("bare blob error = %v, want refusal", err)
	}

	// Corrupt weights behind a valid sidecar → clear error.
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("corrupting weights: %v", err)
	}
	if _, err := LoadFileVerified(path, into); err == nil ||
		!strings.Contains(err.Error(), "corrupt or truncated") {
		t.Fatalf("corrupt file error = %v, want corrupt-or-truncated", err)
	}
}
