// Package registry is the versioned model store behind the serving
// layer: a model is name@version, backed by a manifest (architecture
// spec, weight SHA-256, lineage) plus the nn.SaveWeights blob. Loads
// rebuild the architecture from the manifest, verify the weight bytes
// against the recorded hash, and match every tensor by name and shape —
// a corrupt, truncated, or wrong-topology file is a clear error, never
// garbage weights. Materialized networks (and their float32 snapshots)
// are cached per version so repeated loads of the same version share
// one weight set.
package registry

import (
	"fmt"
	"strings"

	"repro/internal/mathx"
	"repro/internal/nn"
)

// Architecture families the registry can rebuild from a manifest.
const (
	FamilyVGG     = "vgg"
	FamilyTinyCNN = "tinycnn"
)

// ArchSpec is the declarative architecture description stored in a
// manifest — enough to rebuild the exact network topology so the strict
// name+shape matching of nn.LoadWeights can do the rest.
type ArchSpec struct {
	// Family selects the builder: FamilyVGG or FamilyTinyCNN.
	Family string `json:"family"`
	// InChannels and InSize give the CHW input geometry.
	InChannels int `json:"in_channels"`
	InSize     int `json:"in_size"`
	// Classes is the classifier width.
	Classes int `json:"classes"`
	// Channels holds the per-block filter counts (vgg family: exactly 5
	// entries; unused for tinycnn, whose widths are fixed).
	Channels []int `json:"channels,omitempty"`
	// Dropout is the classifier dropout rate (vgg family only).
	Dropout float64 `json:"dropout,omitempty"`
}

// VGGSpec converts an nn.VGGConfig into its manifest form.
func VGGSpec(cfg nn.VGGConfig) ArchSpec {
	return ArchSpec{
		Family:     FamilyVGG,
		InChannels: cfg.InChannels,
		InSize:     cfg.InSize,
		Classes:    cfg.Classes,
		Channels:   append([]int(nil), cfg.Channels[:]...),
		Dropout:    cfg.Dropout,
	}
}

// TinyCNNSpec describes the fixed-width test convnet.
func TinyCNNSpec(inChannels, inSize, classes int) ArchSpec {
	return ArchSpec{
		Family:     FamilyTinyCNN,
		InChannels: inChannels,
		InSize:     inSize,
		Classes:    classes,
	}
}

// Build materializes a freshly initialized network of the described
// topology. The initialization RNG is fixed: every tensor is about to be
// overwritten by a hash-verified LoadWeights, so only the topology
// matters.
func (a ArchSpec) Build() (*nn.Network, error) {
	switch a.Family {
	case FamilyVGG:
		if len(a.Channels) != 5 {
			return nil, fmt.Errorf("registry: vgg arch wants 5 channel widths, manifest has %d", len(a.Channels))
		}
		cfg := nn.VGGConfig{
			InChannels: a.InChannels,
			InSize:     a.InSize,
			Classes:    a.Classes,
			Dropout:    a.Dropout,
		}
		copy(cfg.Channels[:], a.Channels)
		return nn.VGGNet(cfg, mathx.NewRNG(1))
	case FamilyTinyCNN:
		return nn.TinyCNN(a.InChannels, a.InSize, a.Classes, mathx.NewRNG(1))
	default:
		return nil, fmt.Errorf("registry: unknown architecture family %q", a.Family)
	}
}

// equal reports whether two specs describe the same topology.
func (a ArchSpec) equal(b ArchSpec) bool {
	if a.Family != b.Family || a.InChannels != b.InChannels ||
		a.InSize != b.InSize || a.Classes != b.Classes ||
		a.Dropout != b.Dropout || len(a.Channels) != len(b.Channels) {
		return false
	}
	for i := range a.Channels {
		if a.Channels[i] != b.Channels[i] {
			return false
		}
	}
	return true
}

// Manifest is the metadata record of one model version, stored as
// manifest.json beside the weight blob.
type Manifest struct {
	// Name and Version identify the entry; together they form the
	// canonical "name@version" reference.
	Name    string `json:"name"`
	Version string `json:"version"`
	// Arch rebuilds the network topology on load.
	Arch ArchSpec `json:"arch"`
	// WeightsSHA256 is the lowercase-hex SHA-256 of the weight file —
	// identical to nn.Network.WeightHash of the stored network.
	WeightsSHA256 string `json:"weights_sha256"`
	// Parent is the "name@version" this version derives from ("" for the
	// first version of a name).
	Parent string `json:"parent,omitempty"`
	// CreatedAt is an RFC 3339 UTC timestamp.
	CreatedAt string `json:"created_at"`
	// Note is free-form provenance (training profile, purpose).
	Note string `json:"note,omitempty"`
}

// Ref names a model version. An empty Version means "latest" until
// resolved.
type Ref struct {
	Name    string
	Version string
}

// String renders "name@version" (bare name while unresolved).
func (r Ref) String() string {
	if r.Version == "" {
		return r.Name
	}
	return r.Name + "@" + r.Version
}

// ParseRef splits a "name" or "name@version" spec. The version part is
// optional and empty means latest.
func ParseRef(spec string) (Ref, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Ref{}, fmt.Errorf("registry: empty model reference")
	}
	name, version, found := strings.Cut(spec, "@")
	if err := validateName(name); err != nil {
		return Ref{}, err
	}
	if found && version == "" {
		return Ref{}, fmt.Errorf("registry: reference %q has an empty version", spec)
	}
	return Ref{Name: name, Version: version}, nil
}

// validateName rejects names that would escape the store layout or
// collide with the reference syntax.
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("registry: empty model name")
	}
	if strings.ContainsAny(name, "@/\\") || name == "." || name == ".." {
		return fmt.Errorf("registry: invalid model name %q (no '@', path separators, or dot dirs)", name)
	}
	return nil
}
