package attacks

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gtsrb"
	"repro/internal/tensor"
)

// TestParseNameRoundTrip is the registry contract of the v2 API: every
// registered attack's canonical Name() is a spec that Parse rebuilds into
// an identically configured instance.
func TestParseNameRoundTrip(t *testing.T) {
	for _, name := range Names() {
		orig, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		spec := orig.Name()
		rebuilt, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if rebuilt.Name() != spec {
			t.Errorf("round trip drifted: %q -> %q", spec, rebuilt.Name())
		}
		// The canonical spec must reconstruct the exact configuration, not
		// just an equal-looking name.
		if !reflect.DeepEqual(orig, rebuilt) {
			t.Errorf("%s: Parse(Name()) config %+v != original %+v", name, rebuilt, orig)
		}
	}
}

// TestParseBareNamesMatchNew checks that a bare registry name (and its
// case variants) parses to the default-configured instance.
func TestParseBareNamesMatchNew(t *testing.T) {
	for _, name := range Names() {
		def, _ := New(name)
		for _, spec := range []string{name, strings.ToUpper(name), " " + name + " "} {
			got, err := Parse(spec)
			if err != nil {
				t.Fatalf("Parse(%q): %v", spec, err)
			}
			if got.Name() != def.Name() {
				t.Errorf("Parse(%q) = %q, want default %q", spec, got.Name(), def.Name())
			}
		}
	}
}

// TestParseAppliesParameters checks typed knob assignment through specs.
func TestParseAppliesParameters(t *testing.T) {
	atk, err := Parse("pgd(eps=0.5, steps=3, restarts=1, seed=9)")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := atk.(*PGD)
	if !ok {
		t.Fatalf("Parse returned %T, want *PGD", atk)
	}
	if p.Epsilon != 0.5 || p.Steps != 3 || p.Restarts != 1 || p.Seed != 9 {
		t.Fatalf("parsed PGD = %+v", p)
	}
	// Untouched knobs keep their defaults.
	if p.Alpha != NewPGD().Alpha {
		t.Fatalf("alpha default lost: %v", p.Alpha)
	}

	b, err := Parse("bim(early=false,steps=2)")
	if err != nil {
		t.Fatal(err)
	}
	if bim := b.(*BIM); bim.EarlyStop || bim.Steps != 2 {
		t.Fatalf("parsed BIM = %+v", bim)
	}
}

// TestParseMalformedSpecs enumerates the error cases a CLI or HTTP caller
// can feed in: every one must be a descriptive error, never a panic or a
// silently default-configured attack.
func TestParseMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"",
		"   ",
		"nope",
		"nope(eps=1)",
		"pgd(",
		"pgd)",
		"pgd(eps=0.1",
		"(eps=0.1)",
		"pgd(eps)",
		"pgd(eps=)",
		"pgd(=0.1)",
		"pgd(bogus=1)",
		"pgd(eps=abc)",
		"pgd(steps=1.5)",
		"pgd(seed=-1)",
		"bim(early=maybe)",
		"pgd,fgsm",
	} {
		if atk, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted: %v", spec, atk.Name())
		}
	}
}

// TestParsedAttackGenerates is the end-to-end spec path: a parameterized
// spec string produces a working attack whose output matches the same
// configuration built in Go.
func TestParsedAttackGenerates(t *testing.T) {
	c := testClassifier(t)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	label := fixtureLabel[gtsrb.ClassStop]
	goal := Goal{Source: label, Target: 1}

	parsed, err := Parse("bim(eps=0.1,alpha=0.01,steps=12,early=false)")
	if err != nil {
		t.Fatal(err)
	}
	manual := &BIM{Epsilon: 0.1, Alpha: 0.01, Steps: 12, EarlyStop: false}
	rp, err := parsed.Generate(context.Background(), c, clean, goal)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := manual.Generate(context.Background(), c, clean, goal)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualWithin(rp.Adversarial, rm.Adversarial, 0) || rp.Queries != rm.Queries {
		t.Fatal("spec-built attack diverged from the equivalent Go-built attack")
	}
}

// TestSetUnknownParam pins the Configurable error surface.
func TestSetUnknownParam(t *testing.T) {
	atk := NewPGD()
	if err := atk.Set("bogus", "1"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("Set(bogus) = %v", err)
	}
	if err := atk.Set("eps", "0.25"); err != nil || atk.Epsilon != 0.25 {
		t.Fatalf("Set(eps) = %v, eps = %v", err, atk.Epsilon)
	}
}

// TestParamsHaveDocs keeps the self-describing registry honest: every
// knob of every attack carries documentation and a distinct name.
func TestParamsHaveDocs(t *testing.T) {
	for _, name := range Names() {
		atk, _ := New(name)
		cfg, ok := atk.(Configurable)
		if !ok {
			t.Fatalf("registry attack %q is not Configurable", name)
		}
		seen := map[string]bool{}
		for _, p := range cfg.Params() {
			if p.Name == "" || p.Doc == "" || p.Get == nil || p.Set == nil {
				t.Errorf("%s: incomplete param descriptor %+v", name, p.Name)
			}
			if seen[p.Name] {
				t.Errorf("%s: duplicate param %q", name, p.Name)
			}
			seen[p.Name] = true
		}
	}
}

// TestSplitSpecs covers the paren-aware comma splitting the -attacks
// flags and HTTP payloads rely on.
func TestSplitSpecs(t *testing.T) {
	got := SplitSpecs("pgd(eps=0.03,steps=40), fgsm ,bim(early=false)")
	want := []string{"pgd(eps=0.03,steps=40)", "fgsm", "bim(early=false)"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SplitSpecs = %q, want %q", got, want)
	}
	if got := SplitSpecs("  "); got != nil {
		t.Fatalf("SplitSpecs(blank) = %q", got)
	}
}
