package attacks

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// Goal describes what an attack should achieve.
type Goal struct {
	// Source is the image's true class (required by untargeted attacks and
	// used for success bookkeeping).
	Source int
	// Target is the class to force; Untargeted (-1) requests any
	// misclassification away from Source.
	Target int
}

// Untargeted is the Goal.Target sentinel for untargeted evasion.
const Untargeted = -1

// IsTargeted reports whether the goal names a specific target class.
func (g Goal) IsTargeted() bool { return g.Target != Untargeted }

// Validate checks the goal against a classifier's class count.
func (g Goal) Validate(c Classifier) error {
	n := c.NumClasses()
	if g.Source < 0 || g.Source >= n {
		return fmt.Errorf("attacks: goal source class %d outside [0,%d)", g.Source, n)
	}
	if g.Target != Untargeted && (g.Target < 0 || g.Target >= n) {
		return fmt.Errorf("attacks: goal target class %d outside [0,%d)", g.Target, n)
	}
	if g.Target == g.Source {
		return fmt.Errorf("attacks: goal target equals source class %d", g.Source)
	}
	return nil
}

// achieved reports whether predicting pred satisfies the goal.
func (g Goal) achieved(pred int) bool {
	if g.IsTargeted() {
		return pred == g.Target
	}
	return pred != g.Source
}

// Result is the outcome of one attack run.
type Result struct {
	// Adversarial is the crafted image (clamped to [0, 1]).
	Adversarial *tensor.Tensor
	// Noise is Adversarial − original.
	Noise *tensor.Tensor
	// Success reports whether the goal was met under the attacker's model.
	Success bool
	// PredClass and Confidence describe the attacker-model prediction on
	// Adversarial.
	PredClass  int
	Confidence float64
	// Iterations counts optimizer iterations; Queries counts forward or
	// gradient evaluations of the classifier.
	Iterations int
	Queries    int
}

// finishResult fills the prediction bookkeeping common to all attacks.
func finishResult(c Classifier, original, adv *tensor.Tensor, goal Goal, iters, queries int) *Result {
	pred, conf := Predict(c, adv)
	return &Result{
		Adversarial: adv,
		Noise:       tensor.Sub(adv, original),
		Success:     goal.achieved(pred),
		PredClass:   pred,
		Confidence:  conf,
		Iterations:  iters,
		Queries:     queries + 1,
	}
}

// Attack generates adversarial examples against a classifier.
type Attack interface {
	// Name identifies the attack, e.g. "FGSM(0.03)".
	Name() string
	// Generate crafts an adversarial example from the clean image x
	// pursuing goal. The input is never modified.
	Generate(c Classifier, x *tensor.Tensor, goal Goal) (*Result, error)
}

// clampUnit clips img into the valid pixel range in place.
func clampUnit(img *tensor.Tensor) { img.Clamp01() }

// clampBall projects adv into the L∞ ball of radius eps around x, in place.
func clampBall(adv, x *tensor.Tensor, eps float64) {
	ad, xd := adv.Data(), x.Data()
	for i := range ad {
		ad[i] = mathx.Clamp(ad[i], xd[i]-eps, xd[i]+eps)
	}
}
