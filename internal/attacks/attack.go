package attacks

import (
	"context"
	"fmt"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// Goal describes what an attack should achieve.
type Goal struct {
	// Source is the image's true class (required by untargeted attacks and
	// used for success bookkeeping).
	Source int
	// Target is the class to force; Untargeted (-1) requests any
	// misclassification away from Source.
	Target int
}

// Untargeted is the Goal.Target sentinel for untargeted evasion.
const Untargeted = -1

// IsTargeted reports whether the goal names a specific target class.
func (g Goal) IsTargeted() bool { return g.Target != Untargeted }

// Validate checks the goal against a classifier's class count. Every
// Generate implementation calls it before touching the model, so a bad
// source or target class is always a returned error, never an
// out-of-range index deep inside an optimization loop.
func (g Goal) Validate(c Classifier) error {
	n := c.NumClasses()
	if g.Source < 0 || g.Source >= n {
		return fmt.Errorf("attacks: goal source class %d outside [0,%d)", g.Source, n)
	}
	if g.Target != Untargeted && (g.Target < 0 || g.Target >= n) {
		return fmt.Errorf("attacks: goal target class %d outside [0,%d)", g.Target, n)
	}
	if g.Target == g.Source {
		return fmt.Errorf("attacks: goal target equals source class %d", g.Source)
	}
	return nil
}

// achieved reports whether predicting pred satisfies the goal.
func (g Goal) achieved(pred int) bool {
	if g.IsTargeted() {
		return pred == g.Target
	}
	return pred != g.Source
}

// Result is the outcome of one attack run.
//
// Query-accounting invariant: Queries counts every classifier evaluation
// the run performed — each Logits/LogitsBatch row, each GradFromLogits
// call — including the final prediction recorded in PredClass/Confidence.
// Composite classifiers (EOT, FilteredClassifier) count as one query per
// call against the interface the attack was handed, regardless of how
// many inner network passes they fan out to.
type Result struct {
	// Adversarial is the crafted image (clamped to [0, 1]).
	Adversarial *tensor.Tensor
	// Noise is Adversarial − original.
	Noise *tensor.Tensor
	// Success reports whether the goal was met under the attacker's model.
	Success bool
	// PredClass and Confidence describe the attacker-model prediction on
	// Adversarial.
	PredClass  int
	Confidence float64
	// Iterations counts optimizer iterations; Queries counts classifier
	// evaluations per the invariant above.
	Iterations int
	Queries    int
	// Truncated reports that the run was cut short — context cancelled,
	// Budget exhausted, or deadline passed — and Adversarial is the best
	// candidate found up to that point rather than a full-budget optimum.
	Truncated bool
}

// Attack generates adversarial examples against a classifier.
//
// Generate honours ctx at iteration granularity: cancellation, an
// attached Budget (WithBudget) and deadlines stop the optimization loop
// at the next iteration boundary, and the run returns its best-so-far
// Result flagged Truncated instead of an error. With a background
// context and no budget, outputs are bit-identical to an unbudgeted run
// (pinned by the golden equivalence tests).
type Attack interface {
	// Name returns the attack's canonical, parseable spec string, e.g.
	// "pgd(eps=0.03,alpha=0.004,steps=20,restarts=2,seed=1)". For every
	// registry attack, Parse(Name()) rebuilds an identically configured
	// instance.
	Name() string
	// Generate crafts an adversarial example from the clean image x
	// pursuing goal. The input is never modified.
	Generate(ctx context.Context, c Classifier, x *tensor.Tensor, goal Goal) (*Result, error)
}

// clampUnit clips img into the valid pixel range in place.
func clampUnit(img *tensor.Tensor) { img.Clamp01() }

// clampBall projects adv into the L∞ ball of radius eps around x, in place.
func clampBall(adv, x *tensor.Tensor, eps float64) {
	ad, xd := adv.Data(), x.Data()
	for i := range ad {
		ad[i] = mathx.Clamp(ad[i], xd[i]-eps, xd[i]+eps)
	}
}
