package attacks

import (
	"context"
	"fmt"

	"repro/internal/lbfgs"
	"repro/internal/tensor"
)

// LBFGS is Szegedy et al.'s box-constrained L-BFGS attack, the first
// published adversarial-example method and one of the paper's three
// evaluated attacks. It minimizes
//
//	c·‖x* − x‖² + CE(f(x*), target)   subject to x* ∈ [0, 1]ⁿ
//
// and line-searches the trade-off constant c: starting from InitialC it
// halves c (weakening the distortion penalty) until the attack succeeds,
// then reports the first success — the minimal-distortion adversarial
// example among the tested penalties.
type LBFGS struct {
	// InitialC is the starting distortion weight.
	InitialC float64
	// CSteps is how many times c may be halved searching for success.
	CSteps int
	// MaxIter bounds L-BFGS iterations per c value.
	MaxIter int
}

// NewLBFGS constructs the attack with the defaults used throughout the
// experiments (c₀=10, 8 halvings, 60 iterations per solve).
func NewLBFGS() *LBFGS {
	return &LBFGS{InitialC: 10, CSteps: 8, MaxIter: 60}
}

// Name implements Attack.
func (l *LBFGS) Name() string { return specName("lbfgs", l.Params()) }

// Params implements Configurable.
func (l *LBFGS) Params() []Param {
	return []Param{
		floatParam("c", "starting distortion weight", &l.InitialC),
		intParam("csteps", "distortion-weight halvings searched", &l.CSteps),
		intParam("iters", "L-BFGS iterations per c value", &l.MaxIter),
	}
}

// Set implements Configurable.
func (l *LBFGS) Set(name, value string) error { return setParam(l.Params(), name, value) }

// Generate implements Attack. Untargeted goals are not supported: the
// formulation needs a target class (the paper's scenarios are targeted).
// Cancellation and budget reach down into the solver at L-BFGS-iteration
// granularity via the optimizer's Stop hook.
func (l *LBFGS) Generate(ctx context.Context, c Classifier, x *tensor.Tensor, goal Goal) (*Result, error) {
	if err := goal.Validate(c); err != nil {
		return nil, err
	}
	if !goal.IsTargeted() {
		return nil, fmt.Errorf("attacks: L-BFGS attack requires a targeted goal")
	}
	if l.InitialC <= 0 || l.CSteps <= 0 || l.MaxIter <= 0 {
		return nil, fmt.Errorf("attacks: L-BFGS parameters must be positive")
	}

	n := x.Len()
	lower := make([]float64, n)
	upper := make([]float64, n)
	for i := range upper {
		upper[i] = 1
	}
	xd := x.Data()

	e := begin(ctx, l.Name())
	iters := 0
	cWeight := l.InitialC
	var lastAdv *tensor.Tensor
	for step := 0; step < l.CSteps && !e.halt(); step++ {
		obj := func(z []float64, grad []float64) float64 {
			img := tensor.FromSlice(z, x.Shape()...)
			ceLoss, ceGrad := CELossGrad(c, img, goal.Target)
			e.query(1)
			dist := 0.0
			gd := ceGrad.Data()
			for i := range z {
				d := z[i] - xd[i]
				dist += d * d
				grad[i] = gd[i] + 2*cWeight*d
			}
			return ceLoss + cWeight*dist
		}
		res, err := lbfgs.Minimize(obj, append([]float64(nil), xd...), lbfgs.Config{
			MaxIter: l.MaxIter,
			Lower:   lower,
			Upper:   upper,
			GradTol: 1e-7,
			Stop:    e.halt,
		})
		if err != nil {
			return nil, fmt.Errorf("attacks: L-BFGS solve failed: %w", err)
		}
		iters += res.Iters
		e.iterBatch(res.Iters)
		adv := tensor.FromSlice(append([]float64(nil), res.X...), x.Shape()...)
		clampUnit(adv)
		lastAdv = adv
		pred, _ := Predict(c, adv)
		e.query(1)
		if goal.achieved(pred) {
			return e.finish(c, x, adv, goal, iters), nil
		}
		cWeight /= 2 // relax the distortion penalty and retry
	}
	if lastAdv == nil {
		// Halted before the first solve began; report the clean image.
		lastAdv = x.Clone()
	}
	// No success at any tested c; report the final attempt.
	return e.finish(c, x, lastAdv, goal, iters), nil
}
