package attacks

import (
	"context"
	"fmt"

	"repro/internal/tensor"
)

// UniversalResult is the outcome of crafting a universal adversarial
// perturbation: a single noise pattern applied unchanged to every input.
type UniversalResult struct {
	// Noise is the universal perturbation (add to any image, then clamp).
	Noise *tensor.Tensor
	// FoolingRate is the fraction of the crafting set whose prediction the
	// perturbation changes (or redirects to the target).
	FoolingRate float64
	// Epochs actually run before reaching the desired rate.
	Epochs int
	// Queries counts classifier evaluations, per the Result invariant.
	Queries int
	// Truncated reports the crafting loop was cut short by context
	// cancellation or budget exhaustion; Noise is the best-so-far pattern.
	Truncated bool
}

// Universal crafts a universal adversarial perturbation in the spirit of
// Moosavi-Dezfooli et al. (CVPR 2017), using iterative FGSM-style updates
// aggregated over a crafting set under an L∞ budget. With a targeted goal
// it becomes the "whole-stream payload" the paper's Fig. 6 applies: one
// perturbation pushing every sign toward the scenario's target class.
type Universal struct {
	// Epsilon is the L∞ budget of the universal noise.
	Epsilon float64
	// StepSize is the per-image gradient-sign step folded into the noise.
	StepSize float64
	// Epochs is the number of passes over the crafting set.
	Epochs int
	// TargetRate stops early once the fooling rate reaches it.
	TargetRate float64
}

// NewUniversal constructs the crafting procedure with a 10/255 budget.
func NewUniversal() *Universal {
	return &Universal{Epsilon: 10.0 / 255, StepSize: 2.0 / 255, Epochs: 5, TargetRate: 0.8}
}

// Name identifies the procedure.
func (u *Universal) Name() string { return fmt.Sprintf("universal(eps=%s)", formatFloat(u.Epsilon)) }

// Craft builds a universal perturbation over the crafting images. goal
// semantics: targeted goals push every image toward goal.Target;
// untargeted goals push each image away from its own current prediction
// (goal.Source is ignored per-image, so only the target side of the goal
// is validated). Cancellation and budget are honoured at per-image
// granularity; a truncated run returns the best-so-far noise pattern
// flagged Truncated.
func (u *Universal) Craft(ctx context.Context, c Classifier, imgs []*tensor.Tensor, goal Goal) (*UniversalResult, error) {
	if len(imgs) == 0 {
		return nil, fmt.Errorf("attacks: Universal.Craft needs a non-empty crafting set")
	}
	if u.Epsilon <= 0 || u.StepSize <= 0 || u.Epochs <= 0 {
		return nil, fmt.Errorf("attacks: Universal parameters must be positive")
	}
	if goal.IsTargeted() {
		if goal.Target < 0 || goal.Target >= c.NumClasses() {
			return nil, fmt.Errorf("attacks: Universal target class %d out of range", goal.Target)
		}
	}
	e := begin(ctx, u.Name())
	noise := tensor.New(imgs[0].Shape()...)
	result := &UniversalResult{}
epochs:
	for epoch := 0; epoch < u.Epochs && !e.halt(); epoch++ {
		result.Epochs = epoch + 1
		for _, img := range imgs {
			if !img.SameShape(imgs[0]) {
				return nil, fmt.Errorf("attacks: Universal crafting set has mixed shapes")
			}
			if e.halt() {
				break epochs
			}
			perturbed := tensor.Add(img, noise)
			perturbed.Clamp01()
			var grad *tensor.Tensor
			var dir float64
			if goal.IsTargeted() {
				pred, _ := Predict(c, perturbed)
				e.query(1)
				if pred == goal.Target {
					continue // already fooled; spend budget elsewhere
				}
				_, grad = CELossGrad(c, perturbed, goal.Target)
				e.query(1)
				dir = -1
			} else {
				pred, _ := Predict(c, perturbed)
				e.query(1)
				_, grad = CELossGrad(c, perturbed, pred)
				e.query(1)
				dir = +1
			}
			noise.AddScaled(dir*u.StepSize, tensor.SignOf(grad))
			noise.Clamp(-u.Epsilon, u.Epsilon)
		}
		result.FoolingRate = u.foolingRate(c, imgs, noise, goal, e)
		e.iterDone()
		if result.FoolingRate >= u.TargetRate {
			break
		}
	}
	result.Noise = noise
	result.Queries = e.queries
	result.Truncated = e.truncated
	return result, nil
}

func (u *Universal) foolingRate(c Classifier, imgs []*tensor.Tensor, noise *tensor.Tensor, goal Goal, e *exec) float64 {
	fooled := 0
	for _, img := range imgs {
		cleanPred, _ := Predict(c, img)
		perturbed := tensor.Add(img, noise)
		perturbed.Clamp01()
		advPred, _ := Predict(c, perturbed)
		e.query(2)
		if goal.IsTargeted() {
			if advPred == goal.Target {
				fooled++
			}
		} else if advPred != cleanPred {
			fooled++
		}
	}
	return float64(fooled) / float64(len(imgs))
}
