package attacks

import (
	"sync"
	"testing"

	"repro/internal/gtsrb"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
)

// The attack tests share one small trained classifier over four visually
// distinct GTSRB classes. Training once keeps the package's test time low
// while still attacking a genuinely learned decision boundary.

var fixtureClasses = []int{gtsrb.ClassStop, gtsrb.ClassSpeed60, gtsrb.ClassTurnLeft, gtsrb.ClassTurnRight}

// remap maps GTSRB ids to the fixture's 4 contiguous labels.
var fixtureLabel = map[int]int{
	gtsrb.ClassStop:      0,
	gtsrb.ClassSpeed60:   1,
	gtsrb.ClassTurnLeft:  2,
	gtsrb.ClassTurnRight: 3,
}

type remappedDataset struct {
	inner *gtsrb.Dataset
}

func (d remappedDataset) Len() int { return d.inner.Len() }
func (d remappedDataset) Sample(i int) (*tensor.Tensor, int) {
	img, label := d.inner.Sample(i)
	return img, fixtureLabel[label]
}

var (
	fixtureOnce sync.Once
	fixtureNet  *nn.Network
	fixtureErr  error
)

// testNet returns the shared trained classifier (16×16 RGB, 4 classes).
func testNet(t *testing.T) *nn.Network {
	t.Helper()
	fixtureOnce.Do(func() {
		ds, err := gtsrb.Generate(gtsrb.Config{
			Size: 16, PerClass: 30, Seed: 42, Classes: fixtureClasses,
		})
		if err != nil {
			fixtureErr = err
			return
		}
		rng := mathx.NewRNG(7)
		net, err := nn.TinyCNN(3, 16, 4, rng)
		if err != nil {
			fixtureErr = err
			return
		}
		_, err = train.Fit(net, remappedDataset{ds}, train.Config{
			Epochs:    25,
			BatchSize: 15,
			Schedule:  train.CosineDecay{Base: 4e-3, Floor: 5e-4, Total: 25},
			Seed:      3,
		})
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureNet = net
	})
	if fixtureErr != nil {
		t.Fatalf("fixture training failed: %v", fixtureErr)
	}
	return fixtureNet
}

// testClassifier returns the shared classifier wrapped for attacks.
func testClassifier(t *testing.T) Classifier {
	return NetClassifier{Net: testNet(t)}
}

// canonical returns the canonical image of a fixture class with its
// fixture label.
func canonical(t *testing.T, gtsrbID int) (*tensor.Tensor, int) {
	t.Helper()
	label, ok := fixtureLabel[gtsrbID]
	if !ok {
		t.Fatalf("class %d not in fixture", gtsrbID)
	}
	return gtsrb.Canonical(gtsrbID, 16), label
}

// requireCleanAccuracy skips attack assertions that are meaningless when
// the fixture failed to learn a class (should not happen with the fixed
// seeds; guards against silent fixture drift).
func requireCorrect(t *testing.T, c Classifier, img *tensor.Tensor, label int) {
	t.Helper()
	pred, conf := Predict(c, img)
	if pred != label {
		t.Fatalf("fixture misclassifies clean class %d as %d (conf %.2f) — fixture drifted", label, pred, conf)
	}
}
