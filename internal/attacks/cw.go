package attacks

import (
	"context"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// CW is the Carlini & Wagner L2 attack (the "CWI" entry of the paper's
// attack-library figures). It optimizes in tanh space, so the box
// constraint is satisfied by construction:
//
//	x* = (tanh(w) + 1)/2
//	minimize ‖x* − x‖² + c · max(max_{i≠t} Z_i − Z_t, −κ)
//
// using plain gradient descent with momentum over w, binary-searching the
// constant c between attack success and distortion.
type CW struct {
	// Kappa is the confidence margin κ.
	Kappa float64
	// Steps is the number of optimizer iterations per c.
	Steps int
	// LR is the optimizer learning rate.
	LR float64
	// InitialC seeds the c binary search; BinarySearch is its depth.
	InitialC     float64
	BinarySearch int
}

// NewCW constructs the attack with moderate defaults (κ=0, 120 steps,
// 4 binary-search rounds).
func NewCW() *CW {
	return &CW{Kappa: 0, Steps: 120, LR: 0.02, InitialC: 1, BinarySearch: 4}
}

// Name implements Attack.
func (a *CW) Name() string { return specName("cw", a.Params()) }

// Params implements Configurable.
func (a *CW) Params() []Param {
	return []Param{
		floatParam("kappa", "confidence margin κ", &a.Kappa),
		intParam("steps", "optimizer iterations per c value", &a.Steps),
		floatParam("lr", "optimizer learning rate", &a.LR),
		floatParam("c", "initial margin weight for the c search", &a.InitialC),
		intParam("search", "binary-search depth over c", &a.BinarySearch),
	}
}

// Set implements Configurable.
func (a *CW) Set(name, value string) error { return setParam(a.Params(), name, value) }

// Generate implements Attack. The C&W formulation is targeted.
func (a *CW) Generate(ctx context.Context, c Classifier, x *tensor.Tensor, goal Goal) (*Result, error) {
	if err := goal.Validate(c); err != nil {
		return nil, err
	}
	if !goal.IsTargeted() {
		return nil, fmt.Errorf("attacks: C&W attack requires a targeted goal")
	}
	if a.Steps <= 0 || a.LR <= 0 || a.InitialC <= 0 || a.BinarySearch <= 0 {
		return nil, fmt.Errorf("attacks: C&W parameters must be positive")
	}

	n := x.Len()
	// tanh-space parameterization of the clean image, nudged inward so
	// atanh is finite.
	w0 := make([]float64, n)
	for i, v := range x.Data() {
		v = math.Min(math.Max(v, 1e-6), 1-1e-6)
		w0[i] = math.Atanh(2*v - 1)
	}

	e := begin(ctx, a.Name())
	iters := 0
	cLo, cHi := 0.0, math.Inf(1)
	cVal := a.InitialC
	var bestAdv *tensor.Tensor
	bestDist := math.Inf(1)

	for round := 0; round < a.BinarySearch && !e.halt(); round++ {
		w := append([]float64(nil), w0...)
		vel := make([]float64, n)
		successAtC := false
		for it := 0; it < a.Steps && !e.halt(); it++ {
			iters++
			// Forward map w -> adv image.
			adv := tensor.New(x.Shape()...)
			ad := adv.Data()
			for i := range ad {
				ad[i] = (math.Tanh(w[i]) + 1) / 2
			}
			// Margin loss gradient on logits.
			var margin float64
			_, grad := c.GradFromLogits(adv, func(z []float64) []float64 {
				bestOther, bestIdx := math.Inf(-1), -1
				for i, v := range z {
					if i != goal.Target && v > bestOther {
						bestOther, bestIdx = v, i
					}
				}
				margin = bestOther - z[goal.Target]
				d := make([]float64, len(z))
				if margin > -a.Kappa {
					d[bestIdx] = cVal
					d[goal.Target] = -cVal
				}
				return d
			})
			e.query(1)
			// Total gradient in w space: distortion term + margin term,
			// chained through dx/dw = (1 - tanh²(w))/2.
			gd := grad.Data()
			xd := x.Data()
			for i := range w {
				th := math.Tanh(w[i])
				dxdw := (1 - th*th) / 2
				gTotal := (2*(ad[i]-xd[i]) + gd[i]) * dxdw
				vel[i] = 0.9*vel[i] - a.LR*gTotal
				w[i] += vel[i]
			}
			if margin <= -a.Kappa {
				successAtC = true
				dist := tensor.Sub(adv, x).L2Norm()
				if dist < bestDist {
					bestDist = dist
					bestAdv = adv.Clone()
				}
			}
			e.iterDone()
		}
		// Binary search on c: success → try smaller (less distortion
		// pressure is not the point here — c multiplies the margin term,
		// so success means we can lower c to reduce distortion).
		if successAtC {
			cHi = cVal
			cVal = (cLo + cVal) / 2
		} else {
			cLo = cVal
			if math.IsInf(cHi, 1) {
				cVal *= 10
			} else {
				cVal = (cVal + cHi) / 2
			}
		}
	}
	if bestAdv == nil {
		// Attack failed at every c; fall back to the clean image so the
		// caller gets honest "no success" bookkeeping.
		bestAdv = x.Clone()
	}
	return e.finish(c, x, bestAdv, goal, iters), nil
}
