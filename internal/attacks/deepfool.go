package attacks

import (
	"context"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// DeepFool is Moosavi-Dezfooli et al.'s minimal-perturbation untargeted
// attack: it iteratively linearizes the decision boundaries around the
// current point and steps just past the nearest one. A library extension
// beyond the paper's trio.
type DeepFool struct {
	// MaxIter bounds the linearization iterations.
	MaxIter int
	// Overshoot inflates the final step so the point crosses the boundary.
	Overshoot float64
	// Candidates restricts boundary search to the top-k runner-up classes
	// (0 means all classes) to bound the per-iteration gradient cost.
	Candidates int
}

// NewDeepFool constructs the attack with the canonical parameters
// (50 iterations, 2% overshoot, 10 candidate classes).
func NewDeepFool() *DeepFool {
	return &DeepFool{MaxIter: 50, Overshoot: 0.02, Candidates: 10}
}

// Name implements Attack.
func (d *DeepFool) Name() string { return specName("deepfool", d.Params()) }

// Params implements Configurable.
func (d *DeepFool) Params() []Param {
	return []Param{
		intParam("iters", "maximum linearization iterations", &d.MaxIter),
		floatParam("overshoot", "boundary-crossing inflation", &d.Overshoot),
		intParam("candidates", "runner-up classes searched (0 = all)", &d.Candidates),
	}
}

// Set implements Configurable.
func (d *DeepFool) Set(name, value string) error { return setParam(d.Params(), name, value) }

// Generate implements Attack. DeepFool is untargeted: the goal's Target
// must be Untargeted, and success means leaving the source class.
func (d *DeepFool) Generate(ctx context.Context, c Classifier, x *tensor.Tensor, goal Goal) (*Result, error) {
	if err := goal.Validate(c); err != nil {
		return nil, err
	}
	if goal.IsTargeted() {
		return nil, fmt.Errorf("attacks: DeepFool is untargeted; use Goal.Target = Untargeted")
	}
	if d.MaxIter <= 0 {
		return nil, fmt.Errorf("attacks: DeepFool MaxIter must be positive")
	}

	e := begin(ctx, d.Name())
	adv := x.Clone()
	iters := 0
	// classGrad extracts the gradient of a single logit.
	classGrad := func(img *tensor.Tensor, class int) ([]float64, *tensor.Tensor) {
		logits, g := c.GradFromLogits(img, func(z []float64) []float64 {
			dz := make([]float64, len(z))
			dz[class] = 1
			return dz
		})
		e.query(1)
		return logits, g
	}

	for it := 0; it < d.MaxIter && !e.halt(); it++ {
		iters = it + 1
		logits, gradSrc := classGrad(adv, goal.Source)
		pred := 0
		for i := range logits {
			if logits[i] > logits[pred] {
				pred = i
			}
		}
		if pred != goal.Source {
			e.iterDone()
			break
		}
		// Candidate classes: nearest runner-up logits.
		var order []int
		for i := range logits {
			if i != goal.Source {
				order = append(order, i)
			}
		}
		// Sort by logit descending (closest boundaries first, roughly).
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && logits[order[j]] > logits[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		if d.Candidates > 0 && len(order) > d.Candidates {
			order = order[:d.Candidates]
		}

		// Find the nearest linearized boundary.
		bestRatio := math.Inf(1)
		var bestW *tensor.Tensor
		var bestF float64
		for _, k := range order {
			_, gradK := classGrad(adv, k)
			w := tensor.Sub(gradK, gradSrc)
			fDiff := logits[k] - logits[goal.Source]
			wNorm := w.L2Norm()
			if wNorm < 1e-12 {
				continue
			}
			ratio := math.Abs(fDiff) / wNorm
			if ratio < bestRatio {
				bestRatio = ratio
				bestW = w
				bestF = fDiff
			}
		}
		if bestW == nil {
			e.iterDone()
			break
		}
		// Step just past the boundary: r = |f|/‖w‖² · w.
		wNorm := bestW.L2Norm()
		scale := (math.Abs(bestF) + 1e-6) / (wNorm * wNorm)
		adv.AddScaled((1+d.Overshoot)*scale, bestW)
		clampUnit(adv)
		e.iterDone()
	}
	return e.finish(c, x, adv, goal, iters), nil
}
