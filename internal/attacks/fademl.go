package attacks

import (
	"context"
	"fmt"

	"repro/internal/filters"
	"repro/internal/mathx"
	"repro/internal/tensor"
)

// FAdeML is the paper's pre-processing noise-Filter-aware Adversarial ML
// attack (Section IV). It wraps any gradient-based attack from the library
// and makes it filter-aware: the wrapped attack's optimization runs against
// a FilteredClassifier whose forward pass applies the deployed
// pre-processing filter chain before the DNN, and whose backward pass
// chains the filters' vector-Jacobian products into the input gradient
// (Eq. 3's δn/δf(cost) term).
//
// The six steps of the paper's methodology map onto Generate as follows:
//
//  1. choose reference sample x and target class y  → the (x, goal) inputs;
//  2. compute prediction probabilities under TM I   → probsClean, probsTargetRef;
//  3. add scaled adversarial noise                  → the wrapped attack's update;
//  4. compute probabilities under TM II/III         → the FilteredClassifier forward;
//  5. compare TM I vs TM II/III via Eq. 2           → CostTrace entries;
//  6. iterate the optimization                      → the wrapped attack's loop.
type FAdeML struct {
	// Base is the underlying attack (L-BFGS, FGSM, BIM, ... from the library).
	Base Attack
	// Filter is the modeled pre-processing chain (LAP/LAR configuration,
	// optionally preceded by the acquisition stage under Threat Model II).
	Filter filters.Filter
	// Eta scales the final noise (the η of Eq. 3); 1 keeps the wrapped
	// attack's own budget. Values below 1 trade attack strength for
	// imperceptibility.
	Eta float64
}

// NewFAdeML wraps base so it optimizes through filter.
func NewFAdeML(base Attack, filter filters.Filter) *FAdeML {
	return &FAdeML{Base: base, Filter: filter, Eta: 1}
}

// Name implements Attack. The wrapper is not a registry entry (it needs a
// filter), so its name is a display form, not a Parse spec.
func (f *FAdeML) Name() string {
	return fmt.Sprintf("FAdeML[%s|%s]", f.Base.Name(), f.Filter.Name())
}

// Generate implements Attack: it runs the base attack against the
// filter-composed classifier, then rescales the noise by Eta and reports
// success through the same filtered view (the attacker-side estimate of
// Threat Model II/III behaviour). Context, budget and observer flow
// through unchanged to the base attack; queries are counted against the
// filtered classifier per the Result invariant (the η<1 path adds exactly
// one evaluation for the rescaled image's prediction).
func (f *FAdeML) Generate(ctx context.Context, c Classifier, x *tensor.Tensor, goal Goal) (*Result, error) {
	if f.Base == nil || f.Filter == nil {
		return nil, fmt.Errorf("attacks: FAdeML needs both a base attack and a filter")
	}
	if f.Eta <= 0 || f.Eta > 1 {
		return nil, fmt.Errorf("attacks: FAdeML eta %v outside (0, 1]", f.Eta)
	}
	if err := goal.Validate(c); err != nil {
		return nil, err
	}
	fc := FilteredClassifier{Inner: c, Pre: f.Filter}
	res, err := f.Base.Generate(ctx, fc, x, goal)
	if err != nil {
		return nil, fmt.Errorf("attacks: FAdeML base attack: %w", err)
	}
	if f.Eta != 1 {
		adv := x.Clone()
		adv.AddScaled(f.Eta, res.Noise)
		clampUnit(adv)
		pred, conf := Predict(fc, adv)
		return &Result{
			Adversarial: adv,
			Noise:       tensor.Sub(adv, x),
			Success:     goal.achieved(pred),
			PredClass:   pred,
			Confidence:  conf,
			Iterations:  res.Iterations,
			Queries:     res.Queries + 1,
			Truncated:   res.Truncated,
		}, nil
	}
	return res, nil
}

// CostTrace records the Eq. 2 cost-function trajectory of a filter-aware
// optimization: for each checkpoint, the divergence between the top-5
// probability mass the adversarial example achieves under Threat Model I
// (no filter in the attacker path) and under Threat Model II/III (through
// the filter).
type CostTrace struct {
	// Steps holds f(cost) = Σ_{n=1..5} P_I(Cn) − P_II(C*n) per checkpoint.
	Steps []float64
}

// Eq2Cost computes the paper's Eq. 2 cost between two probability vectors:
// the summed top-k probability mass of probsI minus that of probsII.
func Eq2Cost(probsI, probsII []float64, k int) float64 {
	sumTop := func(p []float64) float64 {
		s := 0.0
		for _, idx := range mathx.TopKIndices(p, k) {
			s += p[idx]
		}
		return s
	}
	return sumTop(probsI) - sumTop(probsII)
}

// GenerateWithTrace runs an explicit iterative Eq. 3 optimization —
// x* = η·(n + δn/δf(cost)) + x — recording the Eq. 2 cost after every
// iteration. It is the paper's Fig. 8 loop made concrete: a BIM-style
// filter-aware descent whose per-step cost compares the unfiltered (TM I)
// and filtered (TM II/III) views of the current adversarial example.
//
// steps and alpha control the iteration count and step size; epsilon is
// the L∞ budget. The returned trace has one entry per completed
// iteration; ctx cancellation and budgets truncate the loop like any
// Generate call, flagging the Result.
func (f *FAdeML) GenerateWithTrace(ctx context.Context, c Classifier, x *tensor.Tensor, goal Goal, steps int, alpha, epsilon float64) (*Result, *CostTrace, error) {
	if err := goal.Validate(c); err != nil {
		return nil, nil, err
	}
	if !goal.IsTargeted() {
		return nil, nil, fmt.Errorf("attacks: GenerateWithTrace requires a targeted goal")
	}
	if steps <= 0 || alpha <= 0 || epsilon <= 0 {
		return nil, nil, fmt.Errorf("attacks: trace parameters must be positive")
	}
	fc := FilteredClassifier{Inner: c, Pre: f.Filter}
	e := begin(ctx, f.Name())
	adv := x.Clone()
	trace := &CostTrace{}
	iters := 0
	for i := 0; i < steps && !e.halt(); i++ {
		iters = i + 1
		// Gradient of the targeted loss through the filter (δ/δ f(cost)).
		_, grad := CELossGrad(fc, adv, goal.Target)
		e.query(1)
		adv.AddScaled(-alpha*f.etaOrOne(), tensor.SignOf(grad))
		clampBall(adv, x, epsilon)
		clampUnit(adv)
		// Eq. 2 checkpoint: TM I (direct) vs TM II/III (filtered) views.
		probsI := Probs(c, adv)
		probsII := Probs(fc, adv)
		e.query(2)
		trace.Steps = append(trace.Steps, Eq2Cost(probsI, probsII, 5))
		e.iterDone()
	}
	res := e.finish(fc, x, adv, goal, iters)
	return res, trace, nil
}

func (f *FAdeML) etaOrOne() float64 {
	if f.Eta > 0 && f.Eta <= 1 {
		return f.Eta
	}
	return 1
}
