package attacks

import (
	"context"
	"testing"

	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

func TestSPSAUntargetedEvades(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassTurnRight)
	requireCorrect(t, c, img, label)
	atk := &SPSA{Epsilon: 0.08, Alpha: 0.01, Steps: 30, Samples: 24, Delta: 0.02, Seed: 5}
	res, err := atk.Generate(context.Background(), c, img, Goal{Source: label, Target: Untargeted})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("SPSA failed: still class %d at %.2f", res.PredClass, res.Confidence)
	}
	if res.Noise.LInfNorm() > 0.08+1e-9 {
		t.Fatalf("SPSA noise %v exceeds budget", res.Noise.LInfNorm())
	}
}

func TestSPSAIsBlackBox(t *testing.T) {
	// SPSA must work against a classifier that only exposes Logits —
	// verify by wrapping the fixture so GradFromLogits panics.
	c := gradlessClassifier{inner: testClassifier(t)}
	img, label := canonical(t, gtsrb.ClassTurnLeft)
	atk := &SPSA{Epsilon: 0.08, Alpha: 0.012, Steps: 20, Samples: 16, Delta: 0.02, Seed: 7}
	if _, err := atk.Generate(context.Background(), c, img, Goal{Source: label, Target: Untargeted}); err != nil {
		t.Fatal(err)
	}
}

type gradlessClassifier struct{ inner Classifier }

func (g gradlessClassifier) NumClasses() int                   { return g.inner.NumClasses() }
func (g gradlessClassifier) Logits(x *tensor.Tensor) []float64 { return g.inner.Logits(x) }
func (g gradlessClassifier) GradFromLogits(*tensor.Tensor, func([]float64) []float64) ([]float64, *tensor.Tensor) {
	panic("SPSA must not request gradients")
}

func TestSPSAValidation(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	goal := Goal{Source: label, Target: 1}
	for name, atk := range map[string]*SPSA{
		"zero eps":     {Epsilon: 0, Alpha: 0.01, Steps: 5, Samples: 4, Delta: 0.01},
		"zero samples": {Epsilon: 0.1, Alpha: 0.01, Steps: 5, Samples: 0, Delta: 0.01},
		"zero delta":   {Epsilon: 0.1, Alpha: 0.01, Steps: 5, Samples: 4, Delta: 0},
	} {
		if _, err := atk.Generate(context.Background(), c, img, goal); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestEOTAveragesOverDraws(t *testing.T) {
	base := testClassifier(t)
	// Stochastic pipeline: acquisition with per-draw noise seeds.
	eot := NewEOT(func(draw int) Classifier {
		acq := pipeline.NewAcquisition(1.0, 0.02, false, uint64(100+draw))
		return FilteredClassifier{Inner: base, Pre: filters.Chain{acq}}
	}, 4)
	if eot.NumClasses() != base.NumClasses() {
		t.Fatal("EOT class count wrong")
	}
	img, _ := canonical(t, gtsrb.ClassStop)
	logits := eot.Logits(img)
	if len(logits) != base.NumClasses() {
		t.Fatalf("EOT logits length %d", len(logits))
	}
	// Gradients must flow and be finite.
	_, grad := CELossGrad(eot, img, 1)
	if !grad.AllFinite() || grad.L2Norm() == 0 {
		t.Fatal("EOT gradient degenerate")
	}
}

func TestEOTAttackThroughNoisyAcquisition(t *testing.T) {
	base := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	goal := Goal{Source: label, Target: 1}
	eot := NewEOT(func(draw int) Classifier {
		acq := pipeline.NewAcquisition(1.0, 0.01, false, uint64(7+draw))
		return FilteredClassifier{Inner: base, Pre: filters.Chain{acq}}
	}, 3)
	atk := &BIM{Epsilon: 0.12, Alpha: 0.012, Steps: 40, EarlyStop: true}
	res, err := atk.Generate(context.Background(), eot, img, goal)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate against a *fresh* noise draw the attacker never saw.
	holdout := FilteredClassifier{
		Inner: base,
		Pre:   filters.Chain{pipeline.NewAcquisition(1.0, 0.01, false, 999)},
	}
	pred, _ := Predict(holdout, res.Adversarial)
	if pred == label {
		t.Fatalf("EOT attack did not transfer to a fresh noise draw (still %d)", pred)
	}
}

func TestEOTValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EOT with zero draws accepted")
		}
	}()
	NewEOT(func(int) Classifier { return nil }, 0)
}
