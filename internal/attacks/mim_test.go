package attacks

import (
	"context"
	"testing"

	"repro/internal/gtsrb"
	"repro/internal/tensor"
)

func TestMIMTargeted(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	requireCorrect(t, c, img, label)
	atk := &MIM{Epsilon: 0.10, Alpha: 0.01, Steps: 40, Decay: 1.0, EarlyStop: true}
	res, err := atk.Generate(context.Background(), c, img, Goal{Source: label, Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("MIM targeted attack failed: class %d at %.2f", res.PredClass, res.Confidence)
	}
	if res.Noise.LInfNorm() > 0.10+1e-9 {
		t.Fatalf("MIM noise %v exceeds budget", res.Noise.LInfNorm())
	}
}

func TestMIMUntargeted(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassTurnRight)
	res, err := (&MIM{Epsilon: 0.08, Alpha: 0.008, Steps: 30, Decay: 1.0, EarlyStop: true}).
		Generate(context.Background(), c, img, Goal{Source: label, Target: Untargeted})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("MIM untargeted failed: still class %d", res.PredClass)
	}
}

func TestMIMValidation(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	goal := Goal{Source: label, Target: 1}
	for name, atk := range map[string]*MIM{
		"zero eps":    {Epsilon: 0, Alpha: 0.01, Steps: 5, Decay: 1},
		"zero alpha":  {Epsilon: 0.1, Alpha: 0, Steps: 5, Decay: 1},
		"zero steps":  {Epsilon: 0.1, Alpha: 0.01, Steps: 0, Decay: 1},
		"negative mu": {Epsilon: 0.1, Alpha: 0.01, Steps: 5, Decay: -1},
	} {
		if _, err := atk.Generate(context.Background(), c, img, goal); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestMIMInLibrary(t *testing.T) {
	atk, err := New("mim")
	if err != nil {
		t.Fatal(err)
	}
	if atk.Name() == "" {
		t.Fatal("library MIM nameless")
	}
}

func TestUniversalTargetedPerturbation(t *testing.T) {
	c := testClassifier(t)
	// Crafting set: canonical images of three non-target classes.
	imgs := []*tensor.Tensor{
		gtsrb.Canonical(gtsrb.ClassStop, 16),
		gtsrb.Canonical(gtsrb.ClassTurnLeft, 16),
		gtsrb.Canonical(gtsrb.ClassTurnRight, 16),
	}
	u := &Universal{Epsilon: 0.15, StepSize: 0.02, Epochs: 12, TargetRate: 0.99}
	res, err := u.Craft(context.Background(), c, imgs, Goal{Source: 0, Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Noise.LInfNorm() > 0.15+1e-9 {
		t.Fatalf("universal noise %v exceeds budget", res.Noise.LInfNorm())
	}
	if res.FoolingRate < 1.0/3 {
		t.Fatalf("universal perturbation fooled only %.2f of the crafting set", res.FoolingRate)
	}
}

func TestUniversalUntargeted(t *testing.T) {
	c := testClassifier(t)
	imgs := []*tensor.Tensor{
		gtsrb.Canonical(gtsrb.ClassStop, 16),
		gtsrb.Canonical(gtsrb.ClassSpeed60, 16),
		gtsrb.Canonical(gtsrb.ClassTurnLeft, 16),
		gtsrb.Canonical(gtsrb.ClassTurnRight, 16),
	}
	u := &Universal{Epsilon: 0.2, StepSize: 0.03, Epochs: 10, TargetRate: 0.75}
	res, err := u.Craft(context.Background(), c, imgs, Goal{Source: 0, Target: Untargeted})
	if err != nil {
		t.Fatal(err)
	}
	if res.FoolingRate < 0.5 {
		t.Fatalf("untargeted universal fooling rate %.2f too low", res.FoolingRate)
	}
}

func TestUniversalValidation(t *testing.T) {
	c := testClassifier(t)
	img := gtsrb.Canonical(gtsrb.ClassStop, 16)
	if _, err := NewUniversal().Craft(context.Background(), c, nil, Goal{Target: 1}); err == nil {
		t.Error("empty crafting set accepted")
	}
	if _, err := (&Universal{Epsilon: 0, StepSize: 0.01, Epochs: 1}).Craft(context.Background(), c, []*tensor.Tensor{img}, Goal{Target: 1}); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := NewUniversal().Craft(context.Background(), c, []*tensor.Tensor{img}, Goal{Target: 99}); err == nil {
		t.Error("out-of-range target accepted")
	}
	mixed := []*tensor.Tensor{img, gtsrb.Canonical(gtsrb.ClassStop, 24)}
	if _, err := NewUniversal().Craft(context.Background(), c, mixed, Goal{Target: 1}); err == nil {
		t.Error("mixed-shape crafting set accepted")
	}
}
