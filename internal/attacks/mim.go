package attacks

import (
	"context"
	"fmt"

	"repro/internal/tensor"
)

// MIM is the momentum iterative method (Dong et al., CVPR 2018): BIM with
// an accumulated, L1-normalized gradient momentum, which stabilizes the
// update direction and transfers better across models. A library extension
// beyond the paper's trio; particularly relevant here because momentum
// also helps push through the gradient attenuation of smoothing filters.
type MIM struct {
	// Epsilon is the total L∞ budget; Alpha the per-step size.
	Epsilon, Alpha float64
	// Steps is the iteration count; Decay the momentum factor μ.
	Steps int
	Decay float64
	// EarlyStop stops once the goal is achieved.
	EarlyStop bool
}

// NewMIM constructs the attack with the canonical schedule
// (eps=8/255, alpha=eps/10, 20 steps, μ=1).
func NewMIM() *MIM {
	eps := 8.0 / 255
	return &MIM{Epsilon: eps, Alpha: eps / 10, Steps: 20, Decay: 1.0, EarlyStop: true}
}

// Name implements Attack.
func (m *MIM) Name() string { return specName("mim", m.Params()) }

// Params implements Configurable.
func (m *MIM) Params() []Param {
	return []Param{
		floatParam("eps", "total L∞ budget", &m.Epsilon),
		floatParam("alpha", "per-step size", &m.Alpha),
		intParam("steps", "iteration count", &m.Steps),
		floatParam("decay", "momentum factor μ", &m.Decay),
		boolParam("early", "stop once the goal is achieved", &m.EarlyStop),
	}
}

// Set implements Configurable.
func (m *MIM) Set(name, value string) error { return setParam(m.Params(), name, value) }

// Generate implements Attack.
func (m *MIM) Generate(ctx context.Context, c Classifier, x *tensor.Tensor, goal Goal) (*Result, error) {
	if err := goal.Validate(c); err != nil {
		return nil, err
	}
	if m.Epsilon <= 0 || m.Alpha <= 0 || m.Steps <= 0 || m.Decay < 0 {
		return nil, fmt.Errorf("attacks: MIM parameters must be positive (decay non-negative)")
	}
	e := begin(ctx, m.Name())
	adv := x.Clone()
	momentum := tensor.New(x.Shape()...)
	iters := 0
	for i := 0; i < m.Steps && !e.halt(); i++ {
		iters = i + 1
		var grad *tensor.Tensor
		var dir float64
		if goal.IsTargeted() {
			_, grad = CELossGrad(c, adv, goal.Target)
			dir = -1
		} else {
			_, grad = CELossGrad(c, adv, goal.Source)
			dir = +1
		}
		e.query(1)
		// g_{t+1} = μ·g_t + grad/‖grad‖₁
		l1 := grad.L1Norm()
		if l1 > 0 {
			momentum.ScaleInPlace(m.Decay)
			momentum.AddScaled(1/l1, grad)
		}
		adv.AddScaled(dir*m.Alpha, tensor.SignOf(momentum))
		clampBall(adv, x, m.Epsilon)
		clampUnit(adv)
		if m.EarlyStop {
			pred, _ := Predict(c, adv)
			e.query(1)
			if goal.achieved(pred) {
				e.iterDone()
				break
			}
		}
		e.iterDone()
	}
	return e.finish(c, x, adv, goal, iters), nil
}
