package attacks

import (
	"fmt"
	"strings"
)

// Parse builds a configured attack from a spec string:
//
//	"pgd"                      → default-configured PGD
//	"pgd(eps=0.03,steps=40)"   → PGD with two knobs overridden
//
// The name resolves case-insensitively against the registry; the
// parenthesized list assigns knobs by the keys each attack's Params()
// exposes. Parse(a.Name()) round-trips for every registry attack: the
// canonical Name() spec reconstructs an identically configured instance.
func Parse(spec string) (Attack, error) {
	name, args, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	atk, err := New(name)
	if err != nil {
		return nil, err
	}
	if args == "" {
		return atk, nil
	}
	cfg, ok := atk.(Configurable)
	if !ok {
		return nil, fmt.Errorf("attacks: %s accepts no parameters", name)
	}
	for _, kv := range splitTopLevel(args) {
		key, value, found := strings.Cut(kv, "=")
		key, value = strings.TrimSpace(key), strings.TrimSpace(value)
		if !found || key == "" || value == "" {
			return nil, fmt.Errorf("attacks: spec %q: want key=value, got %q", spec, strings.TrimSpace(kv))
		}
		if err := cfg.Set(key, value); err != nil {
			return nil, fmt.Errorf("attacks: spec %q: %w", spec, err)
		}
	}
	return atk, nil
}

// splitSpec separates "name(args)" into its parts, validating the shape.
func splitSpec(spec string) (name, args string, err error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return "", "", fmt.Errorf("attacks: empty attack spec")
	}
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if strings.ContainsAny(s, "),=") {
			return "", "", fmt.Errorf("attacks: malformed attack spec %q", spec)
		}
		return strings.ToLower(s), "", nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", "", fmt.Errorf("attacks: attack spec %q: missing closing parenthesis", spec)
	}
	name = strings.ToLower(strings.TrimSpace(s[:open]))
	if name == "" {
		return "", "", fmt.Errorf("attacks: attack spec %q has no name", spec)
	}
	return name, strings.TrimSpace(s[open+1 : len(s)-1]), nil
}

// splitTopLevel splits a comma-separated list at depth zero, so values
// containing parenthesized groups survive intact.
func splitTopLevel(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// SplitSpecs splits a comma-separated list of attack specs at top level,
// so "pgd(eps=0.03,steps=40),fgsm" yields two entries. Empty elements
// are dropped; whitespace is trimmed.
func SplitSpecs(list string) []string {
	var out []string
	for _, s := range splitTopLevel(list) {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}
