package attacks

import (
	"context"
	"strings"
	"testing"

	"repro/internal/gtsrb"
	"repro/internal/tensor"
)

func TestGoalValidation(t *testing.T) {
	c := testClassifier(t)
	cases := []struct {
		goal Goal
		ok   bool
	}{
		{Goal{Source: 0, Target: 1}, true},
		{Goal{Source: 0, Target: Untargeted}, true},
		{Goal{Source: -1, Target: 1}, false},
		{Goal{Source: 0, Target: 4}, false},
		{Goal{Source: 2, Target: 2}, false},
		{Goal{Source: 9, Target: 1}, false},
	}
	for _, tc := range cases {
		err := tc.goal.Validate(c)
		if tc.ok && err != nil {
			t.Errorf("goal %+v rejected: %v", tc.goal, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("goal %+v accepted", tc.goal)
		}
	}
}

func TestCELossGradMatchesFiniteDifference(t *testing.T) {
	c := testClassifier(t)
	img, _ := canonical(t, gtsrb.ClassStop)
	loss, grad := CELossGrad(c, img, 1)
	if loss <= 0 {
		t.Fatalf("CE loss of non-target class = %v, want positive", loss)
	}
	const h = 1e-5
	for _, i := range []int{0, 100, 300, 700} {
		d := img.Data()
		orig := d[i]
		d[i] = orig + h
		lp, _ := CELossGrad(c, img, 1)
		d[i] = orig - h
		lm, _ := CELossGrad(c, img, 1)
		d[i] = orig
		numeric := (lp - lm) / (2 * h)
		a := grad.Data()[i]
		if diff := a - numeric; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("input grad[%d]: analytic %v vs numeric %v", i, a, numeric)
		}
	}
}

func TestFGSMUntargetedEvades(t *testing.T) {
	c := testClassifier(t)
	// The mirrored turn signs share the closest decision boundary in the
	// fixture, which is the regime single-step FGSM is designed for.
	img, label := canonical(t, gtsrb.ClassTurnRight)
	requireCorrect(t, c, img, label)
	atk := &FGSM{Epsilon: 0.08}
	res, err := atk.Generate(context.Background(), c, img, Goal{Source: label, Target: Untargeted})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("untargeted FGSM(0.08) failed: still class %d at %.2f", res.PredClass, res.Confidence)
	}
	if res.Noise.LInfNorm() > 0.08+1e-9 {
		t.Fatalf("FGSM noise LInf %v exceeds epsilon", res.Noise.LInfNorm())
	}
}

func TestFGSMRespectsBudgetAndRange(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassSpeed60)
	atk := &FGSM{Epsilon: 0.02}
	res, err := atk.Generate(context.Background(), c, img, Goal{Source: label, Target: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adversarial.Min() < 0 || res.Adversarial.Max() > 1 {
		t.Fatal("adversarial image escaped [0,1]")
	}
	if res.Noise.LInfNorm() > 0.02+1e-9 {
		t.Fatalf("noise LInf %v exceeds 0.02", res.Noise.LInfNorm())
	}
	// Input must be untouched.
	clean := gtsrb.Canonical(gtsrb.ClassSpeed60, 16)
	if !tensor.EqualWithin(img, clean, 0) {
		t.Fatal("Generate modified its input")
	}
}

func TestFGSMInvalidEpsilon(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	if _, err := (&FGSM{Epsilon: 0}).Generate(context.Background(), c, img, Goal{Source: label, Target: 1}); err == nil {
		t.Fatal("FGSM with epsilon 0 accepted")
	}
}

func TestBIMTargetedMisclassification(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	requireCorrect(t, c, img, label)
	atk := &BIM{Epsilon: 0.10, Alpha: 0.01, Steps: 40, EarlyStop: true}
	res, err := atk.Generate(context.Background(), c, img, Goal{Source: label, Target: 1}) // stop -> 60km/h
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("BIM targeted attack failed: class %d at %.2f", res.PredClass, res.Confidence)
	}
	if res.PredClass != 1 {
		t.Fatalf("BIM hit class %d, wanted 1", res.PredClass)
	}
	if res.Noise.LInfNorm() > 0.10+1e-9 {
		t.Fatalf("BIM noise %v exceeds budget", res.Noise.LInfNorm())
	}
}

func TestBIMEarlyStopSavesIterations(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassTurnLeft)
	eager := &BIM{Epsilon: 0.1, Alpha: 0.02, Steps: 60, EarlyStop: true}
	res, err := eager.Generate(context.Background(), c, img, Goal{Source: label, Target: fixtureLabel[gtsrb.ClassTurnRight]})
	if err != nil {
		t.Fatal(err)
	}
	if res.Success && res.Iterations == 60 {
		t.Fatal("early stop did not trigger despite success")
	}
}

func TestPGDTargeted(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassTurnRight)
	requireCorrect(t, c, img, label)
	atk := &PGD{Epsilon: 0.1, Alpha: 0.015, Steps: 30, Restarts: 2, Seed: 5}
	res, err := atk.Generate(context.Background(), c, img, Goal{Source: label, Target: fixtureLabel[gtsrb.ClassTurnLeft]})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("PGD failed: class %d at %.2f", res.PredClass, res.Confidence)
	}
	if res.Noise.LInfNorm() > 0.1+1e-9 {
		t.Fatal("PGD noise exceeds budget")
	}
}

func TestLBFGSAttackSucceedsWithSmallNoise(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	requireCorrect(t, c, img, label)
	atk := &LBFGS{InitialC: 10, CSteps: 8, MaxIter: 40}
	res, err := atk.Generate(context.Background(), c, img, Goal{Source: label, Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("L-BFGS attack failed: class %d at %.2f", res.PredClass, res.Confidence)
	}
	// The distortion penalty should keep the noise visually small.
	if res.Noise.L2Norm() > 0.25*img.L2Norm() {
		t.Fatalf("L-BFGS noise unexpectedly large: %v vs image %v", res.Noise.L2Norm(), img.L2Norm())
	}
}

func TestLBFGSRejectsUntargeted(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	if _, err := NewLBFGS().Generate(context.Background(), c, img, Goal{Source: label, Target: Untargeted}); err == nil {
		t.Fatal("L-BFGS accepted untargeted goal")
	}
}

func TestCWAttackTargeted(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	requireCorrect(t, c, img, label)
	atk := &CW{Kappa: 0, Steps: 150, LR: 0.05, InitialC: 5, BinarySearch: 3}
	res, err := atk.Generate(context.Background(), c, img, Goal{Source: label, Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("C&W failed: class %d at %.2f", res.PredClass, res.Confidence)
	}
	if res.Adversarial.Min() < 0 || res.Adversarial.Max() > 1 {
		t.Fatal("C&W escaped the pixel box despite tanh parameterization")
	}
}

func TestCWRejectsUntargeted(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	if _, err := NewCW().Generate(context.Background(), c, img, Goal{Source: label, Target: Untargeted}); err == nil {
		t.Fatal("C&W accepted untargeted goal")
	}
}

func TestDeepFoolEvades(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassSpeed60)
	requireCorrect(t, c, img, label)
	res, err := NewDeepFool().Generate(context.Background(), c, img, Goal{Source: label, Target: Untargeted})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("DeepFool failed: still class %d", res.PredClass)
	}
	// DeepFool's selling point: very small perturbations.
	if rel := res.Noise.L2Norm() / img.L2Norm(); rel > 0.2 {
		t.Fatalf("DeepFool perturbation unexpectedly large: %.3f relative", rel)
	}
}

func TestDeepFoolRejectsTargeted(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	if _, err := NewDeepFool().Generate(context.Background(), c, img, Goal{Source: label, Target: 1}); err == nil {
		t.Fatal("DeepFool accepted targeted goal")
	}
}

func TestJSMASparseAttack(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassTurnLeft)
	requireCorrect(t, c, img, label)
	atk := &JSMA{Theta: 0.4, MaxPixelFrac: 0.15}
	res, err := atk.Generate(context.Background(), c, img, Goal{Source: label, Target: fixtureLabel[gtsrb.ClassTurnRight]})
	if err != nil {
		t.Fatal(err)
	}
	// JSMA modifies at most the budgeted fraction of features.
	budget := int(0.15 * float64(img.Len()))
	if got := res.Noise.L0Count(1e-9); got > budget {
		t.Fatalf("JSMA modified %d features, budget %d", got, budget)
	}
	// Sparse attacks are weaker; require decent progress rather than
	// guaranteed success: target probability must have grown markedly.
	cleanProbs := Probs(c, img)
	advProbs := Probs(c, res.Adversarial)
	tgt := fixtureLabel[gtsrb.ClassTurnRight]
	if !res.Success && advProbs[tgt] < cleanProbs[tgt]*2 {
		t.Fatalf("JSMA made no progress: target prob %.4f -> %.4f", cleanProbs[tgt], advProbs[tgt])
	}
}

func TestOnePixelBlackBox(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassSpeed60)
	atk := &OnePixel{Pixels: 3, Population: 24, Generations: 12, Seed: 3}
	res, err := atk.Generate(context.Background(), c, img, Goal{Source: label, Target: Untargeted})
	if err != nil {
		t.Fatal(err)
	}
	// A 3-pixel black-box attack on a 16×16 sign may or may not evade;
	// verify the mechanics: bounded modification count and valid range.
	if got := res.Noise.L0Count(1e-9); got > 3*3 { // 3 pixels × 3 channels
		t.Fatalf("OnePixel modified %d values, expected at most 9", got)
	}
	if res.Adversarial.Min() < 0 || res.Adversarial.Max() > 1 {
		t.Fatal("OnePixel escaped [0,1]")
	}
}

func TestLibraryRegistry(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("library has %d attacks: %v", len(names), names)
	}
	for _, name := range names {
		atk, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if atk.Name() == "" {
			t.Fatalf("attack %q has empty display name", name)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown attack accepted")
	}
	for _, name := range PaperAttacks {
		if _, err := New(name); err != nil {
			t.Fatalf("paper attack %q missing from library", name)
		}
	}
}

func TestAttackNamesDescriptive(t *testing.T) {
	for _, a := range []Attack{NewFGSM(), NewBIM(), NewLBFGS(), NewPGD(), NewCW(), NewDeepFool(), NewJSMA(), NewOnePixel()} {
		if !strings.ContainsAny(a.Name(), "(") {
			t.Errorf("attack name %q carries no parameters", a.Name())
		}
	}
}

// unbatchedClassifier hides a classifier's LogitsBatch method so the
// batched helpers fall back to per-image queries. Embedding the interface
// (not the concrete type) is what strips the optional method.
type unbatchedClassifier struct{ Classifier }

// TestOnePixelBatchedMatchesPerImageScoring pins the batched DE fitness
// path: scoring the population through one LogitsBatch forward must issue
// the same number of queries and produce a bit-identical adversarial
// image as per-image Probs fallback scoring with the same seed.
func TestOnePixelBatchedMatchesPerImageScoring(t *testing.T) {
	c := testClassifier(t)
	if _, ok := any(c).(LogitsBatcher); !ok {
		t.Fatal("fixture classifier does not implement LogitsBatcher; test is vacuous")
	}
	img, label := canonical(t, gtsrb.ClassStop)
	atk := &OnePixel{Pixels: 2, Population: 12, Generations: 6, Seed: 11}

	batched, err := atk.Generate(context.Background(), c, img, Goal{Source: label, Target: Untargeted})
	if err != nil {
		t.Fatal(err)
	}
	single, err := atk.Generate(context.Background(), unbatchedClassifier{c}, img, Goal{Source: label, Target: Untargeted})
	if err != nil {
		t.Fatal(err)
	}
	if batched.Queries != single.Queries {
		t.Fatalf("batched issued %d queries, per-image %d", batched.Queries, single.Queries)
	}
	if !tensor.EqualWithin(batched.Adversarial, single.Adversarial, 0) {
		t.Fatal("batched and per-image one-pixel scoring diverged")
	}
	if batched.PredClass != single.PredClass || batched.Confidence != single.Confidence {
		t.Fatalf("result bookkeeping diverged: (%d,%v) vs (%d,%v)",
			batched.PredClass, batched.Confidence, single.PredClass, single.Confidence)
	}
}
