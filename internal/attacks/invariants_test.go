package attacks

import (
	"context"
	"testing"

	"repro/internal/gtsrb"
	"repro/internal/tensor"
)

// TestAttackInvariants runs every library attack against the shared
// fixture and checks the contracts every Generate implementation must
// uphold: the input is never mutated, the adversarial image stays in
// [0, 1], Noise equals Adversarial − original, bookkeeping fields are
// coherent, and all values are finite.
func TestAttackInvariants(t *testing.T) {
	c := testClassifier(t)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	label := fixtureLabel[gtsrb.ClassStop]

	goals := map[string]Goal{
		"lbfgs":    {Source: label, Target: 1},
		"fgsm":     {Source: label, Target: 1},
		"bim":      {Source: label, Target: 1},
		"mim":      {Source: label, Target: 1},
		"pgd":      {Source: label, Target: 1},
		"cw":       {Source: label, Target: 1},
		"jsma":     {Source: label, Target: 1},
		"deepfool": {Source: label, Target: Untargeted},
		"onepixel": {Source: label, Target: Untargeted},
		"spsa":     {Source: label, Target: Untargeted},
	}
	for _, name := range Names() {
		goal, ok := goals[name]
		if !ok {
			t.Fatalf("no goal defined for library attack %q — extend this test", name)
		}
		t.Run(name, func(t *testing.T) {
			atk, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			before := clean.Clone()
			res, err := atk.Generate(context.Background(), c, clean, goal)
			if err != nil {
				t.Fatal(err)
			}
			if !tensor.EqualWithin(clean, before, 0) {
				t.Error("input mutated")
			}
			if res.Adversarial.Min() < 0 || res.Adversarial.Max() > 1 {
				t.Errorf("adversarial image outside [0,1]: [%v, %v]",
					res.Adversarial.Min(), res.Adversarial.Max())
			}
			if !res.Adversarial.AllFinite() || !res.Noise.AllFinite() {
				t.Error("non-finite values in result")
			}
			reconstructed := tensor.Add(clean, res.Noise)
			if !tensor.EqualWithin(reconstructed, res.Adversarial, 1e-9) {
				t.Error("Noise != Adversarial - original")
			}
			if res.PredClass < 0 || res.PredClass >= c.NumClasses() {
				t.Errorf("PredClass %d out of range", res.PredClass)
			}
			if res.Confidence < 0 || res.Confidence > 1 {
				t.Errorf("Confidence %v out of range", res.Confidence)
			}
			if res.Queries <= 0 {
				t.Errorf("Queries = %d, expected positive", res.Queries)
			}
			if res.Success != goal.achieved(res.PredClass) {
				t.Errorf("Success=%v inconsistent with PredClass=%d for %+v",
					res.Success, res.PredClass, goal)
			}
		})
	}
}

// TestAttacksDeterministic verifies that every attack with a fixed seed
// (or no randomness) produces identical output across runs.
func TestAttacksDeterministic(t *testing.T) {
	c := testClassifier(t)
	clean := gtsrb.Canonical(gtsrb.ClassSpeed60, 16)
	label := fixtureLabel[gtsrb.ClassSpeed60]
	for _, name := range []string{"fgsm", "bim", "mim", "pgd", "lbfgs", "onepixel"} {
		goal := Goal{Source: label, Target: 0}
		if name == "onepixel" {
			goal = Goal{Source: label, Target: Untargeted}
		}
		a1, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		a2, _ := New(name)
		r1, err := a1.Generate(context.Background(), c, clean, goal)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := a2.Generate(context.Background(), c, clean, goal)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.EqualWithin(r1.Adversarial, r2.Adversarial, 0) {
			t.Errorf("%s not deterministic", name)
		}
	}
}
