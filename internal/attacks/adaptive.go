package attacks

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/filters"
)

// Adaptive crafting modes: how much of the deployed pre-processing
// pipeline the attacker folds into the model it differentiates through.
// A *blind* attacker ignores the pipeline entirely (the classical
// attacker FAdeML defends against); a *BPDA* attacker pushes its forward
// pass through the deployed chain and its backward pass through each
// stage's declared VJP (exact where the stage is differentiable,
// straight-through identity where it is not); an *EOT* attacker
// additionally averages gradients over fresh draws of every stochastic
// stage, which is the honest way to attack a randomized defense
// (Athalye et al., ICML 2018) — a single-draw BPDA attacker overfits to
// one realization the deployed seed will never reproduce.

// Adaptive mode kinds.
const (
	AdaptiveBlind = "blind"
	AdaptiveEOT   = "eot"
	AdaptiveBPDA  = "bpda"
)

// defaultEOTDraws is the draw count when an "eot" spec omits draws=.
const defaultEOTDraws = 8

// AdaptiveMode selects how an attack's differentiable view of the victim
// is built from the bare classifier and the deployed pre-processing
// chain. The zero value is not valid; build one with ParseAdaptive or
// the Adaptive* kind constants.
type AdaptiveMode struct {
	// Kind is AdaptiveBlind, AdaptiveEOT or AdaptiveBPDA.
	Kind string
	// Draws is the number of stochastic-stage samples averaged per
	// gradient query; meaningful only when Kind is AdaptiveEOT.
	Draws int
}

// ParseAdaptive builds an adaptive mode from a spec string:
//
//	"blind"          → attack the bare classifier
//	"bpda"           → attack through the deployed chain via declared VJPs
//	"eot"            → BPDA + gradient averaging over 8 randomness draws
//	"eot(draws=32)"  → BPDA + averaging over 32 draws
//
// ParseAdaptive(m.Name()) round-trips for every accepted spec.
func ParseAdaptive(spec string) (AdaptiveMode, error) {
	name, args, err := splitSpec(spec)
	if err != nil {
		return AdaptiveMode{}, fmt.Errorf("attacks: adaptive mode %q: malformed spec", spec)
	}
	switch name {
	case AdaptiveBlind, AdaptiveBPDA:
		if args != "" {
			return AdaptiveMode{}, fmt.Errorf("attacks: adaptive mode %q accepts no parameters", name)
		}
		return AdaptiveMode{Kind: name}, nil
	case AdaptiveEOT:
		m := AdaptiveMode{Kind: AdaptiveEOT, Draws: defaultEOTDraws}
		if args == "" {
			return m, nil
		}
		for _, kv := range splitTopLevel(args) {
			key, value, found := strings.Cut(kv, "=")
			key, value = strings.TrimSpace(key), strings.TrimSpace(value)
			if !found || key != "draws" {
				return AdaptiveMode{}, fmt.Errorf("attacks: adaptive mode %q: want draws=N, got %q", spec, strings.TrimSpace(kv))
			}
			n, err := strconv.Atoi(value)
			if err != nil {
				return AdaptiveMode{}, fmt.Errorf("attacks: adaptive mode %q: draws: want an integer, got %q", spec, value)
			}
			if n <= 0 {
				return AdaptiveMode{}, fmt.Errorf("attacks: adaptive mode %q: draws must be positive, got %d", spec, n)
			}
			m.Draws = n
		}
		return m, nil
	default:
		return AdaptiveMode{}, fmt.Errorf("attacks: unknown adaptive mode %q (have %v)", name, AdaptiveModes())
	}
}

// AdaptiveModes returns the accepted adaptive-mode kinds in
// weakest-to-strongest order.
func AdaptiveModes() []string {
	return []string{AdaptiveBlind, AdaptiveEOT, AdaptiveBPDA}
}

// Name returns the canonical spec; ParseAdaptive(m.Name()) reconstructs m.
func (m AdaptiveMode) Name() string {
	if m.Kind == AdaptiveEOT {
		return fmt.Sprintf("eot(draws=%d)", m.Draws)
	}
	return m.Kind
}

// Classifier builds the attacker's differentiable view of a system that
// deploys pre in front of inner.
//
//   - blind ignores pre: the attacker sees the bare classifier.
//   - bpda folds the deployed chain in as-is (its declared seeds), so
//     gradients flow through each stage's declared VJP.
//   - eot averages over Draws re-seedings of every stochastic stage,
//     derived from seed via filters.DrawSeed, while deterministic stages
//     are shared across draws.
//
// A nil or identity pre makes every mode equivalent to blind.
func (m AdaptiveMode) Classifier(inner Classifier, pre filters.Filter, seed uint64) Classifier {
	if pre == nil {
		return inner
	}
	switch m.Kind {
	case AdaptiveEOT:
		return NewEOT(FilterDraws(inner, pre, seed), m.Draws)
	case AdaptiveBPDA:
		return FilteredClassifier{Inner: inner, Pre: pre}
	default:
		return inner
	}
}

// FilterDraws builds the EOT draw factory over a deployed chain: draw k
// is the FilteredClassifier whose stochastic stages are re-seeded with
// filters.DrawSeed(seed, k). Deterministic chains yield identical draws,
// so EOT over them degenerates (correctly, if wastefully) to BPDA.
func FilterDraws(inner Classifier, pre filters.Filter, seed uint64) func(draw int) Classifier {
	return func(draw int) Classifier {
		return FilteredClassifier{Inner: inner, Pre: filters.Reseed(pre, filters.DrawSeed(seed, draw))}
	}
}
