package attacks

import (
	"fmt"
	"sort"
)

// The attack library of the paper's Fig. 3/8: a registry mapping attack
// names to default-configured constructors, so tools and experiments can
// select attacks by name.

// Constructor builds a fresh attack instance with default parameters.
type Constructor func() Attack

var library = map[string]Constructor{
	"lbfgs":    func() Attack { return NewLBFGS() },
	"fgsm":     func() Attack { return NewFGSM() },
	"bim":      func() Attack { return NewBIM() },
	"mim":      func() Attack { return NewMIM() },
	"pgd":      func() Attack { return NewPGD() },
	"cw":       func() Attack { return NewCW() },
	"deepfool": func() Attack { return NewDeepFool() },
	"jsma":     func() Attack { return NewJSMA() },
	"onepixel": func() Attack { return NewOnePixel() },
	"spsa":     func() Attack { return NewSPSA() },
}

// PaperAttacks lists the three attacks the paper evaluates, in the order
// its figures present them.
var PaperAttacks = []string{"lbfgs", "fgsm", "bim"}

// New builds a default-configured attack by library name.
func New(name string) (Attack, error) {
	ctor, ok := library[name]
	if !ok {
		return nil, fmt.Errorf("attacks: unknown attack %q (have %v)", name, Names())
	}
	return ctor(), nil
}

// Names returns the registered attack names in sorted order.
func Names() []string {
	out := make([]string, 0, len(library))
	for name := range library {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
