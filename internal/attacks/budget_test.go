package attacks

import (
	"context"
	"testing"
	"time"

	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/tensor"
)

// cancelAfterClassifier cancels a context once the classifier has served
// a fixed number of evaluations — a deterministic way to cancel an attack
// mid-run. Embedding the interface (not a concrete type) also strips the
// optional LogitsBatcher, so batched attacks exercise their fallback path
// where every query routes through Logits.
type cancelAfterClassifier struct {
	inner  Classifier
	cancel context.CancelFunc
	after  int
	count  int
}

func (cc *cancelAfterClassifier) bump() {
	cc.count++
	if cc.count == cc.after {
		cc.cancel()
	}
}

func (cc *cancelAfterClassifier) NumClasses() int { return cc.inner.NumClasses() }

func (cc *cancelAfterClassifier) Logits(x *tensor.Tensor) []float64 {
	cc.bump()
	return cc.inner.Logits(x)
}

func (cc *cancelAfterClassifier) GradFromLogits(x *tensor.Tensor, dfn func([]float64) []float64) ([]float64, *tensor.Tensor) {
	cc.bump()
	return cc.inner.GradFromLogits(x, dfn)
}

// goalFor returns the invariants-test goal for a registry attack.
func goalFor(t *testing.T, name string, label int) Goal {
	t.Helper()
	switch name {
	case "deepfool", "onepixel", "spsa":
		return Goal{Source: label, Target: Untargeted}
	case "lbfgs", "fgsm", "bim", "mim", "pgd", "cw", "jsma":
		return Goal{Source: label, Target: 1}
	default:
		t.Fatalf("no goal defined for attack %q — extend this test", name)
		return Goal{}
	}
}

// TestAttackCancellationMidRun cancels every registry attack partway
// through its run (after a handful of classifier evaluations) and checks
// the v2 contract: no error, a well-formed best-so-far Result flagged
// Truncated, and a prompt stop — strictly fewer queries than the
// uncancelled run spends.
func TestAttackCancellationMidRun(t *testing.T) {
	base := testClassifier(t)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	label := fixtureLabel[gtsrb.ClassStop]

	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			goal := goalFor(t, name, label)
			atk, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			full, err := atk.Generate(context.Background(), base, clean, goal)
			if err != nil {
				t.Fatal(err)
			}
			if full.Truncated {
				t.Fatal("unbudgeted background run reported Truncated")
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cc := &cancelAfterClassifier{inner: base, cancel: cancel, after: 3}
			if name == "fgsm" {
				// Single-step FGSM has no mid-run boundary to cancel at;
				// cancel before it starts instead.
				cancel()
			}
			res, err := atk.Generate(ctx, cc, clean, goal)
			if err != nil {
				t.Fatalf("cancelled run errored instead of returning best-so-far: %v", err)
			}
			if !res.Truncated {
				t.Fatal("cancelled run not flagged Truncated")
			}
			if res.Queries >= full.Queries {
				t.Fatalf("cancelled run spent %d queries, full run %d — no early stop", res.Queries, full.Queries)
			}
			if res.Adversarial == nil || res.Adversarial.Min() < 0 || res.Adversarial.Max() > 1 {
				t.Fatal("truncated result is not a valid image")
			}
			if !tensor.EqualWithin(tensor.Add(clean, res.Noise), res.Adversarial, 1e-9) {
				t.Fatal("truncated result broke the Noise invariant")
			}
		})
	}
}

// TestAttackBudgetExhaustion runs every multi-iteration registry attack
// under Budget{MaxIters: 1} and checks it stops at the first iteration
// boundary with Truncated set. FGSM is single-step (it can complete
// within any iteration budget), so it is exercised with an
// already-cancelled context instead.
func TestAttackBudgetExhaustion(t *testing.T) {
	c := testClassifier(t)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	label := fixtureLabel[gtsrb.ClassStop]

	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			goal := goalFor(t, name, label)
			atk, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			if name == "fgsm" {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				res, err := atk.Generate(ctx, c, clean, goal)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Truncated || res.Iterations != 0 {
					t.Fatalf("pre-cancelled FGSM: truncated=%v iters=%d", res.Truncated, res.Iterations)
				}
				if res.Noise.LInfNorm() != 0 {
					t.Fatal("pre-cancelled FGSM still perturbed the image")
				}
				return
			}
			full, err := atk.Generate(context.Background(), c, clean, goal)
			if err != nil {
				t.Fatal(err)
			}
			res, err := atk.Generate(WithBudget(context.Background(), Budget{MaxIters: 1}), c, clean, goal)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Truncated {
				t.Fatal("budget-exhausted run not flagged Truncated")
			}
			if res.Queries >= full.Queries {
				t.Fatalf("budgeted run spent %d queries, full run %d", res.Queries, full.Queries)
			}
			// L-BFGS delegates its loop to the solver and enforces MaxIters
			// at solve granularity; everything else stops after iteration 1.
			if name != "lbfgs" && res.Iterations > 1 {
				t.Fatalf("MaxIters=1 run reported %d iterations", res.Iterations)
			}
		})
	}
}

// TestAttackQueryBudget pins MaxQueries iteration-granularity semantics
// on BIM: the run stops at the first iteration boundary at or past the
// cap, so the overshoot is bounded by one iteration's query cost plus the
// final bookkeeping prediction.
func TestAttackQueryBudget(t *testing.T) {
	c := testClassifier(t)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	label := fixtureLabel[gtsrb.ClassStop]
	atk := &BIM{Epsilon: 0.1, Alpha: 0.005, Steps: 50, EarlyStop: false}

	const maxQ = 7
	res, err := atk.Generate(WithBudget(context.Background(), Budget{MaxQueries: maxQ}), c, clean,
		Goal{Source: label, Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("query-capped run not flagged Truncated")
	}
	// BIM without early stop spends 1 query per iteration + 1 in finish.
	if res.Queries < maxQ || res.Queries > maxQ+1 {
		t.Fatalf("Queries = %d, want %d or %d (iteration-granularity overshoot)", res.Queries, maxQ, maxQ+1)
	}
	if res.Iterations != maxQ {
		t.Fatalf("Iterations = %d, want %d", res.Iterations, maxQ)
	}
}

// TestAttackDeadlineBudget checks the Budget.Deadline axis: an expired
// deadline truncates immediately, leaving the clean image.
func TestAttackDeadlineBudget(t *testing.T) {
	c := testClassifier(t)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	label := fixtureLabel[gtsrb.ClassStop]
	ctx := WithBudget(context.Background(), Budget{Deadline: time.Now().Add(-time.Second)})
	res, err := NewBIM().Generate(ctx, c, clean, Goal{Source: label, Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Iterations != 0 || res.Noise.LInfNorm() != 0 {
		t.Fatalf("expired deadline: truncated=%v iters=%d |noise|=%v",
			res.Truncated, res.Iterations, res.Noise.LInfNorm())
	}
}

// TestObserverSeesEveryIteration pins the Observer contract: one callback
// per completed optimizer iteration with monotone totals.
func TestObserverSeesEveryIteration(t *testing.T) {
	c := testClassifier(t)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	label := fixtureLabel[gtsrb.ClassStop]
	atk := &BIM{Epsilon: 0.05, Alpha: 0.005, Steps: 9, EarlyStop: false}

	var seen []Progress
	ctx := WithObserver(context.Background(), func(p Progress) { seen = append(seen, p) })
	res, err := atk.Generate(ctx, c, clean, Goal{Source: label, Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != res.Iterations {
		t.Fatalf("observer saw %d checkpoints, run did %d iterations", len(seen), res.Iterations)
	}
	for i, p := range seen {
		if p.Iterations != i+1 {
			t.Fatalf("checkpoint %d reports iteration %d", i, p.Iterations)
		}
		if p.Attack != atk.Name() {
			t.Fatalf("checkpoint attack = %q, want %q", p.Attack, atk.Name())
		}
		if i > 0 && p.Queries < seen[i-1].Queries {
			t.Fatal("observer queries not monotone")
		}
	}
}

// TestFAdeMLEtaQueryAccounting pins the eta<1 query invariant: rescaling
// adds exactly the one filtered prediction of the rescaled image (the
// historical implementation double-counted the base attack's queries).
func TestFAdeMLEtaQueryAccounting(t *testing.T) {
	c := testClassifier(t)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	label := fixtureLabel[gtsrb.ClassStop]
	goal := Goal{Source: label, Target: 1}
	filter := filters.NewLAP(8)
	mkBase := func() Attack { return &BIM{Epsilon: 0.1, Alpha: 0.01, Steps: 10, EarlyStop: false} }

	base, err := mkBase().Generate(context.Background(), FilteredClassifier{Inner: c, Pre: filter}, clean, goal)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := (&FAdeML{Base: mkBase(), Filter: filter, Eta: 0.5}).Generate(context.Background(), c, clean, goal)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Queries != base.Queries+1 {
		t.Fatalf("eta=0.5 queries = %d, want base %d + 1", scaled.Queries, base.Queries)
	}
}

// TestUniversalCraftHonoursContext covers the crafting procedure's
// truncation path: a cancelled context stops the epoch loop and flags the
// result, and a background run stays untruncated.
func TestUniversalCraftHonoursContext(t *testing.T) {
	c := testClassifier(t)
	imgs := []*tensor.Tensor{
		gtsrb.Canonical(gtsrb.ClassStop, 16),
		gtsrb.Canonical(gtsrb.ClassTurnLeft, 16),
	}
	u := &Universal{Epsilon: 0.15, StepSize: 0.02, Epochs: 6, TargetRate: 2} // unreachable rate
	full, err := u.Craft(context.Background(), c, imgs, Goal{Source: 0, Target: Untargeted})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated || full.Queries <= 0 {
		t.Fatalf("background craft: truncated=%v queries=%d", full.Truncated, full.Queries)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := u.Craft(ctx, c, imgs, Goal{Source: 0, Target: Untargeted})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Noise == nil {
		t.Fatalf("cancelled craft: truncated=%v noise=%v", res.Truncated, res.Noise)
	}
	if res.Queries >= full.Queries {
		t.Fatalf("cancelled craft spent %d queries, full %d", res.Queries, full.Queries)
	}
}

// TestBudgetContextPlumbing covers the ctx carriers and Budget helpers.
func TestBudgetContextPlumbing(t *testing.T) {
	if !BudgetFrom(context.Background()).Unlimited() {
		t.Fatal("background context carries a budget")
	}
	b := Budget{MaxQueries: 10, MaxIters: 3}
	got := BudgetFrom(WithBudget(context.Background(), b))
	if got != b {
		t.Fatalf("BudgetFrom = %+v, want %+v", got, b)
	}
	if b.Unlimited() {
		t.Fatal("non-empty budget reported Unlimited")
	}
	if ObserverFrom(context.Background()) != nil {
		t.Fatal("background context carries an observer")
	}
	if ObserverFrom(WithObserver(context.Background(), func(Progress) {})) == nil {
		t.Fatal("observer lost in transit")
	}
}
