package attacks

import (
	"fmt"

	"repro/internal/tensor"
)

// FGSM is Goodfellow et al.'s fast gradient sign method: one step of size
// Epsilon along the sign of the input gradient (descending the target
// loss for targeted goals, ascending the source loss for untargeted ones).
type FGSM struct {
	// Epsilon is the L∞ step size in pixel units ([0, 1] scale).
	Epsilon float64
}

// NewFGSM constructs the attack with the repository's default budget
// (8/255, imperceptible on the synthetic signs).
func NewFGSM() *FGSM { return &FGSM{Epsilon: 8.0 / 255} }

// Name implements Attack.
func (f *FGSM) Name() string { return fmt.Sprintf("FGSM(%.3g)", f.Epsilon) }

// Generate implements Attack.
func (f *FGSM) Generate(c Classifier, x *tensor.Tensor, goal Goal) (*Result, error) {
	if err := goal.Validate(c); err != nil {
		return nil, err
	}
	if f.Epsilon <= 0 {
		return nil, fmt.Errorf("attacks: FGSM epsilon %v must be positive", f.Epsilon)
	}
	var grad *tensor.Tensor
	var step float64
	if goal.IsTargeted() {
		_, grad = CELossGrad(c, x, goal.Target)
		step = -f.Epsilon // descend toward the target class
	} else {
		_, grad = CELossGrad(c, x, goal.Source)
		step = +f.Epsilon // ascend away from the source class
	}
	adv := x.Clone()
	adv.AddScaled(step, tensor.SignOf(grad))
	clampUnit(adv)
	return finishResult(c, x, adv, goal, 1, 1), nil
}
