package attacks

import (
	"context"
	"fmt"

	"repro/internal/tensor"
)

// FGSM is Goodfellow et al.'s fast gradient sign method: one step of size
// Epsilon along the sign of the input gradient (descending the target
// loss for targeted goals, ascending the source loss for untargeted ones).
type FGSM struct {
	// Epsilon is the L∞ step size in pixel units ([0, 1] scale).
	Epsilon float64
}

// NewFGSM constructs the attack with the repository's default budget
// (8/255, imperceptible on the synthetic signs).
func NewFGSM() *FGSM { return &FGSM{Epsilon: 8.0 / 255} }

// Name implements Attack.
func (f *FGSM) Name() string { return specName("fgsm", f.Params()) }

// Params implements Configurable.
func (f *FGSM) Params() []Param {
	return []Param{
		floatParam("eps", "L∞ step size in [0,1] pixel units", &f.Epsilon),
	}
}

// Set implements Configurable.
func (f *FGSM) Set(name, value string) error { return setParam(f.Params(), name, value) }

// Generate implements Attack.
func (f *FGSM) Generate(ctx context.Context, c Classifier, x *tensor.Tensor, goal Goal) (*Result, error) {
	if err := goal.Validate(c); err != nil {
		return nil, err
	}
	if f.Epsilon <= 0 {
		return nil, fmt.Errorf("attacks: FGSM epsilon %v must be positive", f.Epsilon)
	}
	e := begin(ctx, f.Name())
	adv := x.Clone()
	iters := 0
	if !e.halt() {
		var grad *tensor.Tensor
		var step float64
		if goal.IsTargeted() {
			_, grad = CELossGrad(c, x, goal.Target)
			step = -f.Epsilon // descend toward the target class
		} else {
			_, grad = CELossGrad(c, x, goal.Source)
			step = +f.Epsilon // ascend away from the source class
		}
		e.query(1)
		adv.AddScaled(step, tensor.SignOf(grad))
		clampUnit(adv)
		e.iterDone()
		iters = 1
	}
	return e.finish(c, x, adv, goal, iters), nil
}
