package attacks

import (
	"context"
	"fmt"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// PGD is projected gradient descent (Madry et al.): BIM with a random
// start inside the L∞ ball and optional restarts, the strongest standard
// first-order L∞ attack. A library extension beyond the paper's trio.
type PGD struct {
	Epsilon, Alpha float64
	Steps          int
	Restarts       int
	// Seed drives the random starts deterministically.
	Seed uint64
}

// NewPGD constructs the attack with eps=8/255, alpha=eps/8, 20 steps and
// 2 restarts.
func NewPGD() *PGD {
	eps := 8.0 / 255
	return &PGD{Epsilon: eps, Alpha: eps / 8, Steps: 20, Restarts: 2, Seed: 1}
}

// Name implements Attack.
func (p *PGD) Name() string { return specName("pgd", p.Params()) }

// Params implements Configurable.
func (p *PGD) Params() []Param {
	return []Param{
		floatParam("eps", "total L∞ budget", &p.Epsilon),
		floatParam("alpha", "per-step size", &p.Alpha),
		intParam("steps", "iterations per restart", &p.Steps),
		intParam("restarts", "random restarts", &p.Restarts),
		seedParam("seed", "random-start seed", &p.Seed),
	}
}

// Set implements Configurable.
func (p *PGD) Set(name, value string) error { return setParam(p.Params(), name, value) }

// Generate implements Attack. Result.Iterations reports the winning
// restart's step count; budget iteration limits apply to the run total
// across restarts.
func (p *PGD) Generate(ctx context.Context, c Classifier, x *tensor.Tensor, goal Goal) (*Result, error) {
	if err := goal.Validate(c); err != nil {
		return nil, err
	}
	if p.Epsilon <= 0 || p.Alpha <= 0 || p.Steps <= 0 || p.Restarts <= 0 {
		return nil, fmt.Errorf("attacks: PGD parameters must be positive")
	}
	e := begin(ctx, p.Name())
	rng := mathx.NewRNG(p.Seed)
	var best *Result
	for r := 0; r < p.Restarts && !e.halt(); r++ {
		adv := x.Clone()
		// Random start inside the ball.
		for i, v := range adv.Data() {
			adv.Data()[i] = mathx.Clamp01(v + rng.Range(-p.Epsilon, p.Epsilon))
		}
		iters := 0
		for i := 0; i < p.Steps && !e.halt(); i++ {
			iters = i + 1
			var grad *tensor.Tensor
			var step float64
			if goal.IsTargeted() {
				_, grad = CELossGrad(c, adv, goal.Target)
				step = -p.Alpha
			} else {
				_, grad = CELossGrad(c, adv, goal.Source)
				step = +p.Alpha
			}
			e.query(1)
			adv.AddScaled(step, tensor.SignOf(grad))
			clampBall(adv, x, p.Epsilon)
			clampUnit(adv)
			e.iterDone()
		}
		res := e.finish(c, x, adv, goal, iters)
		if best == nil || (res.Success && !best.Success) ||
			(res.Success == best.Success && res.Confidence > best.Confidence) {
			best = res
		}
		if best.Success && goal.IsTargeted() && best.Confidence > 0.9 {
			break // strong enough; save budget
		}
	}
	if best == nil {
		// Halted before the first restart began; report the clean image.
		return e.finish(c, x, x.Clone(), goal, 0), nil
	}
	best.Queries = e.queries
	best.Truncated = e.truncated
	return best, nil
}
