package attacks

import (
	"context"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// JSMA is Papernot et al.'s Jacobian-based saliency map attack: a greedy
// L0 attack that repeatedly perturbs the single pixel whose saliency —
// gradient toward the target class combined with gradient away from all
// others — is largest. A library extension beyond the paper's trio.
type JSMA struct {
	// Theta is the per-step pixel change (positive values brighten).
	Theta float64
	// MaxPixelFrac bounds the fraction of features that may be modified.
	MaxPixelFrac float64
}

// NewJSMA constructs the attack with theta=0.2 and a 10% feature budget.
func NewJSMA() *JSMA { return &JSMA{Theta: 0.2, MaxPixelFrac: 0.10} }

// Name implements Attack.
func (j *JSMA) Name() string { return specName("jsma", j.Params()) }

// Params implements Configurable.
func (j *JSMA) Params() []Param {
	return []Param{
		floatParam("theta", "per-step pixel change", &j.Theta),
		floatParam("frac", "fraction of features that may be modified", &j.MaxPixelFrac),
	}
}

// Set implements Configurable.
func (j *JSMA) Set(name, value string) error { return setParam(j.Params(), name, value) }

// Generate implements Attack. JSMA is targeted.
func (j *JSMA) Generate(ctx context.Context, c Classifier, x *tensor.Tensor, goal Goal) (*Result, error) {
	if err := goal.Validate(c); err != nil {
		return nil, err
	}
	if !goal.IsTargeted() {
		return nil, fmt.Errorf("attacks: JSMA requires a targeted goal")
	}
	if j.Theta == 0 || j.MaxPixelFrac <= 0 {
		return nil, fmt.Errorf("attacks: JSMA theta and budget must be non-zero")
	}

	e := begin(ctx, j.Name())
	adv := x.Clone()
	n := adv.Len()
	budget := int(float64(n) * j.MaxPixelFrac)
	if budget < 1 {
		budget = 1
	}
	modified := make(map[int]bool)
	iters := 0

	for step := 0; step < budget && !e.halt(); step++ {
		iters = step + 1
		pred, _ := Predict(c, adv)
		e.query(1)
		if goal.achieved(pred) {
			e.iterDone()
			break
		}
		// dZ_target/dx and d(sum of other logits)/dx in two backward passes.
		_, gradTarget := c.GradFromLogits(adv, func(z []float64) []float64 {
			d := make([]float64, len(z))
			d[goal.Target] = 1
			return d
		})
		_, gradOthers := c.GradFromLogits(adv, func(z []float64) []float64 {
			d := make([]float64, len(z))
			for i := range d {
				if i != goal.Target {
					d[i] = 1
				}
			}
			return d
		})
		e.query(2)

		// Saliency: want target gradient positive and others negative
		// (for positive theta). Pick the best unmodified, unsaturated pixel.
		bestIdx, bestScore := -1, 0.0
		ad := adv.Data()
		gt, go_ := gradTarget.Data(), gradOthers.Data()
		for i := 0; i < n; i++ {
			if modified[i] {
				continue
			}
			if j.Theta > 0 && ad[i] >= 1-1e-9 {
				continue
			}
			if j.Theta < 0 && ad[i] <= 1e-9 {
				continue
			}
			a, b := gt[i], go_[i]
			if j.Theta < 0 {
				a, b = -a, -b
			}
			if a <= 0 || b >= 0 {
				continue
			}
			if score := a * math.Abs(b); score > bestScore {
				bestScore, bestIdx = score, i
			}
		}
		if bestIdx < 0 {
			// Saliency map exhausted: fall back to the strongest raw
			// target-gradient pixel so the attack keeps making progress.
			for i := 0; i < n; i++ {
				if modified[i] {
					continue
				}
				if score := math.Abs(gt[i]); score > bestScore {
					bestScore, bestIdx = score, i
				}
			}
			if bestIdx < 0 {
				e.iterDone()
				break
			}
			if gt[bestIdx] > 0 {
				ad[bestIdx] = math.Min(1, ad[bestIdx]+math.Abs(j.Theta))
			} else {
				ad[bestIdx] = math.Max(0, ad[bestIdx]-math.Abs(j.Theta))
			}
		} else {
			ad[bestIdx] = math.Min(1, math.Max(0, ad[bestIdx]+j.Theta))
		}
		modified[bestIdx] = true
		e.iterDone()
	}
	return e.finish(c, x, adv, goal, iters), nil
}
