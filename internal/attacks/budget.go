package attacks

import (
	"context"
	"time"

	"repro/internal/tensor"
)

// Budget caps the work one Generate call may spend. The zero value means
// unlimited. Limits are enforced at iteration granularity: an attack
// checks them between optimizer iterations, so a single iteration may
// overshoot MaxQueries by its own per-iteration query cost before the
// run stops.
type Budget struct {
	// MaxQueries bounds classifier evaluations (forward or gradient);
	// 0 means unlimited.
	MaxQueries int
	// MaxIters bounds optimizer iterations; 0 means unlimited.
	MaxIters int
	// Deadline is an absolute wall-clock cutoff; the zero time means none.
	// Context deadlines are honoured too — Deadline exists so a caller can
	// cap attack time tighter than the request context it already holds.
	Deadline time.Time
}

// Unlimited reports whether the budget imposes no limit at all.
func (b Budget) Unlimited() bool {
	return b.MaxQueries <= 0 && b.MaxIters <= 0 && b.Deadline.IsZero()
}

// Progress is one observer checkpoint, emitted after every completed
// optimizer iteration.
type Progress struct {
	// Attack is the emitting attack's Name().
	Attack string
	// Iterations and Queries are the totals spent so far in this run.
	Iterations int
	Queries    int
}

// Observer receives progress callbacks at iteration granularity. It runs
// synchronously on the attack goroutine — keep it cheap.
type Observer func(Progress)

// budgetKey and observerKey carry the attack execution controls through a
// context so the Attack interface stays a two-method contract.
type budgetKey struct{}
type observerKey struct{}

// WithBudget attaches a work budget to ctx; every attack Generate call
// under that context enforces it.
func WithBudget(ctx context.Context, b Budget) context.Context {
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFrom extracts the attached budget (zero value when none).
func BudgetFrom(ctx context.Context) Budget {
	if ctx == nil {
		return Budget{}
	}
	b, _ := ctx.Value(budgetKey{}).(Budget)
	return b
}

// WithObserver attaches a progress observer to ctx.
func WithObserver(ctx context.Context, o Observer) context.Context {
	return context.WithValue(ctx, observerKey{}, o)
}

// ObserverFrom extracts the attached observer (nil when none).
func ObserverFrom(ctx context.Context) Observer {
	if ctx == nil {
		return nil
	}
	o, _ := ctx.Value(observerKey{}).(Observer)
	return o
}

// exec tracks one Generate run's shared bookkeeping: query and iteration
// accounting, budget/cancellation checks, observer notifications and the
// Truncated flag. Every attack creates one at entry and funnels all
// classifier-evaluation counting through it, which is what makes the
// Result query invariant hold uniformly across the library.
type exec struct {
	ctx       context.Context
	budget    Budget
	obs       Observer
	name      string
	queries   int
	iters     int
	truncated bool
}

// begin opens the run bookkeeping for one Generate call.
func begin(ctx context.Context, name string) *exec {
	if ctx == nil {
		ctx = context.Background()
	}
	return &exec{ctx: ctx, budget: BudgetFrom(ctx), obs: ObserverFrom(ctx), name: name}
}

// query records n classifier evaluations.
func (e *exec) query(n int) { e.queries += n }

// halt reports whether the run must stop now: context cancelled, budget
// exhausted or deadline passed. Once true it stays true, and the final
// Result carries Truncated. Attacks call it at iteration boundaries; it
// is deliberately free of side effects on the optimization state, so a
// run under no pressure is bit-identical to one that never checked.
func (e *exec) halt() bool {
	if e.truncated {
		return true
	}
	switch {
	case e.ctx.Err() != nil:
	case e.budget.MaxQueries > 0 && e.queries >= e.budget.MaxQueries:
	case e.budget.MaxIters > 0 && e.iters >= e.budget.MaxIters:
	case !e.budget.Deadline.IsZero() && !time.Now().Before(e.budget.Deadline):
	default:
		return false
	}
	e.truncated = true
	return true
}

// iterDone records one completed optimizer iteration and notifies the
// observer, if any.
func (e *exec) iterDone() {
	e.iters++
	if e.obs != nil {
		e.obs(Progress{Attack: e.name, Iterations: e.iters, Queries: e.queries})
	}
}

// iterBatch records n completed optimizer iterations at once — used by
// attacks that delegate their inner loop to a solver — with a single
// observer notification.
func (e *exec) iterBatch(n int) {
	if n <= 0 {
		return
	}
	e.iters += n
	if e.obs != nil {
		e.obs(Progress{Attack: e.name, Iterations: e.iters, Queries: e.queries})
	}
}

// finish fills the prediction bookkeeping common to all attacks. The
// final Predict is itself one classifier evaluation and is counted.
// iters is passed explicitly because some attacks (PGD restarts) report
// the winning restart's iteration count rather than the run total.
func (e *exec) finish(c Classifier, original, adv *tensor.Tensor, goal Goal, iters int) *Result {
	pred, conf := Predict(c, adv)
	e.query(1)
	return &Result{
		Adversarial: adv,
		Noise:       tensor.Sub(adv, original),
		Success:     goal.achieved(pred),
		PredClass:   pred,
		Confidence:  conf,
		Iterations:  iters,
		Queries:     e.queries,
		Truncated:   e.truncated,
	}
}
