package attacks

import (
	"context"
	"testing"

	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/tensor"
)

// TestParseAdaptiveTable pins the adaptive-mode grammar: the accepted
// specs, their canonical names, and the malformed specs every serving
// and CLI boundary must reject as usage errors.
func TestParseAdaptiveTable(t *testing.T) {
	good := []struct {
		spec, name string
		kind       string
		draws      int
	}{
		{"blind", "blind", AdaptiveBlind, 0},
		{"bpda", "bpda", AdaptiveBPDA, 0},
		{"eot", "eot(draws=8)", AdaptiveEOT, 8},
		{"eot(draws=8)", "eot(draws=8)", AdaptiveEOT, 8},
		{"eot(draws=32)", "eot(draws=32)", AdaptiveEOT, 32},
		{"eot(draws=1)", "eot(draws=1)", AdaptiveEOT, 1},
	}
	for _, c := range good {
		m, err := ParseAdaptive(c.spec)
		if err != nil {
			t.Errorf("ParseAdaptive(%q): %v", c.spec, err)
			continue
		}
		if m.Kind != c.kind || m.Draws != c.draws {
			t.Errorf("ParseAdaptive(%q) = %+v, want kind=%s draws=%d", c.spec, m, c.kind, c.draws)
		}
		if m.Name() != c.name {
			t.Errorf("ParseAdaptive(%q).Name() = %q, want %q", c.spec, m.Name(), c.name)
		}
		again, err := ParseAdaptive(m.Name())
		if err != nil || again != m {
			t.Errorf("ParseAdaptive round-trip broken for %q: %+v, %v", c.spec, again, err)
		}
	}
	bad := []string{
		"eot(draws=0)",
		"eot(draws=-4)",
		"eot(draws=3.5)",
		"eot(draws=abc)",
		"eot(samples=8)",
		"blind(x=1)",
		"bpda(draws=8)",
		"momentum",
		"",
		"eot(draws=8",
	}
	for _, spec := range bad {
		if _, err := ParseAdaptive(spec); err == nil {
			t.Errorf("ParseAdaptive(%q) accepted a malformed spec", spec)
		}
	}
}

// TestAdaptiveClassifierDispatch pins which view each mode builds: blind
// ignores the deployed chain, bpda wraps it once, eot wraps an EOT
// average with the requested draw count — and a nil chain collapses
// every mode to blind.
func TestAdaptiveClassifierDispatch(t *testing.T) {
	inner := testClassifier(t)
	pre := filters.NewRandNoise(0.05, 1)

	if got := (AdaptiveMode{Kind: AdaptiveBlind}).Classifier(inner, pre, 1); got != inner {
		t.Error("blind mode did not return the bare classifier")
	}
	if got := (AdaptiveMode{Kind: AdaptiveEOT, Draws: 8}).Classifier(inner, nil, 1); got != inner {
		t.Error("nil chain did not collapse eot to blind")
	}
	bpda := (AdaptiveMode{Kind: AdaptiveBPDA}).Classifier(inner, pre, 1)
	if fc, ok := bpda.(FilteredClassifier); !ok || fc.Pre != filters.Filter(pre) {
		t.Errorf("bpda mode built %T, want FilteredClassifier over the deployed chain", bpda)
	}
	eot := (AdaptiveMode{Kind: AdaptiveEOT, Draws: 5}).Classifier(inner, pre, 1)
	e, ok := eot.(*EOT)
	if !ok {
		t.Fatalf("eot mode built %T, want *EOT", eot)
	}
	if e.Draws != 5 {
		t.Errorf("EOT draws = %d, want 5", e.Draws)
	}
}

// TestEOTDrawsDecorrelated: the EOT draw factory must hand the attack
// genuinely different re-seedings (otherwise averaging is a no-op), and
// the same (seed, draw) pair must rebuild the identical view.
func TestEOTDrawsDecorrelated(t *testing.T) {
	inner := testClassifier(t)
	pre := filters.NewRandNoise(0.1, 1)
	img := gtsrb.Canonical(gtsrb.ClassStop, 16)
	draws := FilterDraws(inner, pre, 7)

	l0 := draws(0).Logits(img)
	l1 := draws(1).Logits(img)
	same := true
	for i := range l0 {
		if l0[i] != l1[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("draw 0 and draw 1 produced identical logits — randomness not re-seeded")
	}
	again := FilterDraws(inner, pre, 7)(0).Logits(img)
	for i := range l0 {
		if again[i] != l0[i] {
			t.Fatal("rebuilding draw 0 from the same seed changed the logits")
		}
	}
}

// TestEOTQueryInvariant pins the Result query-accounting contract: one
// EOT call is one query, regardless of how many transformation draws it
// averages internally. A BIM run therefore spends identical query counts
// at draws=1 and draws=4.
func TestEOTQueryInvariant(t *testing.T) {
	inner := testClassifier(t)
	pre := filters.NewRandNoise(0.05, 1)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	goal := Goal{Source: fixtureLabel[gtsrb.ClassStop], Target: 1}
	mkAttack := func() Attack { return &BIM{Epsilon: 0.1, Alpha: 0.01, Steps: 8, EarlyStop: false} }

	queries := make([]int, 0, 2)
	for _, draws := range []int{1, 4} {
		cls := (AdaptiveMode{Kind: AdaptiveEOT, Draws: draws}).Classifier(inner, pre, 1)
		res, err := mkAttack().Generate(context.Background(), cls, clean, goal)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Fatalf("draws=%d: unbudgeted run reported Truncated", draws)
		}
		queries = append(queries, res.Queries)
	}
	if queries[0] != queries[1] {
		t.Fatalf("EOT draw count leaked into query accounting: draws=1 spent %d, draws=4 spent %d",
			queries[0], queries[1])
	}
}

// TestAdaptiveCraftingHonoursBudget runs BPDA and EOT crafting under an
// iteration budget and a cancelled context: both must stop early and
// return a well-formed best-so-far result flagged Truncated, exactly as
// un-wrapped attacks do.
func TestAdaptiveCraftingHonoursBudget(t *testing.T) {
	inner := testClassifier(t)
	pre := filters.NewRandNoise(0.05, 1)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	goal := Goal{Source: fixtureLabel[gtsrb.ClassStop], Target: 1}
	modes := []AdaptiveMode{
		{Kind: AdaptiveBPDA},
		{Kind: AdaptiveEOT, Draws: 3},
	}
	for _, mode := range modes {
		t.Run(mode.Name(), func(t *testing.T) {
			cls := mode.Classifier(inner, pre, 1)
			atk := &BIM{Epsilon: 0.1, Alpha: 0.01, Steps: 20, EarlyStop: false}

			res, err := atk.Generate(WithBudget(context.Background(), Budget{MaxIters: 2}), cls, clean, goal)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Truncated || res.Iterations > 2 {
				t.Fatalf("MaxIters=2: truncated=%v iterations=%d", res.Truncated, res.Iterations)
			}
			if !tensor.EqualWithin(tensor.Add(clean, res.Noise), res.Adversarial, 1e-9) {
				t.Fatal("budgeted adaptive result broke the Noise invariant")
			}

			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			res, err = atk.Generate(ctx, cls, clean, goal)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Truncated || res.Iterations != 0 {
				t.Fatalf("pre-cancelled: truncated=%v iterations=%d", res.Truncated, res.Iterations)
			}
		})
	}
}
