package attacks

import (
	"fmt"
	"strconv"
	"strings"
)

// Param describes one tunable attack knob: its spec key, documentation,
// and closures reading and writing the underlying field. The closures
// make the contract reflection-free — each attack binds descriptors to
// its own struct fields.
type Param struct {
	// Name is the spec key, e.g. "eps" in "pgd(eps=0.03)".
	Name string
	// Doc is a one-line description for listings and ATTACKS.md.
	Doc string
	// Get renders the current value in the canonical spec syntax.
	Get func() string
	// Set parses a spec value and assigns it.
	Set func(string) error
}

// Configurable is the uniform parameterization contract: an attack
// exposes its knobs as Params descriptors and accepts spec-syntax
// assignments through Set. Every registry attack implements it, which is
// what lets Parse build configured instances from "name(k=v,...)" specs
// and Name() render round-trippable canonical specs.
type Configurable interface {
	Attack
	// Params lists the attack's knobs in canonical spec order.
	Params() []Param
	// Set assigns one knob by spec key.
	Set(name, value string) error
}

// setParam is the shared Set implementation: resolve the descriptor by
// key and delegate to its setter.
func setParam(ps []Param, name, value string) error {
	for _, p := range ps {
		if p.Name == name {
			if err := p.Set(value); err != nil {
				return fmt.Errorf("attacks: param %s: %w", name, err)
			}
			return nil
		}
	}
	known := make([]string, len(ps))
	for i, p := range ps {
		known[i] = p.Name
	}
	return fmt.Errorf("attacks: unknown param %q (have %s)", name, strings.Join(known, ", "))
}

// specName renders the canonical "name(k=v,...)" spec for an attack.
// Values are formatted with full float64 round-trip precision, so
// Parse(specName(...)) reconstructs exactly the same configuration.
func specName(name string, ps []Param) string {
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('(')
	for i, p := range ps {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.Name)
		sb.WriteByte('=')
		sb.WriteString(p.Get())
	}
	sb.WriteByte(')')
	return sb.String()
}

// formatFloat renders v with the shortest representation that parses
// back to the identical float64.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// floatParam binds a float64 field.
func floatParam(name, doc string, field *float64) Param {
	return Param{
		Name: name, Doc: doc,
		Get: func() string { return formatFloat(*field) },
		Set: func(v string) error {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("want a number, got %q", v)
			}
			*field = f
			return nil
		},
	}
}

// intParam binds an int field.
func intParam(name, doc string, field *int) Param {
	return Param{
		Name: name, Doc: doc,
		Get: func() string { return strconv.Itoa(*field) },
		Set: func(v string) error {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("want an integer, got %q", v)
			}
			*field = n
			return nil
		},
	}
}

// seedParam binds a uint64 RNG-seed field.
func seedParam(name, doc string, field *uint64) Param {
	return Param{
		Name: name, Doc: doc,
		Get: func() string { return strconv.FormatUint(*field, 10) },
		Set: func(v string) error {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return fmt.Errorf("want an unsigned integer, got %q", v)
			}
			*field = n
			return nil
		},
	}
}

// boolParam binds a bool field.
func boolParam(name, doc string, field *bool) Param {
	return Param{
		Name: name, Doc: doc,
		Get: func() string { return strconv.FormatBool(*field) },
		Set: func(v string) error {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return fmt.Errorf("want true or false, got %q", v)
			}
			*field = b
			return nil
		},
	}
}
