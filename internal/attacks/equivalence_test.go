package attacks

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/tensor"
)

// The golden file pins every library attack's exact output — adversarial
// image hash, noise hash, prediction bookkeeping and query accounting — as
// produced by the pre-context-redesign implementation. The API v2 contract
// is that with a background context and an empty Budget every attack stays
// bit-identical to those recorded runs; regenerate with
//
//	go test ./internal/attacks -run TestGoldenEquivalence -update-golden
//
// only when an attack's numerical behaviour changes on purpose.
var updateGolden = flag.Bool("update-golden", false, "rewrite the attack golden fixture")

// goldenRecord captures one attack run's externally observable Result.
type goldenRecord struct {
	AdvSHA256   string  `json:"adv_sha256"`
	NoiseSHA256 string  `json:"noise_sha256"`
	PredClass   int     `json:"pred_class"`
	Confidence  float64 `json:"confidence"`
	Iterations  int     `json:"iterations"`
	Queries     int     `json:"queries"`
	Success     bool    `json:"success"`
}

// hashTensor hashes the exact float64 bit patterns of t.
func hashTensor(t *tensor.Tensor) string {
	h := sha256.New()
	var buf [8]byte
	for _, v := range t.Data() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// generateCompat isolates the golden sweep from the Generate signature so
// the fixture did not need regenerating across the v2 API redesign.
func generateCompat(a Attack, c Classifier, x *tensor.Tensor, goal Goal) (*Result, error) {
	return a.Generate(context.Background(), c, x, goal)
}

// goldenCases enumerates the pinned runs: every registry attack with its
// invariants-test goal, plus the FAdeML wrapper at eta=1 (the eta<1 path
// changed query accounting on purpose in the v2 redesign and is covered by
// TestFAdeMLEtaQueryAccounting instead).
func goldenCases(t *testing.T) map[string]func() (*Result, error) {
	c := testClassifier(t)
	clean := gtsrb.Canonical(gtsrb.ClassStop, 16)
	label := fixtureLabel[gtsrb.ClassStop]
	targeted := Goal{Source: label, Target: 1}
	untargeted := Goal{Source: label, Target: Untargeted}

	goals := map[string]Goal{
		"lbfgs":    targeted,
		"fgsm":     targeted,
		"bim":      targeted,
		"mim":      targeted,
		"pgd":      targeted,
		"cw":       targeted,
		"jsma":     targeted,
		"deepfool": untargeted,
		"onepixel": untargeted,
		"spsa":     untargeted,
	}
	cases := map[string]func() (*Result, error){}
	for _, name := range Names() {
		goal, ok := goals[name]
		if !ok {
			t.Fatalf("no golden goal for library attack %q — extend this test", name)
		}
		name := name
		cases[name] = func() (*Result, error) {
			atk, err := New(name)
			if err != nil {
				return nil, err
			}
			return generateCompat(atk, c, clean, goal)
		}
	}
	cases["fademl[bim|LAP(8)]"] = func() (*Result, error) {
		return generateCompat(NewFAdeML(NewBIM(), filters.NewLAP(8)), c, clean, targeted)
	}
	return cases
}

func TestGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep runs every attack; not a -short test")
	}
	path := filepath.Join("testdata", "golden_results.json")
	cases := goldenCases(t)

	got := map[string]goldenRecord{}
	for name, run := range cases {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name] = goldenRecord{
			AdvSHA256:   hashTensor(res.Adversarial),
			NoiseSHA256: hashTensor(res.Noise),
			PredClass:   res.PredClass,
			Confidence:  res.Confidence,
			Iterations:  res.Iterations,
			Queries:     res.Queries,
			Success:     res.Success,
		}
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden fixture rewritten: %s (%d cases)", path, len(got))
		return
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update-golden to create): %v", err)
	}
	want := map[string]goldenRecord{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("golden fixture corrupt: %v", err)
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: golden case no longer runs", name)
			continue
		}
		if g != w {
			t.Errorf("%s diverged from the pre-redesign implementation:\n got %+v\nwant %+v", name, g, w)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: new case missing from golden fixture (rerun with -update-golden)", name)
		}
	}
}
