// Package attacks implements the paper's adversarial attack library —
// L-BFGS, FGSM and BIM (the three attacks the paper evaluates) plus PGD,
// DeepFool, C&W, JSMA and a one-pixel attack as library extensions — and
// the FAdeML filter-aware attack wrapper, the paper's core contribution.
//
// Attacks operate against the Classifier interface: the attacker's
// differentiable view of the victim. Wrapping a bare network gives the
// classical (filter-blind) attacker; wrapping it in a FilteredClassifier
// folds the deployment pipeline's pre-processing filters into the model
// the attacker differentiates through, which is exactly the FAdeML idea.
package attacks

import (
	"math"

	"repro/internal/filters"
	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Classifier is the attacker's differentiable model of the victim system.
type Classifier interface {
	// NumClasses returns the classifier's output width.
	NumClasses() int
	// Logits returns raw class scores for a CHW image. The returned slice
	// must be caller-owned (not a view of internal reusable state): the
	// Probs/ProbsBatch helpers softmax it in place.
	Logits(x *tensor.Tensor) []float64
	// GradFromLogits runs a forward pass, calls dfn on the resulting
	// logits to obtain dLoss/dLogits, and returns the logits together with
	// dLoss/dInput.
	GradFromLogits(x *tensor.Tensor, dfn func(logits []float64) []float64) ([]float64, *tensor.Tensor)
}

// LogitsBatcher is the optional batched-scoring extension of Classifier:
// one forward pass over a whole slice of images. Query-based attacks (the
// one-pixel DE population) and batched evaluation probe for it and fall
// back to per-image Logits calls when absent, so implementing it is purely
// a performance contract — per-row results must be bit-identical to
// single-image queries, and rows must be caller-owned slices (ProbsBatch
// softmaxes them in place), like Logits.
type LogitsBatcher interface {
	LogitsBatch(xs []*tensor.Tensor) [][]float64
}

// NetClassifier adapts an nn.Network to the Classifier interface.
type NetClassifier struct {
	Net *nn.Network
}

// NumClasses implements Classifier.
func (n NetClassifier) NumClasses() int { return n.Net.OutputClasses() }

// Logits implements Classifier.
func (n NetClassifier) Logits(x *tensor.Tensor) []float64 { return n.Net.Logits(x) }

// LogitsBatch implements LogitsBatcher via one batched network forward.
func (n NetClassifier) LogitsBatch(xs []*tensor.Tensor) [][]float64 {
	return n.Net.LogitsBatch(xs)
}

// GradFromLogits implements Classifier.
func (n NetClassifier) GradFromLogits(x *tensor.Tensor, dfn func([]float64) []float64) ([]float64, *tensor.Tensor) {
	return n.Net.LogitsAndInputGradFrom(x, dfn)
}

// FilteredClassifier prepends a pre-processing stage to another classifier
// and differentiates through it via the stage's VJP. This is the FAdeML
// mechanism: an attacker that models the deployed noise filter simply
// attacks the FilteredClassifier instead of the bare network.
type FilteredClassifier struct {
	// Inner is the downstream model (usually a NetClassifier).
	Inner Classifier
	// Pre is the modeled pre-processing (a single filter or a Chain, which
	// may include the acquisition stage under Threat Model II).
	Pre filters.Filter
}

// NumClasses implements Classifier.
func (f FilteredClassifier) NumClasses() int { return f.Inner.NumClasses() }

// Logits implements Classifier.
func (f FilteredClassifier) Logits(x *tensor.Tensor) []float64 {
	return f.Inner.Logits(f.Pre.Apply(x))
}

// LogitsBatch implements LogitsBatcher: the pre-processing stage runs
// per image (filters are single-image operators) and the filtered batch
// is scored through the inner classifier's batched path.
func (f FilteredClassifier) LogitsBatch(xs []*tensor.Tensor) [][]float64 {
	ys := make([]*tensor.Tensor, len(xs))
	for i, x := range xs {
		ys[i] = f.Pre.Apply(x)
	}
	return LogitsBatch(f.Inner, ys)
}

// GradFromLogits implements Classifier.
func (f FilteredClassifier) GradFromLogits(x *tensor.Tensor, dfn func([]float64) []float64) ([]float64, *tensor.Tensor) {
	y := f.Pre.Apply(x)
	logits, gy := f.Inner.GradFromLogits(y, dfn)
	return logits, f.Pre.VJP(x, gy)
}

// Probs returns softmax probabilities of c at x. The softmax reuses the
// caller-owned logits slice, so one query costs one allocation.
func Probs(c Classifier, x *tensor.Tensor) []float64 {
	p := c.Logits(x)
	return nn.SoftmaxInto(p, p)
}

// LogitsBatch scores a batch of images through one batched forward when c
// implements LogitsBatcher, falling back to per-image queries otherwise.
// Row i is always bit-identical to c.Logits(xs[i]).
func LogitsBatch(c Classifier, xs []*tensor.Tensor) [][]float64 {
	if bc, ok := c.(LogitsBatcher); ok {
		return bc.LogitsBatch(xs)
	}
	rows := make([][]float64, len(xs))
	for i, x := range xs {
		rows[i] = c.Logits(x)
	}
	return rows
}

// ProbsBatch is LogitsBatch with a per-row in-place softmax.
func ProbsBatch(c Classifier, xs []*tensor.Tensor) [][]float64 {
	rows := LogitsBatch(c, xs)
	for i := range rows {
		rows[i] = nn.SoftmaxInto(rows[i], rows[i])
	}
	return rows
}

// Predict returns the argmax class of c at x and its probability.
func Predict(c Classifier, x *tensor.Tensor) (int, float64) {
	p := Probs(c, x)
	best := mathx.ArgMax(p)
	return best, p[best]
}

// CELossGrad computes the cross-entropy loss of c at x against class, and
// its gradient with respect to x. Minimizing it drives the prediction
// *toward* class (targeted direction); ascending it drives the prediction
// away (untargeted direction).
func CELossGrad(c Classifier, x *tensor.Tensor, class int) (float64, *tensor.Tensor) {
	var loss float64
	_, grad := c.GradFromLogits(x, func(logits []float64) []float64 {
		logp := nn.LogSoftmax(logits)
		loss = -logp[class]
		d := make([]float64, len(logits))
		for i := range d {
			p := math.Exp(logp[i])
			if i == class {
				d[i] = p - 1
			} else {
				d[i] = p
			}
		}
		return d
	})
	return loss, grad
}
