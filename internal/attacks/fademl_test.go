package attacks

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/filters"
	"repro/internal/gtsrb"
	"repro/internal/mathx"
	"repro/internal/tensor"
)

// TestFilterNeutralizesClassicAttack reproduces the paper's Section III
// headline at unit-test scale: a filter-blind gradient attack that fools
// the bare network is neutralized once the input passes a smoothing filter
// (Threat Model II/III), reverting the prediction to the source class.
func TestFilterNeutralizesClassicAttack(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	requireCorrect(t, c, img, label)

	atk := &BIM{Epsilon: 0.06, Alpha: 0.008, Steps: 30, EarlyStop: true}
	res, err := atk.Generate(context.Background(), c, img, Goal{Source: label, Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Skipf("base attack did not succeed at this budget; neutralization test not applicable")
	}
	for _, f := range []filters.Filter{filters.NewLAP(8), filters.NewLAR(2)} {
		filtered := FilteredClassifier{Inner: c, Pre: f}
		pred, conf := Predict(filtered, res.Adversarial)
		if pred != label {
			t.Errorf("%s did not neutralize BIM: predicts %d at %.2f", f.Name(), pred, conf)
		}
	}
}

// TestFAdeMLSurvivesFilter reproduces the paper's Section IV headline: the
// filter-aware attack keeps the targeted misclassification through the
// very filter that neutralizes the classical attack.
func TestFAdeMLSurvivesFilter(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	requireCorrect(t, c, img, label)

	filter := filters.NewLAP(8)
	base := &BIM{Epsilon: 0.12, Alpha: 0.012, Steps: 60, EarlyStop: true}
	fademl := NewFAdeML(base, filter)
	res, err := fademl.Generate(context.Background(), c, img, Goal{Source: label, Target: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("FAdeML failed through %s: class %d at %.2f", filter.Name(), res.PredClass, res.Confidence)
	}
	// Verify against an independently constructed filtered pipeline.
	deployed := FilteredClassifier{Inner: c, Pre: filter}
	pred, conf := Predict(deployed, res.Adversarial)
	if pred != 1 {
		t.Fatalf("deployed pipeline predicts %d at %.2f, want target 1", pred, conf)
	}
}

func TestFAdeMLName(t *testing.T) {
	f := NewFAdeML(NewBIM(), filters.NewLAP(8))
	name := f.Name()
	if !strings.Contains(name, "FAdeML") || !strings.Contains(name, "lap(np=8)") {
		t.Fatalf("FAdeML name %q lacks components", name)
	}
}

func TestFAdeMLValidation(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	goal := Goal{Source: label, Target: 1}
	if _, err := (&FAdeML{Base: nil, Filter: filters.NewLAP(4), Eta: 1}).Generate(context.Background(), c, img, goal); err == nil {
		t.Fatal("nil base accepted")
	}
	if _, err := (&FAdeML{Base: NewFGSM(), Filter: nil, Eta: 1}).Generate(context.Background(), c, img, goal); err == nil {
		t.Fatal("nil filter accepted")
	}
	if _, err := (&FAdeML{Base: NewFGSM(), Filter: filters.NewLAP(4), Eta: 2}).Generate(context.Background(), c, img, goal); err == nil {
		t.Fatal("eta > 1 accepted")
	}
}

func TestFAdeMLEtaScalesNoise(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	goal := Goal{Source: label, Target: 1}
	base := &FGSM{Epsilon: 0.08}
	full := &FAdeML{Base: base, Filter: filters.NewLAP(4), Eta: 1}
	half := &FAdeML{Base: base, Filter: filters.NewLAP(4), Eta: 0.5}
	resFull, err := full.Generate(context.Background(), c, img, goal)
	if err != nil {
		t.Fatal(err)
	}
	resHalf, err := half.Generate(context.Background(), c, img, goal)
	if err != nil {
		t.Fatal(err)
	}
	// Away from clamping, the halved noise is exactly half; globally its
	// norm must be at most slightly more than half.
	if resHalf.Noise.LInfNorm() > 0.5*resFull.Noise.LInfNorm()+1e-9 {
		t.Fatalf("eta=0.5 noise LInf %v vs full %v", resHalf.Noise.LInfNorm(), resFull.Noise.LInfNorm())
	}
}

func TestEq2CostProperties(t *testing.T) {
	// Equal distributions have zero cost.
	p := []float64{0.5, 0.2, 0.1, 0.1, 0.05, 0.05}
	if got := Eq2Cost(p, p, 5); math.Abs(got) > 1e-12 {
		t.Fatalf("Eq2Cost(p,p) = %v", got)
	}
	// A confident distribution vs a uniform one has positive cost.
	confident := []float64{0.9, 0.04, 0.03, 0.02, 0.01, 0}
	uniform := []float64{1. / 6, 1. / 6, 1. / 6, 1. / 6, 1. / 6, 1. / 6}
	if got := Eq2Cost(confident, uniform, 5); got <= 0 {
		t.Fatalf("Eq2Cost(confident, uniform) = %v, want positive", got)
	}
	// Antisymmetry.
	if a, b := Eq2Cost(confident, uniform, 5), Eq2Cost(uniform, confident, 5); math.Abs(a+b) > 1e-12 {
		t.Fatalf("Eq2Cost not antisymmetric: %v vs %v", a, b)
	}
}

func TestGenerateWithTraceRecordsEq2(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	fademl := NewFAdeML(NewBIM(), filters.NewLAP(8))
	res, trace, err := fademl.GenerateWithTrace(context.Background(), c, img, Goal{Source: label, Target: 1}, 12, 0.01, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Steps) != 12 {
		t.Fatalf("trace has %d steps, want 12", len(trace.Steps))
	}
	for i, v := range trace.Steps {
		if !mathx.IsFinite(v) {
			t.Fatalf("trace step %d not finite: %v", i, v)
		}
		if v < -5 || v > 5 {
			t.Fatalf("trace step %d implausible: %v", i, v)
		}
	}
	if res.Adversarial.Min() < 0 || res.Adversarial.Max() > 1 {
		t.Fatal("traced attack escaped [0,1]")
	}
	if res.Noise.LInfNorm() > 0.1+1e-9 {
		t.Fatal("traced attack exceeded epsilon")
	}
}

func TestGenerateWithTraceValidation(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	f := NewFAdeML(NewBIM(), filters.NewLAP(4))
	if _, _, err := f.GenerateWithTrace(context.Background(), c, img, Goal{Source: label, Target: Untargeted}, 5, 0.01, 0.1); err == nil {
		t.Fatal("untargeted trace accepted")
	}
	if _, _, err := f.GenerateWithTrace(context.Background(), c, img, Goal{Source: label, Target: 1}, 0, 0.01, 0.1); err == nil {
		t.Fatal("zero steps accepted")
	}
}

// TestFilteredClassifierGradientChain verifies the composed VJP against
// finite differences through filter + network — the correctness core of
// the FAdeML mechanism.
func TestFilteredClassifierGradientChain(t *testing.T) {
	c := testClassifier(t)
	fc := FilteredClassifier{Inner: c, Pre: filters.NewLAP(8)}
	img, _ := canonical(t, gtsrb.ClassStop)
	loss, grad := CELossGrad(fc, img, 1)
	if !mathx.IsFinite(loss) {
		t.Fatal("filtered loss not finite")
	}
	const h = 1e-5
	for _, i := range []int{3, 99, 257, 511} {
		d := img.Data()
		orig := d[i]
		d[i] = orig + h
		lp, _ := CELossGrad(fc, img, 1)
		d[i] = orig - h
		lm, _ := CELossGrad(fc, img, 1)
		d[i] = orig
		numeric := (lp - lm) / (2 * h)
		a := grad.Data()[i]
		denom := math.Max(1e-6, math.Max(math.Abs(a), math.Abs(numeric)))
		if rel := math.Abs(a-numeric) / denom; rel > 1e-3 {
			t.Fatalf("filtered grad[%d]: analytic %v vs numeric %v (rel %v)", i, a, numeric, rel)
		}
	}
}

// TestFAdeMLNoiseIsLowerFrequency checks the mechanism behind survival:
// filter-aware noise must retain far more of its energy after smoothing
// than filter-blind noise does.
func TestFAdeMLNoiseIsLowerFrequency(t *testing.T) {
	c := testClassifier(t)
	img, label := canonical(t, gtsrb.ClassStop)
	goal := Goal{Source: label, Target: 1}
	filter := filters.NewLAP(8)

	blind, err := (&BIM{Epsilon: 0.08, Alpha: 0.01, Steps: 30}).Generate(context.Background(), c, img, goal)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := NewFAdeML(&BIM{Epsilon: 0.08, Alpha: 0.01, Steps: 30}, filter).Generate(context.Background(), c, img, goal)
	if err != nil {
		t.Fatal(err)
	}
	survived := func(noise *tensor.Tensor) float64 {
		if noise.L2Norm() == 0 {
			return 0
		}
		return filter.Apply(noise).L2Norm() / noise.L2Norm()
	}
	sBlind, sAware := survived(blind.Noise), survived(aware.Noise)
	if sAware <= sBlind {
		t.Fatalf("filter-aware noise survives %.3f of filtering vs blind %.3f — expected more", sAware, sBlind)
	}
}
