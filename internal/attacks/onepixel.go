package attacks

import (
	"context"
	"fmt"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// OnePixel is Su et al.'s black-box attack: differential evolution over a
// handful of (x, y, r, g, b) pixel substitutions, using only forward
// queries — no gradients. A library extension beyond the paper's trio.
//
// The evolution is the textbook synchronous DE/rand/1 scheme: every
// generation builds its full trial population from the generation-start
// population, scores all trials, then applies selection. Building the
// whole population up front is what lets the fitness evaluation run as
// one batched forward pass per generation (via LogitsBatcher) instead of
// Population separate batch-of-1 queries; the batched and per-image
// scoring paths are bit-identical (same queries, same adversarial
// output, same seed).
type OnePixel struct {
	// Pixels is the number of pixels the attack may replace.
	Pixels int
	// Population and Generations control the differential evolution.
	Population, Generations int
	// Seed drives the evolution deterministically.
	Seed uint64
}

// NewOnePixel constructs the attack with 1 pixel, population 40 and
// 30 generations.
func NewOnePixel() *OnePixel {
	return &OnePixel{Pixels: 1, Population: 40, Generations: 30, Seed: 7}
}

// Name implements Attack.
func (o *OnePixel) Name() string { return specName("onepixel", o.Params()) }

// Params implements Configurable.
func (o *OnePixel) Params() []Param {
	return []Param{
		intParam("pixels", "pixels the attack may replace", &o.Pixels),
		intParam("pop", "differential-evolution population size", &o.Population),
		intParam("gens", "differential-evolution generations", &o.Generations),
		seedParam("seed", "evolution seed", &o.Seed),
	}
}

// Set implements Configurable.
func (o *OnePixel) Set(name, value string) error { return setParam(o.Params(), name, value) }

// candidate is one DE individual: Pixels × (y, x, r, g, b) in [0,1] genes.
type opCandidate []float64

// Generate implements Attack. Works for targeted and untargeted goals.
// Budget granularity is one DE generation (Population queries per check).
func (o *OnePixel) Generate(ctx context.Context, c Classifier, x *tensor.Tensor, goal Goal) (*Result, error) {
	if err := goal.Validate(c); err != nil {
		return nil, err
	}
	if x.Dims() != 3 {
		return nil, fmt.Errorf("attacks: OnePixel needs a CHW image, got %v", x.Shape())
	}
	if o.Pixels <= 0 || o.Population <= 3 || o.Generations <= 0 {
		return nil, fmt.Errorf("attacks: OnePixel parameters out of range")
	}
	ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	if ch != 3 && ch != 1 {
		return nil, fmt.Errorf("attacks: OnePixel supports 1- or 3-channel images, got %d", ch)
	}
	genes := o.Pixels * (2 + ch)
	e := begin(ctx, o.Name())
	rng := mathx.NewRNG(o.Seed)

	// forEachPixel decodes each of cand's pixel genes to its clamped image
	// coordinate exactly once, so the perturb and restore passes below can
	// never disagree about which pixels were touched.
	forEachPixel := func(cand opCandidate, visit func(base, py, px int)) {
		for p := 0; p < o.Pixels; p++ {
			base := p * (2 + ch)
			py := int(mathx.Clamp01(cand[base]) * float64(h-1))
			px := int(mathx.Clamp01(cand[base+1]) * float64(w-1))
			visit(base, py, px)
		}
	}
	// writePixels perturbs img in place per cand; restorePixels puts the
	// original values back. One scratch image per population slot (cloned
	// once, perturbed and restored around every scoring pass) replaces the
	// historical full-image clone per fitness query — thousands of image
	// copies per attack.
	writePixels := func(img *tensor.Tensor, cand opCandidate) {
		forEachPixel(cand, func(base, py, px int) {
			for cc := 0; cc < ch; cc++ {
				img.Set(mathx.Clamp01(cand[base+2+cc]), cc, py, px)
			}
		})
	}
	restorePixels := func(img *tensor.Tensor, cand opCandidate) {
		forEachPixel(cand, func(_, py, px int) {
			for cc := 0; cc < ch; cc++ {
				img.Set(x.At(cc, py, px), cc, py, px)
			}
		})
	}
	slots := make([]*tensor.Tensor, o.Population)
	for i := range slots {
		slots[i] = x.Clone()
	}
	// scoreAll evaluates every candidate's fitness — probability of the
	// target class for targeted goals, negative source-class probability
	// for untargeted — in one batched forward pass over the slot images.
	fitDst := make([]float64, o.Population)
	scoreAll := func(cands []opCandidate, fit []float64) {
		for i, cand := range cands {
			writePixels(slots[i], cand)
		}
		probs := ProbsBatch(c, slots[:len(cands)])
		e.query(len(cands))
		for i := range cands {
			if goal.IsTargeted() {
				fit[i] = probs[i][goal.Target]
			} else {
				fit[i] = -probs[i][goal.Source]
			}
		}
		for i, cand := range cands {
			restorePixels(slots[i], cand)
		}
	}

	if e.halt() {
		// Cancelled before the population was ever scored: best-so-far is
		// the unperturbed image.
		return e.finish(c, x, x.Clone(), goal, 0), nil
	}

	pop := make([]opCandidate, o.Population)
	fit := make([]float64, o.Population)
	for i := range pop {
		pop[i] = make(opCandidate, genes)
		for g := range pop[i] {
			pop[i][g] = rng.Float64()
		}
	}
	scoreAll(pop, fit)

	trials := make([]opCandidate, o.Population)
	for i := range trials {
		trials[i] = make(opCandidate, genes)
	}
	gens := 0
	for gen := 0; gen < o.Generations && !e.halt(); gen++ {
		gens = gen + 1
		for i := range pop {
			// DE/rand/1 mutation with F=0.5 and full crossover, donors
			// drawn from the generation-start population.
			a, b, cc := rng.IntN(o.Population), rng.IntN(o.Population), rng.IntN(o.Population)
			for g := range trials[i] {
				trials[i][g] = mathx.Clamp01(pop[a][g] + 0.5*(pop[b][g]-pop[cc][g]))
			}
		}
		scoreAll(trials, fitDst)
		for i := range pop {
			if fitDst[i] > fit[i] {
				copy(pop[i], trials[i])
				fit[i] = fitDst[i]
			}
		}
		e.iterDone()
	}
	best := mathx.ArgMax(fit)
	adv := x.Clone()
	writePixels(adv, pop[best])
	return e.finish(c, x, adv, goal, gens), nil
}
