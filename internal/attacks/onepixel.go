package attacks

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// OnePixel is Su et al.'s black-box attack: differential evolution over a
// handful of (x, y, r, g, b) pixel substitutions, using only forward
// queries — no gradients. A library extension beyond the paper's trio.
type OnePixel struct {
	// Pixels is the number of pixels the attack may replace.
	Pixels int
	// Population and Generations control the differential evolution.
	Population, Generations int
	// Seed drives the evolution deterministically.
	Seed uint64
}

// NewOnePixel constructs the attack with 1 pixel, population 40 and
// 30 generations.
func NewOnePixel() *OnePixel {
	return &OnePixel{Pixels: 1, Population: 40, Generations: 30, Seed: 7}
}

// Name implements Attack.
func (o *OnePixel) Name() string { return fmt.Sprintf("OnePixel(%d)", o.Pixels) }

// candidate is one DE individual: Pixels × (y, x, r, g, b) in [0,1] genes.
type opCandidate []float64

// Generate implements Attack. Works for targeted and untargeted goals.
func (o *OnePixel) Generate(c Classifier, x *tensor.Tensor, goal Goal) (*Result, error) {
	if err := goal.Validate(c); err != nil {
		return nil, err
	}
	if x.Dims() != 3 {
		return nil, fmt.Errorf("attacks: OnePixel needs a CHW image, got %v", x.Shape())
	}
	if o.Pixels <= 0 || o.Population <= 3 || o.Generations <= 0 {
		return nil, fmt.Errorf("attacks: OnePixel parameters out of range")
	}
	ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	if ch != 3 && ch != 1 {
		return nil, fmt.Errorf("attacks: OnePixel supports 1- or 3-channel images, got %d", ch)
	}
	genes := o.Pixels * (2 + ch)
	rng := mathx.NewRNG(o.Seed)
	queries := 0

	apply := func(cand opCandidate) *tensor.Tensor {
		img := x.Clone()
		for p := 0; p < o.Pixels; p++ {
			base := p * (2 + ch)
			py := int(mathx.Clamp01(cand[base]) * float64(h-1))
			px := int(mathx.Clamp01(cand[base+1]) * float64(w-1))
			for cc := 0; cc < ch; cc++ {
				img.Set(mathx.Clamp01(cand[base+2+cc]), cc, py, px)
			}
		}
		return img
	}
	// Fitness: probability of the target class (to maximize) for targeted
	// goals; negative probability of the source class for untargeted.
	fitness := func(cand opCandidate) float64 {
		probs := Probs(c, apply(cand))
		queries++
		if goal.IsTargeted() {
			return probs[goal.Target]
		}
		return -probs[goal.Source]
	}

	pop := make([]opCandidate, o.Population)
	fit := make([]float64, o.Population)
	for i := range pop {
		pop[i] = make(opCandidate, genes)
		for g := range pop[i] {
			pop[i][g] = rng.Float64()
		}
		fit[i] = fitness(pop[i])
	}

	trial := make(opCandidate, genes)
	for gen := 0; gen < o.Generations; gen++ {
		for i := range pop {
			// DE/rand/1 mutation with F=0.5 and full crossover.
			a, b, cc := rng.IntN(o.Population), rng.IntN(o.Population), rng.IntN(o.Population)
			for g := range trial {
				trial[g] = mathx.Clamp01(pop[a][g] + 0.5*(pop[b][g]-pop[cc][g]))
			}
			if f := fitness(trial); f > fit[i] {
				copy(pop[i], trial)
				fit[i] = f
			}
		}
	}
	best := mathx.ArgMax(fit)
	adv := apply(pop[best])
	return finishResult(c, x, adv, goal, o.Generations, queries), nil
}
