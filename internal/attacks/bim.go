package attacks

import (
	"context"
	"fmt"

	"repro/internal/tensor"
)

// BIM is Kurakin et al.'s basic iterative method: repeated small FGSM
// steps, clipping after each step both into the L∞ ball of radius Epsilon
// around the original image and into the valid pixel range.
type BIM struct {
	// Epsilon is the total L∞ budget; Alpha the per-step size.
	Epsilon, Alpha float64
	// Steps is the iteration count.
	Steps int
	// EarlyStop stops as soon as the goal is achieved.
	EarlyStop bool
}

// NewBIM constructs the attack with the canonical schedule
// (eps=8/255, alpha=eps/8, 16 steps).
func NewBIM() *BIM {
	eps := 8.0 / 255
	return &BIM{Epsilon: eps, Alpha: eps / 8, Steps: 16, EarlyStop: true}
}

// Name implements Attack.
func (b *BIM) Name() string { return specName("bim", b.Params()) }

// Params implements Configurable.
func (b *BIM) Params() []Param {
	return []Param{
		floatParam("eps", "total L∞ budget", &b.Epsilon),
		floatParam("alpha", "per-step size", &b.Alpha),
		intParam("steps", "iteration count", &b.Steps),
		boolParam("early", "stop once the goal is achieved", &b.EarlyStop),
	}
}

// Set implements Configurable.
func (b *BIM) Set(name, value string) error { return setParam(b.Params(), name, value) }

// Generate implements Attack.
func (b *BIM) Generate(ctx context.Context, c Classifier, x *tensor.Tensor, goal Goal) (*Result, error) {
	if err := goal.Validate(c); err != nil {
		return nil, err
	}
	if b.Epsilon <= 0 || b.Alpha <= 0 || b.Steps <= 0 {
		return nil, fmt.Errorf("attacks: BIM parameters must be positive (eps=%v alpha=%v steps=%d)",
			b.Epsilon, b.Alpha, b.Steps)
	}
	e := begin(ctx, b.Name())
	adv := x.Clone()
	iters := 0
	for i := 0; i < b.Steps && !e.halt(); i++ {
		iters = i + 1
		var grad *tensor.Tensor
		var step float64
		if goal.IsTargeted() {
			_, grad = CELossGrad(c, adv, goal.Target)
			step = -b.Alpha
		} else {
			_, grad = CELossGrad(c, adv, goal.Source)
			step = +b.Alpha
		}
		e.query(1)
		adv.AddScaled(step, tensor.SignOf(grad))
		clampBall(adv, x, b.Epsilon)
		clampUnit(adv)
		if b.EarlyStop {
			pred, _ := Predict(c, adv)
			e.query(1)
			if goal.achieved(pred) {
				e.iterDone()
				break
			}
		}
		e.iterDone()
	}
	return e.finish(c, x, adv, goal, iters), nil
}
