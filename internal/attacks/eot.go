package attacks

import (
	"fmt"

	"repro/internal/tensor"
)

// EOT (expectation over transformation, Athalye et al., ICML 2018) makes a
// gradient attack robust to a *stochastic* pipeline stage by averaging
// gradients over several draws of the stage. In this repository the
// stochastic stage is the Threat-Model-II acquisition (sensor noise): a
// FAdeML attacker that models acquisition with one fixed noise draw
// overfits to that draw; EOT averages across draws instead.
//
// EOT wraps a Classifier, not an Attack: any gradient attack pointed at
// the EOT classifier becomes transformation-robust. Budgets and
// cancellation therefore apply through the wrapping attack's own
// iteration checks, and per the Result query invariant each EOT call
// counts as one query regardless of Draws.
type EOT struct {
	// Model builds the k-th stochastic view of the pipeline (e.g. a
	// FilteredClassifier over an acquisition stage seeded with k).
	Model func(draw int) Classifier
	// Draws is the number of transformation samples averaged per call.
	Draws int
}

// NewEOT constructs an EOT-composed classifier view.
func NewEOT(model func(draw int) Classifier, draws int) *EOT {
	if model == nil || draws <= 0 {
		panic(fmt.Sprintf("attacks: EOT needs a model factory and positive draws (got %d)", draws))
	}
	return &EOT{Model: model, Draws: draws}
}

// NumClasses implements Classifier.
func (e *EOT) NumClasses() int { return e.Model(0).NumClasses() }

// Logits implements Classifier: the mean logits over the draws.
func (e *EOT) Logits(x *tensor.Tensor) []float64 {
	var acc []float64
	for k := 0; k < e.Draws; k++ {
		logits := e.Model(k).Logits(x)
		if acc == nil {
			acc = make([]float64, len(logits))
		}
		for i, v := range logits {
			acc[i] += v
		}
	}
	inv := 1 / float64(e.Draws)
	for i := range acc {
		acc[i] *= inv
	}
	return acc
}

// GradFromLogits implements Classifier: dfn is evaluated on the mean
// logits, and the resulting dLoss/dLogits is backpropagated through every
// draw, averaging the input gradients.
func (e *EOT) GradFromLogits(x *tensor.Tensor, dfn func([]float64) []float64) ([]float64, *tensor.Tensor) {
	mean := e.Logits(x)
	dl := dfn(mean)
	var gradAcc *tensor.Tensor
	for k := 0; k < e.Draws; k++ {
		_, g := e.Model(k).GradFromLogits(x, func([]float64) []float64 {
			return dl
		})
		if gradAcc == nil {
			gradAcc = g.Clone()
		} else {
			gradAcc.AddInPlace(g)
		}
	}
	gradAcc.ScaleInPlace(1 / float64(e.Draws))
	return mean, gradAcc
}
