package attacks

import "testing"

// FuzzParse throws arbitrary spec strings at the attack parser: it must
// never panic, and every accepted spec must round-trip through its
// canonical name. Run longer with:
//
//	go test ./internal/attacks -fuzz FuzzParse -fuzztime 30s
func FuzzParse(f *testing.F) {
	for _, name := range Names() {
		f.Add(name)
		if atk, err := New(name); err == nil {
			f.Add(atk.Name())
		}
	}
	f.Add("bim(eps=0.12,alpha=0.02,steps=20)")
	f.Add("pgd(eps=0.03,steps=40)")
	f.Add("bim(eps=-1)")
	f.Add("bim(eps=")
	f.Add("nosuchattack")
	f.Add("")

	f.Fuzz(func(t *testing.T, spec string) {
		atk, err := Parse(spec)
		if err != nil {
			return
		}
		if atk == nil {
			t.Fatalf("Parse(%q) returned nil attack without error", spec)
		}
		name := atk.Name()
		again, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q) accepted, but canonical name %q does not re-parse: %v", spec, name, err)
		}
		if again.Name() != name {
			t.Fatalf("Parse(%q): name round-trip unstable: %q -> %q", spec, name, again.Name())
		}
	})
}

// FuzzParseAdaptive covers the adaptive-mode grammar the serving and CLI
// boundaries expose: never panic, accepted modes round-trip.
func FuzzParseAdaptive(f *testing.F) {
	for _, kind := range AdaptiveModes() {
		f.Add(kind)
	}
	f.Add("eot(draws=8)")
	f.Add("eot(draws=0)")
	f.Add("eot(draws=-3)")
	f.Add("blind(x=1)")
	f.Add("EOT(DRAWS=4)")
	f.Add("")

	f.Fuzz(func(t *testing.T, spec string) {
		mode, err := ParseAdaptive(spec)
		if err != nil {
			return
		}
		name := mode.Name()
		again, err := ParseAdaptive(name)
		if err != nil {
			t.Fatalf("ParseAdaptive(%q) accepted, but canonical name %q does not re-parse: %v", spec, name, err)
		}
		if again.Name() != name {
			t.Fatalf("ParseAdaptive(%q): name round-trip unstable: %q -> %q", spec, name, again.Name())
		}
	})
}
