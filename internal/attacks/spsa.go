package attacks

import (
	"context"
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/tensor"
)

// SPSA is a gradient-free attack using simultaneous perturbation
// stochastic approximation (Uesato et al., ICML 2018): the input gradient
// is estimated from paired forward evaluations along random ±1 directions,
// then used for projected sign steps. It needs only Logits access — a true
// black-box attack, included because the paper's threat taxonomy
// explicitly covers black-box adversaries.
type SPSA struct {
	// Epsilon is the L∞ budget; Alpha the per-step size.
	Epsilon, Alpha float64
	// Steps is the number of optimization steps; Samples the number of
	// random-direction pairs averaged per gradient estimate.
	Steps, Samples int
	// Delta is the finite-difference probe radius.
	Delta float64
	// Seed drives the random directions.
	Seed uint64
}

// NewSPSA constructs the attack with a moderate query budget
// (eps=8/255, 40 steps × 16 direction pairs).
func NewSPSA() *SPSA {
	eps := 8.0 / 255
	return &SPSA{Epsilon: eps, Alpha: eps / 8, Steps: 40, Samples: 16, Delta: 0.01, Seed: 3}
}

// Name implements Attack.
func (s *SPSA) Name() string { return specName("spsa", s.Params()) }

// Params implements Configurable.
func (s *SPSA) Params() []Param {
	return []Param{
		floatParam("eps", "total L∞ budget", &s.Epsilon),
		floatParam("alpha", "per-step size", &s.Alpha),
		intParam("steps", "optimization steps", &s.Steps),
		intParam("samples", "direction pairs per gradient estimate", &s.Samples),
		floatParam("delta", "finite-difference probe radius", &s.Delta),
		seedParam("seed", "random-direction seed", &s.Seed),
	}
}

// Set implements Configurable.
func (s *SPSA) Set(name, value string) error { return setParam(s.Params(), name, value) }

// Generate implements Attack. Budget granularity is one optimization
// step (2×Samples forward queries per check).
func (s *SPSA) Generate(ctx context.Context, c Classifier, x *tensor.Tensor, goal Goal) (*Result, error) {
	if err := goal.Validate(c); err != nil {
		return nil, err
	}
	if s.Epsilon <= 0 || s.Alpha <= 0 || s.Steps <= 0 || s.Samples <= 0 || s.Delta <= 0 {
		return nil, fmt.Errorf("attacks: SPSA parameters must be positive")
	}
	e := begin(ctx, s.Name())
	rng := mathx.NewRNG(s.Seed)
	n := x.Len()
	adv := x.Clone()
	iters := 0

	// margin returns the quantity to *descend*: targeted → loss of the
	// target class; untargeted → negative loss of the source class.
	margin := func(img *tensor.Tensor) float64 {
		logits := c.Logits(img)
		e.query(1)
		logp := logSoftmax(logits)
		if goal.IsTargeted() {
			return -logp[goal.Target]
		}
		return logp[goal.Source]
	}

	dir := tensor.New(x.Shape()...)
	probe := tensor.New(x.Shape()...)
	grad := tensor.New(x.Shape()...)
	for i := 0; i < s.Steps && !e.halt(); i++ {
		iters = i + 1
		grad.Zero()
		for k := 0; k < s.Samples; k++ {
			// Rademacher ±1 direction.
			dd := dir.Data()
			for j := 0; j < n; j++ {
				if rng.Bool(0.5) {
					dd[j] = 1
				} else {
					dd[j] = -1
				}
			}
			probe.CopyFrom(adv)
			probe.AddScaled(s.Delta, dir)
			probe.Clamp01()
			fPlus := margin(probe)
			probe.CopyFrom(adv)
			probe.AddScaled(-s.Delta, dir)
			probe.Clamp01()
			fMinus := margin(probe)
			// g ≈ (f+ − f−)/(2δ) · sign-direction (element-wise inverse of
			// ±1 is itself).
			coeff := (fPlus - fMinus) / (2 * s.Delta * float64(s.Samples))
			grad.AddScaled(coeff, dir)
		}
		adv.AddScaled(-s.Alpha, tensor.SignOf(grad))
		clampBall(adv, x, s.Epsilon)
		clampUnit(adv)
		pred, _ := Predict(c, adv)
		e.query(1)
		if goal.achieved(pred) {
			e.iterDone()
			break
		}
		e.iterDone()
	}
	return e.finish(c, x, adv, goal, iters), nil
}

// logSoftmax is a local stable log-softmax (avoids importing nn here).
func logSoftmax(logits []float64) []float64 {
	maxV := logits[0]
	for _, v := range logits[1:] {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for _, v := range logits {
		sum += math.Exp(v - maxV)
	}
	logSum := maxV + math.Log(sum)
	out := make([]float64, len(logits))
	for i, v := range logits {
		out[i] = v - logSum
	}
	return out
}
