package train

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mathx"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// blobDataset is a tiny in-memory classification task: class k images are
// constant blocks of intensity around k's level plus noise, trivially
// learnable by a small network.
type blobDataset struct {
	imgs   []*tensor.Tensor
	labels []int
}

func newBlobDataset(n, classes, size int, seed uint64) *blobDataset {
	rng := mathx.NewRNG(seed)
	ds := &blobDataset{}
	for i := 0; i < n; i++ {
		label := i % classes
		img := tensor.New(1, size, size)
		base := float64(label) / float64(classes)
		for j := range img.Data() {
			img.Data()[j] = mathx.Clamp01(base + rng.NormScaled(0, 0.04))
		}
		ds.imgs = append(ds.imgs, img)
		ds.labels = append(ds.labels, label)
	}
	return ds
}

func (d *blobDataset) Len() int { return len(d.imgs) }
func (d *blobDataset) Sample(i int) (*tensor.Tensor, int) {
	return d.imgs[i], d.labels[i]
}

func smallNet(t *testing.T, classes int, seed uint64) *nn.Network {
	t.Helper()
	rng := mathx.NewRNG(seed)
	net, err := nn.NewNetwork("mlp", []int{1, 8, 8},
		nn.NewFlatten("flat"),
		nn.NewDense("fc1", 64, 32, rng),
		nn.NewReLU("relu1"),
		nn.NewDenseXavier("fc2", 32, classes, rng),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestFitLearnsBlobTask(t *testing.T) {
	ds := newBlobDataset(120, 4, 8, 1)
	net := smallNet(t, 4, 2)
	res, err := Fit(net, ds, Config{
		Epochs:    12,
		BatchSize: 16,
		Schedule:  ConstantLR(1e-2),
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Epochs[0].MeanLoss
	last := res.FinalLoss()
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	m := Evaluate(net, ds, nil)
	if m.Top1 < 0.9 {
		t.Fatalf("top1 after training = %v, want >= 0.9", m.Top1)
	}
}

func TestFitDeterministicForSeed(t *testing.T) {
	run := func() []float64 {
		ds := newBlobDataset(60, 3, 8, 7)
		net := smallNet(t, 3, 11)
		res, err := Fit(net, ds, Config{Epochs: 3, BatchSize: 8, Schedule: ConstantLR(1e-3), Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var losses []float64
		for _, e := range res.Epochs {
			losses = append(losses, e.MeanLoss)
		}
		return losses
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training not deterministic: %v vs %v", a, b)
		}
	}
}

func TestFitValidatesConfig(t *testing.T) {
	ds := newBlobDataset(10, 2, 8, 1)
	net := smallNet(t, 2, 1)
	if _, err := Fit(net, ds, Config{Epochs: 0, BatchSize: 4}); err == nil {
		t.Fatal("Epochs=0 accepted")
	}
	if _, err := Fit(net, ds, Config{Epochs: 1, BatchSize: 0}); err == nil {
		t.Fatal("BatchSize=0 accepted")
	}
	if _, err := Fit(net, &blobDataset{}, Config{Epochs: 1, BatchSize: 4}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestFitLogsEpochs(t *testing.T) {
	ds := newBlobDataset(20, 2, 8, 2)
	net := smallNet(t, 2, 3)
	var sb strings.Builder
	if _, err := Fit(net, ds, Config{Epochs: 2, BatchSize: 8, Log: &sb, Schedule: ConstantLR(1e-3)}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "epoch"); got != 2 {
		t.Fatalf("logged %d epoch lines, want 2", got)
	}
}

func TestOptimizersReduceQuadraticLoss(t *testing.T) {
	// Minimize f(w) = ||w - target||^2 directly through the optimizer
	// interface using a single dense layer's parameter.
	for _, opt := range []Optimizer{SGD{}, NewMomentum(0.9), NewAdam()} {
		rng := mathx.NewRNG(31)
		p := &nn.Param{
			Name:  "w",
			Value: tensor.RandN(rng, 10),
			Grad:  tensor.New(10),
		}
		target := tensor.RandN(rng, 10)
		lossAt := func() float64 { return tensor.Sub(p.Value, target).L2Norm() }
		initial := lossAt()
		for i := 0; i < 200; i++ {
			diff := tensor.Sub(p.Value, target)
			p.Grad.Zero()
			p.Grad.AddScaled(2, diff)
			opt.Step([]*nn.Param{p}, 0.05)
		}
		if final := lossAt(); final > initial/10 {
			t.Errorf("%s: loss %v -> %v, expected 10x reduction", opt.Name(), initial, final)
		}
	}
}

func TestGradClip(t *testing.T) {
	p := &nn.Param{Name: "w", Value: tensor.New(4), Grad: tensor.FromSlice([]float64{3, 4, 0, 0}, 4)}
	norm := GradClip([]*nn.Param{p}, 1.0)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v, want 5", norm)
	}
	if got := p.Grad.L2Norm(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v, want 1", got)
	}
	// No clipping when under the limit or disabled.
	p.Grad = tensor.FromSlice([]float64{0.1, 0, 0, 0}, 4)
	GradClip([]*nn.Param{p}, 1.0)
	if p.Grad.Data()[0] != 0.1 {
		t.Fatal("clip modified gradient under the limit")
	}
	GradClip([]*nn.Param{p}, 0)
	if p.Grad.Data()[0] != 0.1 {
		t.Fatal("disabled clip modified gradient")
	}
}

func TestSchedules(t *testing.T) {
	if got := (ConstantLR(0.1)).LR(99); got != 0.1 {
		t.Errorf("ConstantLR = %v", got)
	}
	sd := StepDecay{Base: 1, Gamma: 0.1, Every: 2}
	for _, c := range []struct {
		epoch int
		want  float64
	}{{0, 1}, {1, 1}, {2, 0.1}, {3, 0.1}, {4, 0.01}} {
		if got := sd.LR(c.epoch); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("StepDecay.LR(%d) = %v, want %v", c.epoch, got, c.want)
		}
	}
	cd := CosineDecay{Base: 1, Floor: 0.1, Total: 11}
	if got := cd.LR(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("CosineDecay.LR(0) = %v", got)
	}
	if got := cd.LR(10); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("CosineDecay.LR(10) = %v", got)
	}
	if got := cd.LR(100); got != 0.1 {
		t.Errorf("CosineDecay past end = %v", got)
	}
	mid := cd.LR(5)
	if mid <= 0.1 || mid >= 1 {
		t.Errorf("CosineDecay midpoint = %v not between floor and base", mid)
	}
}

func TestStepDecayZeroEvery(t *testing.T) {
	sd := StepDecay{Base: 0.5, Gamma: 0.1, Every: 0}
	if got := sd.LR(10); got != 0.5 {
		t.Errorf("StepDecay with Every=0 = %v, want base", got)
	}
}

func TestTopKCorrect(t *testing.T) {
	probs := []float64{0.1, 0.4, 0.3, 0.15, 0.05}
	if !TopKCorrect(probs, 1, 1) {
		t.Error("top1 missed argmax")
	}
	if TopKCorrect(probs, 4, 3) {
		t.Error("top3 included the least likely class")
	}
	if !TopKCorrect(probs, 3, 4) {
		t.Error("top4 missed 4th class")
	}
}

func TestEvaluateTransformHook(t *testing.T) {
	ds := newBlobDataset(40, 2, 8, 9)
	net := smallNet(t, 2, 10)
	if _, err := Fit(net, ds, Config{Epochs: 10, BatchSize: 8, Schedule: ConstantLR(1e-2), Seed: 1}); err != nil {
		t.Fatal(err)
	}
	clean := Evaluate(net, ds, nil)
	// A transform that destroys the image should crater accuracy.
	destroyed := Evaluate(net, ds, func(img *tensor.Tensor, _ int) *tensor.Tensor {
		out := img.Clone()
		out.Fill(0.5)
		return out
	})
	if clean.Top1 < 0.9 {
		t.Fatalf("clean top1 = %v", clean.Top1)
	}
	if destroyed.Top1 > 0.75 {
		t.Fatalf("destroyed-input top1 = %v, expected chance-ish", destroyed.Top1)
	}
}

func TestConfusionDiagonalDominant(t *testing.T) {
	ds := newBlobDataset(60, 3, 8, 12)
	net := smallNet(t, 3, 13)
	if _, err := Fit(net, ds, Config{Epochs: 15, BatchSize: 10, Schedule: ConstantLR(1e-2), Seed: 2}); err != nil {
		t.Fatal(err)
	}
	mat := Confusion(net, ds, 3)
	total, diag := 0, 0
	for i := range mat {
		for j := range mat[i] {
			total += mat[i][j]
			if i == j {
				diag += mat[i][j]
			}
		}
	}
	if total != 60 {
		t.Fatalf("confusion total = %d", total)
	}
	if float64(diag)/float64(total) < 0.85 {
		t.Fatalf("diagonal fraction = %v", float64(diag)/float64(total))
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	net := smallNet(t, 2, 14)
	m := Evaluate(net, &blobDataset{}, nil)
	if m.N != 0 || m.Top1 != 0 {
		t.Fatalf("empty Evaluate = %+v", m)
	}
}

// TestEvaluateBatchedMatchesPerImage pins the batched evaluation path:
// EvaluateOn scores evalBatchSize mini-batches through ProbsBatch, and the
// resulting metrics must be bit-identical to a serial per-image evaluation
// (for any worker count — worker 1 vs 4 is covered by the experiments
// package's parallel determinism test).
func TestEvaluateBatchedMatchesPerImage(t *testing.T) {
	// 37 samples: exercises a full chunk, a partial tail chunk, and an
	// odd count that does not divide the batch size.
	ds := newBlobDataset(37, 4, 8, 9)
	net := smallNet(t, 4, 10)
	if _, err := Fit(net, ds, Config{Epochs: 2, BatchSize: 8, Schedule: ConstantLR(0.05), Seed: 3}); err != nil {
		t.Fatal(err)
	}
	transform := func(img *tensor.Tensor, _ int) *tensor.Tensor {
		out := img.Clone()
		out.ScaleInPlace(0.9)
		return out
	}

	for _, tr := range []func(*tensor.Tensor, int) *tensor.Tensor{nil, transform} {
		got := Evaluate(net, ds, tr)

		// Reference: serial, batch-of-1, same reduction order.
		var top1, top5, conf, trueProb float64
		for i := 0; i < ds.Len(); i++ {
			img, label := ds.Sample(i)
			if tr != nil {
				img = tr(img, i)
			}
			probs := net.Probs(img)
			pred := mathx.ArgMax(probs)
			if pred == label {
				top1++
			}
			if TopKCorrect(probs, label, 5) {
				top5++
			}
			conf += probs[pred]
			trueProb += probs[label]
		}
		inv := 1 / float64(ds.Len())
		want := Metrics{
			N:              ds.Len(),
			Top1:           top1 * inv,
			Top5:           top5 * inv,
			MeanConfidence: conf * inv,
			MeanTrueProb:   trueProb * inv,
		}
		if got != want {
			t.Fatalf("batched Evaluate = %+v, per-image reference = %+v", got, want)
		}
	}
}
