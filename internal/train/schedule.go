package train

import "math"

// Schedule maps an epoch index (0-based) to a learning rate.
type Schedule interface {
	// LR returns the learning rate for the given epoch.
	LR(epoch int) float64
}

// ConstantLR always returns the same learning rate.
type ConstantLR float64

// LR implements Schedule.
func (c ConstantLR) LR(int) float64 { return float64(c) }

// StepDecay multiplies the base rate by Gamma every Every epochs.
type StepDecay struct {
	Base  float64
	Gamma float64
	Every int
}

// LR implements Schedule.
func (s StepDecay) LR(epoch int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(epoch/s.Every))
}

// CosineDecay anneals from Base to Floor over Total epochs following a
// half-cosine, then stays at Floor.
type CosineDecay struct {
	Base  float64
	Floor float64
	Total int
}

// LR implements Schedule.
func (c CosineDecay) LR(epoch int) float64 {
	if c.Total <= 1 || epoch >= c.Total {
		return c.Floor
	}
	t := float64(epoch) / float64(c.Total-1)
	return c.Floor + 0.5*(c.Base-c.Floor)*(1+math.Cos(math.Pi*t))
}
