package train

import (
	"testing"

	"repro/internal/filters"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TestEvaluateBatchMatchesPerImage pins the batched-transform contract:
// routing the transform through a BatchTransform (the Filter.ApplyBatch
// path) produces metrics bit-identical to the per-image hook, at any
// worker count.
func TestEvaluateBatchMatchesPerImage(t *testing.T) {
	ds := newBlobDataset(50, 3, 8, 11)
	net := smallNet(t, 3, 5)
	f := filters.NewLAP(4)
	want := EvaluateWorkers(net, ds, func(img *tensor.Tensor, _ int) *tensor.Tensor {
		return f.Apply(img)
	}, 1)
	for _, workers := range []int{1, 3} {
		got := EvaluateBatchWorkers(net, ds, func(imgs []*tensor.Tensor, _ []int) []*tensor.Tensor {
			return f.ApplyBatch(imgs)
		}, workers)
		if got != want {
			t.Errorf("workers=%d: batched metrics %+v != per-image %+v", workers, got, want)
		}
	}
}

// TestEvaluateBatchIndices pins that the transform receives the dataset
// indices of its mini-batch, in order.
func TestEvaluateBatchIndices(t *testing.T) {
	ds := newBlobDataset(37, 2, 8, 3)
	net := smallNet(t, 2, 9)
	seen := make([]bool, ds.Len())
	EvaluateBatchWorkers(net, ds, func(imgs []*tensor.Tensor, idx []int) []*tensor.Tensor {
		if len(imgs) != len(idx) {
			t.Fatalf("imgs/idx length mismatch: %d vs %d", len(imgs), len(idx))
		}
		for j := 1; j < len(idx); j++ {
			if idx[j] != idx[j-1]+1 {
				t.Fatalf("non-contiguous mini-batch indices: %v", idx)
			}
		}
		for _, i := range idx {
			seen[i] = true
		}
		return imgs
	}, 1)
	for i, ok := range seen {
		if !ok {
			t.Fatalf("sample %d never reached the transform", i)
		}
	}
}

// TestEvaluateBatchLengthGuard pins that a transform returning the wrong
// batch length panics instead of silently misaligning labels.
func TestEvaluateBatchLengthGuard(t *testing.T) {
	ds := newBlobDataset(8, 2, 8, 4)
	net := smallNet(t, 2, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("length-changing transform did not panic")
		}
	}()
	EvaluateBatchWorkers(net, ds, func(imgs []*tensor.Tensor, _ []int) []*tensor.Tensor {
		return imgs[:len(imgs)-1]
	}, 1)
}

// TestEvaluateParallelStillBitIdentical re-pins the PR-1 determinism
// guarantee on the reworked evaluation core.
func TestEvaluateParallelStillBitIdentical(t *testing.T) {
	ds := newBlobDataset(60, 4, 8, 6)
	net := smallNet(t, 4, 2)
	f := filters.NewMedian(1)
	transform := func(img *tensor.Tensor, _ int) *tensor.Tensor { return f.Apply(img) }
	serial := EvaluateWorkers(net, ds, transform, 1)
	old := parallel.Workers()
	parallel.SetWorkers(4)
	par := Evaluate(net, ds, transform)
	parallel.SetWorkers(old)
	if serial != par {
		t.Fatalf("parallel evaluation diverged: %+v vs %+v", par, serial)
	}
}
